"""Fig. 12: estimated minimum delta per message size and partition count.

For each (message size, partition count), profiles the perceived-
bandwidth benchmark's arrival times, drops the laggard, and reports the
spread between the first and last non-laggard arrival — the minimum
delta that would cover them (Section V-C3).  Expected shape: minimum
delta grows with the partition count (more threads take turns on the
arrival atomics); around tens of microseconds at 32 partitions.
Sizes where the PLogGP model requests no aggregation are omitted, as
in the paper's figure.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from benchmarks.common import (
    PERCEIVED_COMPUTE,
    PERCEIVED_NOISE,
    ploggp_aggregator,
)
from repro.bench.pair import run_partitioned_pair
from repro.bench.reporting import format_delta_table
from repro.config import NIAGARA
from repro.core import NativeSpec, estimate_min_delta
from repro.runtime import SingleThreadDelay
from repro.units import MiB, fmt_bytes

PARTITION_COUNTS = [4, 8, 16, 32, 64, 128]
SIZES = [1 * MiB, 8 * MiB, 64 * MiB]


def run_fig12(sizes=SIZES, counts=PARTITION_COUNTS, iterations=5, warmup=2):
    """{(size, n_partitions): min delta}, skipping no-aggregation points."""
    agg = ploggp_aggregator()
    table = {}
    for size in sizes:
        for n_user in counts:
            if size % n_user:
                continue
            plan = agg.plan(n_user, size // n_user, NIAGARA)
            if plan.n_transport == n_user:
                # The model requested no aggregation: nothing for the
                # timer to cover (the paper's missing data points).
                continue
            result = run_partitioned_pair(
                lambda: NativeSpec(ploggp_aggregator()),
                n_user=n_user,
                partition_size=size // n_user,
                compute=PERCEIVED_COMPUTE,
                noise=SingleThreadDelay(PERCEIVED_NOISE),
                iterations=iterations,
                warmup=warmup,
            )
            table[(size, n_user)] = estimate_min_delta(
                result.arrival_rounds())
    return table


def test_fig12_minimum_delta(benchmark):
    # 16/32/128 partitions: at 8 MiB the PLogGP plan aggregates for all
    # of these (8 partitions would be a no-aggregation point, omitted
    # as in the paper's figure).
    table = benchmark.pedantic(
        run_fig12, args=([8 * MiB], [16, 32, 128], 3, 1,), rounds=1, iterations=1)
    # Minimum delta grows with partition count.
    assert table[(8 * MiB, 16)] < table[(8 * MiB, 32)] < table[(8 * MiB, 128)]
    # Tens of microseconds at 32 partitions (paper: ~35 us).
    assert 2e-6 < table[(8 * MiB, 32)] < 300e-6
    benchmark.extra_info["min_delta_32p_8MiB_us"] = round(
        table[(8 * MiB, 32)] * 1e6, 1)
    benchmark.extra_info["paper_value_us"] = 35


if __name__ == "__main__":
    print(__doc__)
    print(format_delta_table(run_fig12()))
    sys.exit(0)
