"""Fig. 12: estimated minimum delta per message size and partition count.

For each (message size, partition count), profiles the perceived-
bandwidth benchmark's arrival times, drops the laggard, and reports the
spread between the first and last non-laggard arrival — the minimum
delta that would cover them (Section V-C3).  Expected shape: minimum
delta grows with the partition count (more threads take turns on the
arrival atomics); around tens of microseconds at 32 partitions.
Sizes where the PLogGP model requests no aggregation are omitted, as
in the paper's figure.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from repro.exp import run_spec, script_main
from repro.exp.experiments import FIG12_COUNTS, FIG12_SIZES, fig12_spec
from repro.units import MiB

PARTITION_COUNTS = list(FIG12_COUNTS)
SIZES = list(FIG12_SIZES)


def run_fig12(sizes=SIZES, counts=PARTITION_COUNTS, iterations=5, warmup=2):
    """{(size, n_partitions): min delta}, skipping no-aggregation points."""
    payload = run_spec(fig12_spec(sizes, counts, iterations, warmup))
    return {(size, n_user): delta
            for size, n_user, delta in payload["rows"]}


def test_fig12_minimum_delta(benchmark):
    # 16/32/128 partitions: at 8 MiB the PLogGP plan aggregates for all
    # of these (8 partitions would be a no-aggregation point, omitted
    # as in the paper's figure).
    table = benchmark.pedantic(
        run_fig12, args=([8 * MiB], [16, 32, 128], 3, 1,), rounds=1, iterations=1)
    # Minimum delta grows with partition count.
    assert table[(8 * MiB, 16)] < table[(8 * MiB, 32)] < table[(8 * MiB, 128)]
    # Tens of microseconds at 32 partitions (paper: ~35 us).
    assert 2e-6 < table[(8 * MiB, 32)] < 300e-6
    benchmark.extra_info["min_delta_32p_8MiB_us"] = round(
        table[(8 * MiB, 32)] * 1e6, 1)
    benchmark.extra_info["paper_value_us"] = 35


if __name__ == "__main__":
    sys.exit(script_main("fig12", __doc__))
