"""Fig. 13: perceived bandwidth across a window of delta values.

The paper estimates a ~35 us minimum delta for 32 partitions (Fig. 12)
and then shows that running the timer aggregator with delta in
{10, 35, 100} us changes perceived bandwidth by at most ~6% — the
mechanism tolerates a 3.5x mis-tuning.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from benchmarks.common import PERCEIVED_SIZES_FAST
from repro.exp import run_spec, script_main
from repro.exp.experiments import (
    FIG13_DELTAS,
    FIG13_N_USER as N_USER,
    fig13_spec,
)
from repro.units import MiB

DELTAS = list(FIG13_DELTAS)


def run_fig13(sizes, iterations=10, warmup=3):
    return run_spec(fig13_spec(sizes, iterations, warmup))["series"]


def test_fig13_delta_window(benchmark):
    series = benchmark.pedantic(
        run_fig13, args=(PERCEIVED_SIZES_FAST, 4, 1,), rounds=1, iterations=1)
    worst_spread = 0.0
    for size in PERCEIVED_SIZES_FAST:
        if size < 8 * MiB:
            # At small totals the absolute last-partition latency is a
            # few microseconds, so tiny ordering differences read as
            # large relative spreads; the paper's 6.15% bound is for
            # its medium/large sizes.
            continue
        values = [series[name][size] for name in series]
        spread = (max(values) - min(values)) / min(values)
        worst_spread = max(worst_spread, spread)
    # Paper: at most 6.15%; allow slack at reduced iterations.
    assert worst_spread < 0.15
    benchmark.extra_info["worst_spread_pct"] = round(worst_spread * 100, 2)
    benchmark.extra_info["paper_value_pct"] = 6.15


if __name__ == "__main__":
    sys.exit(script_main("fig13", __doc__))
