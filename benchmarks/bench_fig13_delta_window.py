"""Fig. 13: perceived bandwidth across a window of delta values.

The paper estimates a ~35 us minimum delta for 32 partitions (Fig. 12)
and then shows that running the timer aggregator with delta in
{10, 35, 100} us changes perceived bandwidth by at most ~6% — the
mechanism tolerates a 3.5x mis-tuning.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from benchmarks.common import (
    PERCEIVED_COMPUTE,
    PERCEIVED_NOISE,
    PERCEIVED_SIZES,
    PERCEIVED_SIZES_FAST,
    timer_aggregator,
)
from repro.bench.perceived import run_perceived_bandwidth, single_thread_line
from repro.bench.reporting import format_bandwidth_series
from repro.units import MiB, us

DELTAS = [us(10), us(35), us(100)]
N_USER = 32


def run_fig13(sizes, iterations=10, warmup=3):
    series = {}
    for delta in DELTAS:
        name = f"delta={delta * 1e6:.0f}us"
        series[name] = {}
        for size in sizes:
            series[name][size] = run_perceived_bandwidth(
                timer_aggregator(delta), n_user=N_USER, total_bytes=size,
                compute=PERCEIVED_COMPUTE, noise_fraction=PERCEIVED_NOISE,
                iterations=iterations, warmup=warmup).perceived_bandwidth
    return series


def test_fig13_delta_window(benchmark):
    series = benchmark.pedantic(
        run_fig13, args=(PERCEIVED_SIZES_FAST, 4, 1,), rounds=1, iterations=1)
    worst_spread = 0.0
    for size in PERCEIVED_SIZES_FAST:
        if size < 8 * MiB:
            # At small totals the absolute last-partition latency is a
            # few microseconds, so tiny ordering differences read as
            # large relative spreads; the paper's 6.15% bound is for
            # its medium/large sizes.
            continue
        values = [series[name][size] for name in series]
        spread = (max(values) - min(values)) / min(values)
        worst_spread = max(worst_spread, spread)
    # Paper: at most 6.15%; allow slack at reduced iterations.
    assert worst_spread < 0.15
    benchmark.extra_info["worst_spread_pct"] = round(worst_spread * 100, 2)
    benchmark.extra_info["paper_value_pct"] = 6.15


if __name__ == "__main__":
    print(__doc__)
    print(format_bandwidth_series(run_fig13(PERCEIVED_SIZES),
                                  reference=single_thread_line()))
    sys.exit(0)
