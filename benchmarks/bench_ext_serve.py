"""Tuning-as-a-service: the sharded plan server under fleet load.

The PR4 tuning store persisted one process's learned plans; a fleet
wants that knowledge *shared* — pay the exploration cost once per
``(workload, cluster)`` key, fleet-wide.  This extension stands a
sharded, cached, concurrent-safe serving layer in front of the store
and checks the claims that make it deployable:

* **Hot cache under Zipf traffic** — seeded synthetic clients with
  Zipf-distributed keys, mixed get/commit, and bursty arrivals see a
  warm-cache hit rate above 90%, with modeled p50 lookup latency an
  order of magnitude under the backend-read cost.
* **No torn, no lost entries** — real writer processes racing on one
  entry (confident overwrite and compare-and-swap modes) never
  produce a torn read, and every successful commit is reflected in
  the final monotonic version.
* **Eviction works under pressure** — a tightly bounded store evicts
  (confidence-weighted LRU) while still serving the hot set.
* **The service is transparent** — a warm fleet tenant pins the plan
  a cold tenant committed (zero exploration rounds), and the served
  plan is bit-identical to a direct ``TuningStore`` read of the shard
  directory.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from repro.exp import run_spec, script_main
from repro.exp.experiments import ext_serve_spec


def run_serve_bench():
    """The collected ext_serve payload (series + diagnostics)."""
    return run_spec(ext_serve_spec(n_clients=400, n_requests=4000,
                                   stress_writers=3, stress_puts=10,
                                   cas_puts=8))


def test_ext_serve(benchmark):
    payload = benchmark.pedantic(run_serve_bench, rounds=1, iterations=1)
    b = payload["bench"]
    # Zipf traffic keeps the cache hot once the key set is seen.
    assert b["warm_hit_rate"] > 0.9, b
    # Hits are served at cache cost; p50 must sit far below a backend
    # read, and the p99 tail reflects bursty queueing, not collapse.
    assert b["p50_latency_us"] < 10.0, b
    assert b["p99_latency_us"] < 500.0, b
    # Stale CAS commits are rejected and counted, never silently won.
    assert b["conflicts"] > 0, b
    # The multi-process stress holds the integrity invariants exactly.
    for mode in ("confident", "cas"):
        s = payload["stress"][mode]
        assert s["lost_updates"] == 0, s
        assert s["torn_reads"] == 0, s
        assert s["final_version"] == s["total_commits"], s
    assert payload["stress"]["cas"]["total_conflicts"] > 0
    # Bounded shards evict yet keep serving.
    e = payload["eviction"]
    assert e["store_evictions"] > 0, e
    assert e["entries"] <= 4 * 4, e
    # The fleet tenants: cold explores, warm pins, plans bit-identical.
    f = payload["fleet"]
    assert f["warm_skipped_exploration"], f
    assert f["bit_identical"], f
    assert f["tenant_explored"] == [True, False], f

    benchmark.extra_info["warm_hit_rate"] = round(b["warm_hit_rate"], 4)
    benchmark.extra_info["p99_latency_us"] = b["p99_latency_us"]
    benchmark.extra_info["store_evictions"] = e["store_evictions"]
    benchmark.extra_info["cas_conflicts"] = \
        payload["stress"]["cas"]["total_conflicts"]


if __name__ == "__main__":
    sys.exit(script_main("ext_serve", __doc__))
