"""Closed-loop autotuning convergence (the ``repro.autotune`` loop).

The paper tunes open loop: brute-force a ``(n_transport, n_qps)``
table offline (23 hours on Niagara), pick δ from a profiled arrival
window, then run with the plan frozen.  This extension closes the
loop — a controller observes every round of the persistent exchange
(Pready arrival gaps, completion time, retransmits) and re-plans the
aggregation between rounds.  Two claims are checked here:

* **Convergence** — on Fig. 8's workload (32 partitions, 2 MiB) an
  epsilon-greedy bandit over PLogGP-seeded arms lands within 5 % of
  the offline tuning-table optimum inside 64 iterations.
* **δ retargeting** — on Fig. 11's late-laggard arrival profile a
  mistuned fixed δ (8000 us, above the ~4 ms laggard gap) never fires
  and degenerates to plain aggregation; the tracker retargets δ to the
  observed non-laggard spread and restores the early flush.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from repro.exp import run_spec, script_main
from repro.exp.experiments import (
    AUTOTUNE_N_USER as N_USER,
    AUTOTUNE_SIZE,
    ext_autotune_spec,
)


def run_autotune(bandit_iters=64, laggard_iters=4, table_iters=3):
    """The collected ext_autotune payload (series + diagnostics)."""
    return run_spec(ext_autotune_spec(
        bandit_iters=bandit_iters, laggard_iters=laggard_iters,
        table_iters=table_iters))


def test_ext_autotune(benchmark, tmp_path):
    payload = benchmark.pedantic(run_autotune, rounds=1, iterations=1)
    convergence = list(
        payload["series"]["bandit vs offline table"].values())[0]
    tracker = list(
        payload["series"]["delta tracker vs fixed delta"].values())[0]
    # Bandit within 5% of the brute-forced tuning-table optimum.
    assert convergence >= 1 / 1.05, payload["bandit"]
    # The tracker strictly beats the mistuned fixed-delta timer.
    assert tracker > 1.0, payload["laggard"]

    # Store round trip: a second run replays the learned plan without
    # exploring.
    from repro.autotune import TuningStore
    from repro.bench.autotune import run_autotuned_pair

    store = TuningStore(tmp_path / "store")
    params = {"policy": "bandit", "counts": [1, 4, 16],
              "config_tag": "bench"}
    first = run_autotuned_pair(params, n_user=16, total_bytes=1 << 20,
                               iterations=24, warmup=2, store=store)
    assert first.explored and len(store) == 1
    second = run_autotuned_pair(params, n_user=16, total_bytes=1 << 20,
                                iterations=8, warmup=2, store=store)
    assert not second.explored
    assert second.best_plan == first.best_plan

    benchmark.extra_info["convergence"] = convergence
    benchmark.extra_info["tracker_speedup"] = tracker
    benchmark.extra_info["best_plan"] = str(payload["bandit"]["best_plan"])


if __name__ == "__main__":
    sys.exit(script_main("ext_autotune", __doc__))
