"""Fig. 3: PLogGP-modelled completion time across partition counts.

The paper feeds Netgauge-measured Niagara LogGP parameters into the
PLogGP model with a 4 ms laggard delay and plots modelled time to
completion against message size for partition counts 1..32.  Expected
shape: low counts win for small/medium messages, high counts win for
large ones, with the crossover in the MiB range.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from repro.exp import run_spec, script_main
from repro.exp.experiments import (
    FIG03_COUNTS,
    FIG03_DELAY as DELAY,
    FIG03_SIZES,
    fig03_report as report,
    fig03_spec,
)

PARTITION_COUNTS = list(FIG03_COUNTS)
SIZES = list(FIG03_SIZES)


def run_fig3(sizes=SIZES, counts=PARTITION_COUNTS, delay=DELAY):
    """{partition count: [completion time per size]}."""
    return run_spec(fig03_spec(sizes, counts, delay))["curves"]


def test_fig03_model_curves(benchmark):
    curves = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    small_idx, large_idx = 0, len(SIZES) - 1
    # Fig. 3 shape: 1 partition beats 32 at the small end and loses at
    # the large end.
    assert curves[1][small_idx] < curves[32][small_idx]
    assert curves[32][large_idx] < curves[1][large_idx]
    benchmark.extra_info["best_at_16KiB"] = min(
        curves, key=lambda n: curves[n][small_idx])
    benchmark.extra_info["best_at_256MiB"] = min(
        curves, key=lambda n: curves[n][large_idx])


if __name__ == "__main__":
    sys.exit(script_main("fig03", __doc__))
