"""Fig. 3: PLogGP-modelled completion time across partition counts.

The paper feeds Netgauge-measured Niagara LogGP parameters into the
PLogGP model with a 4 ms laggard delay and plots modelled time to
completion against message size for partition counts 1..32.  Expected
shape: low counts win for small/medium messages, high counts win for
large ones, with the crossover in the MiB range.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from repro.bench.reporting import format_table
from repro.model import model_curve
from repro.model.tables import NIAGARA_LOGGP
from repro.units import KiB, MiB, fmt_bytes, fmt_time, ms

PARTITION_COUNTS = [1, 2, 4, 8, 16, 32]
SIZES = [16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB, 16 * MiB,
         64 * MiB, 256 * MiB]
DELAY = ms(4)


def run_fig3(sizes=SIZES, counts=PARTITION_COUNTS, delay=DELAY):
    """{partition count: [completion time per size]}."""
    return {
        n: model_curve(NIAGARA_LOGGP, sizes, n_transport=n, n_user=n,
                       delay=delay)
        for n in counts
    }


def report(curves, sizes=SIZES):
    rows = []
    for i, size in enumerate(sizes):
        best = min(curves, key=lambda n: curves[n][i])
        rows.append([fmt_bytes(size)]
                    + [fmt_time(curves[n][i]) for n in curves]
                    + [best])
    return format_table(
        ["size"] + [f"{n} parts" for n in curves] + ["best"], rows)


def test_fig03_model_curves(benchmark):
    curves = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    small_idx, large_idx = 0, len(SIZES) - 1
    # Fig. 3 shape: 1 partition beats 32 at the small end and loses at
    # the large end.
    assert curves[1][small_idx] < curves[32][small_idx]
    assert curves[32][large_idx] < curves[1][large_idx]
    benchmark.extra_info["best_at_16KiB"] = min(
        curves, key=lambda n: curves[n][small_idx])
    benchmark.extra_info["best_at_256MiB"] = min(
        curves, key=lambda n: curves[n][large_idx])


if __name__ == "__main__":
    print(__doc__)
    print(report(run_fig3()))
    sys.exit(0)
