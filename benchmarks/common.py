"""Shared workload definitions for the figure-regeneration benchmarks.

Every ``bench_*`` module regenerates one table or figure of the paper:
run it directly (``python benchmarks/bench_fig06_....py``) for the
paper-scale sweep with printed rows, or through pytest-benchmark
(``pytest benchmarks/ --benchmark-only``) for a reduced-size run whose
reproduced numbers are attached as ``extra_info``.

Iteration counts follow the paper where tractable: point-to-point
micro-benchmarks use 10 warm-up + 100 measured iterations, sweeps use
3 + 10 (Section V-A).
"""

from __future__ import annotations

from repro.core import PLogGPAggregator, TimerPLogGPAggregator
from repro.model.tables import NIAGARA_LOGGP
from repro.units import KiB, MiB, ms, us

#: Paper iteration counts (full runs).
PTP_ITER = dict(iterations=100, warmup=10)
SWEEP_ITER = dict(iterations=10, warmup=3)

#: Reduced counts for pytest-benchmark runs.
FAST_PTP = dict(iterations=10, warmup=2)
FAST_SWEEP = dict(iterations=3, warmup=1)

#: Message-size grids.
OVERHEAD_SIZES = [1 * KiB, 4 * KiB, 16 * KiB, 64 * KiB, 128 * KiB,
                  512 * KiB, 2 * MiB, 4 * MiB, 16 * MiB]
OVERHEAD_SIZES_FAST = [4 * KiB, 64 * KiB, 512 * KiB, 4 * MiB]
PERCEIVED_SIZES = [1 * MiB, 4 * MiB, 8 * MiB, 32 * MiB, 128 * MiB]
PERCEIVED_SIZES_FAST = [1 * MiB, 8 * MiB, 32 * MiB]
SWEEP_SIZES = [64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB, 16 * MiB]
SWEEP_SIZES_FAST = [256 * KiB, 1 * MiB]

#: The paper's compute/noise points (Section V-A).
PERCEIVED_COMPUTE = 100e-3
PERCEIVED_NOISE = 0.04


def ploggp_aggregator():
    """The PLogGP aggregator as evaluated (4 ms delay input)."""
    return PLogGPAggregator(NIAGARA_LOGGP, delay=ms(4))


def timer_aggregator(delta=us(3000)):
    """The timer-based design (Fig. 9 uses delta = 3000 us)."""
    return TimerPLogGPAggregator(NIAGARA_LOGGP, delay=ms(4), delta=delta)
