"""Shared workload definitions for the figure-regeneration benchmarks.

Every ``bench_*`` module regenerates one table or figure of the paper:
run it directly (``python benchmarks/bench_fig06_....py``) for the
paper-scale sweep with printed rows and JSON artifacts, or through
pytest-benchmark (``pytest benchmarks/ --benchmark-only``) for a
reduced-size run whose reproduced numbers are attached as
``extra_info``.  ``repro-bench bench list|run|compare`` drives the
same experiments through the registry.

The knobs themselves live in :mod:`repro.exp.profiles` (the ``paper``
and ``fast`` presets); this module re-exports them under the
historical names so existing imports keep working.
"""

from __future__ import annotations

from repro.core import PLogGPAggregator, TimerPLogGPAggregator
from repro.exp.profiles import (
    FAST,
    PAPER,
    PERCEIVED_COMPUTE,
    PERCEIVED_NOISE,
)
from repro.model.tables import NIAGARA_LOGGP
from repro.units import ms, us

#: Paper iteration counts (full runs).
PTP_ITER = PAPER.ptp_iter
SWEEP_ITER = PAPER.sweep_iter

#: Reduced counts for pytest-benchmark runs.
FAST_PTP = FAST.ptp_iter
FAST_SWEEP = FAST.sweep_iter

#: Message-size grids.
OVERHEAD_SIZES = list(PAPER.overhead_sizes)
OVERHEAD_SIZES_FAST = list(FAST.overhead_sizes)
PERCEIVED_SIZES = list(PAPER.perceived_sizes)
PERCEIVED_SIZES_FAST = list(FAST.perceived_sizes)
SWEEP_SIZES = list(PAPER.sweep_sizes)
SWEEP_SIZES_FAST = list(FAST.sweep_sizes)

__all__ = [
    "FAST_PTP", "FAST_SWEEP", "OVERHEAD_SIZES", "OVERHEAD_SIZES_FAST",
    "PERCEIVED_COMPUTE", "PERCEIVED_NOISE", "PERCEIVED_SIZES",
    "PERCEIVED_SIZES_FAST", "PTP_ITER", "SWEEP_ITER", "SWEEP_SIZES",
    "SWEEP_SIZES_FAST", "ploggp_aggregator", "timer_aggregator",
]


def ploggp_aggregator():
    """The PLogGP aggregator as evaluated (4 ms delay input)."""
    return PLogGPAggregator(NIAGARA_LOGGP, delay=ms(4))


def timer_aggregator(delta=us(3000)):
    """The timer-based design (Fig. 9 uses delta = 3000 us)."""
    return TimerPLogGPAggregator(NIAGARA_LOGGP, delay=ms(4), delta=delta)
