"""Extension ablations beyond the paper's figures.

Two design questions the paper raises but does not quantify:

1. **Scatter/gather flush** (Section IV-D): flushing non-contiguous
   arrivals as one multi-SGE WR into receive-side staging, vs. the
   adopted one-WR-per-run flush.  The paper rejected SG on staging and
   layout-information grounds; this ablation forces hole-y flushes
   (δ below the natural arrival spread) and measures both designs.
2. **Online δ auto-tuning** (Section IV-D future work): in a sweep,
   an oversized δ makes the first arriver block its *other* requests
   (the artefact the paper warns about); the adaptive tuner recovers
   from a bad seed where a fixed δ cannot.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from benchmarks.common import PERCEIVED_COMPUTE, PERCEIVED_NOISE
from repro.bench.perceived import run_perceived_bandwidth
from repro.bench.reporting import format_table
from repro.bench.sweep import run_sweep
from repro.core import (
    AdaptiveDelta,
    AdaptiveTimerAggregator,
    TimerPLogGPAggregator,
)
from repro.model.tables import NIAGARA_LOGGP
from repro.units import KiB, MiB, fmt_bytes, ms, us

N_USER = 32
#: Below the ~20 us natural arrival spread of 32 threads at 100 ms
#: compute, so the flush regularly catches non-contiguous holes.
TIGHT_DELTA = us(5)


def run_sg_ablation(sizes=(8 * MiB, 32 * MiB), iterations=6, warmup=2):
    """{(design, size): (perceived bw, WRs posted per round)}."""
    out = {}
    for sg in (False, True):
        name = "sg" if sg else "runs"
        agg = TimerPLogGPAggregator(NIAGARA_LOGGP, delay=ms(4),
                                    delta=TIGHT_DELTA, scatter_gather=sg)
        for size in sizes:
            res = run_perceived_bandwidth(
                agg, n_user=N_USER, total_bytes=size,
                compute=PERCEIVED_COMPUTE, noise_fraction=PERCEIVED_NOISE,
                iterations=iterations, warmup=warmup)
            wrs = res.result.wrs_posted / (iterations + warmup)
            out[(name, size)] = (res.perceived_bandwidth, wrs)
    return out


def run_adaptive_ablation(size=256 * KiB, iterations=4, warmup=1):
    """Sweep comm-time speedup over part_persist for three δ policies.

    Each rank sends to two neighbours, so a first arriver sleeping an
    oversized δ in one request delays its pready on the other — the
    multi-request hazard of Section V-C2.
    """
    kwargs = dict(grid=(4, 4), total_bytes=size, compute=ms(1),
                  noise_fraction=0.04, iterations=iterations, warmup=warmup)
    base = run_sweep(None, **kwargs).mean_comm_time
    designs = {
        "fixed good (8us)": TimerPLogGPAggregator(
            NIAGARA_LOGGP, delay=ms(4), delta=us(8)),
        "fixed bad (200us)": TimerPLogGPAggregator(
            NIAGARA_LOGGP, delay=ms(4), delta=us(200)),
        "adaptive (seed 200us)": AdaptiveTimerAggregator(
            NIAGARA_LOGGP, delay=ms(4), initial_delta=us(200),
            adaptive=AdaptiveDelta(alpha=0.6, margin=1.5,
                                   min_delta=us(1), max_delta=us(200))),
    }
    return {name: base / run_sweep(agg, **kwargs).mean_comm_time
            for name, agg in designs.items()}


def test_ext_sg_ablation(benchmark):
    out = benchmark.pedantic(run_sg_ablation, args=((8 * MiB,), 4, 1),
                             rounds=1, iterations=1)
    size = 8 * MiB
    bw_runs, wrs_runs = out[("runs", size)]
    bw_sg, wrs_sg = out[("sg", size)]
    # SG condenses hole-y flushes into fewer WRs...
    assert wrs_sg <= wrs_runs
    # ...but its staging copy-out must not win on perceived bandwidth
    # (the paper's grounds for rejecting it).
    assert bw_runs >= bw_sg * 0.9
    benchmark.extra_info["wrs_per_round_runs"] = round(wrs_runs, 1)
    benchmark.extra_info["wrs_per_round_sg"] = round(wrs_sg, 1)


def test_ext_adaptive_ablation(benchmark):
    speedups = benchmark.pedantic(run_adaptive_ablation,
                                  rounds=1, iterations=1)
    # The oversized fixed delta hurts; the adaptive tuner recovers most
    # of the well-tuned performance from the same bad seed.
    assert speedups["fixed good (8us)"] > speedups["fixed bad (200us)"]
    assert (speedups["adaptive (seed 200us)"]
            > speedups["fixed bad (200us)"])
    benchmark.extra_info.update(
        {k: round(v, 3) for k, v in speedups.items()})


if __name__ == "__main__":
    print(__doc__)
    print("-- scatter/gather flush (tight delta forces hole-y flushes) --")
    sg = run_sg_ablation()
    rows = []
    for (name, size), (bw, wrs) in sorted(sg.items(), key=lambda kv: kv[0][1]):
        rows.append([fmt_bytes(size), name, f"{bw / 2**30:.0f}GiB/s",
                     f"{wrs:.1f}"])
    print(format_table(["size", "flush", "perceived bw", "WRs/round"], rows))
    print("\n-- adaptive delta in the sweep (comm speedup vs persist) --")
    for name, speedup in run_adaptive_ablation(iterations=6).items():
        print(f"  {name:>22}: {speedup:.2f}x")
    sys.exit(0)
