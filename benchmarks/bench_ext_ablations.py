"""Extension ablations beyond the paper's figures.

Two design questions the paper raises but does not quantify:

1. **Scatter/gather flush** (Section IV-D): flushing non-contiguous
   arrivals as one multi-SGE WR into receive-side staging, vs. the
   adopted one-WR-per-run flush.  The paper rejected SG on staging and
   layout-information grounds; this ablation forces hole-y flushes
   (δ below the natural arrival spread) and measures both designs.
2. **Online δ auto-tuning** (Section IV-D future work): in a sweep,
   an oversized δ makes the first arriver block its *other* requests
   (the artefact the paper warns about); the adaptive tuner recovers
   from a bad seed where a fixed δ cannot.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from repro.exp import run_spec, script_main
from repro.exp.experiments import (
    ABL_N_USER as N_USER,
    ABL_TIGHT_DELTA as TIGHT_DELTA,
    ext_adaptive_spec,
    ext_sg_spec,
)
from repro.units import KiB, MiB


def run_sg_ablation(sizes=(8 * MiB, 32 * MiB), iterations=6, warmup=2):
    """{(design, size): (perceived bw, WRs posted per round)}."""
    payload = run_spec(ext_sg_spec(sizes, iterations, warmup))
    return {(name, size): (bw, wrs)
            for name, size, bw, wrs in payload["rows"]}


def run_adaptive_ablation(size=256 * KiB, iterations=4, warmup=1):
    """Sweep comm-time speedup over part_persist for three δ policies.

    Each rank sends to two neighbours, so a first arriver sleeping an
    oversized δ in one request delays its pready on the other — the
    multi-request hazard of Section V-C2.
    """
    return run_spec(
        ext_adaptive_spec(size, iterations, warmup))["speedups"]


def test_ext_sg_ablation(benchmark):
    out = benchmark.pedantic(run_sg_ablation, args=((8 * MiB,), 4, 1),
                             rounds=1, iterations=1)
    size = 8 * MiB
    bw_runs, wrs_runs = out[("runs", size)]
    bw_sg, wrs_sg = out[("sg", size)]
    # SG condenses hole-y flushes into fewer WRs...
    assert wrs_sg <= wrs_runs
    # ...but its staging copy-out must not win on perceived bandwidth
    # (the paper's grounds for rejecting it).
    assert bw_runs >= bw_sg * 0.9
    benchmark.extra_info["wrs_per_round_runs"] = round(wrs_runs, 1)
    benchmark.extra_info["wrs_per_round_sg"] = round(wrs_sg, 1)


def test_ext_adaptive_ablation(benchmark):
    speedups = benchmark.pedantic(run_adaptive_ablation,
                                  rounds=1, iterations=1)
    # The oversized fixed delta hurts; the adaptive tuner recovers most
    # of the well-tuned performance from the same bad seed.
    assert speedups["fixed good (8us)"] > speedups["fixed bad (200us)"]
    assert (speedups["adaptive (seed 200us)"]
            > speedups["fixed bad (200us)"])
    benchmark.extra_info.update(
        {k: round(v, 3) for k, v in speedups.items()})


if __name__ == "__main__":
    sys.exit(script_main("ext_ablations", __doc__))
