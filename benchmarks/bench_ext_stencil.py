"""Partitioned neighbor-alltoall stencil with per-edge plans.

The paper tunes one aggregation plan per run; a stencil rank talks to
several neighbors at once, over links of different length and faces of
different size.  This extension gives every edge of the persistent
``PneighborAlltoall`` its own plan and checks two claims:

* **Scaling** — native per-edge aggregation beats the ``part_persist``
  baseline on the paper-profile stencil (1 ms compute, 1 % noise,
  64 KiB faces, 32 partitions) across rank/thread scales.
* **Asymmetric neighbors** — with anisotropic faces (64 KiB vs 4 KiB)
  on a mixed intra/inter-group Dragonfly+ placement, no single global
  transport count suits both face sizes (fig06: T=32 at 4 KiB is
  slower than part_persist, T=8 wins at 64 KiB).  A per-edge bandit
  that converges independently on every edge during warmup must match
  or beat the best single global plan.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from repro.exp import run_spec, script_main
from repro.exp.experiments import STENCIL_SCALE_FAST, ext_stencil_spec


def run_stencil_bench():
    """The collected ext_stencil payload (series + asym diagnostics)."""
    return run_spec(ext_stencil_spec(
        scale=STENCIL_SCALE_FAST,
        scale_iter={"iterations": 4, "warmup": 1},
        asym_iter={"iterations": 6, "warmup": 20}))


def test_ext_stencil(benchmark):
    payload = benchmark.pedantic(run_stencil_bench, rounds=1, iterations=1)
    scaling = payload["series"]["native vs persist"]
    per_edge = payload["series"]["asym: per-edge autotuned"]
    # Native aggregation beats part_persist at every scale point.
    assert all(v > 1.0 for v in scaling.values()), scaling
    # The per-edge autotuned plan beats the persist baseline outright...
    assert per_edge["vs persist"] > 1.0, payload["asym"]
    # ...and matches-or-beats the best single global plan (5% slack).
    assert per_edge["vs best global"] >= 1 / 1.05, payload["asym"]

    benchmark.extra_info["scaling"] = {k: round(v, 3)
                                       for k, v in scaling.items()}
    benchmark.extra_info["per_edge_vs_persist"] = round(
        per_edge["vs persist"], 3)
    benchmark.extra_info["per_edge_vs_best_global"] = round(
        per_edge["vs best global"], 3)
    benchmark.extra_info["best_global"] = payload["asym"]["best_global"]


if __name__ == "__main__":
    sys.exit(script_main("ext_stencil", __doc__))
