"""Shared-fabric fleet: contention ranking, tenancy, live re-tuning.

The paper tunes one job on a quiet fabric; a production fleet shares
its Dragonfly+ spine between tenants.  This extension runs the
partitioned stack on a routed topology with per-link contention queues
and checks three claims:

* **Ranking flip** — the fig08-style transport-design ranking is not
  contention-invariant: on the quiet fabric the wide T=16 layout wins,
  but as background tenants congest the spine the per-chunk
  arbitration cost makes fewer, larger messages (T=4) win instead,
  and ``part_persist`` collapses outright.
* **Tenancy** — a multi-tenant mix suffers measurable per-job
  slowdowns vs each job running alone on an identical fabric, and a
  noisy permutation-traffic neighbor makes them materially worse.
* **Live re-convergence** — when the neighbor arrives mid-run, both
  closed-loop policies (the bandit and the plan-mutation walk, with
  sliding-window cost estimates) abandon the quiet-best plan and
  re-converge onto the congested-best one within the episode.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from repro.exp import run_spec, script_main
from repro.exp.experiments import ext_fleet_spec


def run_fleet_bench():
    """The collected ext_fleet payload (series + diagnostics)."""
    return run_spec(ext_fleet_spec(rank_iter={"iterations": 6,
                                              "warmup": 2}))


def test_ext_fleet(benchmark):
    payload = benchmark.pedantic(run_fleet_bench, rounds=1, iterations=1)
    ranking = payload["ranking"]
    # Quiet fabric: the wide layout beats the aggregated ones...
    assert ranking["0"]["times"]["T=16"] < ranking["0"]["times"]["T=4"]
    # ...and under contention the ranking flips (aggregation wins).
    for level in ("1", "2"):
        assert ranking[level]["times"]["T=4"] \
            < ranking[level]["times"]["T=16"], ranking[level]
        assert ranking[level]["best"] != "persist", ranking[level]
    # Contention slows every design monotonically vs the quiet fabric.
    for name in ("persist", "T=4", "T=16"):
        assert ranking["2"]["times"][name] > ranking["0"]["times"][name]
    # The shared mix suffers real slowdowns; the neighbor makes it worse.
    slow = payload["slowdowns"]
    assert all(v > 1.05 for v in slow["shared"].values()), slow
    assert all(slow["with_neighbor"][j] > slow["shared"][j]
               for j in slow["shared"]), slow
    # Both live policies re-converge onto a genuinely different plan.
    for policy, a in payload["autotune"].items():
        assert a["adapted"], (policy, a)
        assert a["quiet_best"] != a["congested_best"], (policy, a)
        assert a["rounds_to_reconverge"] is not None, (policy, a)

    benchmark.extra_info["best_by_level"] = {
        level: cell["best"] for level, cell in ranking.items()}
    benchmark.extra_info["slowdowns"] = {
        kind: {j: round(v, 2) for j, v in vals.items()}
        for kind, vals in slow.items()}
    benchmark.extra_info["reconverge_rounds"] = {
        policy: a["rounds_to_reconverge"]
        for policy, a in payload["autotune"].items()}


if __name__ == "__main__":
    sys.exit(script_main("ext_fleet", __doc__))
