"""Model-vs-implementation validation (the Section V-B1 exercise).

The paper feeds Netgauge-measured parameters into PLogGP, then checks
whether the model's *rankings* survive contact with the real library —
finding the trends hold but exact thresholds shift (their list of
suspects: parameters measured through MPI but spent on verbs, QPs
absent from the model, no inline/BlueFlame in their module).

This benchmark replays that loop entirely in-repo: for each message
size, compare (a) the PLogGP-model ranking of transport-partition
counts against (b) the simulator's measured ranking from the overhead
benchmark, and report where they agree.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from repro.exp import run_spec, script_main
from repro.exp.experiments import (
    MVS_CANDIDATES,
    MVS_N_USER as N_USER,
    MVS_SIZES,
    ext_model_vs_sim_spec,
)
from repro.units import KiB, MiB

CANDIDATES = list(MVS_CANDIDATES)
SIZES = list(MVS_SIZES)


def run_comparison(sizes=SIZES, iterations=20, warmup=3, delay=0.0):
    """{size: {"model": ranked counts, "measured": ranked counts}}.

    ``delay`` defaults to 0: the overhead benchmark injects no noise,
    so the model is evaluated under simultaneous arrival too.
    """
    return run_spec(ext_model_vs_sim_spec(
        sizes, iterations, warmup, delay))["comparison"]


def agreement(result) -> float:
    """Fraction of sizes where model and simulator pick the same winner."""
    hits = sum(1 for size in result
               if result[size]["model"][0] == result[size]["measured"][0])
    return hits / len(result)


def test_ext_model_vs_sim(benchmark):
    small, large = 16 * KiB, 16 * MiB
    result = benchmark.pedantic(
        run_comparison, args=([small, large], 8, 2), rounds=1,
        iterations=1)
    # The paper's finding, reproduced: exact winners may differ between
    # model and implementation (their Section V-B1 discrepancy), but
    # the *trend* — larger messages tolerate/benefit from more
    # transport partitions — holds in both worlds.
    for world in ("model", "measured"):
        assert result[large][world][0] >= result[small][world][0] or \
            result[large][world].index(32) <= result[small][world].index(32)
    for size, data in result.items():
        assert all(t > 0 for t in data["measured_times"].values())
    benchmark.extra_info["winner_agreement"] = agreement(result)
    benchmark.extra_info["model_winners"] = str(
        {size: data["model"][0] for size, data in result.items()})
    benchmark.extra_info["measured_winners"] = str(
        {size: data["measured"][0] for size, data in result.items()})


if __name__ == "__main__":
    sys.exit(script_main("ext_model_vs_sim", __doc__))
