"""Fig. 14: Sweep3D communication speedup at 1024 cores.

8x8 ranks x 16 threads (one rank per node), three (compute, noise)
points giving laggard delays of 10 us, 40 us and 400 us — the paper's
three subfigures.  Reported: communication-time speedup of the PLogGP
and timer designs over ``part_persist`` (critical-path compute
subtracted).  Expected shape: clear medium-message speedups with small
noise (paper: up to 1.60x/1.63x at 1 MB in 14a/14b), the timer design
matching or beating static PLogGP, speedups near 1.0 once the laggard
delay dominates (paper 14c: 1.04x) and for very large messages.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from benchmarks.common import (
    FAST_SWEEP,
    SWEEP_ITER,
    SWEEP_SIZES,
    SWEEP_SIZES_FAST,
    ploggp_aggregator,
    timer_aggregator,
)
from repro.bench.reporting import format_speedup_series
from repro.bench.sweep import run_sweep
from repro.units import KiB, MiB, ms, us

#: (compute, noise fraction) -> laggard delay of 10/40/400 us.
NOISE_POINTS = [
    ("14a: 1ms+1% (10us)", 1e-3, 0.01),
    ("14b: 1ms+4% (40us)", 1e-3, 0.04),
    ("14c: 10ms+4% (400us)", 10e-3, 0.04),
]
GRID = (8, 8)
N_THREADS = 16
TIMER_DELTA = us(8)


def run_fig14(grid, sizes, noise_points, iter_kwargs):
    out = {}
    for label, compute, noise in noise_points:
        base = {}
        for size in sizes:
            base[size] = run_sweep(
                None, grid=grid, n_threads=N_THREADS, total_bytes=size,
                compute=compute, noise_fraction=noise,
                **iter_kwargs).mean_comm_time
        for name, module in (
            ("ploggp", ploggp_aggregator()),
            ("timer", timer_aggregator(TIMER_DELTA)),
        ):
            series = {}
            for size in sizes:
                ours = run_sweep(
                    module, grid=grid, n_threads=N_THREADS,
                    total_bytes=size, compute=compute,
                    noise_fraction=noise, **iter_kwargs).mean_comm_time
                series[size] = base[size] / ours
            out[f"{label} {name}"] = series
    return out


def test_fig14_sweep3d(benchmark):
    # Reduced grid for the benchmark suite; run the module directly for
    # the paper's full 8x8.
    series = benchmark.pedantic(
        run_fig14, args=((4, 4), SWEEP_SIZES_FAST, NOISE_POINTS[:2], FAST_SWEEP),
        rounds=1, iterations=1)
    mid = 256 * KiB
    # Medium-message speedup with 10us noise.
    assert series["14a: 1ms+1% (10us) ploggp"][mid] > 1.25
    # With 40us noise, the timer holds up where static grouping stalls.
    assert (series["14b: 1ms+4% (40us) timer"][mid]
            > series["14b: 1ms+4% (40us) ploggp"][mid])
    benchmark.extra_info["speedup_14a_ploggp_256KiB"] = round(
        series["14a: 1ms+1% (10us) ploggp"][mid], 2)
    benchmark.extra_info["speedup_14b_timer_256KiB"] = round(
        series["14b: 1ms+4% (40us) timer"][mid], 2)


if __name__ == "__main__":
    print(__doc__)
    print(f"grid {GRID[0]}x{GRID[1]} x {N_THREADS} threads = "
          f"{GRID[0] * GRID[1] * N_THREADS} cores")
    print(format_speedup_series(
        run_fig14(GRID, SWEEP_SIZES, NOISE_POINTS, SWEEP_ITER)))
    sys.exit(0)
