"""Fig. 14: Sweep3D communication speedup at 1024 cores.

8x8 ranks x 16 threads (one rank per node), three (compute, noise)
points giving laggard delays of 10 us, 40 us and 400 us — the paper's
three subfigures.  Reported: communication-time speedup of the PLogGP
and timer designs over ``part_persist`` (critical-path compute
subtracted).  Expected shape: clear medium-message speedups with small
noise (paper: up to 1.60x/1.63x at 1 MB in 14a/14b), the timer design
matching or beating static PLogGP, speedups near 1.0 once the laggard
delay dominates (paper 14c: 1.04x) and for very large messages.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from benchmarks.common import FAST_SWEEP, SWEEP_SIZES_FAST
from repro.exp import run_spec, script_main
from repro.exp.experiments import (
    FIG14_GRID as GRID,
    FIG14_N_THREADS as N_THREADS,
    FIG14_NOISE_POINTS,
    FIG14_TIMER_DELTA as TIMER_DELTA,
    fig14_spec,
)
from repro.units import KiB

NOISE_POINTS = list(FIG14_NOISE_POINTS)


def run_fig14(grid, sizes, noise_points, iter_kwargs):
    return run_spec(
        fig14_spec(grid, sizes, noise_points, iter_kwargs))["series"]


def test_fig14_sweep3d(benchmark):
    # Reduced grid for the benchmark suite; run the module directly for
    # the paper's full 8x8.
    series = benchmark.pedantic(
        run_fig14, args=((4, 4), SWEEP_SIZES_FAST, NOISE_POINTS[:2], FAST_SWEEP),
        rounds=1, iterations=1)
    mid = 256 * KiB
    # Medium-message speedup with 10us noise.
    assert series["14a: 1ms+1% (10us) ploggp"][mid] > 1.25
    # With 40us noise, the timer holds up where static grouping stalls.
    assert (series["14b: 1ms+4% (40us) timer"][mid]
            > series["14b: 1ms+4% (40us) ploggp"][mid])
    benchmark.extra_info["speedup_14a_ploggp_256KiB"] = round(
        series["14a: 1ms+1% (10us) ploggp"][mid], 2)
    benchmark.extra_info["speedup_14b_timer_256KiB"] = round(
        series["14b: 1ms+4% (40us) timer"][mid], 2)


if __name__ == "__main__":
    sys.exit(script_main("fig14", __doc__))
