"""Fig. 10: profiled arrival pattern, 8 MiB, 100 ms compute, 4 % noise.

Profiles the perceived-bandwidth benchmark's ``MPI_Pready`` times and
overlays the estimated per-partition wire time, as the paper's PMPI
profiler does.  Expected shape: the n-1 early partitions all finish
transferring well inside the laggard's ~4 ms delay — the whole
early-bird window is available, and a delta just above the non-laggard
arrival spread suffices.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from repro.exp import run_spec, script_main
from repro.exp.experiments import (
    PROFILE_N_USER as N_USER,
    arrival_profile_spec,
    profile_from_metrics,
    profile_table as report,
)
from repro.profiler import early_bird_fraction
from repro.units import MiB

TOTAL = 8 * MiB


def run_profile(total_bytes=TOTAL, iterations=10, warmup=3):
    payload = run_spec(
        arrival_profile_spec(total_bytes, iterations, warmup))
    return profile_from_metrics(payload["profile"])


def test_fig10_medium_profile(benchmark):
    profile = benchmark.pedantic(
        run_profile, args=(TOTAL, 5, 2,), rounds=1, iterations=1)
    fraction = early_bird_fraction(profile)
    # Fig. 10: every non-laggard partition transfers inside the delay.
    assert fraction == 1.0
    # Laggard delayed by ~4% of 100 ms.
    assert 3e-3 < profile.laggard_time < 6e-3
    benchmark.extra_info["early_bird_fraction"] = fraction
    benchmark.extra_info["laggard_delay_ms"] = round(
        profile.laggard_time * 1e3, 2)


if __name__ == "__main__":
    sys.exit(script_main("fig10", __doc__))
