"""Fig. 10: profiled arrival pattern, 8 MiB, 100 ms compute, 4 % noise.

Profiles the perceived-bandwidth benchmark's ``MPI_Pready`` times and
overlays the estimated per-partition wire time, as the paper's PMPI
profiler does.  Expected shape: the n-1 early partitions all finish
transferring well inside the laggard's ~4 ms delay — the whole
early-bird window is available, and a delta just above the non-laggard
arrival spread suffices.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from benchmarks.common import PERCEIVED_COMPUTE, PERCEIVED_NOISE
from repro.bench.pair import run_partitioned_pair
from repro.bench.reporting import format_table
from repro.mpi.persist_module import PersistSpec
from repro.profiler import arrival_profile, early_bird_fraction
from repro.runtime import SingleThreadDelay
from repro.units import MiB, fmt_time

N_USER = 32
TOTAL = 8 * MiB


def run_profile(total_bytes=TOTAL, iterations=10, warmup=3):
    result = run_partitioned_pair(
        PersistSpec,
        n_user=N_USER,
        partition_size=total_bytes // N_USER,
        compute=PERCEIVED_COMPUTE,
        noise=SingleThreadDelay(PERCEIVED_NOISE),
        iterations=iterations,
        warmup=warmup,
    )
    rounds = [[t - min(r) for t in r] for r in result.arrival_rounds()]
    return arrival_profile(rounds, partition_size=total_bytes // N_USER)


def report(profile):
    rows = []
    laggard = profile.laggard_time
    for i, span in enumerate(profile.compute_spans):
        end = profile.transfer_end(i)
        rows.append([
            i,
            fmt_time(span),
            fmt_time(end),
            "early" if (i < profile.n_partitions - 1 and end <= laggard)
            else ("laggard" if i == profile.n_partitions - 1 else "late"),
        ])
    return format_table(
        ["arrival rank", "pready (rel)", "wire done", "early bird?"], rows)


def test_fig10_medium_profile(benchmark):
    profile = benchmark.pedantic(
        run_profile, args=(TOTAL, 5, 2,), rounds=1, iterations=1)
    fraction = early_bird_fraction(profile)
    # Fig. 10: every non-laggard partition transfers inside the delay.
    assert fraction == 1.0
    # Laggard delayed by ~4% of 100 ms.
    assert 3e-3 < profile.laggard_time < 6e-3
    benchmark.extra_info["early_bird_fraction"] = fraction
    benchmark.extra_info["laggard_delay_ms"] = round(
        profile.laggard_time * 1e3, 2)


if __name__ == "__main__":
    print(__doc__)
    profile = run_profile()
    print(report(profile))
    print(f"\nearly-bird fraction: {early_bird_fraction(profile):.2f} "
          f"(paper: 1.0 — all early partitions clear the wire)")
    sys.exit(0)
