"""Fig. 7: overhead benchmark, 16 user/transport partitions, QP sweep.

No aggregation (16 transport partitions) while the number of QPs
varies.  Expected shape (Section V-B1): one QP is sufficient until
around 64 KiB; for larger messages one QP per partition performs
better ("large messages preferring more concurrency").
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from benchmarks.common import FAST_PTP, OVERHEAD_SIZES_FAST
from repro.exp import run_spec, script_main
from repro.exp.experiments import (
    FIG07_N_USER as N_USER,
    FIG07_QP_COUNTS,
    fig07_spec,
)
from repro.units import KiB, MiB

QP_COUNTS = list(FIG07_QP_COUNTS)


def run_fig7(sizes, iter_kwargs):
    return run_spec(fig07_spec(sizes, iter_kwargs))["series"]


def test_fig07_qp_sweep(benchmark):
    series = benchmark.pedantic(
        run_fig7, args=(OVERHEAD_SIZES_FAST + [16 * MiB], FAST_PTP,), rounds=1, iterations=1)
    # Small: QP count hardly matters.
    small = 4 * KiB
    assert abs(series["QP=1"][small] - series["QP=16"][small]) \
        / series["QP=1"][small] < 0.3
    # Large: 16 QPs beat 1 QP.
    big = 16 * MiB
    assert series["QP=16"][big] > series["QP=1"][big]
    benchmark.extra_info["qp16_over_qp1_at_16MiB"] = round(
        series["QP=16"][big] / series["QP=1"][big], 3)


if __name__ == "__main__":
    sys.exit(script_main("fig07", __doc__))
