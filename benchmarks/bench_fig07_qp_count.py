"""Fig. 7: overhead benchmark, 16 user/transport partitions, QP sweep.

No aggregation (16 transport partitions) while the number of QPs
varies.  Expected shape (Section V-B1): one QP is sufficient until
around 64 KiB; for larger messages one QP per partition performs
better ("large messages preferring more concurrency").
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from benchmarks.common import (
    FAST_PTP,
    OVERHEAD_SIZES,
    OVERHEAD_SIZES_FAST,
    PTP_ITER,
)
from repro.bench.overhead import overhead_speedup_series
from repro.bench.reporting import format_speedup_series
from repro.core import NoAggregation
from repro.units import KiB, MiB

N_USER = 16
QP_COUNTS = [1, 4, 16]


def run_fig7(sizes, iter_kwargs):
    baseline_cache = {}
    return {
        f"QP={n_qps}": overhead_speedup_series(
            NoAggregation(n_qps=n_qps),
            n_user=N_USER, sizes=sizes,
            baseline_cache=baseline_cache, **iter_kwargs)
        for n_qps in QP_COUNTS
    }


def test_fig07_qp_sweep(benchmark):
    series = benchmark.pedantic(
        run_fig7, args=(OVERHEAD_SIZES_FAST + [16 * MiB], FAST_PTP,), rounds=1, iterations=1)
    # Small: QP count hardly matters.
    small = 4 * KiB
    assert abs(series["QP=1"][small] - series["QP=16"][small]) \
        / series["QP=1"][small] < 0.3
    # Large: 16 QPs beat 1 QP.
    big = 16 * MiB
    assert series["QP=16"][big] > series["QP=1"][big]
    benchmark.extra_info["qp16_over_qp1_at_16MiB"] = round(
        series["QP=16"][big] / series["QP=1"][big], 3)


if __name__ == "__main__":
    print(__doc__)
    print(format_speedup_series(run_fig7(OVERHEAD_SIZES, PTP_ITER)))
    sys.exit(0)
