"""Fig. 9: perceived bandwidth of the three designs (16 & 32 partitions).

100 ms compute, 4 % noise, single-thread-delay model, delta = 3000 us
for the timer design — the paper's exact workload.  Expected shape:
the persistent implementation and the timer design perceive the most
bandwidth (the laggard's message stays small), the static PLogGP
grouping trails for medium sizes, and everyone collapses towards the
single-thread hardware line at 128 MiB.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from benchmarks.common import PERCEIVED_SIZES_FAST
from repro.bench.perceived import single_thread_line
from repro.exp import run_spec, script_main
from repro.exp.experiments import fig09_spec
from repro.units import MiB


def run_fig9(n_user, sizes, iterations=10, warmup=3):
    return run_spec(
        fig09_spec([n_user], sizes, iterations, warmup))["series"]


def test_fig09_perceived_bandwidth(benchmark):
    series = benchmark.pedantic(
        run_fig9, args=(32, PERCEIVED_SIZES_FAST, 5, 2,), rounds=1, iterations=1)
    line = single_thread_line()
    mid = 8 * MiB
    # Early bird: everyone above the single-thread line at medium size.
    for name in series:
        assert series[name][mid] > line
    # PLogGP trails persist and timer.
    assert series["ploggp"][mid] < series["persist"][mid]
    assert series["ploggp"][mid] < series["timer(3000us)"][mid]
    benchmark.extra_info["persist_8MiB_GiBps"] = round(
        series["persist"][mid] / 2**30, 1)
    benchmark.extra_info["ploggp_8MiB_GiBps"] = round(
        series["ploggp"][mid] / 2**30, 1)
    benchmark.extra_info["timer_8MiB_GiBps"] = round(
        series["timer(3000us)"][mid] / 2**30, 1)


if __name__ == "__main__":
    sys.exit(script_main("fig09", __doc__))
