"""Fig. 9: perceived bandwidth of the three designs (16 & 32 partitions).

100 ms compute, 4 % noise, single-thread-delay model, delta = 3000 us
for the timer design — the paper's exact workload.  Expected shape:
the persistent implementation and the timer design perceive the most
bandwidth (the laggard's message stays small), the static PLogGP
grouping trails for medium sizes, and everyone collapses towards the
single-thread hardware line at 128 MiB.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from benchmarks.common import (
    PERCEIVED_COMPUTE,
    PERCEIVED_NOISE,
    PERCEIVED_SIZES,
    PERCEIVED_SIZES_FAST,
    ploggp_aggregator,
    timer_aggregator,
)
from repro.bench.perceived import run_perceived_bandwidth, single_thread_line
from repro.bench.reporting import format_bandwidth_series
from repro.units import MiB


def run_fig9(n_user, sizes, iterations=10, warmup=3):
    designs = {
        "persist": None,
        "ploggp": ploggp_aggregator(),
        "timer(3000us)": timer_aggregator(),
    }
    series = {name: {} for name in designs}
    for size in sizes:
        for name, module in designs.items():
            series[name][size] = run_perceived_bandwidth(
                module, n_user=n_user, total_bytes=size,
                compute=PERCEIVED_COMPUTE, noise_fraction=PERCEIVED_NOISE,
                iterations=iterations, warmup=warmup).perceived_bandwidth
    return series


def test_fig09_perceived_bandwidth(benchmark):
    series = benchmark.pedantic(
        run_fig9, args=(32, PERCEIVED_SIZES_FAST, 5, 2,), rounds=1, iterations=1)
    line = single_thread_line()
    mid = 8 * MiB
    # Early bird: everyone above the single-thread line at medium size.
    for name in series:
        assert series[name][mid] > line
    # PLogGP trails persist and timer.
    assert series["ploggp"][mid] < series["persist"][mid]
    assert series["ploggp"][mid] < series["timer(3000us)"][mid]
    benchmark.extra_info["persist_8MiB_GiBps"] = round(
        series["persist"][mid] / 2**30, 1)
    benchmark.extra_info["ploggp_8MiB_GiBps"] = round(
        series["ploggp"][mid] / 2**30, 1)
    benchmark.extra_info["timer_8MiB_GiBps"] = round(
        series["timer(3000us)"][mid] / 2**30, 1)


if __name__ == "__main__":
    print(__doc__)
    for n_user in (16, 32):
        print(f"\n--- {n_user} partitions ---")
        print(format_bandwidth_series(
            run_fig9(n_user, PERCEIVED_SIZES),
            reference=single_thread_line()))
    sys.exit(0)
