"""Fig. 6: overhead benchmark, 32 user partitions, transport-count sweep.

Keeps 2 QPs fixed and varies the number of transport partitions,
reporting speedup over ``part_persist``.  Expected shape (Section
V-B1): small messages show only a sub-2% spread between transport
counts; past ~16 KiB more transport partitions win; speedup falls to
~1.0 near wire saturation (~4 MiB).
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from benchmarks.common import (
    FAST_PTP,
    OVERHEAD_SIZES,
    OVERHEAD_SIZES_FAST,
    PTP_ITER,
)
from repro.bench.overhead import overhead_speedup_series
from repro.bench.reporting import format_speedup_series
from repro.core import FixedAggregation
from repro.units import KiB, MiB

N_USER = 32
TRANSPORT_COUNTS = [2, 8, 32]
N_QPS = 2


def run_fig6(sizes, iter_kwargs):
    baseline_cache = {}
    return {
        f"T={n_transport}": overhead_speedup_series(
            FixedAggregation(n_transport, N_QPS),
            n_user=N_USER, sizes=sizes,
            baseline_cache=baseline_cache, **iter_kwargs)
        for n_transport in TRANSPORT_COUNTS
    }


def test_fig06_transport_partition_sweep(benchmark):
    series = benchmark.pedantic(
        run_fig6, args=(OVERHEAD_SIZES_FAST, FAST_PTP,), rounds=1, iterations=1)
    # Fewer transport partitions are (directionally) better for small
    # messages.  The paper measured only a 0.16-1.77% spread here; our
    # per-WR completion costs separate the extremes more — documented
    # as a deviation in EXPERIMENTS.md.
    small = 4 * KiB
    assert series["T=2"][small] > series["T=32"][small]
    # Near saturation everyone converges on the baseline.
    big = 4 * MiB
    for key in series:
        assert 0.85 < series[key][big] < 1.25
    benchmark.extra_info["speedup_T2_64KiB"] = round(
        series["T=2"][64 * KiB], 2)
    benchmark.extra_info["speedup_T32_64KiB"] = round(
        series["T=32"][64 * KiB], 2)


if __name__ == "__main__":
    print(__doc__)
    print(format_speedup_series(run_fig6(OVERHEAD_SIZES, PTP_ITER)))
    sys.exit(0)
