"""Fig. 6: overhead benchmark, 32 user partitions, transport-count sweep.

Keeps 2 QPs fixed and varies the number of transport partitions,
reporting speedup over ``part_persist``.  Expected shape (Section
V-B1): small messages show only a sub-2% spread between transport
counts; past ~16 KiB more transport partitions win; speedup falls to
~1.0 near wire saturation (~4 MiB).
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from benchmarks.common import FAST_PTP, OVERHEAD_SIZES_FAST
from repro.exp import run_spec, script_main
from repro.exp.experiments import (
    FIG06_N_QPS as N_QPS,
    FIG06_N_USER as N_USER,
    FIG06_TRANSPORT_COUNTS,
    fig06_spec,
)
from repro.units import KiB, MiB

TRANSPORT_COUNTS = list(FIG06_TRANSPORT_COUNTS)


def run_fig6(sizes, iter_kwargs):
    return run_spec(fig06_spec(sizes, iter_kwargs))["series"]


def test_fig06_transport_partition_sweep(benchmark):
    series = benchmark.pedantic(
        run_fig6, args=(OVERHEAD_SIZES_FAST, FAST_PTP,), rounds=1, iterations=1)
    # Fewer transport partitions are (directionally) better for small
    # messages.  The paper measured only a 0.16-1.77% spread here; our
    # per-WR completion costs separate the extremes more — documented
    # as a deviation in EXPERIMENTS.md.
    small = 4 * KiB
    assert series["T=2"][small] > series["T=32"][small]
    # Near saturation everyone converges on the baseline.
    big = 4 * MiB
    for key in series:
        assert 0.85 < series[key][big] < 1.25
    benchmark.extra_info["speedup_T2_64KiB"] = round(
        series["T=2"][64 * KiB], 2)
    benchmark.extra_info["speedup_T32_64KiB"] = round(
        series["T=32"][64 * KiB], 2)


if __name__ == "__main__":
    sys.exit(script_main("fig06", __doc__))
