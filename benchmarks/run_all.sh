#!/bin/sh
# Regenerate every figure/table at paper scale into results/.
# Takes some minutes; each bench also runs standalone.
set -e
cd "$(dirname "$0")/.."
mkdir -p results
for b in \
    bench_fig03_ploggp_model \
    bench_table1_optimal_partitions \
    bench_fig06_transport_partitions \
    bench_fig07_qp_count \
    bench_fig08_aggregator_comparison \
    bench_fig09_perceived_bandwidth \
    bench_fig10_arrival_profile_medium \
    bench_fig11_arrival_profile_large \
    bench_fig12_minimum_delta \
    bench_fig13_delta_window \
    bench_fig14_sweep3d \
    bench_ext_ablations \
    bench_ext_model_vs_sim \
    bench_ext_halo \
    bench_ext_faults \
    bench_ext_autotune \
    bench_ext_stencil; do
    echo "== $b =="
    python "benchmarks/$b.py" > "results/$b.txt" 2>&1
done
echo "all results written to results/"
