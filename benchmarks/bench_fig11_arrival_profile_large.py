"""Fig. 11: profiled arrival pattern, 128 MiB, 100 ms compute, 4 % noise.

Same profile as Fig. 10 at 128 MiB.  Expected shape: the wire cannot
drain 127 MiB inside the ~4 ms laggard delay — only roughly 3/8 of the
early partitions transfer before the laggard arrives, so early-bird
gains are marginal and the perceived bandwidth sits near the hardware
line (Section V-C2).
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from benchmarks.bench_fig10_arrival_profile_medium import report, run_profile
from repro.exp import script_main
from repro.profiler import early_bird_fraction
from repro.units import MiB

__all__ = ["report", "run_profile"]

TOTAL = 128 * MiB


def test_fig11_large_profile(benchmark):
    profile = benchmark.pedantic(
        run_profile, args=(TOTAL, 5, 2,), rounds=1, iterations=1)
    fraction = early_bird_fraction(profile)
    # Fig. 11: about 3/8 of the early partitions make it out in time.
    assert 0.2 < fraction < 0.55
    benchmark.extra_info["early_bird_fraction"] = round(fraction, 3)
    benchmark.extra_info["paper_value"] = "3/8 = 0.375"


if __name__ == "__main__":
    sys.exit(script_main("fig11", __doc__))
