"""Table I: optimal transport partitions predicted by PLogGP.

Runs the model optimizer across the table's size range and checks the
output against the paper's published rows:

    <256KiB -> 1, 512KiB-1MiB -> 2, 2-4MiB -> 4, 8-16MiB -> 8,
    32-64MiB -> 16, >128MiB -> 32.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from repro.exp import run_spec, script_main
from repro.exp.experiments import table1_report as report, table1_spec
from repro.model.tables import TABLE1_PAPER


def run_table1():
    return run_spec(table1_spec())["table"]


def test_table1_reproduction(benchmark):
    got = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    matches = sum(1 for size, want in TABLE1_PAPER.items()
                  if got[size] == want)
    benchmark.extra_info["rows_matched"] = f"{matches}/{len(TABLE1_PAPER)}"
    assert matches == len(TABLE1_PAPER)


if __name__ == "__main__":
    sys.exit(script_main("table1", __doc__))
