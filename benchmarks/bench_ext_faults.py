"""Extension: perceived bandwidth under deterministic chunk loss.

The paper evaluates on a healthy EDR fabric; this extension arms the
``repro.faults`` subsystem and sweeps per-chunk loss probabilities over
the three designs of Fig. 9.  Lost chunks are recovered by the RC
retransmission machinery (``retry_cnt`` / ACK-timeout), so the question
is how gracefully each design's perceived bandwidth degrades: the
aggregating designs put more bytes behind each WR, so one lost chunk
stalls a larger in-order window than the per-partition baseline.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from repro.exp import run_spec, script_main
from repro.exp.experiments import (
    FAULTS_LOSSES,
    FAULTS_N_USER as N_USER,
    FAULTS_TOTAL as TOTAL_BYTES,
    ext_faults_spec,
    faults_table_report as format_faults_table,
)
from repro.units import MiB, fmt_rate

LOSS_RATES = list(FAULTS_LOSSES)


def run_ext_faults(n_user=N_USER, total_bytes=TOTAL_BYTES,
                   losses=LOSS_RATES, iterations=10, warmup=3):
    """{loss: {design: (perceived bw, retransmits)}} over the sweep."""
    payload = run_spec(
        ext_faults_spec(n_user, total_bytes, losses, iterations, warmup))
    table = {}
    for loss, name, bw, rexmt in payload["rows"]:
        table.setdefault(loss, {})[name] = (bw, rexmt)
    return table


def test_ext_faults(benchmark):
    table = benchmark.pedantic(
        run_ext_faults, args=(8, 8 * MiB, [0.0, 1e-3], 3, 1),
        rounds=1, iterations=1)
    clean = table[0.0]
    lossy = table[1e-3]
    # The off path stays off: a loss-free sweep never retransmits.
    assert all(rexmt == 0 for _, rexmt in clean.values())
    # Every design completes under loss (recovery, not hangs).
    assert all(bw > 0 for bw, _ in lossy.values())
    benchmark.extra_info["persist_bw_loss1e3"] = fmt_rate(
        lossy["persist"][0])


if __name__ == "__main__":
    sys.exit(script_main("ext_faults", __doc__))
