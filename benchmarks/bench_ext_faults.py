"""Extension: perceived bandwidth under deterministic chunk loss.

The paper evaluates on a healthy EDR fabric; this extension arms the
``repro.faults`` subsystem and sweeps per-chunk loss probabilities over
the three designs of Fig. 9.  Lost chunks are recovered by the RC
retransmission machinery (``retry_cnt`` / ACK-timeout), so the question
is how gracefully each design's perceived bandwidth degrades: the
aggregating designs put more bytes behind each WR, so one lost chunk
stalls a larger in-order window than the per-partition baseline.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from benchmarks.common import (
    PERCEIVED_COMPUTE,
    PERCEIVED_NOISE,
    ploggp_aggregator,
    timer_aggregator,
)
from repro.bench.perceived import run_perceived_bandwidth
from repro.bench.reporting import format_table
from repro.units import fmt_rate
from repro.faults import FaultSchedule
from repro.units import MiB

N_USER = 16
TOTAL_BYTES = 32 * MiB
LOSS_RATES = [0.0, 1e-5, 1e-4, 1e-3]


def run_ext_faults(n_user=N_USER, total_bytes=TOTAL_BYTES,
                   losses=LOSS_RATES, iterations=10, warmup=3):
    """{loss: {design: (perceived bw, retransmits)}} over the sweep."""
    designs = {
        "persist": None,
        "ploggp": ploggp_aggregator(),
        "timer(3000us)": timer_aggregator(),
    }
    table = {}
    for loss in losses:
        table[loss] = {}
        for name, module in designs.items():
            schedule = (FaultSchedule().chunk_loss(loss)
                        if loss > 0.0 else None)
            point = run_perceived_bandwidth(
                module, n_user=n_user, total_bytes=total_bytes,
                compute=PERCEIVED_COMPUTE, noise_fraction=PERCEIVED_NOISE,
                iterations=iterations, warmup=warmup,
                fault_schedule=schedule)
            counters = point.result.counters
            table[loss][name] = (point.perceived_bandwidth,
                                 counters.get("ib.retransmits", 0))
    return table


def format_faults_table(table):
    designs = list(next(iter(table.values())))
    headers = ["loss"] + [f"{d} (bw, rexmt)" for d in designs]
    rows = []
    for loss, line in table.items():
        row = [f"{loss:g}"]
        for d in designs:
            bw, rexmt = line[d]
            row.append(f"{fmt_rate(bw)} {rexmt:4d}")
        rows.append(row)
    return format_table(headers, rows)


def test_ext_faults(benchmark):
    table = benchmark.pedantic(
        run_ext_faults, args=(8, 8 * MiB, [0.0, 1e-3], 3, 1),
        rounds=1, iterations=1)
    clean = table[0.0]
    lossy = table[1e-3]
    # The off path stays off: a loss-free sweep never retransmits.
    assert all(rexmt == 0 for _, rexmt in clean.values())
    # Every design completes under loss (recovery, not hangs).
    assert all(bw > 0 for bw, _ in lossy.values())
    benchmark.extra_info["persist_bw_loss1e3"] = fmt_rate(
        lossy["persist"][0])


if __name__ == "__main__":
    print(__doc__)
    print(f"{N_USER} partitions x {TOTAL_BYTES // MiB // N_USER} MiB, "
          f"100 ms compute, 4 % noise; bw = perceived, rexmt = RC "
          f"retransmissions across the run")
    print(format_faults_table(run_ext_faults()))
    sys.exit(0)
