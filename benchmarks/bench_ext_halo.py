"""Extension: halo-exchange pattern speedups.

The paper's benchmark suite [14] ships a halo exchange next to Sweep3D
but the paper's evaluation shows only the sweep; this extension runs
the halo with the same designs.  Unlike the wavefront, all ranks
exchange concurrently, so the fabric (including ingress contention at
every rank) is loaded uniformly.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from repro.exp import run_spec, script_main
from repro.exp.experiments import (
    HALO_GRID as GRID,
    HALO_N_THREADS as N_THREADS,
    HALO_SIZES,
    HALO_SIZES_FAST,
    ext_halo_spec,
)
from repro.exp.modules import topology_desc
from repro.units import KiB, MiB

SIZES = list(HALO_SIZES)
SIZES_FAST = list(HALO_SIZES_FAST)


def run_ext_halo(grid=GRID, sizes=SIZES, iterations=10, warmup=3,
                 topology=None):
    if topology is not None and not isinstance(topology, (list, tuple)):
        topology = topology_desc(topology)
    return run_spec(ext_halo_spec(grid, sizes, iterations, warmup,
                                  topology))["series"]


def test_ext_halo(benchmark):
    series = benchmark.pedantic(
        run_ext_halo, args=((4, 4), SIZES_FAST, 3, 1), rounds=1,
        iterations=1)
    mid = 256 * KiB
    # Aggregation helps the halo at medium face sizes too.
    assert series["ploggp"][mid] > 1.2
    benchmark.extra_info["halo_speedup_ploggp_256KiB"] = round(
        series["ploggp"][mid], 2)


if __name__ == "__main__":
    sys.exit(script_main("ext_halo", __doc__))
