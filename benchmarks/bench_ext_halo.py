"""Extension: halo-exchange pattern speedups.

The paper's benchmark suite [14] ships a halo exchange next to Sweep3D
but the paper's evaluation shows only the sweep; this extension runs
the halo with the same designs.  Unlike the wavefront, all ranks
exchange concurrently, so the fabric (including ingress contention at
every rank) is loaded uniformly.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from benchmarks.common import ploggp_aggregator, timer_aggregator
from repro.bench.halo import run_halo
from repro.bench.reporting import format_speedup_series
from repro.ib.topology import DragonflyPlus
from repro.units import KiB, MiB, ms, us

GRID = (8, 8)
N_THREADS = 16
SIZES = [64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB]
SIZES_FAST = [256 * KiB, 1 * MiB]


def run_ext_halo(grid=GRID, sizes=SIZES, iterations=10, warmup=3,
                 topology=None):
    designs = {
        "ploggp": ploggp_aggregator(),
        "timer": timer_aggregator(us(8)),
    }
    series = {name: {} for name in designs}
    for size in sizes:
        base = run_halo(None, grid=grid, n_threads=N_THREADS,
                        face_bytes=size, compute=ms(1), noise_fraction=0.01,
                        iterations=iterations, warmup=warmup,
                        topology=topology).mean_comm_time
        for name, module in designs.items():
            ours = run_halo(module, grid=grid, n_threads=N_THREADS,
                            face_bytes=size, compute=ms(1),
                            noise_fraction=0.01, iterations=iterations,
                            warmup=warmup, topology=topology).mean_comm_time
            series[name][size] = base / ours
    return series


def test_ext_halo(benchmark):
    series = benchmark.pedantic(
        run_ext_halo, args=((4, 4), SIZES_FAST, 3, 1), rounds=1,
        iterations=1)
    mid = 256 * KiB
    # Aggregation helps the halo at medium face sizes too.
    assert series["ploggp"][mid] > 1.2
    benchmark.extra_info["halo_speedup_ploggp_256KiB"] = round(
        series["ploggp"][mid], 2)


if __name__ == "__main__":
    print(__doc__)
    topo = DragonflyPlus(nodes_per_leaf=16, leaves_per_group=2)
    print(f"grid {GRID[0]}x{GRID[1]} x {N_THREADS} threads, Dragonfly+ "
          f"latencies")
    print(format_speedup_series(
        run_ext_halo(topology=topo)))
    sys.exit(0)
