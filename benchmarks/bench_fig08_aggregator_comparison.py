"""Fig. 8: tuning-table vs. PLogGP aggregator, 4/32/128 user partitions.

The brute-force tuning table (built on the simulated fabric, the
virtual-time equivalent of the paper's 23-hour Niagara search) against
the PLogGP model's instant prediction, both as speedup over
``part_persist``.  Expected shape (Section V-B2): narrow benefit range
at 4 partitions; clear medium-message speedup at 32 (paper peak 2.17x
at 128 KiB); largest gains at 128 partitions where oversubscription
makes the baseline's per-message lock contention worse; the two
aggregators stay within a few percent of each other.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from benchmarks.common import FAST_PTP
from repro.exp import run_spec, script_main
from repro.exp.experiments import (
    FIG08_SIZES,
    FIG08_SIZES_FAST,
    FIG08_USER_COUNTS,
    fig08_spec,
)
from repro.units import KiB

USER_COUNTS = list(FIG08_USER_COUNTS)
SIZES = list(FIG08_SIZES)
SIZES_FAST = list(FIG08_SIZES_FAST)


def run_fig8(user_counts, sizes, iter_kwargs, table_iters=5):
    return run_spec(
        fig08_spec(user_counts, sizes, iter_kwargs, table_iters))["series"]


def test_fig08_aggregator_comparison(benchmark):
    series = benchmark.pedantic(
        run_fig8, args=([4, 32], SIZES_FAST, FAST_PTP, 3,), rounds=1, iterations=1)
    mid = 128 * KiB
    # 32 partitions gain clearly at medium sizes; 4 gain less.
    assert series["32p ploggp"][mid] > 1.5
    assert series["32p ploggp"][mid] > series["4p ploggp"][mid]
    # Table and model land in the same neighbourhood (paper: <9%; the
    # reduced-iteration search is noisier, so allow a wider band here —
    # the full-size run in __main__ lands much closer).
    ratio = series["32p tuning-table"][mid] / series["32p ploggp"][mid]
    assert 0.6 < ratio < 1.7
    benchmark.extra_info["speedup_32p_128KiB_ploggp"] = round(
        series["32p ploggp"][mid], 2)
    benchmark.extra_info["speedup_32p_128KiB_table"] = round(
        series["32p tuning-table"][mid], 2)


if __name__ == "__main__":
    sys.exit(script_main("fig08", __doc__))
