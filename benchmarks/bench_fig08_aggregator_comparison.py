"""Fig. 8: tuning-table vs. PLogGP aggregator, 4/32/128 user partitions.

The brute-force tuning table (built on the simulated fabric, the
virtual-time equivalent of the paper's 23-hour Niagara search) against
the PLogGP model's instant prediction, both as speedup over
``part_persist``.  Expected shape (Section V-B2): narrow benefit range
at 4 partitions; clear medium-message speedup at 32 (paper peak 2.17x
at 128 KiB); largest gains at 128 partitions where oversubscription
makes the baseline's per-message lock contention worse; the two
aggregators stay within a few percent of each other.
"""

# Allow both `python benchmarks/bench_*.py` and `python -m benchmarks...`.
if __package__ in (None, ""):
    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


import sys

from benchmarks.common import FAST_PTP, PTP_ITER, ploggp_aggregator
from repro.bench.overhead import overhead_speedup_series
from repro.bench.reporting import format_speedup_series
from repro.core.tuning_table import build_tuning_table
from repro.core import TuningTableAggregator
from repro.units import KiB, MiB

USER_COUNTS = [4, 32, 128]
SIZES = [4 * KiB, 16 * KiB, 64 * KiB, 128 * KiB, 512 * KiB, 2 * MiB,
         8 * MiB]
SIZES_FAST = [16 * KiB, 128 * KiB, 2 * MiB]


def run_fig8(user_counts, sizes, iter_kwargs, table_iters=5):
    out = {}
    for n_user in user_counts:
        table = build_tuning_table(
            n_user_counts=[n_user],
            message_sizes=[s for s in sizes if s >= n_user],
            iterations=table_iters, warmup=1)
        baseline_cache = {}
        usable = [s for s in sizes if s >= n_user]
        out[f"{n_user}p tuning-table"] = overhead_speedup_series(
            TuningTableAggregator(table), n_user=n_user, sizes=usable,
            baseline_cache=baseline_cache, **iter_kwargs)
        out[f"{n_user}p ploggp"] = overhead_speedup_series(
            ploggp_aggregator(), n_user=n_user, sizes=usable,
            baseline_cache=baseline_cache, **iter_kwargs)
    return out


def test_fig08_aggregator_comparison(benchmark):
    series = benchmark.pedantic(
        run_fig8, args=([4, 32], SIZES_FAST, FAST_PTP, 3,), rounds=1, iterations=1)
    mid = 128 * KiB
    # 32 partitions gain clearly at medium sizes; 4 gain less.
    assert series["32p ploggp"][mid] > 1.5
    assert series["32p ploggp"][mid] > series["4p ploggp"][mid]
    # Table and model land in the same neighbourhood (paper: <9%; the
    # reduced-iteration search is noisier, so allow a wider band here —
    # the full-size run in __main__ lands much closer).
    ratio = series["32p tuning-table"][mid] / series["32p ploggp"][mid]
    assert 0.6 < ratio < 1.7
    benchmark.extra_info["speedup_32p_128KiB_ploggp"] = round(
        series["32p ploggp"][mid], 2)
    benchmark.extra_info["speedup_32p_128KiB_table"] = round(
        series["32p tuning-table"][mid], 2)


if __name__ == "__main__":
    print(__doc__)
    print(format_speedup_series(run_fig8(USER_COUNTS, SIZES, PTP_ITER)))
    sys.exit(0)
