"""Tests for the classic LogGP model and size-keyed tables."""

import pytest

from repro.errors import ConfigError
from repro.model import LogGPParams, LogGPTable, back_to_back_time, ptp_time
from repro.units import us


PARAMS = LogGPParams(L=us(1), o_s=us(2), o_r=us(3), g=us(4), G=1e-9)


def test_params_validation():
    with pytest.raises(ConfigError):
        LogGPParams(L=-1, o_s=0, o_r=0, g=0, G=0)


def test_bandwidth_is_inverse_of_G():
    assert PARAMS.bandwidth == pytest.approx(1e9)


def test_zero_G_bandwidth_infinite():
    p = LogGPParams(L=0, o_s=0, o_r=0, g=0, G=0)
    assert p.bandwidth == float("inf")


def test_ptp_time_formula():
    # o_s + (k-1)G + L + o_r
    t = ptp_time(PARAMS, 1001)
    assert t == pytest.approx(us(2) + 1000 * 1e-9 + us(1) + us(3))


def test_ptp_time_single_byte_has_no_wire_term():
    assert ptp_time(PARAMS, 1) == pytest.approx(us(6))


def test_ptp_negative_size_rejected():
    with pytest.raises(ValueError):
        ptp_time(PARAMS, -1)


def test_back_to_back_reduces_to_ptp_for_count_one():
    assert back_to_back_time(PARAMS, 500, 1) == pytest.approx(ptp_time(PARAMS, 500))


def test_back_to_back_two_messages_matches_figure2():
    # Fig. 2: o_s + 2G(k-1) + max(g, o_s, o_r) + L + o_r
    k = 1025
    t = back_to_back_time(PARAMS, k, 2)
    expected = us(2) + 2 * (k - 1) * 1e-9 + max(us(4), us(2), us(3)) + us(1) + us(3)
    assert t == pytest.approx(expected)


def test_back_to_back_monotone_in_count():
    times = [back_to_back_time(PARAMS, 4096, n) for n in (1, 2, 4, 8)]
    assert times == sorted(times)
    assert times[0] < times[-1]


def test_back_to_back_invalid_count():
    with pytest.raises(ValueError):
        back_to_back_time(PARAMS, 100, 0)


def test_scaled_multiplies_overheads_only():
    p = PARAMS.scaled(2.0)
    assert p.o_s == PARAMS.o_s * 2
    assert p.o_r == PARAMS.o_r * 2
    assert p.g == PARAMS.g * 2
    assert p.L == PARAMS.L
    assert p.G == PARAMS.G


def test_table_lookup_floors_to_key():
    small = LogGPParams(L=1, o_s=1, o_r=1, g=1, G=1)
    big = LogGPParams(L=2, o_s=2, o_r=2, g=2, G=2)
    table = LogGPTable({1024: small, 65536: big})
    assert table.lookup(1024) is small
    assert table.lookup(65535) is small
    assert table.lookup(65536) is big
    assert table.lookup(10**9) is big


def test_table_lookup_below_smallest_uses_smallest():
    small = LogGPParams(L=1, o_s=1, o_r=1, g=1, G=1)
    table = LogGPTable({1024: small})
    assert table.lookup(1) is small
    assert table.lookup(0) is small


def test_table_constant():
    table = LogGPTable.constant(PARAMS)
    assert table.lookup(1) is PARAMS
    assert table.lookup(10**12) is PARAMS


def test_table_validation():
    with pytest.raises(ConfigError):
        LogGPTable({})
    with pytest.raises(ConfigError):
        LogGPTable({0: PARAMS})


def test_table_negative_lookup_rejected():
    table = LogGPTable.constant(PARAMS)
    with pytest.raises(ValueError):
        table.lookup(-1)
