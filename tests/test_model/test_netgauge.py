"""Tests for the Netgauge-style measurement on the simulated fabric."""

import pytest

from repro.config import NIAGARA
from repro.model.netgauge import measure_loggp
from repro.units import KiB, MiB


@pytest.fixture(scope="module")
def table():
    return measure_loggp(sizes=[256, 4 * KiB, 256 * KiB], rounds=4, burst=6)


def test_table_has_requested_sizes(table):
    assert table.sizes == [256, 4 * KiB, 256 * KiB]


def test_parameters_positive(table):
    for s in table.sizes:
        p = table.lookup(s)
        assert p.L > 0
        assert p.o_s > 0
        assert p.o_r > 0
        assert p.g > 0
        assert p.G > 0


def test_latency_plausible(table):
    """Measured small-message latency should be near the configured
    propagation latency (sub-3us including software)."""
    p = table.lookup(256)
    assert 0.1e-6 < p.L < 3e-6


def test_large_message_bandwidth_near_line_rate(table):
    p = table.lookup(256 * KiB)
    # within a factor of 2 of the configured line rate (protocol slope
    # artifacts allowed, as on real netgauge runs)
    assert p.bandwidth > NIAGARA.nic.line_rate / 2
    assert p.bandwidth < NIAGARA.nic.line_rate * 2


def test_gap_grows_with_size(table):
    """Wire serialization dominates g at large sizes."""
    assert table.lookup(256 * KiB).g > table.lookup(256).g


def test_rndv_receiver_overhead_includes_transfer(table):
    """o_r for rendezvous sizes is dominated by the receiver-driven
    get — the same through-MPI measurement artifact the paper's
    Netgauge numbers carry."""
    assert table.lookup(256 * KiB).o_r > table.lookup(4 * KiB).o_r


def test_measurement_is_deterministic():
    t1 = measure_loggp(sizes=[4 * KiB], rounds=3, burst=4)
    t2 = measure_loggp(sizes=[4 * KiB], rounds=3, burst=4)
    p1, p2 = t1.lookup(4 * KiB), t2.lookup(4 * KiB)
    assert p1.L == p2.L
    assert p1.g == p2.g
    assert p1.o_r == p2.o_r
