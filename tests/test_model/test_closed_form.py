"""Closed forms vs. the PLogGP recurrence (property-based)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.model import completion_time, many_before_one, simultaneous
from repro.model.closed_form import (
    early_bird_clears,
    optimal_partitions_sqrt_rule,
    simultaneous_completion,
    wide_window_completion,
)
from repro.model.loggp import LogGPParams
from repro.model.tables import NIAGARA_LOGGP, TABLE1_PAPER
from repro.units import KiB, MiB, next_power_of_two, us


PARAM_STRATEGY = st.builds(
    LogGPParams,
    L=st.floats(min_value=1e-7, max_value=5e-6),
    o_s=st.floats(min_value=1e-8, max_value=1e-5),
    o_r=st.floats(min_value=1e-8, max_value=2e-5),
    g=st.floats(min_value=1e-8, max_value=1e-5),
    G=st.floats(min_value=1e-11, max_value=1e-9),
)


@given(
    p=PARAM_STRATEGY,
    size_exp=st.integers(min_value=10, max_value=26),
    n_log=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=80, deadline=None)
def test_simultaneous_closed_form_matches_recurrence(p, size_exp, n_log):
    total = 2**size_exp
    n = 2**n_log
    closed = simultaneous_completion(p, total, n)
    recurrence = completion_time(p, total, n, simultaneous(n)).completion_time
    assert closed == pytest.approx(recurrence, rel=1e-9)


@given(
    p=PARAM_STRATEGY,
    size_exp=st.integers(min_value=10, max_value=26),
    n_log=st.integers(min_value=0, max_value=5),
    delay_us=st.floats(min_value=100.0, max_value=100_000.0),
)
@settings(max_examples=80, deadline=None)
def test_wide_window_closed_form_matches_recurrence(p, size_exp, n_log,
                                                    delay_us):
    total = 2**size_exp
    n = 2**n_log
    delay = delay_us * 1e-6
    if not early_bird_clears(p, total, n, delay):
        return  # closed form out of its validity regime
    closed = wide_window_completion(p, total, n, delay)
    recurrence = completion_time(
        p, total, n, many_before_one(n, delay)).completion_time
    assert closed == pytest.approx(recurrence, rel=1e-9)


def test_sqrt_rule_predicts_table1():
    """The sqrt rule, rounded to the nearest power of two *in log
    space* (T(P) vs T(2P) flips at cont/sqrt(2)), reproduces Table I."""
    for size, want in TABLE1_PAPER.items():
        cont = optimal_partitions_sqrt_rule(NIAGARA_LOGGP, size)
        predicted = 2 ** max(0, round(math.log2(cont)))
        predicted = max(1, min(32, predicted))
        assert predicted == want, f"{size}: sqrt rule {cont:.2f}"


def test_early_bird_clears_boundaries():
    # Tiny message, huge delay: clears trivially.
    assert early_bird_clears(NIAGARA_LOGGP, 64 * KiB, 8, 4e-3)
    # Huge message, tiny delay: cannot clear.
    assert not early_bird_clears(NIAGARA_LOGGP, 256 * MiB, 32, us(10))
    # Single partition always "clears" (nothing early to send).
    assert early_bird_clears(NIAGARA_LOGGP, 256 * MiB, 1, 0.0)


def test_sqrt_rule_zero_o_r():
    p = LogGPParams(L=1e-6, o_s=1e-6, o_r=0.0, g=1e-6, G=1e-10)
    assert optimal_partitions_sqrt_rule(p, 1 * MiB) == float("inf")
