"""Tests for arrival-pattern generators."""

import numpy as np
import pytest

from repro.model import many_before_one, one_before_many, simultaneous, uniform_stagger
from repro.model.arrival import random_stagger


def test_simultaneous_all_zero():
    assert simultaneous(5) == [0.0] * 5


def test_simultaneous_requires_positive_n():
    with pytest.raises(ValueError):
        simultaneous(0)


def test_many_before_one_default_laggard_is_last():
    times = many_before_one(4, 0.5)
    assert times == [0.0, 0.0, 0.0, 0.5]


def test_many_before_one_explicit_laggard():
    times = many_before_one(4, 0.5, laggard=1)
    assert times == [0.0, 0.5, 0.0, 0.0]


def test_many_before_one_single_partition():
    assert many_before_one(1, 0.25) == [0.25]


def test_many_before_one_validation():
    with pytest.raises(ValueError):
        many_before_one(4, -1.0)
    with pytest.raises(ValueError):
        many_before_one(4, 1.0, laggard=4)


def test_one_before_many():
    times = one_before_many(4, 0.5)
    assert times == [0.0, 0.5, 0.5, 0.5]


def test_one_before_many_validation():
    with pytest.raises(ValueError):
        one_before_many(4, 1.0, early=-1)


def test_uniform_stagger_endpoints():
    times = uniform_stagger(5, 1.0)
    assert times[0] == 0.0
    assert times[-1] == 1.0
    assert times == sorted(times)


def test_uniform_stagger_single():
    assert uniform_stagger(1, 1.0) == [0.0]


def test_uniform_stagger_negative_spread():
    with pytest.raises(ValueError):
        uniform_stagger(4, -0.1)


def test_many_before_one_zero_delay_degenerates_to_simultaneous():
    assert many_before_one(4, 0.0) == simultaneous(4)


def test_one_before_many_single_partition():
    # With one partition the "early" thread is the whole round.
    assert one_before_many(1, 0.5) == [0.0]


def test_one_before_many_zero_delay():
    assert one_before_many(4, 0.0) == [0.0] * 4


def test_uniform_stagger_zero_spread():
    assert uniform_stagger(4, 0.0) == [0.0] * 4


def test_random_stagger_zero_spread_and_validation():
    rng = np.random.Generator(np.random.PCG64(0))
    assert random_stagger(3, 0.0, rng) == [0.0] * 3
    with pytest.raises(ValueError):
        random_stagger(0, 1.0, rng)
    with pytest.raises(ValueError):
        random_stagger(3, -1.0, rng)


def test_random_stagger_within_bounds_and_deterministic():
    rng1 = np.random.Generator(np.random.PCG64(42))
    rng2 = np.random.Generator(np.random.PCG64(42))
    t1 = random_stagger(10, 2.0, rng1)
    t2 = random_stagger(10, 2.0, rng2)
    assert t1 == t2
    assert all(0.0 <= t <= 2.0 for t in t1)
