"""Tests for the PLogGP model: recurrence, optimizer, Table I."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.model import (
    LogGPParams,
    completion_time,
    generate_table1,
    many_before_one,
    model_curve,
    optimal_transport_partitions,
    simultaneous,
    transport_ready_times,
    NIAGARA_LOGGP,
    TABLE1_PAPER,
)
from repro.units import KiB, MiB, us


P = LogGPParams(L=us(1), o_s=us(2), o_r=us(3), g=us(1.5), G=1e-10)


# ---------------------------------------------------------------------------
# transport_ready_times
# ---------------------------------------------------------------------------


def test_ready_times_single_group_takes_max():
    assert transport_ready_times([0.0, 1.0, 0.5, 0.2], 1) == [1.0]


def test_ready_times_groups_are_contiguous():
    ready = transport_ready_times([0.1, 0.2, 0.9, 0.3], 2)
    assert ready == [0.2, 0.9]


def test_ready_times_identity_mapping():
    user = [0.4, 0.1, 0.7]
    with pytest.raises(ValueError):
        transport_ready_times(user, 2)  # 3 % 2 != 0
    assert transport_ready_times(user + [0.0], 4) == user + [0.0]


def test_ready_times_bounds():
    with pytest.raises(ValueError):
        transport_ready_times([0.0] * 4, 0)
    with pytest.raises(ValueError):
        transport_ready_times([0.0] * 4, 5)


# ---------------------------------------------------------------------------
# completion_time
# ---------------------------------------------------------------------------


def test_single_partition_matches_ptp_plus_drain():
    res = completion_time(P, 10 * KiB, 1, simultaneous(1))
    expected = P.o_s + 10 * KiB * P.G + P.L + P.o_r
    assert res.completion_time == pytest.approx(expected)


def test_delay_shifts_completion():
    base = completion_time(P, 64 * KiB, 1, many_before_one(4, 0.0))
    delayed = completion_time(P, 64 * KiB, 1, many_before_one(4, 1e-3))
    assert delayed.completion_time == pytest.approx(
        base.completion_time + 1e-3)


def test_early_bird_beats_single_for_medium_with_delay():
    """With a laggard, splitting lets early data overlap the delay."""
    delay = 4e-3
    size = 8 * MiB
    t1 = completion_time(P, size, 1, many_before_one(32, delay)).completion_time
    t8 = completion_time(P, size, 8, many_before_one(32, delay)).completion_time
    assert t8 < t1


def test_more_partitions_worse_for_small_messages():
    """Per-message o_r drain penalizes high counts at small sizes (Fig. 3)."""
    delay = 4e-3
    size = 4 * KiB
    t1 = completion_time(P, size, 1, many_before_one(32, delay)).completion_time
    t32 = completion_time(P, size, 32, many_before_one(32, delay)).completion_time
    assert t1 < t32


def test_deferred_vs_inline_drain():
    """Inline drain can only help (overlaps o_r with flight time)."""
    size = 1 * MiB
    for n in (1, 2, 8):
        deferred = completion_time(
            P, size, n, many_before_one(8, 1e-3), deferred_drain=True)
        inline = completion_time(
            P, size, n, many_before_one(8, 1e-3), deferred_drain=False)
        assert inline.completion_time <= deferred.completion_time + 1e-12


def test_arrivals_and_injections_ordered_per_wire():
    res = completion_time(P, 1 * MiB, 4, simultaneous(4))
    inj = sorted(res.injections)
    k = 1 * MiB // 4
    gap = max(P.g, k * P.G)
    for a, b in zip(inj, inj[1:]):
        assert b - a >= gap - 1e-15


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        completion_time(P, -1, 1, simultaneous(1))


# ---------------------------------------------------------------------------
# optimizer
# ---------------------------------------------------------------------------


def test_optimizer_never_exceeds_user_count():
    p = optimal_transport_partitions(NIAGARA_LOGGP, 256 * MiB, n_user=4,
                                     delay=100e-3)
    assert p <= 4


def test_optimizer_requires_power_of_two_users():
    with pytest.raises(ValueError):
        optimal_transport_partitions(P, 1 * MiB, n_user=6, delay=0.0)


def test_optimizer_returns_power_of_two():
    for size in (4 * KiB, 1 * MiB, 64 * MiB):
        p = optimal_transport_partitions(NIAGARA_LOGGP, size, n_user=32,
                                         delay=100e-3)
        assert p & (p - 1) == 0


def test_optimizer_custom_arrival_pattern():
    """An alternative pattern plugs in; simultaneous arrival removes
    the early-bird benefit, so the optimum shrinks."""
    from repro.model.arrival import uniform_stagger

    size = 8 * MiB
    with_laggard = optimal_transport_partitions(
        NIAGARA_LOGGP, size, n_user=32, delay=100e-3)
    simultaneous_opt = optimal_transport_partitions(
        NIAGARA_LOGGP, size, n_user=32, delay=0.0,
        pattern=lambda n, d: [0.0] * n)
    staggered = optimal_transport_partitions(
        NIAGARA_LOGGP, size, n_user=32, delay=100e-6,
        pattern=lambda n, d: uniform_stagger(n, d))
    assert simultaneous_opt <= with_laggard
    assert 1 <= staggered <= 32


def test_optimizer_pattern_length_validated():
    with pytest.raises(ValueError, match="arrival times"):
        optimal_transport_partitions(
            NIAGARA_LOGGP, 1 * MiB, n_user=8, delay=0.0,
            pattern=lambda n, d: [0.0] * (n - 1))


def test_optimizer_monotone_in_size():
    """Optimal transport count never decreases with message size."""
    sizes = [2**i for i in range(12, 29)]
    counts = [
        optimal_transport_partitions(NIAGARA_LOGGP, s, n_user=32, delay=100e-3)
        for s in sizes
    ]
    assert counts == sorted(counts)


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------


def test_table1_reproduces_paper_exactly():
    got = generate_table1()
    for size, want in TABLE1_PAPER.items():
        assert got[size] == want, (
            f"size {size}: model says {got[size]}, paper says {want}")


def test_model_curve_lengths():
    sizes = [1 * KiB, 1 * MiB, 16 * MiB]
    curve = model_curve(NIAGARA_LOGGP, sizes, n_transport=4, n_user=32,
                        delay=4e-3)
    assert len(curve) == 3
    assert all(t > 0 for t in curve)


def test_fig3_shape_small_vs_large():
    """Fig. 3: 32 partitions lose at small sizes, beat 1 at large sizes."""
    delay = 4e-3
    small, large = 16 * KiB, 128 * MiB
    t1_small, t1_large = model_curve(
        NIAGARA_LOGGP, [small, large], 1, 32, delay)
    t32_small, t32_large = model_curve(
        NIAGARA_LOGGP, [small, large], 32, 32, delay)
    assert t1_small < t32_small
    assert t32_large < t1_large


# ---------------------------------------------------------------------------
# property-based invariants
# ---------------------------------------------------------------------------


@given(
    n_user=st.sampled_from([1, 2, 4, 8, 16, 32]),
    size_exp=st.integers(min_value=8, max_value=27),
    delay_us=st.floats(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_completion_after_last_ready(n_user, size_exp, delay_us):
    """Completion can never precede the laggard's arrival."""
    delay = delay_us * 1e-6
    size = 2**size_exp
    res = completion_time(P, size, n_user, many_before_one(n_user, delay))
    assert res.completion_time >= delay


@given(
    n_user=st.sampled_from([2, 4, 8, 16, 32]),
    size_exp=st.integers(min_value=10, max_value=27),
)
@settings(max_examples=60, deadline=None)
def test_splitting_never_beats_wire_bound(n_user, size_exp):
    """No partitioning goes below total wire time + latency."""
    size = 2**size_exp
    for n_t in (1, 2, n_user):
        if n_user % n_t:
            continue
        res = completion_time(P, size, n_t, simultaneous(n_user))
        assert res.completion_time >= size * P.G + P.L


@given(
    delay_ms=st.floats(min_value=0.0, max_value=20.0),
    n_user=st.sampled_from([4, 8, 16, 32]),
)
@settings(max_examples=40, deadline=None)
def test_optimizer_result_is_argmin(delay_ms, n_user):
    """The optimizer's pick is at least as good as every alternative."""
    size = 4 * MiB
    delay = delay_ms * 1e-3
    best = optimal_transport_partitions(P, size, n_user=n_user, delay=delay)
    ready = many_before_one(n_user, delay)
    t_best = completion_time(P, size, best, ready).completion_time
    n = 1
    while n <= n_user:
        t = completion_time(P, size, n, ready).completion_time
        assert t_best <= t + 1e-15
        n *= 2
