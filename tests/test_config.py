"""Tests for the configuration layer."""

import dataclasses

import pytest

from repro.config import (
    ClusterConfig,
    HostConfig,
    LinkConfig,
    NICConfig,
    NIAGARA,
    PartitionedConfig,
    UCXConfig,
)
from repro.errors import ConfigError
from repro.units import KiB


def test_default_config_validates():
    NIAGARA.validate()


def test_nic_validation():
    with pytest.raises(ConfigError):
        dataclasses.replace(NIAGARA.nic, qp_rate=0).validate()
    with pytest.raises(ConfigError):
        dataclasses.replace(
            NIAGARA.nic, qp_rate=NIAGARA.nic.line_rate * 2).validate()
    with pytest.raises(ConfigError):
        dataclasses.replace(NIAGARA.nic, mtu=64).validate()
    with pytest.raises(ConfigError):
        dataclasses.replace(NIAGARA.nic, max_outstanding_rdma=0).validate()
    with pytest.raises(ConfigError):
        dataclasses.replace(NIAGARA.nic, wire_chunk=1024).validate()


def test_link_validation():
    with pytest.raises(ConfigError):
        LinkConfig(latency=-1).validate()


def test_host_validation():
    with pytest.raises(ConfigError):
        dataclasses.replace(NIAGARA.host, cores_per_node=0).validate()
    with pytest.raises(ConfigError):
        dataclasses.replace(NIAGARA.host, memcpy_rate=0).validate()
    with pytest.raises(ConfigError):
        dataclasses.replace(
            NIAGARA.host, oversubscription_penalty=0.5).validate()


def test_ucx_protocol_selection():
    ucx = NIAGARA.ucx
    assert ucx.protocol_for(64).name == "inline"
    assert ucx.protocol_for(ucx.inline_max).name == "inline"
    assert ucx.protocol_for(ucx.inline_max + 1).name == "eager-bcopy"
    assert ucx.protocol_for(1 * KiB).name == "eager-bcopy"
    assert ucx.protocol_for(1 * KiB + 1).name == "eager-zcopy"
    assert ucx.protocol_for(8 * KiB).name == "eager-zcopy"
    assert ucx.protocol_for(8 * KiB + 1).name == "rndv"


def test_protocol_properties():
    ucx = NIAGARA.ucx
    assert ucx.protocol_for(512).copies          # bcopy stages
    assert not ucx.protocol_for(4 * KiB).copies  # zcopy does not
    assert ucx.protocol_for(1 << 20).rendezvous
    assert not ucx.protocol_for(64).rendezvous


def test_ucx_validation():
    with pytest.raises(ConfigError):
        dataclasses.replace(
            NIAGARA.ucx, inline_max=4 * KiB, eager_bcopy_max=1024).validate()
    with pytest.raises(ConfigError):
        dataclasses.replace(NIAGARA.ucx, n_lanes=0).validate()


def test_partitioned_validation():
    with pytest.raises(ConfigError):
        dataclasses.replace(NIAGARA.part, default_qps=0).validate()
    with pytest.raises(ConfigError):
        dataclasses.replace(NIAGARA.part, timer_poll=0).validate()


def test_cluster_validation_cascades():
    bad = NIAGARA.with_changes(
        nic=dataclasses.replace(NIAGARA.nic, mtu=1))
    with pytest.raises(ConfigError):
        bad.validate()
    with pytest.raises(ConfigError):
        NIAGARA.with_changes(seed=-1).validate()


def test_with_changes_preserves_rest():
    changed = NIAGARA.with_changes(seed=99)
    assert changed.seed == 99
    assert changed.nic == NIAGARA.nic
    assert NIAGARA.seed != 99  # original untouched


def test_configs_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        NIAGARA.seed = 5
    with pytest.raises(dataclasses.FrozenInstanceError):
        NIAGARA.nic.mtu = 1024


def test_niagara_calibration_sanity():
    """EDR-like numbers: ~12GB/s wire, ~us latency, 40 cores."""
    assert 10e9 < NIAGARA.nic.line_rate < 14e9
    assert NIAGARA.nic.qp_rate < NIAGARA.nic.line_rate
    assert 0.1e-6 < NIAGARA.link.latency < 5e-6
    assert NIAGARA.host.cores_per_node == 40
    assert NIAGARA.nic.max_outstanding_rdma == 16
    assert NIAGARA.nic.mtu == 4 * KiB
