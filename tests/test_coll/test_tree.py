"""Tests for partitioned broadcast/allreduce over binomial trees."""

import numpy as np
import pytest

from repro.errors import MPIError, PartitionError
from repro.mem import PartitionedBuffer
from repro.mpi import Cluster

N_PARTS = 4
PART_SIZE = 256


def run_world(world, program):
    cluster = Cluster(n_nodes=world)
    procs = cluster.ranks(world)
    for proc in procs:
        cluster.spawn(program(proc))
    cluster.run()


# ---------------------------------------------------------------------------
# Pbcast
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("world", [1, 2, 3, 5, 7, 8])
def test_pbcast_delivers_roots_bytes(world):
    root = 0
    received = {}

    def program(proc):
        buf = PartitionedBuffer(N_PARTS, PART_SIZE, backed=True)
        if proc.rank == root:
            buf.fill_pattern(42)
        coll = proc.pbcast_init(buf, world, root=root)
        for _ in range(2):
            yield from proc.pcoll_start(coll)
            if proc.rank == root:
                for p in range(N_PARTS):
                    yield from proc.pcoll_pready(coll, p)
            yield from proc.pcoll_wait(coll)
        received[proc.rank] = buf.data.copy()

    run_world(world, program)
    expect = PartitionedBuffer(N_PARTS, PART_SIZE, backed=True)
    expect.fill_pattern(42)
    for rank in range(world):
        assert np.array_equal(received[rank], expect.data), f"rank {rank}"


def test_pbcast_pready_is_root_only():
    errors = {}

    def program(proc):
        buf = PartitionedBuffer(N_PARTS, PART_SIZE, backed=False)
        coll = proc.pbcast_init(buf, 2, root=0)
        yield from proc.pcoll_start(coll)
        if proc.rank == 1:
            try:
                yield from proc.pcoll_pready(coll, 0)
            except MPIError:
                errors[proc.rank] = True
        else:
            for p in range(N_PARTS):
                yield from proc.pcoll_pready(coll, p)
        yield from proc.pcoll_wait(coll)

    run_world(2, program)
    assert errors == {1: True}


def test_pbcast_parrived_tracks_pipeline():
    """A non-root rank sees partitions arrive over time, not at once."""
    seen = []

    def program(proc):
        buf = PartitionedBuffer(N_PARTS, PART_SIZE, backed=False)
        coll = proc.pbcast_init(buf, 2, root=0)
        yield from proc.pcoll_start(coll)
        if proc.rank == 0:
            for p in range(N_PARTS):
                yield proc.env.timeout(20e-6)
                yield from proc.pcoll_pready(coll, p)
        else:
            arrived = yield from proc.pcoll_parrived(coll, None, N_PARTS - 1)
            seen.append(arrived)
        yield from proc.pcoll_wait(coll)
        if proc.rank == 1:
            arrived = yield from proc.pcoll_parrived(coll, None, N_PARTS - 1)
            seen.append(arrived)

    run_world(2, program)
    assert seen == [False, True]


def test_pbcast_bad_partition_raises():
    cluster = Cluster(n_nodes=1)
    proc = cluster.ranks(1)[0]
    buf = PartitionedBuffer(N_PARTS, PART_SIZE, backed=False)
    coll = proc.pbcast_init(buf, 1)
    with pytest.raises(PartitionError):
        list(coll.pready(N_PARTS))


def test_tree_validation():
    cluster = Cluster(n_nodes=1)
    proc = cluster.ranks(1)[0]
    buf = PartitionedBuffer(N_PARTS, PART_SIZE, backed=False)
    with pytest.raises(MPIError):
        proc.pbcast_init(buf, 0)
    with pytest.raises(MPIError):
        proc.pbcast_init(buf, 2, root=2)
    with pytest.raises(MPIError):
        proc.pbcast_init(buf, 0, root=0)


# ---------------------------------------------------------------------------
# Pallreduce
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("world", [1, 2, 3, 5, 7, 8])
def test_pallreduce_sums_everywhere(world):
    results = {}

    def program(proc):
        buf = PartitionedBuffer(N_PARTS, PART_SIZE, backed=True)
        coll = proc.pallreduce_init(buf, world)
        for _ in range(2):
            buf.data[:] = proc.rank + 1
            yield from proc.pcoll_start(coll)
            for p in range(N_PARTS):
                yield from proc.pcoll_pready(coll, p)
            yield from proc.pcoll_wait(coll)
        results[proc.rank] = buf.data.copy()

    run_world(world, program)
    expected = sum(range(1, world + 1))
    for rank in range(world):
        assert np.all(results[rank] == expected), f"rank {rank}"


def test_pallreduce_custom_op():
    world = 3
    results = {}

    def op(dst, src):
        np.maximum(dst, src, out=dst)

    def program(proc):
        buf = PartitionedBuffer(N_PARTS, PART_SIZE, backed=True)
        coll = proc.pallreduce_init(buf, world, op=op)
        buf.data[:] = proc.rank * 10
        yield from proc.pcoll_start(coll)
        for p in range(N_PARTS):
            yield from proc.pcoll_pready(coll, p)
        yield from proc.pcoll_wait(coll)
        results[proc.rank] = buf.data.copy()

    run_world(world, program)
    for rank in range(world):
        assert np.all(results[rank] == 20), f"rank {rank}"


def test_pallreduce_pready_rejects_neighbor():
    cluster = Cluster(n_nodes=1)
    proc = cluster.ranks(1)[0]
    buf = PartitionedBuffer(N_PARTS, PART_SIZE, backed=False)
    coll = proc.pallreduce_init(buf, 1)
    with pytest.raises(MPIError, match="cannot be"):
        list(coll.pready(0, neighbor=2))


def test_pallreduce_inactive_wait_returns():
    """MPI semantics: Wait on a never-started persistent op is a no-op."""
    done = []

    def program(proc):
        buf = PartitionedBuffer(N_PARTS, PART_SIZE, backed=False)
        coll = proc.pallreduce_init(buf, 1)
        yield from proc.pcoll_wait(coll)
        done.append(proc.env.now)

    run_world(1, program)
    assert done == [0.0]
