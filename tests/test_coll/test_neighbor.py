"""Tests for the persistent partitioned neighbor-alltoall."""

import numpy as np
import pytest

from repro.core import PLogGPAggregator
from repro.errors import MPIError
from repro.mem import PartitionedBuffer
from repro.model.tables import NIAGARA_LOGGP
from repro.mpi import Cluster
from repro.units import KiB, ms

N_PARTS = 4
PART_SIZE = 1 * KiB


def make_bufs(neighbors, backed=True):
    return ({n: PartitionedBuffer(N_PARTS, PART_SIZE, backed=backed)
             for n in neighbors},
            {n: PartitionedBuffer(N_PARTS, PART_SIZE, backed=backed)
             for n in neighbors})


def run_ring(world=3, rounds=2, module_for=None):
    """All-neighbors exchange on a fully-connected world; returns the
    per-rank collectives plus an integrity failure count."""
    cluster = Cluster(n_nodes=world)
    procs = cluster.ranks(world)
    colls = {}
    failures = []

    def program(proc):
        others = [r for r in range(world) if r != proc.rank]
        send_bufs, recv_bufs = make_bufs(others)
        coll = proc.pneighbor_alltoall_init(send_bufs, recv_bufs,
                                            module_for)
        colls[proc.rank] = coll
        for it in range(rounds):
            for nbr, buf in send_bufs.items():
                buf.fill_pattern(it * 100 + proc.rank * 10 + nbr)
            yield from proc.pcoll_start(coll)
            for p in range(N_PARTS):
                yield from proc.pcoll_pready(coll, p)
            yield from proc.pcoll_wait(coll)
            for nbr, buf in recv_bufs.items():
                expect = buf.expected_pattern(
                    0, buf.nbytes, it * 100 + nbr * 10 + proc.rank)
                if not np.array_equal(buf.data, expect):
                    failures.append((proc.rank, nbr, it))

    for proc in procs:
        cluster.spawn(program(proc))
    cluster.run()
    return colls, failures


def test_multi_round_integrity_persist():
    _, failures = run_ring(world=3, rounds=3)
    assert failures == []


def test_multi_round_integrity_native():
    agg = PLogGPAggregator(NIAGARA_LOGGP, delay=ms(4))
    _, failures = run_ring(world=3, rounds=2, module_for=agg)
    assert failures == []


def test_mismatched_neighbor_sets_raise():
    cluster = Cluster(n_nodes=2)
    proc = cluster.ranks(2)[0]
    send_bufs, recv_bufs = make_bufs([1], backed=False)
    del recv_bufs[1]
    recv_bufs[0] = PartitionedBuffer(N_PARTS, PART_SIZE, backed=False)
    with pytest.raises(MPIError, match="neighbor sets differ"):
        proc.pneighbor_alltoall_init(send_bufs, recv_bufs, None)


def test_self_neighbor_raises():
    cluster = Cluster(n_nodes=2)
    proc = cluster.ranks(2)[0]
    send_bufs, recv_bufs = make_bufs([0], backed=False)
    with pytest.raises(MPIError, match="neighbor itself"):
        proc.pneighbor_alltoall_init(send_bufs, recv_bufs, None)


def test_pready_to_unknown_neighbor_raises():
    colls, _ = run_ring(world=2, rounds=1)
    coll = colls[0]
    with pytest.raises(MPIError, match="no outgoing edge"):
        list(coll.pready(0, neighbor=5))
    with pytest.raises(MPIError, match="no inbound edge"):
        list(coll.parrived(5, 0))


def test_edge_stats_cover_every_neighbor():
    colls, _ = run_ring(world=3, rounds=1)
    for rank, coll in colls.items():
        stats = coll.edge_stats()
        assert sorted(stats) == [r for r in range(3) if r != rank]
        for entry in stats.values():
            assert len(entry["pready_times"]) == N_PARTS
            assert entry["spread"] is not None and entry["spread"] >= 0
