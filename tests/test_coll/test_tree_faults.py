"""Fault windows overlapping tree collectives (satellite coverage).

Seeded link flaps and RNR windows land mid-``Pbcast``/``Pallreduce``
at worlds 3, 5 and 7; every round must still deliver exactly once and
the in-place reduce must still produce the wrapping uint8 sum.
"""

import pytest

from repro.chaos import check_invariants
from repro.chaos.workloads import run_chaos_pallreduce, run_chaos_pbcast
from repro.faults import FaultSchedule
from repro.units import us

pytestmark = pytest.mark.faults

WORLDS = [3, 5, 7]


def flap_schedule(world):
    """A mid-run flap on a tree edge plus one off-tree distractor."""
    sched = FaultSchedule().link_flap(0, 1, start=us(150), duration=us(300))
    if world > 3:
        sched.link_flap(1, world - 1, start=us(400), duration=us(200))
    return sched


def rnr_schedule(world):
    """Node-wide receiver-not-ready windows on two interior ranks.

    Long enough (the compute phase alone is 200us) that tree traffic
    toward the covered ranks actually lands inside a window.
    """
    sched = FaultSchedule().rnr_window(1, start=us(100), duration=us(900))
    if world > 3:
        sched.rnr_window(2, start=us(300), duration=us(700))
    return sched


def assert_clean(report):
    assert report.completed, report.meta
    assert report.integrity_failures == 0
    assert check_invariants(report) == []
    assert report.leaks == []


@pytest.mark.parametrize("world", WORLDS)
def test_pallreduce_survives_mid_round_flaps(world):
    report = run_chaos_pallreduce(flap_schedule(world), seed=world,
                                  world=world)
    assert_clean(report)
    c = report.counters
    # The fault was actually exercised, and recovery replayed WRs
    # without any duplicate slipping through the tracker.
    assert c.get("ib.retransmits", 0) > 0
    assert c.get("mpi.duplicates_dropped", 0) <= (
        c.get("mpi.replayed_wrs", 0) + c.get("mpi.read_replays", 0)
        + c.get("mpi.p2p_failures", 0))


@pytest.mark.parametrize("world", WORLDS)
def test_pbcast_survives_mid_round_flaps(world):
    report = run_chaos_pbcast(flap_schedule(world), seed=world, world=world)
    assert_clean(report)
    assert report.counters.get("ib.retransmits", 0) > 0


@pytest.mark.parametrize("world", WORLDS)
def test_pallreduce_survives_rnr_windows(world):
    report = run_chaos_pallreduce(rnr_schedule(world), seed=10 + world,
                                  world=world)
    assert_clean(report)
    assert report.counters.get("ib.rnr_naks", 0) > 0


@pytest.mark.parametrize("world", WORLDS)
def test_pbcast_survives_rnr_windows(world):
    report = run_chaos_pbcast(rnr_schedule(world), seed=10 + world,
                              world=world)
    assert_clean(report)
    assert report.counters.get("ib.rnr_naks", 0) > 0


def test_pallreduce_with_ladder_under_flaps():
    """The ladder wrapping every tree edge stays correct under faults."""
    report = run_chaos_pallreduce(flap_schedule(5), seed=3, world=5,
                                  ladder=True)
    assert_clean(report)
