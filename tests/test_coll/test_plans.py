"""Tests for per-edge transport-plan resolution."""

import pytest

from repro.coll import edge_modules, per_edge_autotuners
from repro.core import PLogGPAggregator
from repro.core.module import NativeSpec
from repro.model.tables import NIAGARA_LOGGP
from repro.mpi.persist_module import PersistSpec
from repro.units import ms


def test_none_resolves_to_persist_everywhere():
    resolve = edge_modules(None)
    assert isinstance(resolve(0), PersistSpec)
    assert isinstance(resolve(7), PersistSpec)


def test_aggregator_resolves_to_shared_native_spec():
    agg = PLogGPAggregator(NIAGARA_LOGGP, delay=ms(4))
    resolve = edge_modules(agg)
    spec = resolve(3)
    assert isinstance(spec, NativeSpec)
    assert spec.aggregator is agg
    # Static aggregators are stateless: sharing across edges is fine.
    assert resolve(5).aggregator is agg


def test_module_spec_instance_is_reused():
    spec = PersistSpec()
    resolve = edge_modules(spec)
    assert resolve(1) is spec
    assert resolve(2) is spec


def test_zero_arg_factory_invoked_per_edge():
    made = []

    def factory():
        spec = PersistSpec()
        made.append(spec)
        return spec

    resolve = edge_modules(factory)
    a, b = resolve(1), resolve(2)
    assert a is not b
    assert made == [a, b]


def test_per_neighbor_callable_gets_the_neighbor():
    seen = []

    def module_for(neighbor):
        seen.append(neighbor)
        return None

    resolve = edge_modules(module_for)
    assert isinstance(resolve(4), PersistSpec)
    assert isinstance(resolve(9), PersistSpec)
    assert seen == [4, 9]


def test_garbage_module_raises():
    resolve = edge_modules(object())
    with pytest.raises(TypeError):
        resolve(0)


def test_per_edge_autotuners_are_independent():
    resolve = per_edge_autotuners({"policy": "bandit", "counts": [1, 2]})
    a, b = resolve(1), resolve(2)
    assert isinstance(a, NativeSpec) and isinstance(b, NativeSpec)
    assert a.aggregator is not b.aggregator


def test_per_edge_autotuners_store_keys_include_neighbor(tmp_path):
    from repro.autotune import TuningStore

    store = TuningStore(tmp_path / "store")
    resolve = per_edge_autotuners(
        {"policy": "bandit", "counts": [1, 2]}, store=store)
    assert resolve(3).aggregator.key_extra.get("neighbor") == 3
    assert resolve(5).aggregator.key_extra.get("neighbor") == 5
