"""Tests for the threaded stencil driver (and its fault overlap)."""

import pytest

from repro.coll import per_edge_autotuners, run_stencil
from repro.core import PLogGPAggregator
from repro.faults import FaultSchedule
from repro.model.tables import NIAGARA_LOGGP
from repro.units import ms


def test_backed_integrity_2d():
    res = run_stencil(grid=(2, 2), n_threads=2, face_bytes=1 << 12,
                      n_partitions=4, iterations=2, warmup=0, backed=True)
    assert res.integrity_failures == 0
    assert len(res.times) == 2
    # Interior diagnostics cover every rank and its 2-3 neighbors.
    assert sorted(res.edge_stats) == [0, 1, 2, 3]
    assert all(len(edges) == 2 for edges in res.edge_stats.values())


def test_backed_integrity_3d_native():
    agg = PLogGPAggregator(NIAGARA_LOGGP, delay=ms(4))
    res = run_stencil(module=agg, grid=(2, 2, 2), n_threads=2,
                      face_bytes=1 << 12, n_partitions=4, iterations=2,
                      warmup=0, backed=True)
    assert res.integrity_failures == 0
    assert all(len(edges) == 3 for edges in res.edge_stats.values())
    # Native edges expose their aggregation plan.
    assert all(res.plans[r] for r in res.plans)


def test_anisotropic_faces_give_per_axis_sizes():
    res = run_stencil(grid=(2, 2), n_threads=2,
                      face_bytes=(1 << 13, 1 << 12), n_partitions=4,
                      iterations=1, warmup=0, backed=True)
    assert res.integrity_failures == 0
    assert res.face_bytes == (1 << 13, 1 << 12)


def test_planner_wins_over_module():
    seen = []

    def planner(proc, axes):
        seen.append((proc.rank, dict(axes)))
        return per_edge_autotuners({"policy": "bandit", "counts": [1, 2]})

    res = run_stencil(planner=planner, grid=(2, 2), n_threads=2,
                      face_bytes=1 << 12, n_partitions=4, iterations=2,
                      warmup=1, backed=True)
    assert res.integrity_failures == 0
    assert sorted(r for r, _ in seen) == [0, 1, 2, 3]
    # Corner ranks of a 2x2 grid see one neighbor per axis.
    assert all(sorted(set(axes.values())) == [0, 1] for _, axes in seen)
    # Per-edge autotuners leave a describable plan on every edge.
    assert all(desc.startswith("autotune")
               for plans in res.plans.values() for desc in plans.values())


def test_validation_errors():
    with pytest.raises(ValueError, match="2-D or 3-D"):
        run_stencil(grid=(4,))
    with pytest.raises(ValueError, match="face_bytes has"):
        run_stencil(grid=(2, 2), face_bytes=(1024, 1024, 1024))
    with pytest.raises(ValueError, match="not divisible"):
        run_stencil(grid=(2, 2), n_threads=3, n_partitions=4)
    with pytest.raises(ValueError, match="not divisible"):
        run_stencil(grid=(2, 2), n_partitions=3, n_threads=1,
                    face_bytes=1 << 12 | 1)


def test_link_flap_mid_halo_recovers_exactly_once():
    """A link flap during the halo exchange: every face still arrives
    bit-exact (no loss, no duplication), recovery is visible in the
    fabric counters, and the flapped round pays the retransmit cost."""
    sched = FaultSchedule().link_flap(0, 1, start=ms(1.0),
                                      duration=ms(0.3))
    res = run_stencil(grid=(2, 2), n_threads=4, face_bytes=1 << 14,
                      iterations=3, warmup=0, backed=True, faults=sched)
    assert res.integrity_failures == 0
    assert res.counters.get("fault.chunks_lost", 0) > 0
    assert res.counters.get("ib.retransmits", 0) > 0
    # The flap lands in round 0's comm window; later (clean) rounds
    # must be strictly faster.
    assert res.times[0] > max(res.times[1:])


def test_link_flap_is_deterministic():
    def one():
        sched = FaultSchedule().link_flap(0, 1, start=ms(1.0),
                                          duration=ms(0.3))
        return run_stencil(grid=(2, 2), n_threads=4, face_bytes=1 << 14,
                           iterations=2, warmup=0, backed=True,
                           faults=sched)

    a, b = one(), one()
    assert a.times == b.times
    assert a.counters == b.counters
