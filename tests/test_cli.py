"""Tests for the repro-bench CLI."""

import pytest

from repro.cli import main, parse_grid, parse_size, parse_sizes
from repro.units import KiB, MiB, GiB


def test_parse_size_suffixes():
    assert parse_size("64KiB") == 64 * KiB
    assert parse_size("2MiB") == 2 * MiB
    assert parse_size("1GiB") == GiB
    assert parse_size("512B") == 512
    assert parse_size("4096") == 4096
    assert parse_size("1.5KiB") == 1536


def test_parse_sizes_list():
    assert parse_sizes("1KiB, 2KiB,4KiB") == [1024, 2048, 4096]


def test_parse_grid():
    assert parse_grid("4x8") == (4, 8)


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "128MiB" in out
    assert "MISMATCH" not in out


def test_model_command(capsys):
    assert main(["model", "--sizes", "16KiB,64MiB"]) == 0
    out = capsys.readouterr().out
    assert "16KiB" in out
    assert "32p" in out


def test_overhead_command(capsys):
    assert main(["overhead", "--n-user", "8", "--sizes", "64KiB",
                 "--iterations", "4", "--warmup", "1"]) == 0
    out = capsys.readouterr().out
    assert "64KiB" in out
    assert "x" in out


def test_perceived_command(capsys):
    assert main(["perceived", "--n-user", "8", "--sizes", "4MiB",
                 "--compute-ms", "5", "--iterations", "2",
                 "--warmup", "1"]) == 0
    out = capsys.readouterr().out
    assert "persist" in out
    assert "1-thread line" in out


def test_sweep_command(capsys):
    assert main(["sweep", "--grid", "2x2", "--threads", "4",
                 "--sizes", "64KiB", "--iterations", "2",
                 "--warmup", "1"]) == 0
    out = capsys.readouterr().out
    assert "16 cores" in out


def test_netgauge_command(capsys):
    assert main(["netgauge", "--sizes", "4KiB", "--iterations", "3"]) == 0
    out = capsys.readouterr().out
    assert "o_r" in out
    assert "GiB/s" in out


def test_tuning_table_command(capsys):
    assert main(["tuning-table", "--n-user", "4", "--sizes", "64KiB",
                 "--iterations", "2", "--warmup", "1"]) == 0
    out = capsys.readouterr().out
    assert "transport partitions" in out


def test_unknown_aggregator_rejected():
    with pytest.raises(SystemExit):
        main(["overhead", "--aggregator", "bogus"])


def test_fleet_rank_command(capsys):
    assert main(["fleet", "rank", "--levels", "0,1",
                 "--transports", "4", "--partitions", "8",
                 "--iterations", "2", "--warmup", "1"]) == 0
    out = capsys.readouterr().out
    assert "partitioned-pair ranking" in out
    assert "bg tenants" in out
    assert "T=4" in out
    assert "spine util" in out


def test_fleet_profile_command(capsys):
    assert main(["fleet", "profile", "--jobs", "pair:2",
                 "--background", "1", "--partitions", "8",
                 "--iterations", "2", "--warmup", "1"]) == 0
    out = capsys.readouterr().out
    assert "fleet profile: 2 tenants" in out
    assert "pair0" in out
    assert "busiest links:" in out


def test_fleet_profile_rejects_unknown_job_kind():
    with pytest.raises(Exception):
        main(["fleet", "profile", "--jobs", "bogus:2"])


def test_fleet_retune_exits_by_adaptation(capsys):
    # Too short an episode to re-converge: exit 1, summary still prints.
    assert main(["fleet", "retune", "--quiet-rounds", "2",
                 "--congested-rounds", "3", "--tail-rounds", "1",
                 "--compute-us", "0"]) == 1
    out = capsys.readouterr().out
    assert "quiet-best plan" in out
    assert "congested-best plan" in out


def test_serve_stats_on_empty_store(capsys, tmp_path):
    assert main(["serve", "stats", "--root", str(tmp_path / "empty")]) == 0
    out = capsys.readouterr().out
    assert "entries" in out
    assert " 0" in out


def test_serve_warm_from_store_directory(capsys, tmp_path):
    from repro.autotune import TuningStore, workload_key
    from repro.autotune.policy import PlanChoice

    flat = TuningStore(tmp_path / "flat")
    flat.put(workload_key(32, 1 << 20, "t", plan_space="p"),
             PlanChoice(4, 2))
    root = tmp_path / "serve"
    assert main(["serve", "warm", "--root", str(root),
                 "--source", str(tmp_path / "flat")]) == 0
    out = capsys.readouterr().out
    assert "1 imported" in out
    assert main(["serve", "stats", "--root", str(root)]) == 0
    assert " 1" in capsys.readouterr().out


def test_serve_bench_command(capsys):
    assert main(["serve", "bench", "--clients", "10", "--requests",
                 "120", "--keys", "8", "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "hit rate" in out
    assert "p50 / p99" in out


def test_autotune_show_warns_on_corrupt_entries(capsys, tmp_path):
    from repro.autotune import TuningStore, workload_key
    from repro.autotune.policy import PlanChoice

    store = TuningStore(tmp_path)
    path = store.put(workload_key(32, 1 << 20, "t", plan_space="p"),
                     PlanChoice(4, 2))
    path.write_text("{ torn")
    assert main(["autotune", "show", "--store", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    assert "corrupt" in captured.err
