"""IB-level recovery semantics and MPI-level graceful degradation."""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import NIAGARA
from repro.core import FixedAggregation, NativeSpec
from repro.errors import RetryExhaustedError
from repro.faults import FaultSchedule
from repro.ib import verbs
from repro.ib.constants import QPState, WCStatus
from repro.ib.wr import RecvWR
from repro.mem import PartitionedBuffer
from repro.mpi import Cluster
from repro.mpi.persist_module import PersistSpec
from repro.units import KiB, MiB, us
from tests.test_ib.conftest import Pair


def recovery_config(retry_cnt=1, qp_timeout=1, reconnect_delay=us(500)):
    """Short retry budgets so exhaustion happens inside a flap window."""
    return NIAGARA.with_changes(
        nic=replace(NIAGARA.nic, retry_cnt=retry_cnt, qp_timeout=qp_timeout),
        part=replace(NIAGARA.part, reconnect_delay=reconnect_delay),
    )


def run_faulty_roundtrip(spec_factory, schedule, config=None, n_parts=8,
                         psize=1 * MiB, rounds=1):
    """A backed roundtrip under an armed fault schedule.

    Returns (cluster, outcome); data integrity is asserted per round on
    the receive side, so completion implies exactly-once delivery.
    """
    cluster = (Cluster(n_nodes=2, config=config) if config is not None
               else Cluster(n_nodes=2))
    cluster.fabric.install_faults(schedule)
    s_proc, r_proc = cluster.ranks(2)
    sbuf = PartitionedBuffer(n_parts, psize, backed=True)
    rbuf = PartitionedBuffer(n_parts, psize, backed=True)
    outcome = {}

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0, module=spec_factory())
        outcome["send_req"] = req
        for rnd in range(rounds):
            sbuf.fill_pattern(seed=rnd)
            yield from proc.start(req)
            for i in range(n_parts):
                yield from proc.pready(req, i)
            yield from proc.wait_partitioned(req)
        outcome["send_done"] = proc.env.now

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0, module=spec_factory())
        for rnd in range(rounds):
            yield from proc.start(req)
            yield from proc.wait_partitioned(req)
            assert np.array_equal(rbuf.data, rbuf.expected_pattern(
                0, rbuf.nbytes, seed=rnd)), f"payload corrupt in round {rnd}"
        outcome["recv_done"] = proc.env.now

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()
    return cluster, outcome


# -- QP error semantics (satellite: to_error must flush the SQ too) -------


def test_to_error_flushes_both_queues(env):
    p = Pair(env)
    from tests.test_ib.test_qp import make_write

    p.qp1.post_recv(RecvWR(wr_id=101))
    p.qp0.post_send(make_write(p, wr_id=1))
    p.qp0.post_send(make_write(p, wr_id=2))
    p.qp0.to_error()
    assert p.qp0.state is QPState.ERROR
    wcs = p.cq0.poll(10)
    assert sorted(wc.wr_id for wc in wcs) == [1, 2]
    assert all(wc.status is WCStatus.WR_FLUSH_ERR for wc in wcs)
    assert p.qp0.sq_depth == 0
    # The receive side flushes independently.
    p.qp1.to_error()
    rwcs = p.cq1.poll(10)
    assert [wc.wr_id for wc in rwcs] == [101]
    assert all(wc.status is WCStatus.WR_FLUSH_ERR for wc in rwcs)


def test_to_error_wakes_slot_waiters(env):
    p = Pair(env)
    p.qp0.outstanding_rdma = NIAGARA.nic.max_outstanding_rdma
    ev = p.qp0.wait_rdma_slot()
    assert not ev.triggered
    p.qp0.to_error()
    assert ev.triggered
    assert p.qp0.outstanding_rdma == 0
    # Waiting on an already-dead QP returns immediately (so pollers and
    # pumps can observe the ERROR state instead of hanging).
    assert p.qp0.wait_rdma_slot().triggered


def test_reconnect_walks_back_to_rts(env):
    p = Pair(env)
    p.qp0.to_error()
    verbs.reconnect_qps(p.qp0, p.qp1)
    assert p.qp0.state is QPState.RTS
    assert p.qp1.state is QPState.RTS
    assert p.fabric.counters.get("ib.reconnects") == 1


# -- retry exhaustion without reconnect (satellite acceptance) -----------


def test_retry_exhaustion_surfaces_error_when_reconnect_disabled():
    sched = (FaultSchedule(allow_reconnect=False)
             .link_flap(0, 1, start=us(50), duration=1.0))
    spec = lambda: NativeSpec(FixedAggregation(2, 1))
    with pytest.raises(RetryExhaustedError):
        run_faulty_roundtrip(spec, sched, config=recovery_config())


def test_retry_exhaustion_leaves_qp_error_with_queues_drained():
    sched = (FaultSchedule(allow_reconnect=False)
             .link_flap(0, 1, start=us(50), duration=1.0))
    spec = lambda: NativeSpec(FixedAggregation(2, 1))
    cluster = Cluster(n_nodes=2, config=recovery_config())
    cluster.fabric.install_faults(sched)
    s_proc, r_proc = cluster.ranks(2)
    sbuf = PartitionedBuffer(4, 256 * KiB, backed=True)
    rbuf = PartitionedBuffer(4, 256 * KiB, backed=True)
    reqs = {}

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0, module=spec())
        reqs["send"] = req
        sbuf.fill_pattern(seed=0)
        yield from proc.start(req)
        for i in range(4):
            yield from proc.pready(req, i)
        yield from proc.wait_partitioned(req)

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0, module=spec())
        yield from proc.start(req)
        yield from proc.wait_partitioned(req)

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    with pytest.raises(RetryExhaustedError):
        cluster.run()
    module = reqs["send"].module
    dead = [qp for qp in module.send_qps if qp.state is QPState.ERROR]
    assert dead, "retry exhaustion should leave the send QP in ERROR"
    for qp in dead:
        assert qp.sq_depth == 0
        assert qp.outstanding_rdma == 0
    assert cluster.fabric.counters.get("ib.retry_exhausted") > 0
    assert cluster.fabric.counters.get("ib.reconnects") == 0


# -- mid-round link flap: exactly-once recovery (tentpole acceptance) ----


def test_native_module_survives_mid_round_flap():
    """A flap mid-transfer: retries exhaust, the QP dies, the module
    reconnects once and replays; the payload still lands exactly once."""
    sched = FaultSchedule().link_flap(0, 1, start=us(100), duration=us(300))
    spec = lambda: NativeSpec(FixedAggregation(2, 1))
    cluster, outcome = run_faulty_roundtrip(
        spec, sched, config=recovery_config(reconnect_delay=us(500)))
    c = cluster.fabric.counters
    assert c.get("ib.retransmits") > 0
    assert c.get("ib.retry_exhausted") >= 1
    assert c.get("ib.reconnects") == 1
    assert c.get("mpi.replayed_wrs") > 0
    assert c.get("mpi.duplicates_dropped") == 0
    # Every QP walked RESET -> INIT -> RTR -> RTS back to service.
    module = outcome["send_req"].module
    assert all(qp.state is QPState.RTS for qp in module.send_qps)


def test_persist_module_survives_mid_round_flap():
    sched = FaultSchedule().link_flap(0, 1, start=us(100), duration=us(300))
    cluster, _ = run_faulty_roundtrip(
        PersistSpec, sched, config=recovery_config(reconnect_delay=us(500)))
    c = cluster.fabric.counters
    assert c.get("ib.retransmits") > 0
    assert c.get("ib.reconnects") >= 1


def test_transient_chunk_loss_recovers_without_reconnect():
    """Isolated losses stay below the retry budget: retransmission
    alone recovers and no QP ever leaves RTS."""
    sched = FaultSchedule().chunk_loss(0.1)
    cluster, _ = run_faulty_roundtrip(
        lambda: NativeSpec(FixedAggregation(2, 1)), sched)
    c = cluster.fabric.counters
    assert c.get("fault.chunks_lost") > 0
    assert c.get("ib.retransmits") > 0
    assert c.get("ib.reconnects") == 0
    assert c.get("ib.retry_exhausted") == 0


def test_rnr_window_backs_off_and_completes():
    sched = FaultSchedule().rnr_window(1, start=us(40), duration=us(100))
    cluster, _ = run_faulty_roundtrip(
        lambda: NativeSpec(FixedAggregation(2, 1)), sched, psize=64 * KiB)
    assert cluster.fabric.counters.get("ib.rnr_naks") > 0


def test_nic_stall_delays_but_completes():
    sched = FaultSchedule().nic_stall(0, start=us(50), duration=us(200))
    cluster, outcome = run_faulty_roundtrip(
        lambda: NativeSpec(FixedAggregation(2, 1)), sched)
    assert cluster.fabric.counters.get("fault.nic_stalls") > 0
    # The stall pushes completion past the window's end.
    assert outcome["send_done"] > us(250)


# -- the delta-timer-flush vs QP-failure race (satellite regression) ------


def test_timer_flush_racing_qp_failure():
    """A delta-timer flush posting into a QP that fails mid-round must
    neither duplicate nor drop partitions once the channel recovers."""
    sched = FaultSchedule().link_flap(0, 1, start=us(100), duration=us(300))
    spec = lambda: NativeSpec(FixedAggregation(4, 1, timer_delta=us(30)))
    cluster, _ = run_faulty_roundtrip(
        spec, sched, config=recovery_config(reconnect_delay=us(500)),
        rounds=2)
    c = cluster.fabric.counters
    assert c.get("ib.reconnects") >= 1
    assert c.get("mpi.duplicates_dropped") == 0


def test_degraded_posts_after_fault():
    """After a mid-round fault the aggregator downgrades toward
    per-partition sends for the following round, then re-arms."""
    sched = FaultSchedule().link_flap(0, 1, start=us(100), duration=us(300))
    spec = lambda: NativeSpec(FixedAggregation(2, 1))
    cluster, _ = run_faulty_roundtrip(
        spec, sched, config=recovery_config(reconnect_delay=us(500)),
        rounds=3)
    assert cluster.fabric.counters.get("mpi.degraded_posts") > 0
