"""FaultSchedule / FaultInjector: validation, queries, determinism."""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    CHUNK_CORRUPT,
    CHUNK_LOST,
    CHUNK_OK,
    FaultInjector,
    FaultSchedule,
)
from repro.sim.rng import RngStreams


def make_injector(schedule, seed=1234):
    return FaultInjector(schedule, RngStreams(seed).spawn("faults"))


# -- validation -----------------------------------------------------------


def test_negative_window_start_rejected():
    with pytest.raises(ConfigError):
        FaultSchedule().link_flap(0, 1, start=-1.0, duration=1.0)


def test_zero_duration_rejected():
    with pytest.raises(ConfigError):
        FaultSchedule().nic_stall(0, start=1.0, duration=0.0)


def test_negative_latency_spike_rejected():
    with pytest.raises(ConfigError):
        FaultSchedule().latency_spike(0, 1, start=0.0, duration=1.0,
                                      extra=-1e-6)


def test_loss_probability_outside_unit_interval_rejected():
    with pytest.raises(ConfigError):
        FaultSchedule().chunk_loss(1.5)
    with pytest.raises(ConfigError):
        FaultSchedule().chunk_corruption(-0.1)


def test_empty_schedule_reports_empty():
    assert FaultSchedule().empty
    assert not FaultSchedule().chunk_loss(0.0).empty


# -- scripted-window queries ---------------------------------------------


def test_link_flap_covers_both_directions():
    inj = make_injector(FaultSchedule().link_flap(0, 1, start=1.0,
                                                  duration=0.5))
    assert inj.link_down(0, 1, 1.2)
    assert inj.link_down(1, 0, 1.2)
    assert not inj.link_down(0, 1, 0.9)
    assert not inj.link_down(0, 1, 1.5)  # half-open window
    assert not inj.link_down(0, 2, 1.2)  # other links untouched


def test_link_up_at_chains_overlapping_flaps():
    sched = (FaultSchedule()
             .link_flap(0, 1, start=1.0, duration=1.0)
             .link_flap(0, 1, start=1.8, duration=1.0))
    inj = make_injector(sched)
    assert inj.link_up_at(0, 1, 1.5) == pytest.approx(2.8)
    assert inj.link_up_at(0, 1, 3.0) == pytest.approx(3.0)


def test_latency_spikes_sum():
    sched = (FaultSchedule()
             .latency_spike(0, 1, start=0.0, duration=2.0, extra=1e-6)
             .latency_spike(0, 1, start=1.0, duration=2.0, extra=2e-6))
    inj = make_injector(sched)
    assert inj.latency_extra(0, 1, 1.5) == pytest.approx(3e-6)
    assert inj.latency_extra(0, 1, 0.5) == pytest.approx(1e-6)
    assert inj.latency_extra(1, 0, 1.5) == 0.0  # directed


def test_nic_stall_until_chains():
    sched = (FaultSchedule()
             .nic_stall(3, start=1.0, duration=1.0)
             .nic_stall(3, start=1.5, duration=1.0))
    inj = make_injector(sched)
    assert inj.stall_until(3, 1.2) == pytest.approx(2.5)
    assert inj.stall_until(3, 3.0) == pytest.approx(3.0)
    assert inj.stall_until(4, 1.2) == pytest.approx(1.2)


def test_rnr_window_scoped_to_qp():
    sched = FaultSchedule().rnr_window(1, start=0.0, duration=1.0, qp_num=7)
    inj = make_injector(sched)
    assert inj.rnr_forced(1, 7, 0.5)
    assert not inj.rnr_forced(1, 8, 0.5)
    assert not inj.rnr_forced(2, 7, 0.5)


# -- chunk outcomes -------------------------------------------------------


def test_flapped_link_loses_without_rng_draw():
    """Flap losses are scripted: the loss RNG stream must not advance."""
    sched = (FaultSchedule()
             .chunk_loss(0.5)
             .link_flap(0, 1, start=1.0, duration=1.0))
    a = make_injector(sched)
    b = make_injector(FaultSchedule().chunk_loss(0.5))
    # During the flap every chunk is lost on injector a; injector b
    # draws normally.  Afterwards both must produce the same stream.
    for _ in range(10):
        assert a.chunk_outcome(0, 1, 1.5) is CHUNK_LOST
    outcomes_a = [a.chunk_outcome(0, 1, 2.5) for _ in range(200)]
    outcomes_b = [b.chunk_outcome(0, 1, 2.5) for _ in range(200)]
    assert outcomes_a == outcomes_b
    assert CHUNK_LOST in outcomes_a and CHUNK_OK in outcomes_a


def test_chunk_streams_are_per_directed_link():
    inj = make_injector(FaultSchedule().chunk_loss(0.5))
    fwd = [inj.chunk_outcome(0, 1, 0.0) for _ in range(100)]
    # Draws on the reverse link must not have consumed the forward
    # stream: a fresh injector reproduces fwd exactly.
    ref = make_injector(FaultSchedule().chunk_loss(0.5))
    [ref.chunk_outcome(1, 0, 0.0) for _ in range(57)]
    assert [ref.chunk_outcome(0, 1, 0.0) for _ in range(100)] == fwd


def test_corruption_counted_separately():
    inj = make_injector(FaultSchedule().chunk_corruption(1.0))
    assert inj.chunk_outcome(0, 1, 0.0) is CHUNK_CORRUPT
    assert inj.counters.get("fault.chunks_corrupted") == 1
    assert inj.counters.get("fault.chunks_lost") == 0


def test_same_seed_same_outcome_stream():
    outcomes = []
    for _ in range(2):
        inj = make_injector(FaultSchedule().chunk_loss(0.3), seed=99)
        outcomes.append([inj.chunk_outcome(0, 1, 0.0) for _ in range(500)])
    assert outcomes[0] == outcomes[1]
