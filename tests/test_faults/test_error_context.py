"""Structured failure context on transport errors (satellite a).

A chaos report must localize a failure from the exception object alone:
edge, epoch, partition runs, retry budgets — no trace spelunking.
"""

import pytest

from repro.core import FixedAggregation, NativeSpec
from repro.errors import (
    ChannelDownError,
    EpochDeadlineError,
    MPIError,
    RetryExhaustedError,
    TransportError,
)
from repro.faults import FaultSchedule
from repro.units import us
from tests.test_faults.test_recovery import recovery_config, run_faulty_roundtrip


# -- construction ------------------------------------------------------


def test_retry_exhausted_carries_full_context():
    err = RetryExhaustedError(
        "send retries exhausted", edge=(0, 1), epoch=3,
        partitions=((0, 4),), retries={"retry_cnt": 2, "rnr_retry": 1},
        wr_id=17, qp_num=5, status="RETRY_EXC_ERR")
    assert isinstance(err, TransportError)
    assert err.context == {
        "edge": (0, 1), "epoch": 3, "partitions": ((0, 4),),
        "retries": {"retry_cnt": 2, "rnr_retry": 1},
        "wr_id": 17, "qp_num": 5, "status": "RETRY_EXC_ERR"}
    msg = str(err)
    assert msg.startswith("send retries exhausted [")
    assert "edge=(0, 1)" in msg
    assert "epoch=3" in msg


def test_channel_down_carries_context():
    err = ChannelDownError("channel dead", edge=(2, 4), epoch=1)
    assert isinstance(err, MPIError)
    assert err.context == {"edge": (2, 4), "epoch": 1}
    assert "edge=(2, 4)" in str(err)


def test_plain_message_construction_still_works():
    err = ChannelDownError("just a message")
    assert err.context == {}
    assert str(err) == "just a message"
    assert EpochDeadlineError().context == {}


def test_unknown_context_fields_are_rejected():
    with pytest.raises(TypeError):
        RetryExhaustedError("boom", rank=3)


# -- the fields survive the raise path ---------------------------------


@pytest.mark.faults
def test_exhaustion_error_localizes_the_failed_edge():
    sched = (FaultSchedule(allow_reconnect=False)
             .link_flap(0, 1, start=us(50), duration=1.0))
    spec = lambda: NativeSpec(FixedAggregation(2, 1))
    with pytest.raises(RetryExhaustedError) as excinfo:
        run_faulty_roundtrip(spec, sched, config=recovery_config())
    ctx = excinfo.value.context
    cfg = recovery_config()
    assert ctx["edge"] == (0, 1)
    assert ctx["epoch"] >= 1
    assert ctx["retries"] == {"retry_cnt": cfg.nic.retry_cnt,
                              "rnr_retry": cfg.nic.rnr_retry}
    assert ctx["qp_num"] is not None
    assert ctx["status"]
