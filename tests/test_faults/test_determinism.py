"""Bit-exact reproducibility of faulty runs and the zero-overhead off path.

Two guarantees anchor the subsystem:

* the same root seed plus the same schedule produce bit-identical
  virtual-time results and fault counters on every run (scripted
  windows are pure functions of time; probabilistic draws come from
  per-link substreams consumed in deterministic transmission order);
* with **no** schedule installed the fault hooks reduce to one
  ``is None`` check, so headline benchmark numbers are bit-identical
  to the fault-free simulator (goldens captured before the subsystem
  was merged).
"""

import pytest

from repro.bench.pair import run_partitioned_pair
from repro.bench.perceived import run_perceived_bandwidth
from repro.faults import FaultSchedule
from repro.mpi.persist_module import PersistSpec
from repro.units import KiB, MiB, us


def lossy_schedule():
    return (FaultSchedule()
            .chunk_loss(0.05)
            .latency_spike(0, 1, start=us(20), duration=us(100), extra=us(2))
            .link_flap(0, 1, start=us(150), duration=us(80)))


def run_once(seed=7):
    return run_partitioned_pair(
        PersistSpec, n_user=4, partition_size=256 * KiB,
        iterations=3, warmup=1, seed=seed, fault_schedule=lossy_schedule())


@pytest.mark.faults
def test_same_seed_same_schedule_bit_identical():
    a, b = run_once(), run_once()
    assert [it.elapsed for it in a.iterations] == \
        [it.elapsed for it in b.iterations]
    assert [it.pready_times for it in a.iterations] == \
        [it.pready_times for it in b.iterations]
    assert a.counters == b.counters
    assert a.counters.get("fault.chunks_lost", 0) > 0


@pytest.mark.faults
def test_different_seed_different_fault_pattern():
    a, b = run_once(seed=7), run_once(seed=8)
    assert a.counters != b.counters or \
        [it.elapsed for it in a.iterations] != \
        [it.elapsed for it in b.iterations]


# -- zero-overhead off path ----------------------------------------------
#
# Goldens captured from the seed simulator (before the fault subsystem
# existed); an installed-schedule-free run must reproduce them exactly.

FIG6_GOLDEN = {
    "T=2": {4096: 2.416755645179967, 524288: 2.4083458374281754},
    "T=8": {4096: 2.6672998788221833, 524288: 2.5028871442040614},
    "T=32": {4096: 0.9491537345148157, 524288: 2.5028871442040437},
}

FIG9_GOLDEN = {
    "persist": {1048576: 77662796118.17976, 8388608: 152057564011.67825},
    "ploggp": {1048576: 21523680723.140354, 8388608: 84291739875.51491},
    "timer(3000us)": {1048576: 148699352873.72034,
                      8388608: 172189445785.12283},
}


@pytest.mark.slow
def test_fig6_bit_identical_without_schedule():
    from benchmarks.bench_fig06_transport_partitions import run_fig6

    series = run_fig6([4 * KiB, 512 * KiB], dict(iterations=5, warmup=2))
    assert series == FIG6_GOLDEN


@pytest.mark.slow
def test_fig9_bit_identical_without_schedule():
    from benchmarks.bench_fig09_perceived_bandwidth import run_fig9

    series = run_fig9(16, [1 * MiB, 8 * MiB], iterations=3, warmup=1)
    assert series == FIG9_GOLDEN


@pytest.mark.faults
def test_counters_empty_without_schedule():
    r = run_partitioned_pair(PersistSpec, n_user=4,
                             partition_size=64 * KiB,
                             iterations=2, warmup=1)
    assert r.counters == {}
