"""Fixtures for the fault-injection tests."""

import pytest

from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()
