"""Tests for the MPI Partitioned API: lifecycle, semantics, errors."""

import numpy as np
import pytest

from repro.core import FixedAggregation, NativeSpec
from repro.errors import MatchingError, PartitionError, RequestError
from repro.mem import PartitionedBuffer
from repro.mpi import Cluster
from repro.mpi.persist_module import PersistSpec
from repro.mpi.request import PartitionedState
from repro.units import KiB

ALL_SPECS = [
    ("persist", PersistSpec),
    ("native", lambda: NativeSpec(FixedAggregation(2, 2))),
    ("native-noagg", lambda: NativeSpec(FixedAggregation(8, 1))),
]


def run_roundtrip(spec_factory, n_parts=8, psize=4 * KiB, rounds=1,
                  use_parrived=False):
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    sbuf = PartitionedBuffer(n_parts, psize)
    rbuf = PartitionedBuffer(n_parts, psize)
    outcome = {}

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0, module=spec_factory())
        for rnd in range(rounds):
            sbuf.fill_pattern(seed=rnd)
            yield from proc.start(req)
            for i in range(n_parts):
                yield from proc.pready(req, i)
            yield from proc.wait_partitioned(req)
        outcome["send_done"] = proc.env.now

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0, module=spec_factory())
        for rnd in range(rounds):
            yield from proc.start(req)
            if use_parrived:
                for i in range(n_parts):
                    while not (yield from proc.parrived(req, i)):
                        pass
            yield from proc.wait_partitioned(req)
            assert np.array_equal(rbuf.data, rbuf.expected_pattern(
                0, rbuf.nbytes, seed=rnd))
        outcome["recv_done"] = proc.env.now

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()
    assert "send_done" in outcome and "recv_done" in outcome
    return outcome


@pytest.mark.parametrize("name,spec", ALL_SPECS)
def test_single_round_roundtrip(name, spec):
    run_roundtrip(spec)


@pytest.mark.parametrize("name,spec", ALL_SPECS)
def test_multi_round_reuse(name, spec):
    """Persistent requests restart cleanly and move fresh data."""
    run_roundtrip(spec, rounds=4)


@pytest.mark.parametrize("name,spec", ALL_SPECS)
def test_parrived_polling(name, spec):
    run_roundtrip(spec, use_parrived=True)


def test_pready_out_of_order_indices():
    """Partitions may be marked ready in any order."""
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    n = 8
    sbuf = PartitionedBuffer(n, 1 * KiB)
    rbuf = PartitionedBuffer(n, 1 * KiB)
    sbuf.fill_pattern(seed=7)

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0,
                              module=NativeSpec(FixedAggregation(4, 2)))
        yield from proc.start(req)
        for i in (5, 0, 7, 2, 1, 6, 3, 4):
            yield from proc.pready(req, i)
        yield from proc.wait_partitioned(req)

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0,
                              module=NativeSpec(FixedAggregation(4, 2)))
        yield from proc.start(req)
        yield from proc.wait_partitioned(req)

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()
    assert np.array_equal(rbuf.data, sbuf.data)


def test_pready_before_start_rejected():
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    sbuf = PartitionedBuffer(4, 256)

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0, module=PersistSpec())
        with pytest.raises(RequestError):
            yield from proc.pready(req, 0)

    p = cluster.spawn(sender(s_proc))
    cluster.run(until=p)


def test_pready_bad_partition_rejected():
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    sbuf = PartitionedBuffer(4, 256)
    rbuf = PartitionedBuffer(4, 256)

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0, module=PersistSpec())
        yield from proc.start(req)
        with pytest.raises(PartitionError):
            yield from proc.pready(req, 4)
        # finish the round cleanly
        for i in range(4):
            yield from proc.pready(req, i)
        yield from proc.wait_partitioned(req)

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0, module=PersistSpec())
        yield from proc.start(req)
        yield from proc.wait_partitioned(req)

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()


def test_double_start_rejected():
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    sbuf = PartitionedBuffer(4, 256)
    rbuf = PartitionedBuffer(4, 256)

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0, module=PersistSpec())
        yield from proc.start(req)
        with pytest.raises(RequestError):
            yield from proc.start(req)

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0, module=PersistSpec())
        yield from proc.start(req)

    p = cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run(until=p)


def test_pready_on_recv_request_rejected():
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    sbuf = PartitionedBuffer(4, 256)
    rbuf = PartitionedBuffer(4, 256)

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0, module=PersistSpec())
        yield from proc.start(req)
        for i in range(4):
            yield from proc.pready(req, i)
        yield from proc.wait_partitioned(req)

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0, module=PersistSpec())
        yield from proc.start(req)
        with pytest.raises(RequestError):
            yield from proc.pready(req, 0)
        yield from proc.wait_partitioned(req)

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()


def test_size_mismatch_raises_at_match():
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    s_proc.psend_init(PartitionedBuffer(4, 256), dest=1, tag=0,
                      module=PersistSpec())
    with pytest.raises(MatchingError, match="size mismatch"):
        r_proc.precv_init(PartitionedBuffer(4, 512), source=0, tag=0,
                          module=PersistSpec())


def test_partition_count_mismatch_raises():
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    s_proc.psend_init(PartitionedBuffer(4, 512), dest=1, tag=0,
                      module=PersistSpec())
    with pytest.raises(MatchingError, match="partition counts"):
        r_proc.precv_init(PartitionedBuffer(8, 256), source=0, tag=0,
                          module=PersistSpec())


def test_module_mismatch_raises():
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    s_proc.psend_init(PartitionedBuffer(4, 256), dest=1, tag=0,
                      module=PersistSpec())
    with pytest.raises(MatchingError, match="module mismatch"):
        r_proc.precv_init(PartitionedBuffer(4, 256), source=0, tag=0,
                          module=NativeSpec(FixedAggregation(2, 1)))


def test_matching_is_fifo_per_tag():
    """Two pairs on the same (src, dst, tag) match in posted order."""
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    sbufs = [PartitionedBuffer(4, 256) for _ in range(2)]
    rbufs = [PartitionedBuffer(4, 256) for _ in range(2)]
    sbufs[0].fill_pattern(seed=1)
    sbufs[1].fill_pattern(seed=2)

    def sender(proc):
        reqs = [proc.psend_init(b, dest=1, tag=0, module=PersistSpec())
                for b in sbufs]
        for req in reqs:
            yield from proc.start(req)
            for i in range(4):
                yield from proc.pready(req, i)
        for req in reqs:
            yield from proc.wait_partitioned(req)

    def receiver(proc):
        reqs = [proc.precv_init(b, source=0, tag=0, module=PersistSpec())
                for b in rbufs]
        for req in reqs:
            yield from proc.start(req)
        for req in reqs:
            yield from proc.wait_partitioned(req)

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()
    assert np.array_equal(rbufs[0].data, sbufs[0].data)
    assert np.array_equal(rbufs[1].data, sbufs[1].data)


def test_request_records_pready_and_arrival_times():
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    sbuf = PartitionedBuffer(4, 1 * KiB)
    rbuf = PartitionedBuffer(4, 1 * KiB)
    holder = {}

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0, module=PersistSpec())
        holder["send"] = req
        yield from proc.start(req)
        for i in range(4):
            yield proc.env.timeout(1e-6)
            yield from proc.pready(req, i)
        yield from proc.wait_partitioned(req)

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0, module=PersistSpec())
        holder["recv"] = req
        yield from proc.start(req)
        yield from proc.wait_partitioned(req)

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()
    send_req, recv_req = holder["send"], holder["recv"]
    assert all(t is not None for t in send_req.pready_times)
    assert send_req.pready_times == sorted(send_req.pready_times)
    assert all(t is not None for t in recv_req.arrival_times)
    assert recv_req.all_arrived
    assert send_req.state is PartitionedState.COMPLETE


def test_setup_is_asynchronous():
    """Init returns immediately; Start blocks until setup completes."""
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    sbuf = PartitionedBuffer(4, 256)
    rbuf = PartitionedBuffer(4, 256)
    times = {}

    def sender(proc):
        t0 = proc.env.now
        req = proc.psend_init(sbuf, dest=1, tag=0, module=PersistSpec())
        times["init_cost"] = proc.env.now - t0
        yield from proc.start(req)
        times["start_done"] = proc.env.now
        for i in range(4):
            yield from proc.pready(req, i)
        yield from proc.wait_partitioned(req)

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0, module=PersistSpec())
        yield from proc.start(req)
        yield from proc.wait_partitioned(req)

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()
    assert times["init_cost"] == 0.0       # non-blocking init
    assert times["start_done"] >= 45e-6    # waited for QP exchange
