"""Tests for classic persistent point-to-point (Send_init/Recv_init)."""

import numpy as np
import pytest

from repro.errors import MPIError, RequestError
from repro.mem import Buffer
from repro.mpi import Cluster
from repro.units import KiB, MiB


def make_pair():
    cluster = Cluster(n_nodes=2)
    a, b = cluster.ranks(2)
    return cluster, a, b


def test_persistent_roundtrip_multiple_rounds():
    cluster, a, b = make_pair()
    sbuf = Buffer(64 * KiB)
    rbuf = Buffer(64 * KiB)
    rounds = 4

    def sender(proc):
        req = proc.send_init(sbuf, dest=1, tag=0)
        for rnd in range(rounds):
            sbuf.fill_pattern(seed=rnd)
            proc.start_p2p(req)
            yield from proc.wait(req)

    def receiver(proc):
        req = proc.recv_init(rbuf, source=0, tag=0)
        for rnd in range(rounds):
            proc.start_p2p(req)
            yield from proc.wait(req)
            assert np.array_equal(
                rbuf.data, rbuf.expected_pattern(0, rbuf.nbytes, seed=rnd))

    cluster.spawn(sender(a))
    cluster.spawn(receiver(b))
    cluster.run()


def test_wait_on_inactive_request_returns_immediately():
    cluster, a, b = make_pair()

    def prog(proc):
        req = proc.send_init(Buffer(256), dest=1, tag=0)
        t0 = proc.env.now
        yield from proc.wait(req)  # never started: no-op per MPI
        return proc.env.now - t0

    p = cluster.spawn(prog(a))
    cluster.run(until=p)
    assert p.value == 0.0


def test_double_start_rejected():
    cluster, a, b = make_pair()
    req = a.send_init(Buffer(1 * MiB, backed=False), dest=1, tag=0)
    a.start_p2p(req)
    with pytest.raises(RequestError):
        a.start_p2p(req)


def test_startall_launches_everything():
    cluster, a, b = make_pair()
    sbufs = [Buffer(4 * KiB, backed=False) for _ in range(3)]
    rbufs = [Buffer(4 * KiB, backed=False) for _ in range(3)]

    def sender(proc):
        reqs = [proc.send_init(s, dest=1, tag=i)
                for i, s in enumerate(sbufs)]
        proc.startall(reqs)
        yield from proc.wait_all(reqs)
        assert all(r.rounds_started == 1 for r in reqs)

    def receiver(proc):
        reqs = [proc.recv_init(r, source=0, tag=i)
                for i, r in enumerate(rbufs)]
        proc.startall(reqs)
        yield from proc.wait_all(reqs)

    cluster.spawn(sender(a))
    cluster.spawn(receiver(b))
    cluster.run()


def test_offset_and_nbytes_honoured():
    cluster, a, b = make_pair()
    sbuf = Buffer(1024)
    rbuf = Buffer(1024)
    sbuf.fill_pattern(seed=5)

    def sender(proc):
        req = proc.send_init(sbuf, dest=1, tag=0, offset=256, nbytes=512)
        proc.start_p2p(req)
        yield from proc.wait(req)

    def receiver(proc):
        req = proc.recv_init(rbuf, source=0, tag=0, offset=128, nbytes=512)
        proc.start_p2p(req)
        yield from proc.wait(req)

    cluster.spawn(sender(a))
    cluster.spawn(receiver(b))
    cluster.run()
    assert np.array_equal(rbuf.data[128:640], sbuf.data[256:768])


def test_bad_range_rejected():
    cluster, a, b = make_pair()
    with pytest.raises(MPIError):
        a.send_init(Buffer(64), dest=1, tag=0, nbytes=128)
    with pytest.raises(MPIError):
        b.recv_init(Buffer(64), source=0, tag=0, offset=60, nbytes=32)


def test_bad_kind_rejected():
    from repro.mpi.request import PersistentP2PRequest

    cluster, a, b = make_pair()
    with pytest.raises(RequestError):
        PersistentP2PRequest(a, "bogus", Buffer(64), 64, 1, 0)
