"""Unit tests for the part_persist baseline module internals."""

import numpy as np
import pytest

from repro.config import NIAGARA
from repro.mem import PartitionedBuffer
from repro.mpi import Cluster
from repro.mpi.persist_module import PersistSpec
from repro.units import KiB, MiB, ms


def run_persist(n_parts, psize, rounds=1, pready_stagger=0.0,
                inter_round_gap=0.0):
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    sbuf = PartitionedBuffer(n_parts, psize)
    rbuf = PartitionedBuffer(n_parts, psize)
    holder = {}

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0, module=PersistSpec())
        holder["send"] = req
        for rnd in range(rounds):
            sbuf.fill_pattern(seed=rnd + 1)
            yield from proc.start(req)
            for i in range(n_parts):
                if pready_stagger:
                    yield proc.env.timeout(pready_stagger)
                yield from proc.pready(req, i)
            yield from proc.wait_partitioned(req)
            if inter_round_gap:
                yield proc.env.timeout(inter_round_gap)

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0, module=PersistSpec())
        holder["recv"] = req
        for rnd in range(rounds):
            yield from proc.start(req)
            yield from proc.wait_partitioned(req)
            assert np.array_equal(
                rbuf.data, rbuf.expected_pattern(0, rbuf.nbytes, seed=rnd + 1))

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()
    return holder


def test_eager_partitions_roundtrip():
    holder = run_persist(8, 4 * KiB)  # zcopy eager tier
    assert holder["recv"].all_arrived


def test_inline_partitions_roundtrip():
    run_persist(8, 128)  # inline tier


def test_rndv_partitions_roundtrip():
    holder = run_persist(4, 1 * MiB)  # receiver-driven get tier
    module = holder["send"].module
    assert module._acked == 4


def test_rndv_uses_read_rails():
    holder = run_persist(8, 256 * KiB)
    module = holder["send"].module
    # Reads striped over both rails.
    posted = [qp.posted_sends for qp in module.read_qps]
    assert sum(posted) == 8
    assert all(p > 0 for p in posted)


def test_eager_does_not_touch_read_rails():
    holder = run_persist(8, 4 * KiB)
    module = holder["send"].module
    assert all(qp.posted_sends == 0 for qp in module.read_qps)


def test_round_credit_defers_early_senders():
    """Back-to-back rounds with instant preadys must stay correct (the
    sender would otherwise overwrite the receive buffer before the
    receiver re-arms)."""
    holder = run_persist(16, 1 * KiB, rounds=5)
    assert holder["send"].module._armed_round >= 5


def test_mixed_rounds_with_stagger():
    run_persist(8, 64 * KiB, rounds=3, pready_stagger=2e-6)


def test_worker_lock_serializes_threads():
    """Concurrent preadys through the worker lock contend measurably."""
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    n = 16
    sbuf = PartitionedBuffer(n, 4 * KiB, backed=False)
    rbuf = PartitionedBuffer(n, 4 * KiB, backed=False)
    holder = {}

    def thread(proc, req, i):
        yield from proc.pready(req, i)

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0, module=PersistSpec())
        holder["req"] = req
        yield from proc.start(req)
        threads = [proc.env.process(thread(proc, req, i)) for i in range(n)]
        yield proc.env.all_of(threads)
        yield from proc.wait_partitioned(req)

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0, module=PersistSpec())
        yield from proc.start(req)
        yield from proc.wait_partitioned(req)

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()
    module = holder["req"].module
    assert module.worker_lock.contended_count > 0
    # pready times were recorded at entry; completion serialized behind
    # the lock means the request finished later than n * hold time.
    assert holder["req"].completed_at > n * NIAGARA.ucx.t_eager_zcopy
