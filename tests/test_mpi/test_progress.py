"""Tests for the progress engine: lock discipline, pollers, parking."""

import pytest

from repro.engine.progress import ProgressEngine
from repro.sim import Environment
from repro.units import ns


def make_engine(env):
    return ProgressEngine(env, t_poll_miss=ns(50))


def test_empty_progress_charges_poll_miss():
    env = Environment()
    engine = make_engine(env)

    def prog(env):
        handled = yield from engine.progress_once()
        return (handled, env.now)

    p = env.process(prog(env))
    env.run()
    assert p.value == (0, pytest.approx(ns(50)))


def test_pollers_run_and_count():
    env = Environment()
    engine = make_engine(env)
    work = [3]

    def poller():
        n = work[0]
        work[0] = 0
        if n:
            yield env.timeout(ns(100) * n)
        return n

    engine.register(poller)

    def prog(env):
        first = yield from engine.progress_once()
        second = yield from engine.progress_once()
        return (first, second)

    p = env.process(prog(env))
    env.run()
    assert p.value == (3, 0)
    assert engine.events_handled == 3
    assert engine.passes == 2


def test_try_lock_discipline():
    """A second thread entering progress while one holds the lock must
    return immediately with zero work (the paper's Parrived path)."""
    env = Environment()
    engine = make_engine(env)

    def slow_poller():
        yield env.timeout(1e-6)
        return 1

    engine.register(slow_poller)
    results = []

    def first(env):
        n = yield from engine.progress_once()
        results.append(("first", n, env.now))

    def second(env):
        yield env.timeout(0.1e-6)  # arrive mid-progress
        n = yield from engine.progress_once()
        results.append(("second", n, env.now))

    env.process(first(env))
    env.process(second(env))
    env.run()
    # The loser pays one failed-probe poll, then returns empty-handed.
    assert ("second", 0, pytest.approx(0.1e-6 + ns(50))) in results
    assert results[-1][0] == "first" or results[0][0] == "second"


def test_wait_until_parks_on_kick():
    """wait_until must not burn events while idle; a kick wakes it."""
    env = Environment()
    engine = make_engine(env)
    flag = []

    def waiter(env):
        yield from engine.wait_until(lambda: bool(flag))
        return env.now

    def kicker(env):
        yield env.timeout(5e-6)
        flag.append(True)
        engine.kick()

    p = env.process(waiter(env))
    env.process(kicker(env))
    env.run()
    assert p.value == pytest.approx(5e-6, rel=0.5)


def test_wait_until_immediate_predicate():
    env = Environment()
    engine = make_engine(env)

    def prog(env):
        yield from engine.wait_until(lambda: True)
        return env.now

    p = env.process(prog(env))
    env.run()
    assert p.value == 0.0


def test_wait_until_fallback_timer():
    """Even without a kick, the fallback park interval makes progress."""
    env = Environment()
    engine = make_engine(env)
    deadline = 25e-6

    def prog(env):
        yield from engine.wait_until(lambda: env.now >= deadline)
        return env.now

    p = env.process(prog(env))
    env.run()
    assert deadline <= p.value < deadline + 110e-6


def test_watch_cq_kicks():
    from repro.ib.cq import CompletionQueue
    from repro.ib.wr import WorkCompletion
    from repro.ib.constants import WCOpcode, WCStatus

    env = Environment()
    engine = make_engine(env)
    cq = CompletionQueue(None, 16)
    engine.watch_cq(cq)
    seen = []

    def poller():
        wcs = cq.poll(16)
        if wcs:
            yield env.timeout(ns(10))
            seen.extend(wcs)
        return len(wcs)

    engine.register(poller)

    def pusher(env):
        yield env.timeout(3e-6)
        cq.push(WorkCompletion(wr_id=1, status=WCStatus.SUCCESS,
                               opcode=WCOpcode.RECV, qp_num=0))

    def waiter(env):
        yield from engine.wait_until(lambda: bool(seen))
        return env.now

    env.process(pusher(env))
    p = env.process(waiter(env))
    env.run()
    assert p.value == pytest.approx(3e-6, rel=0.5)
    assert len(seen) == 1
