"""Tests for cluster topology and rank management."""

import pytest

from repro.config import NIAGARA
from repro.errors import ConfigError, MatchingError
from repro.mpi import Cluster


def test_ranks_round_robin_nodes():
    cluster = Cluster(n_nodes=2)
    procs = cluster.ranks(4)
    assert [p.rank for p in procs] == [0, 1, 2, 3]
    assert [p.node_id for p in procs] == [0, 1, 0, 1]


def test_explicit_node_placement():
    cluster = Cluster(n_nodes=4)
    proc = cluster.add_process(node_id=3)
    assert proc.node_id == 3
    assert proc.rank == 0


def test_process_by_rank_bounds():
    cluster = Cluster(n_nodes=2)
    cluster.ranks(2)
    assert cluster.process_by_rank(1).rank == 1
    with pytest.raises(MatchingError):
        cluster.process_by_rank(2)
    with pytest.raises(MatchingError):
        cluster.process_by_rank(-1)


def test_world_size():
    cluster = Cluster(n_nodes=3)
    assert cluster.world_size == 0
    cluster.ranks(3)
    assert cluster.world_size == 3


def test_invalid_config_rejected_at_construction():
    bad = NIAGARA.with_changes(seed=-1)
    with pytest.raises(ConfigError):
        Cluster(n_nodes=1, config=bad)


def test_seed_controls_rng_streams():
    c1 = Cluster(n_nodes=1, config=NIAGARA.with_changes(seed=7))
    c2 = Cluster(n_nodes=1, config=NIAGARA.with_changes(seed=7))
    c3 = Cluster(n_nodes=1, config=NIAGARA.with_changes(seed=8))
    a = c1.rngs.stream("x").random(4).tolist()
    b = c2.rngs.stream("x").random(4).tolist()
    c = c3.rngs.stream("x").random(4).tolist()
    assert a == b
    assert a != c


def test_spawn_runs_generator():
    cluster = Cluster(n_nodes=1)

    def prog(env):
        yield env.timeout(1e-3)
        return "done"

    p = cluster.spawn(prog(cluster.env))
    cluster.run()
    assert p.value == "done"


def test_oversubscription_multiplier_applied():
    cluster = Cluster(n_nodes=2)
    proc = cluster.add_process()
    assert proc.software_cost(100e-9) == pytest.approx(100e-9)
    proc.sw_multiplier = 3.0
    assert proc.software_cost(100e-9) == pytest.approx(300e-9)
