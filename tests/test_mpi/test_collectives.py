"""Tests for the collective operations."""

import numpy as np
import pytest

from repro.errors import MPIError
from repro.mpi import Cluster
from repro.mpi.collectives import (
    _binomial_children,
    _binomial_parent,
    allreduce,
    barrier,
    bcast,
    reduce,
)


def run_collective(world, program):
    cluster = Cluster(n_nodes=world)
    procs = cluster.ranks(world)
    results = {}

    def wrapper(proc):
        value = yield from program(proc)
        results[proc.rank] = (value, proc.env.now)

    for proc in procs:
        cluster.spawn(wrapper(proc))
    cluster.run()
    return results


# ---------------------------------------------------------------------------
# binomial tree structure
# ---------------------------------------------------------------------------


def test_binomial_tree_consistency():
    """parent(child) == rank, for every rank/root/world combination."""
    for world in (1, 2, 3, 4, 5, 8, 13):
        for root in range(world):
            seen = set()
            for rank in range(world):
                for child in _binomial_children(rank, root, world):
                    assert _binomial_parent(child, root, world) == rank
                    assert child not in seen
                    seen.add(child)
            # every non-root rank is exactly one rank's child
            assert seen == {r for r in range(world) if r != root}


def test_binomial_root_has_no_parent():
    assert _binomial_parent(3, 3, 8) is None


# ---------------------------------------------------------------------------
# barrier
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("world", [2, 3, 4, 5, 7, 8])
def test_barrier_synchronizes(world):
    def program(proc):
        # Stagger the arrivals: rank r arrives at r * 10us.
        yield proc.env.timeout(proc.rank * 10e-6)
        yield from barrier(proc, world)
        return proc.env.now

    results = run_collective(world, program)
    exit_times = [t for (v, t) in results.values()]
    latest_arrival = (world - 1) * 10e-6
    assert all(t >= latest_arrival for t in exit_times)
    # Exits cluster within a few fabric crossings of each other.
    assert max(exit_times) - min(exit_times) < 20e-6


def test_barrier_single_rank_is_noop():
    def program(proc):
        yield from barrier(proc, 1)
        return proc.env.now

    results = run_collective(1, program)
    assert results[0][1] == 0.0


def test_barrier_repeated():
    world = 4

    def program(proc):
        for _ in range(3):
            yield from barrier(proc, world)
        return proc.env.now

    run_collective(world, program)


# ---------------------------------------------------------------------------
# bcast / reduce / allreduce
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("world", [2, 3, 4, 5, 6, 7, 8])
def test_bcast_delivers_roots_data(world):
    payload = np.arange(256, dtype=np.int64)

    def program(proc):
        data = payload.copy() if proc.rank == 1 else np.zeros(256, np.int64)
        result = yield from bcast(proc, world, data, root=1)
        return result.copy()

    results = run_collective(world, program)
    for rank, (value, _) in results.items():
        assert np.array_equal(value, payload), f"rank {rank}"


@pytest.mark.parametrize("world", [2, 3, 5, 7, 8])
def test_reduce_sums_at_root(world):
    def program(proc):
        data = np.full(64, proc.rank + 1, dtype=np.int64)
        result = yield from reduce(proc, world, data, op=np.add, root=0)
        return result.copy()

    results = run_collective(world, program)
    expected = sum(range(1, world + 1))
    assert np.all(results[0][0] == expected)


def test_reduce_with_max_op():
    world = 4

    def program(proc):
        data = np.array([proc.rank * 10], dtype=np.int64)
        result = yield from reduce(proc, world, data, op=np.maximum, root=0)
        return result.copy()

    results = run_collective(world, program)
    assert results[0][0][0] == 30


@pytest.mark.parametrize("world", [2, 3, 4, 5, 7])
def test_allreduce_everyone_gets_total(world):
    def program(proc):
        data = np.full(32, proc.rank + 1, dtype=np.float64)
        result = yield from allreduce(proc, world, data)
        return result.copy()

    results = run_collective(world, program)
    expected = sum(range(1, world + 1))
    for rank, (value, _) in results.items():
        assert np.allclose(value, expected), f"rank {rank}"


def test_bcast_bad_root_rejected():
    def program(proc):
        with pytest.raises(MPIError):
            yield from bcast(proc, 2, np.zeros(4), root=5)
        return None

    run_collective(2, program)
