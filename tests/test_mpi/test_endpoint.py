"""Tests for the UCX-like endpoint: protocol tiers, lanes, pacing."""

import numpy as np
import pytest

from repro.config import NIAGARA
from repro.mem import Buffer
from repro.mpi import Cluster
from repro.mpi.endpoint import RING_BYTES, Channel
from repro.units import KiB, MiB


def make_pair():
    cluster = Cluster(n_nodes=2)
    a, b = cluster.ranks(2)
    return cluster, a, b


def test_channel_created_lazily_and_cached():
    cluster, a, b = make_pair()
    assert a._channels_out == {}
    chan1 = a.channel_to(1)
    chan2 = a.channel_to(1)
    assert chan1 is chan2
    assert isinstance(chan1, Channel)


def test_channel_has_data_and_control_lanes():
    cluster, a, b = make_pair()
    chan = a.channel_to(1)
    assert len(chan.src_qps) == NIAGARA.ucx.n_lanes + 1
    assert chan.ctrl_qp is chan.src_qps[-1]


def test_control_messages_use_control_lane():
    """Rendezvous RTS must not ride the bulk lanes."""
    cluster, a, b = make_pair()
    sbuf = Buffer(1 * MiB, backed=False)
    rbuf = Buffer(1 * MiB, backed=False)

    def sender(proc):
        yield from proc.send(sbuf, dest=1, tag=1)

    def receiver(proc):
        yield from proc.recv(rbuf, source=0, tag=1)

    cluster.spawn(sender(a))
    cluster.spawn(receiver(b))
    cluster.run()
    chan = a._channels_out[1]
    assert chan.ctrl_qp.posted_sends >= 1        # the RTS
    # CTS went over the reverse channel's control lane.
    back = b._channels_out[0]
    assert back.ctrl_qp.posted_sends >= 1


def test_bulk_payloads_stripe_across_lanes():
    cluster, a, b = make_pair()
    sbufs = [Buffer(1 * MiB, backed=False) for _ in range(4)]
    rbufs = [Buffer(1 * MiB, backed=False) for _ in range(4)]

    def sender(proc):
        reqs = [proc.isend(s, dest=1, tag=i) for i, s in enumerate(sbufs)]
        yield from proc.wait_all(reqs)

    def receiver(proc):
        reqs = [proc.irecv(r, source=0, tag=i) for i, r in enumerate(rbufs)]
        yield from proc.wait_all(reqs)

    cluster.spawn(sender(a))
    cluster.spawn(receiver(b))
    cluster.run()
    chan = a._channels_out[1]
    lane_loads = [qp.posted_sends for qp in chan.src_qps[:NIAGARA.ucx.n_lanes]]
    # Four rendezvous data messages, striped round-robin over 2 lanes.
    assert sorted(lane_loads) == [2, 2]


def test_eager_stays_on_lane_zero():
    cluster, a, b = make_pair()
    sbuf = Buffer(4 * KiB)
    rbufs = [Buffer(4 * KiB) for _ in range(3)]

    def sender(proc):
        for i in range(3):
            yield from proc.send(sbuf, dest=1, tag=i)

    def receiver(proc):
        for i in range(3):
            yield from proc.recv(rbufs[i], source=0, tag=i)

    cluster.spawn(sender(a))
    cluster.spawn(receiver(b))
    cluster.run()
    chan = a._channels_out[1]
    assert chan.src_qps[0].posted_sends == 3
    assert chan.src_qps[1].posted_sends == 0


def test_ring_allocation_wraps():
    cluster, a, b = make_pair()
    chan = a.channel_to(1)
    first = chan.alloc_ring(1024)
    assert first == 0
    chan._ring_head = RING_BYTES - 100
    wrapped = chan.alloc_ring(1024)
    assert wrapped == 0


def test_ring_rejects_oversized():
    from repro.errors import MPIError

    cluster, a, b = make_pair()
    chan = a.channel_to(1)
    with pytest.raises(MPIError):
        chan.alloc_ring(RING_BYTES + 1)


def test_injection_pacing_spaces_messages():
    """Messages through one endpoint obey the protocol gap."""
    cluster, a, b = make_pair()
    n = 8
    size = 4 * KiB  # zcopy tier
    sbuf = Buffer(size, backed=False)
    rbufs = [Buffer(size, backed=False) for _ in range(n)]
    arrivals = []

    def sender(proc):
        reqs = [proc.isend(sbuf, dest=1, tag=i) for i in range(n)]
        yield from proc.wait_all(reqs)

    def receiver(proc):
        reqs = [proc.irecv(rbufs[i], source=0, tag=i) for i in range(n)]
        for req in reqs:
            yield from proc.wait(req)
            arrivals.append(req.completed_at)

    cluster.spawn(sender(a))
    cluster.spawn(receiver(b))
    cluster.run()
    gaps = [t2 - t1 for t1, t2 in zip(arrivals, arrivals[1:])]
    proto_gap = NIAGARA.ucx.protocol_for(size).gap
    assert min(gaps) >= proto_gap * 0.5


def test_message_statistics():
    cluster, a, b = make_pair()
    sbuf = Buffer(512)
    rbuf = Buffer(512)

    def sender(proc):
        yield from proc.send(sbuf, dest=1, tag=1)

    def receiver(proc):
        yield from proc.recv(rbuf, source=0, tag=1)

    cluster.spawn(sender(a))
    cluster.spawn(receiver(b))
    cluster.run()
    chan = a._channels_out[1]
    assert chan.messages_sent == 1
    assert chan.bytes_sent > 512  # payload + header accounting
