"""Tests for point-to-point transport: protocols, matching, ordering."""

import numpy as np
import pytest

from repro.errors import MatchingError, MPIError
from repro.mem import Buffer
from repro.mpi import Cluster
from repro.units import KiB, MiB


def make_pair():
    cluster = Cluster(n_nodes=2)
    a, b = cluster.ranks(2)
    return cluster, a, b


def roundtrip(nbytes, tag=1):
    cluster, a, b = make_pair()
    sbuf = Buffer(nbytes)
    rbuf = Buffer(nbytes)
    sbuf.fill_pattern(seed=nbytes % 97)

    def sender(proc):
        yield from proc.send(sbuf, dest=1, tag=tag)

    def receiver(proc):
        yield from proc.recv(rbuf, source=0, tag=tag)

    cluster.spawn(sender(a))
    cluster.spawn(receiver(b))
    cluster.run()
    assert np.array_equal(rbuf.data, sbuf.data)
    return cluster.env.now


def test_inline_roundtrip():
    roundtrip(64)


def test_bcopy_roundtrip():
    roundtrip(1 * KiB)


def test_zcopy_roundtrip():
    roundtrip(8 * KiB)


def test_rndv_roundtrip():
    roundtrip(1 * MiB)


def test_larger_is_slower():
    assert roundtrip(64) < roundtrip(4 * MiB)


def test_unexpected_eager_message_staged():
    """Send before the receive is posted: payload must survive."""
    cluster, a, b = make_pair()
    sbuf = Buffer(512)
    rbuf = Buffer(512)
    sbuf.fill_pattern(seed=5)

    def sender(proc):
        yield from proc.send(sbuf, dest=1, tag=9)

    def receiver(proc):
        yield proc.env.timeout(1e-3)  # message long since arrived
        yield from proc.recv(rbuf, source=0, tag=9)

    cluster.spawn(sender(a))
    cluster.spawn(receiver(b))
    cluster.run()
    assert np.array_equal(rbuf.data, sbuf.data)


def test_unexpected_rndv_message():
    cluster, a, b = make_pair()
    sbuf = Buffer(1 * MiB, backed=False)
    rbuf = Buffer(1 * MiB, backed=False)

    def sender(proc):
        yield from proc.send(sbuf, dest=1, tag=9)

    def receiver(proc):
        yield proc.env.timeout(1e-3)
        yield from proc.recv(rbuf, source=0, tag=9)

    s = cluster.spawn(sender(a))
    r = cluster.spawn(receiver(b))
    cluster.run()
    assert s.value is not None or s.processed
    assert r.processed


def test_tag_matching_distinguishes_messages():
    cluster, a, b = make_pair()
    buf1, buf2 = Buffer(256), Buffer(256)
    recv1, recv2 = Buffer(256), Buffer(256)
    buf1.fill_pattern(seed=1)
    buf2.fill_pattern(seed=2)

    def sender(proc):
        yield from proc.send(buf1, dest=1, tag=11)
        yield from proc.send(buf2, dest=1, tag=22)

    def receiver(proc):
        # Receive in reverse tag order.
        yield from proc.recv(recv2, source=0, tag=22)
        yield from proc.recv(recv1, source=0, tag=11)

    cluster.spawn(sender(a))
    cluster.spawn(receiver(b))
    cluster.run()
    assert np.array_equal(recv1.data, buf1.data)
    assert np.array_equal(recv2.data, buf2.data)


def test_same_tag_fifo_order():
    cluster, a, b = make_pair()
    payloads = [Buffer(256) for _ in range(4)]
    results = [Buffer(256) for _ in range(4)]
    for i, p in enumerate(payloads):
        p.fill_pattern(seed=10 + i)

    def sender(proc):
        for p in payloads:
            yield from proc.send(p, dest=1, tag=5)

    def receiver(proc):
        for r in results:
            yield from proc.recv(r, source=0, tag=5)

    cluster.spawn(sender(a))
    cluster.spawn(receiver(b))
    cluster.run()
    for p, r in zip(payloads, results):
        assert np.array_equal(r.data, p.data)


def test_truncation_rejected():
    cluster, a, b = make_pair()
    sbuf = Buffer(512)
    rbuf = Buffer(128)

    def sender(proc):
        yield from proc.send(sbuf, dest=1, tag=1)

    def receiver(proc):
        yield from proc.recv(rbuf, source=0, tag=1)

    cluster.spawn(sender(a))
    cluster.spawn(receiver(b))
    with pytest.raises(MatchingError, match="truncated"):
        cluster.run()


def test_self_send_rejected():
    cluster, a, b = make_pair()
    with pytest.raises(MPIError):
        a.isend(Buffer(64), dest=0, tag=1)


def test_bad_range_rejected():
    cluster, a, b = make_pair()
    buf = Buffer(64)
    with pytest.raises(MPIError):
        a.isend(buf, dest=1, tag=1, nbytes=128)
    with pytest.raises(MPIError):
        b.irecv(buf, source=0, tag=1, offset=60, nbytes=8)


def test_offset_send_recv():
    cluster, a, b = make_pair()
    sbuf = Buffer(1024)
    rbuf = Buffer(1024)
    sbuf.fill_pattern(seed=3)

    def sender(proc):
        yield from proc.send(sbuf, dest=1, tag=1, offset=256, nbytes=512)

    def receiver(proc):
        yield from proc.recv(rbuf, source=0, tag=1, offset=128, nbytes=512)

    cluster.spawn(sender(a))
    cluster.spawn(receiver(b))
    cluster.run()
    assert np.array_equal(rbuf.data[128:640], sbuf.data[256:768])


def test_isend_nonblocking_returns_pending():
    cluster, a, b = make_pair()
    req = a.isend(Buffer(1 * KiB, backed=False), dest=1, tag=1)
    assert not req.done


def test_wait_all():
    cluster, a, b = make_pair()
    sbufs = [Buffer(256, backed=False) for _ in range(4)]
    rbufs = [Buffer(256, backed=False) for _ in range(4)]

    def sender(proc):
        reqs = [proc.isend(s, dest=1, tag=i) for i, s in enumerate(sbufs)]
        yield from proc.wait_all(reqs)
        return proc.env.now

    def receiver(proc):
        reqs = [proc.irecv(r, source=0, tag=i) for i, r in enumerate(rbufs)]
        yield from proc.wait_all(reqs)
        return proc.env.now

    s = cluster.spawn(sender(a))
    r = cluster.spawn(receiver(b))
    cluster.run()
    assert s.value > 0 and r.value > 0


def test_bidirectional_traffic():
    cluster, a, b = make_pair()
    a2b_s, a2b_r = Buffer(64 * KiB), Buffer(64 * KiB)
    b2a_s, b2a_r = Buffer(64 * KiB), Buffer(64 * KiB)
    a2b_s.fill_pattern(seed=1)
    b2a_s.fill_pattern(seed=2)

    def prog_a(proc):
        sreq = proc.isend(a2b_s, dest=1, tag=1)
        rreq = proc.irecv(b2a_r, source=1, tag=2)
        yield from proc.wait_all([sreq, rreq])

    def prog_b(proc):
        sreq = proc.isend(b2a_s, dest=0, tag=2)
        rreq = proc.irecv(a2b_r, source=0, tag=1)
        yield from proc.wait_all([sreq, rreq])

    cluster.spawn(prog_a(a))
    cluster.spawn(prog_b(b))
    cluster.run()
    assert np.array_equal(a2b_r.data, a2b_s.data)
    assert np.array_equal(b2a_r.data, b2a_s.data)


def test_multiple_peers():
    cluster = Cluster(n_nodes=4)
    procs = cluster.ranks(4)
    rbufs = {i: Buffer(256) for i in (1, 2, 3)}
    sbufs = {i: Buffer(256) for i in (1, 2, 3)}
    for i, s in sbufs.items():
        s.fill_pattern(seed=i)

    def hub(proc):
        for i in (1, 2, 3):
            yield from proc.send(sbufs[i], dest=i, tag=i)

    def leaf(proc, i):
        yield from proc.recv(rbufs[i], source=0, tag=i)

    cluster.spawn(hub(procs[0]))
    for i in (1, 2, 3):
        cluster.spawn(leaf(procs[i], i))
    cluster.run()
    for i in (1, 2, 3):
        assert np.array_equal(rbufs[i].data, sbufs[i].data)
