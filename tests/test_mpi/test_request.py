"""Tests for request objects: lifecycle, stats, error paths."""

import numpy as np
import pytest

from repro.errors import PartitionError, RequestError
from repro.mem import PartitionedBuffer
from repro.mpi import Cluster
from repro.mpi.request import (
    P2PRequest,
    PartitionedState,
    PrecvRequest,
    PsendRequest,
)


@pytest.fixture
def proc():
    return Cluster(n_nodes=1).add_process()


def test_request_ids_unique(proc):
    buf = PartitionedBuffer(4, 256)
    a = PsendRequest(proc, buf, dest=1, tag=0, module_name="m")
    b = PsendRequest(proc, buf, dest=1, tag=0, module_name="m")
    assert a.request_id != b.request_id


def test_p2p_kind_validated(proc):
    from repro.mem import Buffer

    with pytest.raises(RequestError):
        P2PRequest(proc, "bogus", Buffer(64), 64, 1, 0)


def test_partitioned_initial_state(proc):
    req = PsendRequest(proc, PartitionedBuffer(4, 256), dest=1, tag=0,
                       module_name="m")
    assert req.state is PartitionedState.SETUP
    assert not req.done
    assert req.round == 0
    assert req.total_bytes == 1024


def test_rearm_resets_completion(proc):
    req = PsendRequest(proc, PartitionedBuffer(4, 256), dest=1, tag=0,
                       module_name="m")
    req.state = PartitionedState.INACTIVE
    req.rearm()
    assert req.state is PartitionedState.ACTIVE
    assert req.round == 1
    req.mark_complete()
    assert req.done
    assert req.state is PartitionedState.COMPLETE
    req.rearm()
    assert not req.done
    assert req.round == 2


def test_require_active(proc):
    req = PsendRequest(proc, PartitionedBuffer(4, 256), dest=1, tag=0,
                       module_name="m")
    with pytest.raises(RequestError):
        req.require_active("Pready")
    req.state = PartitionedState.ACTIVE
    req.require_active("Pready")  # no raise


def test_check_partition_bounds(proc):
    req = PsendRequest(proc, PartitionedBuffer(4, 256), dest=1, tag=0,
                       module_name="m")
    req.check_partition(0)
    req.check_partition(3)
    with pytest.raises(PartitionError):
        req.check_partition(4)
    with pytest.raises(PartitionError):
        req.check_partition(-1)


def test_precv_arrival_tracking(proc):
    req = PrecvRequest(proc, PartitionedBuffer(8, 256), source=0, tag=0,
                       module_name="m")
    assert not req.all_arrived
    req.mark_arrived(2, 3)
    assert np.array_equal(req.arrived,
                          [False, False, True, True, True, False, False,
                           False])
    req.mark_arrived(0, 2)
    req.mark_arrived(5, 3)
    assert req.all_arrived
    assert all(t is not None for t in req.arrival_times)


def test_precv_arrival_range_validated(proc):
    req = PrecvRequest(proc, PartitionedBuffer(4, 256), source=0, tag=0,
                       module_name="m")
    with pytest.raises(PartitionError):
        req.mark_arrived(3, 2)
    with pytest.raises(PartitionError):
        req.mark_arrived(0, 0)
    with pytest.raises(PartitionError):
        req.mark_arrived(-1, 1)


def test_round_stats_reset(proc):
    send = PsendRequest(proc, PartitionedBuffer(4, 256), dest=1, tag=0,
                        module_name="m")
    send.record_pready(1)
    assert send.pready_times[1] is not None
    send.reset_round_stats()
    assert send.pready_times == [None] * 4
    recv = PrecvRequest(proc, PartitionedBuffer(4, 256), source=0, tag=0,
                        module_name="m")
    recv.mark_arrived(0, 4)
    recv.reset_round_stats()
    assert not recv.arrived.any()
    assert recv.arrival_times == [None] * 4


def test_completed_at_recorded(proc):
    req = PsendRequest(proc, PartitionedBuffer(4, 256), dest=1, tag=0,
                       module_name="m")
    assert req.completed_at is None
    req.mark_complete()
    assert req.completed_at == proc.env.now
