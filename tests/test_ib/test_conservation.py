"""Conservation and accounting invariants across random traffic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ib import verbs
from repro.ib.constants import ACCESS_LOCAL, ACCESS_REMOTE_WRITE, Opcode
from repro.ib.wr import SGE, RecvWR, SendWR
from repro.mem import Buffer
from repro.sim import Environment
from tests.test_ib.conftest import Pair


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=1 << 20),
                   min_size=1, max_size=12),
)
@settings(max_examples=20, deadline=None)
def test_bytes_sent_equal_bytes_received(sizes):
    """Every byte leaving an egress port lands on the peer's ingress."""
    env = Environment()
    total = sum(sizes)
    pair = Pair(env, bufsize=total, backed=False)
    offset = 0
    for i, size in enumerate(sizes):
        pair.qp1.post_recv(RecvWR(wr_id=i))
        pair.qp0.post_send(SendWR(
            wr_id=i,
            opcode=Opcode.RDMA_WRITE_WITH_IMM,
            sg_list=[SGE(pair.send_mr.addr + offset, size,
                         pair.send_mr.lkey)],
            remote_addr=pair.recv_mr.addr + offset,
            rkey=pair.recv_mr.rkey,
            imm_data=i,
        ))
        offset += size
    env.run()
    nic0 = pair.fabric.nic_at(0)
    nic1 = pair.fabric.nic_at(1)
    assert nic0.bytes_transmitted == total
    assert nic1.ingress.bytes_received == total
    assert nic1.messages_delivered == len(sizes)
    wcs = pair.cq1.poll(64)
    assert sum(wc.byte_len for wc in wcs) == total


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=1 << 18),
                   min_size=1, max_size=8),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=15, deadline=None)
def test_payload_integrity_random_layout(sizes, seed):
    """Random message sizes at random offsets: bytes land intact."""
    env = Environment()
    total = sum(sizes)
    pair = Pair(env, bufsize=total, backed=True)
    pair.send_buf.fill_pattern(seed=seed)
    offset = 0
    for i, size in enumerate(sizes):
        pair.qp1.post_recv(RecvWR(wr_id=i))
        pair.qp0.post_send(SendWR(
            wr_id=i,
            opcode=Opcode.RDMA_WRITE_WITH_IMM,
            sg_list=[SGE(pair.send_mr.addr + offset, size,
                         pair.send_mr.lkey)],
            remote_addr=pair.recv_mr.addr + offset,
            rkey=pair.recv_mr.rkey,
            imm_data=i,
        ))
        offset += size
    env.run()
    assert np.array_equal(pair.recv_buf.data, pair.send_buf.data)


@given(n=st.integers(min_value=1, max_value=16))
@settings(max_examples=10, deadline=None)
def test_completions_conserved(n):
    """One send completion and one recv completion per signaled WR."""
    env = Environment()
    pair = Pair(env, bufsize=4096, backed=False)
    for i in range(n):
        pair.qp1.post_recv(RecvWR(wr_id=i))
        pair.qp0.post_send(SendWR(
            wr_id=i,
            opcode=Opcode.RDMA_WRITE_WITH_IMM,
            sg_list=[SGE(pair.send_mr.addr, 256, pair.send_mr.lkey)],
            remote_addr=pair.recv_mr.addr,
            rkey=pair.recv_mr.rkey,
            imm_data=i,
        ))
    env.run()
    assert len(pair.cq0.poll(64)) == n
    assert len(pair.cq1.poll(64)) == n
    assert pair.cq0.overflows == 0
    assert pair.cq1.overflows == 0
