"""Tests for two-sided SEND/RECV channel semantics and QP error flush."""

import numpy as np
import pytest

from repro.errors import ProtectionError, QPStateError
from repro.ib import verbs
from repro.ib.constants import Opcode, QPState, WCOpcode, WCStatus
from repro.ib.wr import SGE, RecvWR, SendWR
from repro.mem import Buffer
from tests.test_ib.conftest import Pair


def test_send_scatters_into_posted_recv(env):
    pair = Pair(env)
    pair.send_buf.fill_pattern(seed=4)
    pair.qp1.post_recv(RecvWR(
        wr_id=1,
        sg_list=[SGE(pair.recv_mr.addr, 4096, pair.recv_mr.lkey)]))
    pair.qp0.post_send(SendWR(
        wr_id=1, opcode=Opcode.SEND,
        sg_list=[SGE(pair.send_mr.addr, 2048, pair.send_mr.lkey)]))
    env.run()
    assert np.array_equal(pair.recv_buf.data[:2048],
                          pair.send_buf.data[:2048])
    [wc] = pair.cq1.poll(4)
    assert wc.opcode is WCOpcode.RECV
    assert wc.byte_len == 2048
    assert wc.imm_data is None


def test_send_with_imm_carries_immediate(env):
    pair = Pair(env)
    pair.qp1.post_recv(RecvWR(
        wr_id=2,
        sg_list=[SGE(pair.recv_mr.addr, 4096, pair.recv_mr.lkey)]))
    pair.qp0.post_send(SendWR(
        wr_id=2, opcode=Opcode.SEND_WITH_IMM,
        sg_list=[SGE(pair.send_mr.addr, 64, pair.send_mr.lkey)],
        imm_data=0xBEEF))
    env.run()
    [wc] = pair.cq1.poll(4)
    assert wc.imm_data == 0xBEEF


def test_send_scatters_across_multiple_recv_sges(env):
    pair = Pair(env)
    pair.send_buf.fill_pattern(seed=6)
    pair.qp1.post_recv(RecvWR(
        wr_id=3,
        sg_list=[
            SGE(pair.recv_mr.addr, 100, pair.recv_mr.lkey),
            SGE(pair.recv_mr.addr + 1000, 100, pair.recv_mr.lkey),
        ]))
    pair.qp0.post_send(SendWR(
        wr_id=3, opcode=Opcode.SEND,
        sg_list=[SGE(pair.send_mr.addr, 150, pair.send_mr.lkey)]))
    env.run()
    assert np.array_equal(pair.recv_buf.data[:100],
                          pair.send_buf.data[:100])
    assert np.array_equal(pair.recv_buf.data[1000:1050],
                          pair.send_buf.data[100:150])


def test_send_exceeding_recv_capacity_faults(env):
    pair = Pair(env)
    pair.qp1.post_recv(RecvWR(
        wr_id=4,
        sg_list=[SGE(pair.recv_mr.addr, 64, pair.recv_mr.lkey)]))
    pair.qp0.post_send(SendWR(
        wr_id=4, opcode=Opcode.SEND,
        sg_list=[SGE(pair.send_mr.addr, 128, pair.send_mr.lkey)]))
    with pytest.raises(ProtectionError, match="local length"):
        env.run()


def test_send_does_not_consume_rdma_budget(env):
    pair = Pair(env)
    limit = pair.fabric.config.nic.max_outstanding_rdma
    for i in range(limit + 4):
        pair.qp1.post_recv(RecvWR(
            wr_id=i,
            sg_list=[SGE(pair.recv_mr.addr, 64, pair.recv_mr.lkey)]))
        pair.qp0.post_send(SendWR(
            wr_id=i, opcode=Opcode.SEND,
            sg_list=[SGE(pair.send_mr.addr, 64, pair.send_mr.lkey)]))
    env.run()  # no QPOverflowError despite > 16 in flight
    assert len(pair.cq1.poll(64)) == limit + 4


# ---------------------------------------------------------------------------
# QP error / flush
# ---------------------------------------------------------------------------


def test_error_qp_flushes_posted_recvs(env):
    pair = Pair(env)
    for i in range(3):
        pair.qp1.post_recv(RecvWR(wr_id=i))
    pair.qp1.to_error()
    wcs = pair.cq1.poll(8)
    assert len(wcs) == 3
    assert all(wc.status is WCStatus.WR_FLUSH_ERR for wc in wcs)
    assert [wc.wr_id for wc in wcs] == [0, 1, 2]


def test_error_qp_flushes_pending_sends(env):
    pair = Pair(env)
    pair.qp1.post_recv(RecvWR(wr_id=0))
    pair.qp0.post_send(SendWR(
        wr_id=7, opcode=Opcode.RDMA_WRITE_WITH_IMM,
        sg_list=[SGE(pair.send_mr.addr, 64, pair.send_mr.lkey)],
        remote_addr=pair.recv_mr.addr, rkey=pair.recv_mr.rkey,
        imm_data=0))
    pair.qp0.to_error()  # before the engine picks it up
    env.run()
    wcs = pair.cq0.poll(8)
    assert len(wcs) == 1
    assert wcs[0].status is WCStatus.WR_FLUSH_ERR
    assert wcs[0].wr_id == 7
    # Slot returned despite the flush.
    assert pair.qp0.outstanding_rdma == 0


def test_post_send_rejected_on_error_qp(env):
    pair = Pair(env)
    pair.qp0.to_error()
    with pytest.raises(QPStateError):
        pair.qp0.post_send(SendWR(
            wr_id=1, opcode=Opcode.SEND,
            sg_list=[SGE(pair.send_mr.addr, 64, pair.send_mr.lkey)]))


def test_post_recv_rejected_on_error_qp(env):
    pair = Pair(env)
    pair.qp1.to_error()
    with pytest.raises(QPStateError):
        pair.qp1.post_recv(RecvWR(wr_id=1))


def test_error_qp_recoverable_through_reset(env):
    pair = Pair(env)
    pair.qp0.to_error()
    pair.qp0.modify(QPState.RESET)
    pair.qp0.to_init()
    pair.qp0.to_rtr(1, pair.qp1.qp_num)
    pair.qp0.to_rts()
    assert pair.qp0.state is QPState.RTS


def test_inbound_to_error_qp_faults(env):
    pair = Pair(env)
    pair.qp1.post_recv(RecvWR(wr_id=0))
    pair.qp0.post_send(SendWR(
        wr_id=1, opcode=Opcode.RDMA_WRITE_WITH_IMM,
        sg_list=[SGE(pair.send_mr.addr, 64, pair.send_mr.lkey)],
        remote_addr=pair.recv_mr.addr, rkey=pair.recv_mr.rkey,
        imm_data=0))
    pair.qp1.to_error()  # dies while the message is in flight
    with pytest.raises(ProtectionError):
        env.run()
