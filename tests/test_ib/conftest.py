"""Shared fixtures: a two-node fabric with connected QPs."""

import pytest

from repro.config import NIAGARA
from repro.ib import verbs
from repro.ib.constants import ACCESS_LOCAL, ACCESS_REMOTE_WRITE
from repro.ib.fabric import Fabric
from repro.mem import Buffer
from repro.sim import Environment


class Pair:
    """Two connected endpoints with registered send/recv buffers."""

    def __init__(self, env, config=NIAGARA, bufsize=4096, backed=True):
        self.env = env
        self.fabric = Fabric(env, config)
        self.fabric.add_node(0)
        self.fabric.add_node(1)
        self.ctx0 = verbs.ibv_open_device(self.fabric, 0)
        self.ctx1 = verbs.ibv_open_device(self.fabric, 1)
        self.pd0 = verbs.ibv_alloc_pd(self.ctx0)
        self.pd1 = verbs.ibv_alloc_pd(self.ctx1)
        self.cq0 = verbs.ibv_create_cq(self.ctx0)
        self.cq1 = verbs.ibv_create_cq(self.ctx1)
        self.qp0 = verbs.ibv_create_qp(self.ctx0, self.pd0, self.cq0, self.cq0)
        self.qp1 = verbs.ibv_create_qp(self.ctx1, self.pd1, self.cq1, self.cq1)
        verbs.connect_qps(self.qp0, self.qp1)
        self.send_buf = Buffer(bufsize, backed=backed)
        self.recv_buf = Buffer(bufsize, backed=backed)
        self.send_mr = verbs.ibv_reg_mr(self.pd0, self.send_buf, ACCESS_LOCAL)
        self.recv_mr = verbs.ibv_reg_mr(
            self.pd1, self.recv_buf, ACCESS_LOCAL | ACCESS_REMOTE_WRITE)


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def pair(env):
    return Pair(env)
