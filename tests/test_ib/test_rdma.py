"""End-to-end RDMA-write tests: data movement, completions, protection."""

import numpy as np
import pytest

from repro.errors import ProtectionError
from repro.ib import verbs
from repro.ib.constants import ACCESS_LOCAL, Opcode, WCOpcode, WCStatus
from repro.ib.wr import SGE, RecvWR, SendWR
from tests.test_ib.conftest import Pair


def post_write(pair, offset=0, length=256, imm=0xABCD, wr_id=7):
    pair.qp1.post_recv(RecvWR(wr_id=wr_id))
    pair.qp0.post_send(SendWR(
        wr_id=wr_id,
        opcode=Opcode.RDMA_WRITE_WITH_IMM,
        sg_list=[SGE(pair.send_mr.addr + offset, length, pair.send_mr.lkey)],
        remote_addr=pair.recv_mr.addr + offset,
        rkey=pair.recv_mr.rkey,
        imm_data=imm,
    ))


def test_rdma_write_moves_bytes(pair):
    pair.send_buf.fill_pattern(seed=5)
    post_write(pair, offset=0, length=4096)
    pair.env.run()
    assert np.array_equal(pair.recv_buf.data, pair.send_buf.data)


def test_rdma_write_partial_range(pair):
    pair.send_buf.fill_pattern(seed=9)
    post_write(pair, offset=1024, length=512)
    pair.env.run()
    expected = np.zeros(4096, dtype=np.uint8)
    expected[1024:1536] = pair.send_buf.data[1024:1536]
    assert np.array_equal(pair.recv_buf.data, expected)


def test_receiver_gets_imm_and_length(pair):
    post_write(pair, length=128, imm=0xDEADBEEF, wr_id=42)
    pair.env.run()
    wcs = pair.cq1.poll(8)
    assert len(wcs) == 1
    wc = wcs[0]
    assert wc.status is WCStatus.SUCCESS
    assert wc.opcode is WCOpcode.RECV_RDMA_WITH_IMM
    assert wc.imm_data == 0xDEADBEEF
    assert wc.byte_len == 128
    assert wc.wr_id == 42


def test_sender_gets_completion(pair):
    post_write(pair, length=128, wr_id=11)
    pair.env.run()
    wcs = pair.cq0.poll(8)
    assert len(wcs) == 1
    assert wcs[0].opcode is WCOpcode.RDMA_WRITE
    assert wcs[0].wr_id == 11
    assert wcs[0].ok


def test_unsignaled_send_no_sender_completion(pair):
    pair.qp1.post_recv(RecvWR(wr_id=1))
    pair.qp0.post_send(SendWR(
        wr_id=1,
        opcode=Opcode.RDMA_WRITE_WITH_IMM,
        sg_list=[SGE(pair.send_mr.addr, 64, pair.send_mr.lkey)],
        remote_addr=pair.recv_mr.addr,
        rkey=pair.recv_mr.rkey,
        imm_data=0,
        signaled=False,
    ))
    pair.env.run()
    assert pair.cq0.poll(8) == []
    assert len(pair.cq1.poll(8)) == 1


def test_plain_rdma_write_consumes_no_recv(pair):
    """RDMA_WRITE (no imm) must not need or consume an RQ entry."""
    pair.send_buf.fill_pattern(seed=2)
    pair.qp0.post_send(SendWR(
        wr_id=1,
        opcode=Opcode.RDMA_WRITE,
        sg_list=[SGE(pair.send_mr.addr, 256, pair.send_mr.lkey)],
        remote_addr=pair.recv_mr.addr,
        rkey=pair.recv_mr.rkey,
    ))
    pair.env.run()
    assert np.array_equal(pair.recv_buf.data[:256], pair.send_buf.data[:256])
    assert pair.cq1.poll(8) == []  # silent at receiver


def test_gather_list_concatenates(pair):
    """Multi-SGE send gathers non-contiguous local ranges."""
    pair.send_buf.fill_pattern(seed=3)
    pair.qp1.post_recv(RecvWR(wr_id=1))
    pair.qp0.post_send(SendWR(
        wr_id=1,
        opcode=Opcode.RDMA_WRITE_WITH_IMM,
        sg_list=[
            SGE(pair.send_mr.addr + 0, 64, pair.send_mr.lkey),
            SGE(pair.send_mr.addr + 1024, 64, pair.send_mr.lkey),
        ],
        remote_addr=pair.recv_mr.addr,
        rkey=pair.recv_mr.rkey,
        imm_data=0,
    ))
    pair.env.run()
    expected = np.concatenate([
        pair.send_buf.data[0:64], pair.send_buf.data[1024:1088]])
    assert np.array_equal(pair.recv_buf.data[:128], expected)


def test_bad_lkey_rejected_at_post(pair):
    with pytest.raises(ProtectionError):
        pair.qp0.post_send(SendWR(
            wr_id=1,
            opcode=Opcode.RDMA_WRITE,
            sg_list=[SGE(pair.send_mr.addr, 64, 0xBAD)],
            remote_addr=pair.recv_mr.addr,
            rkey=pair.recv_mr.rkey,
        ))


def test_local_range_outside_mr_rejected(pair):
    with pytest.raises(ProtectionError):
        pair.qp0.post_send(SendWR(
            wr_id=1,
            opcode=Opcode.RDMA_WRITE,
            sg_list=[SGE(pair.send_mr.addr + 4000, 1024, pair.send_mr.lkey)],
            remote_addr=pair.recv_mr.addr,
            rkey=pair.recv_mr.rkey,
        ))


def test_remote_write_without_permission_faults(env):
    p = Pair(env)
    # recv buffer registered WITHOUT remote write access
    from repro.mem import Buffer

    plain = Buffer(4096)
    mr = verbs.ibv_reg_mr(p.pd1, plain, ACCESS_LOCAL)
    p.qp1.post_recv(RecvWR(wr_id=1))
    p.qp0.post_send(SendWR(
        wr_id=1,
        opcode=Opcode.RDMA_WRITE_WITH_IMM,
        sg_list=[SGE(p.send_mr.addr, 64, p.send_mr.lkey)],
        remote_addr=mr.addr,
        rkey=mr.rkey,
        imm_data=0,
    ))
    with pytest.raises(ProtectionError):
        env.run()


def test_rnr_when_no_recv_posted(pair):
    """WRITE_WITH_IMM with an empty RQ is a receiver-not-ready fault."""
    from repro.errors import QPStateError

    pair.qp0.post_send(SendWR(
        wr_id=1,
        opcode=Opcode.RDMA_WRITE_WITH_IMM,
        sg_list=[SGE(pair.send_mr.addr, 64, pair.send_mr.lkey)],
        remote_addr=pair.recv_mr.addr,
        rkey=pair.recv_mr.rkey,
        imm_data=0,
    ))
    with pytest.raises(QPStateError, match="receiver-not-ready"):
        pair.env.run()


def test_per_qp_ordering_preserved(pair):
    """Messages on one QP are delivered in post order."""
    order = []
    for i in range(8):
        pair.qp1.post_recv(RecvWR(wr_id=i))
    for i in range(8):
        pair.qp0.post_send(SendWR(
            wr_id=i,
            opcode=Opcode.RDMA_WRITE_WITH_IMM,
            sg_list=[SGE(pair.send_mr.addr, 64, pair.send_mr.lkey)],
            remote_addr=pair.recv_mr.addr,
            rkey=pair.recv_mr.rkey,
            imm_data=i,
        ))
    pair.env.run()
    wcs = pair.cq1.poll(16)
    assert [wc.imm_data for wc in wcs] == list(range(8))
    assert [wc.wr_id for wc in wcs] == list(range(8))


def test_zero_length_write_with_imm(pair):
    """Pure-signal writes (0 bytes + immediate) work."""
    pair.qp1.post_recv(RecvWR(wr_id=5))
    pair.qp0.post_send(SendWR(
        wr_id=5,
        opcode=Opcode.RDMA_WRITE_WITH_IMM,
        sg_list=[SGE(pair.send_mr.addr, 0, pair.send_mr.lkey)],
        remote_addr=pair.recv_mr.addr,
        rkey=pair.recv_mr.rkey,
        imm_data=77,
    ))
    pair.env.run()
    wcs = pair.cq1.poll(4)
    assert len(wcs) == 1
    assert wcs[0].imm_data == 77
    assert wcs[0].byte_len == 0


def test_phantom_buffers_time_without_data(env):
    """Unbacked buffers produce identical timing, no data movement."""
    p = Pair(env, backed=False)
    p.qp1.post_recv(RecvWR(wr_id=1))
    p.qp0.post_send(SendWR(
        wr_id=1,
        opcode=Opcode.RDMA_WRITE_WITH_IMM,
        sg_list=[SGE(p.send_mr.addr, 4096, p.send_mr.lkey)],
        remote_addr=p.recv_mr.addr,
        rkey=p.recv_mr.rkey,
        imm_data=1,
    ))
    env.run()
    wcs = p.cq1.poll(4)
    assert len(wcs) == 1
    assert wcs[0].byte_len == 4096


def test_deregistered_mr_rejected(pair):
    verbs.ibv_dereg_mr(pair.send_mr)
    with pytest.raises(ProtectionError):
        pair.qp0.post_send(SendWR(
            wr_id=1,
            opcode=Opcode.RDMA_WRITE,
            sg_list=[SGE(pair.send_mr.addr, 64, pair.send_mr.lkey)],
            remote_addr=pair.recv_mr.addr,
            rkey=pair.recv_mr.rkey,
        ))
