"""QP state machine and posting-rule tests."""

import pytest

from repro.errors import QPOverflowError, QPStateError
from repro.ib import verbs
from repro.ib.constants import Opcode, QPState
from repro.ib.wr import SGE, RecvWR, SendWR
from tests.test_ib.conftest import Pair


def make_write(pair, wr_id=1, length=64, imm=0):
    return SendWR(
        wr_id=wr_id,
        opcode=Opcode.RDMA_WRITE_WITH_IMM,
        sg_list=[SGE(pair.send_mr.addr, length, pair.send_mr.lkey)],
        remote_addr=pair.recv_mr.addr,
        rkey=pair.recv_mr.rkey,
        imm_data=imm,
    )


def test_fresh_qp_is_reset(env):
    p = Pair(env)
    # connect_qps already ran; create an unconnected QP to inspect RESET
    qp = verbs.ibv_create_qp(p.ctx0, p.pd0, p.cq0, p.cq0)
    assert qp.state is QPState.RESET


def test_connect_brings_both_to_rts(pair):
    assert pair.qp0.state is QPState.RTS
    assert pair.qp1.state is QPState.RTS
    assert pair.qp0.dest_node == 1
    assert pair.qp0.dest_qp_num == pair.qp1.qp_num


def test_illegal_transition_rejected(env):
    p = Pair(env)
    qp = verbs.ibv_create_qp(p.ctx0, p.pd0, p.cq0, p.cq0)
    with pytest.raises(QPStateError):
        qp.modify(QPState.RTS)  # RESET -> RTS skips INIT/RTR


def test_post_send_requires_rts(env):
    p = Pair(env)
    qp = verbs.ibv_create_qp(p.ctx0, p.pd0, p.cq0, p.cq0)
    wr = SendWR(
        wr_id=1,
        opcode=Opcode.RDMA_WRITE_WITH_IMM,
        sg_list=[SGE(p.send_mr.addr, 8, p.send_mr.lkey)],
        remote_addr=p.recv_mr.addr,
        rkey=p.recv_mr.rkey,
        imm_data=0,
    )
    with pytest.raises(QPStateError):
        qp.post_send(wr)


def test_post_recv_allowed_from_init(env):
    p = Pair(env)
    qp = verbs.ibv_create_qp(p.ctx0, p.pd0, p.cq0, p.cq0)
    qp.to_init()
    qp.post_recv(RecvWR(wr_id=1))
    assert qp.posted_recvs == 1


def test_post_recv_rejected_in_reset(env):
    p = Pair(env)
    qp = verbs.ibv_create_qp(p.ctx0, p.pd0, p.cq0, p.cq0)
    with pytest.raises(QPStateError):
        qp.post_recv(RecvWR(wr_id=1))


def test_outstanding_rdma_limit_enforced(pair):
    """The ConnectX-5 limit of 16 concurrent RDMA WRs per QP."""
    limit = pair.fabric.config.nic.max_outstanding_rdma
    assert limit == 16
    for i in range(limit):
        pair.qp1.post_recv(RecvWR(wr_id=i))
        pair.qp0.post_send(make_write(pair, wr_id=i))
    with pytest.raises(QPOverflowError):
        pair.qp0.post_send(make_write(pair, wr_id=99))


def test_outstanding_slots_freed_after_ack(pair):
    limit = pair.fabric.config.nic.max_outstanding_rdma
    for i in range(limit):
        pair.qp1.post_recv(RecvWR(wr_id=i))
        pair.qp0.post_send(make_write(pair, wr_id=i))
    pair.env.run()
    assert pair.qp0.outstanding_rdma == 0
    # capacity restored
    pair.qp1.post_recv(RecvWR(wr_id=100))
    pair.qp0.post_send(make_write(pair, wr_id=100))
    pair.env.run()


def test_send_queue_depth_limit(env):
    p = Pair(env)
    qp = verbs.ibv_create_qp(p.ctx0, p.pd0, p.cq0, p.cq0, max_send_wr=2)
    qp2 = verbs.ibv_create_qp(p.ctx1, p.pd1, p.cq1, p.cq1)
    verbs.connect_qps(qp, qp2)
    wr = SendWR(
        wr_id=1,
        opcode=Opcode.RDMA_WRITE,
        sg_list=[SGE(p.send_mr.addr, 8, p.send_mr.lkey)],
        remote_addr=p.recv_mr.addr,
        rkey=p.recv_mr.rkey,
    )
    qp.post_send(wr)
    qp.post_send(wr)
    # Third post exceeds SQ depth before the engine drains anything.
    with pytest.raises(QPOverflowError):
        qp.post_send(wr)


def test_recv_queue_depth_limit(env):
    p = Pair(env)
    qp = verbs.ibv_create_qp(p.ctx0, p.pd0, p.cq0, p.cq0, max_recv_wr=2)
    qp.to_init()
    qp.post_recv(RecvWR(wr_id=1))
    qp.post_recv(RecvWR(wr_id=2))
    with pytest.raises(QPOverflowError):
        qp.post_recv(RecvWR(wr_id=3))


def test_consume_recv_empty_raises(pair):
    with pytest.raises(QPStateError, match="receiver-not-ready"):
        pair.qp1.consume_recv()


def test_imm_required_for_with_imm_opcode(pair):
    with pytest.raises(ValueError):
        SendWR(
            wr_id=1,
            opcode=Opcode.RDMA_WRITE_WITH_IMM,
            sg_list=[SGE(pair.send_mr.addr, 8, pair.send_mr.lkey)],
            remote_addr=pair.recv_mr.addr,
            rkey=pair.recv_mr.rkey,
        )


def test_imm_must_fit_be32(pair):
    with pytest.raises(ValueError):
        SendWR(
            wr_id=1,
            opcode=Opcode.RDMA_WRITE_WITH_IMM,
            sg_list=[SGE(pair.send_mr.addr, 8, pair.send_mr.lkey)],
            remote_addr=pair.recv_mr.addr,
            rkey=pair.recv_mr.rkey,
            imm_data=2**32,
        )


def test_empty_sg_list_rejected():
    with pytest.raises(ValueError):
        SendWR(wr_id=1, opcode=Opcode.RDMA_WRITE, sg_list=[])


def test_qp_numbers_unique(pair):
    qps = [verbs.ibv_create_qp(pair.ctx0, pair.pd0, pair.cq0, pair.cq0)
           for _ in range(10)]
    nums = [qp.qp_num for qp in qps]
    assert len(set(nums)) == 10
