"""Tests for first-class RDMA READ (the rendezvous-get substrate)."""

import numpy as np
import pytest

from repro.config import NIAGARA
from repro.errors import ProtectionError, QPOverflowError
from repro.ib import verbs
from repro.ib.constants import (
    ACCESS_LOCAL,
    ACCESS_REMOTE_READ,
    Opcode,
    WCOpcode,
    WCStatus,
)
from repro.ib.wr import SGE, SendWR
from repro.mem import Buffer
from repro.sim import Environment
from repro.units import KiB, MiB
from tests.test_ib.conftest import Pair


def make_read_pair(env, nbytes, backed=True):
    """Node 1 reads from node 0: requester QP on node 1."""
    pair = Pair(env, bufsize=max(nbytes, 4096), backed=backed)
    src_buf = Buffer(nbytes, backed=backed)
    dst_buf = Buffer(nbytes, backed=backed)
    if backed:
        src_buf.fill_pattern(seed=13)
    src_mr = verbs.ibv_reg_mr(pair.pd0, src_buf,
                              ACCESS_LOCAL | ACCESS_REMOTE_READ)
    dst_mr = verbs.ibv_reg_mr(pair.pd1, dst_buf, ACCESS_LOCAL)
    return pair, src_buf, dst_buf, src_mr, dst_mr


def post_read(pair, src_mr, dst_mr, nbytes, wr_id=1):
    pair.qp1.post_send(SendWR(
        wr_id=wr_id,
        opcode=Opcode.RDMA_READ,
        sg_list=[SGE(dst_mr.addr, nbytes, dst_mr.lkey)],
        remote_addr=src_mr.addr,
        rkey=src_mr.rkey,
    ))


def test_read_moves_bytes(env):
    pair, src, dst, src_mr, dst_mr = make_read_pair(env, 64 * KiB)
    post_read(pair, src_mr, dst_mr, 64 * KiB)
    env.run()
    assert np.array_equal(dst.data, src.data)


def test_read_completion_on_requester(env):
    pair, src, dst, src_mr, dst_mr = make_read_pair(env, 4 * KiB)
    post_read(pair, src_mr, dst_mr, 4 * KiB, wr_id=9)
    env.run()
    wcs = pair.cq1.poll(4)
    assert len(wcs) == 1
    assert wcs[0].opcode is WCOpcode.RDMA_READ
    assert wcs[0].status is WCStatus.SUCCESS
    assert wcs[0].wr_id == 9
    assert wcs[0].byte_len == 4 * KiB
    # No completion and no RQ consumption at the responder.
    assert pair.cq0.poll(4) == []


def test_read_requires_remote_read_access(env):
    pair = Pair(env)
    plain = Buffer(4096)
    src_mr = verbs.ibv_reg_mr(pair.pd0, plain, ACCESS_LOCAL)
    dst = Buffer(4096)
    dst_mr = verbs.ibv_reg_mr(pair.pd1, dst, ACCESS_LOCAL)
    pair.qp1.post_send(SendWR(
        wr_id=1, opcode=Opcode.RDMA_READ,
        sg_list=[SGE(dst_mr.addr, 4096, dst_mr.lkey)],
        remote_addr=src_mr.addr, rkey=src_mr.rkey))
    with pytest.raises(ProtectionError, match="remote read"):
        env.run()


def test_read_counts_toward_outstanding_limit(env):
    pair, src, dst, src_mr, dst_mr = make_read_pair(env, 4 * KiB,
                                                    backed=False)
    limit = NIAGARA.nic.max_outstanding_rdma
    for i in range(limit):
        post_read(pair, src_mr, dst_mr, 1 * KiB, wr_id=i)
    with pytest.raises(QPOverflowError):
        post_read(pair, src_mr, dst_mr, 1 * KiB, wr_id=99)
    env.run()
    assert pair.qp1.outstanding_rdma == 0


def test_read_timing_includes_round_trip(env):
    """A read takes at least a full round trip plus wire time."""
    pair, src, dst, src_mr, dst_mr = make_read_pair(env, 1 * MiB,
                                                    backed=False)
    post_read(pair, src_mr, dst_mr, 1 * MiB)
    env.run()
    [wc] = pair.cq1.poll(4)
    wire = 1 * MiB / NIAGARA.nic.line_rate
    rtt = 2 * NIAGARA.link.latency
    assert wc.completed_at > wire + rtt * 0.9


def test_read_bandwidth_bounded_by_responder_qp(env):
    """A single read streams at most at the responder QP's rate."""
    pair, src, dst, src_mr, dst_mr = make_read_pair(env, 16 * MiB,
                                                    backed=False)
    post_read(pair, src_mr, dst_mr, 16 * MiB)
    env.run()
    [wc] = pair.cq1.poll(4)
    nominal = 16 * MiB / NIAGARA.nic.qp_rate
    assert wc.completed_at == pytest.approx(nominal, rel=0.2)


def test_read_scatter_into_multiple_sges(env):
    pair, src, dst, src_mr, dst_mr = make_read_pair(env, 8 * KiB)
    pair.qp1.post_send(SendWR(
        wr_id=1, opcode=Opcode.RDMA_READ,
        sg_list=[
            SGE(dst_mr.addr, 4 * KiB, dst_mr.lkey),
            SGE(dst_mr.addr + 4 * KiB, 4 * KiB, dst_mr.lkey),
        ],
        remote_addr=src_mr.addr, rkey=src_mr.rkey))
    env.run()
    assert np.array_equal(dst.data, src.data)


def test_loopback_read(env):
    from repro.ib.fabric import Fabric

    fabric = Fabric(env)
    fabric.add_node(0)
    ctx = verbs.ibv_open_device(fabric, 0)
    pd = verbs.ibv_alloc_pd(ctx)
    cq = verbs.ibv_create_cq(ctx)
    qa = verbs.ibv_create_qp(ctx, pd, cq, cq)
    qb = verbs.ibv_create_qp(ctx, pd, cq, cq)
    verbs.connect_qps(qa, qb)
    src, dst = Buffer(4 * KiB), Buffer(4 * KiB)
    src.fill_pattern(seed=2)
    src_mr = verbs.ibv_reg_mr(pd, src, ACCESS_LOCAL | ACCESS_REMOTE_READ)
    dst_mr = verbs.ibv_reg_mr(pd, dst, ACCESS_LOCAL)
    qa.post_send(SendWR(
        wr_id=1, opcode=Opcode.RDMA_READ,
        sg_list=[SGE(dst_mr.addr, 4 * KiB, dst_mr.lkey)],
        remote_addr=src_mr.addr, rkey=src_mr.rkey))
    env.run()
    assert np.array_equal(dst.data, src.data)
    [wc] = cq.poll(4)
    assert wc.completed_at < 2e-6
