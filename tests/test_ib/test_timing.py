"""Timing-model tests: rates, latency, QP concurrency, contention."""

import pytest

from repro.config import NIAGARA
from repro.ib import verbs
from repro.ib.constants import ACCESS_LOCAL, ACCESS_REMOTE_WRITE, Opcode
from repro.ib.wr import SGE, RecvWR, SendWR
from repro.mem import Buffer
from repro.sim import Environment
from repro.units import MiB, KiB
from tests.test_ib.conftest import Pair


def completion_time(env, pair, nbytes):
    """Virtual time for one RDMA write of nbytes to complete at receiver."""
    pair.qp1.post_recv(RecvWR(wr_id=1))
    pair.qp0.post_send(SendWR(
        wr_id=1,
        opcode=Opcode.RDMA_WRITE_WITH_IMM,
        sg_list=[SGE(pair.send_mr.addr, nbytes, pair.send_mr.lkey)],
        remote_addr=pair.recv_mr.addr,
        rkey=pair.recv_mr.rkey,
        imm_data=0,
    ))
    env.run()
    wcs = pair.cq1.poll(4)
    assert len(wcs) == 1
    return wcs[0].completed_at


def test_small_message_latency_about_one_microsecond(env):
    pair = Pair(env, bufsize=4096, backed=False)
    t = completion_time(env, pair, 8)
    # t_wqe + prop latency + t_cqe + packet cost: sub-2us for 8 bytes
    assert 0.5e-6 < t < 2.5e-6


def test_large_message_limited_by_qp_rate(env):
    """A single QP tops out at qp_rate, below line rate (Fig. 7 driver)."""
    pair = Pair(env, bufsize=16 * MiB, backed=False)
    t = completion_time(env, pair, 16 * MiB)
    nominal = 16 * MiB / NIAGARA.nic.qp_rate
    assert t == pytest.approx(nominal, rel=0.15)


def test_multiple_qps_reach_line_rate(env):
    """Striping one transfer across many QPs approaches line rate."""
    fabric_pair = Pair(env, bufsize=16 * MiB, backed=False)
    n_qps = 8
    total = 16 * MiB
    share = total // n_qps
    qps0, qps1 = [], []
    for _ in range(n_qps):
        qa = verbs.ibv_create_qp(fabric_pair.ctx0, fabric_pair.pd0,
                                 fabric_pair.cq0, fabric_pair.cq0)
        qb = verbs.ibv_create_qp(fabric_pair.ctx1, fabric_pair.pd1,
                                 fabric_pair.cq1, fabric_pair.cq1)
        verbs.connect_qps(qa, qb)
        qps0.append(qa)
        qps1.append(qb)
    for i, (qa, qb) in enumerate(zip(qps0, qps1)):
        qb.post_recv(RecvWR(wr_id=i))
        qa.post_send(SendWR(
            wr_id=i,
            opcode=Opcode.RDMA_WRITE_WITH_IMM,
            sg_list=[SGE(fabric_pair.send_mr.addr + i * share, share,
                         fabric_pair.send_mr.lkey)],
            remote_addr=fabric_pair.recv_mr.addr + i * share,
            rkey=fabric_pair.recv_mr.rkey,
            imm_data=i,
        ))
    env.run()
    wcs = fabric_pair.cq1.poll(64)
    assert len(wcs) == n_qps
    t_striped = max(wc.completed_at for wc in wcs)
    line_nominal = total / NIAGARA.nic.line_rate
    qp_nominal = total / NIAGARA.nic.qp_rate
    # striped time should be near the line-rate bound, clearly better
    # than what a single QP could do
    assert t_striped < 0.95 * qp_nominal
    assert t_striped > 0.95 * line_nominal


def test_wire_is_shared_between_qps(env):
    """Two QPs pushing concurrently split the line rate."""
    pair = Pair(env, bufsize=32 * MiB, backed=False)
    qa = verbs.ibv_create_qp(pair.ctx0, pair.pd0, pair.cq0, pair.cq0)
    qb = verbs.ibv_create_qp(pair.ctx1, pair.pd1, pair.cq1, pair.cq1)
    verbs.connect_qps(qa, qb)
    half = 16 * MiB
    for i, qp in enumerate((pair.qp0, qa)):
        qb_side = pair.qp1 if i == 0 else qb
        qb_side.post_recv(RecvWR(wr_id=i))
        qp.post_send(SendWR(
            wr_id=i,
            opcode=Opcode.RDMA_WRITE_WITH_IMM,
            sg_list=[SGE(pair.send_mr.addr + i * half, half, pair.send_mr.lkey)],
            remote_addr=pair.recv_mr.addr + i * half,
            rkey=pair.recv_mr.rkey,
            imm_data=i,
        ))
    env.run()
    wcs = pair.cq1.poll(8)
    t_both = max(wc.completed_at for wc in wcs)
    # 32 MiB total through one wire: bounded below by line rate
    assert t_both >= 32 * MiB / NIAGARA.nic.line_rate * 0.95


def test_latency_override(env):
    pair = Pair(env, backed=False)
    t_near = completion_time(env, pair, 8)
    env2 = Environment()
    pair2 = Pair(env2, backed=False)
    pair2.fabric.set_latency(0, 1, 50e-6)
    t_far = completion_time(env2, pair2, 8)
    assert t_far > t_near + 40e-6


def test_loopback_faster_than_wire(env):
    """Same-node transfers skip the wire."""
    fabric = Fabric_single = None
    from repro.ib.fabric import Fabric

    fabric = Fabric(env)
    fabric.add_node(0)
    ctx = verbs.ibv_open_device(fabric, 0)
    pd = verbs.ibv_alloc_pd(ctx)
    cq = verbs.ibv_create_cq(ctx)
    qa = verbs.ibv_create_qp(ctx, pd, cq, cq)
    qb = verbs.ibv_create_qp(ctx, pd, cq, cq)
    verbs.connect_qps(qa, qb)
    sbuf, rbuf = Buffer(4 * KiB), Buffer(4 * KiB)
    smr = verbs.ibv_reg_mr(pd, sbuf, ACCESS_LOCAL)
    rmr = verbs.ibv_reg_mr(pd, rbuf, ACCESS_LOCAL | ACCESS_REMOTE_WRITE)
    sbuf.fill_pattern(seed=1)
    qb.post_recv(RecvWR(wr_id=1))
    qa.post_send(SendWR(
        wr_id=1,
        opcode=Opcode.RDMA_WRITE_WITH_IMM,
        sg_list=[SGE(smr.addr, 4 * KiB, smr.lkey)],
        remote_addr=rmr.addr,
        rkey=rmr.rkey,
        imm_data=0,
    ))
    env.run()
    wcs = cq.poll(8)
    recv_wcs = [wc for wc in wcs if wc.imm_data is not None]
    assert len(recv_wcs) == 1
    assert recv_wcs[0].completed_at < 2e-6
    import numpy as np

    assert np.array_equal(rbuf.data, sbuf.data)


def test_ingress_contention_serializes(env):
    """Two senders to one receiver share its ingress port."""
    from repro.ib.fabric import Fabric

    fabric = Fabric(env)
    for n in range(3):
        fabric.add_node(n)
    ctxs = [verbs.ibv_open_device(fabric, n) for n in range(3)]
    pds = [verbs.ibv_alloc_pd(c) for c in ctxs]
    cqs = [verbs.ibv_create_cq(c) for c in ctxs]
    size = 8 * MiB
    rbuf = Buffer(2 * size, backed=False)
    rmr = verbs.ibv_reg_mr(pds[2], rbuf, ACCESS_LOCAL | ACCESS_REMOTE_WRITE)
    for sender in (0, 1):
        sbuf = Buffer(size, backed=False)
        smr = verbs.ibv_reg_mr(pds[sender], sbuf, ACCESS_LOCAL)
        qs = verbs.ibv_create_qp(ctxs[sender], pds[sender], cqs[sender], cqs[sender])
        qr = verbs.ibv_create_qp(ctxs[2], pds[2], cqs[2], cqs[2])
        verbs.connect_qps(qs, qr)
        qr.post_recv(RecvWR(wr_id=sender))
        qs.post_send(SendWR(
            wr_id=sender,
            opcode=Opcode.RDMA_WRITE_WITH_IMM,
            sg_list=[SGE(smr.addr, size, smr.lkey)],
            remote_addr=rmr.addr + sender * size,
            rkey=rmr.rkey,
            imm_data=sender,
        ))
    env.run()
    wcs = cqs[2].poll(8)
    assert len(wcs) == 2
    t_done = max(wc.completed_at for wc in wcs)
    # 16 MiB into one ingress port: at least line-rate serialization
    assert t_done >= 2 * size / NIAGARA.nic.line_rate * 0.95


def test_nic_statistics(env):
    pair = Pair(env, bufsize=1 * MiB, backed=False)
    completion_time(env, pair, 1 * MiB)
    nic0 = pair.fabric.nic_at(0)
    nic1 = pair.fabric.nic_at(1)
    assert nic0.wqes_processed == 1
    assert nic0.bytes_transmitted == 1 * MiB
    assert nic1.messages_delivered == 1
