"""Tests for fabric topologies."""

import pytest

from repro.errors import ConfigError
from repro.ib.fabric import Fabric
from repro.ib.topology import (
    DragonflyPlus,
    NIAGARA_TOPOLOGY,
    RoutedDragonflyPlus,
    UniformTopology,
)
from repro.sim import Environment
from repro.units import us


def test_uniform_topology():
    topo = UniformTopology(pair_latency=us(1))
    assert topo.latency(0, 99) == us(1)
    with pytest.raises(ConfigError):
        UniformTopology(pair_latency=-1)


def test_dragonfly_tiers():
    topo = DragonflyPlus(nodes_per_leaf=4, leaves_per_group=2,
                         same_leaf_latency=us(0.3),
                         intra_group_latency=us(0.6),
                         inter_group_latency=us(1.0))
    # nodes 0-3 leaf 0, 4-7 leaf 1 (group 0); 8-11 leaf 2 (group 1)
    assert topo.latency(0, 3) == us(0.3)     # same leaf
    assert topo.latency(0, 4) == us(0.6)     # same group, other leaf
    assert topo.latency(0, 8) == us(1.0)     # other group
    assert topo.latency(8, 0) == us(1.0)     # symmetric


def test_dragonfly_geometry_helpers():
    topo = DragonflyPlus(nodes_per_leaf=4, leaves_per_group=2)
    assert topo.nodes_per_group == 8
    assert topo.leaf_of(5) == 1
    assert topo.group_of(9) == 1


def test_dragonfly_validation():
    with pytest.raises(ConfigError):
        DragonflyPlus(nodes_per_leaf=0)
    with pytest.raises(ConfigError):
        DragonflyPlus(same_leaf_latency=us(2), intra_group_latency=us(1))


def test_fabric_uses_topology():
    env = Environment()
    topo = DragonflyPlus(nodes_per_leaf=2, leaves_per_group=2,
                         same_leaf_latency=us(0.3),
                         intra_group_latency=us(0.6),
                         inter_group_latency=us(1.0))
    fabric = Fabric(env, topology=topo)
    for n in range(6):
        fabric.add_node(n)
    assert fabric.latency(0, 1) == us(0.3)
    assert fabric.latency(0, 2) == us(0.6)
    assert fabric.latency(0, 4) == us(1.0)
    # Loopback and explicit overrides still win.
    assert fabric.latency(3, 3) == fabric.config.link.loopback_latency
    fabric.set_latency(0, 4, us(5))
    assert fabric.latency(0, 4) == us(5)


def test_topology_changes_end_to_end_latency():
    """Same transfer, farther nodes, later arrival."""
    from repro.mem import Buffer
    from repro.mpi import Cluster

    def transfer_time(src, dst):
        topo = DragonflyPlus(nodes_per_leaf=2, leaves_per_group=2,
                             same_leaf_latency=us(0.3),
                             intra_group_latency=us(0.6),
                             inter_group_latency=us(1.5))
        cluster = Cluster(n_nodes=8, topology=topo)
        procs = [cluster.add_process(node_id=n) for n in (src, dst)]
        sbuf, rbuf = Buffer(512, backed=False), Buffer(512, backed=False)
        done = {}

        def sender(proc):
            yield from proc.send(sbuf, dest=1, tag=1)

        def receiver(proc):
            yield from proc.recv(rbuf, source=0, tag=1)
            done["t"] = proc.env.now

        cluster.spawn(sender(procs[0]))
        cluster.spawn(receiver(procs[1]))
        cluster.run()
        return done["t"]

    assert transfer_time(0, 1) < transfer_time(0, 7)


def test_niagara_topology_defaults():
    assert NIAGARA_TOPOLOGY.nodes_per_group == 192
    assert "dragonfly" in NIAGARA_TOPOLOGY.describe()


def test_describe_names_geometry():
    assert UniformTopology(pair_latency=us(1)).describe() == "uniform(1e-06)"
    flat = DragonflyPlus(nodes_per_leaf=4, leaves_per_group=3)
    assert flat.describe() == \
        "dragonfly+(nodes_per_leaf=4, leaves_per_group=3, groups=*)"
    routed = RoutedDragonflyPlus(nodes_per_leaf=2, leaves_per_group=2,
                                 groups=3)
    assert routed.describe() == \
        "dragonfly+routed(nodes_per_leaf=2, leaves_per_group=2, groups=3)"


def test_latency_only_topologies_do_not_route():
    assert UniformTopology().routed is False
    assert UniformTopology().route(0, 1) is None
    assert DragonflyPlus().route(0, 999) is None


def test_routed_dragonfly_routes():
    topo = RoutedDragonflyPlus(nodes_per_leaf=2, leaves_per_group=2,
                               groups=2)
    assert topo.routed is True
    assert topo.n_nodes == 8
    assert topo.route(0, 1) == ()          # same leaf: endpoint NICs only
    assert topo.route(0, 2) == (("leaf-up", 0), ("leaf-down", 1))
    assert topo.route(0, 4) == (("leaf-up", 0), ("global", 0, 1),
                                ("leaf-down", 2))
    assert topo.route(4, 0) == (("leaf-up", 2), ("global", 1, 0),
                                ("leaf-down", 0))
    # Every hop of every route names a link the fabric builds.
    keys = set(topo.link_keys())
    assert len(keys) == 10
    for src in range(8):
        for dst in range(8):
            assert set(topo.route(src, dst)) <= keys


def test_routed_dragonfly_validation():
    topo = RoutedDragonflyPlus(nodes_per_leaf=2, leaves_per_group=2,
                               groups=2)
    with pytest.raises(ConfigError):
        topo.check_node(8)
    with pytest.raises(ConfigError):
        topo.route(0, 8)
    with pytest.raises(ConfigError):
        RoutedDragonflyPlus(groups=0)
    with pytest.raises(ConfigError):
        RoutedDragonflyPlus(arbitration=-1.0)
