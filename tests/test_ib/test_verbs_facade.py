"""Tests for the functional ibv_* facade."""

import numpy as np
import pytest

from repro.ib import verbs
from repro.ib.constants import ACCESS_LOCAL, ACCESS_REMOTE_WRITE, Opcode, QPState
from repro.ib.fabric import Fabric
from repro.ib.wr import SGE, RecvWR, SendWR
from repro.mem import Buffer
from repro.sim import Environment


@pytest.fixture
def fabric():
    env = Environment()
    fabric = Fabric(env)
    fabric.add_node(0)
    fabric.add_node(1)
    return fabric


def test_open_device_binds_node(fabric):
    ctx = verbs.ibv_open_device(fabric, 1)
    assert ctx.node_id == 1
    assert ctx.nic is fabric.nic_at(1)


def test_alloc_pd_registers_with_context(fabric):
    ctx = verbs.ibv_open_device(fabric, 0)
    pd = verbs.ibv_alloc_pd(ctx)
    assert pd in ctx.pds


def test_reg_and_dereg_mr(fabric):
    ctx = verbs.ibv_open_device(fabric, 0)
    pd = verbs.ibv_alloc_pd(ctx)
    buf = Buffer(1024)
    mr = verbs.ibv_reg_mr(pd, buf, ACCESS_LOCAL)
    assert mr.valid
    assert mr.length == 1024
    assert pd.find_mr_by_lkey(mr.lkey) is mr
    verbs.ibv_dereg_mr(mr)
    assert not mr.valid


def test_create_cq_capacity(fabric):
    ctx = verbs.ibv_open_device(fabric, 0)
    cq = verbs.ibv_create_cq(ctx, capacity=32)
    assert cq.capacity == 32
    assert cq in ctx.cqs


def test_connect_qps_full_transition(fabric):
    ctx0 = verbs.ibv_open_device(fabric, 0)
    ctx1 = verbs.ibv_open_device(fabric, 1)
    pd0, pd1 = verbs.ibv_alloc_pd(ctx0), verbs.ibv_alloc_pd(ctx1)
    cq0, cq1 = verbs.ibv_create_cq(ctx0), verbs.ibv_create_cq(ctx1)
    qa = verbs.ibv_create_qp(ctx0, pd0, cq0, cq0)
    qb = verbs.ibv_create_qp(ctx1, pd1, cq1, cq1)
    assert qa.state is QPState.RESET
    verbs.connect_qps(qa, qb)
    assert qa.state is QPState.RTS
    assert qb.state is QPState.RTS
    assert qa.dest_qp_num == qb.qp_num
    assert qb.dest_qp_num == qa.qp_num


def test_post_and_poll_through_facade(fabric):
    env = fabric.env
    ctx0 = verbs.ibv_open_device(fabric, 0)
    ctx1 = verbs.ibv_open_device(fabric, 1)
    pd0, pd1 = verbs.ibv_alloc_pd(ctx0), verbs.ibv_alloc_pd(ctx1)
    cq0, cq1 = verbs.ibv_create_cq(ctx0), verbs.ibv_create_cq(ctx1)
    qa = verbs.ibv_create_qp(ctx0, pd0, cq0, cq0)
    qb = verbs.ibv_create_qp(ctx1, pd1, cq1, cq1)
    verbs.connect_qps(qa, qb)
    sbuf, rbuf = Buffer(512), Buffer(512)
    sbuf.fill_pattern(seed=9)
    smr = verbs.ibv_reg_mr(pd0, sbuf, ACCESS_LOCAL)
    rmr = verbs.ibv_reg_mr(pd1, rbuf, ACCESS_LOCAL | ACCESS_REMOTE_WRITE)
    verbs.ibv_post_recv(qb, RecvWR(wr_id=1))
    verbs.ibv_post_send(qa, SendWR(
        wr_id=1, opcode=Opcode.RDMA_WRITE_WITH_IMM,
        sg_list=[SGE(smr.addr, 512, smr.lkey)],
        remote_addr=rmr.addr, rkey=rmr.rkey, imm_data=3))
    env.run()
    assert np.array_equal(rbuf.data, sbuf.data)
    wcs = verbs.ibv_poll_cq(cq1, 4)
    assert len(wcs) == 1
    assert wcs[0].imm_data == 3
