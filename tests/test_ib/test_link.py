"""Unit tests for the wire model helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.config import NICConfig
from repro.ib.link import IngressPort, chunk_occupancy, injection_spacing, iter_chunks

CFG = NICConfig()


def test_iter_chunks_exact_division():
    assert list(iter_chunks(1024, 256)) == [256] * 4


def test_iter_chunks_remainder():
    assert list(iter_chunks(1000, 256)) == [256, 256, 256, 232]


def test_iter_chunks_small_message():
    assert list(iter_chunks(100, 256)) == [100]


def test_iter_chunks_zero_bytes_single_header_chunk():
    assert list(iter_chunks(0, 256)) == [0]


def test_chunk_occupancy_scales_with_bytes():
    small = chunk_occupancy(4096, CFG)
    large = chunk_occupancy(8192, CFG)
    assert large > small


def test_chunk_occupancy_includes_packet_cost():
    # zero-byte chunk still costs one packet time
    assert chunk_occupancy(0, CFG) == pytest.approx(CFG.t_pkt)


def test_packet_count_matches_mtu():
    nbytes = 3 * CFG.mtu + 1
    occ = chunk_occupancy(nbytes, CFG)
    expected = nbytes / CFG.line_rate + 4 * CFG.t_pkt
    assert occ == pytest.approx(expected)


def test_injection_spacing_slower_than_occupancy():
    """Per-QP rate cap: spacing uses qp_rate < line_rate."""
    nbytes = 64 * 1024
    assert injection_spacing(nbytes, CFG) > chunk_occupancy(nbytes, CFG)


def test_ingress_port_serializes():
    port = IngressPort()
    t1 = port.admit(egress_start=0.0, occupancy=1e-6, latency=1e-6, nbytes=100)
    t2 = port.admit(egress_start=0.0, occupancy=1e-6, latency=1e-6, nbytes=100)
    assert t1 == pytest.approx(2e-6)   # latency + occupancy
    assert t2 == pytest.approx(3e-6)   # queued behind the first
    assert port.bytes_received == 200


def test_ingress_port_idle_passthrough():
    port = IngressPort()
    t1 = port.admit(0.0, 1e-6, 1e-6, 10)
    # A much later chunk is not delayed by long-gone traffic.
    t2 = port.admit(1.0, 1e-6, 1e-6, 10)
    assert t2 == pytest.approx(1.0 + 2e-6)


@given(nbytes=st.integers(min_value=0, max_value=1 << 28))
def test_chunks_conserve_bytes(nbytes):
    assert sum(iter_chunks(nbytes, CFG.wire_chunk)) == nbytes


@given(nbytes=st.integers(min_value=1, max_value=1 << 28))
def test_chunk_sizes_bounded(nbytes):
    chunks = list(iter_chunks(nbytes, CFG.wire_chunk))
    assert all(0 < c <= CFG.wire_chunk for c in chunks)
    assert len(chunks) == math.ceil(nbytes / CFG.wire_chunk)
