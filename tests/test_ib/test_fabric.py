"""Tests for fabric topology management."""

import pytest

from repro.config import NIAGARA
from repro.errors import ConfigError
from repro.ib.fabric import Fabric, NodeAddress
from repro.sim import Environment


def test_add_nodes_sequential_ids():
    env = Environment()
    fabric = Fabric(env)
    n0 = fabric.add_node()
    n1 = fabric.add_node()
    assert n0.node_id == 0
    assert n1.node_id == 1
    assert fabric.n_nodes == 2


def test_explicit_node_id():
    env = Environment()
    fabric = Fabric(env)
    nic = fabric.add_node(7)
    assert fabric.nic_at(7) is nic


def test_duplicate_node_rejected():
    env = Environment()
    fabric = Fabric(env)
    fabric.add_node(0)
    with pytest.raises(ConfigError):
        fabric.add_node(0)


def test_unknown_node_rejected():
    env = Environment()
    fabric = Fabric(env)
    with pytest.raises(ConfigError):
        fabric.nic_at(3)


def test_default_latency_uniform():
    env = Environment()
    fabric = Fabric(env)
    fabric.add_node(0)
    fabric.add_node(1)
    assert fabric.latency(0, 1) == NIAGARA.link.latency
    assert fabric.latency(1, 0) == NIAGARA.link.latency


def test_loopback_latency():
    env = Environment()
    fabric = Fabric(env)
    fabric.add_node(0)
    assert fabric.latency(0, 0) == NIAGARA.link.loopback_latency


def test_latency_override_symmetric():
    env = Environment()
    fabric = Fabric(env)
    fabric.add_node(0)
    fabric.add_node(1)
    fabric.set_latency(0, 1, 5e-6)
    assert fabric.latency(0, 1) == 5e-6
    assert fabric.latency(1, 0) == 5e-6


def test_negative_latency_rejected():
    env = Environment()
    fabric = Fabric(env)
    with pytest.raises(ConfigError):
        fabric.set_latency(0, 1, -1e-6)


def test_set_latency_rejects_unknown_nodes():
    env = Environment()
    fabric = Fabric(env)
    fabric.add_node(0)
    with pytest.raises(ConfigError, match="no node 9"):
        fabric.set_latency(0, 9, 5e-6)
    with pytest.raises(ConfigError, match="no node 9"):
        fabric.set_latency(9, 0, 5e-6)
    # A rejected call leaves no partial override behind.
    fabric.add_node(9)
    assert fabric.latency(0, 9) == NIAGARA.link.latency


def test_set_latency_override_composes_with_topology():
    from repro.ib.topology import DragonflyPlus

    env = Environment()
    topo = DragonflyPlus(nodes_per_leaf=2, leaves_per_group=2)
    fabric = Fabric(env, topology=topo)
    for n in (0, 1, 4):
        fabric.add_node(n)
    fabric.set_latency(0, 4, 9e-6)
    assert fabric.latency(0, 4) == 9e-6       # override wins
    assert fabric.latency(4, 0) == 9e-6       # both directions
    assert fabric.latency(0, 1) == topo.latency(0, 1)  # others untouched


def test_node_address_value_object():
    a = NodeAddress(node_id=1, qp_num=42)
    b = NodeAddress(node_id=1, qp_num=42)
    assert a == b
    assert hash(a) == hash(b)
