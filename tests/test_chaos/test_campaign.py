"""Campaign orchestration, invariant checks, and failure bundles."""

import json

import pytest

from repro.chaos import (
    CampaignSpec,
    RunReport,
    check_invariants,
    failure_bundle,
    format_campaign,
    run_campaign,
    schedule_from_dict,
    schedule_to_dict,
    workload_names,
)
from repro.chaos.workloads import _REGISTRY, WorkloadInfo


# -- invariant checker units -------------------------------------------


def clean_report(**over):
    base = dict(workload="w", completed=True, duration=1e-3,
                integrity_failures=0, counters={}, leaks=[], meta={})
    base.update(over)
    return RunReport(**base)


def test_clean_report_has_no_violations():
    assert check_invariants(clean_report()) == []


def test_incomplete_run_is_a_violation():
    v = check_invariants(clean_report(
        completed=False, meta={"error": "RetryExhaustedError: boom"}))
    assert len(v) == 1 and "RetryExhaustedError" in v[0]


def test_integrity_failures_are_violations():
    v = check_invariants(clean_report(integrity_failures=2))
    assert any("integrity" in s for s in v)


def test_duplicates_beyond_resends_violate_exactly_once():
    ok = clean_report(counters={"mpi.duplicates_dropped": 2,
                                "mpi.replayed_wrs": 3})
    assert check_invariants(ok) == []
    bad = clean_report(counters={"mpi.duplicates_dropped": 4,
                                 "mpi.replayed_wrs": 3})
    assert any("exactly-once" in s for s in check_invariants(bad))


def test_leaks_and_overlong_runs_are_violations():
    v = check_invariants(clean_report(leaks=["edge 0<->1: stuck"]))
    assert any("leak" in s for s in v)
    v = check_invariants(clean_report(duration=2.0), max_duration=1.0)
    assert any("bounded time" in s for s in v)


# -- campaign orchestration --------------------------------------------


def test_spec_validation():
    with pytest.raises(ValueError):
        CampaignSpec(runs=0)
    with pytest.raises(ValueError):
        CampaignSpec(workloads=())
    with pytest.raises(ValueError):
        CampaignSpec(kinds=())


def test_registry_has_the_three_default_workloads():
    assert {"ext_stencil", "pallreduce", "pbcast"} <= set(workload_names())


@pytest.mark.faults
def test_small_campaign_holds_all_invariants():
    spec = CampaignSpec(workloads=("ext_stencil", "pallreduce"),
                        runs=4, seed=5)
    report = run_campaign(spec)
    assert report.ok, [o.violations for o in report.failures()]
    assert len(report.outcomes) == 4
    assert report.kinds_run == set(spec.kinds)
    # Seeds are replayable: the same spec reproduces the same runs.
    again = run_campaign(spec)
    assert [o.seed for o in again.outcomes] == \
        [o.seed for o in report.outcomes]
    assert [schedule_to_dict(o.schedule) for o in again.outcomes] == \
        [schedule_to_dict(o.schedule) for o in report.outcomes]
    text = format_campaign(report)
    assert "all invariants held" in text
    assert "ext_stencil" in text


def test_campaign_captures_raised_errors_as_violations():
    def boom(schedule, seed, **kw):
        raise RuntimeError("kaboom")

    _REGISTRY["_boom"] = WorkloadInfo(name="_boom", n_nodes=3, fn=boom)
    try:
        spec = CampaignSpec(workloads=("_boom",), runs=2, seed=0)
        report = run_campaign(spec)
    finally:
        del _REGISTRY["_boom"]
    assert not report.ok
    assert report.n_violations == 2
    outcome = report.outcomes[0]
    assert "RuntimeError: kaboom" in outcome.report.meta["error"]
    assert any("did not complete" in s for s in outcome.violations)


def test_failure_bundle_round_trips(tmp_path):
    def bad(schedule, seed, **kw):
        return RunReport(workload="_bad", completed=True, duration=1e-3,
                         integrity_failures=1,
                         counters={"ib.retry_exhausted": 2})

    _REGISTRY["_bad"] = WorkloadInfo(name="_bad", n_nodes=4, fn=bad)
    try:
        report = run_campaign(CampaignSpec(workloads=("_bad",), runs=1,
                                           seed=9))
    finally:
        del _REGISTRY["_bad"]
    outcome = report.outcomes[0]
    bundle = failure_bundle(outcome)
    # JSON-safe and complete enough to replay the exact run.
    path = tmp_path / "bundle.json"
    path.write_text(json.dumps(bundle))
    loaded = json.loads(path.read_text())
    assert loaded["seed"] == outcome.seed
    assert loaded["kind"] == outcome.kind
    assert loaded["violations"]
    rebuilt = schedule_from_dict(loaded["schedule"])
    assert schedule_to_dict(rebuilt) == schedule_to_dict(outcome.schedule)


@pytest.mark.slow
@pytest.mark.faults
def test_seed_matrix_campaign_with_ladder():
    """A broader seeded matrix: every kind, both workload families,
    ladder enabled — zero integrity/exactly-once violations."""
    spec = CampaignSpec(workloads=("ext_stencil", "pallreduce", "pbcast"),
                        runs=12, seed=2, ladder=True)
    report = run_campaign(spec)
    assert report.ok, [failure_bundle(o) for o in report.failures()]
    assert report.kinds_run == set(spec.kinds)
