"""Seeded generator properties: determinism, shape, serialization."""

import numpy as np
import pytest

from repro.chaos import (
    KINDS,
    generate_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.faults import FaultSchedule


def rng(seed=0):
    return np.random.Generator(np.random.PCG64(seed))


@pytest.mark.parametrize("kind", KINDS)
def test_same_seed_same_schedule(kind):
    a = generate_schedule(kind, rng(7), n_nodes=5, horizon=10e-3)
    b = generate_schedule(kind, rng(7), n_nodes=5, horizon=10e-3)
    assert schedule_to_dict(a) == schedule_to_dict(b)


@pytest.mark.parametrize("kind", KINDS)
def test_different_seeds_differ(kind):
    a = generate_schedule(kind, rng(1), n_nodes=6, horizon=10e-3)
    b = generate_schedule(kind, rng(2), n_nodes=6, horizon=10e-3)
    assert schedule_to_dict(a) != schedule_to_dict(b)


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("seed", [0, 3, 11, 42])
def test_windows_are_finite_and_inside_horizon(kind, seed):
    horizon = 8e-3
    sched = generate_schedule(kind, rng(seed), n_nodes=7, horizon=horizon)
    assert not sched.empty
    assert sched.allow_reconnect
    windows = ([(f.start, f.duration) for f in sched.flaps]
               + [(s.start, s.duration) for s in sched.spikes]
               + [(w.start, w.duration) for w in sched.rnr_windows])
    assert windows
    for start, duration in windows:
        assert 0 <= start < horizon
        assert 0 < duration < horizon


def test_flap_storm_has_several_independent_flaps():
    sched = generate_schedule("flap_storm", rng(5), n_nodes=6)
    assert len(sched.flaps) >= 2
    assert all(f.a != f.b for f in sched.flaps)


def test_rail_failure_downs_every_link_of_one_node_at_once():
    n = 6
    sched = generate_schedule("rail_failure", rng(5), n_nodes=n)
    assert len(sched.flaps) == n - 1
    # All flaps share one endpoint and one window: a correlated failure.
    common = set.intersection(*({f.a, f.b} for f in sched.flaps))
    assert len(common) == 1
    assert len({(f.start, f.duration) for f in sched.flaps}) == 1


def test_rnr_burst_is_node_wide_windows():
    sched = generate_schedule("rnr_burst", rng(9), n_nodes=4)
    assert len(sched.rnr_windows) >= 2
    assert all(w.qp_num is None for w in sched.rnr_windows)


def test_latency_train_is_ordered_on_one_directed_link():
    sched = generate_schedule("latency_train", rng(9), n_nodes=4)
    assert len(sched.spikes) >= 3
    assert len({(s.src, s.dst) for s in sched.spikes}) == 1
    starts = [s.start for s in sched.spikes]
    assert starts == sorted(starts)
    # Spikes in a train do not overlap (extra latency never stacks).
    for prev, cur in zip(sched.spikes, sched.spikes[1:]):
        assert cur.start >= prev.start + prev.duration


def test_unknown_kind_and_bad_args_are_rejected():
    with pytest.raises(ValueError):
        generate_schedule("meteor_strike", rng(), n_nodes=4)
    with pytest.raises(ValueError):
        generate_schedule("flap_storm", rng(), n_nodes=1)
    with pytest.raises(ValueError):
        generate_schedule("flap_storm", rng(), n_nodes=4, horizon=0.0)


def test_schedule_round_trips_through_dict():
    sched = (FaultSchedule(allow_reconnect=False)
             .link_flap(0, 1, start=1e-3, duration=2e-3)
             .latency_spike(1, 2, start=2e-3, duration=1e-3, extra=5e-6)
             .nic_stall(0, start=1e-4, duration=1e-4)
             .rnr_window(2, start=5e-4, duration=1e-4, qp_num=17)
             .chunk_loss(1e-4, src=0, dst=1)
             .chunk_corruption(1e-5))
    rebuilt = schedule_from_dict(schedule_to_dict(sched))
    assert schedule_to_dict(rebuilt) == schedule_to_dict(sched)
    assert rebuilt.allow_reconnect is False
    assert rebuilt.rnr_windows[0].qp_num == 17
