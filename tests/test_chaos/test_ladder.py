"""The degradation ladder: a permanently-dead edge degrades, completes,
and re-promotes — instead of aborting with retry exhaustion."""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import NIAGARA
from repro.core import FixedAggregation, NativeSpec
from repro.errors import RetryExhaustedError
from repro.faults import FaultSchedule
from repro.faults.schedule import RNRWindow
from repro.mem import PartitionedBuffer
from repro.mpi import Cluster
from repro.mpi.channel_module import ChannelSpec
from repro.mpi.ladder import LadderSpec
from repro.mpi.persist_module import PersistSpec
from repro.units import KiB, us

N_PARTS = 4
PSIZE = 64 * KiB


def ladder_config(threshold=3, probation=100):
    """Tight retry budgets; probation long enough to stay demoted."""
    return NIAGARA.with_changes(
        nic=replace(NIAGARA.nic, retry_cnt=1, rnr_retry=1, qp_timeout=1),
        part=replace(NIAGARA.part, reconnect_delay=us(500),
                     breaker_threshold=threshold,
                     breaker_probation=probation),
    )


def native_rung():
    return NativeSpec(FixedAggregation(2, 1))


def pin_dead(schedule, req):
    """Perma-dead native transport: RNR-NAK every one of its recv QPs.

    Pinned by qp_num, which survives reconnects — so the native rung
    can never deliver again, while the fallback rungs (fresh QPs, the
    shared p2p channel) stay healthy.  This is the QP-local permanent
    failure the ladder exists for; a link flap would kill the fallback
    paths too.
    """
    module = req.module
    inner = getattr(module, "inner", module)
    now = req.process.env.now
    for qp in inner.recv_qps:
        schedule.rnr_windows.append(RNRWindow(
            node=1, start=now, duration=10.0, qp_num=qp.qp_num))


def run_dead_edge(spec_factory, schedule, config, rounds=6):
    cluster = Cluster(n_nodes=2, config=config)
    cluster.fabric.install_faults(schedule)
    s_proc, r_proc = cluster.ranks(2)
    sbuf = PartitionedBuffer(N_PARTS, PSIZE, backed=True)
    rbuf = PartitionedBuffer(N_PARTS, PSIZE, backed=True)
    outcome = {"rounds_ok": 0}

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0, module=spec_factory())
        outcome["send_req"] = req
        for rnd in range(rounds):
            sbuf.fill_pattern(seed=rnd)
            yield from proc.start(req)
            if rnd == 0:
                # The QPs exist once the first Start has seen setup
                # complete; append the kill windows mid-run.
                pin_dead(schedule, req)
            for i in range(N_PARTS):
                yield from proc.pready(req, i)
            yield from proc.wait_partitioned(req)

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0, module=spec_factory())
        for rnd in range(rounds):
            yield from proc.start(req)
            yield from proc.wait_partitioned(req)
            if np.array_equal(rbuf.data, rbuf.expected_pattern(
                    0, rbuf.nbytes, seed=rnd)):
                outcome["rounds_ok"] += 1

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()
    return cluster, outcome


@pytest.mark.faults
def test_dead_edge_aborts_without_the_ladder():
    schedule = FaultSchedule(allow_reconnect=False)
    with pytest.raises(RetryExhaustedError) as excinfo:
        run_dead_edge(native_rung, schedule, ladder_config())
    ctx = excinfo.value.context
    assert ctx["edge"] == (0, 1)
    assert ctx["epoch"] >= 1
    assert ctx["retries"]["rnr_retry"] == 1


@pytest.mark.faults
def test_dead_edge_degrades_and_completes_with_the_ladder():
    spec = lambda: LadderSpec([native_rung(), PersistSpec(), ChannelSpec()])
    schedule = FaultSchedule()
    rounds = 6
    cluster, outcome = run_dead_edge(spec, schedule, ladder_config(),
                                     rounds=rounds)
    # Every round completed with the right bytes, despite the dead rung.
    assert outcome["rounds_ok"] == rounds
    c = cluster.fabric.counters
    assert c.get("ib.retry_exhausted") >= 1
    assert c.get("chaos.edge_failures") >= 1
    assert c.get("chaos.breaker_trips") >= 1
    assert c.get("chaos.ladder_demotions") >= 1
    # The tripped round itself was rescued mid-flight over p2p.
    assert c.get("chaos.rescued_partitions") >= 1
    module = outcome["send_req"].module
    assert module.level > 0
    assert module.rung_name in ("part_persist", "channels")
    assert module.transitions and \
        module.transitions[0]["kind"] == "demote"
    assert module.breaker.state == "half_open"


@pytest.mark.faults
def test_recovered_edge_is_promoted_back_after_probation():
    """Short probation + finite fault: the edge demotes, serves clean
    rounds on the fallback, then walks back up to the native rung."""
    spec = lambda: LadderSpec([native_rung(), PersistSpec(), ChannelSpec()])
    schedule = FaultSchedule()
    cluster, outcome = run_dead_edge(
        spec, schedule, ladder_config(threshold=3, probation=2), rounds=8)
    assert outcome["rounds_ok"] == 8
    c = cluster.fabric.counters
    assert c.get("chaos.ladder_demotions") >= 1
    assert c.get("chaos.ladder_promotions") >= 1
    module = outcome["send_req"].module
    kinds = [t["kind"] for t in module.transitions]
    assert "demote" in kinds and "promote" in kinds
    assert kinds.index("demote") < kinds.index("promote")
    # Promotion re-created the rung on fresh QPs: back at the top.
    assert module.level == 0
    assert module.rung_name == "native_verbs"


@pytest.mark.faults
def test_quarantine_counts_faulted_rounds():
    """Autotuned native edges quarantine observations overlapping
    recovery windows instead of folding them into the policy."""
    from repro.autotune import build_autotuner

    spec = lambda: NativeSpec(build_autotuner({"counts": [1, 2]}))

    schedule = FaultSchedule().link_flap(0, 1, start=us(100),
                                         duration=us(300))
    config = NIAGARA.with_changes(
        nic=replace(NIAGARA.nic, retry_cnt=1, qp_timeout=1),
        part=replace(NIAGARA.part, reconnect_delay=us(500)))
    cluster, outcome = run_dead_edge(spec, schedule, config, rounds=4)
    assert outcome["rounds_ok"] == 4
    assert cluster.fabric.counters.get("autotune.quarantined") >= 1
