"""Pass invariants: byte preservation, idempotence, legalize identity."""

import random

import pytest

from repro.config import NIAGARA
from repro.plan import (
    Edge,
    FuseAdjacentSends,
    HoistCommonSubtrees,
    Legalize,
    MaterializeSends,
    Partition,
    PassContext,
    Persist,
    Plan,
    QPPool,
    Send,
    SplitOversizedWRs,
    Stripe,
    analysis_pipeline,
    leaf_plan,
    lowering_pipeline,
    plan,
)

ALL_PASSES = (MaterializeSends(), SplitOversizedWRs(),
              FuseAdjacentSends(), HoistCommonSubtrees(), Legalize())


def _edge_payloads(p: Plan) -> dict:
    """Materialized bytes per edge (None key = the default body)."""
    out = {None: (p.default_body() or Plan()).payload_bytes()}
    for neighbor, body in p.edges().items():
        out[neighbor] = body.payload_bytes()
    return out


def _random_plan(rng: random.Random) -> Plan:
    """A random materialized multi-edge plan (property-test input)."""
    def body():
        total = rng.choice([1 << 12, 1 << 16, (1 << 20) + 17, 3 * 5 * 7])
        n = rng.choice([1, 2, 4, 8])
        ops = [Partition(n=rng.choice([1, 2, 3, 4, 8, 12, 32])),
               QPPool(n=rng.choice([1, 2, 4, 64]))]
        offset = 0
        chunk = max(1, total // n)
        while offset < total:
            nbytes = min(chunk, total - offset)
            ops.append(Send(offset=offset, nbytes=nbytes))
            offset += nbytes
        return Plan(tuple(ops))

    shared = body()
    ops = []
    for neighbor in range(rng.randint(2, 5)):
        ops.append(Edge(neighbor=neighbor,
                        body=shared if rng.random() < 0.5 else body()))
    return Plan(tuple(ops))


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("p", ALL_PASSES, ids=lambda p: p.name)
def test_every_pass_preserves_payload_bytes_per_edge(p, seed):
    rng = random.Random(seed)
    before = _random_plan(rng)
    ctx = PassContext(config=NIAGARA, n_user=8, partition_size=1 << 13,
                      max_wr_bytes=rng.choice([1 << 12, 1 << 14, 1 << 31]))
    after = p.run(before, ctx)
    assert _edge_payloads(after) == _edge_payloads(before)


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("p", ALL_PASSES, ids=lambda p: p.name)
def test_every_pass_is_idempotent(p, seed):
    rng = random.Random(1000 + seed)
    ctx = PassContext(config=NIAGARA, n_user=8, partition_size=1 << 13,
                      max_wr_bytes=1 << 14)
    once = p.run(_random_plan(rng), ctx)
    assert p.run(once, ctx).digest == once.digest


def test_analysis_pipeline_preserves_bytes_end_to_end():
    ctx = PassContext(config=NIAGARA, n_user=16, partition_size=1 << 14)
    out = analysis_pipeline().run(leaf_plan(8, 2), ctx)
    assert out.payload_bytes() == ctx.total_bytes


def test_legalize_is_identity_on_legal_plans():
    ctx = PassContext(config=NIAGARA)
    for p in (leaf_plan(8, 2), leaf_plan(1, 1, delta=3.5e-05),
              plan(Persist())):
        assert Legalize().run(p, ctx).digest == p.digest


def test_legalize_clamps_illegal_knobs():
    ctx = PassContext(config=NIAGARA)
    out = Legalize().run(
        plan(Partition(n=12), QPPool(n=64),
             Stripe(rails=NIAGARA.nic.n_ports + 7)), ctx)
    assert out.first(Partition).n == 8  # round down to a power of two
    assert out.first(QPPool).n <= min(8, NIAGARA.nic.max_qps)
    assert out.first(Stripe).rails == NIAGARA.nic.n_ports


def test_lowering_pipeline_is_legalize_only():
    pipe = lowering_pipeline()
    assert pipe.describe() == "legalize"


def test_materialize_sends_chunks_cover_payload_exactly():
    ctx = PassContext(n_user=8, partition_size=1000)  # 8000, not pow2-even
    out = MaterializeSends().run(leaf_plan(3, 1), ctx)
    sends = out.find(Send)
    assert len(sends) == 3
    assert sends[0].offset == 0
    for prev, cur in zip(sends, sends[1:]):
        assert cur.offset == prev.offset + prev.nbytes  # contiguous
    assert out.payload_bytes() == 8000


def test_split_then_fuse_round_trips_a_contiguous_send():
    ctx = PassContext(max_wr_bytes=1 << 10)
    big = plan(Send(offset=0, nbytes=(1 << 12) + 3))
    split = SplitOversizedWRs().run(big, ctx)
    assert all(s.nbytes <= 1 << 10 for s in split.find(Send))
    assert split.payload_bytes() == big.payload_bytes()
    fused = FuseAdjacentSends().run(split, PassContext())
    assert fused == big


def test_fuse_respects_cap_and_holes():
    cap = PassContext(max_wr_bytes=100)
    touching = plan(Send(offset=0, nbytes=60), Send(offset=60, nbytes=60))
    assert len(FuseAdjacentSends().run(touching, cap).find(Send)) == 2
    hole = plan(Send(offset=0, nbytes=10), Send(offset=20, nbytes=10))
    assert len(FuseAdjacentSends().run(hole, cap).find(Send)) == 2


def test_hoist_collapses_identical_edges():
    body = leaf_plan(4, 2)
    p = Plan(tuple(Edge(neighbor=i, body=leaf_plan(4, 2))
                   for i in range(3)))
    out = HoistCommonSubtrees().run(p, PassContext())
    assert not out.find(Edge)
    assert out.digest == body.digest


def test_hoist_interns_equal_bodies_without_collapsing():
    p = Plan((Edge(neighbor=0, body=leaf_plan(4, 2)),
              Edge(neighbor=1, body=leaf_plan(4, 2)),
              Edge(neighbor=2, body=leaf_plan(8, 2))))
    out = HoistCommonSubtrees().run(p, PassContext())
    edges = out.edges()
    assert set(edges) == {0, 1, 2}
    assert edges[0] is edges[1]  # shared object -> shared lowering
    assert edges[2].digest != edges[0].digest


def test_pipeline_trace_records_digests():
    ctx = PassContext(config=NIAGARA, n_user=8, partition_size=1 << 12)
    pipe = analysis_pipeline()
    start = leaf_plan(4, 2)
    out = pipe.run(start, ctx)
    assert [t[0] for t in pipe.trace] == [
        "materialize-sends", "split-oversized-wrs", "fuse-adjacent-sends",
        "hoist-common-subtrees", "legalize"]
    assert pipe.trace[0][1] == start.digest
    assert pipe.trace[-1][2] == out.digest
    for (_, _, after), (_, before, _) in zip(pipe.trace, pipe.trace[1:]):
        assert after == before
