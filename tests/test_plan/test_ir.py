"""IR identity: print → parse → print is a fixed point for every op."""

import pytest

from repro.plan import (
    OPS,
    Aggregate,
    Channel,
    Edge,
    Fallback,
    Native,
    Partition,
    Persist,
    Plan,
    PlanError,
    QPPool,
    Send,
    Stripe,
    Tree,
    parse,
    plan,
)

#: One representative plan per op, non-default attrs everywhere.
OP_PLANS = {
    "partition": plan(Partition(n=8)),
    "qp_pool": plan(QPPool(n=2)),
    "aggregate": plan(Aggregate(delta=3.5e-05, sg=True)),
    "stripe": plan(Stripe(rails=2)),
    "tree": plan(Tree(kind="knomial", root=3)),
    "persist": plan(Persist()),
    "channel": plan(Channel()),
    "native": plan(Native(strategy="ploggp")),
    "send": plan(Send(offset=4096, nbytes=65536)),
    "edge": plan(Edge(neighbor=1, body=plan(Persist()))),
    "fallback": plan(Fallback(rungs=(
        plan(Partition(n=4), QPPool(n=2)),
        plan(Persist()),
        plan(Channel()),
    ))),
}

NESTED = plan(
    Partition(n=8),
    QPPool(n=2),
    Aggregate(delta=3.5e-05),
    Stripe(rails=2),
    Edge(neighbor=1, body=plan(Partition(n=4), QPPool(n=1))),
    Edge(neighbor=2, body=plan(Fallback(rungs=(
        plan(Native(strategy="ploggp")),
        plan(Persist()),
        plan(Channel()),
    )))),
)


def test_every_registered_op_is_covered():
    assert set(OP_PLANS) == set(OPS)


@pytest.mark.parametrize("name", sorted(OP_PLANS))
def test_round_trip_is_fixed_point_per_op(name):
    p = OP_PLANS[name]
    q = parse(p.text)
    assert q == p
    assert q.text == p.text
    assert q.digest == p.digest
    # And once more: parsing the printed form is idempotent.
    assert parse(q.text) == q


def test_round_trip_nested_plan():
    q = parse(NESTED.text)
    assert q == NESTED
    assert q.digest == NESTED.digest


def test_default_attrs_are_not_printed():
    assert plan(Tree()).text == "plan {\n  tree()\n}"
    assert plan(Aggregate()).text == "plan {\n  aggregate()\n}"
    assert plan(Native()).text == "plan {\n  native()\n}"
    assert "sg" not in plan(Aggregate(delta=1e-6)).text


def test_digest_is_structural_identity():
    a = plan(Partition(n=8), QPPool(n=2))
    b = plan(Partition(n=8), QPPool(n=2))
    c = plan(Partition(n=4), QPPool(n=2))
    assert a is not b and a.digest == b.digest
    assert a.digest != c.digest
    # Op order is significant: a plan is an ordered sequence.
    assert plan(QPPool(n=2), Partition(n=8)).digest != a.digest


def test_digest_stable_across_parse():
    for p in OP_PLANS.values():
        assert parse(p.text).digest == p.digest


def test_parse_rejects_garbage():
    with pytest.raises(PlanError):
        parse("plan { partition(n=) }")
    with pytest.raises(PlanError):
        parse("plan { unknown_op() }")
    with pytest.raises(PlanError):
        parse("partition(n=8)")  # missing plan { } wrapper
    with pytest.raises(PlanError):
        parse("plan { partition(n=8)")  # unclosed block


def test_op_validation():
    with pytest.raises(PlanError):
        plan(Partition(n=0))
    with pytest.raises(PlanError):
        plan(QPPool(n=-1))
    with pytest.raises(PlanError):
        plan(Send(offset=0, nbytes=0))
    with pytest.raises(PlanError):
        plan(Aggregate(delta=-1.0))
    with pytest.raises(PlanError):
        plan(Fallback(rungs=()))


def test_edges_and_default_body():
    edges = NESTED.edges()
    assert set(edges) == {1, 2}
    assert edges[1].first(Partition).n == 4
    default = NESTED.default_body()
    assert default is not None
    assert default.first(Partition).n == 8
    assert not default.find(Edge)
    with pytest.raises(PlanError):
        plan(Edge(neighbor=1, body=plan(Persist())),
             Edge(neighbor=1, body=plan(Channel()))).edges()


def test_payload_bytes_and_walk():
    p = plan(Send(offset=0, nbytes=100), Send(offset=100, nbytes=28))
    assert p.payload_bytes() == 128
    names = [op.name for op in NESTED.walk()]
    assert names.count("edge") == 2
    assert "fallback" in names and "native" in names
