"""Mutation move set: every neighbor is legal, distinct, and in-envelope."""

import pytest

from repro.config import NIAGARA
from repro.core.aggregators import _qps_for
from repro.plan import Aggregate, Partition, QPPool, leaf_plan, neighbors, plan
from repro.plan import Persist


@pytest.mark.parametrize("n_transport,n_qps", [(1, 1), (4, 2), (16, 2)])
def test_neighbors_are_legal_and_deduped(n_transport, n_qps):
    start = leaf_plan(n_transport, n_qps)
    out = neighbors(start, n_user=16, config=NIAGARA,
                    deltas=(None, 3.5e-05))
    assert out, "a leaf plan always has at least one mutation"
    digests = [p.digest for p in out]
    assert len(set(digests)) == len(digests)
    assert start.digest not in digests
    for p in out:
        part = p.first(Partition)
        assert part.n & (part.n - 1) == 0  # power of two
        assert 1 <= part.n <= 16
        pool = p.first(QPPool)
        qps = pool.n if pool is not None else 1
        assert 1 <= qps <= min(part.n, _qps_for(16, 16, NIAGARA))


def test_partition_moves_halve_and_double():
    out = neighbors(leaf_plan(4, 2), n_user=16, config=NIAGARA)
    counts = {p.first(Partition).n for p in out}
    assert {2, 8} <= counts


def test_partition_cannot_exceed_n_user():
    out = neighbors(leaf_plan(8, 2), n_user=8, config=NIAGARA)
    assert all(p.first(Partition).n <= 8 for p in out)


def test_qp_cap_bounds_every_move():
    out = neighbors(leaf_plan(8, 1), n_user=16, config=NIAGARA, qp_cap=2)
    for p in out:
        pool = p.first(QPPool)
        assert (pool.n if pool is not None else 1) <= 2


def test_delta_toggle_and_rescale():
    base = leaf_plan(8, 2, delta=4e-05)
    out = neighbors(base, n_user=16, config=NIAGARA, deltas=(None,))
    deltas = set()
    for p in out:
        agg = p.first(Aggregate)
        deltas.add(agg.delta if agg is not None else None)
    assert None in deltas  # toggle off
    assert 8e-05 in deltas and 2e-05 in deltas  # rescale x2 / /2
    # Toggling on from a delta-free plan appends the aggregate op.
    on = neighbors(leaf_plan(8, 2), n_user=16, config=NIAGARA,
                   deltas=(4e-05,))
    assert any(p.first(Aggregate) is not None
               and p.first(Aggregate).delta == 4e-05 for p in on)


def test_non_leaf_plan_has_no_neighbors():
    assert neighbors(plan(Persist()), n_user=16, config=NIAGARA) == []
