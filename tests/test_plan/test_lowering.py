"""Lowering: plans emit the existing specs, timing stays bit-identical."""

import pytest

from repro.bench.pair import run_partitioned_pair
from repro.config import NIAGARA
from repro.core import FixedAggregation, PLogGPAggregator
from repro.core.module import NativeSpec
from repro.model.tables import NIAGARA_LOGGP
from repro.mpi.channel_module import ChannelSpec
from repro.mpi.ladder import LadderSpec
from repro.mpi.persist_module import PersistSpec
from repro.plan import (
    Channel,
    Native,
    Persist,
    Plan,
    PlanError,
    default_ladder_plan,
    leaf_plan,
    lower,
    lower_edges,
    module_plan,
    plan,
    spec_to_plan,
    substitute_native,
)

N_USER = 16
TOTAL = 1 << 20
ITER = dict(iterations=6, warmup=2)


def test_lowered_leaf_plan_matches_fixed_aggregation_bit_for_bit():
    """The golden guarantee: lowering constructs the exact aggregator
    the benchmarks always constructed, so timing is bit-identical."""
    baseline = run_partitioned_pair(
        lambda: NativeSpec(FixedAggregation(8, 2)),
        n_user=N_USER, partition_size=TOTAL // N_USER, **ITER)
    lowered = run_partitioned_pair(
        lambda: lower(leaf_plan(8, 2), config=NIAGARA,
                      n_user=N_USER, partition_size=TOTAL // N_USER),
        n_user=N_USER, partition_size=TOTAL // N_USER, **ITER)
    assert lowered.mean_time.hex() == baseline.mean_time.hex()
    assert lowered.wrs_posted == baseline.wrs_posted


def test_lower_leaf_with_delta_and_sg():
    spec = lower(leaf_plan(8, 2, delta=3.5e-05, scatter_gather=True))
    agg = spec.aggregator
    assert isinstance(agg, FixedAggregation)
    assert (agg.n_transport, agg.n_qps) == (8, 2)
    assert agg.timer_delta == 3.5e-05
    assert agg.scatter_gather


def test_lower_baselines_and_ladder():
    assert isinstance(lower(plan(Persist())), PersistSpec)
    assert isinstance(lower(plan(Channel())), ChannelSpec)
    ladder = substitute_native(default_ladder_plan(), leaf_plan(4, 2))
    spec = lower(ladder)
    assert isinstance(spec, LadderSpec)
    assert [r.name for r in spec.rungs] == [
        "native_verbs", "part_persist", "channels"]


def test_lower_rejects_native_placeholder_and_empty_plan():
    with pytest.raises(PlanError):
        lower(plan(Native()))
    with pytest.raises(PlanError):
        lower(Plan(()))


def test_spec_to_plan_round_trips_lowered_plans():
    for p in (leaf_plan(8, 2), leaf_plan(4, 1, delta=1e-5),
              plan(Persist()), plan(Channel()),
              substitute_native(default_ladder_plan(), leaf_plan(4, 2))):
        assert spec_to_plan(lower(p)) == p


def test_ladder_spec_plan_expresses_rungs_as_fallback_legs():
    spec = LadderSpec([NativeSpec(FixedAggregation(8, 2)),
                       PersistSpec(), ChannelSpec()])
    p = spec.plan()
    assert p == substitute_native(default_ladder_plan(), leaf_plan(8, 2))
    assert spec_to_plan(lower(p)) == p


def test_lower_edges_memoizes_and_falls_back_to_default():
    from repro.plan import Edge

    p = Plan((
        leaf_plan(8, 2).ops[0], leaf_plan(8, 2).ops[1],
        Edge(neighbor=1, body=leaf_plan(4, 2)),
        Edge(neighbor=2, body=leaf_plan(4, 2)),
    ))
    resolve = lower_edges(p, config=NIAGARA)
    assert resolve(1) is resolve(2)  # digest-memoized shared spec
    default = resolve(99)
    assert default.aggregator.n_transport == 8
    assert resolve(98) is default


def test_lower_edges_without_default_rejects_unknown_neighbor():
    from repro.plan import Edge

    p = Plan((Edge(neighbor=1, body=leaf_plan(4, 2)),))
    resolve = lower_edges(p)
    assert resolve(1).aggregator.n_transport == 4
    with pytest.raises(PlanError):
        resolve(2)


def test_module_plan_covers_the_coll_module_vocabulary():
    config = NIAGARA
    assert module_plan(None, N_USER, TOTAL // N_USER, config) == \
        plan(Persist())
    agg = PLogGPAggregator(NIAGARA_LOGGP, delay=4e-3)
    p = module_plan(agg, N_USER, TOTAL // N_USER, config)
    resolved = agg.plan(N_USER, TOTAL // N_USER, config)
    assert p.first(type(leaf_plan(1, 1).ops[0])).n == resolved.n_transport
    spec = NativeSpec(FixedAggregation(4, 2))
    assert module_plan(spec, N_USER, TOTAL // N_USER, config) == \
        leaf_plan(4, 2)


def test_legalization_happens_before_emission():
    spec = lower(leaf_plan(12, 64), config=NIAGARA)
    agg = spec.aggregator
    assert agg.n_transport == 8  # rounded down to a power of two
    assert agg.n_qps <= min(8, NIAGARA.nic.max_qps)
