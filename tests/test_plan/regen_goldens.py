"""Regenerate the checked-in ``repro-bench plan show`` goldens.

Run after a deliberate change to the module → plan → lowering path::

    PYTHONPATH=src python tests/test_plan/regen_goldens.py

and explain the plan-text delta in the commit message.
"""

import pathlib
import sys

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"
EXPERIMENTS = (("fig08", "fast"), ("ext_stencil", "fast"))


def main() -> int:
    from repro.exp import render_plans

    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, profile in EXPERIMENTS:
        path = GOLDEN_DIR / f"plan_{name}_{profile}.txt"
        path.write_text(render_plans(name, profile))
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
