"""``repro-bench plan show|diff`` and the checked-in plan-text goldens.

The goldens pin the full module → plan → lowering path for two
representative experiments; regenerate with
``python tests/test_plan/regen_goldens.py`` after a deliberate change
and explain the delta in the commit.
"""

import pathlib

import pytest

from repro.cli import main

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


@pytest.mark.parametrize("name", ["fig08", "ext_stencil"])
def test_plan_show_matches_golden(name, capsys):
    assert main(["plan", "show", name, "--profile", "fast"]) == 0
    golden = (GOLDEN_DIR / f"plan_{name}_fast.txt").read_text()
    assert capsys.readouterr().out == golden


def test_plan_show_render_is_parseable_and_digest_consistent():
    from repro.exp import experiment_plans
    from repro.plan import parse

    for label, plan in experiment_plans("ext_autotune", "fast"):
        assert parse(plan.text) == plan
        assert label


def test_plan_diff_same_experiment_is_identical(capsys):
    assert main(["plan", "diff", "fig08"]) == 0
    assert "plans identical" in capsys.readouterr().out


def test_plan_diff_reports_label_and_plan_changes(capsys):
    assert main(["plan", "diff", "fig08", "ext_stencil"]) == 1
    out = capsys.readouterr().out
    assert "only in fig08[fast]" in out
    assert "only in ext_stencil[fast]" in out


def test_plan_diff_across_profiles(capsys):
    rc = main(["plan", "diff", "fig08", "--baseline-profile", "paper"])
    out = capsys.readouterr().out
    # fast and paper sweep different workloads, so the diff must flag
    # at least label-level differences (and exit non-zero).
    assert rc == 1
    assert "only in" in out or "@ " in out


def test_plan_show_unknown_experiment_exits_with_error():
    with pytest.raises(SystemExit):
        main(["plan", "show", "nonesuch"])
