"""PlanMutationPolicy: IR-native search that rides the controller."""

import pytest

from repro.autotune import PlanChoice, PlanMutationPolicy, plan_to_choice
from repro.autotune.observe import IterationObservation
from repro.bench.autotune import run_autotuned_pair
from repro.config import NIAGARA
from repro.errors import ConfigError
from repro.plan import choice_plan, leaf_plan, plan
from repro.plan import Persist

N_USER = 16
TOTAL = 1 << 20


def _obs(t: float, rnd: int = 0) -> IterationObservation:
    return IterationObservation(round=rnd, completion_time=t,
                                pready_times=(0.0,))


def _policy(**kwargs) -> PlanMutationPolicy:
    defaults = dict(n_user=N_USER, config=NIAGARA, seed=0)
    defaults.update(kwargs)
    return PlanMutationPolicy(leaf_plan(4, 2), **defaults)


def test_plan_to_choice_is_inverse_of_choice_plan():
    for choice in (PlanChoice(8, 2), PlanChoice(1, 1),
                   PlanChoice(4, 2, delta=3.5e-05)):
        assert plan_to_choice(choice_plan(choice)) == choice
    with pytest.raises(ConfigError):
        plan_to_choice(plan(Persist()))


def test_frontier_starts_with_seed_and_provisioning_envelope():
    policy = _policy()
    frontier = policy.frontier()
    assert frontier[0] == leaf_plan(4, 2)
    choices = policy.candidates()
    # The envelope covers the widest reachable layout, so the
    # aggregator provisions QPs once for the whole walk.
    assert max(c.n_transport for c in choices) == 16
    assert max(c.n_qps for c in choices) == policy.qp_cap


def test_unplayed_frontier_is_swept_before_exploitation():
    policy = _policy()
    seen = []
    for rnd in range(len(policy.frontier())):
        choice = policy.choose(rnd)
        seen.append(choice_plan(choice).digest)
        policy.observe(choice, _obs(1.0 + rnd, rnd), None)
    assert seen == [p.digest for p in policy.frontier()[:len(seen)]]


def test_expansion_grows_frontier_around_the_incumbent():
    policy = _policy(expand_after=2)
    before = len(policy.frontier())
    for rnd in range(8):
        choice = policy.choose(rnd)
        # Plant plan (4, 2) as the winner.
        cost = 0.5 if choice == PlanChoice(4, 2) else 2.0
        policy.observe(choice, _obs(cost, rnd), None)
    assert len(policy.frontier()) > before
    assert policy.best() == PlanChoice(4, 2)


def test_converges_to_planted_optimum_and_reports_confident():
    policy = _policy(expand_after=2)
    target = PlanChoice(8, 2)
    for rnd in range(60):
        choice = policy.choose(rnd)
        cost = 0.1 if choice == target else 1.0
        policy.observe(choice, _obs(cost, rnd), None)
        if policy.confident:
            break
    assert policy.confident
    assert policy.best() == target
    assert policy.best_plan_ir() == choice_plan(target)
    assert policy.describe().startswith("plan-mutation(")


def test_foreign_choice_is_ignored_not_credited():
    policy = _policy()
    policy.observe(PlanChoice(1, 1), _obs(0.01), None)  # not in frontier
    assert all(policy.mean_cost(c) is None for c in policy.candidates())


def test_plan_space_digest_identifies_the_search_space():
    base = _policy()
    assert base.plan_space_digest() == _policy().plan_space_digest()
    assert base.plan_space_digest() != \
        _policy(deltas=(3.5e-05,)).plan_space_digest()
    assert base.plan_space_digest() != \
        _policy(qp_cap=1).plan_space_digest()
    other_seed = PlanMutationPolicy(leaf_plan(8, 2), n_user=N_USER,
                                    config=NIAGARA)
    assert base.plan_space_digest() != other_seed.plan_space_digest()


def test_parameter_validation():
    for bad in (dict(epsilon=1.5), dict(decay=0.0), dict(expand_after=0),
                dict(max_frontier=1)):
        with pytest.raises(ConfigError):
            _policy(**bad)


def test_plan_mutation_matches_or_beats_bandit_end_to_end():
    """The ISSUE acceptance check, at unit scale: on the same
    workload, the mutation walk's converged plan is at least as good
    as the grid bandit's."""
    iters = dict(iterations=40, warmup=2)
    bandit = run_autotuned_pair(
        {"policy": "bandit", "counts": [1, 4, 16], "bandit_seed": 1},
        n_user=N_USER, total_bytes=TOTAL, **iters)
    mutation = run_autotuned_pair(
        {"policy": "plan_mutation", "bandit_seed": 1},
        n_user=N_USER, total_bytes=TOTAL, **iters)
    assert mutation.explored
    assert mutation.best_plan_time <= bandit.best_plan_time * (1 + 1e-9)
