"""Tests for arrival-profile reports (Figs. 10-11 logic)."""

import pytest

from repro.config import NIAGARA
from repro.profiler import arrival_profile, early_bird_fraction
from repro.units import MiB


def test_profile_sorts_and_averages():
    rounds = [
        [3e-6, 1e-6, 4e-3],
        [1e-6, 3e-6, 4e-3],
    ]
    profile = arrival_profile(rounds, partition_size=1 * MiB)
    assert profile.compute_spans == (1e-6, 3e-6, 4e-3)
    assert profile.laggard_time == pytest.approx(4e-3)
    assert profile.comm_span == pytest.approx(1 * MiB / NIAGARA.nic.line_rate)


def test_empty_rounds_rejected():
    with pytest.raises(ValueError):
        arrival_profile([], partition_size=1024)


def test_medium_message_all_early():
    """Fig. 10: at 8 MiB / 32 partitions, every non-laggard partition
    transfers before the 4 ms laggard."""
    n = 32
    part = 8 * MiB // n
    rounds = [[0.0] * (n - 1) + [4e-3]]
    profile = arrival_profile(rounds, partition_size=part)
    assert early_bird_fraction(profile) == pytest.approx(1.0)


def test_large_message_partial_early():
    """Fig. 11: at 128 MiB / 32 partitions the wire only clears ~3/8
    of the early partitions within the 4 ms window."""
    n = 32
    part = 128 * MiB // n
    rounds = [[0.0] * (n - 1) + [4e-3]]
    profile = arrival_profile(rounds, partition_size=part)
    fraction = early_bird_fraction(profile)
    assert 0.2 < fraction < 0.55
    assert fraction == pytest.approx(3 / 8, abs=0.1)


def test_single_partition_has_no_early_bird():
    profile = arrival_profile([[1e-3]], partition_size=1024)
    assert early_bird_fraction(profile) == 0.0


def test_transfer_end_monotone():
    rounds = [[0.0, 1e-6, 2e-6, 1e-3]]
    profile = arrival_profile(rounds, partition_size=1 * MiB)
    ends = [profile.transfer_end(i) for i in range(4)]
    assert ends == sorted(ends)
