"""Tests for the PMPI-style profiler."""

import pytest

from repro.mem import PartitionedBuffer
from repro.mpi import Cluster
from repro.mpi.persist_module import PersistSpec
from repro.profiler import PMPIProfiler
from repro.units import KiB


def run_profiled(rounds=3, n_parts=4, stagger=1e-6):
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    profiler = PMPIProfiler()
    profiler.attach(s_proc)
    sbuf = PartitionedBuffer(n_parts, 1 * KiB, backed=False)
    rbuf = PartitionedBuffer(n_parts, 1 * KiB, backed=False)

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0, module=PersistSpec())
        for _ in range(rounds):
            yield from proc.start(req)
            for i in range(n_parts):
                yield proc.env.timeout(stagger)
                yield from proc.pready(req, i)
            yield from proc.wait_partitioned(req)

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0, module=PersistSpec())
        for _ in range(rounds):
            yield from proc.start(req)
            yield from proc.wait_partitioned(req)

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()
    return profiler


def test_records_one_round_per_start():
    profiler = run_profiled(rounds=3)
    assert len(profiler.rounds) == 3
    assert [r.round_index for r in profiler.rounds] == [0, 1, 2]


def test_records_all_preadys():
    profiler = run_profiled(n_parts=4)
    for record in profiler.completed_rounds():
        assert sorted(record.pready) == [0, 1, 2, 3]
        assert record.t_complete is not None
        assert record.t_complete >= max(record.pready.values())


def test_relative_times_start_from_start():
    # Skip round 0: its Start blocks on the async QP exchange, which is
    # (correctly) charged to the program's time-in-Start.
    profiler = run_profiled(rounds=2, stagger=2e-6)
    record = profiler.completed_rounds(skip=1)[0]
    rel = record.relative_pready_times()
    assert rel[0] == pytest.approx(2e-6, rel=0.5)
    # Staggered 2us apart plus per-call processing.
    for a, b in zip(rel, rel[1:]):
        assert 2e-6 <= b - a < 4e-6


def test_arrival_rounds_shape():
    profiler = run_profiled(rounds=4, n_parts=4)
    rounds = profiler.arrival_rounds(skip=1)
    assert len(rounds) == 3
    assert all(len(r) == 4 for r in rounds)


def test_attach_is_idempotent():
    cluster = Cluster(n_nodes=2)
    proc = cluster.add_process()
    profiler = PMPIProfiler()
    profiler.attach(proc)
    wrapped = proc.start
    profiler.attach(proc)
    assert proc.start is wrapped


def test_profiling_does_not_change_timing():
    t_profiled = None
    t_plain = None
    for profiled in (True, False):
        cluster = Cluster(n_nodes=2)
        s_proc, r_proc = cluster.ranks(2)
        if profiled:
            PMPIProfiler().attach(s_proc)
        sbuf = PartitionedBuffer(4, 1 * KiB, backed=False)
        rbuf = PartitionedBuffer(4, 1 * KiB, backed=False)

        def sender(proc):
            req = proc.psend_init(sbuf, dest=1, tag=0, module=PersistSpec())
            yield from proc.start(req)
            for i in range(4):
                yield from proc.pready(req, i)
            yield from proc.wait_partitioned(req)

        def receiver(proc):
            req = proc.precv_init(rbuf, source=0, tag=0, module=PersistSpec())
            yield from proc.start(req)
            yield from proc.wait_partitioned(req)

        cluster.spawn(sender(s_proc))
        cluster.spawn(receiver(r_proc))
        cluster.run()
        if profiled:
            t_profiled = cluster.env.now
        else:
            t_plain = cluster.env.now
    assert t_profiled == pytest.approx(t_plain)
