"""Tests for the PMPI-style profiler."""

import pytest

from repro.mem import PartitionedBuffer
from repro.mpi import Cluster
from repro.mpi.persist_module import PersistSpec
from repro.profiler import PMPIProfiler
from repro.units import KiB


def run_profiled(rounds=3, n_parts=4, stagger=1e-6):
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    profiler = PMPIProfiler()
    profiler.attach(s_proc)
    sbuf = PartitionedBuffer(n_parts, 1 * KiB, backed=False)
    rbuf = PartitionedBuffer(n_parts, 1 * KiB, backed=False)

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0, module=PersistSpec())
        for _ in range(rounds):
            yield from proc.start(req)
            for i in range(n_parts):
                yield proc.env.timeout(stagger)
                yield from proc.pready(req, i)
            yield from proc.wait_partitioned(req)

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0, module=PersistSpec())
        for _ in range(rounds):
            yield from proc.start(req)
            yield from proc.wait_partitioned(req)

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()
    return profiler


def test_records_one_round_per_start():
    profiler = run_profiled(rounds=3)
    assert len(profiler.rounds) == 3
    assert [r.round_index for r in profiler.rounds] == [0, 1, 2]


def test_records_all_preadys():
    profiler = run_profiled(n_parts=4)
    for record in profiler.completed_rounds():
        assert sorted(record.pready) == [0, 1, 2, 3]
        assert record.t_complete is not None
        assert record.t_complete >= max(record.pready.values())


def test_relative_times_start_from_start():
    # Skip round 0: its Start blocks on the async QP exchange, which is
    # (correctly) charged to the program's time-in-Start.
    profiler = run_profiled(rounds=2, stagger=2e-6)
    record = profiler.completed_rounds(skip=1)[0]
    rel = record.relative_pready_times()
    assert rel[0] == pytest.approx(2e-6, rel=0.5)
    # Staggered 2us apart plus per-call processing.
    for a, b in zip(rel, rel[1:]):
        assert 2e-6 <= b - a < 4e-6


def test_arrival_rounds_shape():
    profiler = run_profiled(rounds=4, n_parts=4)
    rounds = profiler.arrival_rounds(skip=1)
    assert len(rounds) == 3
    assert all(len(r) == 4 for r in rounds)


def test_attach_is_idempotent():
    cluster = Cluster(n_nodes=2)
    proc = cluster.add_process()
    profiler = PMPIProfiler()
    profiler.attach(proc)
    wrapped = proc.start
    profiler.attach(proc)
    assert proc.start is wrapped


def test_profiling_does_not_change_timing():
    t_profiled = None
    t_plain = None
    for profiled in (True, False):
        cluster = Cluster(n_nodes=2)
        s_proc, r_proc = cluster.ranks(2)
        if profiled:
            PMPIProfiler().attach(s_proc)
        sbuf = PartitionedBuffer(4, 1 * KiB, backed=False)
        rbuf = PartitionedBuffer(4, 1 * KiB, backed=False)

        def sender(proc):
            req = proc.psend_init(sbuf, dest=1, tag=0, module=PersistSpec())
            yield from proc.start(req)
            for i in range(4):
                yield from proc.pready(req, i)
            yield from proc.wait_partitioned(req)

        def receiver(proc):
            req = proc.precv_init(rbuf, source=0, tag=0, module=PersistSpec())
            yield from proc.start(req)
            yield from proc.wait_partitioned(req)

        cluster.spawn(sender(s_proc))
        cluster.spawn(receiver(r_proc))
        cluster.run()
        if profiled:
            t_profiled = cluster.env.now
        else:
            t_plain = cluster.env.now
    assert t_profiled == pytest.approx(t_plain)


# ---------------------------------------------------------------------------
# partitioned collectives
# ---------------------------------------------------------------------------


def run_coll_profiled(rounds=2, n_parts=4, world=3):
    """Profile rank 0 of a neighbor-alltoall; returns the profiler."""
    cluster = Cluster(n_nodes=world)
    procs = cluster.ranks(world)
    profiler = PMPIProfiler()
    profiler.attach(procs[0])

    def program(proc):
        others = [r for r in range(world) if r != proc.rank]
        send_bufs = {n: PartitionedBuffer(n_parts, 1 * KiB, backed=False)
                     for n in others}
        recv_bufs = {n: PartitionedBuffer(n_parts, 1 * KiB, backed=False)
                     for n in others}
        coll = proc.pneighbor_alltoall_init(send_bufs, recv_bufs, None)
        for _ in range(rounds):
            yield from proc.pcoll_start(coll)
            for p in range(n_parts):
                yield proc.env.timeout(1e-6)
                yield from proc.pcoll_pready(coll, p)
            yield from proc.pcoll_wait(coll)

    for proc in procs:
        cluster.spawn(program(proc))
    cluster.run()
    return profiler


def test_collective_rounds_recorded():
    profiler = run_coll_profiled(rounds=2)
    rounds = profiler.completed_coll_rounds()
    assert len(rounds) == 2
    assert [r.round_index for r in rounds] == [0, 1]
    assert all(r.coll_name == "coll.neighbor" for r in rounds)
    for record in rounds:
        assert sorted(record.pready) == [0, 1, 2, 3]
        assert record.t_complete >= max(record.pready.values())


def test_collective_neighbor_timelines():
    profiler = run_coll_profiled(rounds=1, world=3)
    record = profiler.completed_coll_rounds()[0]
    # Rank 0's outgoing edges: one per neighbor, each with a full
    # per-partition MPI_Pready timeline.
    assert sorted(record.neighbor_pready) == [1, 2]
    for times in record.neighbor_pready.values():
        assert len(times) == 4
        assert all(t is not None for t in times)
    spreads = record.neighbor_spread()
    assert all(s is not None and s >= 0 for s in spreads.values())


def test_collective_member_requests_also_profiled():
    """The collective's member pairs surface as point-to-point rounds."""
    profiler = run_coll_profiled(rounds=1, world=3)
    # 2 sends + 2 recvs on rank 0, one Start each.
    assert len(profiler.rounds) == 4


# ---------------------------------------------------------------------------
# ladder visibility (chaos: rung transitions show up round by round)
# ---------------------------------------------------------------------------


def test_rounds_carry_the_serving_module():
    profiler = run_profiled(rounds=2)
    for record in profiler.completed_rounds():
        assert record.module == "part_persist"
        assert record.level is None  # no ladder on this edge


def test_collective_rounds_carry_neighbor_modules():
    profiler = run_coll_profiled(rounds=1, world=3)
    record = profiler.completed_coll_rounds()[0]
    assert sorted(record.neighbor_modules) == [1, 2]
    assert set(record.neighbor_modules.values()) == {"part_persist"}
    assert set(record.neighbor_levels.values()) == {None}


def test_ladder_rounds_report_rung_and_level():
    from repro.core import FixedAggregation, NativeSpec
    from repro.mpi.channel_module import ChannelSpec
    from repro.mpi.ladder import LadderSpec

    spec = lambda: LadderSpec([NativeSpec(FixedAggregation(2, 1)),
                               ChannelSpec()])
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    profiler = PMPIProfiler()
    profiler.attach(s_proc)
    sbuf = PartitionedBuffer(4, 1 * KiB, backed=True)
    rbuf = PartitionedBuffer(4, 1 * KiB, backed=True)

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0, module=spec())
        yield from proc.start(req)
        for i in range(4):
            yield from proc.pready(req, i)
        yield from proc.wait_partitioned(req)

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0, module=spec())
        yield from proc.start(req)
        yield from proc.wait_partitioned(req)

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()
    record = profiler.completed_rounds()[0]
    assert record.module == "native_verbs"
    assert record.level == 0
