"""Cross-module integration and property-based tests.

Drives the full stack — simulated threads calling MPI Partitioned over
the verbs substrate — with randomized workloads, verifying byte-exact
delivery and timing invariants across every module/aggregator
combination.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    FixedAggregation,
    NativeSpec,
    PLogGPAggregator,
    TimerPLogGPAggregator,
)
from repro.mem import PartitionedBuffer
from repro.model.tables import NIAGARA_LOGGP
from repro.mpi import Cluster
from repro.mpi.persist_module import PersistSpec
from repro.runtime import ComputePhase, SingleThreadDelay, WorkerTeam
from repro.units import KiB, ms, us


def drive(spec_factory, n_parts, psize, rounds, order_seed=0,
          compute=0.0, noise=0.0):
    """Full-stack run with shuffled pready order; returns buffers."""
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    sbuf = PartitionedBuffer(n_parts, psize)
    rbuf = PartitionedBuffer(n_parts, psize)
    rng = np.random.default_rng(order_seed)

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0, module=spec_factory())
        team = WorkerTeam(proc.env, n_parts,
                          cluster.rngs.stream("noise"), cores=40)
        phase = ComputePhase(compute=compute,
                             noise=SingleThreadDelay(noise))
        for rnd in range(rounds):
            sbuf.fill_pattern(seed=rnd * 31 + 1)
            yield from proc.start(req)
            order = rng.permutation(n_parts)
            mapping = {tid: int(order[tid]) for tid in range(n_parts)}
            yield team.run_round(
                phase, lambda tid: proc.pready(req, mapping[tid]))
            yield from proc.wait_partitioned(req)

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0, module=spec_factory())
        for rnd in range(rounds):
            yield from proc.start(req)
            yield from proc.wait_partitioned(req)
            expected = rbuf.expected_pattern(0, rbuf.nbytes, seed=rnd * 31 + 1)
            assert np.array_equal(rbuf.data, expected), f"round {rnd}"

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()
    return sbuf, rbuf


SPECS = {
    "persist": PersistSpec,
    "native-full-agg": lambda: NativeSpec(FixedAggregation(1, 1)),
    "native-no-agg": lambda: NativeSpec(FixedAggregation(16, 2)),
    "native-ploggp": lambda: NativeSpec(
        PLogGPAggregator(NIAGARA_LOGGP, delay=ms(4))),
    "native-timer": lambda: NativeSpec(
        TimerPLogGPAggregator(NIAGARA_LOGGP, delay=ms(4), delta=us(20))),
    "native-timer-sg": lambda: NativeSpec(
        TimerPLogGPAggregator(NIAGARA_LOGGP, delay=ms(4), delta=us(20),
                              scatter_gather=True)),
}


@pytest.mark.parametrize("name", list(SPECS))
def test_every_module_delivers_exact_bytes(name):
    drive(SPECS[name], n_parts=16, psize=4 * KiB, rounds=3,
          compute=ms(0.2), noise=0.05)


@given(
    n_parts=st.sampled_from([2, 4, 8, 16]),
    psize_exp=st.integers(min_value=7, max_value=16),
    order_seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_workloads_persist(n_parts, psize_exp, order_seed):
    drive(PersistSpec, n_parts=n_parts, psize=2**psize_exp, rounds=2,
          order_seed=order_seed)


@given(
    n_parts=st.sampled_from([2, 4, 8, 16]),
    psize_exp=st.integers(min_value=7, max_value=16),
    n_transport_log=st.integers(min_value=0, max_value=4),
    order_seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_workloads_native(n_parts, psize_exp, n_transport_log,
                                 order_seed):
    n_transport = min(2**n_transport_log, n_parts)
    drive(lambda: NativeSpec(FixedAggregation(n_transport, 2)),
          n_parts=n_parts, psize=2**psize_exp, rounds=2,
          order_seed=order_seed)


@given(
    delta_us=st.floats(min_value=1.0, max_value=200.0),
    order_seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_timer_deltas(delta_us, order_seed):
    spec = lambda: NativeSpec(TimerPLogGPAggregator(
        NIAGARA_LOGGP, delay=ms(4), delta=delta_us * 1e-6))
    drive(spec, n_parts=8, psize=8 * KiB, rounds=2,
          order_seed=order_seed, compute=ms(0.1), noise=0.1)


def test_simulation_is_deterministic_end_to_end():
    """Two identical full-stack runs produce identical virtual times."""
    def run():
        cluster = Cluster(n_nodes=2)
        s_proc, r_proc = cluster.ranks(2)
        sbuf = PartitionedBuffer(8, 4 * KiB, backed=False)
        rbuf = PartitionedBuffer(8, 4 * KiB, backed=False)
        times = []

        def sender(proc):
            req = proc.psend_init(sbuf, dest=1, tag=0,
                                  module=PersistSpec())
            team = WorkerTeam(proc.env, 8,
                              cluster.rngs.stream("noise"), cores=40)
            phase = ComputePhase(compute=ms(1),
                                 noise=SingleThreadDelay(0.04))
            for _ in range(3):
                yield from proc.start(req)
                yield team.run_round(phase, lambda tid: proc.pready(req, tid))
                yield from proc.wait_partitioned(req)
                times.append(proc.env.now)

        def receiver(proc):
            req = proc.precv_init(rbuf, source=0, tag=0,
                                  module=PersistSpec())
            for _ in range(3):
                yield from proc.start(req)
                yield from proc.wait_partitioned(req)

        cluster.spawn(sender(s_proc))
        cluster.spawn(receiver(r_proc))
        cluster.run()
        return times

    assert run() == run()
