"""Whole-config overrides travel through scenarios as JSON descriptors."""

from dataclasses import replace

import pytest

from repro.config import NIAGARA
from repro.exp.experiments import PERSIST, _overhead
from repro.exp.modules import build_config, config_desc


def test_round_trip_is_lossless():
    assert build_config(config_desc(NIAGARA)) == NIAGARA
    assert config_desc(None) is None
    assert build_config(None) is None


def test_non_default_sections_survive():
    cfg = replace(NIAGARA, nic=replace(NIAGARA.nic, n_ports=2), seed=7)
    rebuilt = build_config(config_desc(cfg))
    assert rebuilt.nic.n_ports == 2
    assert rebuilt.seed == 7
    assert rebuilt == cfg


def test_build_config_validates():
    desc = config_desc(NIAGARA)
    desc["seed"] = -1
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        build_config(desc)


def test_overhead_helper_converts_live_config():
    """Legacy scripts pass config=ClusterConfig in their kwargs dicts
    (e.g. the multi-rail test); the spec layer must serialise it."""
    cfg = replace(NIAGARA, nic=replace(NIAGARA.nic, n_ports=2))
    it = {"iterations": 2, "warmup": 1, "config": cfg}
    point = _overhead(PERSIST, 4, 4096, it)
    desc = point.params["config"]
    assert isinstance(desc, dict)
    assert desc["nic"]["n_ports"] == 2
    # Without a config the param is absent, keeping digests (and the
    # checked-in goldens) stable.
    plain = _overhead(PERSIST, 4, 4096, {"iterations": 2, "warmup": 1})
    assert "config" not in plain.params
