"""Determinism guard: serial and parallel runs are bit-identical.

Every sweep point builds its own cluster with config-seeded RNG
streams, so a result is a pure function of (scenario, code).  The
harness leans on that for everything — caching, resume, fan-out — so
this test holds it to the strongest possible standard: the fig. 6 and
fig. 8 mini-sweeps must produce byte-for-byte identical payloads under
``jobs=1`` and ``jobs=4`` (arbitrary completion order), and both must
equal the checked-in goldens from ``tests/test_bench``.  Floats are
compared through ``float.hex`` — no tolerance.
"""

import json

import pytest

from benchmarks.common import FAST_PTP, OVERHEAD_SIZES_FAST
from repro.exp import run_spec
from repro.exp.experiments import FIG08_SIZES_FAST, fig06_spec, fig08_spec
from tests.test_bench.test_golden import encode, load


def canonical_series(payload):
    return json.loads(json.dumps(encode(payload["series"])))


@pytest.mark.parametrize("name,spec", [
    ("fig06_mini.json",
     fig06_spec(OVERHEAD_SIZES_FAST, FAST_PTP)),
    ("fig08_mini.json",
     fig08_spec([4, 32], list(FIG08_SIZES_FAST), FAST_PTP, 3)),
], ids=["fig06", "fig08"])
def test_mini_sweep_serial_parallel_and_golden_agree(name, spec):
    serial = canonical_series(run_spec(spec, jobs=1, cache=None))
    parallel = canonical_series(run_spec(spec, jobs=4, cache=None))
    assert serial == parallel
    assert serial == load(name)
