"""Unit tests for the derived metrics on bench.sweep.SweepResult.

The harness's ``sweep`` kind reports ``mean_comm_time`` and
``critical_path_compute`` straight off this dataclass (fig. 14 divides
the former), so their algebra is pinned here with hand-computable
numbers, independent of any simulation.
"""

import pytest

from repro.bench.sweep import SweepResult


def make_result(grid=(4, 3), compute=2.0, times=()):
    return SweepResult(grid=grid, n_threads=4, total_bytes=1 << 20,
                       compute=compute, noise_fraction=0.0,
                       times=list(times))


def test_critical_path_is_manhattan_distance_times_compute():
    # A (px x py) wavefront has px + py - 1 stages on the critical path.
    assert make_result(grid=(4, 3), compute=2.0).critical_path_compute \
        == pytest.approx((4 + 3 - 1) * 2.0)
    assert make_result(grid=(1, 1), compute=5.0).critical_path_compute \
        == pytest.approx(5.0)
    assert make_result(grid=(8, 8), compute=1e-3).critical_path_compute \
        == pytest.approx(15e-3)


def test_mean_time_is_plain_average():
    result = make_result(times=[10.0, 14.0, 18.0])
    assert result.mean_time == pytest.approx(14.0)


def test_mean_comm_time_subtracts_compute_critical_path():
    # grid (4, 3), compute 2.0 -> critical path 12.0 of pure compute;
    # whatever remains of each iteration is communication.
    result = make_result(grid=(4, 3), compute=2.0,
                         times=[13.0, 15.0, 17.0])
    assert result.mean_comm_time == pytest.approx(3.0)
    assert result.mean_comm_time == pytest.approx(
        result.mean_time - result.critical_path_compute)


def test_comm_time_invariant_under_compute_shift():
    """Inflating compute while shifting every sample by the same
    critical-path amount leaves the communication estimate unchanged."""
    base = make_result(grid=(4, 3), compute=1.0, times=[7.0, 9.0])
    shift = (4 + 3 - 1) * 1.0  # extra critical path from compute 1 -> 2
    shifted = make_result(grid=(4, 3), compute=2.0,
                          times=[7.0 + shift, 9.0 + shift])
    assert shifted.mean_comm_time == pytest.approx(base.mean_comm_time)
