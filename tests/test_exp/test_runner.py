"""Runner semantics: dedup, stats, cache resume, watchdog, invalidation."""

import multiprocessing
import time

import pytest

from repro.exp.cache import ResultCache
from repro.exp.kinds import KINDS, kind
from repro.exp.runner import Runner
from repro.exp.spec import Scenario

CHEAP = dict(n_user=4, total_bytes=4096, module=["persist"],
             iterations=2, warmup=1)


def cheap_point(**overrides):
    params = dict(CHEAP)
    params.update(overrides)
    return Scenario.make("overhead", **params)


def test_rejects_zero_jobs():
    with pytest.raises(ValueError):
        Runner(jobs=0)


def test_duplicates_executed_once():
    a = cheap_point()
    b = cheap_point(total_bytes=8192)
    runner = Runner(jobs=1)
    results = runner.run([a, b, a, a])
    stats = runner.last_stats
    assert stats.points == 4
    assert stats.unique == 2
    assert stats.executed == 2
    assert set(results) == {a, b}
    assert results[a]["mean_time"] > 0


def test_resume_is_pure_cache_read(tmp_path):
    points = [cheap_point(), cheap_point(total_bytes=8192)]
    cache = ResultCache(tmp_path)
    first = Runner(jobs=1, cache=cache, fingerprint="fp").run(points)

    resumed_runner = Runner(jobs=1, cache=cache, fingerprint="fp")
    resumed = resumed_runner.run(points)
    stats = resumed_runner.last_stats
    assert stats.cache_hits == 2
    assert stats.executed == 0
    assert resumed == first


def test_partial_cache_resumes_only_missing(tmp_path):
    a, b = cheap_point(), cheap_point(total_bytes=8192)
    cache = ResultCache(tmp_path)
    Runner(jobs=1, cache=cache, fingerprint="fp").run([a])

    runner = Runner(jobs=1, cache=cache, fingerprint="fp")
    runner.run([a, b])
    assert runner.last_stats.cache_hits == 1
    assert runner.last_stats.executed == 1


def test_fingerprint_change_re_executes(tmp_path):
    point = cheap_point()
    cache = ResultCache(tmp_path)
    Runner(jobs=1, cache=cache, fingerprint="code-v1").run([point])

    runner = Runner(jobs=1, cache=cache, fingerprint="code-v2")
    runner.run([point])
    assert runner.last_stats.cache_hits == 0
    assert runner.last_stats.executed == 1


def test_empty_cache_uses_real_fingerprint(tmp_path):
    """Regression: an empty ResultCache is falsy (len == 0); the runner
    must still key it by the code fingerprint, not the '' fallback, or
    the first write and every later read disagree and resume never hits."""
    cache = ResultCache(tmp_path)
    assert len(cache) == 0
    runner = Runner(jobs=1, cache=cache)
    assert runner.fingerprint != ""


def test_progress_callback_sees_runs():
    notes = []
    runner = Runner(jobs=1, progress=notes.append)
    runner.run([cheap_point()])
    assert any("run 1/1" in note for note in notes)


# -- wall-clock watchdog on pooled workers -----------------------------


def test_rejects_non_positive_timeout():
    with pytest.raises(ValueError):
        Runner(timeout=0)


@pytest.mark.skipif(multiprocessing.get_start_method() != "fork",
                    reason="hang kind is registered in-process; workers "
                           "must inherit it via fork")
def test_watchdog_kills_hung_worker_and_finishes_the_rest():
    @kind("test_hang")
    def _hang(p):
        if p["hang"]:
            time.sleep(60)
        return {"value": p["seed"]}

    quick = [Scenario.make("test_hang", hang=False, seed=s) for s in (1, 2)]
    hung = Scenario.make("test_hang", hang=True, seed=99)
    notes = []
    try:
        runner = Runner(jobs=2, timeout=1.0, progress=notes.append)
        results = runner.run(quick + [hung])
    finally:
        KINDS.pop("test_hang")
    # The quick points all completed (some possibly in the fresh pool
    # spun up after the kill) and the hung one was reported, not waited
    # on forever.
    assert all(results[p] == {"value": p.params["seed"]} for p in quick)
    assert hung not in results
    errors = runner.last_stats.errors
    assert len(errors) == 1
    assert errors[0]["kind"] == "test_hang"
    assert errors[0]["params"]["seed"] == 99
    assert "watchdog" in errors[0]["error"]
    assert any("WATCHDOG" in note for note in notes)
