"""Result cache: hit/miss semantics, atomicity, fingerprint invalidation."""

import json

from repro.exp.cache import ResultCache
from repro.exp.spec import Scenario


def make_point(**params):
    return Scenario.make("overhead", **params)


def test_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    point = make_point(n_user=32)
    digest = point.digest("fp")
    assert cache.get(digest) is None
    cache.put(digest, point, "fp", {"mean_time": 1.5})
    assert cache.get(digest) == {"mean_time": 1.5}
    assert len(cache) == 1


def test_fingerprint_change_invalidates(tmp_path):
    cache = ResultCache(tmp_path)
    point = make_point(n_user=32)
    cache.put(point.digest("code-v1"), point, "code-v1",
              {"mean_time": 1.5})
    assert cache.get(point.digest("code-v2")) is None
    assert cache.get(point.digest("code-v1")) == {"mean_time": 1.5}


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    point = make_point(n_user=32)
    digest = point.digest("fp")
    cache.put(digest, point, "fp", {"mean_time": 1.5})
    cache.path(digest).write_text("{not json", encoding="utf-8")
    assert cache.get(digest) is None


def test_schema_mismatch_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    point = make_point(n_user=32)
    digest = point.digest("fp")
    cache.put(digest, point, "fp", {"mean_time": 1.5})
    entry = json.loads(cache.path(digest).read_text(encoding="utf-8"))
    entry["schema"] = "someone-else/v9"
    cache.path(digest).write_text(json.dumps(entry), encoding="utf-8")
    assert cache.get(digest) is None


def test_put_is_atomic_no_tmp_left_behind(tmp_path):
    cache = ResultCache(tmp_path)
    point = make_point(n_user=32)
    cache.put(point.digest("fp"), point, "fp", {"mean_time": 1.5})
    leftovers = [p for p in tmp_path.iterdir() if p.suffix != ".json"]
    assert leftovers == []


def test_floats_round_trip_bit_exactly(tmp_path):
    cache = ResultCache(tmp_path)
    point = make_point(n_user=32)
    digest = point.digest("fp")
    value = 1.0 / 3.0
    cache.put(digest, point, "fp", {"mean_time": value})
    assert cache.get(digest)["mean_time"].hex() == value.hex()


def test_missing_directory_created_lazily(tmp_path):
    cache = ResultCache(tmp_path / "deep" / "cache")
    point = make_point(n_user=32)
    assert cache.get(point.digest("fp")) is None
    cache.put(point.digest("fp"), point, "fp", {"mean_time": 2.0})
    assert cache.get(point.digest("fp")) == {"mean_time": 2.0}
