"""End-to-end tests for the `repro-bench bench` command group."""

import json

import pytest

from repro.cli import main
from repro.exp import RESULT_SCHEMA, experiment_names


def test_bench_list_names_every_experiment(capsys):
    assert main(["bench", "list"]) == 0
    out = capsys.readouterr().out
    for name in experiment_names():
        assert name in out


def test_bench_list_points_adds_counts(capsys):
    assert main(["bench", "list", "--points"]) == 0
    out = capsys.readouterr().out
    assert "fast pts" in out
    assert "paper pts" in out


def test_bench_run_unknown_experiment_rejected():
    with pytest.raises(SystemExit, match="unknown experiment"):
        main(["bench", "run", "nope", "--no-store", "--no-cache"])


def test_bench_run_writes_artifacts_and_caches(tmp_path, capsys):
    argv = ["bench", "run", "table1", "--profile", "fast", "--quiet",
            "--cache-dir", str(tmp_path / "cache"),
            "--results-dir", str(tmp_path / "results"),
            "--bench-dir", str(tmp_path)]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "== table1:" in out
    assert "[fast]" in out

    bench_path = tmp_path / "BENCH_table1.json"
    full_path = tmp_path / "results" / "table1.json"
    assert bench_path.exists() and full_path.exists()
    doc = json.loads(bench_path.read_text(encoding="utf-8"))
    assert doc["schema"] == RESULT_SCHEMA
    assert doc["experiment"] == "table1"

    # Re-run is a pure cache read.
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "1 cached, 0 executed" in out


def test_bench_compare_gates_on_regression(tmp_path, capsys):
    argv = ["bench", "run", "table1", "--profile", "fast", "--quiet",
            "--no-cache", "--results-dir", str(tmp_path / "results"),
            "--bench-dir", str(tmp_path)]
    assert main(argv) == 0
    capsys.readouterr()
    artifact = tmp_path / "BENCH_table1.json"

    # Self-compare passes...
    assert main(["bench", "compare", str(artifact), str(artifact)]) == 0
    assert "OK" in capsys.readouterr().out

    # ...and a >10% drop on a higher-is-better metric fails.
    doc = json.loads(artifact.read_text(encoding="utf-8"))
    doc["metric"]["higher_is_better"] = True
    worse = {
        label: ({k: v * 0.5 if isinstance(v, (int, float)) else v
                 for k, v in values.items()}
                if isinstance(values, dict)
                else values * 0.5 if isinstance(values, (int, float))
                else values)
        for label, values in doc["series"].items()
    }
    regressed = tmp_path / "BENCH_table1_regressed.json"
    regressed.write_text(
        json.dumps(dict(doc, series=worse)), encoding="utf-8")
    assert main(["bench", "compare", str(regressed), str(artifact)]) == 1
    assert "REGRESSION" in capsys.readouterr().out
