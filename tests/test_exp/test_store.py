"""Result artifacts and the regression-compare gate."""

import json

import pytest

from repro.exp.store import (
    RESULT_SCHEMA,
    ResultStore,
    compare_results,
    load_result,
)


def artifact(series, higher_is_better=True, experiment="fig06"):
    return {
        "schema": RESULT_SCHEMA,
        "experiment": experiment,
        "metric": {"name": "speedup", "unit": "x",
                   "higher_is_better": higher_is_better},
        "series": series,
    }


def test_write_emits_results_and_bench_artifacts(tmp_path):
    store = ResultStore(results_dir=tmp_path / "results",
                        bench_dir=tmp_path)
    paths = store.write(
        "fig06", {"series": {"T=2": {"65536": 1.5}}, "sizes": [65536]},
        profile="fast", fingerprint="fp",
        metric={"name": "speedup", "unit": "x", "higher_is_better": True},
        stats={"executed": 1}, elapsed=0.5)
    assert [p.name for p in paths] == ["fig06.json", "BENCH_fig06.json"]

    full = load_result(tmp_path / "results" / "fig06.json")
    bench = load_result(tmp_path / "BENCH_fig06.json")
    for doc in (full, bench):
        assert doc["schema"] == RESULT_SCHEMA
        assert doc["experiment"] == "fig06"
        assert doc["profile"] == "fast"
        assert doc["code_fingerprint"] == "fp"
        assert doc["series"] == {"T=2": {"65536": 1.5}}
        assert doc["run"] == {"executed": 1}
        assert doc["elapsed_s"] == 0.5
    # Extra payload keys ride only in the full artifact.
    assert full["extra"] == {"sizes": [65536]}
    assert "extra" not in bench


def test_load_result_rejects_foreign_schema(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text(json.dumps({"schema": "other/v1"}), encoding="utf-8")
    with pytest.raises(ValueError, match="repro-bench/v1"):
        load_result(path)


def test_self_compare_is_clean():
    doc = artifact({"T=2": {"65536": 1.5, "262144": 2.0}})
    report = compare_results(doc, doc)
    assert report.ok
    assert report.unchanged == 2
    assert not report.regressions and not report.improvements
    assert "OK" in report.format()


def test_regression_direction_higher_is_better():
    old = artifact({"T=2": {"65536": 2.0}})
    worse = artifact({"T=2": {"65536": 1.0}})
    better = artifact({"T=2": {"65536": 4.0}})
    assert not compare_results(worse, old).ok
    report = compare_results(better, old)
    assert report.ok and len(report.improvements) == 1


def test_regression_direction_lower_is_better():
    old = artifact({"time": {"65536": 1.0}}, higher_is_better=False)
    slower = artifact({"time": {"65536": 2.0}}, higher_is_better=False)
    faster = artifact({"time": {"65536": 0.5}}, higher_is_better=False)
    assert not compare_results(slower, old).ok
    assert compare_results(faster, old).ok


def test_threshold_boundary_inclusive():
    old = artifact({"T=2": {"65536": 1.0}})
    at_threshold = artifact({"T=2": {"65536": 0.9}})
    past_threshold = artifact({"T=2": {"65536": 0.89}})
    assert compare_results(at_threshold, old, threshold=0.10).ok
    report = compare_results(past_threshold, old, threshold=0.10)
    assert len(report.regressions) == 1
    assert report.regressions[0].change == pytest.approx(-0.11)
    assert "REGRESSION" in report.format()
    assert "FAIL" in report.format()


def test_missing_series_and_keys_fail():
    old = artifact({"T=2": {"65536": 1.0, "262144": 2.0},
                    "T=8": {"65536": 1.0}})
    new = artifact({"T=2": {"65536": 1.0}})
    report = compare_results(new, old)
    assert not report.ok
    assert "T=8" in report.missing
    assert "T=2 @ 262144" in report.missing


def test_new_coverage_is_not_a_regression():
    old = artifact({"T=2": {"65536": 1.0}})
    new = artifact({"T=2": {"65536": 1.0, "262144": 2.0},
                    "T=8": {"65536": 1.0}})
    assert compare_results(new, old).ok


def test_scalar_series_values_compare():
    old = artifact({"early fraction": 0.5})
    worse = artifact({"early fraction": 0.2})
    assert compare_results(old, old).ok
    assert not compare_results(worse, old).ok
