"""Scenario hashing, canonical encoding, grids and dedup."""

import pytest

from repro.exp.spec import Scenario, canonical, dedup, grid


def test_canonical_is_order_insensitive():
    assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})


def test_canonical_normalizes_tuples_to_lists():
    assert (canonical({"sizes": (1, 2, 3)})
            == canonical({"sizes": [1, 2, 3]}))


def test_canonical_rejects_live_objects():
    class Thing:
        pass

    with pytest.raises(TypeError, match="not\\s+JSON-safe"):
        canonical({"module": Thing()})


def test_scenarios_with_equal_params_are_equal_and_hash_equal():
    a = Scenario.make("overhead", n_user=32, total_bytes=4096)
    b = Scenario.make("overhead", total_bytes=4096, n_user=32)
    assert a == b
    assert hash(a) == hash(b)
    assert a.digest() == b.digest()


def test_params_round_trip():
    point = Scenario.make("perceived", module=["ploggp", {"delay": 0.004}],
                          noise_fraction=0.04)
    assert point.params == {"module": ["ploggp", {"delay": 0.004}],
                            "noise_fraction": 0.04}
    assert point.as_dict()["kind"] == "perceived"


def test_digest_depends_on_kind_params_and_fingerprint():
    a = Scenario.make("overhead", n_user=32)
    assert a.digest() != Scenario.make("perceived", n_user=32).digest()
    assert a.digest() != Scenario.make("overhead", n_user=16).digest()
    assert a.digest("code-v1") != a.digest("code-v2")
    assert a.digest("code-v1") == a.digest("code-v1")


def test_float_params_round_trip_bit_exactly():
    value = 0.1 + 0.2  # not representable prettily
    point = Scenario.make("overhead", compute=value)
    assert point.params["compute"].hex() == value.hex()


def test_grid_is_cartesian_product_in_axis_order():
    points = grid("overhead", {"n_user": 32},
                  total_bytes=[1, 2], module=[["persist"], ["ploggp"]])
    assert len(points) == 4
    assert points[0].params == {"n_user": 32, "total_bytes": 1,
                                "module": ["persist"]}
    # Last axis varies fastest.
    assert points[1].params["module"] == ["ploggp"]
    assert points[2].params["total_bytes"] == 2


def test_dedup_keeps_first_seen_order():
    a = Scenario.make("overhead", n_user=1)
    b = Scenario.make("overhead", n_user=2)
    assert dedup([a, b, a, b, a]) == [a, b]
