"""Tests for terminal visualization."""

import pytest

from repro.viz import bar_chart, grouped_bars, timeline


def test_bar_chart_scales_to_peak():
    out = bar_chart({"a": 1.0, "b": 2.0}, width=10)
    lines = out.splitlines()
    assert len(lines) == 2
    assert lines[1].count("█") == 10       # peak fills the width
    assert 4 <= lines[0].count("█") <= 5   # half of peak


def test_bar_chart_values_printed():
    out = bar_chart({"x": 1.5}, unit="GiB/s")
    assert "1.5GiB/s" in out


def test_bar_chart_reference_marker():
    out = bar_chart({"a": 10.0, "b": 100.0}, width=20, reference=50.0)
    assert "┆" in out  # marker on the shorter bar's idle region


def test_bar_chart_empty():
    assert bar_chart({}) == "(no data)"


def test_bar_chart_zero_values():
    out = bar_chart({"a": 0.0, "b": 0.0})
    assert "█" not in out


def test_grouped_bars_layout():
    series = {
        "64KiB": {"ploggp": 2.0, "timer": 1.8},
        "4MiB": {"ploggp": 1.0},
    }
    out = grouped_bars(series)
    assert "64KiB" in out
    assert "ploggp" in out
    assert "2.00x" in out
    assert "1.00x" in out


def test_grouped_bars_empty():
    assert grouped_bars({}) == "(no data)"


def test_timeline_busy_and_idle():
    out = timeline([(0.0, 0.25), (0.75, 1.0)], t_end=1.0, width=40)
    assert "█" in out
    assert "·" in out
    # Busy at the edges, idle in the middle.
    assert out[0] == "█"
    assert out[-1] == "█"
    assert "·" in out[15:25]


def test_timeline_marker_row():
    out = timeline([(0.0, 0.1)], t_end=1.0, width=40, marker=0.5)
    lines = out.splitlines()
    assert len(lines) == 2
    assert "▼" in lines[0]
    assert lines[0].index("▼") == 20


def test_timeline_fully_busy():
    out = timeline([(0.0, 1.0)], t_end=1.0, width=20)
    assert out == "█" * 20


def test_timeline_empty():
    assert timeline([], t_end=None) == "(no data)"


def test_timeline_from_analysis_output():
    """Plugs directly into chunk_timeline's (start, end, bytes) tuples."""
    chunks = [(0.0, 1e-6, 100), (2e-6, 3e-6, 100)]
    out = timeline([(s, e) for s, e, _ in chunks], width=30)
    assert "█" in out and "·" in out
