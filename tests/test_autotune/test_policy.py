"""Tests for the tuning policies (policy.py)."""

import pytest

from repro.autotune import (
    ArrivalTracker,
    BanditPolicy,
    DeltaTrackerPolicy,
    IterationObservation,
    PlanChoice,
    StaticPolicy,
    candidate_plans,
)
from repro.config import NIAGARA
from repro.errors import ConfigError, TuningError
from repro.model.tables import NIAGARA_LOGGP
from repro.units import us


def obs(round_no, completion_time, pready=()):
    return IterationObservation(round=round_no,
                                completion_time=completion_time,
                                pready_times=tuple(pready))


def test_plan_choice_validation():
    with pytest.raises(ConfigError):
        PlanChoice(n_transport=3, n_qps=1)
    with pytest.raises(ConfigError):
        PlanChoice(n_transport=4, n_qps=0)
    with pytest.raises(ConfigError):
        PlanChoice(n_transport=4, n_qps=1, delta=-1e-6)
    with pytest.raises(TuningError):
        PlanChoice(n_transport=16, n_qps=1).validate_for(8)


def test_plan_choice_dict_round_trip():
    for choice in (PlanChoice(8, 2, us(35)), PlanChoice(4, 1)):
        assert PlanChoice.from_dict(choice.as_dict()) == choice


def test_static_policy_is_constant_and_confident():
    choice = PlanChoice(8, 2)
    policy = StaticPolicy(choice)
    assert policy.candidates() == [choice]
    assert policy.choose(0) is choice
    assert policy.best() is choice
    assert policy.confident


def test_delta_tracker_requires_armed_base():
    with pytest.raises(ConfigError):
        DeltaTrackerPolicy(PlanChoice(8, 2, delta=None))


def test_delta_tracker_moves_toward_observed_spread():
    base = PlanChoice(8, 2, delta=us(3000))
    policy = DeltaTrackerPolicy(base, margin=1.0, alpha=1.0,
                                max_delta=us(3000))
    tracker = ArrivalTracker()
    tracker.observe([0.0, 10e-6, 20e-6, 4e-3])  # laggard excluded
    policy.observe(policy.choose(0), obs(0, 1.0), tracker)
    assert policy.choose(1).delta == pytest.approx(20e-6)
    # Layout never moves, only delta.
    assert policy.choose(1).n_transport == base.n_transport
    assert policy.choose(1).n_qps == base.n_qps


def test_delta_tracker_clamps_and_warms_up():
    base = PlanChoice(8, 2, delta=us(100))
    policy = DeltaTrackerPolicy(base, margin=1.0, alpha=1.0,
                                min_delta=us(10), max_delta=us(200),
                                warm_rounds=2)
    tracker = ArrivalTracker()
    # Non-laggard spread of 1ms (the 2ms laggard is dropped) -> clamp high.
    tracker.observe([0.0, 1e-3, 2e-3])
    policy.observe(policy.choose(0), obs(0, 1.0), tracker)
    assert policy.choose(1).delta == pytest.approx(us(200))
    assert not policy.confident
    tracker.observe([0.0, 0.0, 0.0])  # zero spread -> clamp low
    policy.observe(policy.choose(1), obs(1, 1.0), tracker)
    assert policy.choose(2).delta >= us(10)
    assert policy.confident


def test_bandit_initial_sweep_plays_every_arm():
    arms = [PlanChoice(1, 1), PlanChoice(2, 1), PlanChoice(4, 1)]
    policy = BanditPolicy(arms, seed=3)
    seen = []
    for r in range(len(arms)):
        choice = policy.choose(r)
        seen.append(choice)
        policy.observe(choice, obs(r, 1.0 + r), ArrivalTracker())
    assert seen == arms


def test_bandit_exploits_cheapest_arm():
    arms = [PlanChoice(1, 1), PlanChoice(2, 1)]
    policy = BanditPolicy(arms, epsilon=0.0, seed=0)
    policy.observe(arms[0], obs(0, 5.0), ArrivalTracker())
    policy.observe(arms[1], obs(1, 1.0), ArrivalTracker())
    assert policy.best() == arms[1]
    assert all(policy.choose(r) == arms[1] for r in range(2, 10))


def test_bandit_deterministic_per_seed():
    arms = [PlanChoice(1, 1), PlanChoice(2, 1), PlanChoice(4, 1)]
    runs = []
    for _ in range(2):
        policy = BanditPolicy(arms, epsilon=0.5, seed=42)
        trace = []
        for r in range(20):
            choice = policy.choose(r)
            trace.append(choice)
            policy.observe(choice, obs(r, 1.0 + choice.n_transport),
                           ArrivalTracker())
        runs.append(trace)
    assert runs[0] == runs[1]


def test_bandit_ucb_revisits_underplayed_arms():
    arms = [PlanChoice(1, 1), PlanChoice(2, 1)]
    policy = BanditPolicy(arms, mode="ucb", exploration=10.0, seed=0)
    policy.observe(arms[0], obs(0, 1.0), ArrivalTracker())
    policy.observe(arms[1], obs(1, 1.01), ArrivalTracker())
    for r in range(2, 30):
        choice = policy.choose(r)
        policy.observe(choice, obs(r, 1.0 if choice == arms[0] else 1.01),
                       ArrivalTracker())
    # A large exploration bonus keeps both arms in play.
    assert all(p > 1 for p in policy._plays)


def test_bandit_confidence_requires_full_sweep():
    arms = [PlanChoice(1, 1), PlanChoice(2, 1)]
    policy = BanditPolicy(arms, min_confident_plays=2)
    policy.observe(arms[0], obs(0, 1.0), ArrivalTracker())
    assert not policy.confident
    policy.observe(arms[1], obs(1, 2.0), ArrivalTracker())
    assert not policy.confident  # best arm played once, needs two
    policy.observe(arms[0], obs(2, 1.0), ArrivalTracker())
    assert policy.confident


def test_bandit_ignores_foreign_choice():
    arms = [PlanChoice(1, 1)]
    policy = BanditPolicy(arms)
    policy.observe(PlanChoice(32, 4), obs(0, 1.0), ArrivalTracker())
    assert policy._plays == [0]


def test_bandit_validation():
    with pytest.raises(ConfigError):
        BanditPolicy([])
    with pytest.raises(ConfigError):
        BanditPolicy([PlanChoice(1, 1), PlanChoice(1, 1)])
    with pytest.raises(ConfigError):
        BanditPolicy([PlanChoice(1, 1)], mode="thompson")


def test_candidate_plans_explicit_counts():
    arms = candidate_plans(32, 64 * 1024, NIAGARA, counts=[4, 8],
                           deltas=(None, us(35)))
    assert {a.n_transport for a in arms} == {4, 8}
    assert {a.delta for a in arms} == {None, us(35)}
    for a in arms:
        a.validate_for(32)


def test_candidate_plans_seeded_by_model():
    arms = candidate_plans(32, 64 * 1024, NIAGARA, params=NIAGARA_LOGGP,
                           span=1)
    counts = sorted({a.n_transport for a in arms})
    # A span-1 neighbourhood holds at most 3 powers of two.
    assert 1 <= len(counts) <= 3
    assert all(c <= 32 for c in counts)


def test_candidate_plans_validation():
    with pytest.raises(TuningError):
        candidate_plans(12, 1024, NIAGARA)
    with pytest.raises(TuningError):
        candidate_plans(32, 1024, NIAGARA, counts=[64])
    with pytest.raises(TuningError):
        candidate_plans(32, 1024, NIAGARA, deltas=())
