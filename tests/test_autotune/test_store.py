"""TuningStore counting and corruption visibility (ISSUE 10 satellites)."""

import json

from repro.autotune import TuningStore, workload_key
from repro.autotune.policy import PlanChoice


def key(i=0):
    return workload_key(32, 32 * 4096, f"cfg{i}", plan_space="s")


def test_count_is_cheap_and_matches_len(tmp_path):
    store = TuningStore(tmp_path)
    assert store.count() == 0 == len(store)
    for i in range(4):
        store.put(key(i), PlanChoice(4, 1))
    assert store.count() == 4 == len(store)
    # Stray non-entry files don't count.
    (tmp_path / "scratch.tmp").write_text("x")
    assert store.count() == 4


def test_corrupt_entries_are_counted_and_skipped(tmp_path):
    store = TuningStore(tmp_path)
    store.put(key(0), PlanChoice(4, 1))
    store.put(key(1), PlanChoice(8, 1))
    store._path(key(0)).write_text("{ torn")
    assert store.get(key(0)) is None
    assert store.corrupt_entries == 1
    # entries() skips the bad file but still validates the rest.
    assert len(store.entries()) == 1
    assert store.corrupt_entries == 2
    # count() deliberately includes it: it is a file on disk.
    assert store.count() == 2


def test_alien_schema_counts_as_corrupt(tmp_path):
    store = TuningStore(tmp_path)
    store.put(key(0), PlanChoice(4, 1))
    store._path(key(0)).write_text(json.dumps({"schema": "other/v1"}))
    assert store.get(key(0)) is None
    assert store.corrupt_entries == 1


def test_missing_entry_is_a_miss_not_corruption(tmp_path):
    store = TuningStore(tmp_path)
    assert store.get(key(0)) is None
    assert store.corrupt_entries == 0


def test_bad_plan_dict_counts_as_corrupt(tmp_path):
    store = TuningStore(tmp_path)
    path = store.put(key(0), PlanChoice(4, 1))
    payload = json.loads(path.read_text())
    payload["plan"] = {"n_transport": 3, "n_qps": 1}  # not a power of 2
    path.write_text(json.dumps(payload))
    assert store.get(key(0)) is None
    assert store.corrupt_entries == 1
