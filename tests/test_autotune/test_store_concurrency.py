"""Concurrent writers on one TuningStore key: atomic replace holds.

The flat store has no versions — last writer wins by design — but its
atomic-replace write path must never let a reader observe a torn
entry, even with real processes racing on the same key.  (The
versioned CAS discipline on top of this layout is covered by
``tests/test_serve``.)
"""

import json
import os
import subprocess
import sys

from repro.autotune import TuningStore, workload_key
from repro.autotune.policy import PlanChoice
from repro.autotune.store import SCHEMA
from repro.serve import ShardedStore

KEY = workload_key(32, 32 * 4096, "race", plan_space="race-1")

WRITER = """
import sys
from repro.autotune import TuningStore, workload_key
from repro.autotune.policy import PlanChoice

root, writer, n = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
store = TuningStore(root)
key = workload_key(32, 32 * 4096, "race", plan_space="race-1")
for i in range(n):
    store.put(key, PlanChoice(2 ** (writer % 4 + 1), i % 5 + 1),
              meta={"writer": writer, "seq": i})
"""


def test_racing_put_never_tears_a_read(tmp_path):
    store = TuningStore(tmp_path)
    path = store._path(KEY)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    procs = [
        subprocess.Popen([sys.executable, "-c", WRITER, str(tmp_path),
                          str(w), "40"],
                         stderr=subprocess.PIPE, text=True, env=env)
        for w in range(3)
    ]
    reads = torn = 0
    while any(p.poll() is None for p in procs):
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            continue
        except ValueError:
            torn += 1
            continue
        reads += 1
        if payload.get("schema") != SCHEMA:
            torn += 1
    for p in procs:
        _, err = p.communicate()
        assert p.returncode == 0, err
    assert torn == 0
    assert reads > 0
    # The surviving entry is one writer's last put, intact.
    final = store.get(KEY)
    assert final is not None
    assert store.corrupt_entries == 0


def test_versioned_cas_rejects_stale_writers(tmp_path):
    # The serve-layer CAS path on the same schema: a writer that read
    # version N cannot overwrite version N+1.
    store = ShardedStore(tmp_path, n_shards=2)
    first = store.commit(KEY, PlanChoice(4, 1))
    store.commit(KEY, PlanChoice(8, 1))
    stale = store.commit(KEY, PlanChoice(16, 1),
                         expect_version=first.entry.version)
    assert stale.conflict
    assert store.read(KEY).choice == PlanChoice(8, 1)
