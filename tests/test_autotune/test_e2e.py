"""End-to-end: the controller inside the simulated native module."""

import pytest

from repro.autotune import PlanChoice, TuningStore, build_autotuner
from repro.bench.autotune import run_autotuned_pair
from repro.bench.pair import run_partitioned_pair
from repro.core import FixedAggregation
from repro.core.module import NativeSpec
from repro.errors import TuningError
from repro.units import us

N_USER = 16
TOTAL = 1 << 20
ITER = dict(iterations=6, warmup=2)


def run_fixed(n_transport, n_qps):
    return run_partitioned_pair(
        lambda: NativeSpec(FixedAggregation(n_transport, n_qps)),
        n_user=N_USER, partition_size=TOTAL // N_USER, **ITER)


def test_static_policy_matches_fixed_aggregation_bit_for_bit():
    baseline = run_fixed(8, 2)
    res = run_autotuned_pair(
        {"policy": "static", "choice": {"n_transport": 8, "n_qps": 2}},
        n_user=N_USER, total_bytes=TOTAL, **ITER)
    assert res.mean_time.hex() == baseline.mean_time.hex()
    assert res.result.wrs_posted == baseline.wrs_posted
    assert not res.explored


def test_bandit_explores_and_converges_to_measured_best():
    res = run_autotuned_pair(
        {"policy": "bandit", "counts": [1, 4, 16], "bandit_seed": 1},
        n_user=N_USER, total_bytes=TOTAL, iterations=40, warmup=2)
    assert res.explored
    assert res.best_plan is not None
    # The converged plan's observed mean is the cheapest of all arms.
    times = {}
    for record in res.round_plans:
        if record["completion_time"] is None:
            continue
        key = (record["n_transport"], record["n_qps"])
        times.setdefault(key, []).append(record["completion_time"])
    means = {k: sum(v) / len(v) for k, v in times.items()}
    best_key = (res.best_plan["n_transport"], res.best_plan["n_qps"])
    assert means[best_key] == min(means.values())
    assert res.best_plan_time == pytest.approx(means[best_key])


def test_delta_tracker_runs_with_timer_path():
    res = run_autotuned_pair(
        {"policy": "delta_tracker", "delta": us(3000),
         "max_delta": us(3000)},
        n_user=N_USER, total_bytes=TOTAL, compute=0.01,
        noise_fraction=0.04, iterations=8, warmup=2)
    assert res.best_plan["delta"] is not None
    assert res.result.timer_flushes >= 0


def test_store_round_trip_second_run_skips_exploration(tmp_path):
    store = TuningStore(tmp_path / "store")
    params = {"policy": "bandit", "counts": [1, 4, 16],
              "config_tag": "test"}
    first = run_autotuned_pair(params, n_user=N_USER, total_bytes=TOTAL,
                               iterations=24, warmup=2, store=store)
    assert first.explored
    assert len(store) == 1
    second = run_autotuned_pair(params, n_user=N_USER, total_bytes=TOTAL,
                                iterations=6, warmup=2, store=store)
    assert not second.explored
    assert second.best_plan == first.best_plan
    plans = {(r["n_transport"], r["n_qps"], r["delta"])
             for r in second.round_plans}
    assert len(plans) == 1


def test_stale_pinned_plan_is_relearned(tmp_path):
    from repro.autotune import workload_key
    from repro.config import NIAGARA

    store = TuningStore(tmp_path / "store")
    params = {"policy": "bandit", "counts": [1, 4], "config_tag": "test"}
    # Seed under the exact key the run will use (workload + the
    # policy's plan-space digest) an entry learned for a wider
    # workload: 32 transport partitions cannot serve 16 user
    # partitions, so the run must re-learn.
    policy = build_autotuner(params).policy_builder(
        N_USER, TOTAL // N_USER, NIAGARA)
    key = workload_key(N_USER, TOTAL, "test",
                       plan_space=policy.plan_space_digest())
    store.put(key, PlanChoice(32, 2))
    res = run_autotuned_pair(params, n_user=N_USER, total_bytes=TOTAL,
                             iterations=16, warmup=2, store=store)
    assert res.explored
    assert store.get(key).n_transport <= N_USER


def test_store_key_distinguishes_plan_spaces(tmp_path):
    """Equal knob tuples in structurally different search spaces must
    not collide: the plan-space digest keeps their entries distinct."""
    store = TuningStore(tmp_path / "store")
    a = {"policy": "bandit", "counts": [1, 4], "config_tag": "test"}
    b = {"policy": "bandit", "counts": [1, 4, 16], "config_tag": "test"}
    run_autotuned_pair(a, n_user=N_USER, total_bytes=TOTAL,
                       iterations=24, warmup=2, store=store)
    assert len(store) == 1
    second = run_autotuned_pair(b, n_user=N_USER, total_bytes=TOTAL,
                                iterations=24, warmup=2, store=store)
    # A different candidate grid is a different plan space: the second
    # run explores instead of replaying the first run's entry.
    assert second.explored
    assert len(store) == 2
    digests = {e["key"]["plan_space"] for e in store.entries()}
    assert len(digests) == 2


def test_invalid_counts_rejected():
    with pytest.raises(TuningError):
        run_autotuned_pair({"policy": "bandit", "counts": [64]},
                           n_user=N_USER, total_bytes=TOTAL, **ITER)


def test_build_autotuner_describe():
    agg = build_autotuner({"policy": "bandit", "counts": [1, 4]})
    assert agg.describe() == "autotune(unplanned)"
    run_autotuned_pair(None, n_user=N_USER, total_bytes=TOTAL,
                       aggregator=agg, **ITER)
    assert agg.describe().startswith("autotune(bandit")
