"""Tests for the closed loop itself (controller.py) and the store."""

import json

import pytest

from repro.autotune import (
    AutotuneController,
    BanditPolicy,
    IterationObservation,
    PlanChoice,
    StaticPolicy,
    TuningStore,
    workload_key,
)
from repro.autotune.store import SCHEMA


def obs(round_no, completion_time, pready=()):
    return IterationObservation(round=round_no,
                                completion_time=completion_time,
                                pready_times=tuple(pready))


def test_plan_for_round_is_idempotent():
    ctrl = AutotuneController(StaticPolicy(PlanChoice(8, 2)))
    first = ctrl.plan_for_round(0)
    assert ctrl.plan_for_round(0) is first
    assert len(ctrl.history) == 1


def test_hold_repeats_previous_choice():
    arms = [PlanChoice(1, 1), PlanChoice(2, 1)]
    ctrl = AutotuneController(BanditPolicy(arms))
    first = ctrl.plan_for_round(0)
    ctrl.observe(obs(0, 1.0))
    held = ctrl.plan_for_round(1, hold=True)
    assert held == first
    assert ctrl.history[1].held
    ctrl.observe(obs(1, 1.0))
    # Without hold the sweep moves to the second arm.
    assert ctrl.plan_for_round(2) == arms[1]


def test_observe_credits_choice_and_tracker():
    ctrl = AutotuneController(StaticPolicy(PlanChoice(4, 1)))
    choice = ctrl.plan_for_round(0)
    ctrl.observe(obs(0, 2.5, pready=[0.0, 1e-6, 5e-3]))
    assert ctrl.history[0].completion_time == 2.5
    assert ctrl.tracker.rounds_seen == 1
    assert ctrl.mean_time_of(choice) == 2.5


def test_observe_unknown_round_is_noop():
    ctrl = AutotuneController(StaticPolicy(PlanChoice(4, 1)))
    ctrl.observe(obs(7, 1.0))
    assert ctrl.history == []
    assert ctrl.tracker.rounds_seen == 0


def test_converged_round_trailing_run():
    arms = [PlanChoice(1, 1), PlanChoice(2, 1)]
    ctrl = AutotuneController(BanditPolicy(arms, epsilon=0.0))
    for r in range(6):
        choice = ctrl.plan_for_round(r)
        ctrl.observe(obs(r, 1.0 if choice == arms[1] else 9.0))
    # The sweep plays arms[1] at round 1 and exploitation never leaves
    # it, so the trailing identical-choice run starts there.
    assert ctrl.converged_round == 1
    assert ctrl.explored
    assert ctrl.best_choice == arms[1]


def test_round_plans_json_safe():
    ctrl = AutotuneController(StaticPolicy(PlanChoice(8, 2, 35e-6)))
    ctrl.plan_for_round(0)
    ctrl.observe(obs(0, 1.0))
    plans = ctrl.round_plans()
    assert json.loads(json.dumps(plans)) == plans
    assert plans[0]["n_transport"] == 8
    assert plans[0]["completion_time"] == 1.0


def test_store_commit_when_confident(tmp_path):
    store = TuningStore(tmp_path)
    key = workload_key(16, 1 << 20, "test")
    arms = [PlanChoice(1, 1), PlanChoice(2, 1)]
    ctrl = AutotuneController(
        BanditPolicy(arms, epsilon=0.0, min_confident_plays=1),
        store=store, store_key=key)
    assert len(store) == 0
    for r in range(3):
        ctrl.plan_for_round(r)
        ctrl.observe(obs(r, 1.0 + r))
    assert store.get(key) == ctrl.policy.best()
    meta = store.entries()[0]["meta"]
    assert meta["rounds_observed"] >= 2


def test_pinned_entry_replays_without_exploration(tmp_path):
    store = TuningStore(tmp_path)
    key = workload_key(16, 1 << 20, "test")
    pinned = PlanChoice(8, 2, 35e-6)
    store.put(key, pinned)
    arms = [PlanChoice(1, 1), PlanChoice(2, 1)]
    ctrl = AutotuneController(BanditPolicy(arms), store=store,
                              store_key=key)
    assert ctrl.pinned == pinned
    for r in range(4):
        assert ctrl.plan_for_round(r) == pinned
        ctrl.observe(obs(r, 1.0))
    assert not ctrl.explored
    assert ctrl.best_choice == pinned
    # A pinned run never rewrites the store.
    assert store.get(key) == pinned


def test_store_requires_key():
    with pytest.raises(ValueError):
        AutotuneController(StaticPolicy(PlanChoice(1, 1)),
                           store=TuningStore("/tmp/unused-store"))


def test_store_round_trip_and_lookup(tmp_path):
    store = TuningStore(tmp_path)
    choice = PlanChoice(16, 2, delta=None)
    store.put(workload_key(32, 2 << 20, "niagara"), choice)
    assert store.lookup(32, 2 << 20, "niagara") == choice
    assert store.lookup(32, 2 << 20, "other") is None
    assert len(store) == 1


def test_store_ignores_corrupt_entries(tmp_path):
    store = TuningStore(tmp_path)
    key = workload_key(8, 1 << 16)
    path = store.put(key, PlanChoice(4, 1))
    path.write_text("{not json")
    assert store.get(key) is None
    assert store.entries() == []
    # Wrong schema is rejected too.
    path.write_text(json.dumps({"schema": "other/v9", "plan": {}}))
    assert store.get(key) is None


def test_store_overwrites_atomically(tmp_path):
    store = TuningStore(tmp_path)
    key = workload_key(8, 1 << 16)
    store.put(key, PlanChoice(4, 1))
    store.put(key, PlanChoice(8, 2))
    assert store.get(key) == PlanChoice(8, 2)
    assert len(store) == 1
    payload = store.entries()[0]
    assert payload["schema"] == SCHEMA
    assert payload["key"] == key


# -- quarantine (chaos: faulted rounds must not poison the policy) -------


def test_tainted_observation_is_quarantined():
    ctrl = AutotuneController(StaticPolicy(PlanChoice(4, 1)))
    choice = ctrl.plan_for_round(0)
    ctrl.observe(IterationObservation(
        round=0, completion_time=9.0, pready_times=(0.0,), tainted=True))
    record = ctrl.history[0]
    # Recorded for diagnostics, invisible to the statistics.
    assert record.quarantined
    assert record.completion_time == 9.0
    assert ctrl.tracker.rounds_seen == 0
    assert ctrl.mean_time_of(choice) is None
    # A later clean round is credited normally.
    ctrl.plan_for_round(1)
    ctrl.observe(obs(1, 2.0, pready=[0.0]))
    assert ctrl.mean_time_of(choice) == 2.0
    plans = ctrl.round_plans()
    assert plans[0]["quarantined"] is True
    assert plans[1]["quarantined"] is False


def test_tainted_observation_does_not_commit_to_store(tmp_path):
    store = TuningStore(tmp_path)
    key = workload_key(4, 1 << 14)
    ctrl = AutotuneController(StaticPolicy(PlanChoice(4, 1)),
                              store=store, store_key=key)
    ctrl.plan_for_round(0)
    ctrl.observe(IterationObservation(
        round=0, completion_time=1.0, pready_times=(0.0,), tainted=True))
    assert store.get(key) is None
    ctrl.plan_for_round(1)
    ctrl.observe(obs(1, 1.0, pready=[0.0]))
    assert store.get(key) == PlanChoice(4, 1)
