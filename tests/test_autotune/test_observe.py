"""Tests for the controller's sensor layer (observe.py)."""

import pytest

from repro.autotune import ArrivalTracker, IterationObservation
from repro.autotune.observe import _quantile, _sorted_gaps
from repro.errors import ConfigError


def test_observation_spread():
    obs = IterationObservation(
        round=0, completion_time=1.0, pready_times=(0.0, 2e-6, 5e-6))
    assert obs.spread == pytest.approx(5e-6)


def test_observation_spread_degenerate():
    assert IterationObservation(round=0, completion_time=1.0).spread == 0.0
    single = IterationObservation(
        round=0, completion_time=1.0, pready_times=(3.0,))
    assert single.spread == 0.0


def test_sorted_gaps_handles_non_monotone():
    # Pready timestamps arrive in thread-finish order, not sorted.
    assert _sorted_gaps([5e-6, 0.0, 2e-6]) == [
        pytest.approx(2e-6), pytest.approx(3e-6)]


def test_quantile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0]
    assert _quantile(values, 0.0) == 1.0
    assert _quantile(values, 1.0) == 4.0
    assert _quantile(values, 0.5) == pytest.approx(3.0)
    assert _quantile([], 0.5) == 0.0
    with pytest.raises(ConfigError):
        _quantile(values, 1.5)


def test_tracker_splits_spread_and_laggard_gap():
    tracker = ArrivalTracker()
    tracker.observe([0.0, 2e-6, 5e-6, 4e-3])
    assert tracker.ready
    assert tracker.ewma_spread == pytest.approx(5e-6)
    assert tracker.ewma_laggard_gap == pytest.approx(4e-3 - 5e-6)


def test_tracker_non_monotone_same_as_sorted():
    a, b = ArrivalTracker(), ArrivalTracker()
    a.observe([0.0, 2e-6, 5e-6, 4e-3])
    b.observe([4e-3, 5e-6, 0.0, 2e-6])
    assert a.ewma_spread == b.ewma_spread
    assert a.ewma_laggard_gap == b.ewma_laggard_gap


def test_tracker_single_partition():
    # One partition: nothing to spread over, nothing to drop.
    tracker = ArrivalTracker()
    tracker.observe([7.0])
    assert tracker.ewma_spread == 0.0
    assert tracker.ewma_laggard_gap == 0.0


def test_tracker_empty_round_ignored():
    tracker = ArrivalTracker()
    tracker.observe([])
    assert not tracker.ready
    assert tracker.rounds_seen == 0


def test_tracker_ewma_blending():
    tracker = ArrivalTracker(alpha=0.5, laggards=0)
    tracker.observe([0.0, 4e-6])
    tracker.observe([0.0, 8e-6])
    assert tracker.ewma_spread == pytest.approx(6e-6)


def test_tracker_window_bounds_quantiles():
    tracker = ArrivalTracker(window=2, laggards=0)
    for spread in (1e-6, 2e-6, 9e-6):
        tracker.observe([0.0, spread])
    # Only the last two rounds remain in the window.
    assert tracker.spread_quantile(0.0) == pytest.approx(2e-6)
    assert tracker.spread_quantile(1.0) == pytest.approx(9e-6)


def test_tracker_validation():
    with pytest.raises(ConfigError):
        ArrivalTracker(alpha=0.0)
    with pytest.raises(ConfigError):
        ArrivalTracker(window=0)
    with pytest.raises(ConfigError):
        ArrivalTracker(laggards=-1)
