"""The serving benchmark: determinism, hit rates, eviction pressure."""

from repro.serve.bench import run_serve_bench

SMALL = dict(n_clients=40, n_requests=600, n_keys=16, seed=5)


def test_bench_is_deterministic():
    assert run_serve_bench(**SMALL) == run_serve_bench(**SMALL)


def test_zipf_traffic_keeps_the_cache_hot():
    res = run_serve_bench(**SMALL)
    assert res["warm_hit_rate"] > 0.9
    assert res["hit_rate"] > 0.5
    # Hits are served at cache cost; the median lookup never touches
    # a shard queue.
    assert res["p50_latency_us"] < res["p99_latency_us"]
    assert res["p50_latency_us"] < 10.0


def test_commits_and_conflicts_happen():
    res = run_serve_bench(n_clients=40, n_requests=2000, n_keys=8,
                          p_commit=0.3, seed=5)
    assert res["commits"] > 0
    # Many clients CAS-committing against stale views must conflict.
    assert res["conflicts"] > 0


def test_bounded_store_evicts():
    res = run_serve_bench(n_clients=40, n_requests=1000, n_keys=32,
                          p_commit=0.3, seed=5, n_shards=2,
                          max_entries_per_shard=2, cache_capacity=4)
    assert res["store_evictions"] > 0
    assert res["entries"] <= 2 * 2
    assert res["cache_evictions"] > 0


def test_seed_changes_the_traffic():
    a = run_serve_bench(**SMALL)
    b = run_serve_bench(**{**SMALL, "seed": 6})
    assert a != b
