"""Sharded backend: routing, versions, CAS, TuningStore compatibility."""

import json

import pytest

from repro.autotune import TuningStore, workload_key
from repro.autotune.policy import PlanChoice
from repro.autotune.store import entry_digest
from repro.errors import ConfigError
from repro.serve import ShardedStore


def key(i=0):
    return workload_key(32, 32 * 4096, f"cfg{i}", plan_space="space-1")


def choice(t=4):
    return PlanChoice(n_transport=t, n_qps=2, delta=None)


def test_routing_is_pure_function_of_key(tmp_path):
    a = ShardedStore(tmp_path / "a", n_shards=4)
    b = ShardedStore(tmp_path / "b", n_shards=4)
    for i in range(20):
        assert a.shard_of(key(i)) == b.shard_of(key(i))
        assert 0 <= a.shard_of(key(i)) < 4


def test_manifest_pins_shard_count(tmp_path):
    ShardedStore(tmp_path, n_shards=4)
    # Reopening without a count adopts the pinned geometry.
    assert ShardedStore(tmp_path).n_shards == 4
    assert ShardedStore(tmp_path, n_shards=4).n_shards == 4
    with pytest.raises(ConfigError):
        ShardedStore(tmp_path, n_shards=8)


def test_commit_versions_are_monotonic(tmp_path):
    store = ShardedStore(tmp_path, n_shards=4)
    for expected in (1, 2, 3):
        result = store.commit(key(), choice(2 ** expected))
        assert result.committed
        assert result.entry.version == expected
    assert store.read(key()).version == 3
    assert store.commits == 3


def test_cas_rejects_stale_accepts_current(tmp_path):
    store = ShardedStore(tmp_path, n_shards=4)
    store.commit(key(), choice(4))
    store.commit(key(), choice(8))
    stale = store.commit(key(), choice(16), expect_version=1)
    assert stale.conflict and not stale.committed
    # The loser gets the winning entry back, untouched on disk.
    assert stale.entry.version == 2
    assert store.read(key()).choice == choice(8)
    assert store.conflicts == 1
    fresh = store.commit(key(), choice(16), expect_version=2)
    assert fresh.committed and fresh.entry.version == 3


def test_cas_on_absent_entry_expects_zero(tmp_path):
    store = ShardedStore(tmp_path, n_shards=4)
    missed = store.commit(key(), choice(), expect_version=3)
    assert missed.conflict and missed.entry.version == 0
    landed = store.commit(key(), choice(), expect_version=0)
    assert landed.committed and landed.entry.version == 1


def test_shard_dir_reads_as_plain_tuning_store(tmp_path):
    store = ShardedStore(tmp_path, n_shards=4)
    store.put(key(), choice(8), meta={"rounds_observed": 5})
    shard_dir = store.shard_root(store.shard_of(key()))
    direct = TuningStore(shard_dir).get(key())
    assert direct is not None
    assert direct.as_dict() == store.get(key()).as_dict()
    # Same file stem as the flat store would use (content address).
    assert (shard_dir / f"{entry_digest(key())}.json").exists()


def test_corrupt_entries_counted_not_served(tmp_path):
    store = ShardedStore(tmp_path, n_shards=2)
    store.put(key(), choice())
    path = store.path_for(key())
    path.write_text("{ not json")
    assert store.read(key()) is None
    assert store.corrupt_entries == 1
    path.write_text(json.dumps({"schema": "alien/v9"}))
    assert store.get(key()) is None
    assert store.corrupt_entries == 2


def test_delete_and_counts(tmp_path):
    store = ShardedStore(tmp_path, n_shards=2)
    for i in range(6):
        store.put(key(i), choice())
    assert store.count() == 6 == len(store)
    assert sum(store.count_shard(i) for i in range(2)) == 6
    assert store.delete(key(0))
    assert not store.delete(key(0))
    assert store.count() == 5


def test_purge_plan_space(tmp_path):
    store = ShardedStore(tmp_path, n_shards=2)
    for i in range(4):
        store.put(key(i), choice())
    other = workload_key(64, 64 * 4096, "cfg", plan_space="space-2")
    store.put(other, choice())
    assert store.purge_plan_space("space-1") == 4
    assert store.count() == 1
    assert store.get(other) is not None


def test_entries_enumeration(tmp_path):
    store = ShardedStore(tmp_path, n_shards=3)
    for i in range(5):
        store.put(key(i), choice(), meta={"i": i})
    payloads = store.entries()
    assert len(payloads) == 5
    assert all(p["version"] == 1 for p in payloads)
    served = list(store.iter_entries())
    assert {e.meta["i"] for e in served} == set(range(5))
