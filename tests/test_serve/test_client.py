"""Client failure discipline: retries, breaker, graceful degradation."""

from repro.autotune import AdaptiveAggregator, PlanStore, build_autotuner
from repro.autotune import workload_key
from repro.autotune.policy import PlanChoice
from repro.engine.watchdog import CLOSED, OPEN
from repro.serve import (
    FlakyTransport,
    LocalTransport,
    ServeClient,
    TuningService,
)


def key():
    return workload_key(32, 32 * 4096, "cfg", plan_space="space-1")


def choice(t=4):
    return PlanChoice(n_transport=t, n_qps=2, delta=None)


def make(tmp_path, **flaky):
    svc = TuningService(tmp_path, n_shards=2)
    transport = LocalTransport(svc)
    if flaky:
        transport = FlakyTransport(transport, **flaky)
    return svc, transport


def test_client_speaks_the_store_protocol(tmp_path):
    svc, transport = make(tmp_path)
    client = ServeClient(transport)
    assert isinstance(client, PlanStore)
    assert client.get(key()) is None
    client.put(key(), choice(8), meta={"rounds_observed": 3})
    assert client.get(key()) == choice(8)
    assert svc.store.commits == 1


def test_client_plugs_into_build_autotuner(tmp_path):
    _, transport = make(tmp_path)
    client = ServeClient(transport)
    agg = build_autotuner({"policy": "bandit", "counts": [1, 4]},
                          store=client)
    assert isinstance(agg, AdaptiveAggregator)
    assert agg.store is client


def test_retry_rides_out_transient_failures(tmp_path):
    svc, transport = make(tmp_path, p_fail=0.5, seed=3)
    client = ServeClient(transport, retries=8)
    client.put(key(), choice())
    assert client.get(key()) == choice()
    assert client.transport_errors > 0       # retries actually happened
    assert client.fallbacks == 0
    assert client.breaker.state is CLOSED


def test_outage_trips_breaker_then_degrades(tmp_path):
    svc, transport = make(tmp_path, outage_after=0)
    client = ServeClient(transport, retries=1, breaker_threshold=3,
                         cooldown_calls=10)
    for _ in range(3):
        assert client.get(key()) is None     # exhausted retries
    assert client.breaker.state is OPEN
    calls_at_trip = transport.calls
    # While OPEN the client doesn't even touch the transport.
    for _ in range(3):
        assert client.get(key()) is None
        assert client.put(key(), choice()) is None
    assert transport.calls == calls_at_trip
    assert client.fallbacks >= 3
    assert client.dropped_puts >= 1


def test_breaker_probes_after_cooldown(tmp_path):
    svc, transport = make(tmp_path, outage_after=1)
    client = ServeClient(transport, retries=1, breaker_threshold=2,
                         cooldown_calls=2)
    client.put(key(), choice())              # lands before the outage
    for _ in range(2):
        client.get(key())                    # trip the breaker
    assert client.breaker.state is OPEN
    # Heal the service, then let cooldown skip calls until probation.
    transport.outage_after = None
    results = [client.get(key()) for _ in range(4)]
    assert results[-1] == choice()           # the probe reconnected
    assert client.breaker.state is CLOSED


def test_backoff_uses_injected_sleep(tmp_path):
    svc, transport = make(tmp_path, outage_after=0)
    delays = []
    client = ServeClient(transport, retries=3, backoff_base=0.01,
                         backoff_factor=2.0, sleep=delays.append)
    client.get(key())
    assert delays == [0.01, 0.02, 0.04]


def test_versioned_commit_passes_cas_through(tmp_path):
    svc, transport = make(tmp_path)
    client = ServeClient(transport)
    first = client.commit(key(), choice(4))
    assert first.committed and first.entry.version == 1
    stale = client.commit(key(), choice(8), expect_version=0)
    assert stale is not None and stale.conflict
    fresh = client.commit(key(), choice(8),
                          expect_version=first.entry.version)
    assert fresh.committed and fresh.entry.version == 2


def test_stats_shape(tmp_path):
    _, transport = make(tmp_path)
    client = ServeClient(transport)
    stats = client.stats()
    assert stats["breaker_state"] == CLOSED
    assert stats["fallbacks"] == 0
