"""Multi-process stress: the torn/lost invariants under real races."""

import pytest

from repro.serve.stress import (
    STRESS_KEY,
    run_multiwriter_stress,
    writer_main,
)
from repro.serve.shard import ShardedStore


def test_writer_main_commits_its_quota(tmp_path):
    report = writer_main(str(tmp_path), 2, writer=0, n_puts=5,
                         mode="confident")
    assert report["commits"] == 5
    assert report["conflicts"] == 0
    store = ShardedStore(tmp_path, n_shards=2)
    assert store.read(STRESS_KEY).version == 5


def test_cas_writer_retries_until_quota(tmp_path):
    # Two interleaved single-process CAS writers: every rejection is
    # retried until each lands its quota.
    a = writer_main(str(tmp_path), 2, writer=0, n_puts=3, mode="cas")
    b = writer_main(str(tmp_path), 2, writer=1, n_puts=3, mode="cas")
    store = ShardedStore(tmp_path, n_shards=2)
    assert store.read(STRESS_KEY).version == a["commits"] + b["commits"]


@pytest.mark.parametrize("mode", ["confident", "cas"])
def test_multiwriter_stress_no_torn_no_lost(tmp_path, mode):
    res = run_multiwriter_stress(str(tmp_path / mode), n_writers=3,
                                 n_puts=6, mode=mode)
    assert res["torn_reads"] == 0
    assert res["lost_updates"] == 0
    assert res["total_commits"] == 3 * 6
    assert res["final_version"] == 3 * 6
    if mode == "cas":
        # CAS rejections never write: the version audit above already
        # proves it, the counter just confirms rejections were real.
        assert res["total_conflicts"] >= 0
