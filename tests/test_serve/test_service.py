"""The service front: write-through cache, eviction policy, warm import."""

from repro.autotune import TuningStore, workload_key
from repro.autotune.policy import PlanChoice
from repro.serve import TuningService


def key(i=0, space="space-1"):
    return workload_key(32, 32 * 4096, f"cfg{i}", plan_space=space)


def choice(t=4):
    return PlanChoice(n_transport=t, n_qps=2, delta=None)


def test_get_is_cache_first(tmp_path):
    svc = TuningService(tmp_path, n_shards=2)
    svc.commit(key(), choice())
    assert svc.get(key()).choice == choice()
    before = svc.cache.hits
    for _ in range(10):
        assert svc.get(key()) is not None
    assert svc.cache.hits == before + 10


def test_misses_are_negatively_cached(tmp_path):
    svc = TuningService(tmp_path, n_shards=2)
    for _ in range(20):
        assert svc.get(key()) is None
    stats = svc.cache.stats()
    assert stats["misses"] == 1          # one backend read
    assert stats["negative_hits"] == 19  # the storm hit the cache


def test_commit_is_write_through(tmp_path):
    svc = TuningService(tmp_path, n_shards=2)
    svc.get(key())                       # seed a negative entry
    svc.commit(key(), choice(8))
    # The fresh commit must not be shadowed by the cached miss.
    assert svc.get(key()).choice == choice(8)


def test_bounded_shard_evicts_weakest_confidence_first(tmp_path):
    svc = TuningService(tmp_path, n_shards=1, max_entries_per_shard=2)
    svc.commit(key(0), choice(), meta={"rounds_observed": 9})
    svc.commit(key(1), choice(), meta={"rounds_observed": 1})
    svc.commit(key(2), choice(), meta={"rounds_observed": 5})
    assert svc.store.count() == 2
    assert svc.evicted_entries == 1
    # The one-round guess went; the well-observed plans survive.
    assert svc.get(key(1)) is None
    assert svc.get(key(0)) is not None
    assert svc.get(key(2)) is not None


def test_eviction_breaks_confidence_ties_by_recency(tmp_path):
    svc = TuningService(tmp_path, n_shards=1, max_entries_per_shard=2)
    svc.commit(key(0), choice(), meta={"rounds_observed": 3})
    svc.commit(key(1), choice(), meta={"rounds_observed": 3})
    svc.get(key(0))                      # key(0) is now more recent
    svc.commit(key(2), choice(), meta={"rounds_observed": 3})
    assert svc.get(key(1)) is None
    assert svc.get(key(0)) is not None


def test_plan_space_invalidation(tmp_path):
    svc = TuningService(tmp_path, n_shards=2)
    svc.commit(key(0), choice())
    svc.commit(key(1), choice())
    other = key(0, space="space-2")
    svc.commit(other, choice(8))
    assert svc.invalidate_plan_space("space-1") == 2
    assert svc.get(key(0)) is None
    assert svc.get(other).choice == choice(8)


def test_warm_import_from_flat_store(tmp_path):
    flat = TuningStore(tmp_path / "flat")
    flat.put(key(0), choice(4), meta={"rounds_observed": 2})
    flat.put(key(1), choice(8))
    svc = TuningService(tmp_path / "serve", n_shards=4)
    # An entry the service already holds wins over the import.
    svc.commit(key(1), choice(16))
    assert svc.warm(tmp_path / "flat") == 1
    assert svc.get(key(0)).choice == choice(4)
    assert svc.get(key(1)).choice == choice(16)


def test_warm_import_from_sharded_root(tmp_path):
    src = TuningService(tmp_path / "src", n_shards=2)
    src.commit(key(0), choice())
    src.commit(key(1), choice())
    dst = TuningService(tmp_path / "dst", n_shards=4)
    assert dst.warm(tmp_path / "src") == 2
    assert dst.store.count() == 2


def test_stats_shape(tmp_path):
    svc = TuningService(tmp_path, n_shards=3)
    svc.commit(key(), choice())
    svc.get(key())
    stats = svc.stats()
    assert stats["n_shards"] == 3
    assert stats["entries"] == 1
    assert len(stats["shard_counts"]) == 3
    assert stats["commits"] == 1
    assert stats["gets"] == 1
    assert "hit_rate" in stats["cache"]
