"""Fleet tenants through the service: warm pinning and bit-identity."""

from repro.serve.fleet import run_served_tenants


def test_warm_tenant_pins_cold_tenants_plan(tmp_path):
    res = run_served_tenants(str(tmp_path), iterations=24, seed=0)
    cold, warm = res["tenants"][0], res["tenants"][-1]
    # Tenant #1 pays the exploration; tenant #2 skips it entirely.
    assert cold["explored"] and not cold["pinned"]
    assert warm["pinned"] and not warm["explored"]
    assert res["warm_skipped_exploration"]
    assert warm["best_plan"] == cold["best_plan"]
    # The service-served plan is bit-identical to a direct TuningStore
    # read of the shard directory (the ISSUE 10 acceptance criterion).
    assert res["bit_identical"]
    assert res["served_plan"] == res["direct_plan"]
    # No degradation events: the local service never went away.
    assert all(t["client"]["fallbacks"] == 0 for t in res["tenants"])


def test_serve_fleet_exp_point_is_compact(tmp_path):
    from repro.exp.kinds import run_point

    out = run_point({"kind": "serve_fleet",
                     "params": {"iterations": 24, "seed": 0}})
    assert out["bit_identical"]
    assert out["warm_skipped_exploration"]
    assert out["tenant_explored"] == [True, False]
    assert len(out["tenant_mean_iterations"]) == 2
    assert out["commits"] >= 1
