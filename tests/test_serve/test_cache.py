"""LRU plan cache: hit/miss accounting, negative entries, eviction."""

import pytest

from repro.autotune.policy import PlanChoice
from repro.errors import ConfigError
from repro.serve import PlanCache, ServedEntry


def entry(i=0):
    return ServedEntry(key={"i": i}, choice=PlanChoice(4, 1),
                       version=1, meta={})


def test_hit_miss_counters():
    cache = PlanCache(capacity=4)
    state, got = cache.lookup("d0")
    assert (state, got) == ("miss", None)
    cache.fill("d0", entry())
    state, got = cache.lookup("d0")
    assert state == "hit" and got.version == 1
    assert cache.hits == 1 and cache.misses == 1
    assert cache.stats()["hit_rate"] == 0.5


def test_lru_eviction_order():
    cache = PlanCache(capacity=2)
    cache.fill("a", entry())
    cache.fill("b", entry())
    cache.lookup("a")  # refresh a; b is now LRU
    cache.fill("c", entry())
    assert "b" not in cache and "a" in cache and "c" in cache
    assert cache.evictions == 1


def test_negative_entries_absorb_miss_storms():
    cache = PlanCache(capacity=8, negative_ttl=100)
    cache.lookup("d")            # miss: caller goes to the backend...
    cache.fill("d", None)        # ...which also misses
    for _ in range(50):
        state, got = cache.lookup("d")
        assert (state, got) == ("negative", None)
    assert cache.negative_hits == 50
    assert cache.misses == 1     # the backend saw exactly one read


def test_negative_entries_expire():
    cache = PlanCache(capacity=8, negative_ttl=3)
    cache.lookup("d")
    cache.fill("d", None)
    assert cache.lookup("d")[0] == "negative"
    for _ in range(4):           # age the entry past its TTL
        cache.lookup("other")
    assert cache.lookup("d")[0] == "miss"
    assert cache.stale_hits == 1
    # A real entry can now take the slot.
    cache.fill("d", entry())
    assert cache.lookup("d")[0] == "hit"


def test_fill_replaces_negative_with_positive():
    cache = PlanCache(capacity=4)
    cache.fill("d", None)
    cache.fill("d", entry())
    assert cache.lookup("d")[0] == "hit"
    assert cache.stats()["negative_entries"] == 0


def test_invalidate():
    cache = PlanCache(capacity=4)
    cache.fill("d", entry())
    assert cache.invalidate("d")
    assert not cache.invalidate("d")
    assert cache.lookup("d")[0] == "miss"


def test_capacity_validation():
    with pytest.raises(ConfigError):
        PlanCache(capacity=0)
