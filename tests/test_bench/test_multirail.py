"""Multi-rail end-to-end: a 2-port NIC runs the fig. 7 sweep.

Turning on a second NIC port is a one-line ``ClusterConfig`` change;
the native module then builds one rail per port and stripes transport
groups across them.  The baseline's p2p path stays on port 0, so for
wire-limited sizes the native speedup roughly doubles — the
network-native headroom a software transport cannot reach.
"""

from dataclasses import replace

from benchmarks.bench_fig07_qp_count import run_fig7
from benchmarks.common import FAST_PTP
from repro.config import NIAGARA
from repro.units import KiB, MiB

SIZES = [64 * KiB, 4 * MiB]


def _series(n_ports):
    cfg = replace(NIAGARA, nic=replace(NIAGARA.nic, n_ports=n_ports))
    cfg.validate()
    kwargs = dict(FAST_PTP)
    kwargs["config"] = cfg
    return run_fig7(SIZES, kwargs)


def test_two_rail_fig07_end_to_end():
    single = _series(1)
    double = _series(2)
    for series in (single, double):
        for points in series.values():
            assert set(points) == set(SIZES)
            assert all(v > 0 for v in points.values())
    # Wire-limited large messages: the second rail buys real speedup.
    big = 4 * MiB
    assert double["QP=4"][big] > 1.5 * single["QP=4"][big]
    # With one QP there is one rail in use per group; still no slower.
    assert double["QP=1"][big] >= single["QP=1"][big]
