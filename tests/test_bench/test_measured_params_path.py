"""End-to-end: Netgauge-measured parameters drive the live aggregator.

The paper's full loop — measure LogGP on the platform, hand the table
to the PLogGP aggregator, run — executed entirely in-repo.
"""

import pytest

from repro.bench.overhead import run_overhead
from repro.config import NIAGARA
from repro.core import PLogGPAggregator
from repro.model.netgauge import measure_loggp
from repro.units import KiB, MiB, ms


@pytest.fixture(scope="module")
def measured_table():
    return measure_loggp(sizes=[4 * KiB, 64 * KiB, 1 * MiB],
                         rounds=4, burst=6)


def test_measured_table_drives_aggregator(measured_table):
    agg = PLogGPAggregator(measured_table, delay=ms(4))
    plan = agg.plan(16, 64 * KiB, NIAGARA)
    assert 1 <= plan.n_transport <= 16
    assert plan.n_qps >= 1


def test_measured_aggregator_runs_and_wins_at_medium(measured_table):
    """Whatever the measured table picks, the native module still beats
    the per-message baseline at a medium size."""
    agg = PLogGPAggregator(measured_table, delay=ms(4))
    base = run_overhead(None, n_user=16, total_bytes=256 * KiB,
                        iterations=6, warmup=2)
    ours = run_overhead(agg, n_user=16, total_bytes=256 * KiB,
                        iterations=6, warmup=2)
    assert base.mean_time / ours.mean_time > 1.1


def test_measured_vs_calibrated_plans_comparable(measured_table):
    """Measured-table plans stay within the same order of magnitude as
    the calibrated-parameter plans (the paper's model/measurement
    discrepancies, bounded)."""
    from repro.model.tables import NIAGARA_LOGGP

    measured = PLogGPAggregator(measured_table, delay=ms(4))
    calibrated = PLogGPAggregator(NIAGARA_LOGGP, delay=ms(4))
    for size in (64 * KiB, 1 * MiB):
        p_measured = measured.plan(32, size // 32, NIAGARA).n_transport
        p_calibrated = calibrated.plan(32, size // 32, NIAGARA).n_transport
        assert p_measured <= 32 and p_calibrated <= 32
        ratio = max(p_measured, p_calibrated) / max(
            1, min(p_measured, p_calibrated))
        assert ratio <= 32  # same order, never absurd
