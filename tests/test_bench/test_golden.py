"""Golden-output guard: benchmark timing must stay bit-identical.

The transport-engine refactor (and anything after it) is required to
preserve single-rail event ordering exactly: the fig. 6 and fig. 8
mini-sweeps must reproduce the checked-in goldens bit for bit.  Floats
are compared through ``float.hex`` — no tolerance, by design.  If a
change legitimately alters timing (new hardware model, config default),
regenerate the goldens with ``python tests/test_bench/regen_goldens.py``
and explain the delta in the commit.
"""

import json
import pathlib

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


def encode(obj):
    """JSON-stable encoding with bit-exact floats."""
    if isinstance(obj, dict):
        return {str(k): encode(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [encode(v) for v in obj]
    if isinstance(obj, float):
        return float(obj).hex()
    return obj


def load(name):
    with open(GOLDEN_DIR / name) as fh:
        return json.load(fh)


def test_fig06_mini_sweep_matches_golden():
    from benchmarks.bench_fig06_transport_partitions import (
        OVERHEAD_SIZES_FAST,
        run_fig6,
    )
    from benchmarks.common import FAST_PTP

    result = encode(run_fig6(OVERHEAD_SIZES_FAST, FAST_PTP))
    assert json.loads(json.dumps(result)) == load("fig06_mini.json")


def test_fig08_mini_sweep_matches_golden():
    from benchmarks.bench_fig08_aggregator_comparison import (
        SIZES_FAST,
        run_fig8,
    )
    from benchmarks.common import FAST_PTP

    result = encode(run_fig8([4, 32], SIZES_FAST, FAST_PTP, 3))
    assert json.loads(json.dumps(result)) == load("fig08_mini.json")
