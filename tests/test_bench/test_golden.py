"""Golden-output guard: benchmark timing must stay bit-identical.

The transport-engine refactor (and anything after it) is required to
preserve single-rail event ordering exactly: the fig. 6 and fig. 8
mini-sweeps must reproduce the checked-in goldens bit for bit.  Floats
are compared through ``float.hex`` — no tolerance, by design.  If a
change legitimately alters timing (new hardware model, config default),
regenerate the goldens with ``python tests/test_bench/regen_goldens.py``
and explain the delta in the commit.
"""

import json
import pathlib

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


def encode(obj):
    """JSON-stable encoding with bit-exact floats."""
    if isinstance(obj, dict):
        return {str(k): encode(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [encode(v) for v in obj]
    if isinstance(obj, float):
        return float(obj).hex()
    return obj


def load(name):
    with open(GOLDEN_DIR / name) as fh:
        return json.load(fh)


def test_fig06_mini_sweep_matches_golden():
    from benchmarks.bench_fig06_transport_partitions import (
        OVERHEAD_SIZES_FAST,
        run_fig6,
    )
    from benchmarks.common import FAST_PTP

    result = encode(run_fig6(OVERHEAD_SIZES_FAST, FAST_PTP))
    assert json.loads(json.dumps(result)) == load("fig06_mini.json")


def test_fig08_mini_sweep_matches_golden():
    from benchmarks.bench_fig08_aggregator_comparison import (
        SIZES_FAST,
        run_fig8,
    )
    from benchmarks.common import FAST_PTP

    result = encode(run_fig8([4, 32], SIZES_FAST, FAST_PTP, 3))
    assert json.loads(json.dumps(result)) == load("fig08_mini.json")


def run_fig14_mini():
    """One tiny Sweep3D point per design (the fig14 kernel hot path)."""
    from repro.bench.sweep import run_sweep
    from repro.core import PLogGPAggregator
    from repro.model.tables import NIAGARA_LOGGP
    from repro.units import KiB, ms

    out = {}
    for name, module in (
        ("persist", None),
        ("ploggp", PLogGPAggregator(NIAGARA_LOGGP, delay=ms(4))),
    ):
        res = run_sweep(module, grid=(2, 2), n_threads=4,
                        total_bytes=64 * KiB, compute=1e-3,
                        noise_fraction=0.01, iterations=2, warmup=1)
        out[name] = {"times": list(res.times),
                     "mean_time": res.mean_time,
                     "mean_comm_time": res.mean_comm_time}
    return out


def run_ext_stencil_mini():
    """A tiny 2x2 halo exchange (the ext_stencil kernel hot path)."""
    from repro.coll import run_stencil
    from repro.core import PLogGPAggregator
    from repro.model.tables import NIAGARA_LOGGP
    from repro.units import KiB, ms

    out = {}
    for name, module in (
        ("persist", None),
        ("ploggp", PLogGPAggregator(NIAGARA_LOGGP, delay=ms(4))),
    ):
        res = run_stencil(module, grid=(2, 2), n_threads=2,
                          face_bytes=16 * KiB, compute=1e-3,
                          noise_fraction=0.01, iterations=2, warmup=1)
        out[name] = {"times": list(res.times),
                     "mean_time": res.mean_time,
                     "mean_comm_time": res.mean_comm_time}
    return out


def test_fig14_mini_sweep_matches_golden():
    result = encode(run_fig14_mini())
    assert json.loads(json.dumps(result)) == load("fig14_mini.json")


def test_ext_stencil_mini_matches_golden():
    result = encode(run_ext_stencil_mini())
    assert json.loads(json.dumps(result)) == load("ext_stencil_mini.json")
