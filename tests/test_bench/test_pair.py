"""Tests for the pair benchmark harness."""

import pytest

from repro.bench import run_partitioned_pair
from repro.core import FixedAggregation, NativeSpec
from repro.mpi.persist_module import PersistSpec
from repro.runtime import SingleThreadDelay
from repro.units import KiB, MiB


def test_iteration_count_and_warmup():
    res = run_partitioned_pair(PersistSpec, n_user=4, partition_size=1 * KiB,
                               iterations=5, warmup=2)
    assert len(res.iterations) == 5


def test_elapsed_positive_and_ordered():
    res = run_partitioned_pair(PersistSpec, n_user=4, partition_size=1 * KiB,
                               iterations=3, warmup=1)
    for it in res.iterations:
        assert it.elapsed > 0
        assert it.t_recv_done >= it.t0
        assert it.laggard_pready >= it.t0


def test_backed_run_verifies_data():
    res = run_partitioned_pair(
        lambda: NativeSpec(FixedAggregation(2, 1)),
        n_user=4, partition_size=1 * KiB,
        iterations=2, warmup=1, backed=True)
    assert res.total_bytes == 4 * KiB


def test_compute_reflected_in_elapsed():
    compute = 2e-3
    res = run_partitioned_pair(PersistSpec, n_user=4, partition_size=1 * KiB,
                               compute=compute, iterations=2, warmup=1)
    assert all(it.elapsed >= compute for it in res.iterations)
    assert res.mean_comm_time < res.mean_time


def test_noise_delays_laggard():
    compute = 1e-3
    res = run_partitioned_pair(
        PersistSpec, n_user=8, partition_size=1 * KiB,
        compute=compute, noise=SingleThreadDelay(0.5),
        iterations=3, warmup=1)
    for it in res.iterations:
        pready = sorted(it.pready_times)
        # laggard 50% later than the rest
        assert pready[-1] - pready[0] >= 0.4 * compute


def test_perceived_bandwidth_metric():
    res = run_partitioned_pair(
        PersistSpec, n_user=8, partition_size=1 * MiB,
        compute=10e-3, noise=SingleThreadDelay(0.04),
        iterations=2, warmup=1)
    assert res.mean_perceived_bandwidth > 0


def test_wrs_posted_tracked_for_native():
    res = run_partitioned_pair(
        lambda: NativeSpec(FixedAggregation(2, 1)),
        n_user=4, partition_size=1 * KiB, iterations=3, warmup=1)
    # 4 rounds total (3 + 1 warmup), 2 WRs each
    assert res.wrs_posted == 8
    assert res.timer_flushes == 0


def test_invalid_workload_rejected():
    from repro.bench.overhead import run_overhead

    with pytest.raises(ValueError):
        run_overhead(None, n_user=32, total_bytes=100)  # not divisible


def test_identical_seeds_identical_results():
    kwargs = dict(n_user=4, partition_size=4 * KiB, compute=1e-3,
                  noise=SingleThreadDelay(0.04), iterations=3, warmup=1)
    r1 = run_partitioned_pair(PersistSpec, seed=5, **kwargs)
    r2 = run_partitioned_pair(PersistSpec, seed=5, **kwargs)
    assert r1.mean_time == r2.mean_time


def test_different_seeds_differ():
    kwargs = dict(n_user=8, partition_size=4 * KiB, compute=1e-3,
                  noise=SingleThreadDelay(0.5), iterations=3, warmup=1)
    r1 = run_partitioned_pair(PersistSpec, seed=5, **kwargs)
    r2 = run_partitioned_pair(PersistSpec, seed=6, **kwargs)
    # Noise victims rotate differently; laggard preadys differ.
    v1 = [it.pready_times.index(max(it.pready_times)) for it in r1.iterations]
    v2 = [it.pready_times.index(max(it.pready_times)) for it in r2.iterations]
    assert v1 != v2 or r1.mean_time != r2.mean_time
