"""Tests for table formatting."""

from repro.bench.reporting import (
    format_bandwidth_series,
    format_delta_table,
    format_speedup_series,
    format_table,
)
from repro.units import KiB, MiB


def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 22], [333, 4]])
    lines = out.splitlines()
    assert len(lines) == 4  # header, rule, 2 rows
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all lines equal width


def test_speedup_series_layout():
    series = {
        "ploggp": {4 * KiB: 1.5, 1 * MiB: 1.02},
        "timer": {4 * KiB: 1.6},
    }
    out = format_speedup_series(series)
    assert "4KiB" in out
    assert "1MiB" in out
    assert "1.50x" in out
    assert "1.60x" in out
    assert "-" in out  # missing timer value at 1MiB


def test_bandwidth_series_with_reference():
    series = {"persist": {1 * MiB: 100 * 2**30}}
    out = format_bandwidth_series(series, reference=11.6 * 2**30)
    assert "100GiB/s" in out
    assert "11.6GiB/s" in out
    assert "1-thread line" in out


def test_delta_table_layout():
    table = {(1 * MiB, 8): 5e-6, (1 * MiB, 32): 35e-6, (8 * MiB, 32): 40e-6}
    out = format_delta_table(table)
    assert "8 parts" in out
    assert "32 parts" in out
    assert "35us" in out
    assert "-" in out  # (8MiB, 8) missing
