"""Tests for the Sweep3D benchmark (Fig. 14 shapes).

Grid sizes here are reduced (4x4) to keep the suite fast; the
benchmark scripts run the paper's full 8x8 x 16 threads = 1024 cores.
"""

import pytest

from repro.bench import run_sweep
from repro.core import PLogGPAggregator, TimerPLogGPAggregator
from repro.model.tables import NIAGARA_LOGGP
from repro.units import KiB, MiB, ms, us

GRID = (4, 4)
FAST = dict(grid=GRID, iterations=3, warmup=1)


def ploggp():
    return PLogGPAggregator(NIAGARA_LOGGP, delay=ms(4))


def timer():
    return TimerPLogGPAggregator(NIAGARA_LOGGP, delay=ms(4), delta=us(8))


def test_wavefront_critical_path():
    """Total time must cover (px + py - 1) compute stages."""
    res = run_sweep(None, total_bytes=64 * KiB, compute=1e-3,
                    noise_fraction=0.0, **FAST)
    assert res.critical_path_compute == pytest.approx(7e-3)
    assert all(t > res.critical_path_compute for t in res.times)
    assert res.mean_comm_time > 0


def test_medium_size_speedup_low_noise():
    """Fig. 14a: clear aggregation win for medium messages, ~10us noise."""
    base = run_sweep(None, total_bytes=256 * KiB, compute=1e-3,
                     noise_fraction=0.01, **FAST)
    agg = run_sweep(ploggp(), total_bytes=256 * KiB, compute=1e-3,
                    noise_fraction=0.01, **FAST)
    assert base.mean_comm_time / agg.mean_comm_time > 1.3


def test_large_size_no_speedup():
    """Fig. 14: very large messages gain nothing (wire-bound)."""
    base = run_sweep(None, total_bytes=16 * MiB, compute=1e-3,
                     noise_fraction=0.01, **FAST)
    agg = run_sweep(ploggp(), total_bytes=16 * MiB, compute=1e-3,
                    noise_fraction=0.01, **FAST)
    speedup = base.mean_comm_time / agg.mean_comm_time
    assert 0.9 < speedup < 1.15


def test_timer_beats_ploggp_under_heavier_noise():
    """Fig. 14b: with a 40us laggard the static PLogGP grouping stalls
    on the laggard while the timer flushes early arrivals."""
    kwargs = dict(total_bytes=256 * KiB, compute=1e-3, noise_fraction=0.04,
                  **FAST)
    base = run_sweep(None, **kwargs)
    agg = run_sweep(ploggp(), **kwargs)
    tmr = run_sweep(timer(), **kwargs)
    s_agg = base.mean_comm_time / agg.mean_comm_time
    s_tmr = base.mean_comm_time / tmr.mean_comm_time
    assert s_tmr > s_agg
    assert s_tmr > 1.2


def test_speedup_shrinks_with_noise():
    """Fig. 14c: a 400us laggard dominates communication; speedup ~1."""
    base = run_sweep(None, total_bytes=1 * MiB, compute=10e-3,
                     noise_fraction=0.04, **FAST)
    tmr = run_sweep(timer(), total_bytes=1 * MiB, compute=10e-3,
                    noise_fraction=0.04, **FAST)
    speedup = base.mean_comm_time / tmr.mean_comm_time
    assert 0.85 < speedup < 1.2


def test_grid_validation():
    with pytest.raises(ValueError):
        run_sweep(None, grid=(0, 4), total_bytes=64 * KiB)
    with pytest.raises(ValueError):
        run_sweep(None, grid=(2, 2), total_bytes=100, n_threads=16)


def test_single_row_grid():
    res = run_sweep(None, grid=(1, 3), total_bytes=64 * KiB, compute=1e-3,
                    noise_fraction=0.0, iterations=2, warmup=1)
    assert res.critical_path_compute == pytest.approx(3e-3)
    assert res.mean_comm_time > 0
