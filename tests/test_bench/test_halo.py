"""Tests for the halo-exchange benchmark harness."""

import pytest

from repro.bench import run_halo
from repro.core import PLogGPAggregator, TimerPLogGPAggregator
from repro.ib.topology import DragonflyPlus
from repro.model.tables import NIAGARA_LOGGP
from repro.units import KiB, MiB, ms, us

FAST = dict(grid=(3, 3), n_threads=8, iterations=3, warmup=1)


def test_halo_runs_and_times():
    res = run_halo(None, face_bytes=64 * KiB, compute=ms(1),
                   noise_fraction=0.0, **FAST)
    assert len(res.times) == 3
    assert all(t > ms(1) for t in res.times)
    assert res.mean_comm_time > 0


def test_halo_aggregation_helps_at_medium_sizes():
    base = run_halo(None, face_bytes=256 * KiB, compute=ms(1),
                    noise_fraction=0.01, **FAST)
    agg = run_halo(PLogGPAggregator(NIAGARA_LOGGP, delay=ms(4)),
                   face_bytes=256 * KiB, compute=ms(1),
                   noise_fraction=0.01, **FAST)
    assert base.mean_comm_time / agg.mean_comm_time > 1.2


def test_halo_wire_bound_at_large_sizes():
    base = run_halo(None, face_bytes=8 * MiB, compute=ms(1),
                    noise_fraction=0.01, **FAST)
    agg = run_halo(PLogGPAggregator(NIAGARA_LOGGP, delay=ms(4)),
                   face_bytes=8 * MiB, compute=ms(1),
                   noise_fraction=0.01, **FAST)
    speedup = base.mean_comm_time / agg.mean_comm_time
    assert 0.85 < speedup < 1.25


def test_halo_timer_design_works():
    res = run_halo(
        TimerPLogGPAggregator(NIAGARA_LOGGP, delay=ms(4), delta=us(8)),
        face_bytes=256 * KiB, compute=ms(1), noise_fraction=0.04, **FAST)
    assert res.mean_comm_time > 0


def test_halo_with_topology():
    topo = DragonflyPlus(nodes_per_leaf=2, leaves_per_group=2)
    res = run_halo(None, face_bytes=64 * KiB, compute=ms(0.5),
                   noise_fraction=0.0, topology=topo, **FAST)
    assert res.mean_comm_time > 0


def test_halo_validation():
    with pytest.raises(ValueError):
        run_halo(None, grid=(0, 2))
    with pytest.raises(ValueError):
        run_halo(None, face_bytes=100, n_threads=16)
