"""Shape tests: the paper's qualitative results must hold.

These are the reproduction's acceptance tests — each asserts a
direction or ordering the paper reports, at reduced iteration counts.
"""

import pytest

from repro.bench import (
    overhead_speedup_series,
    run_overhead,
    run_perceived_bandwidth,
)
from repro.bench.perceived import single_thread_line
from repro.core import (
    FixedAggregation,
    NoAggregation,
    PLogGPAggregator,
    TimerPLogGPAggregator,
)
from repro.model.tables import NIAGARA_LOGGP
from repro.units import KiB, MiB, ms, us

ITER = dict(iterations=10, warmup=2)


def ploggp():
    return PLogGPAggregator(NIAGARA_LOGGP, delay=ms(4))


def timer(delta=us(35)):
    return TimerPLogGPAggregator(NIAGARA_LOGGP, delay=ms(4), delta=delta)


# ---------------------------------------------------------------------------
# Fig. 6/8: overhead speedups
# ---------------------------------------------------------------------------


def test_aggregation_beats_baseline_at_medium_sizes_32_parts():
    """Fig. 8 @32: clear speedup in the medium range."""
    speedups = overhead_speedup_series(
        ploggp(), n_user=32, sizes=[64 * KiB, 128 * KiB], **ITER)
    assert all(s > 1.5 for s in speedups.values())


def test_speedup_fades_at_wire_saturation():
    """Fig. 6/8: speedup ~1.0 once the wire saturates (>= 4 MiB)."""
    speedups = overhead_speedup_series(
        ploggp(), n_user=32, sizes=[4 * MiB, 16 * MiB], **ITER)
    assert all(0.9 < s < 1.2 for s in speedups.values())


def test_peak_speedup_in_medium_range():
    """The speedup curve peaks between small and saturated sizes."""
    sizes = [1 * KiB, 64 * KiB, 8 * MiB]
    speedups = overhead_speedup_series(ploggp(), n_user=32, sizes=sizes, **ITER)
    assert speedups[64 * KiB] > speedups[1 * KiB]
    assert speedups[64 * KiB] > speedups[8 * MiB]


def test_few_balanced_partitions_gain_little():
    """Fig. 8 @4 partitions: no win at tiny sizes, none at saturation;
    a narrow benefit band in between (widest right at the rendezvous
    protocol switch, as the paper's spike discussion notes)."""
    speedups = overhead_speedup_series(
        ploggp(), n_user=4, sizes=[1 * KiB, 64 * KiB, 4 * MiB], **ITER)
    assert speedups[1 * KiB] < 1.1
    assert speedups[4 * MiB] < 1.1
    # 64 KiB sits right on the rendezvous protocol switch (16 KiB
    # partitions), where speedup spikes — the paper notes the same
    # protocol-switch spikes in its own curves.
    assert speedups[64 * KiB] < 2.8


def test_oversubscription_amplifies_gain():
    """Fig. 8 @128: oversubscribed threads (128 > 40 cores) make the
    baseline's per-message lock contention worse, growing the win."""
    s32 = overhead_speedup_series(ploggp(), n_user=32,
                                  sizes=[128 * KiB], **ITER)[128 * KiB]
    s128 = overhead_speedup_series(ploggp(), n_user=128,
                                   sizes=[128 * KiB], **ITER)[128 * KiB]
    assert s128 > s32


# ---------------------------------------------------------------------------
# Fig. 7: QP counts
# ---------------------------------------------------------------------------


def test_one_qp_sufficient_for_small_messages():
    """16 partitions, no aggregation: QP count hardly matters small."""
    size = 16 * KiB
    t1 = run_overhead(NoAggregation(n_qps=1), n_user=16,
                      total_bytes=size, **ITER).mean_time
    t16 = run_overhead(NoAggregation(n_qps=16), n_user=16,
                       total_bytes=size, **ITER).mean_time
    assert abs(t1 - t16) / t1 < 0.25


def test_more_qps_win_for_large_messages():
    """Past ~64 KiB partitions prefer concurrency (Fig. 7)."""
    size = 16 * MiB
    t1 = run_overhead(NoAggregation(n_qps=1), n_user=16,
                      total_bytes=size, **ITER).mean_time
    t16 = run_overhead(NoAggregation(n_qps=16), n_user=16,
                       total_bytes=size, **ITER).mean_time
    assert t16 < t1 * 0.95


# ---------------------------------------------------------------------------
# Fig. 9/13: perceived bandwidth
# ---------------------------------------------------------------------------


PERC = dict(compute=20e-3, noise_fraction=0.04, iterations=5, warmup=2)


def test_early_bird_exceeds_single_thread_line():
    """All designs perceive more bandwidth than one thread could get,
    for medium sizes."""
    line = single_thread_line()
    for module in (None, ploggp(), timer()):
        r = run_perceived_bandwidth(module, n_user=32,
                                    total_bytes=8 * MiB, **PERC)
        assert r.perceived_bandwidth > line


def test_ploggp_perceives_less_than_persistent():
    """Fig. 9: aggregation inflates the last transport partition."""
    base = run_perceived_bandwidth(None, n_user=32, total_bytes=8 * MiB,
                                   **PERC)
    agg = run_perceived_bandwidth(ploggp(), n_user=32, total_bytes=8 * MiB,
                                  **PERC)
    assert agg.perceived_bandwidth < base.perceived_bandwidth


def test_timer_recovers_ploggp_shortfall():
    """Fig. 9: the timer design sends the laggard alone, perceiving
    close to (or better than) the persistent implementation."""
    base = run_perceived_bandwidth(None, n_user=32, total_bytes=8 * MiB,
                                   **PERC)
    agg = run_perceived_bandwidth(ploggp(), n_user=32, total_bytes=8 * MiB,
                                  **PERC)
    # Laggard delay here is 20ms x 4% = 800us; delta must undercut it
    # for the flush path to engage (the paper's 3000us delta plays the
    # same role against its 4ms laggard).
    tmr = run_perceived_bandwidth(timer(us(300)), n_user=32,
                                  total_bytes=8 * MiB, **PERC)
    assert tmr.perceived_bandwidth > agg.perceived_bandwidth
    assert tmr.perceived_bandwidth > 0.7 * base.perceived_bandwidth


def test_large_messages_converge_to_line():
    """Fig. 9 right edge: at 128 MiB everyone is wire-limited."""
    line = single_thread_line()
    for module in (None, ploggp(), timer(us(3000))):
        r = run_perceived_bandwidth(module, n_user=32,
                                    total_bytes=128 * MiB, **PERC)
        assert r.perceived_bandwidth < 2.5 * line


def test_delta_window_insensitive():
    """Fig. 13: delta in {10, 35, 100} us changes perceived bandwidth
    by only a few percent."""
    values = []
    for delta in (us(10), us(35), us(100)):
        r = run_perceived_bandwidth(timer(delta), n_user=32,
                                    total_bytes=8 * MiB, **PERC)
        values.append(r.perceived_bandwidth)
    spread = (max(values) - min(values)) / min(values)
    assert spread < 0.15
