"""Regenerate the benchmark goldens (run from the repo root).

Only do this when a change *legitimately* alters simulated timing —
new hardware model, changed config default — never to paper over an
unintended perturbation.  Usage::

    PYTHONPATH=src:. python tests/test_bench/regen_goldens.py
"""

import json
import pathlib
import sys

if __package__ in (None, ""):
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]))

from tests.test_bench.test_golden import (
    GOLDEN_DIR,
    encode,
    run_ext_stencil_mini,
    run_fig14_mini,
)


def main() -> None:
    from benchmarks.bench_fig06_transport_partitions import (
        OVERHEAD_SIZES_FAST,
        run_fig6,
    )
    from benchmarks.bench_fig08_aggregator_comparison import (
        SIZES_FAST,
        run_fig8,
    )
    from benchmarks.common import FAST_PTP

    goldens = {
        "fig06_mini.json": run_fig6(OVERHEAD_SIZES_FAST, FAST_PTP),
        "fig08_mini.json": run_fig8([4, 32], SIZES_FAST, FAST_PTP, 3),
        "fig14_mini.json": run_fig14_mini(),
        "ext_stencil_mini.json": run_ext_stencil_mini(),
    }
    for name, result in goldens.items():
        path = GOLDEN_DIR / name
        with open(path, "w") as fh:
            json.dump(encode(result), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
