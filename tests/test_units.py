"""Tests for unit helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.units import (
    GiB,
    KiB,
    MiB,
    fmt_bytes,
    fmt_rate,
    fmt_time,
    gib,
    is_power_of_two,
    kib,
    mib,
    ms,
    next_power_of_two,
    ns,
    powers_of_two,
    us,
)


def test_byte_constants():
    assert KiB == 1024
    assert MiB == 1024 * KiB
    assert GiB == 1024 * MiB


def test_byte_helpers():
    assert kib(4) == 4096
    assert mib(2) == 2 * MiB
    assert gib(1) == GiB
    assert kib(1.5) == 1536


def test_time_helpers():
    assert ms(1) == pytest.approx(1e-3)
    assert us(35) == pytest.approx(35e-6)
    assert ns(100) == pytest.approx(1e-7)


def test_fmt_bytes():
    assert fmt_bytes(512) == "512B"
    assert fmt_bytes(4 * KiB) == "4KiB"
    assert fmt_bytes(128 * MiB) == "128MiB"
    assert fmt_bytes(2 * GiB) == "2GiB"
    assert fmt_bytes(1536) == "1.5KiB"


def test_fmt_bytes_negative():
    with pytest.raises(ValueError):
        fmt_bytes(-1)


def test_fmt_time():
    assert fmt_time(0) == "0s"
    assert fmt_time(1.0) == "1s"
    assert fmt_time(35e-6) == "35us"
    assert fmt_time(4e-3) == "4ms"
    assert fmt_time(1.5e-9) == "1.5ns"


def test_fmt_time_negative():
    with pytest.raises(ValueError):
        fmt_time(-1e-6)


def test_fmt_rate():
    assert fmt_rate(11.6 * GiB) == "11.6GiB/s"
    assert "MiB/s" in fmt_rate(500 * MiB)
    assert "B/s" in fmt_rate(10)


def test_is_power_of_two():
    assert all(is_power_of_two(1 << i) for i in range(20))
    assert not any(is_power_of_two(n) for n in (0, -1, 3, 6, 100))


def test_next_power_of_two():
    assert next_power_of_two(1) == 1
    assert next_power_of_two(3) == 4
    assert next_power_of_two(1024) == 1024
    assert next_power_of_two(1025) == 2048
    with pytest.raises(ValueError):
        next_power_of_two(0)


def test_powers_of_two():
    assert powers_of_two(1, 16) == [1, 2, 4, 8, 16]
    assert powers_of_two(3, 20) == [4, 8, 16]
    assert powers_of_two(5, 4) == []
    with pytest.raises(ValueError):
        powers_of_two(0, 8)


@given(st.integers(min_value=1, max_value=2**40))
def test_next_power_of_two_properties(n):
    p = next_power_of_two(n)
    assert is_power_of_two(p)
    assert p >= n
    assert p < 2 * n or n == 1
