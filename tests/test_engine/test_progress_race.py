"""Regression tests: the wait_until/kick race and the fallback knob.

A kick that lands between a waiter's predicate check and its park must
not be lost: before the edge-triggered latch, the waiter would sleep
the whole idle fallback (100 us by default) past work that was already
done — the race these tests pin down.
"""

import pytest

from repro.config import ClusterConfig, ConfigError, EngineConfig
from repro.engine import ProgressEngine
from repro.units import ns, us


def test_kick_landing_as_the_waiter_parks_is_not_lost(env):
    """Kick and predicate flip at the exact step the waiter re-checks.

    Event ordering at t=50ns is: waiter resumes from its poll-miss
    charge, finds the predicate still false and the latch clear, and
    parks; only then does the kicker run, flip the flag, and kick.  A
    level-style wakeup would miss it and sleep the full 100 us
    fallback; the latch must wake the waiter immediately.
    """
    engine = ProgressEngine(env, t_poll_miss=ns(50))
    flag = [False]

    def waiter(env):
        yield from engine.wait_until(lambda: flag[0])
        return env.now

    def kicker(env):
        yield env.timeout(ns(50))
        flag[0] = True
        engine.kick()

    p = env.process(waiter(env))
    env.process(kicker(env))
    env.run()
    assert p.value < us(50)


def test_kick_during_progress_pass_is_not_lost(env):
    """A kick mid-pass (latch set while the waiter is *not* parked)
    must be consumed before parking, not dropped."""
    engine = ProgressEngine(env, t_poll_miss=ns(50))
    flag = [False]

    def waiter(env):
        yield from engine.wait_until(lambda: flag[0])
        return env.now

    def kicker(env):
        yield env.timeout(ns(25))  # inside the waiter's poll-miss charge
        flag[0] = True
        engine.kick()

    p = env.process(waiter(env))
    env.process(kicker(env))
    env.run()
    assert p.value < us(50)


def test_unkicked_wait_uses_idle_fallback(env):
    """Without a kick, the waiter wakes on the fallback cadence."""
    engine = ProgressEngine(env, t_poll_miss=ns(50), idle_fallback=us(7))
    flag = [False]

    def waiter(env):
        yield from engine.wait_until(lambda: flag[0])
        return env.now

    def setter(env):
        yield env.timeout(us(1))
        flag[0] = True  # no kick: only the fallback can find this

    p = env.process(waiter(env))
    env.process(setter(env))
    env.run()
    assert us(7) <= p.value < us(8)


# -- the fallback knob ------------------------------------------------------


def test_idle_fallback_must_be_positive(env):
    with pytest.raises(ValueError):
        ProgressEngine(env, t_poll_miss=ns(50), idle_fallback=0)
    with pytest.raises(ValueError):
        ProgressEngine(env, t_poll_miss=ns(50), idle_fallback=-us(1))


def test_engine_config_validates():
    with pytest.raises(ConfigError):
        EngineConfig(idle_fallback=0).validate()
    with pytest.raises(ConfigError):
        EngineConfig(poll_batch=0).validate()
    EngineConfig().validate()


def test_cluster_config_carries_engine_knobs():
    from dataclasses import replace

    cfg = ClusterConfig()
    assert cfg.engine.idle_fallback == pytest.approx(us(100))
    assert cfg.engine.poll_batch == 16
    tuned = replace(cfg, engine=EngineConfig(idle_fallback=us(10)))
    tuned.validate()
    assert tuned.engine.idle_fallback == pytest.approx(us(10))
    with pytest.raises(ConfigError):
        replace(cfg, engine=EngineConfig(idle_fallback=-1.0)).validate()
