"""ReplayTracker: the one recovery protocol shared by every transport."""

import pytest

from repro.engine import ReplayTracker, reconnect_walk
from repro.ib.constants import QPState
from repro.units import us

from tests.test_engine.conftest import FakeFabric, FakeFaults

DELAY = us(10)


class FakeQP:
    def __init__(self, state=QPState.RTS):
        self.state = state


@pytest.fixture
def fake_reconnect(monkeypatch):
    """Replace the verbs reconnect with one that just flips states."""
    from repro.ib import verbs

    calls = []

    def reconnect(local, remote):
        calls.append((local, remote))
        local.state = QPState.RTS
        if remote is not None:
            remote.state = QPState.RTS

    monkeypatch.setattr(verbs, "reconnect_qps", reconnect)
    return calls


# -- reconnect_walk ---------------------------------------------------------


def test_walk_fixes_only_dead_pairs(fake_reconnect):
    good = (FakeQP(), FakeQP())
    dead_local = (FakeQP(QPState.ERROR), FakeQP())
    dead_remote = (FakeQP(), FakeQP(QPState.ERROR))
    pairs = [("a", *good), ("b", *dead_local), ("c", *dead_remote)]
    fixed = reconnect_walk(pairs)
    assert fixed == {"b", "c"}
    assert len(fake_reconnect) == 2
    assert all(qp.state is QPState.RTS
               for _, l, r in pairs for qp in (l, r))


def test_walk_tolerates_missing_remote(fake_reconnect):
    qp = FakeQP(QPState.ERROR)
    fixed = reconnect_walk([("x", qp, None)])
    assert fixed == {"x"}
    assert fake_reconnect == [(qp, None)]


def test_walk_on_fixed_hook(fake_reconnect):
    qp_l, qp_r = FakeQP(QPState.ERROR), FakeQP()
    hooked = []
    reconnect_walk([("t", qp_l, qp_r)],
                   on_fixed=lambda tok, l, r: hooked.append((tok, l, r)))
    assert hooked == [("t", qp_l, qp_r)]


# -- ReplayTracker ----------------------------------------------------------


def make_tracker(env, allow_reconnect=True):
    fabric = FakeFabric(FakeFaults(allow_reconnect))
    return ReplayTracker(env, fabric, DELAY), fabric


def test_recovery_enabled_policy(env):
    tracker, _ = make_tracker(env)
    assert tracker.recovery_enabled
    tracker, _ = make_tracker(env, allow_reconnect=False)
    assert not tracker.recovery_enabled
    tracker = ReplayTracker(env, FakeFabric(None), DELAY)
    assert not tracker.recovery_enabled


def test_inflight_bookkeeping(env):
    tracker, _ = make_tracker(env)
    tracker.track(1, "qp-a", "payload-1")
    tracker.track(2, "qp-b", "payload-2")
    assert tracker.complete(1) == ("qp-a", "payload-1")
    assert tracker.complete(1) is None
    assert tracker.fail(2) == ("qp-b", "payload-2")
    assert tracker.fail(99) is None


def test_recover_sweeps_and_replays_fifo(env):
    tracker, fabric = make_tracker(env)
    replayed = []

    def replay_unit(unit):
        replayed.append((unit, env.now))
        yield env.timeout(0)

    tracker.bind(
        recover_walk=lambda: {"qp-a"},
        restock=lambda: None,
        on_dropped=lambda payload: payload,
        can_replay=lambda unit: True,
        replay_unit=replay_unit,
    )
    # Two in-flight WRs: one on the dead path, one on a live path.
    tracker.track(1, "qp-a", ["u1", "u2"])
    tracker.track(2, "qp-b", ["u3"])
    tracker.queue(["u0"])  # queued directly (error CQE path)
    tracker.kick()
    tracker.kick()  # idempotent: one recovery process per burst
    env.run()
    # FIFO: directly-queued unit first, then the swept WR's units.
    assert [u for u, _ in replayed] == ["u0", "u1", "u2"]
    # Replays happen after the reconnect delay, not before.
    assert all(t == pytest.approx(DELAY) for _, t in replayed)
    assert fabric.counters.get("mpi.replayed_wrs") == 3
    assert not tracker.recovering
    assert not tracker.replay
    # The live WR stayed tracked.
    assert tracker.complete(2) == ("qp-b", ["u3"])


def test_recover_takes_another_lap_when_path_still_dead(env):
    tracker, fabric = make_tracker(env)
    laps = []
    replayed = []

    def can_replay(unit):
        # First lap: still dead.  Second lap: fixed.
        return len(laps) >= 2

    def recover_walk():
        laps.append(env.now)
        return set()

    def replay_unit(unit):
        replayed.append((unit, env.now))
        return
        yield

    tracker.bind(recover_walk=recover_walk, restock=lambda: None,
                 on_dropped=lambda p: p, can_replay=can_replay,
                 replay_unit=replay_unit)
    tracker.queue(["u"])
    tracker.kick()
    env.run()
    assert len(laps) == 2
    assert replayed == [("u", pytest.approx(2 * DELAY))]
    assert fabric.counters.get("mpi.replayed_wrs") == 1
    assert not tracker.recovering


def test_custom_counter_name(env):
    fabric = FakeFabric(FakeFaults())
    tracker = ReplayTracker(env, fabric, DELAY, counter="mpi.p2p_resubmits")

    def replay_unit(unit):
        return
        yield

    tracker.bind(recover_walk=lambda: set(), restock=lambda: None,
                 on_dropped=lambda p: p, can_replay=lambda u: True,
                 replay_unit=replay_unit)
    tracker.queue(["m"])
    tracker.kick()
    env.run()
    assert fabric.counters.get("mpi.p2p_resubmits") == 1
