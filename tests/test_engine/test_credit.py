"""CreditManager and restock: round credits plus RQ top-up."""

import pytest

from repro.engine import CreditManager, restock
from repro.units import us


class FakeRQ_QP:
    def __init__(self, stocked=0):
        self.rq = [object()] * stocked
        self.posted = []

    def post_recv(self, wr):
        self.rq.append(wr)
        self.posted.append(wr)


# -- restock ----------------------------------------------------------------


def test_restock_tops_up_to_target():
    qp = FakeRQ_QP(stocked=3)
    restock(qp, 8)
    assert len(qp.rq) == 8
    assert len(qp.posted) == 5
    # Anonymous entries by default, like the p2p channels post.
    assert all(wr.wr_id == 0 for wr in qp.posted)


def test_restock_never_drains():
    qp = FakeRQ_QP(stocked=10)
    restock(qp, 4)
    assert len(qp.rq) == 10
    assert qp.posted == []


def test_restock_wr_id_factory():
    qp = FakeRQ_QP()
    ids = iter([11, 12, 13])
    restock(qp, 3, lambda: next(ids))
    assert [wr.wr_id for wr in qp.posted] == [11, 12, 13]


# -- CreditManager ----------------------------------------------------------


def test_credit_arrives_one_flight_later(env):
    mgr = CreditManager(env, flush=lambda: iter(()))
    mgr.grant(1, flight=us(2))
    assert not mgr.ready(1)
    env.run(until=us(1))
    assert mgr.armed_round == 0
    env.run(until=us(3))
    assert mgr.armed_round == 1
    assert mgr.ready(1)
    assert not mgr.ready(2)


def test_credit_never_regresses(env):
    mgr = CreditManager(env, flush=lambda: iter(()))
    mgr.grant(3, flight=us(1))
    mgr.grant(2, flight=us(2))  # an older round's credit lands later
    env.run()
    assert mgr.armed_round == 3


def test_deferred_flushes_on_arrival(env):
    flushed = []

    def flush():
        while mgr.deferred:
            flushed.append((mgr.deferred.pop(0), env.now))
            yield env.timeout(0)

    mgr = CreditManager(env, flush=flush)
    mgr.defer("p0")
    mgr.defer_all(["p1", "p2"])
    mgr.grant(1, flight=us(5))
    env.run()
    assert [p for p, _ in flushed] == ["p0", "p1", "p2"]
    assert flushed[0][1] == pytest.approx(us(5))
    assert not mgr.deferred


def test_no_flush_without_backlog(env):
    calls = []

    def flush():
        calls.append(True)
        return
        yield

    mgr = CreditManager(env, flush=flush)
    mgr.grant(1, flight=us(1))
    env.run()
    assert calls == []
