"""Shared stubs for the engine-layer unit tests."""

import pytest

from repro.sim import Environment


class FakeCounters:
    def __init__(self):
        self.data = {}

    def inc(self, name, n=1):
        self.data[name] = self.data.get(name, 0) + n

    def get(self, name):
        return self.data.get(name, 0)


class FakeSchedule:
    def __init__(self, allow_reconnect=True):
        self.allow_reconnect = allow_reconnect


class FakeFaults:
    def __init__(self, allow_reconnect=True):
        self.schedule = FakeSchedule(allow_reconnect)


class FakeFabric:
    """Just enough fabric for ReplayTracker: faults policy + counters."""

    def __init__(self, faults=None):
        self.faults = faults
        self.counters = FakeCounters()


class FakeWC:
    def __init__(self, wr_id, ok=True):
        self.wr_id = wr_id
        self.ok = ok
        self.imm_data = None


class FakeCQ:
    """A completion queue the router can poll: a list plus push hooks."""

    def __init__(self):
        self.wcs = []
        self.on_push = []

    def push(self, wc):
        self.wcs.append(wc)
        for hook in self.on_push:
            hook(wc)

    def poll(self, n):
        out, self.wcs = self.wcs[:n], self.wcs[n:]
        return out


class FakeHost:
    t_poll_hit = 100e-9


@pytest.fixture
def env():
    return Environment()
