"""CompletionRouter: canonical polling loop and keyed dispatch."""

import pytest

from repro.engine import CompletionRouter, ProgressEngine
from repro.units import ns

from tests.test_engine.conftest import FakeCQ, FakeHost, FakeWC


def make_router(env, batch=16):
    engine = ProgressEngine(env, t_poll_miss=ns(50))
    return engine, CompletionRouter(engine, FakeHost(), batch=batch)


def test_batch_must_be_positive(env):
    engine = ProgressEngine(env, t_poll_miss=ns(50))
    with pytest.raises(ValueError):
        CompletionRouter(engine, FakeHost(), batch=0)


def test_bind_polls_and_dispatches(env):
    engine, router = make_router(env)
    cq = FakeCQ()
    seen = []
    idles = []

    def on_wc(wc):
        seen.append(wc.wr_id)
        return
        yield

    router.bind(cq, on_wc, on_idle=lambda: idles.append(len(seen)))
    for wr_id in (1, 2, 3):
        cq.push(FakeWC(wr_id))

    def prog(env):
        handled = yield from engine.progress_once()
        return (handled, env.now)

    p = env.process(prog(env))
    env.run()
    handled, now = p.value
    assert handled == 3
    assert seen == [1, 2, 3]
    # t_poll_hit charged once per completion.
    assert now == pytest.approx(3 * FakeHost.t_poll_hit)
    assert router.completions_routed == 3
    # The idle hook runs after every drained pass, including this one.
    assert idles == [3]


def test_cq_push_kicks_engine(env):
    engine, router = make_router(env)
    cq = FakeCQ()
    router.bind(cq, lambda wc: iter(()))
    assert len(cq.on_push) == 1
    cq.push(FakeWC(7))
    # The push must have set the engine's park latch.
    assert engine._notify.pending


def test_batch_larger_than_queue_drains_in_laps(env):
    engine, router = make_router(env, batch=2)
    cq = FakeCQ()
    seen = []

    def on_wc(wc):
        seen.append(wc.wr_id)
        return
        yield

    router.bind(cq, on_wc)
    for wr_id in range(5):
        cq.push(FakeWC(wr_id))

    def prog(env):
        return (yield from engine.progress_once())

    p = env.process(prog(env))
    env.run()
    assert p.value == 5
    assert seen == [0, 1, 2, 3, 4]


def test_keyed_dispatch_is_one_shot(env):
    _, router = make_router(env)
    cb = object()
    router.on_success(5, cb)
    router.on_failure(5, "entry")
    assert router.pop_success(5) is cb
    assert router.pop_success(5) is None
    assert router.pop_failure(5) == "entry"
    assert router.pop_failure(5) is None


def test_discard_drops_both_tables(env):
    _, router = make_router(env)
    router.on_success(9, "cb")
    router.on_failure(9, "entry")
    router.discard(9)
    assert router.pop_success(9) is None
    assert router.pop_failure(9) is None


def test_sweep_failures_filters_and_preserves_order(env):
    _, router = make_router(env)
    router.on_success(1, "cb1")
    router.on_failure(1, ("chan-a", "m1"))
    router.on_failure(2, ("chan-b", "m2"))
    router.on_failure(3, ("chan-a", "m3"))
    swept = router.sweep_failures(lambda e: e[0] == "chan-a")
    assert swept == [("chan-a", "m1"), ("chan-a", "m3")]
    # Non-matching entries survive; matching success callbacks go too.
    assert router.pop_failure(2) == ("chan-b", "m2")
    assert router.pop_success(1) is None
