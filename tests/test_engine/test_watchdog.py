"""Circuit-breaker, edge-watchdog, and epoch-deadline state machines."""

import pytest

from repro.engine import ProgressEngine
from repro.engine.watchdog import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, EdgeWatchdog
from repro.errors import EpochDeadlineError
from repro.units import ns, us


# -- CircuitBreaker ----------------------------------------------------


def test_breaker_trips_after_threshold_consecutive_failures():
    b = CircuitBreaker(threshold=3)
    assert b.state == CLOSED
    assert not b.record_failure()
    assert not b.record_failure()
    assert b.record_failure()  # the tripping event reports True
    assert b.state == OPEN
    assert b.trips == 1


def test_open_breaker_ignores_further_failures():
    b = CircuitBreaker(threshold=1)
    assert b.record_failure()
    assert not b.record_failure()
    assert not b.record_failure()
    assert b.trips == 1


def test_success_resets_the_consecutive_count():
    b = CircuitBreaker(threshold=2)
    b.record_failure()
    b.record_success()
    assert not b.record_failure()  # count restarted: 1 of 2
    assert b.state == CLOSED


def test_probation_closes_after_enough_clean_rounds():
    b = CircuitBreaker(threshold=1, probation=3)
    b.record_failure()
    b.begin_probation()
    assert b.state == HALF_OPEN
    assert not b.record_success()
    assert not b.record_success()
    assert b.record_success()  # the closing round reports True
    assert b.state == CLOSED


def test_failure_during_probation_retrips():
    b = CircuitBreaker(threshold=1, probation=3)
    b.record_failure()
    b.begin_probation()
    b.record_success()
    assert b.record_failure()
    assert b.state == OPEN
    assert b.trips == 2


def test_reset_recloses_fully():
    b = CircuitBreaker(threshold=1)
    b.record_failure()
    b.reset()
    assert b.state == CLOSED
    assert b.failures == 0
    assert b.trips == 1  # lifetime count survives


def test_breaker_rejects_bad_knobs():
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=1, probation=0)


# -- EdgeWatchdog ------------------------------------------------------


def test_disabled_watchdog_never_expires():
    w = EdgeWatchdog(deadline=None)
    w.arm(0.0)
    assert not w.expired(1e9)
    assert w.misses == 0


def test_late_round_counts_a_miss_and_disarms():
    w = EdgeWatchdog(deadline=us(100))
    w.arm(0.0)
    assert w.expired(us(150))
    assert w.misses == 1
    # Disarmed: the same overrun is not double-counted.
    assert not w.expired(us(300))


def test_on_time_round_is_clean():
    w = EdgeWatchdog(deadline=us(100))
    w.arm(us(10))
    assert not w.expired(us(100))
    assert w.misses == 0


def test_unarmed_watchdog_never_expires():
    w = EdgeWatchdog(deadline=us(100))
    assert not w.expired(us(500))


def test_watchdog_rejects_bad_deadline():
    with pytest.raises(ValueError):
        EdgeWatchdog(deadline=0.0)


# -- wait_until epoch deadline -----------------------------------------


def test_wait_until_raises_on_deadline(env):
    engine = ProgressEngine(env, t_poll_miss=ns(50))

    def waiter(env):
        yield from engine.wait_until(lambda: False, deadline=us(20),
                                     describe="partition 3 of epoch 2")

    env.process(waiter(env))
    with pytest.raises(EpochDeadlineError) as excinfo:
        env.run()
    assert "partition 3 of epoch 2" in str(excinfo.value)
    # The waiter parked toward the deadline instead of overshooting it.
    assert env.now == pytest.approx(us(20), abs=us(1))


def test_wait_until_deadline_is_not_raised_when_work_completes(env):
    engine = ProgressEngine(env, t_poll_miss=ns(50))
    flag = [False]

    def waiter(env):
        yield from engine.wait_until(lambda: flag[0], deadline=us(500))
        return env.now

    def finisher(env):
        yield env.timeout(us(30))
        flag[0] = True
        engine.kick()

    p = env.process(waiter(env))
    env.process(finisher(env))
    env.run()
    assert p.value < us(500)
