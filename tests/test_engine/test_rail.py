"""Rail: ordered QP sets, striped and round-robin scheduling, multi-port."""

import pytest

from repro.config import NIAGARA
from repro.engine import Rail, RailPolicy, build_rails
from repro.ib import verbs
from repro.ib.constants import QPState
from repro.ib.fabric import Fabric


class FakeQP:
    def __init__(self, name, slots=1):
        self.name = name
        self.slots = slots
        self.state = QPState.RTS

    def has_rdma_slot(self):
        return self.slots > 0

    def wait_rdma_slot(self):  # pragma: no cover - not reached in tests
        raise AssertionError("should not wait with a free slot")


def test_rail_needs_at_least_one_qp():
    with pytest.raises(ValueError):
        Rail([])


def test_striped_requires_key():
    rail = Rail([FakeQP("a"), FakeQP("b")])
    with pytest.raises(ValueError):
        rail.select()
    with pytest.raises(ValueError):
        rail.peek()


def test_striped_is_deterministic():
    qps = [FakeQP("a"), FakeQP("b"), FakeQP("c")]
    rail = Rail(qps, RailPolicy.STRIPED)
    assert rail.select(0) is qps[0]
    assert rail.select(4) is qps[1]
    assert rail.select(4) is qps[1]  # no hidden state
    assert rail.peek(5) is qps[2]


def test_round_robin_advances_on_select_not_peek():
    qps = [FakeQP("a"), FakeQP("b")]
    rail = Rail(qps, RailPolicy.ROUND_ROBIN)
    assert rail.peek() is qps[0]
    assert rail.peek() is qps[0]
    assert rail.select() is qps[0]
    assert rail.peek() is qps[1]
    assert rail.select() is qps[1]
    assert rail.select() is qps[0]


def test_sequence_protocol():
    qps = [FakeQP("a"), FakeQP("b")]
    rail = Rail(qps)
    assert len(rail) == 2
    assert list(rail) == qps
    assert rail[1] is qps[1]


def test_acquire_returns_selected_qp(env):
    qps = [FakeQP("a"), FakeQP("b")]
    rail = Rail(qps, RailPolicy.ROUND_ROBIN)

    def prog(env):
        first = yield from rail.acquire()
        second = yield from rail.acquire()
        return (first, second)

    p = env.process(prog(env))
    env.run()
    assert p.value == (qps[0], qps[1])


def test_build_rails_binds_ports_and_orders_qps(env):
    fabric = Fabric(env, NIAGARA)
    fabric.add_node(0)
    fabric.add_node(1)
    ctx0 = verbs.ibv_open_device(fabric, 0)
    ctx1 = verbs.ibv_open_device(fabric, 1)
    pd0, pd1 = verbs.ibv_alloc_pd(ctx0), verbs.ibv_alloc_pd(ctx1)
    cq0, cq1 = verbs.ibv_create_cq(ctx0), verbs.ibv_create_cq(ctx1)
    send_rails, recv_rails = build_rails(
        ctx0, ctx1, pd0, pd1, cq0, cq1, n_qps=2, n_ports=2)
    assert len(send_rails) == len(recv_rails) == 2
    for port, (srail, rrail) in enumerate(zip(send_rails, recv_rails)):
        assert len(srail) == len(rrail) == 2
        for qp_s, qp_r in zip(srail, rrail):
            # Both ends of a pair ride the same NIC port and are RTS.
            assert qp_s.port == port
            assert qp_r.port == port
            assert qp_s.state is QPState.RTS
            assert qp_r.dest_qp_num == qp_s.qp_num
    # Creation order matches the historical loop — pair by pair, port
    # by port — so each side's QP numbers strictly increase.
    for rails in (send_rails, recv_rails):
        nums = [qp.qp_num for rail in rails for qp in rail]
        assert nums == sorted(nums)
