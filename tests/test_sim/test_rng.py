"""Tests for named random streams."""

import pytest

from repro.sim import RngStreams


def test_same_seed_same_stream():
    a = RngStreams(5).stream("noise").random(8).tolist()
    b = RngStreams(5).stream("noise").random(8).tolist()
    assert a == b


def test_different_names_independent():
    streams = RngStreams(5)
    a = streams.stream("alpha").random(8).tolist()
    b = streams.stream("beta").random(8).tolist()
    assert a != b


def test_different_seeds_differ():
    a = RngStreams(1).stream("x").random(8).tolist()
    b = RngStreams(2).stream("x").random(8).tolist()
    assert a != b


def test_stream_cached():
    streams = RngStreams(0)
    assert streams.stream("s") is streams.stream("s")


def test_creation_order_irrelevant():
    """Stream content depends only on (seed, name), not creation order."""
    s1 = RngStreams(9)
    s1.stream("first")
    a = s1.stream("second").random(4).tolist()
    s2 = RngStreams(9)
    b = s2.stream("second").random(4).tolist()
    assert a == b


def test_consumption_isolated():
    """Draws from one stream don't perturb another."""
    s1 = RngStreams(3)
    s1.stream("hot").random(1000)
    a = s1.stream("cold").random(4).tolist()
    s2 = RngStreams(3)
    b = s2.stream("cold").random(4).tolist()
    assert a == b


def test_spawn_independent():
    parent = RngStreams(4)
    child = parent.spawn("child")
    a = parent.stream("x").random(4).tolist()
    b = child.stream("x").random(4).tolist()
    assert a != b


def test_spawn_deterministic():
    a = RngStreams(4).spawn("c").stream("x").random(4).tolist()
    b = RngStreams(4).spawn("c").stream("x").random(4).tolist()
    assert a == b


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        RngStreams(-1)
