"""Tests for SimLock / SimSemaphore / AtomicCounter / SimBarrier."""

import pytest

from repro.errors import SimulationError
from repro.sim import AtomicCounter, Environment, SimBarrier, SimLock, SimSemaphore


def test_lock_mutual_exclusion():
    env = Environment()
    lock = SimLock(env)
    inside = []

    def critical(env, lock, tag):
        yield lock.acquire()
        inside.append((tag, "enter", env.now))
        yield env.timeout(1.0)
        inside.append((tag, "exit", env.now))
        lock.release()

    env.process(critical(env, lock, "a"))
    env.process(critical(env, lock, "b"))
    env.run()
    # b cannot enter until a exits
    assert inside == [
        ("a", "enter", 0.0),
        ("a", "exit", 1.0),
        ("b", "enter", 1.0),
        ("b", "exit", 2.0),
    ]


def test_try_acquire_nonblocking():
    env = Environment()
    lock = SimLock(env)
    results = []

    def holder(env, lock):
        yield lock.acquire()
        yield env.timeout(5.0)
        lock.release()

    def prober(env, lock):
        yield env.timeout(1.0)
        results.append(lock.try_acquire())  # held -> False
        yield env.timeout(10.0)
        results.append(lock.try_acquire())  # free -> True
        lock.release()

    env.process(holder(env, lock))
    env.process(prober(env, lock))
    env.run()
    assert results == [False, True]


def test_release_unlocked_raises():
    env = Environment()
    lock = SimLock(env)
    with pytest.raises(SimulationError):
        lock.release()


def test_lock_contention_counted():
    env = Environment()
    lock = SimLock(env)

    def worker(env, lock):
        yield lock.acquire()
        yield env.timeout(1.0)
        lock.release()

    for _ in range(4):
        env.process(worker(env, lock))
    env.run()
    assert lock.contended_count == 3


def test_semaphore_counts():
    env = Environment()
    sem = SimSemaphore(env, value=2)
    entered = []

    def worker(env, sem, tag):
        yield sem.acquire()
        entered.append((tag, env.now))
        yield env.timeout(1.0)
        sem.release()

    for tag in range(4):
        env.process(worker(env, sem, tag))
    env.run()
    times = [t for _, t in entered]
    assert times == [0.0, 0.0, 1.0, 1.0]


def test_semaphore_negative_value_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        SimSemaphore(env, value=-1)


def test_atomic_counter_serializes_with_cost():
    env = Environment()
    counter = AtomicCounter(env, access_cost=0.5)
    seen = []

    def incrementer(env, counter):
        value = yield from counter.add_and_fetch(1)
        seen.append((value, env.now))

    for _ in range(4):
        env.process(incrementer(env, counter))
    env.run()
    assert [v for v, _ in seen] == [1, 2, 3, 4]
    # each access holds the lock for 0.5: completion times stagger
    assert [t for _, t in seen] == [0.5, 1.0, 1.5, 2.0]
    assert counter.value == 4
    assert counter.access_count == 4


def test_atomic_counter_zero_cost():
    env = Environment()
    counter = AtomicCounter(env)

    def incrementer(env, counter):
        yield from counter.add_and_fetch(10)

    for _ in range(3):
        env.process(incrementer(env, counter))
    env.run()
    assert counter.value == 30
    assert env.now == 0.0


def test_atomic_counter_fetch():
    env = Environment()
    counter = AtomicCounter(env, initial=7, access_cost=0.1)

    def reader(env, counter):
        value = yield from counter.fetch()
        return value

    p = env.process(reader(env, counter))
    env.run()
    assert p.value == 7


def test_atomic_counter_negative_cost_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        AtomicCounter(env, access_cost=-1.0)


def test_barrier_releases_all_at_once():
    env = Environment()
    barrier = SimBarrier(env, parties=3)
    released = []

    def worker(env, barrier, tag, delay):
        yield env.timeout(delay)
        yield barrier.wait()
        released.append((tag, env.now))

    env.process(worker(env, barrier, "a", 1.0))
    env.process(worker(env, barrier, "b", 2.0))
    env.process(worker(env, barrier, "c", 5.0))
    env.run()
    assert all(t == 5.0 for _, t in released)


def test_barrier_is_reusable():
    env = Environment()
    barrier = SimBarrier(env, parties=2)
    rounds = []

    def worker(env, barrier, tag):
        for r in range(3):
            yield env.timeout(1.0)
            yield barrier.wait()
            rounds.append((tag, r, env.now))

    env.process(worker(env, barrier, "x"))
    env.process(worker(env, barrier, "y"))
    env.run()
    assert len(rounds) == 6
    assert {t for _, r, t in rounds if r == 2} == {3.0}


def test_barrier_parties_validation():
    env = Environment()
    with pytest.raises(ValueError):
        SimBarrier(env, parties=0)
