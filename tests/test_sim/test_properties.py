"""Property-based invariants of the DES kernel."""

import heapq

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Environment


@given(delays=st.lists(st.floats(min_value=0, max_value=100),
                       min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_time_is_monotone(delays):
    """The clock never moves backwards, whatever the schedule."""
    env = Environment()
    observed = []

    def proc(env, delay):
        yield env.timeout(delay)
        observed.append(env.now)

    for delay in delays:
        env.process(proc(env, delay))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(delays=st.lists(st.floats(min_value=0, max_value=100),
                       min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_wakeups_match_requested_times(delays):
    env = Environment()
    results = []

    def proc(env, delay):
        yield env.timeout(delay)
        results.append((delay, env.now))

    for delay in delays:
        env.process(proc(env, delay))
    env.run()
    for requested, woke in results:
        assert woke == requested


@given(
    n=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=30, deadline=None)
def test_fifo_within_timestamp(n, seed):
    """Same-time events fire in creation order regardless of content."""
    import random

    rng = random.Random(seed)
    env = Environment()
    fired = []
    shared_delay = rng.choice([0.0, 1.0, 2.5])

    def proc(env, tag):
        yield env.timeout(shared_delay)
        fired.append(tag)

    for tag in range(n):
        env.process(proc(env, tag))
    env.run()
    assert fired == list(range(n))


@given(
    chain_length=st.integers(min_value=1, max_value=20),
    step=st.floats(min_value=1e-9, max_value=10.0),
)
@settings(max_examples=30, deadline=None)
def test_process_chains_accumulate_exactly(chain_length, step):
    env = Environment()

    def proc(env):
        for _ in range(chain_length):
            yield env.timeout(step)
        return env.now

    p = env.process(proc(env))
    env.run()
    # Summation in the heap is the same FP accumulation as a plain loop.
    expected = 0.0
    for _ in range(chain_length):
        expected += step
    assert p.value == pytest.approx(expected, rel=1e-12)


@given(
    holds=st.lists(st.floats(min_value=1e-6, max_value=1.0),
                   min_size=2, max_size=15),
)
@settings(max_examples=30, deadline=None)
def test_capacity_one_resource_never_overlaps(holds):
    """Mutual exclusion holds for any pattern of hold times."""
    from repro.sim import Resource

    env = Environment()
    res = Resource(env, capacity=1)
    intervals = []

    def worker(env, res, hold):
        req = res.request()
        yield req
        start = env.now
        yield env.timeout(hold)
        res.release(req)
        intervals.append((start, env.now))

    for hold in holds:
        env.process(worker(env, res, hold))
    env.run()
    intervals.sort()
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert s2 >= e1 - 1e-15


@given(
    values=st.lists(st.integers(min_value=-100, max_value=100),
                    min_size=1, max_size=30),
)
@settings(max_examples=30, deadline=None)
def test_store_is_fifo_for_any_items(values):
    from repro.sim import Store

    env = Environment()
    store = Store(env)
    received = []

    def producer(env, store):
        for v in values:
            yield env.timeout(0.1)
            yield store.put(v)

    def consumer(env, store):
        for _ in values:
            item = yield store.get()
            received.append(item)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert received == values
