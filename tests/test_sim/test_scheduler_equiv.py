"""Order-equivalence of the bucketed calendar scheduler.

The kernel contract is that events dispatch in exact
``(time, priority, seq)`` order — what a single reference heap of those
tuples would produce, given the same stream of schedule operations.
The bucketed scheduler in :mod:`repro.sim.core` splits that heap into
current-time deques, a rare-priority overflow heap, and a future-time
heap, so these tests replay randomized workloads (including
same-timestamp floods and callback-scheduled urgents) against an
actual ``heapq`` and assert the dispatch sequences match operation for
operation.
"""

from __future__ import annotations

import heapq
import itertools
import random

import pytest

from repro.sim.core import Environment, Event, PRIORITY_NORMAL, PRIORITY_URGENT

_counter = itertools.count()


def _observed_event(env, ops, priority, delay):
    """Schedule a bare succeeded event, logging schedule + dispatch ops.

    The reference sequence number is the global scheduling order — the
    seq a single ``(time, priority, seq)`` heap would have assigned.
    (The bucketed scheduler itself skips seq assignment for
    current-time events, so the test keeps its own counter.)
    """
    event = Event(env)
    event._ok = True
    event._value = None
    key = (env._now + delay, priority, next(_counter))
    ops.append(("sched", key))
    event.callbacks.append(lambda _e: ops.append(("disp", key)))
    env._schedule(event, priority, delay)
    return event


def _assert_matches_reference_heap(ops):
    """Replay the op stream: every dispatch must pop the reference heap.

    Events scheduled inside a dispatch's callbacks appear in ``ops``
    before the next dispatch, exactly as a heapq-driven kernel would
    see them — so this is a bit-exact order check, valid for dynamic
    workloads.
    """
    pending: list = []
    dispatched = 0
    for kind, key in ops:
        if kind == "sched":
            heapq.heappush(pending, key)
        else:
            expected = heapq.heappop(pending)
            assert key == expected, (
                f"dispatch #{dispatched}: got {key}, the reference heap "
                f"says {expected}"
            )
            dispatched += 1
    assert not pending, f"{len(pending)} scheduled events never dispatched"
    return dispatched


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
def test_randomized_workload_matches_reference(seed):
    rng = random.Random(seed)
    env = Environment()
    ops: list = []
    # Quantized delays force heavy timestamp collisions: the floods the
    # current-time deques and the same-time heap staging must keep in
    # seq order.
    delays = [0.0, 0.0, 0.0, 1.0, 1.0, 2.5, 2.5, 7.25]
    priorities = [PRIORITY_URGENT, PRIORITY_NORMAL, PRIORITY_NORMAL,
                  PRIORITY_NORMAL, 2, 3]

    spawn_budget = [300]

    def maybe_spawn(_event):
        # Dynamic scheduling from inside a dispatch: children land in
        # the *current* timestep (delay 0) or the future, both legal.
        if spawn_budget[0] <= 0:
            return
        for _ in range(rng.randrange(3)):
            spawn_budget[0] -= 1
            child = _observed_event(env, ops, rng.choice(priorities),
                                    rng.choice(delays))
            child.callbacks.append(maybe_spawn)

    for _ in range(200):
        event = _observed_event(env, ops, rng.choice(priorities),
                                rng.choice(delays))
        event.callbacks.append(maybe_spawn)

    env.run()
    assert _assert_matches_reference_heap(ops) >= 200


def test_same_timestamp_flood_matches_reference():
    """A static flood: 1000 events over 3 timestamps, 4 priorities."""
    rng = random.Random(99)
    env = Environment()
    ops: list = []
    for _ in range(1000):
        priority = rng.choice([0, 1, 1, 1, 2, 3])
        delay = rng.choice([0.0, 0.0, 1e-6, 1e-6, 5e-6])
        _observed_event(env, ops, priority, delay)
    env.run()
    assert _assert_matches_reference_heap(ops) == 1000


def test_urgent_preempts_pending_normals_in_same_timestep():
    """An urgent scheduled *during* a timestep runs before queued
    normals of that timestep, despite its later seq."""
    env = Environment()
    order = []

    first = Event(env)
    first._ok = True
    second = Event(env)
    second._ok = True

    def first_cb(_event):
        order.append("first")
        urgent = Event(env)
        urgent._ok = True
        urgent.callbacks.append(lambda _e: order.append("urgent"))
        env._schedule(urgent, PRIORITY_URGENT)

    first.callbacks.append(first_cb)
    second.callbacks.append(lambda _e: order.append("second"))
    env._schedule(first, PRIORITY_NORMAL)
    env._schedule(second, PRIORITY_NORMAL)
    env.run()
    assert order == ["first", "urgent", "second"]


def test_process_sleep_workload_matches_reference():
    """Generator processes mixing timeouts, float sleeps, and zero
    delays still dispatch their wakeups in reference order."""
    rng = random.Random(3)
    env = Environment()
    ticks = []

    def worker(wid, rng_local):
        for _ in range(20):
            style = rng_local.randrange(3)
            delay = rng_local.choice([0.0, 1e-6, 3e-6, 1e-3])
            if style == 0:
                yield env.timeout(delay)
            else:
                yield delay
            ticks.append((env.now, wid))

    for wid in range(16):
        env.process(worker(wid, random.Random(rng.randrange(1 << 30))))
    env.run()
    assert len(ticks) == 16 * 20
    # Virtual time is monotone over the dispatch sequence.
    times = [t for t, _ in ticks]
    assert times == sorted(times)
