"""Tests for Process: lifecycle, interruption, composition."""

import pytest

from repro.errors import Interrupt, ProcessError
from repro.sim import Environment


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return 99

    p = env.process(proc(env))
    env.run()
    assert p.value == 99


def test_process_is_alive_until_done():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)

    p = env.process(proc(env))
    assert p.is_alive
    env.run(until=1.0)
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_waiting_on_another_process():
    env = Environment()

    def child(env):
        yield env.timeout(3.0)
        return "child-result"

    def parent(env):
        result = yield env.process(child(env))
        return result

    p = env.process(parent(env))
    env.run()
    assert p.value == "child-result"


def test_waiting_on_finished_process_resumes_immediately():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        return "early"

    def parent(env, c):
        yield env.timeout(5.0)
        result = yield c  # already finished
        return (result, env.now)

    c = env.process(child(env))
    p = env.process(parent(env, c))
    env.run()
    assert p.value == ("early", 5.0)


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        raise ValueError("child failed")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError as exc:
            return f"caught: {exc}"

    p = env.process(parent(env))
    env.run()
    assert p.value == "caught: child failed"


def test_interrupt_wakes_sleeping_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
            log.append("overslept")
        except Interrupt as intr:
            log.append(("interrupted", env.now, intr.cause))

    def interrupter(env, victim):
        yield env.timeout(2.0)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [("interrupted", 2.0, "wake up")]


def test_interrupted_process_can_continue():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        return env.now

    def interrupter(env, victim):
        yield env.timeout(2.0)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert victim.value == 3.0


def test_interrupt_finished_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    def late(env, target):
        yield env.timeout(5.0)
        with pytest.raises(ProcessError):
            target.interrupt()

    target = env.process(quick(env))
    env.process(late(env, target))
    env.run()


def test_self_interrupt_raises():
    env = Environment()

    def proc(env):
        yield env.timeout(0.0)
        with pytest.raises(ProcessError):
            handle.interrupt()

    handle = env.process(proc(env))
    env.run()


def test_stale_timeout_does_not_double_resume():
    """After an interrupt, the original timeout firing must be ignored."""
    env = Environment()
    wakeups = []

    def sleeper(env):
        try:
            yield env.timeout(10.0)
            wakeups.append("timeout")
        except Interrupt:
            wakeups.append("interrupt")
        yield env.timeout(20.0)  # outlives the stale timeout at t=10
        wakeups.append("second")

    def interrupter(env, victim):
        yield env.timeout(1.0)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert wakeups == ["interrupt", "second"]
    assert env.now == 21.0


def test_yielding_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield "not an event"

    p = env.process(bad(env))
    with pytest.raises(ProcessError):
        env.run()
    assert p.triggered and not p.ok


def test_yielding_bare_number_sleeps():
    # The kernel sleep protocol: a bare non-negative number is exactly
    # ``yield env.timeout(n)`` without the Timeout allocation.
    env = Environment()
    ticks = []

    def sleeper(env):
        yield 1.5
        ticks.append(env.now)
        yield 0.0          # zero delay: resumes in the same timestep
        ticks.append(env.now)
        yield 2            # ints sleep too
        ticks.append(env.now)

    env.process(sleeper(env))
    env.run()
    assert ticks == [1.5, 1.5, 3.5]
    assert env.now == 3.5


def test_yielding_negative_number_raises():
    from repro.errors import SimTimeError

    env = Environment()

    def bad(env):
        yield -0.5

    env.process(bad(env))
    with pytest.raises(SimTimeError):
        env.run()


def test_number_sleep_orders_like_timeout():
    # A float sleep and an equal env.timeout() sleep scheduled from two
    # processes interleave in spawn (seq) order, same as two timeouts.
    env = Environment()
    order = []

    def via_float(env):
        yield 1.0
        order.append("float")

    def via_timeout(env):
        yield env.timeout(1.0)
        order.append("timeout")

    env.process(via_float(env))
    env.process(via_timeout(env))
    env.run()
    assert order == ["float", "timeout"]


def test_non_generator_rejected():
    env = Environment()
    with pytest.raises(ProcessError):
        env.process(lambda: None)


def test_process_named_after_generator():
    env = Environment()

    def my_worker(env):
        yield env.timeout(0)

    p = env.process(my_worker(env))
    assert p.name == "my_worker"
    env.run()


def test_many_processes_complete():
    env = Environment()
    done = []

    def worker(env, i):
        yield env.timeout(i * 0.1)
        done.append(i)

    for i in range(100):
        env.process(worker(env, i))
    env.run()
    assert done == list(range(100))
