"""Tests for composite events (AllOf / AnyOf / Condition)."""

import pytest

from repro.sim import AllOf, AnyOf, Environment


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(3.0, value="b")
        results = yield env.all_of([t1, t2])
        return (env.now, sorted(results.values()))

    p = env.process(proc(env))
    env.run()
    assert p.value == (3.0, ["a", "b"])


def test_any_of_fires_on_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(3.0, value="slow")
        results = yield env.any_of([t1, t2])
        return (env.now, list(results.values()))

    p = env.process(proc(env))
    env.run()
    assert p.value == (1.0, ["fast"])


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc(env):
        yield env.all_of([])
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 0.0


def test_any_of_empty_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        AnyOf(env, [])


def test_all_of_with_already_fired_events():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value=1)
        yield env.timeout(5.0)  # t1 long since fired
        t2 = env.timeout(1.0, value=2)
        results = yield env.all_of([t1, t2])
        return (env.now, sorted(results.values()))

    p = env.process(proc(env))
    env.run()
    assert p.value == (6.0, [1, 2])


def test_all_of_failure_propagates():
    env = Environment()
    ev = env.event()

    def firer(env, ev):
        yield env.timeout(1.0)
        ev.fail(RuntimeError("part failed"))

    def waiter(env, ev):
        t = env.timeout(10.0)
        try:
            yield env.all_of([t, ev])
        except RuntimeError as exc:
            return f"caught {exc} at {env.now}"

    env.process(firer(env, ev))
    p = env.process(waiter(env, ev))
    env.run()
    assert p.value == "caught part failed at 1.0"


def test_all_of_processes():
    env = Environment()

    def worker(env, delay):
        yield env.timeout(delay)
        return delay

    def coordinator(env):
        workers = [env.process(worker(env, d)) for d in (0.5, 1.5, 1.0)]
        results = yield env.all_of(workers)
        return (env.now, sorted(results.values()))

    p = env.process(coordinator(env))
    env.run()
    assert p.value == (1.5, [0.5, 1.0, 1.5])


def test_mixed_environment_rejected():
    env1, env2 = Environment(), Environment()
    t1 = env1.timeout(1.0)
    t2 = env2.timeout(1.0)
    with pytest.raises(ValueError):
        AllOf(env1, [t1, t2])
