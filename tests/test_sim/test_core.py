"""Tests for the DES kernel: Environment, Event, Timeout."""

import pytest

from repro.errors import SimTimeError, SimulationError
from repro.sim import Environment, Event


def test_initial_time_is_zero():
    env = Environment()
    assert env.now == 0.0


def test_initial_time_can_be_set():
    env = Environment(initial_time=42.0)
    assert env.now == 42.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(1.5)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 1.5
    assert env.now == 1.5


def test_timeout_zero_is_allowed():
    env = Environment()

    def proc(env):
        yield env.timeout(0.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 0.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimTimeError):
        env.timeout(-1.0)


def test_timeout_carries_value():
    env = Environment()

    def proc(env):
        got = yield env.timeout(1.0, value="payload")
        return got

    p = env.process(proc(env))
    env.run()
    assert p.value == "payload"


def test_sequential_timeouts_accumulate():
    env = Environment()
    times = []

    def proc(env):
        for delay in (1.0, 2.0, 3.0):
            yield env.timeout(delay)
            times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [1.0, 3.0, 6.0]


def test_event_succeed_delivers_value():
    env = Environment()
    ev = env.event()
    got = []

    def waiter(env, ev):
        value = yield ev
        got.append(value)

    def firer(env, ev):
        yield env.timeout(5.0)
        ev.succeed("done")

    env.process(waiter(env, ev))
    env.process(firer(env, ev))
    env.run()
    assert got == ["done"]


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter(env, ev):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def firer(env, ev):
        yield env.timeout(1.0)
        ev.fail(ValueError("boom"))

    env.process(waiter(env, ev))
    env.process(firer(env, ev))
    env.run()
    assert caught == ["boom"]


def test_unhandled_event_failure_aborts_run():
    env = Environment()
    ev = env.event()

    def firer(env, ev):
        yield env.timeout(1.0)
        ev.fail(RuntimeError("nobody caught me"))

    env.process(firer(env, ev))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        env.run()


def test_defused_failure_does_not_abort():
    env = Environment()
    ev = env.event()

    def firer(env, ev):
        yield env.timeout(1.0)
        ev.fail(RuntimeError("defused"))
        ev.defuse()

    env.process(firer(env, ev))
    env.run()
    assert env.now == 1.0


def test_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(ValueError())


def test_event_value_before_trigger_rejected():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run(until=3.5)
    assert env.now == 3.5


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(SimTimeError):
        env.run(until=1.0)


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return "result"

    p = env.process(proc(env))
    assert env.run(until=p) == "result"
    assert env.now == 2.0


def test_run_until_event_propagates_failure():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise KeyError("inner")

    p = env.process(proc(env))
    with pytest.raises(KeyError):
        env.run(until=p)


def test_run_until_event_that_never_fires_raises():
    env = Environment()
    ev = env.event()

    def proc(env):
        yield env.timeout(1.0)

    env.process(proc(env))
    with pytest.raises(SimulationError, match="queue drained"):
        env.run(until=ev)


def test_same_time_events_fire_in_fifo_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in range(5):
        env.process(proc(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(3.0)
    env.timeout(1.0)
    assert env.peek() == 1.0


def test_peek_empty_queue_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_determinism_same_model_same_trace():
    def build_and_run():
        env = Environment()
        order = []

        def proc(env, tag, delay):
            yield env.timeout(delay)
            order.append((tag, env.now))
            yield env.timeout(delay * 2)
            order.append((tag, env.now))

        for tag, delay in enumerate((0.3, 0.1, 0.2, 0.1)):
            env.process(proc(env, tag, delay))
        env.run()
        return order

    assert build_and_run() == build_and_run()
