"""Tests for the trace monitor."""

from repro.sim import Trace


def test_record_and_iterate():
    trace = Trace()
    trace.record(1.0, "ib.post", subject=0, nbytes=64)
    trace.record(2.0, "mpi.pready", subject=1)
    assert len(trace) == 2
    records = list(trace)
    assert records[0].time == 1.0
    assert records[0].data == {"nbytes": 64}


def test_disabled_trace_is_noop():
    trace = Trace(enabled=False)
    trace.record(1.0, "x")
    assert len(trace) == 0


def test_filter_by_exact_category():
    trace = Trace()
    trace.record(1.0, "ib.post")
    trace.record(2.0, "ib.deliver")
    assert len(trace.filter(category="ib.post")) == 1


def test_filter_by_category_prefix():
    trace = Trace()
    trace.record(1.0, "ib.post")
    trace.record(2.0, "ib.deliver")
    trace.record(3.0, "mpi.pready")
    assert len(trace.filter(category="ib")) == 2


def test_filter_by_subject():
    trace = Trace()
    trace.record(1.0, "ib.post", subject=0)
    trace.record(2.0, "ib.post", subject=1)
    assert len(trace.filter(subject=1)) == 1


def test_filter_by_predicate():
    trace = Trace()
    trace.record(1.0, "x", n=1)
    trace.record(2.0, "x", n=5)
    heavy = trace.filter(predicate=lambda r: r.data.get("n", 0) > 3)
    assert len(heavy) == 1


def test_categories():
    trace = Trace()
    trace.record(1.0, "a")
    trace.record(2.0, "b")
    trace.record(3.0, "a")
    assert trace.categories() == {"a", "b"}


def test_clear():
    trace = Trace()
    trace.record(1.0, "x")
    trace.clear()
    assert len(trace) == 0
