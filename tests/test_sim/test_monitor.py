"""Tests for the trace monitor."""

import pytest

from repro.sim import Trace


def test_record_and_iterate():
    trace = Trace()
    trace.record(1.0, "ib.post", subject=0, nbytes=64)
    trace.record(2.0, "mpi.pready", subject=1)
    assert len(trace) == 2
    records = list(trace)
    assert records[0].time == 1.0
    assert records[0].data == {"nbytes": 64}


def test_disabled_trace_is_noop():
    trace = Trace(enabled=False)
    trace.record(1.0, "x")
    assert len(trace) == 0


def test_filter_by_exact_category():
    trace = Trace()
    trace.record(1.0, "ib.post")
    trace.record(2.0, "ib.deliver")
    assert len(trace.filter(category="ib.post")) == 1


def test_filter_by_category_prefix():
    trace = Trace()
    trace.record(1.0, "ib.post")
    trace.record(2.0, "ib.deliver")
    trace.record(3.0, "mpi.pready")
    assert len(trace.filter(category="ib")) == 2


def test_filter_by_subject():
    trace = Trace()
    trace.record(1.0, "ib.post", subject=0)
    trace.record(2.0, "ib.post", subject=1)
    assert len(trace.filter(subject=1)) == 1


def test_filter_by_predicate():
    trace = Trace()
    trace.record(1.0, "x", n=1)
    trace.record(2.0, "x", n=5)
    heavy = trace.filter(predicate=lambda r: r.data.get("n", 0) > 3)
    assert len(heavy) == 1


def test_categories():
    trace = Trace()
    trace.record(1.0, "a")
    trace.record(2.0, "b")
    trace.record(3.0, "a")
    assert trace.categories() == {"a", "b"}


def test_clear():
    trace = Trace()
    trace.record(1.0, "x")
    trace.clear()
    assert len(trace) == 0


def test_max_records_keeps_most_recent():
    trace = Trace(max_records=3)
    for i in range(5):
        trace.record(float(i), "x", n=i)
    assert len(trace) == 3
    assert trace.dropped == 2
    assert [r.data["n"] for r in trace] == [2, 3, 4]


def test_max_records_unbounded_by_default():
    trace = Trace()
    for i in range(100):
        trace.record(float(i), "x")
    assert len(trace) == 100
    assert trace.dropped == 0


def test_max_records_validation():
    with pytest.raises(ValueError):
        Trace(max_records=0)


def test_clear_resets_dropped():
    trace = Trace(max_records=1)
    trace.record(1.0, "x")
    trace.record(2.0, "x")
    assert trace.dropped == 1
    trace.clear()
    assert len(trace) == 0
    assert trace.dropped == 0
