"""The ``__slots__`` audit: hot-path records must not carry a ``__dict__``.

The DES kernel allocates these types millions of times per sweep; a
per-instance ``__dict__`` costs ~100 bytes and a dict allocation each.
Any class regressing to dict-backed attributes shows up here, not in a
profiler three PRs later.
"""

from __future__ import annotations

import pytest

from repro.config import NICConfig
from repro.ib.constants import Opcode, WCOpcode, WCStatus
from repro.ib.link import IngressPort, WireTimeTable
from repro.ib.wr import SGE, RecvWR, SendWR, WorkCompletion
from repro.sim.core import Environment, Event, Timeout, _Wake
from repro.sim.events import AllOf, AnyOf, Condition
from repro.sim.process import Process
from repro.sim.profile import EventTypeStats, KernelProfile
from repro.sim.resources import PriorityResource, Request, Resource, Store
from repro.sim.sync import (
    AtomicCounter,
    Notify,
    SimBarrier,
    SimLock,
    SimSemaphore,
    _Race,
)


def _instances():
    env = Environment()
    resource = Resource(env, capacity=1)
    sge = SGE(addr=0, length=8, lkey=1)
    yield env.event()
    yield env.timeout(1.0)
    yield _Wake(env)
    def _body(env):
        yield env.timeout(0)

    yield env.process(_body(env))
    yield AllOf(env, [env.event()])
    yield AnyOf(env, [env.event()])
    yield resource
    yield resource.request()
    yield PriorityResource(env, capacity=1)
    yield Store(env)
    yield SimLock(env)
    yield SimSemaphore(env, value=1)
    yield AtomicCounter(env)
    yield Notify(env)
    yield SimBarrier(env, parties=1)
    yield _Race(env)
    yield sge
    yield SendWR(wr_id=1, opcode=Opcode.RDMA_WRITE, sg_list=[sge])
    yield RecvWR(wr_id=2)
    yield WorkCompletion(wr_id=1, status=WCStatus.SUCCESS,
                         opcode=WCOpcode.RDMA_WRITE, qp_num=1)
    yield WireTimeTable(NICConfig())
    yield IngressPort()
    yield EventTypeStats()
    yield KernelProfile()


@pytest.mark.parametrize("instance", list(_instances()),
                         ids=lambda obj: type(obj).__name__)
def test_hot_types_have_no_instance_dict(instance):
    assert not hasattr(instance, "__dict__"), (
        f"{type(instance).__name__} grew a __dict__ — a __slots__ "
        f"declaration is missing somewhere in its class hierarchy"
    )


def test_slotted_event_hierarchy_is_closed():
    # Every Event subclass the kernel ships must stay dict-free, so a
    # new subclass without __slots__ = () is caught by name.
    def walk(cls):
        yield cls
        for sub in cls.__subclasses__():
            yield from walk(sub)

    offenders = [
        cls.__name__ for cls in walk(Event)
        if cls.__module__.startswith("repro.")
        and "__dict__" in dir(cls) and hasattr(cls, "__slots__")
        and any("__dict__" in getattr(c, "__dict__", {})
                for c in cls.__mro__ if c is not object)
    ]
    assert offenders == [], f"Event subclasses with __dict__: {offenders}"


def test_timeout_and_process_are_slotted_classes():
    for cls in (Event, Timeout, _Wake, Process, Condition, Request):
        assert hasattr(cls, "__slots__"), f"{cls.__name__} lost __slots__"
