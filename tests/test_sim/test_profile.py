"""The kernel profiling hook: histograms without semantic drift."""

from __future__ import annotations

from repro.sim.core import Environment
from repro.sim.profile import KernelProfile


def _workload(env, ticks):
    def worker(env):
        for _ in range(5):
            yield env.timeout(1e-6)
            ticks.append(env.now)

    for _ in range(4):
        env.process(worker(env))


def test_profile_counts_events_by_type():
    env = Environment()
    ticks = []
    _workload(env, ticks)
    prof = KernelProfile.attach(env)
    env.run()
    assert prof.events > 0
    assert prof.stats["Timeout"].count == 20
    # 4 bootstrap wakes + 4 process-completion events.
    assert "_Wake" in prof.stats
    assert prof.stats["Process"].count == 4
    data = prof.as_dict()
    assert data["events"] == prof.events
    assert data["virtual_span"] >= 0
    report = prof.report()
    assert "Timeout" in report and "total" in report


def test_profile_does_not_change_virtual_time():
    plain_env = Environment()
    plain_ticks = []
    _workload(plain_env, plain_ticks)
    plain_env.run()

    prof_env = Environment()
    prof_ticks = []
    _workload(prof_env, prof_ticks)
    KernelProfile.attach(prof_env)
    prof_env.run()

    assert prof_ticks == plain_ticks
    assert prof_env.now == plain_env.now


def test_detach_restores_raw_dispatch():
    env = Environment()
    prof = KernelProfile.attach(env)
    KernelProfile.detach(env)
    ticks = []
    _workload(env, ticks)
    env.run()
    assert prof.events == 0
    assert len(ticks) == 20
