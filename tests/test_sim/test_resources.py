"""Tests for Resource / PriorityResource / Store."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, PriorityResource, Resource, Store


def test_resource_capacity_one_serializes():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def worker(env, res, tag, hold):
        req = res.request()
        yield req
        log.append((tag, "in", env.now))
        yield env.timeout(hold)
        res.release(req)
        log.append((tag, "out", env.now))

    env.process(worker(env, res, "a", 2.0))
    env.process(worker(env, res, "b", 1.0))
    env.run()
    assert log == [
        ("a", "in", 0.0),
        ("a", "out", 2.0),
        ("b", "in", 2.0),
        ("b", "out", 3.0),
    ]


def test_resource_capacity_n_allows_parallelism():
    env = Environment()
    res = Resource(env, capacity=3)
    finished = []

    def worker(env, res, tag):
        req = res.request()
        yield req
        yield env.timeout(1.0)
        res.release(req)
        finished.append((tag, env.now))

    for tag in range(3):
        env.process(worker(env, res, tag))
    env.run()
    assert all(t == 1.0 for _, t in finished)


def test_resource_count_and_queue_length():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env, res):
        req = res.request()
        yield req
        yield env.timeout(10.0)
        res.release(req)

    def checker(env, res):
        yield env.timeout(1.0)
        req = res.request()  # queues
        assert res.count == 1
        assert res.queue_length == 1
        res.release(req)  # cancel while queued
        assert res.queue_length == 0
        yield env.timeout(0)

    env.process(holder(env, res))
    env.process(checker(env, res))
    env.run()


def test_release_unowned_request_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)


def test_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_priority_resource_serves_lowest_priority_first():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env, res):
        req = res.request()
        yield req
        yield env.timeout(5.0)
        res.release(req)

    def claimant(env, res, prio, tag, delay):
        yield env.timeout(delay)
        req = res.request(priority=prio)
        yield req
        order.append(tag)
        res.release(req)

    env.process(holder(env, res))
    env.process(claimant(env, res, 5, "low", 1.0))
    env.process(claimant(env, res, 1, "high", 2.0))
    env.run()
    assert order == ["high", "low"]


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env, store):
        for i in range(3):
            yield env.timeout(1.0)
            yield store.put(i)

    def consumer(env, store):
        for _ in range(3):
            item = yield store.get()
            got.append((item, env.now))

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert got == [(0, 1.0), (1, 2.0), (2, 3.0)]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)

    def consumer(env, store):
        item = yield store.get()
        return (item, env.now)

    def producer(env, store):
        yield env.timeout(4.0)
        yield store.put("x")

    c = env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert c.value == ("x", 4.0)


def test_bounded_store_put_blocks_when_full():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env, store):
        yield store.put("first")
        log.append(("put-first", env.now))
        yield store.put("second")  # blocks until a get
        log.append(("put-second", env.now))

    def consumer(env, store):
        yield env.timeout(3.0)
        item = yield store.get()
        log.append(("got", item, env.now))

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert ("put-first", 0.0) in log
    assert ("got", "first", 3.0) in log
    assert ("put-second", 3.0) in log


def test_store_len():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    assert len(store) == 2


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)
