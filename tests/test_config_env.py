"""Tests for REPRO_* environment-variable tuning."""

import pytest

from repro.config import NIAGARA, config_from_env
from repro.errors import ConfigError
from repro.units import us


def test_no_env_returns_base():
    config = config_from_env(environ={})
    assert config == NIAGARA


def test_timer_delta_override():
    config = config_from_env(environ={"REPRO_TIMER_DELTA_US": "50"})
    assert config.part.timer_delta == pytest.approx(us(50))
    # Everything else untouched.
    assert config.nic == NIAGARA.nic


def test_line_rate_override_keeps_qp_ratio():
    config = config_from_env(environ={"REPRO_LINE_RATE_GIBPS": "25"})
    assert config.nic.line_rate == pytest.approx(25 * 1024**3)
    ratio = config.nic.qp_rate / config.nic.line_rate
    base_ratio = NIAGARA.nic.qp_rate / NIAGARA.nic.line_rate
    assert ratio == pytest.approx(base_ratio)


def test_qp_fraction_override():
    config = config_from_env(environ={"REPRO_QP_RATE_FRACTION": "0.5"})
    assert config.nic.qp_rate == pytest.approx(0.5 * NIAGARA.nic.line_rate)


def test_combined_line_rate_and_fraction():
    config = config_from_env(environ={
        "REPRO_LINE_RATE_GIBPS": "20",
        "REPRO_QP_RATE_FRACTION": "0.9",
    })
    assert config.nic.qp_rate == pytest.approx(0.9 * 20 * 1024**3)


def test_seed_and_trace():
    config = config_from_env(environ={"REPRO_SEED": "42",
                                      "REPRO_TRACE": "true"})
    assert config.seed == 42
    assert config.trace_enabled


def test_multiple_sections():
    config = config_from_env(environ={
        "REPRO_MTU": "2048",
        "REPRO_LINK_LATENCY_US": "1.5",
        "REPRO_CORES_PER_NODE": "64",
        "REPRO_DEFAULT_QPS": "4",
    })
    assert config.nic.mtu == 2048
    assert config.link.latency == pytest.approx(1.5e-6)
    assert config.host.cores_per_node == 64
    assert config.part.default_qps == 4


def test_malformed_value_raises():
    with pytest.raises(ConfigError):
        config_from_env(environ={"REPRO_MTU": "not-a-number"})


def test_invalid_resulting_config_rejected():
    with pytest.raises(ConfigError):
        config_from_env(environ={"REPRO_MTU": "64"})  # below minimum


def test_unknown_repro_vars_ignored():
    config = config_from_env(environ={"REPRO_BOGUS": "1"})
    assert config == NIAGARA
