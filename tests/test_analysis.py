"""Tests for trace-based analysis."""

import pytest

from repro.analysis import (
    chunk_timeline,
    idle_gaps,
    latency_percentiles,
    message_wire_latencies,
    wire_stats,
)
from repro.config import NIAGARA
from repro.core import FixedAggregation, NativeSpec
from repro.mem import PartitionedBuffer
from repro.mpi import Cluster
from repro.sim.monitor import Trace
from repro.units import KiB, MiB


def traced_transfer(total_bytes=4 * MiB, n_parts=8, pready_stagger=0.0):
    config = NIAGARA.with_changes(trace_enabled=True, real_buffers=False)
    cluster = Cluster(n_nodes=2, config=config)
    s_proc, r_proc = cluster.ranks(2)
    sbuf = PartitionedBuffer(n_parts, total_bytes // n_parts, backed=False)
    rbuf = PartitionedBuffer(n_parts, total_bytes // n_parts, backed=False)
    spec = lambda: NativeSpec(FixedAggregation(n_parts, 2))

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0, module=spec())
        yield from proc.start(req)
        for i in range(n_parts):
            if pready_stagger:
                yield proc.env.timeout(pready_stagger)
            yield from proc.pready(req, i)
        yield from proc.wait_partitioned(req)

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0, module=spec())
        yield from proc.start(req)
        yield from proc.wait_partitioned(req)

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()
    return cluster.trace, cluster.env.now


def test_wire_stats_accounts_all_bytes():
    trace, _ = traced_transfer(total_bytes=4 * MiB)
    stats = wire_stats(trace, node_id=0)
    assert stats.bytes_on_wire == 4 * MiB
    assert stats.n_chunks >= 16  # 4MiB over 256KiB chunks
    assert 0 < stats.utilization <= 1.0


def test_effective_bandwidth_bounded_by_line_rate():
    trace, _ = traced_transfer(total_bytes=16 * MiB)
    stats = wire_stats(trace, node_id=0)
    assert stats.effective_bandwidth <= NIAGARA.nic.line_rate * 1.01
    assert stats.effective_bandwidth > NIAGARA.nic.line_rate * 0.3


def test_timeline_is_sorted_and_non_overlapping():
    trace, _ = traced_transfer()
    timeline = chunk_timeline(trace, node_id=0)
    for (s1, e1, _), (s2, _, _) in zip(timeline, timeline[1:]):
        assert s2 >= s1
        assert s2 >= e1 - 1e-15  # egress is a serializer


def test_idle_gaps_found_with_staggered_arrivals():
    trace, _ = traced_transfer(total_bytes=1 * MiB, pready_stagger=200e-6)
    gaps = idle_gaps(trace, node_id=0, min_gap=50e-6)
    assert len(gaps) >= 6  # one long gap between each staggered pready


def test_no_big_gaps_without_stagger():
    trace, _ = traced_transfer(total_bytes=1 * MiB)
    gaps = idle_gaps(trace, node_id=0, min_gap=50e-6)
    assert gaps == []


def test_message_latencies_positive_and_complete():
    trace, _ = traced_transfer(total_bytes=1 * MiB, n_parts=8)
    latencies = message_wire_latencies(trace)
    assert len(latencies) == 8
    assert all(v > 0 for v in latencies.values())


def test_latency_percentiles_ordered():
    trace, _ = traced_transfer(total_bytes=8 * MiB, n_parts=8)
    pct = latency_percentiles(trace)
    assert pct[50] <= pct[90] <= pct[99]


def test_empty_trace_degenerates_gracefully():
    trace = Trace()
    stats = wire_stats(trace, node_id=0)
    assert stats.utilization == 0.0
    assert stats.effective_bandwidth == 0.0
    assert latency_percentiles(trace) == {50: 0.0, 90: 0.0, 99: 0.0}
