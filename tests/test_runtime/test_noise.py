"""Tests for noise models."""

import numpy as np
import pytest

from repro.runtime import GaussianNoise, NoNoise, SingleThreadDelay, UniformNoise


def rng():
    return np.random.Generator(np.random.PCG64(7))


def test_no_noise_is_zero():
    d = NoNoise().delays(8, 0.1, 0, rng())
    assert np.all(d == 0)
    assert d.shape == (8,)


def test_single_thread_delay_one_victim():
    d = SingleThreadDelay(0.04).delays(16, 0.1, 0, rng())
    assert np.count_nonzero(d) == 1
    assert d.max() == pytest.approx(0.004)


def test_single_thread_delay_fixed_victim():
    model = SingleThreadDelay(0.01, fixed_victim=3)
    for round_index in range(5):
        d = model.delays(8, 1.0, round_index, rng())
        assert d[3] == pytest.approx(0.01)
        assert np.count_nonzero(d) == 1


def test_single_thread_delay_victim_rotates():
    model = SingleThreadDelay(0.04)
    generator = rng()
    victims = {int(np.argmax(model.delays(16, 0.1, r, generator)))
               for r in range(50)}
    assert len(victims) > 3


def test_single_thread_delay_zero_fraction():
    d = SingleThreadDelay(0.0).delays(8, 0.1, 0, rng())
    assert np.all(d == 0)


def test_negative_fraction_rejected():
    for cls in (SingleThreadDelay, GaussianNoise, UniformNoise):
        with pytest.raises(ValueError):
            cls(-0.1)


def test_gaussian_noise_all_threads_nonnegative():
    d = GaussianNoise(0.04).delays(64, 0.1, 0, rng())
    assert np.all(d >= 0)
    assert np.count_nonzero(d) > 32


def test_uniform_noise_bounded():
    d = UniformNoise(0.04).delays(64, 0.1, 0, rng())
    assert np.all(d >= 0)
    assert np.all(d <= 0.004)


def test_describe_strings():
    assert "4%" in SingleThreadDelay(0.04).describe()
    assert NoNoise().describe() == "none"
