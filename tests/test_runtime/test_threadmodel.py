"""Tests for the worker-team model."""

import numpy as np
import pytest

from repro.runtime import ComputePhase, NoNoise, SingleThreadDelay, WorkerTeam
from repro.sim import Environment


def rng():
    return np.random.Generator(np.random.PCG64(3))


def test_all_threads_run_body():
    env = Environment()
    team = WorkerTeam(env, 8, rng())
    seen = []

    def body(tid):
        seen.append((tid, env.now))
        return None

    phase = ComputePhase(compute=0.5, noise=NoNoise(), jitter_fraction=0.0)
    team.run_round(phase, body)
    env.run()
    assert sorted(t for t, _ in seen) == list(range(8))
    assert all(t == 0.5 for _, t in seen)


def test_body_generator_consumes_time():
    env = Environment()
    team = WorkerTeam(env, 4, rng())

    def body(tid):
        yield env.timeout(0.1 * (tid + 1))

    phase = ComputePhase(compute=1.0, noise=NoNoise(), jitter_fraction=0.0)
    p = team.run_round(phase, body)
    env.run()
    finish = p.value
    assert finish == [1.1, 1.2, 1.3, 1.4]


def test_single_thread_delay_produces_laggard():
    env = Environment()
    team = WorkerTeam(env, 8, rng())
    phase = ComputePhase(compute=1.0, noise=SingleThreadDelay(0.5),
                         jitter_fraction=0.0)
    p = team.run_round(phase, lambda tid: None)
    env.run()
    finish = sorted(p.value)
    assert finish[-1] == pytest.approx(1.5)
    assert all(f == pytest.approx(1.0) for f in finish[:-1])


def test_jitter_spreads_arrivals():
    """Default jitter: long compute phases never finish in lockstep."""
    env = Environment()
    team = WorkerTeam(env, 32, rng())
    phase = ComputePhase(compute=100e-3, noise=NoNoise())
    p = team.run_round(phase, lambda tid: None)
    env.run()
    finish = sorted(p.value)
    spread = finish[-1] - finish[0]
    # ~0.01% of 100ms, over 32 samples: tens of microseconds.
    assert 5e-6 < spread < 200e-6


def test_jitter_scales_with_oversubscription():
    def spread_for(n, cores):
        env = Environment()
        team = WorkerTeam(env, n, rng(), cores=cores)
        phase = ComputePhase(compute=100e-3, noise=NoNoise())
        p = team.run_round(phase, lambda tid: None)
        env.run()
        finish = sorted(p.value)
        return finish[-1] - finish[0]

    assert spread_for(128, cores=40) > spread_for(128, cores=256)


def test_jitter_validation():
    with pytest.raises(ValueError):
        ComputePhase(compute=1.0, noise=NoNoise(), jitter_fraction=-0.1)


def test_round_counter_advances_noise():
    env = Environment()
    team = WorkerTeam(env, 4, rng())
    phase = ComputePhase(compute=1.0, noise=SingleThreadDelay(0.5))
    victims = []
    for _ in range(6):
        p = team.run_round(phase, lambda tid: None)
        env.run()
        finish = p.value
        victims.append(int(np.argmax(finish)))
    assert len(set(victims)) > 1


def test_oversubscription_flag():
    env = Environment()
    assert WorkerTeam(env, 64, rng(), cores=40).oversubscribed
    assert not WorkerTeam(env, 32, rng(), cores=40).oversubscribed
    assert not WorkerTeam(env, 64, rng()).oversubscribed


def test_team_validation():
    env = Environment()
    with pytest.raises(ValueError):
        WorkerTeam(env, 0, rng())
    with pytest.raises(ValueError):
        ComputePhase(compute=-1.0, noise=NoNoise())


def test_zero_compute_runs_body_immediately():
    env = Environment()
    team = WorkerTeam(env, 2, rng())
    p = team.run_round(ComputePhase(compute=0.0, noise=NoNoise()),
                       lambda tid: None)
    env.run()
    assert p.value == [0.0, 0.0]
