"""Tests for the brute-force tuning table (Section IV-B)."""

import pytest

from repro.core import TuningTable, TuningTableAggregator
from repro.core.tuning_table import build_tuning_table
from repro.config import NIAGARA
from repro.errors import TuningError
from repro.units import KiB, MiB


def small_table():
    table = TuningTable()
    table.add(32, 4 * KiB, 1, 1)
    table.add(32, 512 * KiB, 2, 2)
    table.add(32, 8 * MiB, 8, 2)
    table.add(4, 4 * KiB, 1, 1)
    return table


def test_lookup_floors_to_recorded_size():
    table = small_table()
    assert table.lookup(32, 4 * KiB) == (1, 1)
    assert table.lookup(32, 100 * KiB) == (1, 1)
    assert table.lookup(32, 512 * KiB) == (2, 2)
    assert table.lookup(32, 1 * MiB) == (2, 2)
    assert table.lookup(32, 64 * MiB) == (8, 2)


def test_lookup_below_smallest_uses_smallest():
    table = small_table()
    assert table.lookup(32, 16) == (1, 1)


def test_lookup_keyed_by_user_count():
    table = small_table()
    assert table.lookup(4, 1 * MiB) == (1, 1)


def test_lookup_missing_user_count_raises():
    with pytest.raises(TuningError):
        small_table().lookup(64, 4 * KiB)


def test_lookup_cache_invalidated_by_add():
    """add() after a lookup must be visible — the sorted-size cache
    is invalidated, not stale."""
    table = TuningTable()
    table.add(32, 512 * KiB, 2, 2)
    assert table.lookup(32, 1 * MiB) == (2, 2)  # primes the cache
    table.add(32, 1 * MiB, 8, 2)
    assert table.lookup(32, 1 * MiB) == (8, 2)
    # Other user counts keep their own (still valid) cache lines.
    table.add(4, 4 * KiB, 1, 1)
    assert table.lookup(4, 1 * MiB) == (1, 1)
    assert table.lookup(32, 2 * MiB) == (8, 2)


def test_add_validation():
    table = TuningTable()
    with pytest.raises(TuningError):
        table.add(3, 4 * KiB, 1, 1)       # non power of two
    with pytest.raises(TuningError):
        table.add(4, 4 * KiB, 8, 1)       # transport > user
    with pytest.raises(TuningError):
        table.add(4, 0, 1, 1)             # bad size
    with pytest.raises(TuningError):
        table.add(4, 4 * KiB, 1, 0)       # bad qps


def test_aggregator_uses_table():
    agg = TuningTableAggregator(small_table())
    plan = agg.plan(32, 512 * KiB // 32, NIAGARA)
    assert plan.n_transport == 2
    assert plan.n_qps == 2


def test_aggregator_rejects_empty_table():
    with pytest.raises(TuningError):
        TuningTableAggregator(TuningTable())


def test_build_tuning_table_small_search():
    """A tiny brute-force search on the simulator produces sane entries."""
    table = build_tuning_table(
        n_user_counts=[4],
        message_sizes=[4 * KiB, 1 * MiB],
        iterations=3,
        warmup=1,
    )
    assert len(table) == 2
    for size in (4 * KiB, 1 * MiB):
        n_transport, n_qps = table.lookup(4, size)
        assert 1 <= n_transport <= 4
        assert n_qps >= 1


def test_build_tuning_table_picks_the_measured_best():
    """The recorded entry must beat (or tie) every other candidate —
    the paper found the brute-force and model winners within ~9% of
    each other, so we assert optimality, not a particular count."""
    from repro.bench.overhead import run_overhead
    from repro.core.aggregators import FixedAggregation

    table = build_tuning_table(
        n_user_counts=[16],
        message_sizes=[128 * KiB],
        iterations=3,
        warmup=1,
    )
    n_transport, n_qps = table.lookup(16, 128 * KiB)
    best = run_overhead(FixedAggregation(n_transport, n_qps),
                        n_user=16, total_bytes=128 * KiB,
                        iterations=3, warmup=1).mean_time
    # Spot-check against two alternatives.
    for alt_t, alt_q in ((1, 1), (16, 1)):
        alt = run_overhead(FixedAggregation(alt_t, alt_q),
                           n_user=16, total_bytes=128 * KiB,
                           iterations=3, warmup=1).mean_time
        assert best <= alt * (1 + 1e-9)
