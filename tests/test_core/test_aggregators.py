"""Tests for aggregation strategies."""

import pytest

from repro.config import NIAGARA
from repro.core import (
    AggregationPlan,
    FixedAggregation,
    NoAggregation,
    PLogGPAggregator,
    TimerPLogGPAggregator,
)
from repro.errors import ConfigError
from repro.model.tables import NIAGARA_LOGGP, TABLE1_PAPER
from repro.units import KiB, MiB, ms, us


def test_plan_validation():
    with pytest.raises(ConfigError):
        AggregationPlan(n_transport=3, n_qps=1)
    with pytest.raises(ConfigError):
        AggregationPlan(n_transport=4, n_qps=0)
    with pytest.raises(ConfigError):
        AggregationPlan(n_transport=4, n_qps=1, timer_delta=-1.0)


def test_fixed_aggregation_passthrough():
    plan = FixedAggregation(8, 4).plan(32, 1 * KiB, NIAGARA)
    assert plan.n_transport == 8
    assert plan.n_qps == 4
    assert plan.timer_delta is None


def test_fixed_aggregation_clamped_to_user_count():
    plan = FixedAggregation(32, 2).plan(8, 1 * KiB, NIAGARA)
    assert plan.n_transport == 8


def test_fixed_validation():
    with pytest.raises(ConfigError):
        FixedAggregation(3, 1)
    with pytest.raises(ConfigError):
        FixedAggregation(4, 0)


def test_no_aggregation_one_transport_per_user():
    plan = NoAggregation().plan(16, 4 * KiB, NIAGARA)
    assert plan.n_transport == 16
    # 16 concurrent WRs exactly hit the per-QP limit -> 1 QP suffices,
    # but the default_qps floor applies.
    assert plan.n_qps >= 1


def test_no_aggregation_explicit_qps():
    plan = NoAggregation(n_qps=16).plan(16, 4 * KiB, NIAGARA)
    assert plan.n_qps == 16


def test_no_aggregation_respects_outstanding_limit():
    plan = NoAggregation().plan(128, 1 * KiB, NIAGARA)
    # 128 concurrent WRs need >= ceil(128/16) = 8 QPs.
    assert plan.n_qps >= 8


def test_ploggp_matches_table1():
    agg = PLogGPAggregator(NIAGARA_LOGGP, delay=100e-3)
    for size, want in TABLE1_PAPER.items():
        n_user = 32
        plan = agg.plan(n_user, size // n_user, NIAGARA)
        assert plan.n_transport == min(want, n_user), f"size {size}"


def test_ploggp_clamps_to_user_request():
    agg = PLogGPAggregator(NIAGARA_LOGGP, delay=100e-3)
    plan = agg.plan(4, 64 * MiB // 4, NIAGARA)
    assert plan.n_transport <= 4


def test_ploggp_validation():
    with pytest.raises(ConfigError):
        PLogGPAggregator(NIAGARA_LOGGP, delay=-1.0)
    with pytest.raises(ConfigError):
        PLogGPAggregator(NIAGARA_LOGGP, delay=1.0, max_transport=0)


def test_timer_plan_arms_delta():
    agg = TimerPLogGPAggregator(NIAGARA_LOGGP, delay=ms(4), delta=us(35))
    plan = agg.plan(32, 256 * KiB, NIAGARA)
    assert plan.timer_delta == pytest.approx(us(35))


def test_timer_default_delta_from_config():
    agg = TimerPLogGPAggregator(NIAGARA_LOGGP, delay=ms(4))
    plan = agg.plan(32, 256 * KiB, NIAGARA)
    assert plan.timer_delta == pytest.approx(NIAGARA.part.timer_delta)


def test_timer_qps_sized_for_worst_case():
    """Timer mode can issue one WR per user partition."""
    agg = TimerPLogGPAggregator(NIAGARA_LOGGP, delay=ms(4), delta=us(35))
    plan = agg.plan(128, 64 * KiB, NIAGARA)
    assert plan.n_qps >= 128 // NIAGARA.nic.max_outstanding_rdma


def test_timer_validation():
    with pytest.raises(ConfigError):
        TimerPLogGPAggregator(NIAGARA_LOGGP, delay=ms(4), delta=-1.0)


def test_describe_strings():
    assert "fixed" in FixedAggregation(2, 1).describe()
    assert "none" == NoAggregation().describe()
    assert "ploggp" in PLogGPAggregator(NIAGARA_LOGGP, delay=0.0).describe()
    assert "timer" in TimerPLogGPAggregator(
        NIAGARA_LOGGP, delay=0.0, delta=us(1)).describe()
