"""Tests for minimum-delta estimation (Section V-C3 / Fig. 12)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import estimate_min_delta, min_delta_table
from repro.core.delta import min_delta_per_round
from repro.errors import ConfigError


def test_single_round_spread():
    # non-laggard arrivals spread over 5us; laggard at 4ms excluded
    rounds = [[0e-6, 2e-6, 5e-6, 4000e-6]]
    assert estimate_min_delta(rounds) == pytest.approx(5e-6)


def test_laggard_excluded_by_rank_not_index():
    rounds = [[4000e-6, 0e-6, 2e-6, 5e-6]]  # laggard first
    assert estimate_min_delta(rounds) == pytest.approx(5e-6)


def test_multiple_rounds_averaged():
    rounds = [
        [0.0, 10e-6, 1e-3],
        [0.0, 20e-6, 1e-3],
    ]
    assert estimate_min_delta(rounds) == pytest.approx(15e-6)


def test_rotating_victim_normalized():
    """Rounds are aligned to their own first arrival before averaging."""
    rounds = [
        [5.0, 5.0 + 10e-6, 5.0 + 1e-3],
        [9.0, 9.0 + 10e-6, 9.0 + 1e-3],
    ]
    assert estimate_min_delta(rounds) == pytest.approx(10e-6)


def test_zero_laggards_includes_all():
    rounds = [[0.0, 1e-6, 2e-6]]
    assert estimate_min_delta(rounds, laggards_per_round=0) == pytest.approx(2e-6)


def test_validation():
    with pytest.raises(ConfigError):
        estimate_min_delta([])
    with pytest.raises(ConfigError):
        estimate_min_delta([[0.0, 1.0], [0.0]])
    with pytest.raises(ConfigError):
        estimate_min_delta([[0.0, 1.0]], laggards_per_round=2)


def test_empty_round_rejected():
    # A round with no arrivals cannot exclude a laggard.
    with pytest.raises(ConfigError):
        estimate_min_delta([[]])


def test_single_partition_round():
    # One partition and no laggard exclusion: spread degenerates to 0.
    rounds = [[0.5]]
    assert estimate_min_delta(rounds, laggards_per_round=0) == 0.0
    with pytest.raises(ConfigError):
        estimate_min_delta(rounds)  # cannot drop the only arrival


def test_zero_delta_when_arrivals_coincide():
    rounds = [[1.0, 1.0, 1.0, 1.0]]
    assert estimate_min_delta(rounds) == 0.0
    assert estimate_min_delta(rounds, laggards_per_round=0) == 0.0


def test_non_monotone_timestamps_sorted_per_round():
    # Pready times arrive in thread-finish order; ranking is by value.
    rounds = [[5e-6, 4000e-6, 2e-6, 0.0]]
    assert estimate_min_delta(rounds) == pytest.approx(5e-6)
    assert min_delta_per_round(rounds) == [pytest.approx(5e-6)]


def test_per_round_diagnostics():
    rounds = [[0.0, 3e-6, 1e-3], [0.0, 7e-6, 1e-3]]
    assert min_delta_per_round(rounds) == [
        pytest.approx(3e-6), pytest.approx(7e-6)]


def test_table_building():
    profiles = {
        (1024, 4): [[0.0, 1e-6, 2e-6, 1e-3]],
        (2048, 4): [[0.0, 2e-6, 4e-6, 1e-3]],
    }
    table = min_delta_table(profiles)
    assert table[(1024, 4)] == pytest.approx(2e-6)
    assert table[(2048, 4)] == pytest.approx(4e-6)


@given(
    spread=st.floats(min_value=1e-9, max_value=1e-3),
    laggard_extra=st.floats(min_value=0.0, max_value=1.0),
    n=st.integers(min_value=3, max_value=64),
)
@settings(max_examples=50, deadline=None)
def test_delta_never_exceeds_full_spread(spread, laggard_extra, n):
    import numpy as np

    base = list(np.linspace(0.0, spread, n - 1))
    rounds = [base + [spread + laggard_extra]]
    delta = estimate_min_delta(rounds)
    assert 0 <= delta <= spread + 1e-12
