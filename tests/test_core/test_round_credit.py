"""Tests for the round-credit gate (remote buffer readiness).

The sender may only put round-N data on the wire once the receiver's
``MPI_Start`` for round N has re-armed the buffers — otherwise a fast
sender overwrites data the application may still be reading, and the
pre-posted receive queues underflow.  This is the remote-readiness
problem behind the MPI Forum's ``MPI_Pbuf_prepare`` proposal
(Section IV-A); the reproduction closes it with a Start-granted credit.
"""

import numpy as np
import pytest

from repro.core import FixedAggregation, NativeSpec, TimerPLogGPAggregator
from repro.mem import PartitionedBuffer
from repro.model.tables import NIAGARA_LOGGP
from repro.mpi import Cluster
from repro.mpi.persist_module import PersistSpec
from repro.units import KiB, ms, us


def back_to_back_rounds(spec_factory, n_parts=16, psize=128, rounds=6,
                        receiver_dwell=0.0):
    """Zero-compute rounds: the sender races as far ahead as allowed.

    ``receiver_dwell`` holds the receiver between Wait and its next
    Start (simulating the application reading the buffer), widening the
    window a rogue sender would corrupt.
    """
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    sbuf = PartitionedBuffer(n_parts, psize)
    rbuf = PartitionedBuffer(n_parts, psize)
    seen = []

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0, module=spec_factory())
        for rnd in range(rounds):
            sbuf.fill_pattern(seed=rnd + 1)
            yield from proc.start(req)
            for i in range(n_parts):
                yield from proc.pready(req, i)
            yield from proc.wait_partitioned(req)

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0, module=spec_factory())
        for rnd in range(rounds):
            yield from proc.start(req)
            yield from proc.wait_partitioned(req)
            # Read the buffer "slowly": nothing may change under us.
            before = rbuf.data.copy()
            if receiver_dwell:
                yield proc.env.timeout(receiver_dwell)
            assert np.array_equal(rbuf.data, before), f"round {rnd} corrupted"
            seen.append(bytes(rbuf.data[:16]))

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()
    # Every round delivered its own distinct pattern.
    assert len(set(seen)) == rounds


SPECS = [
    ("persist", PersistSpec),
    ("native-noagg", lambda: NativeSpec(FixedAggregation(16, 2))),
    ("native-agg", lambda: NativeSpec(FixedAggregation(2, 2))),
    ("native-timer", lambda: NativeSpec(TimerPLogGPAggregator(
        NIAGARA_LOGGP, delay=ms(4), delta=us(5)))),
]


@pytest.mark.parametrize("name,spec", SPECS)
def test_back_to_back_rounds_stay_correct(name, spec):
    back_to_back_rounds(spec)


@pytest.mark.parametrize("name,spec", SPECS)
def test_buffer_stable_while_receiver_reads(name, spec):
    """The sender must not overwrite the buffer during the window
    between the receiver's Wait and its next Start."""
    back_to_back_rounds(spec, receiver_dwell=50e-6)


def test_rendezvous_partitions_respect_credit():
    """Deferred RTS headers (rendezvous tier) flush correctly too."""
    back_to_back_rounds(PersistSpec, n_parts=4, psize=64 * KiB, rounds=4,
                        receiver_dwell=100e-6)


@pytest.mark.parametrize("n_transport,n_qps", [(1, 1), (2, 1), (4, 1),
                                               (1, 2), (4, 2)])
def test_no_premature_completion_during_post(n_transport, n_qps):
    """Regression: the send-side completion check must stay false while
    a WR is between sent-marking and the actual post (inside the
    WR-build cost).  The original bug let a round complete mid-flush,
    re-arm, and livelock with acked > posted — deterministic at
    (T=1, QP=1, 4x16KiB, back-to-back rounds)."""
    back_to_back_rounds(
        lambda: NativeSpec(FixedAggregation(n_transport, n_qps)),
        n_parts=4, psize=16 * KiB, rounds=4)


def test_credit_defers_then_flushes():
    """With a dwelling receiver, the sender's posts defer on the credit
    and flush once it arrives — nothing is lost, nothing early."""
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    sbuf = PartitionedBuffer(4, 1 * KiB, backed=False)
    rbuf = PartitionedBuffer(4, 1 * KiB, backed=False)
    holder = {}

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0,
                              module=NativeSpec(FixedAggregation(4, 1)))
        holder["req"] = req
        for rnd in range(2):
            yield from proc.start(req)
            for i in range(4):
                yield from proc.pready(req, i)
            yield from proc.wait_partitioned(req)

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0,
                              module=NativeSpec(FixedAggregation(4, 1)))
        for rnd in range(2):
            if rnd:
                yield proc.env.timeout(100e-6)  # dwell before re-arming
            yield from proc.start(req)
            yield from proc.wait_partitioned(req)

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()
    module = holder["req"].module
    assert module._armed_round >= 2
    assert not module._deferred
    assert module.total_wrs_posted == 8  # 4 per round, none doubled
