"""Behavioural tests of the native-verbs module: WR counts, aggregation
semantics, timer dynamics."""

import numpy as np
import pytest

from repro.core import FixedAggregation, NativeSpec
from repro.mem import PartitionedBuffer
from repro.mpi import Cluster
from repro.units import KiB, us


def run_with_arrivals(aggregator, arrival_offsets, n_parts=8, psize=1 * KiB,
                      rounds=1):
    """Drive pready calls at explicit per-partition times.

    Returns (module, recv buffer, send buffer).
    """
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    sbuf = PartitionedBuffer(n_parts, psize)
    rbuf = PartitionedBuffer(n_parts, psize)
    sbuf.fill_pattern(seed=1)
    holder = {}

    def thread(proc, req, i, offset):
        yield proc.env.timeout(offset)
        yield from proc.pready(req, i)

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0,
                              module=NativeSpec(aggregator))
        holder["module"] = None
        for _ in range(rounds):
            yield from proc.start(req)
            holder["module"] = req.module
            threads = [proc.env.process(thread(proc, req, i, arrival_offsets[i]))
                       for i in range(n_parts)]
            yield proc.env.all_of(threads)
            yield from proc.wait_partitioned(req)

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0,
                              module=NativeSpec(aggregator))
        for _ in range(rounds):
            yield from proc.start(req)
            yield from proc.wait_partitioned(req)

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()
    return holder["module"], rbuf, sbuf


def test_full_aggregation_posts_one_wr():
    module, rbuf, sbuf = run_with_arrivals(
        FixedAggregation(1, 1), [0.0] * 8)
    assert module.total_wrs_posted == 1
    assert np.array_equal(rbuf.data, sbuf.data)


def test_no_aggregation_posts_one_wr_per_partition():
    module, rbuf, sbuf = run_with_arrivals(
        FixedAggregation(8, 1), [0.0] * 8)
    assert module.total_wrs_posted == 8
    assert np.array_equal(rbuf.data, sbuf.data)


def test_partial_aggregation_wr_count():
    module, rbuf, sbuf = run_with_arrivals(
        FixedAggregation(4, 2), [0.0] * 8)
    assert module.total_wrs_posted == 4
    assert np.array_equal(rbuf.data, sbuf.data)


def test_wr_count_scales_with_rounds():
    module, rbuf, sbuf = run_with_arrivals(
        FixedAggregation(2, 1), [0.0] * 8, rounds=3)
    assert module.total_wrs_posted == 6


def test_group_posts_only_when_last_member_arrives():
    """With 2 groups and one slow member in group 0, group 1's data
    arrives first even though group 0 has earlier partitions."""
    offsets = [0.0, 0.0, 0.0, 500e-6, 0.0, 0.0, 0.0, 0.0]
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    sbuf = PartitionedBuffer(8, 1 * KiB, backed=False)
    rbuf = PartitionedBuffer(8, 1 * KiB, backed=False)
    holder = {}

    def thread(proc, req, i):
        yield proc.env.timeout(offsets[i])
        yield from proc.pready(req, i)

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0,
                              module=NativeSpec(FixedAggregation(2, 2)))
        yield from proc.start(req)
        threads = [proc.env.process(thread(proc, req, i)) for i in range(8)]
        yield proc.env.all_of(threads)
        yield from proc.wait_partitioned(req)

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0,
                              module=NativeSpec(FixedAggregation(2, 2)))
        holder["req"] = req
        yield from proc.start(req)
        yield from proc.wait_partitioned(req)

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()
    req = holder["req"]
    group0_arrival = req.arrival_times[0]
    group1_arrival = req.arrival_times[4]
    assert group1_arrival < group0_arrival
    # Group 0 waited for its laggard at 500us.
    assert group0_arrival > 500e-6


def test_timer_flushes_early_arrivals():
    """First arriver flushes after delta; laggard sends itself."""
    delta = us(50)
    offsets = [0.0] * 7 + [400e-6]  # laggard way past delta
    module, rbuf, sbuf = run_with_arrivals(
        FixedAggregation(1, 1, timer_delta=delta), offsets)
    # One WR for the 7 early partitions (contiguous), one for the laggard.
    assert module.timer_flushes == 1
    assert module.total_wrs_posted == 2
    assert np.array_equal(rbuf.data, sbuf.data)


def test_timer_no_flush_when_all_arrive_within_delta():
    delta = us(500)
    offsets = [0.0] * 7 + [50e-6]  # laggard within delta
    module, rbuf, sbuf = run_with_arrivals(
        FixedAggregation(1, 1, timer_delta=delta), offsets)
    assert module.timer_flushes == 0
    assert module.total_wrs_posted == 1


def test_timer_flush_sends_contiguous_runs():
    """Arrived partitions {0,1,3} at flush -> runs {0,1} and {3}; then
    2 arrives alone, then 4..7 arrive together post-flush."""
    delta = us(50)
    offsets = [0.0, 0.0, 200e-6, 0.0, 300e-6, 300e-6, 300e-6, 300e-6]
    module, rbuf, sbuf = run_with_arrivals(
        FixedAggregation(1, 1, timer_delta=delta), offsets)
    assert module.timer_flushes == 1
    # flush: {0,1}, {3} = 2 WRs; partition 2 alone = 1 WR; partitions
    # 4..7 arrive at the same instant post-flush — the DES serializes
    # their preadys, so runs depend on arrival interleaving; at minimum
    # they need 1 WR and at most 4.
    assert 4 <= module.total_wrs_posted <= 7
    assert np.array_equal(rbuf.data, sbuf.data)


def test_timer_disabled_for_singleton_groups():
    """group_size == 1: every pready is its own last arriver."""
    module, rbuf, sbuf = run_with_arrivals(
        FixedAggregation(8, 1, timer_delta=us(50)),
        [0.0] * 8)
    assert module.timer_flushes == 0
    assert module.total_wrs_posted == 8


def test_plan_respects_outstanding_limit_via_flow_control():
    """32 no-agg partitions on 1 QP exceed 16 outstanding; software
    flow control must stall rather than fault."""
    module, rbuf, sbuf = run_with_arrivals(
        FixedAggregation(32, 1), [0.0] * 32, n_parts=32)
    assert module.total_wrs_posted == 32
    assert np.array_equal(rbuf.data, sbuf.data)


def test_no_double_send_under_flush_races():
    """Regression: arrivals landing while a flush is mid-posting (or
    while their own pready is parked on the atomic) must not be posted
    twice — a double-send consumes an extra pre-posted receive WR and
    eventually underflows the RQ (receiver-not-ready)."""
    delta = us(4)
    # Dense arrival stagger around the delta so flushes constantly race
    # with individual arrivals, across many rounds.
    offsets = [i * 1.3e-6 for i in range(16)]
    module, rbuf, sbuf = run_with_arrivals(
        FixedAggregation(1, 1, timer_delta=delta), offsets,
        n_parts=16, rounds=12)
    # Every partition posted exactly once per round.
    assert module.total_wrs_posted <= 16 * 12
    assert np.array_equal(rbuf.data, sbuf.data)


def test_multi_qp_spreads_groups():
    module, rbuf, sbuf = run_with_arrivals(
        FixedAggregation(8, 4), [0.0] * 8)
    posted = [qp.posted_sends for qp in module.send_qps]
    assert len(posted) == 4
    assert all(p == 2 for p in posted)  # 8 groups round-robin on 4 QPs
