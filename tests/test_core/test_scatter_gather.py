"""Tests for the scatter/gather flush ablation (rejected in Section IV-D)."""

import numpy as np
import pytest

from repro.core import FixedAggregation, NativeSpec, TimerPLogGPAggregator
from repro.model.tables import NIAGARA_LOGGP
from repro.units import KiB, ms, us
from tests.test_core.test_native_module import run_with_arrivals


def test_sg_flush_posts_single_wr_for_noncontiguous():
    """Arrived {0,1,3,5} at flush -> one multi-SGE WR instead of three."""
    delta = us(50)
    offsets = [0.0, 0.0, 400e-6, 0.0, 400e-6, 0.0, 400e-6, 400e-6]
    sg_module, sg_rbuf, sg_sbuf = run_with_arrivals(
        FixedAggregation(1, 1, timer_delta=delta, scatter_gather=True),
        offsets)
    plain_module, _, _ = run_with_arrivals(
        FixedAggregation(1, 1, timer_delta=delta), offsets)
    # plain: 3 runs at flush ({0,1},{3},{5}) + late arrivals; sg: 1 WR
    # at flush + late arrivals.
    assert sg_module.total_wrs_posted < plain_module.total_wrs_posted
    assert np.array_equal(sg_rbuf.data, sg_sbuf.data)


def test_sg_data_integrity_over_rounds():
    delta = us(40)
    offsets = [0.0, 300e-6, 0.0, 300e-6, 0.0, 300e-6, 0.0, 0.0]
    module, rbuf, sbuf = run_with_arrivals(
        FixedAggregation(1, 2, timer_delta=delta, scatter_gather=True),
        offsets, rounds=3)
    assert np.array_equal(rbuf.data, sbuf.data)
    assert module.timer_flushes == 3


def test_sg_contiguous_flush_stays_plain():
    """A single contiguous run needs no staging — same as the plain path."""
    delta = us(50)
    offsets = [0.0] * 7 + [400e-6]
    sg_module, rbuf, sbuf = run_with_arrivals(
        FixedAggregation(1, 1, timer_delta=delta, scatter_gather=True),
        offsets)
    plain_module, _, _ = run_with_arrivals(
        FixedAggregation(1, 1, timer_delta=delta), offsets)
    assert sg_module.total_wrs_posted == plain_module.total_wrs_posted
    assert np.array_equal(rbuf.data, sbuf.data)


def test_sg_receiver_pays_staging_copy():
    """The SG path's receive-side staging copy delays the flushed
    partitions' availability relative to the run-based flush — the
    cost that made the paper reject the design."""
    delta = us(50)
    # Large partitions so the staging memcpy matters.
    offsets = [0.0, 400e-6, 0.0, 400e-6, 0.0, 400e-6, 0.0, 0.0]

    def flushed_arrival(aggregator):
        module, rbuf, sbuf = run_with_arrivals(
            aggregator, offsets, psize=256 * KiB)
        # Partition 0 goes out in the flush in both designs.
        return module.recv_req.arrival_times[0]

    t_sg = flushed_arrival(FixedAggregation(1, 1, timer_delta=delta,
                                            scatter_gather=True))
    t_plain = flushed_arrival(FixedAggregation(1, 1, timer_delta=delta))
    assert t_sg > t_plain


def test_timer_aggregator_sg_option():
    agg = TimerPLogGPAggregator(NIAGARA_LOGGP, delay=ms(4), delta=us(35),
                                scatter_gather=True)
    from repro.config import NIAGARA

    plan = agg.plan(32, 256 * KiB, NIAGARA)
    assert plan.scatter_gather
