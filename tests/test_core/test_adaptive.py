"""Tests for the adaptive-δ extension (paper future work, Section IV-D)."""

import pytest

from repro.config import NIAGARA
from repro.core import (
    AdaptiveDelta,
    AdaptiveTimerAggregator,
    AggregationPlan,
    NativeSpec,
)
from repro.errors import ConfigError
from repro.mem import PartitionedBuffer
from repro.model.tables import NIAGARA_LOGGP
from repro.mpi import Cluster
from repro.runtime import ComputePhase, SingleThreadDelay, WorkerTeam
from repro.units import KiB, ms, us


def test_update_moves_toward_target():
    tuner = AdaptiveDelta(alpha=0.5, margin=1.0, min_delta=1e-6,
                          max_delta=1e-3)
    # current 100us, observed spread 20us -> midpoint 60us
    assert tuner.update(100e-6, 20e-6) == pytest.approx(60e-6)


def test_update_clamps():
    tuner = AdaptiveDelta(alpha=1.0, margin=1.0, min_delta=10e-6,
                          max_delta=50e-6)
    assert tuner.update(30e-6, 0.0) == pytest.approx(10e-6)
    assert tuner.update(30e-6, 1.0) == pytest.approx(50e-6)


def test_adaptive_validation():
    with pytest.raises(ConfigError):
        AdaptiveDelta(alpha=0.0)
    with pytest.raises(ConfigError):
        AdaptiveDelta(margin=-1)
    with pytest.raises(ConfigError):
        AdaptiveDelta(min_delta=2e-3, max_delta=1e-3)


def test_plan_requires_timer_seed():
    with pytest.raises(ConfigError):
        AggregationPlan(n_transport=2, n_qps=1, adaptive=AdaptiveDelta())


def test_aggregator_plan_carries_tuner():
    agg = AdaptiveTimerAggregator(NIAGARA_LOGGP, delay=ms(4),
                                  initial_delta=us(100))
    plan = agg.plan(32, 256 * KiB, NIAGARA)
    assert plan.timer_delta == pytest.approx(us(100))
    assert plan.adaptive is not None
    assert "adaptive" in agg.describe()


def run_rounds(aggregator, rounds=6, n_parts=16, compute=ms(2)):
    cluster = Cluster(n_nodes=2)
    s_proc, r_proc = cluster.ranks(2)
    sbuf = PartitionedBuffer(n_parts, 64 * KiB, backed=False)
    rbuf = PartitionedBuffer(n_parts, 64 * KiB, backed=False)
    holder = {}

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0,
                              module=NativeSpec(aggregator))
        team = WorkerTeam(proc.env, n_parts,
                          cluster.rngs.stream("noise"), cores=40)
        phase = ComputePhase(compute=compute, noise=SingleThreadDelay(0.04))
        for _ in range(rounds):
            yield from proc.start(req)
            yield team.run_round(phase, lambda tid: proc.pready(req, tid))
            yield from proc.wait_partitioned(req)
        holder["module"] = req.module

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0,
                              module=NativeSpec(aggregator))
        for _ in range(rounds):
            yield from proc.start(req)
            yield from proc.wait_partitioned(req)

    cluster.spawn(sender(s_proc))
    cluster.spawn(receiver(r_proc))
    cluster.run()
    return holder["module"]


def test_delta_converges_toward_observed_spread():
    """Starting from a far-too-large delta, the tuner shrinks it to the
    scale of the actual non-laggard jitter (sub-10us at 2ms compute)."""
    agg = AdaptiveTimerAggregator(
        NIAGARA_LOGGP, delay=ms(4), initial_delta=us(500),
        adaptive=AdaptiveDelta(alpha=0.5, margin=1.25,
                               min_delta=us(0.5), max_delta=us(500)))
    module = run_rounds(agg)
    history = module.delta_history
    assert history[0] == pytest.approx(us(500))
    assert history[-1] < history[0] / 5
    # Monotone-ish decay toward the spread.
    assert history[-1] < us(50)


def test_delta_history_one_entry_per_round():
    agg = AdaptiveTimerAggregator(NIAGARA_LOGGP, delay=ms(4),
                                  initial_delta=us(100))
    module = run_rounds(agg, rounds=4)
    assert len(module.delta_history) == 4


def test_fixed_timer_keeps_delta_constant():
    from repro.core import TimerPLogGPAggregator

    agg = TimerPLogGPAggregator(NIAGARA_LOGGP, delay=ms(4), delta=us(100))
    module = run_rounds(agg, rounds=4)
    assert module.delta_history == [pytest.approx(us(100))] * 4
