"""Tests for the be32 immediate encoding (Section IV-A)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import decode_immediate, encode_immediate
from repro.errors import PartitionError


def test_simple_roundtrip():
    imm = encode_immediate(3, 5)
    assert decode_immediate(imm) == (3, 5)


def test_encoding_layout():
    # start in the high 16 bits, count in the low 16.
    assert encode_immediate(1, 2) == (1 << 16) | 2


def test_extremes():
    assert decode_immediate(encode_immediate(0, 1)) == (0, 1)
    assert decode_immediate(encode_immediate(65535, 65535)) == (65535, 65535)


def test_fits_be32():
    assert 0 <= encode_immediate(65535, 65535) < 2**32


def test_start_out_of_range():
    with pytest.raises(PartitionError):
        encode_immediate(65536, 1)
    with pytest.raises(PartitionError):
        encode_immediate(-1, 1)


def test_count_out_of_range():
    with pytest.raises(PartitionError):
        encode_immediate(0, 0)
    with pytest.raises(PartitionError):
        encode_immediate(0, 65536)


def test_decode_zero_count_rejected():
    with pytest.raises(PartitionError):
        decode_immediate(5 << 16)


def test_decode_out_of_range():
    with pytest.raises(PartitionError):
        decode_immediate(2**32)
    with pytest.raises(PartitionError):
        decode_immediate(-1)


@given(start=st.integers(0, 65535), count=st.integers(1, 65535))
def test_roundtrip_property(start, count):
    assert decode_immediate(encode_immediate(start, count)) == (start, count)


@given(start=st.integers(0, 65535), count=st.integers(1, 65535))
def test_encoding_is_injective(start, count):
    imm = encode_immediate(start, count)
    other = encode_immediate((start + 1) % 65536, count)
    assert imm != other
