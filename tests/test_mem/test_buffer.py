"""Tests for Buffer and PartitionedBuffer."""

import numpy as np
import pytest

from repro.errors import PartitionError, ProtectionError
from repro.mem import Buffer, PartitionedBuffer


def test_backed_buffer_roundtrip():
    buf = Buffer(64)
    payload = np.arange(16, dtype=np.uint8)
    buf.write(8, payload)
    got = buf.read(8, 16)
    assert np.array_equal(got, payload)


def test_buffer_initial_zeroes():
    buf = Buffer(32)
    assert np.all(buf.data == 0)


def test_buffer_fill_value():
    buf = Buffer(16, fill=7)
    assert np.all(buf.data == 7)


def test_unbacked_buffer_has_no_data():
    buf = Buffer(128, backed=False)
    assert not buf.backed
    with pytest.raises(ProtectionError):
        _ = buf.data
    assert buf.read(0, 64) is None
    buf.write(0, None)  # no-op, no error


def test_unbacked_buffer_still_range_checks():
    buf = Buffer(128, backed=False)
    with pytest.raises(ProtectionError):
        buf.read(100, 64)


def test_out_of_range_read_rejected():
    buf = Buffer(32)
    with pytest.raises(ProtectionError):
        buf.read(16, 32)
    with pytest.raises(ProtectionError):
        buf.read(-1, 4)


def test_out_of_range_write_rejected():
    buf = Buffer(32)
    with pytest.raises(ProtectionError):
        buf.write(30, np.zeros(8, dtype=np.uint8))


def test_addresses_unique_and_nonoverlapping():
    a = Buffer(1024)
    b = Buffer(1024)
    assert a.addr + a.nbytes <= b.addr or b.addr + b.nbytes <= a.addr


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        Buffer(0)
    with pytest.raises(ValueError):
        Buffer(-5)


def test_fill_pattern_matches_expected():
    buf = Buffer(256)
    buf.fill_pattern(seed=3)
    assert np.array_equal(buf.read(50, 100), buf.expected_pattern(50, 100, seed=3))


def test_fill_pattern_seed_changes_content():
    a = Buffer(64)
    b = Buffer(64)
    a.fill_pattern(seed=1)
    b.fill_pattern(seed=2)
    assert not np.array_equal(a.data, b.data)


def test_partitioned_buffer_geometry():
    buf = PartitionedBuffer(n_partitions=8, partition_size=128)
    assert buf.nbytes == 1024
    assert buf.partition_offset(0) == 0
    assert buf.partition_offset(7) == 896


def test_partition_view_is_view():
    buf = PartitionedBuffer(4, 16)
    view = buf.partition_view(2)
    view[:] = 9
    assert np.all(buf.read(32, 16) == 9)


def test_range_offset_spans_partitions():
    buf = PartitionedBuffer(8, 64)
    offset, length = buf.range_offset(2, 3)
    assert offset == 128
    assert length == 192


def test_range_offset_full_buffer():
    buf = PartitionedBuffer(8, 64)
    assert buf.range_offset(0, 8) == (0, 512)


def test_invalid_partition_index():
    buf = PartitionedBuffer(4, 16)
    with pytest.raises(PartitionError):
        buf.partition_offset(4)
    with pytest.raises(PartitionError):
        buf.partition_offset(-1)


def test_invalid_partition_range():
    buf = PartitionedBuffer(4, 16)
    with pytest.raises(PartitionError):
        buf.range_offset(2, 3)
    with pytest.raises(PartitionError):
        buf.range_offset(0, 0)


def test_invalid_partition_geometry():
    with pytest.raises(PartitionError):
        PartitionedBuffer(0, 16)
    with pytest.raises(PartitionError):
        PartitionedBuffer(4, 0)
