"""The fleet chaos workload: tenancy invariants under a spine flap."""

from repro.chaos import (
    CampaignSpec,
    check_invariants,
    run_campaign,
    workload_names,
)
from repro.fleet.chaos import TENANT_NODES, run_fleet_workload


def test_fleet_workload_registered():
    assert "fleet" in workload_names()


def test_clean_run_satisfies_invariants():
    report = run_fleet_workload(None, seed=7)
    assert report.completed
    assert report.integrity_failures == 0
    assert report.leaks == []
    assert check_invariants(report) == []
    # Both tenants carried traffic, on their own NICs only.
    assert all(b > 0 for b in report.meta["tenant_bytes"].values())


def test_tenant_nodes_share_the_spine_from_distinct_leaves():
    from repro.fleet.run import default_topology

    topo = default_topology()
    leaves = set()
    for src, dst in TENANT_NODES.values():
        route = topo.route(src, dst)
        assert ("global", 0, 1) in route
        leaves.add(topo.leaf_of(src))
    # Different leaves: the flap correlates tenants through the shared
    # spine link, not through a shared leaf switch.
    assert len(leaves) == len(TENANT_NODES)


def test_fleet_runs_deterministic():
    a = run_fleet_workload(None, seed=3)
    b = run_fleet_workload(None, seed=3)
    assert a.duration == b.duration
    assert a.counters == b.counters
    assert a.meta["tenant_bytes"] == b.meta["tenant_bytes"]


def test_fleet_campaign_with_spine_flap():
    spec = CampaignSpec(workloads=("fleet",), runs=2, seed=11,
                        kinds=("flap_storm",))
    report = run_campaign(spec)
    assert report.ok, [o.violations for o in report.failures()]
    for outcome in report.outcomes:
        assert outcome.report.completed
        assert outcome.report.leaks == []
        # The deterministic spine flap rides on the generated schedule.
        assert outcome.report.meta["spine_flap"]
