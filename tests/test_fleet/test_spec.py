"""Job specs, module descriptors, and placement policies."""

import pytest

from repro.errors import ConfigError
from repro.fleet.spec import (
    JobSpec,
    _hashable,
    module_descriptor,
    place_jobs,
)
from repro.fleet.traffic import TrafficSpec
from repro.ib.topology import RoutedDragonflyPlus

TOPO = RoutedDragonflyPlus(nodes_per_leaf=2, leaves_per_group=2, groups=2)


def test_job_validation():
    with pytest.raises(ConfigError):
        JobSpec(name="x", kind="nope")
    with pytest.raises(ConfigError):
        JobSpec(name="x", n_ranks=1)
    with pytest.raises(ConfigError):
        JobSpec(name="x", kind="traffic")  # needs a TrafficSpec
    with pytest.raises(ConfigError):
        JobSpec(name="x", kind="pair", traffic=TrafficSpec())
    with pytest.raises(ConfigError):
        JobSpec(name="x", n_partitions=0)


def test_job_round_trips_through_dict():
    job = JobSpec(name="mpi", kind="pair", n_partitions=4,
                  module=("fixed", (("n_qps", 2), ("n_transport", 8))))
    assert JobSpec.from_dict(job.as_dict()) == job
    traffic = JobSpec(name="bg", kind="traffic",
                      traffic=TrafficSpec(kind="incast", seed=3))
    assert JobSpec.from_dict(traffic.as_dict()) == traffic


def test_module_descriptor_round_trip():
    desc = ["fixed", {"n_transport": 8, "n_qps": 2}]
    frozen = _hashable(desc)
    assert isinstance(frozen, tuple)
    hash(frozen)  # hashable, so JobSpec stays a frozen dataclass
    assert module_descriptor(frozen) == desc


def test_packed_placement_consecutive():
    jobs = [JobSpec(name="a", n_ranks=3), JobSpec(name="b", n_ranks=2)]
    placement = place_jobs(jobs, TOPO, "packed")
    assert placement == {"a": [0, 1, 2], "b": [3, 4]}


def test_spread_placement_straddles_groups():
    jobs = [JobSpec(name="a", n_ranks=2), JobSpec(name="b", n_ranks=2)]
    placement = place_jobs(jobs, TOPO, "spread")
    for nodes in placement.values():
        groups = {TOPO.group_of(n) for n in nodes}
        assert len(groups) == 2, placement


def test_random_placement_seeded():
    jobs = [JobSpec(name="a", n_ranks=4), JobSpec(name="b", n_ranks=4)]
    assert place_jobs(jobs, TOPO, "random", seed=1) \
        == place_jobs(jobs, TOPO, "random", seed=1)
    assert place_jobs(jobs, TOPO, "random", seed=1) \
        != place_jobs(jobs, TOPO, "random", seed=2)


def test_placements_always_disjoint():
    jobs = [JobSpec(name=f"j{i}", n_ranks=2) for i in range(4)]
    for policy in ("packed", "spread", "random"):
        placement = place_jobs(jobs, TOPO, policy, seed=5)
        nodes = [n for ns in placement.values() for n in ns]
        assert len(nodes) == len(set(nodes)) == 8


def test_placement_errors():
    with pytest.raises(ConfigError):
        place_jobs([JobSpec(name="a", n_ranks=9)], TOPO, "packed")
    with pytest.raises(ConfigError):
        place_jobs([JobSpec(name="a"), JobSpec(name="a")], TOPO, "packed")
    with pytest.raises(ConfigError):
        place_jobs([JobSpec(name="a")], TOPO, "diagonal")
