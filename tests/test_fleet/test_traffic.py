"""Determinism and shape of the background-traffic generators."""

import pytest

from repro.errors import ConfigError
from repro.fleet.traffic import TRAFFIC_KINDS, TrafficSpec, offered_load
from repro.units import KiB, ms, us

NODES = [0, 3, 5, 6]


@pytest.mark.parametrize("kind", TRAFFIC_KINDS)
def test_same_seed_same_events(kind):
    spec = TrafficSpec(kind=kind, seed=42)
    assert offered_load(spec, NODES) == offered_load(spec, NODES)


@pytest.mark.parametrize("kind", ["onoff", "permutation", "incast"])
def test_different_seed_different_events(kind):
    a = offered_load(TrafficSpec(kind=kind, seed=1), NODES)
    b = offered_load(TrafficSpec(kind=kind, seed=2), NODES)
    assert a != b


def test_events_sorted_and_bounded():
    spec = TrafficSpec(kind="onoff", horizon=ms(1), seed=7)
    events = offered_load(spec, NODES)
    times = [t for t, _, _, _ in events]
    assert times == sorted(times)
    assert all(0 <= t < spec.horizon for t in times)
    assert all(src in NODES and dst in NODES
               for _, src, dst, _ in events)
    assert all(nbytes == spec.nbytes for _, _, _, nbytes in events)


def test_permutation_no_self_sends():
    spec = TrafficSpec(kind="permutation", period=us(50), horizon=ms(1),
                       seed=3)
    events = offered_load(spec, NODES)
    assert events
    assert all(src != dst for _, src, dst, _ in events)
    # Every node sends in every period.
    first_period = [e for e in events if e[0] < us(50)]
    assert {src for _, src, _, _ in first_period} == set(NODES)


def test_incast_single_target():
    spec = TrafficSpec(kind="incast", seed=5)
    events = offered_load(spec, NODES)
    targets = {dst for _, _, dst, _ in events}
    assert len(targets) == 1
    target = targets.pop()
    assert target not in {src for _, src, _, _ in events}


def test_spec_validation():
    with pytest.raises(ConfigError):
        TrafficSpec(kind="nope")
    with pytest.raises(ConfigError):
        TrafficSpec(nbytes=0)
    with pytest.raises(ConfigError):
        TrafficSpec(period=0.0)
    with pytest.raises(ConfigError):
        offered_load(TrafficSpec(), [0])


def test_spec_round_trips_through_dict():
    spec = TrafficSpec(kind="incast", nbytes=64 * KiB, period=us(25),
                       burst=3, gap=us(100), horizon=ms(2), seed=9)
    assert TrafficSpec(**spec.as_dict()) == spec
