"""Link-graph contention semantics: bypass, sharing, arbitration."""

from repro.ib.fabric import Fabric
from repro.ib.topology import DragonflyPlus, RoutedDragonflyPlus
from repro.mem import Buffer
from repro.mpi import Cluster
from repro.sim import Environment
from repro.units import KiB, us

LATENCY_ONLY = DragonflyPlus(nodes_per_leaf=2, leaves_per_group=2)
ROUTED = RoutedDragonflyPlus(nodes_per_leaf=2, leaves_per_group=2,
                             groups=2)


def run_pairs(topo, pairs, nbytes=512 * KiB):
    """Concurrent one-shot transfers; returns completion time per pair."""
    cluster = Cluster(n_nodes=8, topology=topo)
    procs = [(cluster.add_process(node_id=a), cluster.add_process(node_id=b))
             for a, b in pairs]
    done = {}

    def sender(proc, dst, tag):
        yield from proc.send(Buffer(nbytes, backed=False), dest=dst,
                             tag=tag)

    def receiver(proc, src, tag, i):
        yield from proc.recv(Buffer(nbytes, backed=False), source=src,
                             tag=tag)
        done[i] = proc.env.now

    for i, (tx, rx) in enumerate(procs):
        cluster.spawn(sender(tx, rx.rank, i))
        cluster.spawn(receiver(rx, tx.rank, i, i))
    cluster.run()
    return done


def test_latency_only_topology_bypasses_link_graph():
    env = Environment()
    fabric = Fabric(env, topology=LATENCY_ONLY)
    assert fabric.links is None
    assert fabric.link_arbitration == 0.0
    assert fabric.link_stats(1.0) == {}


def test_routed_topology_builds_every_link():
    env = Environment()
    fabric = Fabric(env, topology=ROUTED)
    assert set(fabric.links) == set(ROUTED.link_keys())
    assert fabric.link_arbitration == ROUTED.arbitration
    # 4 leaves x (up + down) + 2 ordered global pairs.
    assert len(fabric.links) == 10


def test_shared_link_contention_slows_flows():
    # (0, 4) and (2, 6) cross the same global 0->1 link from different
    # leaves; same-leaf pairs share nothing beyond their own NICs.
    shared = run_pairs(ROUTED, [(0, 4), (2, 6)])
    disjoint = run_pairs(ROUTED, [(0, 1), (4, 5)])
    assert max(shared.values()) > max(disjoint.values())
    # Solo run of one of the shared-link flows is faster than when it
    # contends.
    solo = run_pairs(ROUTED, [(0, 4)])
    assert solo[0] < max(shared.values())


def test_arbitration_charged_only_under_contention():
    no_arb = RoutedDragonflyPlus(nodes_per_leaf=2, leaves_per_group=2,
                                 groups=2, arbitration=0.0)
    # Quiet fabric: a solo flow never waits for a grant, so its timing
    # is bit-identical whatever the arbitration delay.
    assert run_pairs(ROUTED, [(0, 4)]) == run_pairs(no_arb, [(0, 4)])
    # Contended flows pay it on every waited-for grant.
    contended = run_pairs(ROUTED, [(0, 4), (2, 6)])
    contended_free = run_pairs(no_arb, [(0, 4), (2, 6)])
    assert max(contended.values()) > max(contended_free.values())


def test_link_stats_account_traffic():
    cluster = Cluster(n_nodes=8, topology=ROUTED)
    tx = cluster.add_process(node_id=0)
    rx = cluster.add_process(node_id=4)
    done = {}

    def sender(proc):
        yield from proc.send(Buffer(512 * KiB, backed=False), dest=rx.rank,
                             tag=1)

    def receiver(proc):
        yield from proc.recv(Buffer(512 * KiB, backed=False),
                             source=tx.rank, tag=1)
        done["t"] = proc.env.now

    cluster.spawn(sender(tx))
    cluster.spawn(receiver(rx))
    cluster.run()
    stats = cluster.fabric.link_stats(cluster.env.now)
    crossed = {name for name, s in stats.items() if s["bytes"]}
    assert crossed == {"leaf-up/0", "global/0/1", "leaf-down/2"}
    for name in crossed:
        assert stats[name]["bytes"] == 512 * KiB
        assert 0 < stats[name]["utilization"] <= 1.0


def test_same_leaf_route_skips_links():
    cluster = Cluster(n_nodes=8, topology=ROUTED)
    assert cluster.fabric.route_links(0, 1) == ()
    route = cluster.fabric.route_links(0, 4)
    assert [link.key for link in route] == [
        ("leaf-up", 0), ("global", 0, 1), ("leaf-down", 2)]


def test_arbitration_validation():
    import pytest

    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        RoutedDragonflyPlus(nodes_per_leaf=2, leaves_per_group=2,
                            groups=2, arbitration=-us(1))
