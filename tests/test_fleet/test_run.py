"""Fleet runs: determinism, slowdowns, and the contended ranking."""

import pytest

from repro.errors import ConfigError
from repro.fleet import (
    JobSpec,
    TrafficSpec,
    background_jobs,
    run_contended_pair,
    run_fleet,
    run_fleet_with_slowdowns,
)
from repro.units import KiB, ms, us

MIX = [
    JobSpec(name="pair", kind="pair", n_ranks=2, n_partitions=8,
            partition_size=64 * KiB, iterations=3, warmup=1),
    JobSpec(name="halo", kind="halo", n_ranks=3, n_partitions=4,
            partition_size=32 * KiB, iterations=3, warmup=1),
    JobSpec(name="bg", kind="traffic", n_ranks=2,
            traffic=TrafficSpec(kind="permutation", nbytes=128 * KiB,
                                period=us(40), horizon=ms(1), seed=5)),
]


def test_run_fleet_deterministic():
    a = run_fleet(MIX, placement="spread", seed=3).as_dict()
    b = run_fleet(MIX, placement="spread", seed=3).as_dict()
    assert a == b


def test_run_fleet_profile_shape():
    profile = run_fleet(MIX, placement="spread", seed=0)
    assert profile.makespan > 0
    assert set(profile.tenants) == {"pair", "halo", "bg"}
    assert profile.tenants["pair"].mean_iteration is not None
    assert profile.tenants["bg"].mean_iteration is None
    assert profile.tenants["bg"].bytes_transmitted > 0
    # The tenants' node sets are disjoint.
    nodes = [n for view in profile.tenants.values() for n in view.nodes]
    assert len(nodes) == len(set(nodes))
    assert sum(profile.link_histogram()) == len(profile.links) == 10


def test_slowdowns_vs_isolated_baselines():
    profile = run_fleet_with_slowdowns(MIX, placement="spread", seed=0)
    assert set(profile.slowdowns) == {"pair", "halo"}
    # Shared fabric plus a traffic tenant: nobody runs faster than alone.
    assert all(v > 1.0 for v in profile.slowdowns.values()), \
        profile.slowdowns
    baselines = profile.meta["isolated_baselines"]
    for name, slowdown in profile.slowdowns.items():
        mean = profile.tenants[name].mean_iteration
        assert slowdown == pytest.approx(mean / baselines[name])


def test_background_jobs_level():
    assert background_jobs(0) == []
    jobs = background_jobs(3, seed=2)
    assert len(jobs) == 3
    assert len({job.traffic.seed for job in jobs}) == 3
    assert all(job.kind == "traffic" for job in jobs)


def test_contended_pair_levels_monotone():
    times = {level: run_contended_pair(level=level, iterations=3,
                                       warmup=1)["mean_time"]
             for level in (0, 2)}
    assert times[2] > times[0]
    quiet = run_contended_pair(level=0, iterations=3, warmup=1)
    assert quiet["spine_utilization"] < 1.0
    assert len(quiet["iteration_times"]) == 3


def test_contended_pair_deterministic():
    kwargs = dict(module=("fixed", (("n_qps", 2), ("n_transport", 4))),
                  level=1, iterations=3, warmup=1, seed=4)
    assert run_contended_pair(**kwargs) == run_contended_pair(**kwargs)


def test_fleet_needs_routed_topology():
    from repro.fleet.tenancy import TenantScheduler
    from repro.ib.topology import DragonflyPlus

    with pytest.raises(ConfigError):
        TenantScheduler([MIX[0]],
                        DragonflyPlus(nodes_per_leaf=2, leaves_per_group=2))
