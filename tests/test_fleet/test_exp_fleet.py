"""The fleet measurement kinds and the ext_fleet spec wiring."""

import json

from repro.exp.kinds import run_point
from repro.exp.spec import Scenario
from repro.units import KiB

RANK_POINT = Scenario.make(
    "fleet_rank", module=["fixed", {"n_transport": 4, "n_qps": 2}],
    level=1, iterations=2, warmup=1, seed=0)
FLEET_POINT = Scenario.make(
    "fleet",
    jobs=[{"name": "pair", "kind": "pair", "n_ranks": 2,
           "n_partitions": 8, "partition_size": 64 * KiB,
           "iterations": 2, "warmup": 1},
          {"name": "bg", "kind": "traffic", "n_ranks": 2,
           "traffic": {"kind": "permutation", "nbytes": 128 * KiB,
                       "period": 4e-5, "horizon": 1e-3, "seed": 5}}],
    placement="spread", seed=0)
AUTOTUNE_POINT = Scenario.make(
    "fleet_autotune",
    autotune={"policy": "bandit", "counts": [4, 16], "deltas": [None],
              "epsilon": 0.3, "decay": 0.9, "bandit_seed": 3,
              "window": 4},
    quiet_rounds=3, congested_rounds=4, tail_rounds=1, seed=1)


def _run(point):
    return run_point(point.as_dict())


def test_fleet_rank_kind():
    res = _run(RANK_POINT)
    assert res["level"] == 1
    assert res["mean_time"] > 0
    assert res["spine_utilization"] > 0
    json.dumps(res)  # flat JSON-safe metrics dict


def test_fleet_kind():
    res = _run(FLEET_POINT)
    assert res["slowdowns"]["pair"] > 1.0
    assert res["mean_iterations"]["pair"] > 0
    assert res["spine_utilization"] > 0
    json.dumps(res)


def test_fleet_autotune_kind():
    res = _run(AUTOTUNE_POINT)
    assert "rounds" not in res  # folded into the compact trajectory
    assert len(res["trajectory"]) == 8
    assert res["quiet_best"] is not None
    json.dumps(res)


def test_kinds_are_pure_functions_of_the_scenario():
    # The serial/parallel byte-identity contract: re-executing a point
    # in a fresh context reproduces the result bit for bit.
    for point in (RANK_POINT, FLEET_POINT):
        a, b = _run(point), _run(point)
        assert json.dumps(a, sort_keys=True) == json.dumps(b,
                                                           sort_keys=True)


def test_ext_fleet_spec_points():
    from repro.exp.profiles import FAST
    from repro.exp.registry import get_experiment

    spec = get_experiment("ext_fleet").build(FAST)
    kinds = {p.kind for p in spec.points}
    assert kinds == {"fleet_rank", "fleet", "fleet_autotune"}
    # 4 designs x 3 levels + 2 mixes + 2 policies.
    assert len(spec.points) == 16
