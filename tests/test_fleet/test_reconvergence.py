"""The live re-tuning probe: trajectory structure and determinism.

The full episode (both policies measurably re-converging onto the
congested-best plan) runs in ``benchmarks/bench_ext_fleet.py``; here a
short episode checks the mechanics — neighbor windowing, round
bookkeeping, the near-optimal-set summary — cheaply.
"""

from repro.fleet import run_reconvergence

PARAMS = {"policy": "bandit", "counts": [4, 16], "deltas": [None],
          "epsilon": 0.3, "decay": 0.9, "bandit_seed": 3, "window": 4}
SHORT = dict(quiet_rounds=4, congested_rounds=6, tail_rounds=2,
             neighbor_streams=2, seed=1)


def test_reconvergence_summary_shape():
    res = run_reconvergence(PARAMS, **SHORT)
    assert res["arrive_round"] == 4
    assert res["depart_round"] == 10
    assert len(res["rounds"]) == 12
    assert [r["round"] for r in res["rounds"]] == list(range(1, 13))
    assert res["neighbor"] == {"pairs": 2, "nbytes": 256 * 1024,
                               "streams": 2}
    assert res["quiet_best"] is not None
    assert res["congested_best"] is not None
    # The near-optimal set always contains the congested-best plan.
    assert res["congested_best"] in res["near_optimal_plans"]
    assert isinstance(res["adapted"], bool)


def test_congestion_slows_the_pair():
    res = run_reconvergence(PARAMS, **SHORT)
    quiet = [r["completion_time"] for r in res["rounds"]
             if r["round"] < res["arrive_round"]]
    congested = [r["completion_time"] for r in res["rounds"]
                 if res["arrive_round"] < r["round"] < res["depart_round"]]
    assert min(congested) > max(quiet)
    # The arrival round itself is excluded from the congested stats
    # (mixed-regime), so regret is summed over len-1 rounds.
    assert res["regret"] is not None and res["regret"] >= 0.0


def test_reconvergence_deterministic():
    a = run_reconvergence(PARAMS, **SHORT)
    b = run_reconvergence(PARAMS, **SHORT)
    assert a == b


def test_neighbor_capacity_check():
    import pytest

    with pytest.raises(ValueError):
        run_reconvergence(PARAMS, neighbor_pairs=4, **{
            k: v for k, v in SHORT.items() if k != "seed"}, seed=0)
