"""Post-run analysis of simulation traces.

Enable tracing (``ClusterConfig(trace_enabled=True)``) and the IB layer
records WQE starts, wire chunks, and deliveries; these helpers turn the
records into the quantities the paper reasons about — wire utilization
("we are limited by the actual hardware bandwidth", Section V-C2),
per-message wire latency, and egress timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim.monitor import Trace


@dataclass(frozen=True)
class WireStats:
    """Aggregate egress statistics for one node."""

    node_id: int
    busy_time: float
    window: float
    bytes_on_wire: int
    n_chunks: int

    @property
    def utilization(self) -> float:
        """Fraction of the window the egress port was transmitting."""
        if self.window <= 0:
            return 0.0
        return min(1.0, self.busy_time / self.window)

    @property
    def effective_bandwidth(self) -> float:
        """Bytes per second pushed across the window."""
        if self.window <= 0:
            return 0.0
        return self.bytes_on_wire / self.window


def wire_stats(trace: Trace, node_id: int,
               t_start: float = 0.0,
               t_end: Optional[float] = None) -> WireStats:
    """Egress statistics for ``node_id`` over [t_start, t_end]."""
    chunks = [rec for rec in trace.filter(category="ib.chunk",
                                          subject=node_id)
              if rec.time >= t_start
              and (t_end is None or rec.time <= t_end)]
    if t_end is None:
        t_end = max((rec.time + rec.data["occupancy"] for rec in chunks),
                    default=t_start)
    busy = sum(rec.data["occupancy"] for rec in chunks)
    nbytes = sum(rec.data["nbytes"] for rec in chunks)
    return WireStats(
        node_id=node_id,
        busy_time=busy,
        window=max(0.0, t_end - t_start),
        bytes_on_wire=nbytes,
        n_chunks=len(chunks),
    )


def chunk_timeline(trace: Trace, node_id: int) -> list[tuple[float, float, int]]:
    """(start, end, bytes) of every egress chunk, in time order."""
    out = [
        (rec.time, rec.time + rec.data["occupancy"], rec.data["nbytes"])
        for rec in trace.filter(category="ib.chunk", subject=node_id)
    ]
    out.sort()
    return out


def idle_gaps(trace: Trace, node_id: int,
              min_gap: float = 0.0) -> list[tuple[float, float]]:
    """Egress idle intervals between chunks (length > min_gap).

    The early-bird window the timer aggregator exploits shows up here
    as a long idle gap between the early flush and the laggard's chunk.
    """
    timeline = chunk_timeline(trace, node_id)
    gaps = []
    for (s1, e1, _), (s2, _, _) in zip(timeline, timeline[1:]):
        if s2 - e1 > min_gap:
            gaps.append((e1, s2))
    return gaps


def message_wire_latencies(trace: Trace) -> dict[int, float]:
    """{wr_id: delivery time - WQE start} for every traced message."""
    starts = {}
    for rec in trace.filter(category="ib.wqe_start"):
        starts[rec.data["wr_id"]] = rec.time
    latencies = {}
    for rec in trace.filter(category="ib.deliver"):
        wr_id = rec.data["wr_id"]
        if wr_id in starts:
            latencies[wr_id] = rec.time - starts[wr_id]
    return latencies


def latency_percentiles(trace: Trace,
                        percentiles=(50, 90, 99)) -> dict[int, float]:
    """Wire-latency percentiles across all traced messages."""
    values = list(message_wire_latencies(trace).values())
    if not values:
        return {p: 0.0 for p in percentiles}
    arr = np.asarray(values)
    return {p: float(np.percentile(arr, p)) for p in percentiles}
