"""Memory regions: registered buffers the NIC may access."""

from __future__ import annotations

import itertools

from repro.errors import ProtectionError
from repro.ib.constants import ACCESS_LOCAL, ACCESS_REMOTE_READ, ACCESS_REMOTE_WRITE
from repro.mem.buffer import Buffer

_key_counter = itertools.count(0x1000)


class MemoryRegion:
    """A registered range of host memory (``ibv_mr``).

    Registration pins the buffer and yields a local key (``lkey``) for
    gather/scatter elements and a remote key (``rkey``) remote peers
    must present for RDMA access.
    """

    def __init__(self, pd, buffer: Buffer, access: int = ACCESS_LOCAL):
        self.pd = pd
        self.buffer = buffer
        self.access = access
        self.lkey: int = next(_key_counter)
        self.rkey: int = next(_key_counter)
        self.addr: int = buffer.addr
        self.length: int = buffer.nbytes
        self._valid = True

    @property
    def valid(self) -> bool:
        return self._valid

    def deregister(self) -> None:
        """Invalidate the region (``ibv_dereg_mr``)."""
        self._valid = False

    def contains(self, addr: int, length: int) -> bool:
        """Whether [addr, addr+length) lies inside this region."""
        return self.addr <= addr and addr + length <= self.addr + self.length

    def check_local(self, addr: int, length: int, lkey: int) -> None:
        """Validate a local (gather) access."""
        if not self._valid:
            raise ProtectionError("access through deregistered MR")
        if lkey != self.lkey:
            raise ProtectionError(f"bad lkey {lkey:#x} (expected {self.lkey:#x})")
        if not self.contains(addr, length):
            raise ProtectionError(
                f"local access [{addr:#x}, +{length}) outside MR "
                f"[{self.addr:#x}, +{self.length})"
            )

    def check_remote_write(self, addr: int, length: int, rkey: int) -> None:
        """Validate an inbound RDMA write."""
        if not self._valid:
            raise ProtectionError("remote access through deregistered MR")
        if rkey != self.rkey:
            raise ProtectionError(f"bad rkey {rkey:#x} (expected {self.rkey:#x})")
        if not (self.access & ACCESS_REMOTE_WRITE):
            raise ProtectionError("MR not registered for remote write")
        if not self.contains(addr, length):
            raise ProtectionError(
                f"remote write [{addr:#x}, +{length}) outside MR "
                f"[{self.addr:#x}, +{self.length})"
            )

    def check_remote_read(self, addr: int, length: int, rkey: int) -> None:
        """Validate an inbound RDMA read (the responder side)."""
        if not self._valid:
            raise ProtectionError("remote access through deregistered MR")
        if rkey != self.rkey:
            raise ProtectionError(f"bad rkey {rkey:#x} (expected {self.rkey:#x})")
        if not (self.access & ACCESS_REMOTE_READ):
            raise ProtectionError("MR not registered for remote read")
        if not self.contains(addr, length):
            raise ProtectionError(
                f"remote read [{addr:#x}, +{length}) outside MR "
                f"[{self.addr:#x}, +{self.length})"
            )

    def local_offset(self, addr: int) -> int:
        """Buffer-relative offset of virtual address ``addr``."""
        return addr - self.addr

    def __repr__(self) -> str:
        return f"<MR lkey={self.lkey:#x} rkey={self.rkey:#x} {self.length}B>"
