"""Queue pairs: state machine, send/receive queues, posting rules."""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from repro.errors import QPOverflowError, QPStateError
from repro.ib.constants import QP_TRANSITIONS, Opcode, QPState
from repro.ib.wr import RecvWR, SendWR
from repro.sim.resources import Store

if TYPE_CHECKING:
    from repro.ib.cq import CompletionQueue
    from repro.ib.pd import ProtectionDomain


class QueuePair:
    """A simulated RC queue pair (``ibv_qp``).

    Posting rules enforced exactly as on hardware:

    * ``post_send`` requires RTS and a free SQ slot, and — for RDMA
      opcodes — fewer than ``max_outstanding_rdma`` WRs in flight
      (the ConnectX-5 limit of 16 the paper works around with
      multiple QPs);
    * ``post_recv`` is legal from INIT onward;
    * state changes must follow RESET -> INIT -> RTR -> RTS.
    """

    def __init__(
        self,
        pd: "ProtectionDomain",
        send_cq: "CompletionQueue",
        recv_cq: "CompletionQueue",
        qp_num: int,
        max_send_wr: int = 1024,
        max_recv_wr: int = 4096,
        port: int = 0,
    ):
        self.pd = pd
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.qp_num = qp_num
        self.max_send_wr = max_send_wr
        self.max_recv_wr = max_recv_wr
        #: NIC port (rail) this QP's traffic uses.  Both ends of a
        #: connection bind the same port index (``ibv_modify_qp``'s
        #: ``IBV_QP_PORT`` in the real API).
        self.port = port
        self.state = QPState.RESET
        #: Destination set when connected: (node_id, remote qp_num).
        self.dest_node: Optional[int] = None
        self.dest_qp_num: Optional[int] = None
        #: The NIC this QP is registered with (set by the NIC).
        self.nic = None
        #: Send queue drained by the NIC's per-QP sender process.
        self.sq: Optional[Store] = None
        self.rq: Deque[RecvWR] = deque()
        #: RDMA WRs posted but not yet acknowledged.
        self.outstanding_rdma = 0
        #: WRs sitting in the SQ not yet picked up by the engine.
        self.sq_depth = 0
        #: Events waiting for an outstanding-RDMA slot to free (software
        #: flow control in the MPI layer parks here).
        self._slot_waiters: list = []
        #: Per-QP injection rate limiter state (virtual time).
        self.next_inject_time = 0.0
        #: RC reliability attributes (``IBV_QP_RETRY_CNT`` /
        #: ``IBV_QP_RNR_RETRY`` / ``IBV_QP_TIMEOUT``).  ``None`` means
        #: "inherit the NIC config default" — resolved lazily so QPs
        #: can be re-tuned any time before a fault hits.
        self.retry_cnt: Optional[int] = None
        self.rnr_retry: Optional[int] = None
        self.timeout: Optional[int] = None
        # statistics
        self.posted_sends = 0
        self.posted_recvs = 0
        self.bytes_sent = 0
        pd.qps.append(self)

    # -- state machine ----------------------------------------------------

    def modify(self, new_state: QPState) -> None:
        """Transition the QP (``ibv_modify_qp``)."""
        if new_state not in QP_TRANSITIONS[self.state]:
            raise QPStateError(
                f"illegal QP transition {self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    def to_init(self) -> None:
        self.modify(QPState.INIT)

    def to_rtr(self, dest_node: int, dest_qp_num: int) -> None:
        """Move to RTR, binding the remote endpoint."""
        self.modify(QPState.RTR)
        self.dest_node = dest_node
        self.dest_qp_num = dest_qp_num

    def to_rts(self) -> None:
        self.modify(QPState.RTS)

    def to_error(self) -> None:
        """Move to ERROR and flush both queues (``IBV_WC_WR_FLUSH_ERR``).

        As on hardware, a killed QP drains everything: pending receive
        WRs and queued (not-yet-transmitted) send WRs complete in error,
        outstanding-RDMA accounting resets, and any process parked in
        :meth:`wait_rdma_slot` is woken so nothing hangs on a dead QP.
        """
        from repro.ib.constants import WCOpcode, WCStatus
        from repro.ib.wr import WorkCompletion

        self.modify(QPState.ERROR)
        now = self.nic.env.now if self.nic is not None else 0.0
        while self.rq:
            recv_wr = self.rq.popleft()
            self.recv_cq.push(WorkCompletion(
                wr_id=recv_wr.wr_id,
                status=WCStatus.WR_FLUSH_ERR,
                opcode=WCOpcode.RECV,
                qp_num=self.qp_num,
                completed_at=now,
            ))
        if self.sq is not None:
            for send_wr in self.sq.drain():
                self.sq_depth -= 1
                self.send_cq.push(WorkCompletion(
                    wr_id=send_wr.wr_id,
                    status=WCStatus.WR_FLUSH_ERR,
                    opcode=send_wr.opcode.wc_opcode,
                    qp_num=self.qp_num,
                    completed_at=now,
                ))
        self.outstanding_rdma = 0
        waiters, self._slot_waiters = self._slot_waiters, []
        for ev in waiters:
            if not ev.triggered:
                ev.succeed(None)

    @property
    def connected(self) -> bool:
        return self.dest_node is not None

    # -- posting ------------------------------------------------------------

    def post_send(self, wr: SendWR) -> None:
        """Enqueue a send WR (``ibv_post_send``), validating eagerly."""
        if self.state is not QPState.RTS:
            raise QPStateError(
                f"post_send on QP {self.qp_num} in state {self.state.value}"
            )
        if self.sq_depth >= self.max_send_wr:
            raise QPOverflowError(
                f"send queue full on QP {self.qp_num} "
                f"({self.sq_depth}/{self.max_send_wr})"
            )
        if wr.opcode.is_rdma:
            limit = self.nic.config.nic.max_outstanding_rdma
            if self.outstanding_rdma >= limit:
                raise QPOverflowError(
                    f"QP {self.qp_num}: {self.outstanding_rdma} outstanding RDMA "
                    f"WRs, hardware limit is {limit}"
                )
            self.outstanding_rdma += 1
        # Validate the local list (gather source, or scatter sink for
        # reads) against this PD's MRs now, as the hardware would fault
        # on WQE processing.
        for sge in wr.sg_list:
            if sge.length == 0:
                continue
            mr = self.pd.find_mr_by_lkey(sge.lkey)
            mr.check_local(sge.addr, sge.length, sge.lkey)
        self.sq_depth += 1
        self.posted_sends += 1
        self.bytes_sent += wr.total_length
        self.sq.put(wr)

    def post_recv(self, wr: RecvWR) -> None:
        """Enqueue a receive WR (``ibv_post_recv``)."""
        if self.state not in (QPState.INIT, QPState.RTR, QPState.RTS):
            raise QPStateError(
                f"post_recv on QP {self.qp_num} in state {self.state.value}"
            )
        if len(self.rq) >= self.max_recv_wr:
            raise QPOverflowError(f"receive queue full on QP {self.qp_num}")
        self.rq.append(wr)
        self.posted_recvs += 1

    def has_rdma_slot(self) -> bool:
        """Whether another RDMA WR may be posted right now."""
        return self.outstanding_rdma < self.nic.config.nic.max_outstanding_rdma

    def wait_rdma_slot(self):
        """Event that fires when an outstanding-RDMA slot frees.

        Fires immediately on a QP in ERROR: there is nothing left to
        wait for, and the caller's next ``post_send`` raises, which is
        how the failure surfaces instead of a hang.
        """
        from repro.sim.core import Event

        ev = Event(self.nic.env)
        if self.state is QPState.ERROR or self.has_rdma_slot():
            ev.succeed(None)
        else:
            self._slot_waiters.append(ev)
        return ev

    def notify_slot_free(self) -> None:
        """NIC side: an ACK freed a slot; wake one waiter."""
        while self._slot_waiters and self.has_rdma_slot():
            self._slot_waiters.pop(0).succeed(None)

    def release_rdma_slot(self) -> None:
        """Return one outstanding-RDMA credit and wake a parked waiter.

        Guarded: an ACK arriving for a WR that was already flushed by
        :meth:`to_error` (which zeroes the counter) must not drive the
        count negative.
        """
        if self.outstanding_rdma > 0:
            self.outstanding_rdma -= 1
        self.notify_slot_free()

    # -- RC reliability attributes ----------------------------------------

    @property
    def effective_retry_cnt(self) -> int:
        """ACK-timeout retry budget (``IBV_QP_RETRY_CNT``)."""
        if self.retry_cnt is not None:
            return self.retry_cnt
        return self.nic.config.nic.retry_cnt

    @property
    def effective_rnr_retry(self) -> int:
        """RNR NAK retry budget; 7 means retry forever (IB spec)."""
        if self.rnr_retry is not None:
            return self.rnr_retry
        return self.nic.config.nic.rnr_retry

    @property
    def ack_timeout(self) -> float:
        """Seconds before an unacknowledged WR retransmits.

        IB encodes the local ACK timeout as an exponent:
        ``4.096 us * 2**timeout``.
        """
        if self.timeout is not None:
            return 4.096e-6 * (1 << self.timeout)
        return self.nic.config.nic.ack_timeout

    def consume_recv(self) -> RecvWR:
        """Pop the oldest RQ entry (NIC side, on inbound message)."""
        if not self.rq:
            raise QPStateError(
                f"receiver-not-ready: QP {self.qp_num} has an empty receive "
                "queue for an inbound message that consumes one"
            )
        return self.rq.popleft()

    def __repr__(self) -> str:
        return (
            f"<QP {self.qp_num} {self.state.value} "
            f"dest={self.dest_node}/{self.dest_qp_num} "
            f"outstanding={self.outstanding_rdma}>"
        )
