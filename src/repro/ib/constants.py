"""Enumerations mirroring the verbs C API."""

from __future__ import annotations

import enum


class Opcode(enum.Enum):
    """Send work-request opcodes (subset used by the paper's design)."""

    RDMA_WRITE = "IBV_WR_RDMA_WRITE"
    RDMA_WRITE_WITH_IMM = "IBV_WR_RDMA_WRITE_WITH_IMM"
    RDMA_READ = "IBV_WR_RDMA_READ"
    SEND = "IBV_WR_SEND"
    SEND_WITH_IMM = "IBV_WR_SEND_WITH_IMM"

    @property
    def has_immediate(self) -> bool:
        return self in (Opcode.RDMA_WRITE_WITH_IMM, Opcode.SEND_WITH_IMM)

    @property
    def consumes_recv_wr(self) -> bool:
        """Whether the remote side consumes an RQ entry for this opcode."""
        return self in (
            Opcode.RDMA_WRITE_WITH_IMM,
            Opcode.SEND,
            Opcode.SEND_WITH_IMM,
        )

    @property
    def is_rdma(self) -> bool:
        """Counts toward the outstanding-RDMA-WR hardware limit."""
        return self in (
            Opcode.RDMA_WRITE,
            Opcode.RDMA_WRITE_WITH_IMM,
            Opcode.RDMA_READ,
        )

    @property
    def wc_opcode(self) -> "WCOpcode":
        """The sender-side completion opcode this WR produces."""
        if self is Opcode.RDMA_READ:
            return WCOpcode.RDMA_READ
        if self in (Opcode.RDMA_WRITE, Opcode.RDMA_WRITE_WITH_IMM):
            return WCOpcode.RDMA_WRITE
        return WCOpcode.SEND


class QPState(enum.Enum):
    """Queue pair state machine (RESET -> INIT -> RTR -> RTS)."""

    RESET = "RESET"
    INIT = "INIT"
    RTR = "RTR"    # ready to receive
    RTS = "RTS"    # ready to send
    ERROR = "ERROR"


#: Legal QP state transitions.
QP_TRANSITIONS: dict[QPState, frozenset[QPState]] = {
    QPState.RESET: frozenset({QPState.INIT, QPState.ERROR}),
    QPState.INIT: frozenset({QPState.RTR, QPState.RESET, QPState.ERROR}),
    QPState.RTR: frozenset({QPState.RTS, QPState.RESET, QPState.ERROR}),
    QPState.RTS: frozenset({QPState.RESET, QPState.ERROR}),
    QPState.ERROR: frozenset({QPState.RESET}),
}


class WCStatus(enum.Enum):
    """Work completion status codes (subset)."""

    SUCCESS = "IBV_WC_SUCCESS"
    LOC_PROT_ERR = "IBV_WC_LOC_PROT_ERR"
    REM_ACCESS_ERR = "IBV_WC_REM_ACCESS_ERR"
    RETRY_EXC_ERR = "IBV_WC_RETRY_EXC_ERR"
    RNR_RETRY_EXC_ERR = "IBV_WC_RNR_RETRY_EXC_ERR"
    WR_FLUSH_ERR = "IBV_WC_WR_FLUSH_ERR"


class WCOpcode(enum.Enum):
    """Work completion opcodes."""

    RDMA_WRITE = "IBV_WC_RDMA_WRITE"
    RDMA_READ = "IBV_WC_RDMA_READ"
    SEND = "IBV_WC_SEND"
    RECV = "IBV_WC_RECV"
    RECV_RDMA_WITH_IMM = "IBV_WC_RECV_RDMA_WITH_IMM"


#: Access flag bits for memory registration.
ACCESS_LOCAL: int = 0x1
ACCESS_REMOTE_WRITE: int = 0x2
ACCESS_REMOTE_READ: int = 0x4
