"""Fabric topologies: latency structure beyond the uniform crossbar.

Niagara's EDR fabric is a **Dragonfly+** (Section V-A): nodes attach to
leaf switches grouped into Dragonfly groups; intra-group traffic
crosses leaf/spine switches inside the group, inter-group traffic adds
a global-link hop.  At the paper's message sizes the bandwidth is
non-blocking either way (full bisection), so topology shows up as a
per-hop latency difference — which is exactly what this model adds.

Use with :class:`repro.ib.fabric.Fabric` via the ``topology`` argument;
the default remains the uniform crossbar.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import us


class Topology(abc.ABC):
    """Maps a node pair to a one-way propagation latency."""

    @abc.abstractmethod
    def latency(self, src: int, dst: int) -> float:
        """One-way latency between two distinct nodes."""

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class UniformTopology(Topology):
    """Every pair at the same latency (non-blocking crossbar)."""

    pair_latency: float = us(0.6)

    def __post_init__(self):
        if self.pair_latency < 0:
            raise ConfigError("negative latency")

    def latency(self, src: int, dst: int) -> float:
        return self.pair_latency

    def describe(self) -> str:
        return f"uniform({self.pair_latency})"


@dataclass(frozen=True)
class DragonflyPlus(Topology):
    """Two-level Dragonfly+: leaf groups joined by global links.

    Parameters mirror an EDR Dragonfly+ like Niagara's:

    * ``nodes_per_leaf`` — nodes under one leaf switch (same-leaf pairs
      cross a single switch);
    * ``leaves_per_group`` — leaf switches per Dragonfly group
      (same-group pairs add a spine hop);
    * inter-group pairs add the global-link hop.
    """

    nodes_per_leaf: int = 16
    leaves_per_group: int = 12
    same_leaf_latency: float = us(0.35)
    intra_group_latency: float = us(0.6)
    inter_group_latency: float = us(0.95)

    def __post_init__(self):
        if self.nodes_per_leaf < 1 or self.leaves_per_group < 1:
            raise ConfigError("topology dimensions must be >= 1")
        if not (0 <= self.same_leaf_latency
                <= self.intra_group_latency
                <= self.inter_group_latency):
            raise ConfigError(
                "latencies must be ordered: leaf <= group <= global")

    @property
    def nodes_per_group(self) -> int:
        return self.nodes_per_leaf * self.leaves_per_group

    def leaf_of(self, node: int) -> int:
        return node // self.nodes_per_leaf

    def group_of(self, node: int) -> int:
        return node // self.nodes_per_group

    def latency(self, src: int, dst: int) -> float:
        if self.leaf_of(src) == self.leaf_of(dst):
            return self.same_leaf_latency
        if self.group_of(src) == self.group_of(dst):
            return self.intra_group_latency
        return self.inter_group_latency

    def describe(self) -> str:
        return (f"dragonfly+({self.nodes_per_leaf}x{self.leaves_per_group}"
                f" per group)")


#: Niagara-like instance: 2024 nodes in Dragonfly+ groups.
NIAGARA_TOPOLOGY = DragonflyPlus()
