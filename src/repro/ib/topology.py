"""Fabric topologies: latency structure beyond the uniform crossbar.

Niagara's EDR fabric is a **Dragonfly+** (Section V-A): nodes attach to
leaf switches grouped into Dragonfly groups; intra-group traffic
crosses leaf/spine switches inside the group, inter-group traffic adds
a global-link hop.  At the paper's message sizes the bandwidth is
non-blocking either way (full bisection), so topology shows up as a
per-hop latency difference — which is exactly what this model adds.

Use with :class:`repro.ib.fabric.Fabric` via the ``topology`` argument;
the default remains the uniform crossbar.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.units import us

#: Link-key kinds the routed topologies emit (see :meth:`Topology.route`).
LINK_LEAF_UP = "leaf-up"
LINK_LEAF_DOWN = "leaf-down"
LINK_GLOBAL = "global"


class Topology(abc.ABC):
    """Maps a node pair to a one-way propagation latency.

    Latency-only topologies describe the fabric as a non-blocking
    crossbar with structured latencies; *routed* topologies
    additionally resolve each node pair to the sequence of shared
    switch-level links the traffic crosses (:meth:`route`), which the
    fabric turns into per-link contention queues.
    """

    #: True when :meth:`route` resolves pairs to shared links.  The
    #: fabric only builds the link graph (and the NIC only takes the
    #: routed transmit path) when this is set, so latency-only
    #: topologies bypass the link layer entirely.
    routed = False

    @abc.abstractmethod
    def latency(self, src: int, dst: int) -> float:
        """One-way latency between two distinct nodes."""

    def route(self, src: int, dst: int) -> Optional[tuple]:
        """Shared-link keys the (src, dst) path crosses, in hop order.

        Latency-only topologies return None (no link graph); routed
        topologies return a (possibly empty) tuple of hashable link
        keys — an empty tuple means the pair shares no fabric link
        beyond the two endpoint NICs (e.g. same leaf switch).
        """
        return None

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class UniformTopology(Topology):
    """Every pair at the same latency (non-blocking crossbar)."""

    pair_latency: float = us(0.6)

    def __post_init__(self):
        if self.pair_latency < 0:
            raise ConfigError("negative latency")

    def latency(self, src: int, dst: int) -> float:
        return self.pair_latency

    def describe(self) -> str:
        return f"uniform({self.pair_latency})"


@dataclass(frozen=True)
class DragonflyPlus(Topology):
    """Two-level Dragonfly+: leaf groups joined by global links.

    Parameters mirror an EDR Dragonfly+ like Niagara's:

    * ``nodes_per_leaf`` — nodes under one leaf switch (same-leaf pairs
      cross a single switch);
    * ``leaves_per_group`` — leaf switches per Dragonfly group
      (same-group pairs add a spine hop);
    * inter-group pairs add the global-link hop.
    """

    nodes_per_leaf: int = 16
    leaves_per_group: int = 12
    same_leaf_latency: float = us(0.35)
    intra_group_latency: float = us(0.6)
    inter_group_latency: float = us(0.95)

    def __post_init__(self):
        if self.nodes_per_leaf < 1 or self.leaves_per_group < 1:
            raise ConfigError("topology dimensions must be >= 1")
        if not (0 <= self.same_leaf_latency
                <= self.intra_group_latency
                <= self.inter_group_latency):
            raise ConfigError(
                "latencies must be ordered: leaf <= group <= global")

    @property
    def nodes_per_group(self) -> int:
        return self.nodes_per_leaf * self.leaves_per_group

    def leaf_of(self, node: int) -> int:
        return node // self.nodes_per_leaf

    def group_of(self, node: int) -> int:
        return node // self.nodes_per_group

    def latency(self, src: int, dst: int) -> float:
        if self.leaf_of(src) == self.leaf_of(dst):
            return self.same_leaf_latency
        if self.group_of(src) == self.group_of(dst):
            return self.intra_group_latency
        return self.inter_group_latency

    def describe(self) -> str:
        return (f"dragonfly+(nodes_per_leaf={self.nodes_per_leaf}, "
                f"leaves_per_group={self.leaves_per_group}, groups=*)")


@dataclass(frozen=True)
class RoutedDragonflyPlus(DragonflyPlus):
    """Dragonfly+ with explicit shared links (the fleet fabric model).

    Same latency structure as :class:`DragonflyPlus`, plus per-pair
    route resolution onto three classes of shared links:

    * ``leaf-up`` — one per leaf switch, carries everything leaving
      that leaf (toward the group spine);
    * ``leaf-down`` — one per leaf switch, carries everything entering
      that leaf;
    * ``global`` — one per *ordered* group pair (global links are full
      duplex), the spine link inter-group traffic serializes through.

    Unlike the unbounded latency-only model, a routed instance has a
    fixed ``groups`` count, so its link set is finite and the fabric
    can build one contention queue per link up front.  Same-leaf pairs
    cross no shared link (only the endpoint NICs).

    ``arbitration`` models the per-chunk cost of a contended switch
    egress port: when a chunk is granted a link it had to *wait* for,
    the hand-off pays a fixed delay (VL arbitration, head-of-line
    store-and-forward of the leading packets, credit return) before
    the wire occupancy starts.  A solo flow never waits — the sender's
    egress already serializes chunks at line rate — so quiet-fabric
    timing is unchanged; under contention the cost scales with the
    number of chunks a transport plan pushes through the hot port,
    which is what makes many-small-messages lose to aggregation on a
    congested fabric.
    """

    groups: int = 2
    arbitration: float = us(8)

    def __post_init__(self):
        super().__post_init__()
        if self.groups < 1:
            raise ConfigError("topology needs at least one group")
        if self.arbitration < 0:
            raise ConfigError("negative arbitration delay")

    @property
    def routed(self) -> bool:  # type: ignore[override]
        return True

    @property
    def n_nodes(self) -> int:
        """Total node capacity of the fabric."""
        return self.groups * self.nodes_per_group

    def check_node(self, node: int) -> None:
        if not (0 <= node < self.n_nodes):
            raise ConfigError(
                f"node {node} outside the {self.n_nodes}-node fabric")

    def link_keys(self) -> list[tuple]:
        """Every shared link of the fabric (stable order)."""
        n_leaves = self.groups * self.leaves_per_group
        keys = [(LINK_LEAF_UP, leaf) for leaf in range(n_leaves)]
        keys += [(LINK_LEAF_DOWN, leaf) for leaf in range(n_leaves)]
        keys += [(LINK_GLOBAL, a, b)
                 for a in range(self.groups)
                 for b in range(self.groups) if a != b]
        return keys

    def route(self, src: int, dst: int) -> tuple:
        self.check_node(src)
        self.check_node(dst)
        if src == dst or self.leaf_of(src) == self.leaf_of(dst):
            return ()
        hops = [(LINK_LEAF_UP, self.leaf_of(src))]
        if self.group_of(src) != self.group_of(dst):
            hops.append(
                (LINK_GLOBAL, self.group_of(src), self.group_of(dst)))
        hops.append((LINK_LEAF_DOWN, self.leaf_of(dst)))
        return tuple(hops)

    def describe(self) -> str:
        return (f"dragonfly+routed(nodes_per_leaf={self.nodes_per_leaf}, "
                f"leaves_per_group={self.leaves_per_group}, "
                f"groups={self.groups})")


#: Niagara-like instance: 2024 nodes in Dragonfly+ groups.
NIAGARA_TOPOLOGY = DragonflyPlus()
