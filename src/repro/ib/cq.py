"""Completion queues."""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.ib.wr import WorkCompletion


class CompletionQueue:
    """A bounded FIFO of work completions (``ibv_cq``).

    Sits outside any PD, as in the verbs model.  Polling is free at the
    CQ itself; the host layer charges CPU time per poll (see
    :class:`repro.config.HostConfig`).
    """

    __slots__ = ("context", "capacity", "handle", "_entries", "on_push",
                 "total_completions", "overflows")

    _next_handle = 1

    def __init__(self, context, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"CQ capacity must be >= 1, got {capacity}")
        self.context = context
        self.capacity = capacity
        self.handle = CompletionQueue._next_handle
        CompletionQueue._next_handle += 1
        self._entries: Deque[WorkCompletion] = deque()
        #: Callbacks invoked on every push — the simulated analogue of a
        #: completion-channel notification; progress engines hook these
        #: to wake instead of spin-polling across long idle stretches.
        self.on_push: list[Callable[[WorkCompletion], None]] = []
        #: Total completions ever pushed (statistic).
        self.total_completions = 0
        #: Completions dropped because the CQ overflowed (a serious
        #: error on real hardware; tracked so tests can assert zero).
        self.overflows = 0

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, wc: WorkCompletion) -> None:
        """NIC-side: deposit a completion."""
        if len(self._entries) >= self.capacity:
            self.overflows += 1
            return
        self._entries.append(wc)
        self.total_completions += 1
        for callback in self.on_push:
            callback(wc)

    def poll(self, max_entries: int = 1) -> list[WorkCompletion]:
        """Host-side: pop up to ``max_entries`` completions (``ibv_poll_cq``)."""
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        entries = self._entries
        if not entries:
            return []
        out = []
        popleft = entries.popleft
        while entries and len(out) < max_entries:
            out.append(popleft())
        return out

    def peek(self) -> Optional[WorkCompletion]:
        """The oldest entry without removing it, or None."""
        return self._entries[0] if self._entries else None

    def __repr__(self) -> str:
        return f"<CQ handle={self.handle} depth={len(self._entries)}/{self.capacity}>"
