"""The wire model: chunked, shared, rate-limited serialization.

Large transmissions are split into ``wire_chunk``-byte chunks.  Each
chunk claims the sender NIC's egress port (a capacity-1 resource) for
its serialization time, and per-QP injection is rate-limited to
``qp_rate`` by spacing chunk starts.  The gaps a single slow QP leaves
on the wire are exactly where chunks of *other* QPs slot in — which is
how multiple QPs recover full line rate for large messages (paper
Fig. 7) without simulating individual packets.

Ingress at the receiver is serialized analytically with a busy-until
clock shifted one propagation latency after egress, so concurrent
senders targeting one node contend realistically (needed for the
Sweep3D runs of Fig. 14).
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.config import NICConfig


def iter_chunks(nbytes: int, chunk_size: int) -> Iterator[int]:
    """Chunk byte counts for a transmission of ``nbytes``.

    Zero-byte messages (pure-immediate writes) yield one zero chunk so
    header-only packets still traverse the wire.
    """
    if nbytes == 0:
        yield 0
        return
    full, rem = divmod(nbytes, chunk_size)
    for _ in range(full):
        yield chunk_size
    if rem:
        yield rem


def chunk_occupancy(nbytes: int, cfg: NICConfig) -> float:
    """Wire occupancy of one chunk: serialization plus packet costs."""
    npackets = max(1, math.ceil(nbytes / cfg.mtu))
    return nbytes / cfg.line_rate + npackets * cfg.t_pkt


def injection_spacing(nbytes: int, cfg: NICConfig) -> float:
    """Minimum spacing between chunk starts on one QP (rate limiting)."""
    npackets = max(1, math.ceil(nbytes / cfg.mtu))
    return nbytes / cfg.qp_rate + npackets * cfg.t_pkt


class IngressPort:
    """Analytic receive-side serializer: a busy-until clock per NIC."""

    def __init__(self):
        self.busy_until = 0.0
        self.bytes_received = 0

    def admit(self, egress_start: float, occupancy: float, latency: float,
              nbytes: int) -> float:
        """Serialize one chunk arriving after ``latency``; returns its
        completion time at the receiver."""
        start = max(egress_start + latency, self.busy_until)
        self.busy_until = start + occupancy
        self.bytes_received += nbytes
        return self.busy_until
