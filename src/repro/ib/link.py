"""The wire model: chunked, shared, rate-limited serialization.

Large transmissions are split into ``wire_chunk``-byte chunks.  Each
chunk claims the sender NIC's egress port (a capacity-1 resource) for
its serialization time, and per-QP injection is rate-limited to
``qp_rate`` by spacing chunk starts.  The gaps a single slow QP leaves
on the wire are exactly where chunks of *other* QPs slot in — which is
how multiple QPs recover full line rate for large messages (paper
Fig. 7) without simulating individual packets.

Ingress at the receiver is serialized analytically with a busy-until
clock shifted one propagation latency after egress, so concurrent
senders targeting one node contend realistically (needed for the
Sweep3D runs of Fig. 14).
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.config import NICConfig


def iter_chunks(nbytes: int, chunk_size: int) -> Iterator[int]:
    """Chunk byte counts for a transmission of ``nbytes``.

    Zero-byte messages (pure-immediate writes) yield one zero chunk so
    header-only packets still traverse the wire.
    """
    if nbytes == 0:
        yield 0
        return
    full, rem = divmod(nbytes, chunk_size)
    for _ in range(full):
        yield chunk_size
    if rem:
        yield rem


def chunk_occupancy(nbytes: int, cfg: NICConfig) -> float:
    """Wire occupancy of one chunk: serialization plus packet costs."""
    npackets = max(1, math.ceil(nbytes / cfg.mtu))
    return nbytes / cfg.line_rate + npackets * cfg.t_pkt


def injection_spacing(nbytes: int, cfg: NICConfig) -> float:
    """Minimum spacing between chunk starts on one QP (rate limiting)."""
    npackets = max(1, math.ceil(nbytes / cfg.mtu))
    return nbytes / cfg.qp_rate + npackets * cfg.t_pkt


class WireTimeTable:
    """Slotted wire timings for one :class:`NICConfig`.

    A transmission of any size decomposes into at most two distinct
    chunk sizes (``wire_chunk`` plus one remainder), so per-chunk
    serialization arithmetic collapses onto a handful of slots computed
    once per config.  Lookups return the *same float* the formulas in
    this module produce — the table is a cache, never an approximation,
    which is what keeps simulated timings bit-identical.

    Obtain instances through :func:`wire_table`; configs are frozen
    dataclasses, so one table per distinct config is shared by every
    NIC built from it.
    """

    __slots__ = ("cfg", "_occupancy", "_spacing", "_chunks")

    def __init__(self, cfg: NICConfig):
        self.cfg = cfg
        self._occupancy: dict[int, float] = {}
        self._spacing: dict[int, float] = {}
        self._chunks: dict[int, tuple[int, ...]] = {}

    def occupancy(self, nbytes: int) -> float:
        """Memoized :func:`chunk_occupancy` for this config."""
        value = self._occupancy.get(nbytes)
        if value is None:
            value = self._occupancy[nbytes] = chunk_occupancy(nbytes, self.cfg)
        return value

    def spacing(self, nbytes: int) -> float:
        """Memoized :func:`injection_spacing` for this config."""
        value = self._spacing.get(nbytes)
        if value is None:
            value = self._spacing[nbytes] = injection_spacing(nbytes, self.cfg)
        return value

    def chunks(self, nbytes: int) -> tuple[int, ...]:
        """Memoized chunk decomposition (see :func:`iter_chunks`)."""
        seq = self._chunks.get(nbytes)
        if seq is None:
            seq = self._chunks[nbytes] = tuple(
                iter_chunks(nbytes, self.cfg.wire_chunk))
        return seq


_WIRE_TABLES: dict[NICConfig, WireTimeTable] = {}


def wire_table(cfg: NICConfig) -> WireTimeTable:
    """The shared :class:`WireTimeTable` for ``cfg`` (one per config)."""
    table = _WIRE_TABLES.get(cfg)
    if table is None:
        table = _WIRE_TABLES[cfg] = WireTimeTable(cfg)
    return table


class LinkQueue:
    """One shared fabric link: a capacity-1 serialization queue.

    Backs the routed-topology link graph
    (:class:`repro.ib.topology.RoutedDragonflyPlus` via
    :class:`repro.ib.fabric.Fabric`): every chunk whose route crosses
    this link claims the :class:`~repro.sim.resources.Resource` for its
    serialization time, so concurrent flows sharing the link genuinely
    queue behind each other.  The queue keeps occupancy statistics for
    the fleet profiler — accumulated busy time, bytes carried, and the
    deepest wait queue observed.
    """

    __slots__ = ("key", "resource", "busy_time", "bytes_carried",
                 "chunks_carried", "max_queue")

    def __init__(self, env, key):
        from repro.sim.resources import Resource

        self.key = key
        self.resource = Resource(env, capacity=1)
        self.busy_time = 0.0
        self.bytes_carried = 0
        self.chunks_carried = 0
        self.max_queue = 0

    def note(self, occupancy: float, nbytes: int) -> None:
        """Account one chunk's traversal (called while holding a slot)."""
        self.busy_time += occupancy
        self.bytes_carried += nbytes
        self.chunks_carried += 1
        depth = self.resource.queue_length
        if depth > self.max_queue:
            self.max_queue = depth

    def utilization(self, makespan: float) -> float:
        """Fraction of ``makespan`` this link spent serializing."""
        if makespan <= 0:
            return 0.0
        return min(1.0, self.busy_time / makespan)

    def stats(self, makespan: float) -> dict:
        """JSON-safe occupancy summary for profiles and reports."""
        return {
            "busy_time": self.busy_time,
            "bytes": self.bytes_carried,
            "chunks": self.chunks_carried,
            "max_queue": self.max_queue,
            "utilization": self.utilization(makespan),
        }

    def __repr__(self) -> str:
        return f"<LinkQueue {self.key} bytes={self.bytes_carried}>"


class IngressPort:
    """Analytic receive-side serializer: a busy-until clock per NIC."""

    __slots__ = ("busy_until", "bytes_received")

    def __init__(self):
        self.busy_until = 0.0
        self.bytes_received = 0

    def admit(self, egress_start: float, occupancy: float, latency: float,
              nbytes: int) -> float:
        """Serialize one chunk arriving after ``latency``; returns its
        completion time at the receiver."""
        start = max(egress_start + latency, self.busy_until)
        self.busy_until = start + occupancy
        self.bytes_received += nbytes
        return self.busy_until
