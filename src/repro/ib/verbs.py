"""Functional ``ibv_*`` facade over the object model.

For readers coming from the C verbs API: these free functions mirror
the calls the paper names, delegating to the simulated objects.  The
MPI module uses the object API directly; this facade exists for
examples and for 1:1 traceability to Section IV-A.
"""

from __future__ import annotations

from typing import Optional

from repro.ib.constants import ACCESS_LOCAL, Opcode
from repro.ib.cq import CompletionQueue
from repro.ib.device import Context
from repro.ib.fabric import Fabric, NodeAddress
from repro.ib.mr import MemoryRegion
from repro.ib.pd import ProtectionDomain
from repro.ib.qp import QueuePair
from repro.ib.wr import RecvWR, SendWR, WorkCompletion
from repro.mem.buffer import Buffer


def ibv_open_device(fabric: Fabric, node_id: int) -> Context:
    """Open the device on ``node_id`` (``ibv_open_device``)."""
    return Context(fabric, node_id)


def ibv_alloc_pd(context: Context) -> ProtectionDomain:
    """``ibv_alloc_pd``."""
    return context.alloc_pd()


def ibv_reg_mr(pd: ProtectionDomain, buffer: Buffer,
               access: int = ACCESS_LOCAL) -> MemoryRegion:
    """``ibv_reg_mr``."""
    return pd.reg_mr(buffer, access)


def ibv_dereg_mr(mr: MemoryRegion) -> None:
    """``ibv_dereg_mr``."""
    mr.deregister()


def ibv_create_cq(context: Context, capacity: int = 4096) -> CompletionQueue:
    """``ibv_create_cq``."""
    return context.create_cq(capacity)


def ibv_create_qp(context: Context, pd: ProtectionDomain,
                  send_cq: CompletionQueue, recv_cq: CompletionQueue,
                  max_send_wr: int = 1024,
                  max_recv_wr: int = 4096,
                  port: int = 0) -> QueuePair:
    """``ibv_create_qp``."""
    return context.create_qp(pd, send_cq, recv_cq, max_send_wr, max_recv_wr,
                             port)


def connect_qps(local: QueuePair, remote: QueuePair) -> None:
    """Out-of-band QP exchange: drive both QPs to RTS.

    Stands in for the paper's asynchronous QP-number exchange plus the
    INIT -> RTR -> RTS modify sequence on both ends.
    """
    local.to_init()
    remote.to_init()
    local.to_rtr(remote.nic.node_id, remote.qp_num)
    remote.to_rtr(local.nic.node_id, local.qp_num)
    local.to_rts()
    remote.to_rts()


def reconnect_qps(local: QueuePair, remote: QueuePair) -> None:
    """Recover a failed connection: both QPs walk back to RTS.

    Mirrors what a real transport-recovery layer does after a fatal
    completion: ``ibv_modify_qp`` each end through
    RESET -> INIT -> RTR -> RTS, preserving QP numbers so registered
    memory and the peer addressing stay valid.  Queues are empty by
    this point (the ERROR transition flushed them); the caller re-posts
    receives and replays unacknowledged sends.
    """
    from repro.ib.constants import QPState

    for qp in (local, remote):
        if qp.state is not QPState.RESET:
            qp.modify(QPState.RESET)
    connect_qps(local, remote)
    if local.nic is not None:
        local.nic.fabric.counters.inc("ib.reconnects")


def ibv_post_send(qp: QueuePair, wr: SendWR) -> None:
    """``ibv_post_send``."""
    qp.post_send(wr)


def ibv_post_recv(qp: QueuePair, wr: RecvWR) -> None:
    """``ibv_post_recv``."""
    qp.post_recv(wr)


def ibv_poll_cq(cq: CompletionQueue, max_entries: int = 1) -> list[WorkCompletion]:
    """``ibv_poll_cq``."""
    return cq.poll(max_entries)
