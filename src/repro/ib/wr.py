"""Work requests, scatter/gather elements, and work completions.

These are the highest-churn records in the simulator — one
:class:`SendWR`/:class:`RecvWR` pair plus one or two
:class:`WorkCompletion` per message — so they are hand-rolled
``__slots__`` classes rather than dataclasses: no ``__dict__`` per
instance, no generated ``__init__`` indirection, just attribute stores.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ib.constants import Opcode, WCOpcode, WCStatus


class SGE:
    """A scatter/gather element: one contiguous local range.

    Attributes
    ----------
    addr:
        Start virtual address inside a registered MR.
    length:
        Bytes.
    lkey:
        Local key of the MR covering the range.
    """

    __slots__ = ("addr", "length", "lkey")

    def __init__(self, addr: int, length: int, lkey: int):
        if length < 0:
            raise ValueError(f"SGE length must be >= 0, got {length}")
        self.addr = addr
        self.length = length
        self.lkey = lkey

    def __repr__(self) -> str:
        return f"SGE(addr={self.addr}, length={self.length}, lkey={self.lkey})"


class SendWR:
    """A send-queue work request (``ibv_send_wr``).

    For RDMA write opcodes, ``remote_addr``/``rkey`` name the target
    range; ``imm_data`` rides along for ``*_WITH_IMM`` opcodes and is
    delivered in the remote completion.
    """

    __slots__ = ("wr_id", "opcode", "sg_list", "remote_addr", "rkey",
                 "imm_data", "signaled")

    def __init__(self, wr_id: int, opcode: Opcode, sg_list: Sequence[SGE],
                 remote_addr: int = 0, rkey: int = 0,
                 imm_data: Optional[int] = None, signaled: bool = True):
        if opcode.has_immediate:
            if imm_data is None:
                raise ValueError(f"{opcode} requires imm_data")
            if not (0 <= imm_data < 2**32):
                raise ValueError(
                    f"imm_data must fit __be32, got {imm_data:#x}"
                )
        if not sg_list:
            raise ValueError("sg_list must contain at least one SGE")
        self.wr_id = wr_id
        self.opcode = opcode
        self.sg_list = sg_list
        self.remote_addr = remote_addr
        self.rkey = rkey
        self.imm_data = imm_data
        #: Request a completion on the sender CQ when done.
        self.signaled = signaled

    @property
    def total_length(self) -> int:
        """Total bytes named by the gather list."""
        return sum(sge.length for sge in self.sg_list)

    def __repr__(self) -> str:
        return (f"SendWR(wr_id={self.wr_id}, opcode={self.opcode}, "
                f"nbytes={self.total_length})")


class RecvWR:
    """A receive-queue work request (``ibv_recv_wr``).

    For RDMA-write-with-immediate traffic the receive buffer is not
    used for payload (data lands at the sender-specified remote
    address); the entry exists to absorb the immediate and produce the
    receive completion, so an empty ``sg_list`` is legal — exactly how
    the paper's module posts its receives in ``MPI_Start``.
    """

    __slots__ = ("wr_id", "sg_list")

    def __init__(self, wr_id: int, sg_list: Sequence[SGE] = ()):
        self.wr_id = wr_id
        self.sg_list = sg_list

    def __repr__(self) -> str:
        return f"RecvWR(wr_id={self.wr_id}, sges={len(self.sg_list)})"


class WorkCompletion:
    """A completion queue entry (``ibv_wc``)."""

    __slots__ = ("wr_id", "status", "opcode", "qp_num", "byte_len",
                 "imm_data", "completed_at")

    def __init__(self, wr_id: int, status: WCStatus, opcode: WCOpcode,
                 qp_num: int, byte_len: int = 0,
                 imm_data: Optional[int] = None, completed_at: float = 0.0):
        self.wr_id = wr_id
        self.status = status
        self.opcode = opcode
        self.qp_num = qp_num
        self.byte_len = byte_len
        self.imm_data = imm_data
        #: Virtual time the completion was placed on the CQ.
        self.completed_at = completed_at

    @property
    def ok(self) -> bool:
        return self.status is WCStatus.SUCCESS

    def require_success(self) -> "WorkCompletion":
        """Return self, raising CompletionError on failure status."""
        if not self.ok:
            from repro.errors import CompletionError

            raise CompletionError(
                f"work completion failed: wr_id={self.wr_id} status={self.status}"
            )
        return self

    def __repr__(self) -> str:
        return (f"WorkCompletion(wr_id={self.wr_id}, "
                f"status={self.status}, opcode={self.opcode}, "
                f"qp_num={self.qp_num}, byte_len={self.byte_len})")
