"""Work requests, scatter/gather elements, and work completions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ProtectionError
from repro.ib.constants import Opcode, WCOpcode, WCStatus


@dataclass(frozen=True)
class SGE:
    """A scatter/gather element: one contiguous local range.

    Attributes
    ----------
    addr:
        Start virtual address inside a registered MR.
    length:
        Bytes.
    lkey:
        Local key of the MR covering the range.
    """

    addr: int
    length: int
    lkey: int

    def __post_init__(self):
        if self.length < 0:
            raise ValueError(f"SGE length must be >= 0, got {self.length}")


@dataclass
class SendWR:
    """A send-queue work request (``ibv_send_wr``).

    For RDMA write opcodes, ``remote_addr``/``rkey`` name the target
    range; ``imm_data`` rides along for ``*_WITH_IMM`` opcodes and is
    delivered in the remote completion.
    """

    wr_id: int
    opcode: Opcode
    sg_list: Sequence[SGE]
    remote_addr: int = 0
    rkey: int = 0
    imm_data: Optional[int] = None
    #: Request a completion on the sender CQ when done.
    signaled: bool = True

    def __post_init__(self):
        if self.opcode.has_immediate:
            if self.imm_data is None:
                raise ValueError(f"{self.opcode} requires imm_data")
            if not (0 <= self.imm_data < 2**32):
                raise ValueError(
                    f"imm_data must fit __be32, got {self.imm_data:#x}"
                )
        if not self.sg_list:
            raise ValueError("sg_list must contain at least one SGE")

    @property
    def total_length(self) -> int:
        """Total bytes named by the gather list."""
        return sum(sge.length for sge in self.sg_list)


@dataclass
class RecvWR:
    """A receive-queue work request (``ibv_recv_wr``).

    For RDMA-write-with-immediate traffic the receive buffer is not
    used for payload (data lands at the sender-specified remote
    address); the entry exists to absorb the immediate and produce the
    receive completion, so an empty ``sg_list`` is legal — exactly how
    the paper's module posts its receives in ``MPI_Start``.
    """

    wr_id: int
    sg_list: Sequence[SGE] = field(default_factory=tuple)


@dataclass(frozen=True)
class WorkCompletion:
    """A completion queue entry (``ibv_wc``)."""

    wr_id: int
    status: WCStatus
    opcode: WCOpcode
    qp_num: int
    byte_len: int = 0
    imm_data: Optional[int] = None
    #: Virtual time the completion was placed on the CQ.
    completed_at: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status is WCStatus.SUCCESS

    def require_success(self) -> "WorkCompletion":
        """Return self, raising CompletionError on failure status."""
        if not self.ok:
            from repro.errors import CompletionError

            raise CompletionError(
                f"work completion failed: wr_id={self.wr_id} status={self.status}"
            )
        return self
