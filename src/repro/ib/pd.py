"""Protection domains: the resource container of the verbs model."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ProtectionError
from repro.ib.constants import ACCESS_LOCAL
from repro.ib.mr import MemoryRegion
from repro.mem.buffer import Buffer

if TYPE_CHECKING:
    from repro.ib.device import Context


class ProtectionDomain:
    """Encapsulates MRs and QPs to prevent arbitrary cross access.

    MRs registered in one PD cannot be used by QPs of another — the
    check the real hardware enforces and tests exercise.
    """

    _next_handle = 1

    def __init__(self, context: "Context"):
        self.context = context
        self.handle = ProtectionDomain._next_handle
        ProtectionDomain._next_handle += 1
        self.mrs: list[MemoryRegion] = []
        self.qps: list = []

    def reg_mr(self, buffer: Buffer, access: int = ACCESS_LOCAL) -> MemoryRegion:
        """Register ``buffer``, returning the MR (``ibv_reg_mr``)."""
        mr = MemoryRegion(self, buffer, access)
        self.mrs.append(mr)
        return mr

    def find_mr_by_lkey(self, lkey: int) -> MemoryRegion:
        for mr in self.mrs:
            if mr.lkey == lkey and mr.valid:
                return mr
        raise ProtectionError(f"no valid MR with lkey {lkey:#x} in PD {self.handle}")

    def find_mr_by_rkey(self, rkey: int) -> MemoryRegion:
        for mr in self.mrs:
            if mr.rkey == rkey and mr.valid:
                return mr
        raise ProtectionError(f"no valid MR with rkey {rkey:#x} in PD {self.handle}")

    def __repr__(self) -> str:
        return f"<PD handle={self.handle} mrs={len(self.mrs)} qps={len(self.qps)}>"
