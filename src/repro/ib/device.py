"""Device contexts: the user-space handle to one node's HCA."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ib.cq import CompletionQueue
from repro.ib.pd import ProtectionDomain
from repro.ib.qp import QueuePair

if TYPE_CHECKING:
    from repro.ib.fabric import Fabric
    from repro.ib.nic import NIC


class Context:
    """Per-process user-space device context (``ibv_context``).

    Created lazily by ``MPI_Psend_init`` / ``MPI_Precv_init`` if one
    does not exist, exactly as the paper describes (Section IV-A).
    """

    def __init__(self, fabric: "Fabric", node_id: int):
        self.fabric = fabric
        self.node_id = node_id
        self.nic: "NIC" = fabric.nic_at(node_id)
        self.pds: list[ProtectionDomain] = []
        self.cqs: list[CompletionQueue] = []

    def alloc_pd(self) -> ProtectionDomain:
        """``ibv_alloc_pd``."""
        pd = ProtectionDomain(self)
        self.pds.append(pd)
        return pd

    def create_cq(self, capacity: int = 4096) -> CompletionQueue:
        """``ibv_create_cq``."""
        cq = CompletionQueue(self, capacity)
        self.cqs.append(cq)
        return cq

    def create_qp(
        self,
        pd: ProtectionDomain,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        max_send_wr: int = 1024,
        max_recv_wr: int = 4096,
        port: int = 0,
    ) -> QueuePair:
        """``ibv_create_qp``: a fresh RC QP registered with the NIC."""
        qp = QueuePair(
            pd,
            send_cq,
            recv_cq,
            qp_num=self.nic.next_qp_num(),
            max_send_wr=max_send_wr,
            max_recv_wr=max_recv_wr,
            port=port,
        )
        self.nic.register_qp(qp)
        return qp

    def __repr__(self) -> str:
        return f"<Context node={self.node_id}>"
