"""Simulated InfiniBand verbs substrate.

Object model mirroring user-space verbs: a :class:`~repro.ib.device.Context`
per HCA, :class:`~repro.ib.pd.ProtectionDomain`\\ s encapsulating
:class:`~repro.ib.mr.MemoryRegion`\\ s and :class:`~repro.ib.qp.QueuePair`\\ s,
:class:`~repro.ib.cq.CompletionQueue`\\ s outside the PD, and work
requests posted with :func:`~repro.ib.verbs.ibv_post_send` producing
work completions polled with :func:`~repro.ib.verbs.ibv_poll_cq` —
exactly the surface the paper maps MPI Partitioned onto (Section II-B,
IV-A).

Timing comes from the NIC/wire model in :mod:`repro.ib.nic` and
:mod:`repro.ib.link`; see :mod:`repro.config` for the calibration.
"""

from repro.ib.constants import Opcode, QPState, WCStatus, WCOpcode, ACCESS_LOCAL, ACCESS_REMOTE_WRITE
from repro.ib.device import Context
from repro.ib.pd import ProtectionDomain
from repro.ib.mr import MemoryRegion
from repro.ib.cq import CompletionQueue
from repro.ib.qp import QueuePair
from repro.ib.wr import SGE, SendWR, RecvWR, WorkCompletion
from repro.ib.fabric import Fabric, NodeAddress
from repro.ib import verbs

__all__ = [
    "Opcode",
    "QPState",
    "WCStatus",
    "WCOpcode",
    "ACCESS_LOCAL",
    "ACCESS_REMOTE_WRITE",
    "Context",
    "ProtectionDomain",
    "MemoryRegion",
    "CompletionQueue",
    "QueuePair",
    "SGE",
    "SendWR",
    "RecvWR",
    "WorkCompletion",
    "Fabric",
    "NodeAddress",
    "verbs",
]
