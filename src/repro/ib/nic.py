"""The NIC engine: WQE processing, transmission, delivery, completion.

One :class:`NIC` per simulated node.  Each registered QP gets a sender
process that drains the QP's send queue in order (per-QP ordering is an
InfiniBand RC guarantee the MPI mapping relies on).  Transmission
timing follows :mod:`repro.ib.link`; delivery performs the actual
remote-memory write and produces work completions on both sides.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.config import ClusterConfig
from repro.errors import ProtectionError
from repro.ib.constants import Opcode, QPState, WCOpcode, WCStatus
from repro.ib.link import (
    IngressPort,
    chunk_occupancy,
    injection_spacing,
    iter_chunks,
    wire_table,
)
from repro.ib.qp import QueuePair
from repro.ib.wr import SendWR, WorkCompletion
from repro.sim.core import Environment
from repro.sim.monitor import Trace
from repro.sim.resources import Resource, Store

if TYPE_CHECKING:
    from repro.ib.fabric import Fabric


class NIC:
    """A simulated HCA attached to one node."""

    def __init__(self, env: Environment, fabric: "Fabric", node_id: int,
                 config: ClusterConfig, trace: Optional[Trace] = None):
        self.env = env
        self.fabric = fabric
        self.node_id = node_id
        self.config = config
        self.trace = trace if trace is not None else Trace(enabled=False)
        #: Per-port wires.  Each physical port is an independent link:
        #: a capacity-1 egress serializer shared by the QPs bound to it,
        #: and an ingress pipe of its own.  ``egress``/``ingress`` alias
        #: port 0 so single-port code (and its event ordering) is
        #: untouched.
        n_ports = config.nic.n_ports
        #: Slotted per-config wire timings (shared across same-config NICs).
        self.wires = wire_table(config.nic)
        self.ports = [Resource(env, capacity=1) for _ in range(n_ports)]
        self.ingress_ports = [IngressPort() for _ in range(n_ports)]
        self.egress = self.ports[0]
        self.ingress = self.ingress_ports[0]
        self._qp_numbers = itertools.count(node_id * 1_000_000 + 1)
        self.qps: dict[int, QueuePair] = {}
        # statistics
        self.wqes_processed = 0
        self.bytes_transmitted = 0
        self.messages_delivered = 0

    # -- QP lifecycle -----------------------------------------------------

    def register_qp(self, qp: QueuePair) -> None:
        """Attach a QP to this NIC and start its engine pipeline.

        Each QP gets a two-stage pipeline: WQE fetch/parse (``t_wqe``
        per entry) feeding an in-order transmit stage, so WQE processing
        overlaps the previous message's wire time — as the hardware
        pipelines them.
        """
        if len(self.qps) >= self.config.nic.max_qps:
            raise ProtectionError("QP limit exceeded on NIC")
        qp.nic = self
        qp.sq = Store(self.env)
        qp._txq = Store(self.env)
        self.qps[qp.qp_num] = qp
        self.env.process(self._qp_fetcher(qp))
        self.env.process(self._qp_transmitter(qp))

    def next_qp_num(self) -> int:
        return next(self._qp_numbers)

    # -- port selection -----------------------------------------------------

    def egress_for(self, qp: QueuePair) -> Resource:
        """The egress serializer of the port ``qp`` is bound to."""
        return self.ports[qp.port % len(self.ports)]

    def ingress_for(self, qp: QueuePair) -> IngressPort:
        """The ingress pipe ``qp``'s traffic lands on at this NIC.

        Keyed by the *sending* QP's port: both ends of a connection
        bind the same port index, so this is the receiving port too
        (modulo the local port count, for asymmetric NICs).
        """
        return self.ingress_ports[qp.port % len(self.ingress_ports)]

    # -- send path ----------------------------------------------------------

    def _qp_fetcher(self, qp: QueuePair):
        """Stage 1: fetch/parse WQEs (pipelines with transmission)."""
        cfg = self.config.nic
        while True:
            wr: SendWR = yield qp.sq.get()
            qp.sq_depth -= 1
            if qp.state is QPState.ERROR:
                self._flush_wr(qp, wr)
                continue
            # WQE fetch + DMA programming.
            yield cfg.t_wqe
            self.wqes_processed += 1
            # Reads source their data at the responder; the local list
            # is a scatter sink, so there is nothing to gather here.
            payload = (None if wr.opcode is Opcode.RDMA_READ
                       else self._gather(qp, wr))
            self.trace.record(self.env.now, "ib.wqe_start", self.node_id,
                              qp=qp.qp_num, wr_id=wr.wr_id,
                              nbytes=wr.total_length)
            yield qp._txq.put((wr, payload))

    def _qp_transmitter(self, qp: QueuePair):
        """Stage 2: in-order transmission of one QP's messages.

        With no fault schedule installed on the fabric the fault-aware
        paths are never entered and the virtual-time behaviour is
        bit-identical to the fault-free simulator.
        """
        while True:
            wr, payload = yield qp._txq.get()
            if qp.state is QPState.ERROR:
                self._flush_wr(qp, wr)
                continue
            nbytes = wr.total_length
            remote = self.fabric.nic_at(qp.dest_node)
            if self.fabric.faults is not None:
                yield from self._transmit_faulty(qp, wr, payload, nbytes,
                                                 remote)
            elif wr.opcode is Opcode.RDMA_READ:
                yield from self._execute_read(qp, wr, nbytes, remote)
            elif remote is self:
                yield from self._transmit_loopback(qp, wr, payload, nbytes, remote)
            elif self.fabric.links is not None:
                yield from self._transmit_routed(qp, wr, payload, nbytes,
                                                 remote)
            else:
                yield from self._transmit_wire(qp, wr, payload, nbytes, remote)

    def _transmit_wire(self, qp: QueuePair, wr: SendWR, payload, nbytes: int,
                       remote: "NIC"):
        env = self.env
        wires = self.wires
        trace = self.trace
        latency = self.fabric.latency(self.node_id, remote.node_id)
        egress = self.egress_for(qp)
        ingress = remote.ingress_for(qp)
        arrival = env.now
        for chunk in wires.chunks(nbytes):
            # Per-QP injection rate limit: spaces chunk starts so a lone
            # QP tops out at qp_rate; gaps are usable by other QPs.
            if env._now < qp.next_inject_time:
                yield qp.next_inject_time - env._now
            grant = egress.request()
            yield grant
            start = env._now
            occupancy = wires.occupancy(chunk)
            yield occupancy
            egress.release(grant)
            qp.next_inject_time = start + wires.spacing(chunk)
            self.bytes_transmitted += chunk
            if trace.enabled:
                trace.record(start, "ib.chunk", self.node_id,
                             qp=qp.qp_num, nbytes=chunk,
                             occupancy=occupancy)
            arrival = ingress.admit(start, occupancy, latency, chunk)
        self._schedule_delivery(qp, wr, payload, nbytes, remote,
                                arrival, ack_latency=latency)

    def _transmit_routed(self, qp: QueuePair, wr: SendWR, payload,
                         nbytes: int, remote: "NIC"):
        """Wire transmission across a routed topology's shared links.

        After the usual NIC egress serialization each chunk claims every
        link on its route (leaf-up, optional global, leaf-down) for one
        occupancy, so concurrent flows crossing the same link genuinely
        queue behind each other.  The hop claims run in a spawned
        per-chunk forwarding process so chunks pipeline across hops
        (cut-through, not store-and-forward): an uncongested flow still
        sustains its injection rate regardless of hop count.  Per-link
        FIFO grants keep chunks in order — chunk *k* requests every hop
        before chunk *k+1* does (egress serializes the requests), so
        forwarding completes in chunk order and the last chunk's
        arrival schedules delivery.  The full propagation latency is
        applied once, at ingress, as on the quiet path — the per-hop
        claims model bandwidth sharing, not extra distance.  Entered
        only when the fabric topology is routed; latency-only fabrics
        never reach this path.
        """
        env = self.env
        wires = self.wires
        trace = self.trace
        route = self.fabric.route_links(self.node_id, remote.node_id)
        if not route:
            # Same-leaf pair: no shared fabric link beyond the endpoint
            # NICs; identical timing to the quiet wire path.
            yield from self._transmit_wire(qp, wr, payload, nbytes, remote)
            return
        latency = self.fabric.latency(self.node_id, remote.node_id)
        egress = self.egress_for(qp)
        ingress = remote.ingress_for(qp)
        chunks = wires.chunks(nbytes)
        state = {"pending": len(chunks)}
        for chunk in chunks:
            if env._now < qp.next_inject_time:
                yield qp.next_inject_time - env._now
            grant = egress.request()
            yield grant
            start = env._now
            occupancy = wires.occupancy(chunk)
            yield occupancy
            egress.release(grant)
            qp.next_inject_time = start + wires.spacing(chunk)
            self.bytes_transmitted += chunk
            if trace.enabled:
                trace.record(start, "ib.chunk", self.node_id,
                             qp=qp.qp_num, nbytes=chunk,
                             occupancy=occupancy)
            env.process(self._forward_chunk(
                qp, wr, payload, nbytes, remote, route, occupancy, chunk,
                latency, ingress, state))

    def _forward_chunk(self, qp: QueuePair, wr: SendWR, payload, nbytes: int,
                       remote: "NIC", route, occupancy: float, chunk: int,
                       latency: float, ingress: IngressPort, state: dict):
        """One chunk's hop-by-hop traversal of its route's shared links.

        A chunk granted a link it had to wait for additionally pays the
        topology's per-chunk ``arbitration`` delay before its occupancy
        (contended-port hand-off; see
        :class:`repro.ib.topology.RoutedDragonflyPlus`).  Solo flows
        never wait — the sender egress already spaces chunks at line
        rate — so the quiet routed path never pays it.
        """
        env = self.env
        arbitration = self.fabric.link_arbitration
        for link in route:
            requested = env._now
            grant = link.resource.request()
            yield grant
            if arbitration and env._now > requested:
                yield arbitration
            yield occupancy
            link.resource.release(grant)
            link.note(occupancy, chunk)
        arrival = ingress.admit(env._now - occupancy, occupancy, latency,
                                chunk)
        state["pending"] -= 1
        if state["pending"] == 0:
            self._schedule_delivery(qp, wr, payload, nbytes, remote,
                                    arrival, ack_latency=latency)

    def _transmit_loopback(self, qp: QueuePair, wr: SendWR, payload,
                           nbytes: int, remote: "NIC"):
        host = self.config.host
        link = self.config.link
        copy_time = nbytes / host.memcpy_rate
        yield copy_time
        arrival = self.env.now + link.loopback_latency
        self.bytes_transmitted += nbytes
        self._schedule_delivery(qp, wr, payload, nbytes, remote, arrival,
                                ack_latency=link.loopback_latency)

    # -- fault-aware send path (entered only with a schedule installed) ----

    def _transmit_faulty(self, qp: QueuePair, wr: SendWR, payload,
                         nbytes: int, remote: "NIC"):
        """Fault-aware WQE transmission: stall gate plus retry machinery."""
        faults = self.fabric.faults
        until = faults.stall_until(self.node_id, self.env.now)
        if until > self.env.now:
            self.fabric.counters.inc("fault.nic_stalls")
            self.trace.record(self.env.now, "fault.nic_stall", self.node_id,
                              qp=qp.qp_num, until=until)
            yield until - self.env.now
        if qp.state is QPState.ERROR:
            self._flush_wr(qp, wr)
        elif wr.opcode is Opcode.RDMA_READ:
            yield from self._execute_read_faulty(qp, wr, nbytes, remote)
        elif remote is self:
            # Loopback never touches the wire; only stalls apply.
            yield from self._transmit_loopback(qp, wr, payload, nbytes,
                                               remote)
        else:
            yield from self._transmit_wire_faulty(qp, wr, payload, nbytes,
                                                  remote)

    def _transmit_wire_faulty(self, qp: QueuePair, wr: SendWR, payload,
                              nbytes: int, remote: "NIC"):
        """Wire transmission with loss, NAKs, and RC retransmission.

        Go-back-N is approximated at message granularity: a lost or
        corrupted chunk stops the attempt, the transmitter stalls for
        the QP's ACK timeout (``4.096us * 2**timeout``), and the whole
        message retransmits — preserving the RC in-order guarantee the
        MPI mapping relies on.  ``retry_cnt`` exhaustion completes the
        WR with ``RETRY_EXC_ERR`` and kills the QP; RNR NAKs back off
        for the responder's RNR timer and burn ``rnr_retry`` (7 =
        retry forever, per the IB spec).
        """
        from repro.faults.schedule import CHUNK_OK

        cfg = self.config.nic
        env = self.env
        faults = self.fabric.faults
        counters = self.fabric.counters
        retry_budget = qp.effective_retry_cnt
        rnr_budget = qp.effective_rnr_retry
        egress = self.egress_for(qp)
        ingress = remote.ingress_for(qp)
        first_attempt = True
        while True:
            if qp.state is QPState.ERROR:
                self._flush_wr(qp, wr)
                return
            if not first_attempt:
                counters.inc("ib.retransmits")
                self.trace.record(env.now, "fault.retransmit", self.node_id,
                                  qp=qp.qp_num, wr_id=wr.wr_id)
            first_attempt = False
            latency = self.fabric.latency(self.node_id, remote.node_id)
            arrival = env.now
            lost = False
            wires = self.wires
            for chunk in wires.chunks(nbytes):
                if env.now < qp.next_inject_time:
                    yield qp.next_inject_time - env.now
                grant = egress.request()
                yield grant
                start = env.now
                occupancy = wires.occupancy(chunk)
                yield occupancy
                egress.release(grant)
                qp.next_inject_time = start + wires.spacing(chunk)
                self.bytes_transmitted += chunk
                self.trace.record(start, "ib.chunk", self.node_id,
                                  qp=qp.qp_num, nbytes=chunk,
                                  occupancy=occupancy)
                if faults.chunk_outcome(self.node_id, remote.node_id,
                                        start) is not CHUNK_OK:
                    # The responder drops everything after the missing
                    # PSN; stop wasting wire time on the rest.
                    lost = True
                    break
                extra = faults.latency_extra(self.node_id, remote.node_id,
                                             start)
                arrival = ingress.admit(start, occupancy,
                                        latency + extra, chunk)
            if not lost and wr.opcode.consumes_recv_wr:
                dest_qp = remote.qps.get(qp.dest_qp_num)
                if (dest_qp is None
                        or dest_qp.state not in (QPState.RTR, QPState.RTS)):
                    # Dead responder: no ACK ever comes; timeout path.
                    lost = True
                elif (faults.rnr_forced(remote.node_id, dest_qp.qp_num,
                                        env.now)
                      or not dest_qp.rq):
                    # Receiver not ready: the responder NAKs, the
                    # requester backs off for the advertised RNR timer
                    # and retransmits the message.
                    counters.inc("ib.rnr_naks")
                    self.trace.record(env.now, "fault.rnr_nak", self.node_id,
                                      qp=qp.qp_num, wr_id=wr.wr_id)
                    if rnr_budget != 7:  # 7 = infinite, per IB spec
                        if rnr_budget == 0:
                            self._complete_error(
                                qp, wr, WCStatus.RNR_RETRY_EXC_ERR)
                            return
                        rnr_budget -= 1
                    nak_back = max(0.0, arrival + latency - env.now)
                    yield nak_back + cfg.rnr_timer
                    continue
            if lost:
                if retry_budget == 0:
                    self._complete_error(qp, wr, WCStatus.RETRY_EXC_ERR)
                    return
                retry_budget -= 1
                yield qp.ack_timeout
                continue
            self._schedule_delivery(qp, wr, payload, nbytes, remote,
                                    arrival, ack_latency=latency)
            return

    def _execute_read_faulty(self, qp: QueuePair, wr: SendWR, nbytes: int,
                             remote: "NIC"):
        """RDMA READ with loss on the response stream and RC retries."""
        from repro.faults.schedule import CHUNK_OK

        cfg = self.config.nic
        env = self.env
        faults = self.fabric.faults
        counters = self.fabric.counters
        retry_budget = qp.effective_retry_cnt
        first_attempt = True
        while True:
            if qp.state is QPState.ERROR:
                self._flush_wr(qp, wr)
                return
            if not first_attempt:
                counters.inc("ib.retransmits")
                self.trace.record(env.now, "fault.retransmit", self.node_id,
                                  qp=qp.qp_num, wr_id=wr.wr_id)
            first_attempt = False
            if remote is self:
                yield from self._execute_read(qp, wr, nbytes, remote)
                return
            latency = self.fabric.latency(self.node_id, remote.node_id)
            lost = False
            # Request packet out through our egress.
            egress = self.egress_for(qp)
            grant = egress.request()
            yield grant
            yield cfg.t_pkt
            egress.release(grant)
            if faults.chunk_outcome(self.node_id, remote.node_id,
                                    env.now) is not CHUNK_OK:
                lost = True
            else:
                extra = faults.latency_extra(self.node_id, remote.node_id,
                                             env.now)
                yield latency + extra + cfg.t_wqe
                responder_qp = remote.qps.get(qp.dest_qp_num)
                if (responder_qp is None or responder_qp.state
                        not in (QPState.RTR, QPState.RTS)):
                    lost = True
                else:
                    arrival = env.now
                    resp_egress = remote.egress_for(responder_qp)
                    ingress = self.ingress_for(qp)
                    wires = self.wires
                    for chunk in wires.chunks(nbytes):
                        if env.now < responder_qp.next_inject_time:
                            yield responder_qp.next_inject_time - env.now
                        grant = resp_egress.request()
                        yield grant
                        start = env.now
                        occupancy = wires.occupancy(chunk)
                        yield occupancy
                        resp_egress.release(grant)
                        responder_qp.next_inject_time = (
                            start + wires.spacing(chunk))
                        remote.bytes_transmitted += chunk
                        if faults.chunk_outcome(remote.node_id, self.node_id,
                                                start) is not CHUNK_OK:
                            lost = True
                            break
                        extra = faults.latency_extra(
                            remote.node_id, self.node_id, start)
                        arrival = ingress.admit(start, occupancy,
                                                latency + extra, chunk)
                    if not lost and arrival > env.now:
                        yield arrival - env.now
            if lost:
                if retry_budget == 0:
                    self._complete_error(qp, wr, WCStatus.RETRY_EXC_ERR)
                    return
                retry_budget -= 1
                yield qp.ack_timeout
                continue
            # Response complete: source the bytes and scatter locally,
            # exactly as the fault-free read does.
            payload = None
            if nbytes > 0:
                responder_qp = remote.qps.get(qp.dest_qp_num)
                mr = responder_qp.pd.find_mr_by_rkey(wr.rkey)
                mr.check_remote_read(wr.remote_addr, nbytes, wr.rkey)
                payload = mr.buffer.read(
                    mr.local_offset(wr.remote_addr), nbytes)
            cursor = 0
            for sge in wr.sg_list:
                if sge.length == 0:
                    continue
                sink = qp.pd.find_mr_by_lkey(sge.lkey)
                piece = (payload[cursor : cursor + sge.length]
                         if payload is not None else None)
                sink.buffer.write(sink.local_offset(sge.addr), piece)
                cursor += sge.length
            qp.release_rdma_slot()
            if wr.signaled:
                yield cfg.t_cqe
                qp.send_cq.push(WorkCompletion(
                    wr_id=wr.wr_id,
                    status=WCStatus.SUCCESS,
                    opcode=WCOpcode.RDMA_READ,
                    qp_num=qp.qp_num,
                    byte_len=nbytes,
                    completed_at=env.now,
                ))
            return

    def _complete_error(self, qp: QueuePair, wr: SendWR,
                        status: WCStatus) -> None:
        """Terminal transport failure: error CQE, then kill the QP.

        Error completions are always generated, signaled or not (as on
        hardware), and :meth:`QueuePair.to_error` then flushes both
        queues and wakes every parked slot waiter.
        """
        self.fabric.counters.inc("ib.retry_exhausted")
        self.trace.record(self.env.now, "ib.qp_error", self.node_id,
                          qp=qp.qp_num, wr_id=wr.wr_id,
                          status=status.value)
        qp.send_cq.push(WorkCompletion(
            wr_id=wr.wr_id,
            status=status,
            opcode=wr.opcode.wc_opcode,
            qp_num=qp.qp_num,
            completed_at=self.env.now,
        ))
        if qp.state is not QPState.ERROR:
            qp.to_error()

    def _flush_wr(self, qp: QueuePair, wr: SendWR) -> None:
        """Complete a send WR with WR_FLUSH_ERR on a killed QP."""
        if wr.opcode.is_rdma:
            qp.release_rdma_slot()
        if wr.signaled:
            qp.send_cq.push(WorkCompletion(
                wr_id=wr.wr_id,
                status=WCStatus.WR_FLUSH_ERR,
                opcode=WCOpcode.RDMA_WRITE if wr.opcode.is_rdma
                else WCOpcode.SEND,
                qp_num=qp.qp_num,
                completed_at=self.env.now,
            ))

    def _execute_read(self, qp: QueuePair, wr: SendWR, nbytes: int,
                      remote: "NIC"):
        """RDMA READ: request travels out, data streams back.

        The responder's NIC sources the bytes with no responder CPU;
        response data is paced by the *responder-side* QP (the connected
        peer), shares the responder's egress wire, and serializes into
        this NIC's ingress.  Reads keep same-QP ordering: the
        transmitter stays on this WQE until the response completes, as
        RC read semantics require for following operations.
        """
        cfg = self.config.nic
        env = self.env
        if remote is self:
            # Loopback read: a host-memory copy.
            yield (nbytes / self.config.host.memcpy_rate
                   + self.config.link.loopback_latency)
            arrival = env.now
        else:
            latency = self.fabric.latency(self.node_id, remote.node_id)
            # Request packet out through our egress.
            egress = self.egress_for(qp)
            grant = egress.request()
            yield grant
            yield cfg.t_pkt
            egress.release(grant)
            # Flight plus responder WQE handling.
            yield latency + cfg.t_wqe
            responder_qp = remote.qps.get(qp.dest_qp_num)
            if responder_qp is None:
                raise ProtectionError(
                    f"no QP {qp.dest_qp_num} on node {remote.node_id}")
            arrival = env.now
            resp_egress = remote.egress_for(responder_qp)
            ingress = self.ingress_for(qp)
            wires = self.wires
            for chunk in wires.chunks(nbytes):
                if env._now < responder_qp.next_inject_time:
                    yield responder_qp.next_inject_time - env._now
                grant = resp_egress.request()
                yield grant
                start = env._now
                occupancy = wires.occupancy(chunk)
                yield occupancy
                resp_egress.release(grant)
                responder_qp.next_inject_time = (
                    start + wires.spacing(chunk))
                remote.bytes_transmitted += chunk
                arrival = ingress.admit(start, occupancy, latency, chunk)
            if arrival > env._now:
                yield arrival - env._now
        # Source the bytes from the responder's memory and scatter them
        # into the local sink list.
        payload = None
        if nbytes > 0:
            responder_qp = remote.qps.get(qp.dest_qp_num)
            mr = responder_qp.pd.find_mr_by_rkey(wr.rkey)
            mr.check_remote_read(wr.remote_addr, nbytes, wr.rkey)
            payload = mr.buffer.read(mr.local_offset(wr.remote_addr), nbytes)
        cursor = 0
        for sge in wr.sg_list:
            if sge.length == 0:
                continue
            sink = qp.pd.find_mr_by_lkey(sge.lkey)
            piece = (payload[cursor : cursor + sge.length]
                     if payload is not None else None)
            sink.buffer.write(sink.local_offset(sge.addr), piece)
            cursor += sge.length
        qp.release_rdma_slot()
        if wr.signaled:
            yield cfg.t_cqe
            qp.send_cq.push(WorkCompletion(
                wr_id=wr.wr_id,
                status=WCStatus.SUCCESS,
                opcode=WCOpcode.RDMA_READ,
                qp_num=qp.qp_num,
                byte_len=nbytes,
                completed_at=env.now,
            ))

    def _gather(self, qp: QueuePair, wr: SendWR) -> Optional[np.ndarray]:
        """Snapshot the gather list (the DMA read), or None if phantom."""
        pieces = []
        for sge in wr.sg_list:
            if sge.length == 0:
                continue
            mr = qp.pd.find_mr_by_lkey(sge.lkey)
            view = mr.buffer.read(mr.local_offset(sge.addr), sge.length)
            if view is None:
                return None
            pieces.append(view)
        if not pieces:
            return np.empty(0, dtype=np.uint8)
        if len(pieces) == 1:
            return pieces[0].copy()
        return np.concatenate(pieces)

    # -- delivery / completion ------------------------------------------------

    def _schedule_delivery(self, qp: QueuePair, wr: SendWR, payload,
                           nbytes: int, remote: "NIC", arrival: float,
                           ack_latency: float) -> None:
        # A chain of timer callbacks, not a spawned process: deliveries
        # are fire-and-forget straight-line waits, so the generator
        # trampoline (bootstrap event, per-stage resume, completion
        # event) is pure overhead.  Each stage fires at the same virtual
        # time the process version reached it.
        env = self.env

        def on_arrival(_event):
            if self.fabric.faults is not None:
                # A QP that died while the message was in flight never
                # sees an ACK: drop it here and let channel recovery
                # replay the unacked WR after reconnect.
                dest_qp = remote.qps.get(qp.dest_qp_num)
                if (qp.state not in (QPState.RTS, QPState.RTR)
                        or dest_qp is None
                        or dest_qp.state not in (QPState.RTR, QPState.RTS)):
                    self.fabric.counters.inc("fault.deliveries_dropped")
                    return
            remote._deliver(qp, wr, payload, nbytes)
            # ACK returns to the sender; outstanding slot frees and the
            # sender-side completion (if signaled) is generated.
            env.timeout(ack_latency).callbacks.append(on_ack)

        def on_ack(_event):
            if wr.opcode in (Opcode.RDMA_WRITE, Opcode.RDMA_WRITE_WITH_IMM):
                qp.release_rdma_slot()
            if wr.signaled:
                env.timeout(self.config.nic.t_cqe).callbacks.append(on_cqe)

        def on_cqe(_event):
            qp.send_cq.push(WorkCompletion(
                wr_id=wr.wr_id,
                status=WCStatus.SUCCESS,
                opcode=WCOpcode.RDMA_WRITE if wr.opcode in
                (Opcode.RDMA_WRITE, Opcode.RDMA_WRITE_WITH_IMM)
                else WCOpcode.SEND,
                qp_num=qp.qp_num,
                byte_len=nbytes,
                completed_at=env.now,
            ))

        env.timeout(max(0.0, arrival - env.now)).callbacks.append(on_arrival)

    def _deliver(self, src_qp: QueuePair, wr: SendWR, payload, nbytes: int) -> None:
        """Inbound message: place data, consume RQ entry, raise CQE."""
        dest_qp = self.qps.get(src_qp.dest_qp_num)
        if dest_qp is None:
            raise ProtectionError(
                f"no QP {src_qp.dest_qp_num} on node {self.node_id}"
            )
        if dest_qp.state not in (QPState.RTR, QPState.RTS):
            raise ProtectionError(
                f"inbound message on QP {dest_qp.qp_num} in state "
                f"{dest_qp.state.value}"
            )
        self.messages_delivered += 1
        if wr.opcode in (Opcode.RDMA_WRITE, Opcode.RDMA_WRITE_WITH_IMM) and nbytes > 0:
            mr = dest_qp.pd.find_mr_by_rkey(wr.rkey)
            mr.check_remote_write(wr.remote_addr, nbytes, wr.rkey)
            mr.buffer.write(mr.local_offset(wr.remote_addr), payload)
        self.trace.record(self.env.now, "ib.deliver", self.node_id,
                          qp=dest_qp.qp_num, wr_id=wr.wr_id, nbytes=nbytes)
        if wr.opcode.consumes_recv_wr:
            recv_wr = dest_qp.consume_recv()
            if wr.opcode in (Opcode.SEND, Opcode.SEND_WITH_IMM):
                # Channel semantics: the payload scatters into the
                # posted receive WR's local list.
                self._scatter_into_recv(dest_qp, recv_wr, payload, nbytes)
            env = self.env
            cfg = self.config.nic

            def on_cqe(_event):
                dest_qp.recv_cq.push(WorkCompletion(
                    wr_id=recv_wr.wr_id,
                    status=WCStatus.SUCCESS,
                    opcode=WCOpcode.RECV_RDMA_WITH_IMM
                    if wr.opcode is Opcode.RDMA_WRITE_WITH_IMM
                    else WCOpcode.RECV,
                    qp_num=dest_qp.qp_num,
                    byte_len=nbytes,
                    imm_data=wr.imm_data,
                    completed_at=env.now,
                ))

            # Plain timer callback: the CQE raise is a single fixed wait,
            # no process machinery needed.
            env.timeout(cfg.t_cqe).callbacks.append(on_cqe)

    def _scatter_into_recv(self, dest_qp: QueuePair, recv_wr, payload,
                           nbytes: int) -> None:
        """Place a two-sided SEND's payload into the receive WR's SGEs."""
        capacity = sum(sge.length for sge in recv_wr.sg_list)
        if nbytes > capacity:
            raise ProtectionError(
                f"SEND of {nbytes}B exceeds the posted receive WR's "
                f"{capacity}B (local length error)")
        remaining = nbytes
        cursor = 0
        for sge in recv_wr.sg_list:
            if remaining == 0:
                break
            take = min(sge.length, remaining)
            if take == 0:
                continue
            mr = dest_qp.pd.find_mr_by_lkey(sge.lkey)
            piece = (payload[cursor : cursor + take]
                     if payload is not None else None)
            mr.buffer.write(mr.local_offset(sge.addr), piece)
            cursor += take
            remaining -= take

    def __repr__(self) -> str:
        return f"<NIC node={self.node_id} qps={len(self.qps)}>"
