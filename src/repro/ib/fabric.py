"""The fabric: nodes, NICs, and inter-node latency.

The paper's platform is a Dragonfly+ EDR fabric with full bisection
bandwidth at the scales evaluated; we model it as a non-blocking
crossbar with uniform latency (per-pair overrides available for
topology experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import ClusterConfig, NIAGARA
from repro.errors import ConfigError
from repro.ib.nic import NIC
from repro.sim.core import Environment
from repro.sim.monitor import Counters, Trace


@dataclass(frozen=True)
class NodeAddress:
    """Identifies an endpoint for QP exchange: node plus QP number."""

    node_id: int
    qp_num: int


class Fabric:
    """A set of nodes joined by a non-blocking interconnect."""

    def __init__(self, env: Environment, config: Optional[ClusterConfig] = None,
                 trace: Optional[Trace] = None, topology=None):
        self.env = env
        self.config = config if config is not None else NIAGARA
        self.config.validate()
        self.trace = trace if trace is not None else Trace(
            enabled=self.config.trace_enabled)
        #: Optional :class:`repro.ib.topology.Topology`; None = uniform
        #: latency from the link config.
        self.topology = topology
        self._nics: dict[int, NIC] = {}
        self._latency_overrides: dict[tuple[int, int], float] = {}
        #: Fault/retry/reconnect counters; always present, cheap to bump.
        self.counters = Counters()
        #: Installed :class:`repro.faults.FaultInjector`, or None.  The
        #: NIC engines check this once per WR; when None, the fault-free
        #: transmit paths run and virtual time is bit-identical to a
        #: build without the fault subsystem.
        self.faults = None

    def install_faults(self, schedule, rngs=None):
        """Arm a :class:`repro.faults.FaultSchedule` on this fabric.

        ``rngs`` defaults to a substream factory derived from the
        configured root seed, so the same seed + schedule produce a
        bit-identical fault pattern.  Returns the bound injector.
        """
        from repro.faults.schedule import FaultInjector
        from repro.sim.rng import RngStreams

        if rngs is None:
            rngs = RngStreams(self.config.seed).spawn("faults")
        self.faults = FaultInjector(schedule, rngs, self.counters,
                                    trace=self.trace)
        return self.faults

    def add_node(self, node_id: Optional[int] = None) -> NIC:
        """Create a node with one NIC; returns the NIC."""
        if node_id is None:
            node_id = len(self._nics)
        if node_id in self._nics:
            raise ConfigError(f"node {node_id} already exists")
        nic = NIC(self.env, self, node_id, self.config, self.trace)
        self._nics[node_id] = nic
        return nic

    def nic_at(self, node_id: int) -> NIC:
        try:
            return self._nics[node_id]
        except KeyError:
            raise ConfigError(f"no node {node_id} in fabric") from None

    @property
    def n_nodes(self) -> int:
        return len(self._nics)

    def set_latency(self, a: int, b: int, latency: float) -> None:
        """Override propagation latency for the (a, b) pair, both ways."""
        if latency < 0:
            raise ConfigError(f"negative latency: {latency}")
        self._latency_overrides[(a, b)] = latency
        self._latency_overrides[(b, a)] = latency

    def latency(self, src: int, dst: int) -> float:
        """One-way propagation latency between two nodes.

        Resolution order: loopback, explicit pair override, topology
        model, uniform link default.
        """
        if src == dst:
            return self.config.link.loopback_latency
        override = self._latency_overrides.get((src, dst))
        if override is not None:
            return override
        if self.topology is not None:
            return self.topology.latency(src, dst)
        return self.config.link.latency

    def __repr__(self) -> str:
        return f"<Fabric nodes={self.n_nodes}>"
