"""The fabric: nodes, NICs, and inter-node latency.

The paper's platform is a Dragonfly+ EDR fabric with full bisection
bandwidth at the scales evaluated; we model it as a non-blocking
crossbar with uniform latency (per-pair overrides available for
topology experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import ClusterConfig, NIAGARA
from repro.errors import ConfigError
from repro.ib.nic import NIC
from repro.sim.core import Environment
from repro.sim.monitor import Counters, Trace


@dataclass(frozen=True)
class NodeAddress:
    """Identifies an endpoint for QP exchange: node plus QP number."""

    node_id: int
    qp_num: int


class Fabric:
    """A set of nodes joined by a non-blocking interconnect."""

    def __init__(self, env: Environment, config: Optional[ClusterConfig] = None,
                 trace: Optional[Trace] = None, topology=None):
        self.env = env
        self.config = config if config is not None else NIAGARA
        self.config.validate()
        self.trace = trace if trace is not None else Trace(
            enabled=self.config.trace_enabled)
        #: Optional :class:`repro.ib.topology.Topology`; None = uniform
        #: latency from the link config.
        self.topology = topology
        #: Shared-link contention queues, keyed by topology link key.
        #: Built only for *routed* topologies; None means the fabric is
        #: latency-only and the NICs take the quiet transmit path with
        #: bit-identical timing to a build without the link layer.
        self.links = None
        self._routes: dict[tuple[int, int], tuple] = {}
        #: Per-chunk contended-grant delay (see RoutedDragonflyPlus).
        self.link_arbitration = 0.0
        if topology is not None and getattr(topology, "routed", False):
            from repro.ib.link import LinkQueue

            self.links = {key: LinkQueue(env, key)
                          for key in topology.link_keys()}
            self.link_arbitration = getattr(topology, "arbitration", 0.0)
        self._nics: dict[int, NIC] = {}
        self._latency_overrides: dict[tuple[int, int], float] = {}
        #: Fault/retry/reconnect counters; always present, cheap to bump.
        self.counters = Counters()
        #: Installed :class:`repro.faults.FaultInjector`, or None.  The
        #: NIC engines check this once per WR; when None, the fault-free
        #: transmit paths run and virtual time is bit-identical to a
        #: build without the fault subsystem.
        self.faults = None

    def install_faults(self, schedule, rngs=None):
        """Arm a :class:`repro.faults.FaultSchedule` on this fabric.

        ``rngs`` defaults to a substream factory derived from the
        configured root seed, so the same seed + schedule produce a
        bit-identical fault pattern.  Returns the bound injector.
        """
        from repro.faults.schedule import FaultInjector
        from repro.sim.rng import RngStreams

        if rngs is None:
            rngs = RngStreams(self.config.seed).spawn("faults")
        self.faults = FaultInjector(schedule, rngs, self.counters,
                                    trace=self.trace)
        return self.faults

    def add_node(self, node_id: Optional[int] = None) -> NIC:
        """Create a node with one NIC; returns the NIC."""
        if node_id is None:
            node_id = len(self._nics)
        if node_id in self._nics:
            raise ConfigError(f"node {node_id} already exists")
        nic = NIC(self.env, self, node_id, self.config, self.trace)
        self._nics[node_id] = nic
        return nic

    def nic_at(self, node_id: int) -> NIC:
        try:
            return self._nics[node_id]
        except KeyError:
            raise ConfigError(f"no node {node_id} in fabric") from None

    @property
    def n_nodes(self) -> int:
        return len(self._nics)

    def set_latency(self, a: int, b: int, latency: float) -> None:
        """Override propagation latency for the (a, b) pair, both ways."""
        if latency < 0:
            raise ConfigError(f"negative latency: {latency}")
        for node in (a, b):
            if node not in self._nics:
                raise ConfigError(f"no node {node} in fabric")
        self._latency_overrides[(a, b)] = latency
        self._latency_overrides[(b, a)] = latency

    def route_links(self, src: int, dst: int) -> tuple:
        """Link queues the (src, dst) path crosses, in hop order.

        Only meaningful on routed topologies (``self.links`` is not
        None); the resolution is memoized per ordered pair.
        """
        route = self._routes.get((src, dst))
        if route is None:
            keys = self.topology.route(src, dst)
            route = self._routes[(src, dst)] = tuple(
                self.links[key] for key in keys)
        return route

    def link_stats(self, makespan: float) -> dict:
        """Per-link occupancy stats, keyed by printable link name."""
        if self.links is None:
            return {}
        return {"/".join(str(part) for part in key): link.stats(makespan)
                for key, link in self.links.items()}

    def latency(self, src: int, dst: int) -> float:
        """One-way propagation latency between two nodes.

        Resolution order: loopback, explicit pair override, topology
        model, uniform link default.
        """
        if src == dst:
            return self.config.link.loopback_latency
        override = self._latency_overrides.get((src, dst))
        if override is not None:
            return override
        if self.topology is not None:
            return self.topology.latency(src, dst)
        return self.config.link.latency

    def __repr__(self) -> str:
        return f"<Fabric nodes={self.n_nodes}>"
