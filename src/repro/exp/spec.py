"""Declarative sweep-point specifications.

A :class:`Scenario` is a named, hashable description of one sweep
point: what kind of measurement to take (``overhead``, ``perceived``,
``sweep``, ...) and every parameter that measurement depends on —
module/aggregator descriptor, workload shape, iteration counts, seed.
Two scenarios with the same parameters are the *same point*: they hash
equal, dedup in the runner, and share one cache entry.

Parameters are stored as a canonical JSON string so scenarios are
cheap to hash, order-insensitive, picklable across process boundaries,
and serializable into result artifacts.  Values must therefore be
JSON-safe (numbers, strings, booleans, ``None``, lists, dicts);
Python floats round-trip through JSON bit-exactly.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Sequence


def canonical(params: Mapping[str, Any]) -> str:
    """Order-insensitive canonical JSON encoding of a parameter map."""
    return json.dumps(_jsonable(params), sort_keys=True,
                      separators=(",", ":"))


def _jsonable(value: Any) -> Any:
    """Normalize tuples to lists so equal specs encode equally."""
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return value
    raise TypeError(
        f"scenario parameter {value!r} ({type(value).__name__}) is not "
        "JSON-safe; describe objects declaratively (see repro.exp.modules)")


@dataclass(frozen=True)
class Scenario:
    """One sweep point: a measurement kind plus canonical parameters."""

    kind: str
    key: str

    @classmethod
    def make(cls, kind: str, **params: Any) -> "Scenario":
        return cls(kind=kind, key=canonical(params))

    @property
    def params(self) -> dict:
        return json.loads(self.key)

    def as_dict(self) -> dict:
        """Plain-dict form handed to worker processes and cache files."""
        return {"kind": self.kind, "params": self.params}

    def digest(self, fingerprint: str = "") -> str:
        """Content address of this point under a given code fingerprint."""
        h = hashlib.sha256()
        h.update(self.kind.encode())
        h.update(b"\0")
        h.update(self.key.encode())
        h.update(b"\0")
        h.update(fingerprint.encode())
        return h.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Scenario({self.kind}, {self.key})"


def grid(kind: str, base: Optional[Mapping[str, Any]] = None,
         **axes: Sequence[Any]) -> list[Scenario]:
    """Cartesian product of parameter axes over a base parameter map.

    ``grid("overhead", {"n_user": 32}, total_bytes=SIZES, module=MODS)``
    yields one scenario per (size, module) combination, in the given
    axis order (last axis varies fastest).
    """
    names = list(axes)
    points = []
    for combo in itertools.product(*(axes[name] for name in names)):
        params = dict(base or {})
        params.update(zip(names, combo))
        points.append(Scenario.make(kind, **params))
    return points


def dedup(points: Iterable[Scenario]) -> list[Scenario]:
    """Unique scenarios, first-seen order preserved."""
    seen: dict[Scenario, None] = {}
    for point in points:
        seen.setdefault(point)
    return list(seen)
