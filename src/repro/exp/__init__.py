"""The experiment harness: declarative sweeps, cached and parallel.

This layer separates *what* an experiment measures (a
:class:`~repro.exp.spec.Scenario` list built by the registry in
:mod:`repro.exp.experiments`) from *how* the points are executed (the
:class:`~repro.exp.runner.Runner`, serial or process-parallel, with a
content-addressed :class:`~repro.exp.cache.ResultCache`) and how the
outcome is persisted (:class:`~repro.exp.store.ResultStore` artifacts).

Entry points:

* :func:`run_spec` — execute one spec and return its payload (what the
  thin ``benchmarks/bench_*.py`` wrappers call);
* :func:`run_experiment` — execute a registered experiment by name,
  optionally writing result artifacts (what ``repro-bench bench run``
  and the scripts' ``__main__`` use).

Every sweep point is a pure function of its scenario and the source
tree, so results are bit-identical across ``--jobs`` settings and safe
to cache; see :mod:`repro.exp.kinds`.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.exp.cache import ResultCache
from repro.exp.fingerprint import code_fingerprint
from repro.exp.profiles import (
    FAST,
    PAPER,
    PERCEIVED_COMPUTE,
    PERCEIVED_NOISE,
    PROFILES,
    Profile,
    get_profile,
)
from repro.exp.registry import (
    Experiment,
    ExperimentSpec,
    Metric,
    all_experiments,
    experiment_names,
    get_experiment,
    register,
)
from repro.exp.plans import diff_plans, experiment_plans, render_plans
from repro.exp.runner import Runner, RunStats
from repro.exp.spec import Scenario, canonical, dedup, grid
from repro.exp.store import (
    RESULT_SCHEMA,
    CompareReport,
    ResultStore,
    compare_results,
    load_result,
)

__all__ = [
    "CompareReport", "Experiment", "ExperimentRun", "ExperimentSpec",
    "FAST", "Metric", "PAPER", "PERCEIVED_COMPUTE", "PERCEIVED_NOISE",
    "PROFILES", "Profile", "RESULT_SCHEMA", "ResultCache", "ResultStore",
    "Runner",
    "RunStats", "Scenario", "all_experiments", "canonical",
    "code_fingerprint", "compare_results", "dedup", "default_jobs",
    "diff_plans", "experiment_names", "experiment_plans",
    "get_experiment", "get_profile", "grid",
    "load_result", "register", "render_plans", "run_experiment",
    "run_spec", "script_main",
]

#: Default location of the sweep-point cache (under ``results/`` so a
#: ``results`` wipe also drops stale cache state).
DEFAULT_CACHE_DIR = os.path.join("results", ".cache")


def default_jobs() -> int:
    """Worker count when none is given: ``REPRO_BENCH_JOBS`` or 1."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))
    except ValueError:
        return 1


def run_spec(spec: ExperimentSpec, jobs: Optional[int] = None,
             cache: Optional[ResultCache] = None,
             progress: Optional[Callable[[str], None]] = None) -> dict:
    """Execute one spec's points and return the collected payload."""
    runner = Runner(jobs=jobs if jobs is not None else default_jobs(),
                    cache=cache, progress=progress)
    return spec.collect(runner.run(spec.points))


@dataclass
class ExperimentRun:
    """Everything :func:`run_experiment` produced."""

    experiment: Experiment
    profile: Profile
    spec: ExperimentSpec
    payload: dict
    stats: RunStats
    elapsed: float
    fingerprint: str
    paths: list = field(default_factory=list)
    #: Path of the cProfile dump, when the run was profiled.
    cpu_profile: Optional[str] = None

    @property
    def report(self) -> str:
        return self.spec.report(self.payload)


def run_experiment(name: str, profile: Union[str, Profile] = "paper",
                   jobs: Optional[int] = None,
                   cache: Optional[ResultCache] = None,
                   store: Optional[ResultStore] = None,
                   progress: Optional[Callable[[str], None]] = None,
                   ) -> ExperimentRun:
    """Run one registered experiment, optionally persisting artifacts."""
    experiment = get_experiment(name)
    prof = profile if isinstance(profile, Profile) else get_profile(profile)
    spec = experiment.build(prof)
    runner = Runner(jobs=jobs if jobs is not None else default_jobs(),
                    cache=cache, progress=progress)
    start = time.monotonic()
    results = runner.run(spec.points)
    elapsed = time.monotonic() - start
    payload = spec.collect(results)
    fingerprint = runner.fingerprint or code_fingerprint()
    run = ExperimentRun(
        experiment=experiment, profile=prof, spec=spec, payload=payload,
        stats=runner.last_stats, elapsed=elapsed, fingerprint=fingerprint)
    if store is not None:
        run.paths = store.write(
            name, payload, profile=prof.name, fingerprint=fingerprint,
            metric=dataclasses.asdict(spec.metric),
            stats={"points": run.stats.points, "unique": run.stats.unique,
                   "cache_hits": run.stats.cache_hits,
                   "executed": run.stats.executed},
            elapsed=elapsed)
    return run


def add_run_options(parser: argparse.ArgumentParser,
                    default_profile: str = "paper") -> None:
    """The shared run flags (used by scripts and the CLI)."""
    parser.add_argument("--profile", choices=sorted(PROFILES),
                        default=default_profile,
                        help="workload preset (default: %(default)s)")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes (default: "
                             "$REPRO_BENCH_JOBS or 1)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="sweep-point cache directory "
                             "(default: %(default)s)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every point, touch no cache")
    parser.add_argument("--results-dir", default="results",
                        help="directory for <name>.json artifacts "
                             "(default: %(default)s)")
    parser.add_argument("--bench-dir", default=".",
                        help="directory for BENCH_<name>.json artifacts "
                             "(default: repo top level)")
    parser.add_argument("--no-store", action="store_true",
                        help="print the table only, write no artifacts")
    parser.add_argument("--profile-cpu", metavar="PATH", nargs="?",
                        const="", default=None,
                        help="run under cProfile and write a pstats dump "
                             "to PATH (default: profile_<name>.pstats); "
                             "in-process points only, so pair with the "
                             "default --jobs 1")


def run_from_options(name: str, options: argparse.Namespace,
                     progress: Optional[Callable[[str], None]] = None,
                     ) -> ExperimentRun:
    """Execute an experiment as the parsed run flags describe."""
    cache = None if options.no_cache else ResultCache(options.cache_dir)
    store = None if options.no_store else ResultStore(
        results_dir=options.results_dir, bench_dir=options.bench_dir)
    profile_cpu = getattr(options, "profile_cpu", None)
    if profile_cpu is None:
        return run_experiment(name, profile=options.profile,
                              jobs=options.jobs, cache=cache, store=store,
                              progress=progress)
    # CPU profiling: wrap the whole run (build, simulate, collect) in
    # cProfile.  Worker subprocesses are invisible to the profiler, so
    # profiled runs should stay at the default --jobs 1.
    import cProfile

    path = profile_cpu or f"profile_{name}.pstats"
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        run = run_experiment(name, profile=options.profile,
                             jobs=options.jobs, cache=cache, store=store,
                             progress=progress)
    finally:
        profiler.disable()
        profiler.dump_stats(path)
    run.cpu_profile = path
    return run


def script_main(name: str, doc: Optional[str] = None,
                argv: Optional[list] = None) -> int:
    """Shared ``__main__`` for the thin ``benchmarks/bench_*.py`` scripts.

    Runs the named registered experiment at paper scale by default,
    prints the classic text table, and writes the versioned JSON
    artifacts — with caching and ``--jobs`` fan-out for free.
    """
    parser = argparse.ArgumentParser(
        prog=f"bench_{name}", description=f"Regenerate {name}")
    add_run_options(parser)
    options = parser.parse_args(argv)
    if doc:
        print(doc)
    run = run_from_options(name, options, progress=print)
    print(run.report)
    for path in run.paths:
        print(f"wrote {path}")
    return 0
