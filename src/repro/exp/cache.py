"""Content-addressed on-disk cache of sweep-point results.

One JSON file per sweep point, named by the point's digest under the
current code fingerprint (:func:`repro.exp.fingerprint.code_fingerprint`).
Because the digest covers every scenario parameter *and* the source
tree, a hit is guaranteed to be the bit-identical result a fresh run
would produce; any code or spec change misses and re-runs.

Writes are atomic (temp file + ``os.replace``), so a sweep killed
mid-write never poisons the cache — re-running the sweep resumes,
re-executing only the points that have no completed entry.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Optional

from repro.exp.spec import Scenario

CACHE_SCHEMA = "repro-exp-cache/v1"


class ResultCache:
    """Directory of per-point result files, keyed by content digest."""

    def __init__(self, directory: os.PathLike | str):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path(self, digest: str) -> pathlib.Path:
        return self.directory / f"{digest}.json"

    def get(self, digest: str) -> Optional[dict]:
        """The cached metrics for ``digest``, or None on a miss.

        Unreadable or truncated entries (e.g. from a kill that raced
        the atomic rename away) count as misses.
        """
        path = self.path(digest)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if doc.get("schema") != CACHE_SCHEMA:
            self.misses += 1
            return None
        self.hits += 1
        return doc["metrics"]

    def put(self, digest: str, scenario: Scenario, fingerprint: str,
            metrics: dict) -> None:
        """Persist one completed point atomically."""
        doc = {
            "schema": CACHE_SCHEMA,
            "scenario": scenario.as_dict(),
            "fingerprint": fingerprint,
            "metrics": metrics,
        }
        path = self.path(digest)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            json.dump(doc, fh)
        os.replace(tmp, path)

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))
