"""Measurement kinds: the pure functions that execute one sweep point.

:func:`run_point` is the single entry the runner (and its worker
processes) call.  Every kind builds its own cluster from the scenario
parameters — nothing leaks between points, so a point's result is a
pure function of its scenario and the code fingerprint, regardless of
which process executes it or in what order.  That property is what
makes serial and parallel sweeps bit-identical and cached results
trustworthy.

Each kind returns a flat JSON-safe metrics dict.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.exp.modules import build_config, build_module, build_topology

KINDS: dict[str, Callable[[dict], dict]] = {}


def kind(name: str):
    def decorate(fn):
        KINDS[name] = fn
        return fn
    return decorate


def run_point(point: dict) -> dict:
    """Execute one sweep point described as ``{"kind", "params"}``."""
    try:
        fn = KINDS[point["kind"]]
    except KeyError:
        raise ValueError(f"unknown scenario kind {point['kind']!r}") from None
    return fn(point["params"])


def _config(params: dict):
    from repro.config import NIAGARA

    config = build_config(params.get("config")) or NIAGARA
    if params.get("seed") is not None:
        config = config.with_changes(seed=params["seed"])
    return config


@kind("overhead")
def _overhead(p: dict) -> dict:
    from repro.bench.overhead import run_overhead

    res = run_overhead(
        build_module(p["module"]), n_user=p["n_user"],
        total_bytes=p["total_bytes"], iterations=p["iterations"],
        warmup=p["warmup"], config=_config(p))
    return {"mean_time": res.mean_time}


@kind("perceived")
def _perceived(p: dict) -> dict:
    from repro.bench.perceived import run_perceived_bandwidth

    schedule = None
    if p.get("loss"):
        from repro.faults import FaultSchedule

        schedule = FaultSchedule().chunk_loss(p["loss"])
    res = run_perceived_bandwidth(
        build_module(p["module"]), n_user=p["n_user"],
        total_bytes=p["total_bytes"], compute=p["compute"],
        noise_fraction=p["noise_fraction"], iterations=p["iterations"],
        warmup=p["warmup"], config=_config(p), fault_schedule=schedule)
    pair = res.result
    return {
        "perceived_bandwidth": res.perceived_bandwidth,
        "wrs_posted": pair.wrs_posted,
        "retransmits": int(pair.counters.get("ib.retransmits", 0)),
    }


@kind("sweep")
def _sweep(p: dict) -> dict:
    from repro.bench.sweep import run_sweep

    res = run_sweep(
        build_module(p["module"]), grid=tuple(p["grid"]),
        n_threads=p["n_threads"], total_bytes=p["total_bytes"],
        compute=p["compute"], noise_fraction=p["noise_fraction"],
        iterations=p["iterations"], warmup=p["warmup"], config=_config(p))
    return {
        "mean_time": res.mean_time,
        "mean_comm_time": res.mean_comm_time,
        "critical_path_compute": res.critical_path_compute,
    }


@kind("halo")
def _halo(p: dict) -> dict:
    from repro.bench.halo import run_halo

    res = run_halo(
        build_module(p["module"]), grid=tuple(p["grid"]),
        n_threads=p["n_threads"], face_bytes=p["face_bytes"],
        compute=p["compute"], noise_fraction=p["noise_fraction"],
        iterations=p["iterations"], warmup=p["warmup"],
        topology=build_topology(p.get("topology")), config=_config(p))
    return {"mean_time": res.mean_time, "mean_comm_time": res.mean_comm_time}


@kind("stencil")
def _stencil(p: dict) -> dict:
    from repro.coll import per_edge_autotuners, run_stencil

    planner = None
    if p.get("per_edge") is not None:
        autotune_params = dict(p["per_edge"])

        def planner(proc, axes):
            return per_edge_autotuners(autotune_params)

    face_bytes = p["face_bytes"]
    res = run_stencil(
        module=build_module(p.get("module")), planner=planner,
        grid=tuple(p["grid"]), n_threads=p["n_threads"],
        n_partitions=p.get("n_partitions"),
        face_bytes=(face_bytes if isinstance(face_bytes, int)
                    else tuple(face_bytes)),
        compute=p["compute"], noise_fraction=p["noise_fraction"],
        iterations=p["iterations"], warmup=p["warmup"],
        topology=build_topology(p.get("topology")), config=_config(p))
    spreads = [stats["spread"]
               for edges in res.edge_stats.values()
               for stats in edges.values() if stats["spread"] is not None]
    return {
        "mean_time": res.mean_time,
        "mean_comm_time": res.mean_comm_time,
        "max_edge_spread": max(spreads) if spreads else None,
    }


@kind("pallreduce")
def _pallreduce(p: dict) -> dict:
    from repro.bench.coll import run_pallreduce

    res = run_pallreduce(
        build_module(p.get("module")), world=p["world"],
        n_threads=p["n_threads"], n_partitions=p.get("n_partitions"),
        partition_size=p["partition_size"], compute=p["compute"],
        noise_fraction=p["noise_fraction"], iterations=p["iterations"],
        warmup=p["warmup"], topology=build_topology(p.get("topology")),
        config=_config(p))
    return {"mean_time": res.mean_time, "mean_comm_time": res.mean_comm_time}


@kind("arrival_profile")
def _arrival_profile(p: dict) -> dict:
    from repro.bench.pair import run_partitioned_pair
    from repro.mpi.persist_module import PersistSpec
    from repro.profiler import arrival_profile
    from repro.runtime import SingleThreadDelay

    n_user = p["n_user"]
    partition_size = p["total_bytes"] // n_user
    result = run_partitioned_pair(
        PersistSpec, n_user=n_user, partition_size=partition_size,
        compute=p["compute"], noise=SingleThreadDelay(p["noise_fraction"]),
        iterations=p["iterations"], warmup=p["warmup"], config=_config(p))
    rounds = [[t - min(r) for t in r] for r in result.arrival_rounds()]
    profile = arrival_profile(rounds, partition_size=partition_size)
    return {
        "partition_size": profile.partition_size,
        "compute_spans": list(profile.compute_spans),
        "comm_span": profile.comm_span,
    }


@kind("min_delta")
def _min_delta(p: dict) -> dict:
    from repro.bench.overhead import _spec_factory
    from repro.bench.pair import run_partitioned_pair
    from repro.core import estimate_min_delta
    from repro.runtime import SingleThreadDelay

    result = run_partitioned_pair(
        _spec_factory(build_module(p["module"])), n_user=p["n_user"],
        partition_size=p["total_bytes"] // p["n_user"],
        compute=p["compute"], noise=SingleThreadDelay(p["noise_fraction"]),
        iterations=p["iterations"], warmup=p["warmup"], config=_config(p))
    return {"min_delta": estimate_min_delta(result.arrival_rounds())}


@kind("autotune")
def _autotune(p: dict) -> dict:
    from repro.bench.autotune import run_autotuned_pair

    res = run_autotuned_pair(
        p["autotune"], n_user=p["n_user"], total_bytes=p["total_bytes"],
        compute=p.get("compute", 0.0),
        noise_fraction=p.get("noise_fraction", 0.0),
        iterations=p["iterations"], warmup=p["warmup"], config=_config(p))
    # Caching note: no TuningStore here on purpose — a store would make
    # the point a function of on-disk state, breaking the harness's
    # pure-function-of-scenario contract.  Cross-run persistence is
    # exercised by the autotune tests and the CLI instead.
    return {
        "mean_time": res.mean_time,
        "mean_comm_time": res.mean_comm_time,
        "perceived_bandwidth": res.mean_perceived_bandwidth,
        "best_plan": res.best_plan,
        "best_plan_time": res.best_plan_time,
        "final_time": res.final_time,
        "converged_round": res.converged_round,
        "explored": res.explored,
        "round_times": [r["completion_time"] for r in res.round_plans],
        "wrs_posted": res.result.wrs_posted,
        "timer_flushes": res.result.timer_flushes,
    }


@kind("fleet")
def _fleet(p: dict) -> dict:
    from repro.fleet import JobSpec, run_fleet_with_slowdowns

    jobs = [JobSpec.from_dict(d) for d in p["jobs"]]
    profile = run_fleet_with_slowdowns(
        jobs, placement=p.get("placement", "spread"),
        seed=p.get("seed", 0), config=_config(p))
    spine = {name: stats["utilization"]
             for name, stats in profile.links.items()
             if name.startswith("global")}
    return {
        "makespan": profile.makespan,
        "slowdowns": dict(profile.slowdowns),
        "mean_iterations": {
            name: view.mean_iteration
            for name, view in profile.tenants.items()
            if view.mean_iteration is not None},
        "spine_utilization": max(spine.values()) if spine else 0.0,
        "link_histogram": profile.link_histogram(),
        "busiest_links": [list(pair) for pair in profile.busiest_links()],
    }


@kind("fleet_rank")
def _fleet_rank(p: dict) -> dict:
    from repro.fleet import run_contended_pair

    return run_contended_pair(
        module=p["module"], level=p["level"],
        n_partitions=p.get("n_partitions", 16),
        partition_size=p.get("partition_size", 64 * 1024),
        iterations=p["iterations"], warmup=p["warmup"],
        compute=p.get("compute", 0.0), seed=p.get("seed", 0),
        config=_config(p))


@kind("fleet_autotune")
def _fleet_autotune(p: dict) -> dict:
    from repro.fleet import run_reconvergence

    res = run_reconvergence(
        p["autotune"], quiet_rounds=p["quiet_rounds"],
        congested_rounds=p["congested_rounds"],
        tail_rounds=p["tail_rounds"],
        n_partitions=p.get("n_partitions", 16),
        partition_size=p.get("partition_size", 64 * 1024),
        compute=p.get("compute", 0.0), seed=p.get("seed", 0),
        config=_config(p))
    # Fold the raw per-round records into a compact trajectory so the
    # result artifact stays readable; everything else passes through.
    res["trajectory"] = [
        [r["round"], r["n_transport"], r["n_qps"], r["delta"],
         r["completion_time"]]
        for r in res.pop("rounds")]
    return res


@kind("model_curve")
def _model_curve(p: dict) -> dict:
    from repro.model import model_curve
    from repro.model.tables import NIAGARA_LOGGP

    times = model_curve(
        NIAGARA_LOGGP, list(p["sizes"]), n_transport=p["n"],
        n_user=p["n"], delay=p["delay"])
    return {"times": [float(t) for t in times]}


@kind("table1")
def _table1(p: dict) -> dict:
    from repro.model.tables import generate_table1

    return {"table": {str(size): n
                      for size, n in generate_table1().items()}}


@kind("serve_bench")
def _serve_bench(p: dict) -> dict:
    from repro.serve.bench import run_serve_bench

    # The service runs out of a temporary directory created and
    # destroyed inside the call, so the point stays a pure function of
    # its scenario (nothing persists between points or processes).
    return run_serve_bench(
        n_clients=p["n_clients"], n_requests=p["n_requests"],
        n_keys=p.get("n_keys", 64), zipf_s=p.get("zipf_s", 1.1),
        p_commit=p.get("p_commit", 0.08),
        burst_len=p.get("burst_len", 32), seed=p.get("seed", 0),
        n_shards=p.get("n_shards", 8),
        cache_capacity=p.get("cache_capacity", 1024),
        negative_ttl=p.get("negative_ttl", 256),
        max_entries_per_shard=p.get("max_entries_per_shard", 0))


@kind("serve_stress")
def _serve_stress(p: dict) -> dict:
    import tempfile

    from repro.serve.stress import run_multiwriter_stress

    # Real writer *processes* race on one entry, so the conflict and
    # audit-read counts depend on OS scheduling.  The invariants
    # (torn_reads == 0, lost_updates == 0, total_commits) are
    # deterministic; only those belong in an experiment's series.
    with tempfile.TemporaryDirectory(prefix="repro-serve-stress-") as tmp:
        res = run_multiwriter_stress(
            tmp, n_writers=p["n_writers"], n_puts=p["n_puts"],
            mode=p.get("mode", "confident"),
            n_shards=p.get("n_shards", 4))
    res.pop("writers")
    return res


@kind("serve_fleet")
def _serve_fleet(p: dict) -> dict:
    import tempfile

    from repro.serve.fleet import run_served_tenants

    with tempfile.TemporaryDirectory(prefix="repro-serve-fleet-") as tmp:
        res = run_served_tenants(
            tmp, autotune_params=p.get("autotune"),
            n_tenants=p.get("n_tenants", 2),
            n_partitions=p.get("n_partitions", 16),
            partition_size=p.get("partition_size", 64 * 1024),
            iterations=p["iterations"], seed=p.get("seed", 0),
            n_shards=p.get("n_shards", 4), config=_config(p))
    return {
        "bit_identical": res["bit_identical"],
        "warm_skipped_exploration": res["warm_skipped_exploration"],
        "served_plan": res["served_plan"],
        "tenant_explored": [t["explored"] for t in res["tenants"]],
        "tenant_mean_iterations": [t["mean_iteration"]
                                   for t in res["tenants"]],
        "commits": res["service"]["commits"],
        "conflicts": res["service"]["conflicts"],
    }
