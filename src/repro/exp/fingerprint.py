"""Code fingerprinting for cache invalidation.

A cached sweep-point result is only valid for the exact code that
produced it: the cache key is (scenario digest, code fingerprint), and
the fingerprint is a content hash over every ``repro`` source file.
Any edit anywhere in ``src/repro`` — cost model, module, engine —
invalidates every cached point, which is exactly the conservative
behaviour a bit-identical reproduction needs.
"""

from __future__ import annotations

import hashlib
import pathlib
from typing import Optional

_cached: Optional[str] = None


def code_fingerprint(refresh: bool = False) -> str:
    """Content hash of the ``repro`` package sources (hex digest)."""
    global _cached
    if _cached is not None and not refresh:
        return _cached
    import repro

    root = pathlib.Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        h.update(path.relative_to(root).as_posix().encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    _cached = h.hexdigest()
    return _cached
