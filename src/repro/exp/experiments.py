"""Every figure/table of the paper as a registered declarative spec.

Each ``<name>_spec`` function builds the exact sweep points the old
imperative ``benchmarks/bench_*.py`` loop ran — same modules, same
workloads, same iteration counts — so the harness reproduces the
historical numbers bit for bit (guarded by the goldens).  The
``@register`` builds instantiate the specs from a named profile
(paper-scale vs. fast) for ``repro-bench bench run``.

Layout note: the spec builders key their scenario dicts by the same
loop variables the old scripts used, and ``collect`` reads results
back through those dicts, so a reviewer can diff a spec against the
retired loop line by line.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.bench.reporting import (
    format_bandwidth_series,
    format_delta_table,
    format_speedup_series,
    format_table,
)
from repro.exp.profiles import (
    FAST,
    PAPER,
    PERCEIVED_COMPUTE,
    PERCEIVED_NOISE,
    Profile,
)
from repro.exp.modules import config_desc
from repro.exp.registry import ExperimentSpec, Metric, register
from repro.exp.spec import Scenario
from repro.units import KiB, MiB, fmt_bytes, fmt_rate, fmt_time, ms, us

#: Shared module descriptors (see :mod:`repro.exp.modules`).
PERSIST = ["persist"]
PLOGGP = ["ploggp", {"delay": ms(4)}]
TIMER_3000US = ["timer", {"delay": ms(4), "delta": us(3000)}]

SPEEDUP = Metric("speedup over part_persist", "x")
BANDWIDTH = Metric("perceived bandwidth", "B/s")
MODEL_TIME = Metric("modelled completion time", "s", higher_is_better=False)


def _iter_extras(it: Mapping) -> dict:
    """Optional per-run overrides riding in an iteration-kwargs mapping.

    The legacy scripts pass a whole ``config=ClusterConfig`` through
    their kwargs dicts (e.g. the multi-rail test); scenarios must stay
    JSON-safe, so live configs are converted to descriptors here.
    """
    extras = {}
    cfg = it.get("config")
    if cfg is not None:
        extras["config"] = cfg if isinstance(cfg, dict) else config_desc(cfg)
    return extras


def _overhead(module, n_user: int, size: int, it: Mapping) -> Scenario:
    return Scenario.make(
        "overhead", module=module, n_user=n_user, total_bytes=size,
        iterations=it["iterations"], warmup=it["warmup"],
        **_iter_extras(it))


def _perceived(module, n_user: int, size: int, iterations: int,
               warmup: int, loss: float = 0.0,
               compute: float = PERCEIVED_COMPUTE,
               noise: float = PERCEIVED_NOISE) -> Scenario:
    params = dict(module=module, n_user=n_user, total_bytes=size,
                  compute=compute, noise_fraction=noise,
                  iterations=iterations, warmup=warmup)
    if loss:
        params["loss"] = loss
    return Scenario.make("perceived", **params)


def _sweep(module, grid_shape, n_threads: int, size: int, compute: float,
           noise: float, it: Mapping) -> Scenario:
    return Scenario.make(
        "sweep", module=module, grid=list(grid_shape), n_threads=n_threads,
        total_bytes=size, compute=compute, noise_fraction=noise,
        iterations=it["iterations"], warmup=it["warmup"],
        **_iter_extras(it))


# ---------------------------------------------------------------- fig03

FIG03_COUNTS = (1, 2, 4, 8, 16, 32)
FIG03_SIZES = (16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB, 16 * MiB,
               64 * MiB, 256 * MiB)
FIG03_DELAY = ms(4)


def fig03_spec(sizes=FIG03_SIZES, counts=FIG03_COUNTS,
               delay=FIG03_DELAY) -> ExperimentSpec:
    sizes = list(sizes)
    pts = {n: Scenario.make("model_curve", sizes=sizes, n=n, delay=delay)
           for n in counts}

    def collect(res):
        curves = {n: res[pts[n]]["times"] for n in counts}
        series = {f"{n} parts": dict(zip(sizes, curves[n])) for n in counts}
        return {"series": series, "curves": curves, "sizes": sizes}

    def report(payload):
        return fig03_report(payload["curves"], payload["sizes"])

    return ExperimentSpec(list(pts.values()), collect, report, MODEL_TIME)


def fig03_report(curves, sizes=FIG03_SIZES) -> str:
    rows = []
    for i, size in enumerate(sizes):
        best = min(curves, key=lambda n: curves[n][i])
        rows.append([fmt_bytes(size)]
                    + [fmt_time(curves[n][i]) for n in curves]
                    + [best])
    return format_table(
        ["size"] + [f"{n} parts" for n in curves] + ["best"], rows)


@register("fig03", "Fig. 3: PLogGP-modelled completion times")
def _build_fig03(profile: Profile) -> ExperimentSpec:
    return fig03_spec()


# --------------------------------------------------------------- table1


def table1_spec() -> ExperimentSpec:
    point = Scenario.make("table1")

    def collect(res):
        table = {int(size): n for size, n in res[point]["table"].items()}
        return {"series": {"optimal transport partitions":
                           {size: n for size, n in sorted(table.items())}},
                "table": table}

    def report(payload):
        return table1_report(payload["table"])

    return ExperimentSpec(
        [point], collect, report, Metric("optimal transport partitions"))


def table1_report(got) -> str:
    from repro.model.tables import TABLE1_PAPER

    rows = [[fmt_bytes(size), want, got[size],
             "ok" if got[size] == want else "MISMATCH"]
            for size, want in TABLE1_PAPER.items()]
    return format_table(["aggregate size", "paper", "model", ""], rows)


@register("table1", "Table I: optimal transport partitions")
def _build_table1(profile: Profile) -> ExperimentSpec:
    return table1_spec()


# ---------------------------------------------------------------- fig06

FIG06_N_USER = 32
FIG06_TRANSPORT_COUNTS = (2, 8, 32)
FIG06_N_QPS = 2


def fig06_spec(sizes, iter_kwargs,
               transport_counts=FIG06_TRANSPORT_COUNTS,
               n_user=FIG06_N_USER, n_qps=FIG06_N_QPS) -> ExperimentSpec:
    sizes = list(sizes)
    base = {s: _overhead(PERSIST, n_user, s, iter_kwargs) for s in sizes}
    agg = {(t, s): _overhead(["fixed", {"n_transport": t, "n_qps": n_qps}],
                             n_user, s, iter_kwargs)
           for t in transport_counts for s in sizes}

    def collect(res):
        series = {
            f"T={t}": {s: res[base[s]]["mean_time"]
                       / res[agg[(t, s)]]["mean_time"] for s in sizes}
            for t in transport_counts
        }
        return {"series": series}

    return ExperimentSpec(
        list(base.values()) + list(agg.values()), collect,
        lambda payload: format_speedup_series(payload["series"]), SPEEDUP)


@register("fig06", "Fig. 6: overhead vs. transport-partition count")
def _build_fig06(profile: Profile) -> ExperimentSpec:
    return fig06_spec(profile.overhead_sizes, profile.ptp_iter)


# ---------------------------------------------------------------- fig07

FIG07_N_USER = 16
FIG07_QP_COUNTS = (1, 4, 16)


def fig07_spec(sizes, iter_kwargs, qp_counts=FIG07_QP_COUNTS,
               n_user=FIG07_N_USER) -> ExperimentSpec:
    sizes = list(sizes)
    base = {s: _overhead(PERSIST, n_user, s, iter_kwargs) for s in sizes}
    agg = {(q, s): _overhead(["noagg", {"n_qps": q}], n_user, s,
                             iter_kwargs)
           for q in qp_counts for s in sizes}

    def collect(res):
        series = {
            f"QP={q}": {s: res[base[s]]["mean_time"]
                        / res[agg[(q, s)]]["mean_time"] for s in sizes}
            for q in qp_counts
        }
        return {"series": series}

    return ExperimentSpec(
        list(base.values()) + list(agg.values()), collect,
        lambda payload: format_speedup_series(payload["series"]), SPEEDUP)


@register("fig07", "Fig. 7: overhead vs. QP count")
def _build_fig07(profile: Profile) -> ExperimentSpec:
    sizes = list(profile.overhead_sizes)
    if 16 * MiB not in sizes:
        # The QP effect needs a wire-saturating point (Section V-B1).
        sizes.append(16 * MiB)
    return fig07_spec(sizes, profile.ptp_iter)


# ---------------------------------------------------------------- fig08

FIG08_USER_COUNTS = (4, 32, 128)
FIG08_SIZES = (4 * KiB, 16 * KiB, 64 * KiB, 128 * KiB, 512 * KiB,
               2 * MiB, 8 * MiB)
FIG08_SIZES_FAST = (16 * KiB, 128 * KiB, 2 * MiB)


def fig08_spec(user_counts, sizes, iter_kwargs,
               table_iters: int = 5) -> ExperimentSpec:
    user_counts, sizes = list(user_counts), list(sizes)
    usable_by, base, table, ploggp = {}, {}, {}, {}
    for n_user in user_counts:
        usable = [s for s in sizes if s >= n_user]
        usable_by[n_user] = usable
        table_desc = ["tuning_table", {
            "n_user_counts": [n_user], "message_sizes": usable,
            "iterations": table_iters, "warmup": 1}]
        for s in usable:
            base[(n_user, s)] = _overhead(PERSIST, n_user, s, iter_kwargs)
            table[(n_user, s)] = _overhead(table_desc, n_user, s,
                                           iter_kwargs)
            ploggp[(n_user, s)] = _overhead(PLOGGP, n_user, s, iter_kwargs)

    def collect(res):
        series = {}
        for n_user in user_counts:
            series[f"{n_user}p tuning-table"] = {
                s: res[base[(n_user, s)]]["mean_time"]
                / res[table[(n_user, s)]]["mean_time"]
                for s in usable_by[n_user]}
            series[f"{n_user}p ploggp"] = {
                s: res[base[(n_user, s)]]["mean_time"]
                / res[ploggp[(n_user, s)]]["mean_time"]
                for s in usable_by[n_user]}
        return {"series": series}

    return ExperimentSpec(
        list(base.values()) + list(table.values()) + list(ploggp.values()),
        collect,
        lambda payload: format_speedup_series(payload["series"]), SPEEDUP)


@register("fig08", "Fig. 8: tuning-table vs. PLogGP aggregator")
def _build_fig08(profile: Profile) -> ExperimentSpec:
    if profile.name == "paper":
        return fig08_spec(FIG08_USER_COUNTS, FIG08_SIZES,
                          profile.ptp_iter, table_iters=5)
    return fig08_spec((4, 32), FIG08_SIZES_FAST, profile.ptp_iter,
                      table_iters=3)


# ---------------------------------------------------------------- fig09

FIG09_DESIGNS = (("persist", PERSIST), ("ploggp", PLOGGP),
                 ("timer(3000us)", TIMER_3000US))


def fig09_spec(n_users, sizes, iterations, warmup) -> ExperimentSpec:
    n_users, sizes = list(n_users), list(sizes)
    pts = {(n, name, s): _perceived(desc, n, s, iterations, warmup)
           for n in n_users for name, desc in FIG09_DESIGNS for s in sizes}

    def label(n, name):
        return name if len(n_users) == 1 else f"{n}p {name}"

    def collect(res):
        series = {
            label(n, name): {
                s: res[pts[(n, name, s)]]["perceived_bandwidth"]
                for s in sizes}
            for n in n_users for name, _ in FIG09_DESIGNS
        }
        return {"series": series}

    def report(payload):
        from repro.bench.perceived import single_thread_line

        return format_bandwidth_series(payload["series"],
                                       reference=single_thread_line())

    return ExperimentSpec(list(pts.values()), collect, report, BANDWIDTH)


@register("fig09", "Fig. 9: perceived bandwidth of the three designs")
def _build_fig09(profile: Profile) -> ExperimentSpec:
    n_users = (16, 32) if profile.name == "paper" else (32,)
    return fig09_spec(n_users, profile.perceived_sizes,
                      profile.perceived_iterations,
                      profile.perceived_warmup)


# ----------------------------------------------------------- fig10 / 11

PROFILE_N_USER = 32


def profile_from_metrics(metrics: Mapping):
    """Rebuild an :class:`~repro.profiler.ArrivalProfile` from a
    serialized ``arrival_profile`` point result."""
    from repro.profiler import ArrivalProfile

    return ArrivalProfile(
        partition_size=metrics["partition_size"],
        compute_spans=tuple(metrics["compute_spans"]),
        comm_span=metrics["comm_span"])


def profile_table(profile) -> str:
    """The Fig. 10/11 per-partition arrival table."""
    rows = []
    laggard = profile.laggard_time
    for i, span in enumerate(profile.compute_spans):
        end = profile.transfer_end(i)
        rows.append([
            i,
            fmt_time(span),
            fmt_time(end),
            "early" if (i < profile.n_partitions - 1 and end <= laggard)
            else ("laggard" if i == profile.n_partitions - 1 else "late"),
        ])
    return format_table(
        ["arrival rank", "pready (rel)", "wire done", "early bird?"], rows)


def arrival_profile_spec(total_bytes: int, iterations: int, warmup: int,
                         n_user: int = PROFILE_N_USER) -> ExperimentSpec:
    from repro.profiler import early_bird_fraction

    point = Scenario.make(
        "arrival_profile", n_user=n_user, total_bytes=total_bytes,
        compute=PERCEIVED_COMPUTE, noise_fraction=PERCEIVED_NOISE,
        iterations=iterations, warmup=warmup)

    def collect(res):
        metrics = res[point]
        profile = profile_from_metrics(metrics)
        return {
            "series": {"arrival": {
                "early_bird_fraction": early_bird_fraction(profile),
                "laggard_time": profile.laggard_time,
            }},
            "profile": dict(metrics),
        }

    def report(payload):
        profile = profile_from_metrics(payload["profile"])
        return (f"{profile_table(profile)}\n\nearly-bird fraction: "
                f"{early_bird_fraction(profile):.3f}")

    return ExperimentSpec([point], collect, report,
                          Metric("early-bird fraction"))


@register("fig10", "Fig. 10: arrival profile, 8 MiB")
def _build_fig10(profile: Profile) -> ExperimentSpec:
    return arrival_profile_spec(8 * MiB, profile.perceived_iterations,
                                profile.perceived_warmup)


@register("fig11", "Fig. 11: arrival profile, 128 MiB")
def _build_fig11(profile: Profile) -> ExperimentSpec:
    return arrival_profile_spec(128 * MiB, profile.perceived_iterations,
                                profile.perceived_warmup)


# ---------------------------------------------------------------- fig12

FIG12_COUNTS = (4, 8, 16, 32, 64, 128)
FIG12_SIZES = (1 * MiB, 8 * MiB, 64 * MiB)


def fig12_spec(sizes=FIG12_SIZES, counts=FIG12_COUNTS, iterations=5,
               warmup=2) -> ExperimentSpec:
    from repro.config import NIAGARA
    from repro.core import PLogGPAggregator
    from repro.model.tables import NIAGARA_LOGGP

    agg = PLogGPAggregator(NIAGARA_LOGGP, delay=ms(4))
    pts = {}
    for size in sizes:
        for n_user in counts:
            if size % n_user:
                continue
            plan = agg.plan(n_user, size // n_user, NIAGARA)
            if plan.n_transport == n_user:
                # The model requested no aggregation: nothing for the
                # timer to cover (the paper's missing data points).
                continue
            pts[(size, n_user)] = Scenario.make(
                "min_delta", module=PLOGGP, n_user=n_user,
                total_bytes=size, compute=PERCEIVED_COMPUTE,
                noise_fraction=PERCEIVED_NOISE, iterations=iterations,
                warmup=warmup)

    def collect(res):
        rows = [[size, n_user, res[pt]["min_delta"]]
                for (size, n_user), pt in pts.items()]
        series = {"min delta": {f"{size}/{n_user}p": delta
                                for size, n_user, delta in rows}}
        return {"series": series, "rows": rows}

    def report(payload):
        return format_delta_table({(size, n_user): delta
                                   for size, n_user, delta
                                   in payload["rows"]})

    return ExperimentSpec(list(pts.values()), collect, report,
                          Metric("minimum delta", "s",
                                 higher_is_better=False))


@register("fig12", "Fig. 12: estimated minimum delta")
def _build_fig12(profile: Profile) -> ExperimentSpec:
    if profile.name == "paper":
        return fig12_spec()
    return fig12_spec((8 * MiB,), (16, 32, 128), iterations=3, warmup=1)


# ---------------------------------------------------------------- fig13

FIG13_DELTAS = (us(10), us(35), us(100))
FIG13_N_USER = 32


def fig13_spec(sizes, iterations, warmup, deltas=FIG13_DELTAS,
               n_user=FIG13_N_USER) -> ExperimentSpec:
    sizes = list(sizes)
    pts = {(delta, s): _perceived(
        ["timer", {"delay": ms(4), "delta": delta}], n_user, s,
        iterations, warmup) for delta in deltas for s in sizes}

    def collect(res):
        series = {
            f"delta={delta * 1e6:.0f}us": {
                s: res[pts[(delta, s)]]["perceived_bandwidth"]
                for s in sizes}
            for delta in deltas
        }
        return {"series": series}

    def report(payload):
        from repro.bench.perceived import single_thread_line

        return format_bandwidth_series(payload["series"],
                                       reference=single_thread_line())

    return ExperimentSpec(list(pts.values()), collect, report, BANDWIDTH)


@register("fig13", "Fig. 13: perceived bandwidth across a delta window")
def _build_fig13(profile: Profile) -> ExperimentSpec:
    iterations = profile.perceived_iterations if profile.name == "paper" \
        else 4
    warmup = profile.perceived_warmup if profile.name == "paper" else 1
    return fig13_spec(profile.perceived_sizes, iterations, warmup)


# ---------------------------------------------------------------- fig14

#: (label, compute, noise fraction) -> laggard delay of 10/40/400 us.
FIG14_NOISE_POINTS = (
    ("14a: 1ms+1% (10us)", 1e-3, 0.01),
    ("14b: 1ms+4% (40us)", 1e-3, 0.04),
    ("14c: 10ms+4% (400us)", 10e-3, 0.04),
)
FIG14_GRID = (8, 8)
FIG14_N_THREADS = 16
FIG14_TIMER_DELTA = us(8)


def fig14_spec(grid_shape, sizes, noise_points, iter_kwargs,
               n_threads=FIG14_N_THREADS,
               timer_delta=FIG14_TIMER_DELTA) -> ExperimentSpec:
    sizes = list(sizes)
    designs = (("ploggp", PLOGGP),
               ("timer", ["timer", {"delay": ms(4), "delta": timer_delta}]))
    base, ours = {}, {}
    for label, compute, noise in noise_points:
        for s in sizes:
            base[(label, s)] = _sweep(PERSIST, grid_shape, n_threads, s,
                                      compute, noise, iter_kwargs)
            for name, desc in designs:
                ours[(label, name, s)] = _sweep(
                    desc, grid_shape, n_threads, s, compute, noise,
                    iter_kwargs)

    def collect(res):
        series = {}
        for label, _, _ in noise_points:
            for name, _ in designs:
                series[f"{label} {name}"] = {
                    s: res[base[(label, s)]]["mean_comm_time"]
                    / res[ours[(label, name, s)]]["mean_comm_time"]
                    for s in sizes}
        return {"series": series}

    return ExperimentSpec(
        list(base.values()) + list(ours.values()), collect,
        lambda payload: format_speedup_series(payload["series"]), SPEEDUP)


@register("fig14", "Fig. 14: Sweep3D communication speedup")
def _build_fig14(profile: Profile) -> ExperimentSpec:
    if profile.name == "paper":
        return fig14_spec(FIG14_GRID, profile.sweep_sizes,
                          FIG14_NOISE_POINTS, profile.sweep_iter)
    return fig14_spec((4, 4), profile.sweep_sizes, FIG14_NOISE_POINTS[:2],
                      profile.sweep_iter)


# -------------------------------------------------------- ext_ablations

ABL_N_USER = 32
#: Below the ~20 us natural arrival spread of 32 threads at 100 ms
#: compute, so the flush regularly catches non-contiguous holes.
ABL_TIGHT_DELTA = us(5)


def ext_sg_spec(sizes=(8 * MiB, 32 * MiB), iterations=6,
                warmup=2) -> ExperimentSpec:
    sizes = list(sizes)
    pts = {}
    for sg in (False, True):
        name = "sg" if sg else "runs"
        desc = ["timer", {"delay": ms(4), "delta": ABL_TIGHT_DELTA,
                          "scatter_gather": sg}]
        for s in sizes:
            pts[(name, s)] = _perceived(desc, ABL_N_USER, s, iterations,
                                        warmup)

    def collect(res):
        rows = [[name, s, res[pt]["perceived_bandwidth"],
                 res[pt]["wrs_posted"] / (iterations + warmup)]
                for (name, s), pt in pts.items()]
        series = {name: {s: bw for n, s, bw, _ in rows if n == name}
                  for name in ("runs", "sg")}
        return {"series": series, "rows": rows}

    def report(payload):
        rows = [[fmt_bytes(s), name, f"{bw / 2**30:.0f}GiB/s", f"{wrs:.1f}"]
                for name, s, bw, wrs in sorted(payload["rows"],
                                               key=lambda r: r[1])]
        return format_table(["size", "flush", "perceived bw", "WRs/round"],
                            rows)

    return ExperimentSpec(list(pts.values()), collect, report, BANDWIDTH)


def ext_adaptive_spec(size=256 * KiB, iterations=4,
                      warmup=1) -> ExperimentSpec:
    it = dict(iterations=iterations, warmup=warmup)
    grid_shape, n_threads, compute, noise = (4, 4), 16, ms(1), 0.04
    designs = {
        "fixed good (8us)": ["timer", {"delay": ms(4), "delta": us(8)}],
        "fixed bad (200us)": ["timer", {"delay": ms(4), "delta": us(200)}],
        "adaptive (seed 200us)": ["adaptive", {
            "delay": ms(4), "initial_delta": us(200), "alpha": 0.6,
            "margin": 1.5, "min_delta": us(1), "max_delta": us(200)}],
    }
    base = _sweep(PERSIST, grid_shape, n_threads, size, compute, noise, it)
    ours = {name: _sweep(desc, grid_shape, n_threads, size, compute,
                         noise, it)
            for name, desc in designs.items()}

    def collect(res):
        speedups = {name: res[base]["mean_comm_time"]
                    / res[pt]["mean_comm_time"]
                    for name, pt in ours.items()}
        return {"series": {"adaptive ablation": speedups},
                "speedups": speedups}

    def report(payload):
        rows = [[name, f"{v:.3f}x"]
                for name, v in payload["speedups"].items()]
        return format_table(["delta policy", "comm speedup"], rows)

    return ExperimentSpec([base] + list(ours.values()), collect, report,
                          SPEEDUP)


@register("ext_ablations", "Extension: SG-flush and adaptive-delta "
                           "ablations")
def _build_ext_ablations(profile: Profile) -> ExperimentSpec:
    if profile.name == "paper":
        sg = ext_sg_spec()
        adaptive = ext_adaptive_spec(iterations=6)
    else:
        sg = ext_sg_spec((8 * MiB,), iterations=4, warmup=1)
        adaptive = ext_adaptive_spec()

    def collect(res):
        sg_payload = sg.collect(res)
        ad_payload = adaptive.collect(res)
        return {"series": {**sg_payload["series"], **ad_payload["series"]},
                "sg": sg_payload, "adaptive": ad_payload}

    def report(payload):
        return ("-- scatter/gather flush (tight delta forces hole-y "
                "flushes) --\n" + sg.report(payload["sg"])
                + "\n\n-- adaptive delta in the sweep (comm speedup vs "
                  "persist) --\n" + adaptive.report(payload["adaptive"]))

    return ExperimentSpec(sg.points + adaptive.points, collect, report,
                          BANDWIDTH)


# ----------------------------------------------------------- ext_faults

FAULTS_N_USER = 16
FAULTS_TOTAL = 32 * MiB
FAULTS_LOSSES = (0.0, 1e-5, 1e-4, 1e-3)
FAULTS_DESIGNS = (("persist", PERSIST), ("ploggp", PLOGGP),
                  ("timer(3000us)", TIMER_3000US))


def ext_faults_spec(n_user=FAULTS_N_USER, total_bytes=FAULTS_TOTAL,
                    losses=FAULTS_LOSSES, iterations=10,
                    warmup=3) -> ExperimentSpec:
    losses = list(losses)
    pts = {(loss, name): _perceived(desc, n_user, total_bytes, iterations,
                                    warmup, loss=loss)
           for loss in losses for name, desc in FAULTS_DESIGNS}

    def collect(res):
        rows = [[loss, name, res[pt]["perceived_bandwidth"],
                 res[pt]["retransmits"]]
                for (loss, name), pt in pts.items()]
        series = {name: {f"{loss:g}": bw
                         for loss, n, bw, _ in rows if n == name}
                  for name, _ in FAULTS_DESIGNS}
        return {"series": series, "rows": rows}

    def report(payload):
        table = {}
        for loss, name, bw, rexmt in payload["rows"]:
            table.setdefault(loss, {})[name] = (bw, rexmt)
        return faults_table_report(table)

    return ExperimentSpec(list(pts.values()), collect, report, BANDWIDTH)


def faults_table_report(table) -> str:
    """Render ``{loss: {design: (bw, retransmits)}}`` as a table."""
    designs = list(next(iter(table.values())))
    rows = []
    for loss, line in table.items():
        row = [f"{loss:g}"]
        for name in designs:
            bw, rexmt = line[name]
            row.append(f"{fmt_rate(bw)} {rexmt:4d}")
        rows.append(row)
    return format_table(
        ["loss"] + [f"{d} (bw, rexmt)" for d in designs], rows)


@register("ext_faults", "Extension: perceived bandwidth under chunk loss")
def _build_ext_faults(profile: Profile) -> ExperimentSpec:
    if profile.name == "paper":
        return ext_faults_spec()
    return ext_faults_spec(8, 8 * MiB, (0.0, 1e-3), iterations=3, warmup=1)


# ------------------------------------------------------------- ext_halo

HALO_GRID = (8, 8)
HALO_N_THREADS = 16
HALO_SIZES = (64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB)
HALO_SIZES_FAST = (256 * KiB, 1 * MiB)
HALO_TOPOLOGY = ["dragonfly+", {"nodes_per_leaf": 16,
                                "leaves_per_group": 2}]


def ext_halo_spec(grid_shape=HALO_GRID, sizes=HALO_SIZES, iterations=10,
                  warmup=3, topology: Optional[Sequence] = None,
                  n_threads=HALO_N_THREADS) -> ExperimentSpec:
    sizes = list(sizes)
    designs = (("ploggp", PLOGGP),
               ("timer", ["timer", {"delay": ms(4), "delta": us(8)}]))

    def halo_point(module, size):
        params = dict(module=module, grid=list(grid_shape),
                      n_threads=n_threads, face_bytes=size, compute=ms(1),
                      noise_fraction=0.01, iterations=iterations,
                      warmup=warmup)
        if topology is not None:
            params["topology"] = list(topology)
        return Scenario.make("halo", **params)

    base = {s: halo_point(PERSIST, s) for s in sizes}
    ours = {(name, s): halo_point(desc, s)
            for name, desc in designs for s in sizes}

    def collect(res):
        series = {name: {s: res[base[s]]["mean_comm_time"]
                         / res[ours[(name, s)]]["mean_comm_time"]
                         for s in sizes}
                  for name, _ in designs}
        return {"series": series}

    return ExperimentSpec(
        list(base.values()) + list(ours.values()), collect,
        lambda payload: format_speedup_series(payload["series"]), SPEEDUP)


@register("ext_halo", "Extension: halo-exchange pattern speedups")
def _build_ext_halo(profile: Profile) -> ExperimentSpec:
    if profile.name == "paper":
        return ext_halo_spec(topology=HALO_TOPOLOGY)
    return ext_halo_spec((4, 4), HALO_SIZES_FAST, iterations=3, warmup=1)


# ------------------------------------------------------- ext_autotune

AUTOTUNE_N_USER = 32
AUTOTUNE_SIZE = 2 * MiB
AUTOTUNE_COUNTS = (1, 2, 4, 8, 16, 32)
AUTOTUNE_BANDIT_ITERS = 64
#: A δ grossly above the fig11 late-laggard gap (4 ms): the fixed timer
#: never fires (the laggard always completes its group first), so the
#: design degenerates to plain aggregation and the whole laggard group
#: rides the post-laggard critical path.  The tracker re-targets δ to
#: the observed non-laggard spread and restores the early flush.
AUTOTUNE_BAD_DELTA = us(8000)
AUTOTUNE_LAGGARD_SIZE = 32 * MiB


def _autotune_point(autotune: dict, n_user: int, size: int,
                    iterations: int, warmup: int, compute: float = 0.0,
                    noise: float = 0.0) -> Scenario:
    params = dict(autotune=autotune, n_user=n_user, total_bytes=size,
                  iterations=iterations, warmup=warmup)
    if compute:
        params["compute"] = compute
    if noise:
        params["noise_fraction"] = noise
    return Scenario.make("autotune", **params)


def ext_autotune_spec(n_user=AUTOTUNE_N_USER, size=AUTOTUNE_SIZE,
                      bandit_iters=AUTOTUNE_BANDIT_ITERS,
                      laggard_size=AUTOTUNE_LAGGARD_SIZE,
                      laggard_iters=6, table_iters=3,
                      ptp_iter: Optional[Mapping] = None) -> ExperimentSpec:
    """Closed-loop tuning vs. the paper's open-loop optima.

    Three comparisons: (a) fig08's scenario — a bandit exploring
    ``(n_transport, n_qps, δ)`` arms against the brute-force
    tuning-table optimum at the same workload; (b) the same scenario
    under the plan-mutation policy, which searches by rewriting the
    ``repro.plan`` IR instead of sweeping a fixed grid; (c) fig11's
    late-laggard arrival profile — δ retargeting against a mistuned
    fixed-δ timer.  All series are speedups of the adaptive design
    (1.0 = parity with the offline optimum).
    """
    it = dict(ptp_iter or {"iterations": 10, "warmup": 2})
    table_desc = ["tuning_table", {
        "n_user_counts": [n_user], "message_sizes": [size],
        "iterations": table_iters, "warmup": 1}]
    offline = _overhead(table_desc, n_user, size, it)
    bandit = _autotune_point(
        {"policy": "bandit", "counts": list(AUTOTUNE_COUNTS),
         "deltas": [None, us(35)], "bandit_seed": 7},
        n_user, size, bandit_iters, 2)
    mutation = _autotune_point(
        {"policy": "plan_mutation", "deltas": [None, us(35)],
         "bandit_seed": 7},
        n_user, size, bandit_iters, 2)
    fixed = _perceived(
        ["timer", {"delay": ms(4), "delta": AUTOTUNE_BAD_DELTA}],
        n_user, laggard_size, laggard_iters, 2)
    tracker = _autotune_point(
        {"policy": "delta_tracker", "delta": AUTOTUNE_BAD_DELTA,
         "delay": ms(4), "max_delta": AUTOTUNE_BAD_DELTA},
        n_user, laggard_size, laggard_iters, 2,
        compute=PERCEIVED_COMPUTE, noise=PERCEIVED_NOISE)

    def collect(res):
        offline_time = res[offline]["mean_time"]
        b = res[bandit]
        m = res[mutation]
        convergence = offline_time / b["best_plan_time"]
        mutation_convergence = offline_time / m["best_plan_time"]
        tracker_speedup = (res[tracker]["perceived_bandwidth"]
                           / res[fixed]["perceived_bandwidth"])
        series = {
            "bandit vs offline table": {size: convergence},
            "plan mutation vs offline table": {
                size: mutation_convergence},
            "delta tracker vs fixed delta": {
                laggard_size: tracker_speedup},
        }
        return {
            "series": series,
            "bandit": {
                "best_plan": b["best_plan"],
                "best_plan_time": b["best_plan_time"],
                "offline_time": offline_time,
                "converged_round": b["converged_round"],
                "round_times": b["round_times"],
            },
            "mutation": {
                "best_plan": m["best_plan"],
                "best_plan_time": m["best_plan_time"],
                "converged_round": m["converged_round"],
            },
            "laggard": {
                "fixed_bw": res[fixed]["perceived_bandwidth"],
                "tracker_bw": res[tracker]["perceived_bandwidth"],
                "tracker_plan": res[tracker]["best_plan"],
            },
        }

    def report(payload):
        b, lag = payload["bandit"], payload["laggard"]
        m = payload["mutation"]
        conv = list(
            payload["series"]["bandit vs offline table"].values())[0]
        mconv = list(
            payload["series"]["plan mutation vs offline table"].values())[0]
        track = list(
            payload["series"]["delta tracker vs fixed delta"].values())[0]
        plan = b["best_plan"]
        mplan = m["best_plan"]
        rows = [
            ["bandit best plan",
             f"T={plan['n_transport']} QP={plan['n_qps']} "
             f"delta={plan['delta']}"],
            ["bandit best time", fmt_time(b["best_plan_time"])],
            ["offline table time", fmt_time(b["offline_time"])],
            ["convergence (offline/bandit)", f"{conv:.3f}x"],
            ["converged at round", str(b["converged_round"])],
            ["plan-mutation best plan",
             f"T={mplan['n_transport']} QP={mplan['n_qps']} "
             f"delta={mplan['delta']}"],
            ["plan-mutation best time", fmt_time(m["best_plan_time"])],
            ["convergence (offline/mutation)", f"{mconv:.3f}x"],
            ["fixed-delta bandwidth", fmt_rate(lag["fixed_bw"])],
            ["tracker bandwidth", fmt_rate(lag["tracker_bw"])],
            ["tracker speedup", f"{track:.3f}x"],
        ]
        return format_table(["autotune", "value"], rows)

    return ExperimentSpec([offline, bandit, mutation, fixed, tracker],
                          collect, report, SPEEDUP)


@register("ext_autotune", "Extension: closed-loop autotuning vs. "
                          "offline optima")
def _build_ext_autotune(profile: Profile) -> ExperimentSpec:
    if profile.name == "paper":
        return ext_autotune_spec(laggard_iters=10, table_iters=5,
                                 ptp_iter=profile.ptp_iter)
    return ext_autotune_spec(laggard_iters=4, table_iters=3,
                             ptp_iter=profile.ptp_iter)


# ---------------------------------------------------------- ext_stencil

STENCIL_COMPUTE = ms(1)
STENCIL_NOISE = 0.01
STENCIL_FACE = 64 * KiB
STENCIL_PARTITIONS = 32
#: The scaling axis: (grid, threads) pairs — weak scaling over ranks,
#: strong scaling over threads at fixed per-face partition count.
STENCIL_SCALE = (((2, 2), 8), ((4, 4), 8), ((4, 4), 16), ((2, 2, 2), 8))
STENCIL_SCALE_FAST = (((2, 2), 4),)
#: Mixed intra/inter-group placement for the asymmetric-neighbor
#: comparison: on a 4x4 rank grid with 4-node leaves and two leaves per
#: group, row neighbours share a leaf switch while column neighbours
#: cross leaves or groups.
STENCIL_TOPOLOGY = ["dragonfly+", {"nodes_per_leaf": 4,
                                   "leaves_per_group": 2}]
#: Anisotropic faces: the 64 KiB face wants more transport partitions
#: than the 4 KiB face can afford (Table 1 / fig06: T=32 at 4 KiB is
#: *slower* than part_persist), so no single global plan suits both.
STENCIL_ANISO_FACES = (64 * KiB, 4 * KiB)
STENCIL_GLOBAL_PLANS = (2, 8, 32)
STENCIL_BANDIT = {"policy": "bandit", "counts": [2, 8, 32],
                  "deltas": [None], "bandit_seed": 3, "epsilon": 0.3,
                  "decay": 0.85}


def _stencil_point(grid, n_threads: int, face_bytes, it: Mapping,
                   module=None, per_edge: Optional[dict] = None,
                   topology: Optional[Sequence] = None,
                   n_partitions: int = STENCIL_PARTITIONS) -> Scenario:
    params = dict(grid=list(grid), n_threads=n_threads,
                  n_partitions=n_partitions,
                  face_bytes=(face_bytes if isinstance(face_bytes, int)
                              else list(face_bytes)),
                  compute=STENCIL_COMPUTE, noise_fraction=STENCIL_NOISE,
                  iterations=it["iterations"], warmup=it["warmup"])
    if module is not None:
        params["module"] = module
    if per_edge is not None:
        params["per_edge"] = dict(per_edge)
    if topology is not None:
        params["topology"] = list(topology)
    return Scenario.make("stencil", **params)


def ext_stencil_spec(scale=STENCIL_SCALE, face=STENCIL_FACE,
                     scale_iter: Optional[Mapping] = None,
                     asym_iter: Optional[Mapping] = None,
                     global_plans=STENCIL_GLOBAL_PLANS) -> ExperimentSpec:
    """Partitioned neighbor-alltoall stencil: aggregation per edge.

    Two questions: (a) scaling — does native per-edge aggregation beat
    the ``part_persist`` baseline across rank/thread scales on the
    paper-profile stencil; (b) asymmetric neighbors — on a mixed
    intra/inter-group Dragonfly+ layout with anisotropic faces, does an
    autotuned *per-neighbor* plan match or beat every single global
    plan (each edge's bandit converges to its own transport count
    during warmup).
    """
    scale = list(scale)
    scale_it = dict(scale_iter or {"iterations": 6, "warmup": 2})
    # Warmup covers the per-edge bandits' exploration phase, so the
    # measured iterations time the converged plans.
    asym_it = dict(asym_iter or {"iterations": 6, "warmup": 20})

    base = {(tuple(g), t): _stencil_point(g, t, face, scale_it)
            for g, t in scale}
    native = {(tuple(g), t): _stencil_point(g, t, face, scale_it,
                                            module=PLOGGP)
              for g, t in scale}
    asym = dict(grid=(4, 4), n_threads=8, face_bytes=STENCIL_ANISO_FACES,
                topology=STENCIL_TOPOLOGY)
    asym_base = _stencil_point(it=asym_it, **asym)
    asym_global = {
        t: _stencil_point(
            it=asym_it, module=["fixed", {"n_transport": t, "n_qps": 2}],
            **asym)
        for t in global_plans}
    asym_edge = _stencil_point(it=asym_it, per_edge=STENCIL_BANDIT, **asym)

    def label(g, t):
        return f"{'x'.join(map(str, g))} grid, {t}t"

    def collect(res):
        scaling = {
            label(g, t): res[base[(tuple(g), t)]]["mean_comm_time"]
            / res[native[(tuple(g), t)]]["mean_comm_time"]
            for g, t in scale}
        edge_time = res[asym_edge]["mean_comm_time"]
        global_times = {t: res[pt]["mean_comm_time"]
                        for t, pt in asym_global.items()}
        persist_time = res[asym_base]["mean_comm_time"]
        best_t = min(global_times, key=global_times.get)
        series = {
            "native vs persist": scaling,
            "asym: global plan vs persist": {
                f"T={t}": persist_time / v
                for t, v in global_times.items()},
            "asym: per-edge autotuned": {
                "vs persist": persist_time / edge_time,
                "vs best global": global_times[best_t] / edge_time,
            },
        }
        return {
            "series": series,
            "asym": {
                "persist_time": persist_time,
                "global_times": {str(t): v
                                 for t, v in global_times.items()},
                "best_global": best_t,
                "per_edge_time": edge_time,
            },
        }

    def report(payload):
        rows = [[name, f"{v:.3f}x"]
                for name, v in payload["series"]["native vs persist"]
                .items()]
        scaling = format_table(["stencil scale", "native speedup"], rows)
        a = payload["asym"]
        rows = ([["part_persist", fmt_time(a["persist_time"]), ""]]
                + [[f"global T={t}", fmt_time(v),
                    f"{a['persist_time'] / v:.3f}x"]
                   for t, v in a["global_times"].items()]
                + [["per-edge autotuned", fmt_time(a["per_edge_time"]),
                    f"{a['persist_time'] / a['per_edge_time']:.3f}x"]])
        asym_table = format_table(
            ["asymmetric-neighbor design", "comm time", "vs persist"],
            rows)
        return (f"-- scaling (native aggregation vs part_persist) --\n"
                f"{scaling}\n\n-- anisotropic faces on Dragonfly+ "
                f"(per-edge plans) --\n{asym_table}")

    points = (list(base.values()) + list(native.values()) + [asym_base]
              + list(asym_global.values()) + [asym_edge])
    return ExperimentSpec(points, collect, report, SPEEDUP)


@register("ext_stencil", "Extension: partitioned neighbor-alltoall "
                         "stencil with per-edge plans")
def _build_ext_stencil(profile: Profile) -> ExperimentSpec:
    if profile.name == "paper":
        return ext_stencil_spec(
            scale_iter={"iterations": 10, "warmup": 3})
    return ext_stencil_spec(
        scale=STENCIL_SCALE_FAST,
        scale_iter={"iterations": 4, "warmup": 1},
        asym_iter={"iterations": 6, "warmup": 20})


# ----------------------------------------------------- ext_model_vs_sim

MVS_N_USER = 32
MVS_CANDIDATES = (1, 2, 8, 32)
MVS_SIZES = (16 * KiB, 256 * KiB, 2 * MiB, 16 * MiB)


def ext_model_vs_sim_spec(sizes=MVS_SIZES, iterations=20, warmup=3,
                          delay=0.0) -> ExperimentSpec:
    sizes = list(sizes)
    it = dict(iterations=iterations, warmup=warmup)
    pts = {(s, n): _overhead(["fixed", {"n_transport": n, "n_qps": 2}],
                             MVS_N_USER, s, it)
           for s in sizes for n in MVS_CANDIDATES}

    def collect(res):
        from repro.model import completion_time, many_before_one
        from repro.model.tables import NIAGARA_LOGGP

        ready = many_before_one(MVS_N_USER, delay)
        out = {}
        for size in sizes:
            model_times = {
                n: completion_time(NIAGARA_LOGGP, size, n,
                                   ready).completion_time
                for n in MVS_CANDIDATES}
            measured_times = {n: res[pts[(size, n)]]["mean_time"]
                              for n in MVS_CANDIDATES}
            out[size] = {
                "model": sorted(MVS_CANDIDATES, key=model_times.get),
                "measured": sorted(MVS_CANDIDATES,
                                   key=measured_times.get),
                "model_times": model_times,
                "measured_times": measured_times,
            }
        hits = sum(1 for size in out
                   if out[size]["model"][0] == out[size]["measured"][0])
        return {"series": {"winner agreement": {"all": hits / len(out)}},
                "comparison": out}

    def report(payload):
        out = payload["comparison"]
        rows = [[fmt_bytes(size), data["model"][0], data["measured"][0],
                 "agree" if data["model"][0] == data["measured"][0]
                 else "differ"]
                for size, data in out.items()]
        table = format_table(
            ["size", "model's best T", "simulator's best T", ""], rows)
        agreement = payload["series"]["winner agreement"]["all"]
        return (f"{table}\n\nwinner agreement: {agreement:.0%} "
                "(the paper found trends agree, thresholds shift)")

    return ExperimentSpec(list(pts.values()), collect, report,
                          Metric("winner agreement"))


@register("ext_model_vs_sim", "Extension: model-vs-simulator validation")
def _build_ext_model_vs_sim(profile: Profile) -> ExperimentSpec:
    if profile.name == "paper":
        return ext_model_vs_sim_spec()
    return ext_model_vs_sim_spec((16 * KiB, 16 * MiB), iterations=8,
                                 warmup=2)


# ------------------------------------------------------------- ext_fleet

#: Background-tenant counts on the shared spine (0 = quiet fabric).
FLEET_LEVELS = (0, 1, 2)
#: The ranking cells: the paper-style designs whose order flips under
#: contention (quiet-best T=16 loses to T=4 once the spine is busy).
FLEET_DESIGNS = (
    ("persist", PERSIST),
    ("T=4", ["fixed", {"n_transport": 4, "n_qps": 2}]),
    ("T=8", ["fixed", {"n_transport": 8, "n_qps": 2}]),
    ("T=16", ["fixed", {"n_transport": 16, "n_qps": 2}]),
)
#: The multi-tenant mix for the slowdown profile (fits the 8-node
#: fleet fabric under spread placement: 2 + 3 + 2 nodes).
FLEET_MIX = (
    {"name": "pair", "kind": "pair", "n_ranks": 2, "n_partitions": 16,
     "partition_size": 64 * KiB, "iterations": 6, "warmup": 2},
    {"name": "halo", "kind": "halo", "n_ranks": 3, "n_partitions": 8,
     "partition_size": 64 * KiB, "iterations": 6, "warmup": 2},
)
FLEET_NEIGHBOR = {
    "name": "bg0", "kind": "traffic", "n_ranks": 2,
    "traffic": {"kind": "permutation", "nbytes": 256 * KiB,
                "period": us(30), "horizon": ms(2), "seed": 11}}
#: Policy knobs for the live re-convergence probe.  Windowed cost
#: estimates (``window``) are what let both policies forget the quiet
#: regime fast enough to re-rank the plans mid-run.
FLEET_BANDIT = {"policy": "bandit", "counts": [4, 16], "deltas": [None],
                "epsilon": 0.3, "decay": 0.9, "bandit_seed": 3,
                "window": 4}
FLEET_MUTATION = {"policy": "plan_mutation", "deltas": [None],
                  "epsilon": 0.3, "decay": 0.85, "bandit_seed": 7,
                  "expand_after": 3, "max_frontier": 10, "window": 4}


def ext_fleet_spec(levels=FLEET_LEVELS, designs=FLEET_DESIGNS,
                   rank_iter: Optional[Mapping] = None,
                   mix=FLEET_MIX) -> ExperimentSpec:
    """Shared-fabric fleet: contention ranking, tenancy, live re-tuning.

    Three questions on the routed Dragonfly+ fleet fabric: (a) how does
    the fig08-style transport-design ranking change as background
    tenants congest the spine (level 0 = same routed fabric, quiet, so
    the contended cells are directly comparable); (b) what per-job
    slowdowns does a multi-tenant mix suffer vs each job running alone,
    with and without a noisy neighbor; (c) when a neighbor arrives
    mid-run, do the closed-loop autotuners — the bandit and the
    plan-mutation policy — re-converge onto the congested-optimal plan,
    and at what regret.
    """
    levels, designs = list(levels), list(designs)
    it = dict(rank_iter or {"iterations": 6, "warmup": 2})
    rank = {(name, level): Scenario.make(
                "fleet_rank", module=desc, level=level,
                iterations=it["iterations"], warmup=it["warmup"], seed=0)
            for name, desc in designs for level in levels}
    quiet_mix = Scenario.make("fleet", jobs=list(mix),
                              placement="spread", seed=0)
    noisy_mix = Scenario.make("fleet", jobs=list(mix) + [FLEET_NEIGHBOR],
                              placement="spread", seed=0)
    bandit = Scenario.make(
        "fleet_autotune", autotune=FLEET_BANDIT, quiet_rounds=12,
        congested_rounds=24, tail_rounds=8, compute=2e-5, seed=3)
    mutation = Scenario.make(
        "fleet_autotune", autotune=FLEET_MUTATION, quiet_rounds=12,
        congested_rounds=30, tail_rounds=8, compute=2e-5, seed=3)

    def collect(res):
        times = {level: {name: res[rank[(name, level)]]["mean_time"]
                         for name, _ in designs}
                 for level in levels}
        spine = {level: max(res[rank[(name, level)]]["spine_utilization"]
                            for name, _ in designs)
                 for level in levels}
        series = {
            f"{name} vs persist": {
                level: times[level]["persist"] / times[level][name]
                for level in levels}
            for name, _ in designs if name != "persist"
        }
        quiet, noisy = res[quiet_mix], res[noisy_mix]
        series["slowdown, shared mix"] = dict(quiet["slowdowns"])
        series["slowdown, mix + neighbor"] = dict(noisy["slowdowns"])
        auto = {"bandit": res[bandit], "plan_mutation": res[mutation]}
        series["re-convergence rounds"] = {
            policy: data["rounds_to_reconverge"]
            for policy, data in auto.items()}
        return {
            "series": series,
            "ranking": {str(level): {
                "times": times[level],
                "best": min(times[level], key=times[level].get),
                "spine_utilization": spine[level],
            } for level in levels},
            "slowdowns": {"shared": quiet["slowdowns"],
                          "with_neighbor": noisy["slowdowns"]},
            "autotune": {policy: {
                k: data[k] for k in
                ("quiet_best", "congested_best", "plan_changed",
                 "reconverged_round", "rounds_to_reconverge", "regret",
                 "adapted", "quiet_plan_means", "congested_plan_means")
            } for policy, data in auto.items()},
        }

    def report(payload):
        names = [name for name, _ in designs]
        rows = [[level,
                 *(fmt_time(cell["times"][n]) for n in names),
                 cell["best"], f"{cell['spine_utilization']:.0%}"]
                for level, cell in payload["ranking"].items()]
        ranking = format_table(
            ["bg tenants", *names, "best", "spine util"], rows)
        slow = payload["slowdowns"]
        rows = [[job, f"{slow['shared'].get(job, 1.0):.2f}x",
                 f"{slow['with_neighbor'].get(job, 1.0):.2f}x"]
                for job in sorted(slow["shared"])]
        slowdown = format_table(
            ["job", "shared mix", "mix + neighbor"], rows)
        rows = []
        for policy, a in payload["autotune"].items():
            plan = "->".join(
                f"T={p[0]} QP={p[1]}"
                for p in (a["quiet_best"], a["congested_best"]))
            rows.append([
                policy, plan,
                str(a["rounds_to_reconverge"]),
                fmt_time(a["regret"]),
                "yes" if a["adapted"] else "NO"])
        autotune = format_table(
            ["policy", "plan shift", "re-conv rounds", "regret",
             "adapted"], rows)
        return (f"-- transport ranking vs spine contention --\n{ranking}"
                f"\n\n-- per-job slowdown vs isolated baseline --\n"
                f"{slowdown}\n\n-- live re-convergence (neighbor "
                f"arrives mid-run) --\n{autotune}")

    points = (list(rank.values())
              + [quiet_mix, noisy_mix, bandit, mutation])
    return ExperimentSpec(points, collect, report, SPEEDUP)


@register("ext_fleet", "Extension: shared-fabric fleet — contention "
                       "ranking, tenancy, live re-tuning")
def _build_ext_fleet(profile: Profile) -> ExperimentSpec:
    if profile.name == "paper":
        return ext_fleet_spec(rank_iter={"iterations": 10, "warmup": 3})
    return ext_fleet_spec(rank_iter={"iterations": 6, "warmup": 2})


# ----------------------------------------------------------- ext_serve

#: Synthetic service traffic (fast-profile scale in parentheses).
SERVE_CLIENTS = 2000
SERVE_REQUESTS = 20000
SERVE_CLIENTS_FAST = 400
SERVE_REQUESTS_FAST = 4000
SERVE_KEYS = 64
SERVE_ZIPF_S = 1.1
#: Eviction-pressure variant: tiny shard bound forces the
#: confidence-weighted LRU to work.
SERVE_EVICT_BOUND = 4
SERVE_EVICT_SHARDS = 4


def ext_serve_spec(n_clients=SERVE_CLIENTS, n_requests=SERVE_REQUESTS,
                   stress_writers=4, stress_puts=25, cas_puts=15,
                   fleet_iters=24) -> ExperimentSpec:
    """The tuning service under fleet-shaped load.

    Four probes: (a) the serving benchmark — seeded synthetic clients
    with Zipf keys, mixed get/commit, bursty arrivals — measuring the
    cache hit rate and modeled p50/p99 lookup latency; (b) the same
    traffic against a tightly bounded store, exercising the
    confidence-weighted eviction path; (c) the multi-process writer
    stress in both confident-overwrite and compare-and-swap modes,
    whose torn/lost invariants must hold exactly; (d) two fleet
    tenants resolving plans through the service — the warm tenant must
    pin the cold tenant's committed plan (no exploration) and the
    served plan must be bit-identical to a direct store read.

    Latency series are *modeled* (fixed service costs, per-shard FIFO
    queueing), so every series value is a deterministic function of
    the seed; the genuinely nondeterministic stress diagnostics
    (conflict counts, audit read counts) stay out of the series.
    """
    bench = Scenario.make(
        "serve_bench", n_clients=n_clients, n_requests=n_requests,
        n_keys=SERVE_KEYS, zipf_s=SERVE_ZIPF_S, seed=7)
    evict = Scenario.make(
        "serve_bench", n_clients=max(n_clients // 2, 8),
        n_requests=max(n_requests // 2, 64), n_keys=SERVE_KEYS,
        zipf_s=SERVE_ZIPF_S, seed=7, n_shards=SERVE_EVICT_SHARDS,
        max_entries_per_shard=SERVE_EVICT_BOUND,
        cache_capacity=SERVE_EVICT_SHARDS * SERVE_EVICT_BOUND)
    stress = Scenario.make(
        "serve_stress", n_writers=stress_writers, n_puts=stress_puts,
        mode="confident")
    stress_cas = Scenario.make(
        "serve_stress", n_writers=stress_writers, n_puts=cas_puts,
        mode="cas")
    fleet = Scenario.make("serve_fleet", iterations=fleet_iters, seed=0)

    def _integrity(r):
        return 1.0 if (r["lost_updates"] == 0
                       and r["torn_reads"] == 0) else 0.0

    def collect(res):
        b, e, f = res[bench], res[evict], res[fleet]
        cold = f["tenant_mean_iterations"][0]
        warm = f["tenant_mean_iterations"][-1]
        series = {
            "warm-cache hit rate": {n_requests: b["warm_hit_rate"]},
            "overall hit rate": {n_requests: b["hit_rate"]},
            "p50 lookup latency (us)": {
                n_requests: b["p50_latency_us"]},
            "p99 lookup latency (us)": {
                n_requests: b["p99_latency_us"]},
            "bounded-store hit rate": {
                e["n_requests"]: e["hit_rate"]},
            "stress integrity (confident)": {
                stress_writers: _integrity(res[stress])},
            "stress integrity (cas)": {
                stress_writers: _integrity(res[stress_cas])},
            "served plan bit-identical": {
                fleet_iters: 1.0 if f["bit_identical"] else 0.0},
            "warm tenant speedup": {fleet_iters: cold / warm},
        }
        return {
            "series": series,
            "bench": b,
            "eviction": {
                "store_evictions": e["store_evictions"],
                "cache_evictions": e["cache_evictions"],
                "entries": e["entries"],
                "hit_rate": e["hit_rate"],
            },
            # Diagnostics only: scheduling-dependent, never compared.
            "stress": {
                "confident": res[stress],
                "cas": res[stress_cas],
            },
            "fleet": f,
        }

    def report(payload):
        b = payload["bench"]
        e = payload["eviction"]
        sc = payload["stress"]["confident"]
        sx = payload["stress"]["cas"]
        f = payload["fleet"]
        rows = [
            ["clients / requests",
             f"{b['n_clients']} / {b['n_requests']}"],
            ["warm-cache hit rate", f"{b['warm_hit_rate']:.1%}"],
            ["overall hit rate", f"{b['hit_rate']:.1%}"],
            ["p50 / p99 lookup",
             f"{b['p50_latency_us']:.0f} / {b['p99_latency_us']:.0f} us"],
            ["commit conflicts (CAS)", str(b["conflicts"])],
            ["bounded store: evictions",
             f"{e['store_evictions']} (kept {e['entries']})"],
            ["bounded store: hit rate", f"{e['hit_rate']:.1%}"],
            ["stress confident: lost/torn",
             f"{sc['lost_updates']}/{sc['torn_reads']} "
             f"({sc['total_commits']} commits)"],
            ["stress cas: lost/torn",
             f"{sx['lost_updates']}/{sx['torn_reads']} "
             f"({sx['total_conflicts']} conflicts)"],
            ["fleet: warm tenant pinned",
             "yes" if f["warm_skipped_exploration"] else "NO"],
            ["fleet: served == direct read",
             "yes" if f["bit_identical"] else "NO"],
        ]
        return format_table(["serve", "value"], rows)

    return ExperimentSpec([bench, evict, stress, stress_cas, fleet],
                          collect, report,
                          Metric("warm-cache hit rate"))


@register("ext_serve", "Extension: tuning-as-a-service — sharded "
                       "store, cache, concurrent writers")
def _build_ext_serve(profile: Profile) -> ExperimentSpec:
    if profile.name == "paper":
        return ext_serve_spec()
    return ext_serve_spec(n_clients=SERVE_CLIENTS_FAST,
                          n_requests=SERVE_REQUESTS_FAST,
                          stress_writers=3, stress_puts=10, cas_puts=8)
