"""Plan-IR views of registered experiments (``repro-bench plan``).

:func:`experiment_plans` resolves every sweep point of a registered
experiment into the communication plan the transport engine would run
it with: module descriptors are rebuilt
(:func:`repro.exp.modules.build_module`), aggregators are asked for
their ``AggregationPlan`` at the point's workload shape, and the
result goes through :func:`repro.plan.module_plan`.  Plans print
canonically, so the rendered text is stable across runs and doubles
as a golden in CI — a change anywhere in the module → plan → lowering
path shows up as a plan-text diff before it shows up as a timing
regression.
"""

from __future__ import annotations

import difflib
from typing import Optional, Union

from repro.units import fmt_bytes, fmt_time

#: Scenario kinds with no lowered communication plan (pure model or
#: profiling points).
PLANLESS_KINDS = frozenset({"model_curve", "table1", "arrival_profile"})


def _profile(profile):
    if isinstance(profile, str):
        from repro.exp.profiles import get_profile

        return get_profile(profile)
    return profile


def _module_label(desc) -> str:
    """A short, stable name for a module descriptor."""
    if desc is None:
        return "persist"
    name = desc[0]
    params = dict(desc[1]) if len(desc) > 1 and desc[1] else {}
    if name == "fixed":
        return f"fixed(t={params['n_transport']},qp={params['n_qps']})"
    if name == "timer":
        return f"timer(d={fmt_time(params['delta'])})"
    if name == "adaptive":
        return f"adaptive(d={fmt_time(params['initial_delta'])})"
    if name == "autotune":
        return f"autotune[{params.get('policy', 'bandit')}]"
    return name


def _config_for(params: dict):
    from repro.config import NIAGARA
    from repro.exp.modules import build_config

    return build_config(params.get("config")) or NIAGARA


def _add(entries: dict, label: str, module_desc, n_user: int,
         total_bytes: int, params: dict) -> None:
    from repro.exp.modules import build_module
    from repro.plan import module_plan

    plan = module_plan(build_module(module_desc), n_user,
                       max(1, total_bytes // n_user), _config_for(params))
    if label in entries:
        if entries[label].digest == plan.digest:
            return
        # Same label, structurally different plan (two descriptors that
        # abbreviate identically): disambiguate by content digest.
        label = f"{label} #{plan.digest[:6]}"
        if label in entries:
            return
    entries[label] = plan


def experiment_plans(name: str,
                     profile: Union[str, object]) -> list[tuple]:
    """``(label, Plan)`` per distinct workload of an experiment.

    Every sweep point of ``get_experiment(name).build(profile)`` is
    mapped to the plan its module resolves to at that point's workload
    shape.  Points whose kind has no communication plan
    (:data:`PLANLESS_KINDS`) are skipped; points that resolve to the
    same (label, plan) pair dedup to one entry, first-seen order.
    """
    from repro.exp.registry import get_experiment

    profile = _profile(profile)
    spec = get_experiment(name).build(profile)
    entries: dict = {}
    for point in spec.points:
        kind, p = point.kind, point.params
        if kind in PLANLESS_KINDS:
            continue
        if kind in ("overhead", "perceived", "min_delta"):
            module, n, total = p.get("module"), p["n_user"], p["total_bytes"]
        elif kind == "sweep":
            module, n, total = p.get("module"), p["n_threads"], \
                p["total_bytes"]
        elif kind == "halo":
            module, n, total = p.get("module"), p["n_threads"], \
                p["face_bytes"]
        elif kind == "pallreduce":
            module = p.get("module")
            n = p.get("n_partitions") or p["n_threads"]
            total = n * p["partition_size"]
        elif kind == "autotune":
            module, n, total = ["autotune", p["autotune"]], p["n_user"], \
                p["total_bytes"]
        elif kind == "stencil":
            module = (["autotune", p["per_edge"]]
                      if p.get("per_edge") is not None else p.get("module"))
            n = p.get("n_partitions") or p["n_threads"]
            faces = p["face_bytes"]
            faces = [faces] if isinstance(faces, int) else list(faces)
            for face in dict.fromkeys(faces):
                label = (f"stencil {_module_label(module)} parts={n} "
                         f"face={fmt_bytes(face)}")
                _add(entries, label, module, n, face, p)
            continue
        else:  # future kinds: no plan mapping yet, skip rather than fail
            continue
        label = f"{kind} {_module_label(module)} n={n} {fmt_bytes(total)}"
        _add(entries, label, module, n, total, p)
    return list(entries.items())


def render_plans(name: str, profile: Union[str, object]) -> str:
    """The ``repro-bench plan show`` text for one experiment."""
    profile = _profile(profile)
    entries = experiment_plans(name, profile)
    lines = [f"# plans: {name} [{profile.name}] "
             f"({len(entries)} workloads)"]
    for label, plan in entries:
        lines.append("")
        lines.append(f"== {label} [{plan.digest}]")
        lines.append(plan.text)
    return "\n".join(lines) + "\n"


def diff_plans(name_a: str, name_b: str,
               profile_a: Union[str, object],
               profile_b: Optional[Union[str, object]] = None) -> str:
    """Unified diff between two experiments' plan sets ("" = identical).

    Entries are matched by label; matched entries that lower to
    different plans render as a unified diff of their canonical text.
    """
    profile_a = _profile(profile_a)
    profile_b = _profile(profile_b if profile_b is not None else profile_a)
    plans_a = dict(experiment_plans(name_a, profile_a))
    plans_b = dict(experiment_plans(name_b, profile_b))
    tag_a = f"{name_a}[{profile_a.name}]"
    tag_b = f"{name_b}[{profile_b.name}]"
    lines = []
    for label in plans_a:
        if label not in plans_b:
            lines.append(f"- only in {tag_a}: {label}")
    for label in plans_b:
        if label not in plans_a:
            lines.append(f"+ only in {tag_b}: {label}")
    for label, plan in plans_a.items():
        other = plans_b.get(label)
        if other is None or other.digest == plan.digest:
            continue
        lines.append(f"@ {label}: {plan.digest} -> {other.digest}")
        lines.extend(difflib.unified_diff(
            plan.text.splitlines(), other.text.splitlines(),
            fromfile=tag_a, tofile=tag_b, lineterm=""))
    return "\n".join(lines)
