"""The experiment registry: every figure/table as a declarative spec.

An :class:`Experiment` maps a profile (paper-scale or fast) to an
:class:`ExperimentSpec` — the list of sweep points it needs, a
``collect`` function that assembles point results into the figure's
series, and a ``report`` function that renders the classic text table.
The registry is what ``repro-bench bench list|run`` and the thin
``benchmarks/bench_*.py`` scripts drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.exp.profiles import Profile
from repro.exp.spec import Scenario

ResultMap = Mapping[Scenario, dict]


@dataclass(frozen=True)
class Metric:
    """How to read (and compare) an experiment's series values."""

    name: str
    unit: str = ""
    higher_is_better: bool = True


@dataclass
class ExperimentSpec:
    """One concrete, runnable experiment instance."""

    points: list[Scenario]
    #: Assemble the per-point metrics into the experiment payload.  The
    #: payload must be JSON-safe and contain a ``"series"`` mapping of
    #: ``{label: {point-key: number}}`` — the unit ``compare`` diffs.
    collect: Callable[[ResultMap], dict]
    #: Render the payload as the classic text table.
    report: Callable[[dict], str]
    metric: Metric = field(default_factory=lambda: Metric("speedup", "x"))


@dataclass(frozen=True)
class Experiment:
    """A registered experiment: name, title, profile-driven builder."""

    name: str
    title: str
    build: Callable[[Profile], ExperimentSpec]


_REGISTRY: dict[str, Experiment] = {}


def register(name: str, title: str):
    """Decorator registering ``build(profile) -> ExperimentSpec``."""
    def decorate(build: Callable[[Profile], ExperimentSpec]):
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} already registered")
        _REGISTRY[name] = Experiment(name=name, title=title, build=build)
        return build
    return decorate


def get_experiment(name: str) -> Experiment:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; "
                       f"have {', '.join(sorted(_REGISTRY))}") from None


def all_experiments() -> list[Experiment]:
    _ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def experiment_names() -> list[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def _ensure_loaded() -> None:
    # The definitions live in repro.exp.experiments; importing it
    # populates the registry exactly once.
    import repro.exp.experiments  # noqa: F401
