"""The sweep runner: fan points out, cache everything, stay bit-exact.

Every sweep point is self-contained (its own cluster, its own seeded
RNG streams), so the runner is free to execute points in any order in
any process: results are identical whether ``jobs=1`` runs them inline
or ``jobs=N`` fans them across a :class:`ProcessPoolExecutor`.  The
determinism guard in ``tests/test_exp/test_determinism.py`` holds the
runner to that.

With a :class:`~repro.exp.cache.ResultCache` attached, completed
points are persisted as soon as they finish — a killed sweep resumes
re-running only the points that never completed, and repeat runs of an
unchanged tree are pure cache reads.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.exp.cache import ResultCache
from repro.exp.fingerprint import code_fingerprint
from repro.exp.kinds import run_point
from repro.exp.spec import Scenario, dedup


@dataclass
class RunStats:
    """Bookkeeping of one :meth:`Runner.run` call."""

    points: int = 0
    unique: int = 0
    cache_hits: int = 0
    executed: int = 0
    errors: list = field(default_factory=list)


class Runner:
    """Execute scenarios serially or across worker processes."""

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 fingerprint: Optional[str] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 timeout: Optional[float] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.jobs = jobs
        #: Wall-clock watchdog (seconds) on pooled workers: a pass with
        #: no completion inside the budget kills the running workers,
        #: records them in ``last_stats.errors``, and re-runs the
        #: not-yet-started points in a fresh pool.  ``None`` = off.
        self.timeout = timeout
        self.cache = cache
        self.fingerprint = (
            fingerprint if fingerprint is not None
            else (code_fingerprint() if cache is not None else ""))
        self.progress = progress
        self.last_stats = RunStats()

    def _note(self, message: str) -> None:
        if self.progress:
            self.progress(message)

    def run(self, points: Sequence[Scenario]) -> dict[Scenario, dict]:
        """All results, keyed by scenario (duplicates share one entry)."""
        unique = dedup(points)
        stats = RunStats(points=len(points), unique=len(unique))
        self.last_stats = stats
        results: dict[Scenario, dict] = {}
        todo: list[Scenario] = []
        for point in unique:
            cached = (self.cache.get(point.digest(self.fingerprint))
                      if self.cache else None)
            if cached is not None:
                results[point] = cached
                stats.cache_hits += 1
            else:
                todo.append(point)
        if stats.cache_hits:
            self._note(f"{stats.cache_hits}/{len(unique)} points cached")
        if self.jobs == 1 or len(todo) <= 1:
            for i, point in enumerate(todo):
                self._note(f"run {i + 1}/{len(todo)}: {point.kind} "
                           f"{point.key}")
                self._complete(point, run_point(point.as_dict()),
                               results, stats)
        else:
            self._run_pool(todo, results, stats)
        return results

    def _run_pool(self, todo: list[Scenario],
                  results: dict[Scenario, dict], stats: RunStats) -> None:
        queue = list(todo)
        done_count = 0
        while queue:
            queue, done_count = self._pool_pass(queue, results, stats,
                                                done_count, len(todo))

    def _pool_pass(self, queue: list[Scenario],
                   results: dict[Scenario, dict], stats: RunStats,
                   done_count: int, total: int) -> tuple[list, int]:
        """One pool lifetime: run until drained or the watchdog fires.

        Returns the points that still need a (fresh) pool — queued
        behind a hung worker when the watchdog killed the pass — and
        the updated completion count.
        """
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        try:
            pending = {pool.submit(run_point, point.as_dict()): point
                       for point in queue}
            while pending:
                done, _ = wait(pending, timeout=self.timeout,
                               return_when=FIRST_COMPLETED)
                if not done:
                    return self._kill_hung(pool, pending, stats), done_count
                for future in done:
                    point = pending.pop(future)
                    done_count += 1
                    self._note(f"done {done_count}/{total}: "
                               f"{point.kind} {point.key}")
                    self._complete(point, future.result(), results, stats)
            return [], done_count
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _kill_hung(self, pool, pending: dict,
                   stats: RunStats) -> list[Scenario]:
        """Watchdog fired: kill running workers, salvage the queue."""
        survivors = []
        for future, point in pending.items():
            if future.running():
                stats.errors.append({
                    "kind": point.kind,
                    "params": point.params,
                    "error": (f"worker exceeded the {self.timeout}s "
                              "wall-clock watchdog and was killed"),
                })
                self._note(f"WATCHDOG killed {point.kind} {point.key} "
                           f"after {self.timeout}s")
            else:
                future.cancel()
                survivors.append(point)
        for worker in list(pool._processes.values()):
            worker.terminate()
        return survivors

    def _complete(self, point: Scenario, metrics: dict,
                  results: dict[Scenario, dict], stats: RunStats) -> None:
        results[point] = metrics
        stats.executed += 1
        if self.cache is not None:
            self.cache.put(point.digest(self.fingerprint), point,
                           self.fingerprint, metrics)
