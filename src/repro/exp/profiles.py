"""Named workload profiles: paper-scale vs. fast (reduced) presets.

The iteration counts and message-size grids every benchmark shares
live here, once.  ``benchmarks/common.py`` re-exports them under the
historical names; the experiment registry builds each experiment from
whichever profile the caller selects (``repro-bench bench run
--profile paper|fast``).

Iteration counts follow the paper where tractable: point-to-point
micro-benchmarks use 10 warm-up + 100 measured iterations, sweeps use
3 + 10 (Section V-A).  The ``fast`` profile is the reduced preset used
by pytest-benchmark runs, the golden bit-identity guard, and CI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import KiB, MiB


@dataclass(frozen=True)
class Profile:
    """One named set of shared benchmark knobs."""

    name: str
    #: Point-to-point micro-benchmark iterations (Figs. 6-8).
    ptp_iterations: int
    ptp_warmup: int
    #: Sweep/halo pattern iterations (Fig. 14).
    sweep_iterations: int
    sweep_warmup: int
    #: Perceived-bandwidth iterations (Figs. 9-13).
    perceived_iterations: int
    perceived_warmup: int
    #: Message-size grids.
    overhead_sizes: tuple[int, ...]
    perceived_sizes: tuple[int, ...]
    sweep_sizes: tuple[int, ...]

    @property
    def ptp_iter(self) -> dict:
        """Keyword form for ``run_overhead``-style calls."""
        return dict(iterations=self.ptp_iterations, warmup=self.ptp_warmup)

    @property
    def sweep_iter(self) -> dict:
        return dict(iterations=self.sweep_iterations,
                    warmup=self.sweep_warmup)


#: The paper's compute/noise point for Figs. 9-13 (Section V-A).
PERCEIVED_COMPUTE = 100e-3
PERCEIVED_NOISE = 0.04

PAPER = Profile(
    name="paper",
    ptp_iterations=100, ptp_warmup=10,
    sweep_iterations=10, sweep_warmup=3,
    perceived_iterations=10, perceived_warmup=3,
    overhead_sizes=(1 * KiB, 4 * KiB, 16 * KiB, 64 * KiB, 128 * KiB,
                    512 * KiB, 2 * MiB, 4 * MiB, 16 * MiB),
    perceived_sizes=(1 * MiB, 4 * MiB, 8 * MiB, 32 * MiB, 128 * MiB),
    sweep_sizes=(64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB, 16 * MiB),
)

FAST = Profile(
    name="fast",
    ptp_iterations=10, ptp_warmup=2,
    sweep_iterations=3, sweep_warmup=1,
    perceived_iterations=5, perceived_warmup=2,
    overhead_sizes=(4 * KiB, 64 * KiB, 512 * KiB, 4 * MiB),
    perceived_sizes=(1 * MiB, 8 * MiB, 32 * MiB),
    sweep_sizes=(256 * KiB, 1 * MiB),
)

PROFILES: dict[str, Profile] = {p.name: p for p in (PAPER, FAST)}


def get_profile(name: str) -> Profile:
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; have {sorted(PROFILES)}") from None
