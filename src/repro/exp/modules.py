"""Declarative descriptors for modules, aggregators and topologies.

Scenarios must be JSON-safe, so live objects (aggregators holding
LogGP tables, topology instances) are described as ``[name, params]``
pairs and rebuilt inside the worker process that executes the point.
The descriptor vocabulary:

======================  ==================================================
``["persist"]``          the ``part_persist`` baseline (module = None)
``["ploggp", p]``        :class:`PLogGPAggregator` (``delay`` seconds)
``["timer", p]``         :class:`TimerPLogGPAggregator` (``delay``,
                         ``delta``, optional ``scatter_gather``)
``["adaptive", p]``      :class:`AdaptiveTimerAggregator` with an
                         :class:`AdaptiveDelta` tuner
``["fixed", p]``         :class:`FixedAggregation` (``n_transport``,
                         ``n_qps``)
``["noagg", p]``         :class:`NoAggregation` (optional ``n_qps``)
``["tuning_table", p]``  :class:`TuningTableAggregator` over a table
                         brute-forced from ``p`` (memoized per process)
``["autotune", p]``      :class:`repro.autotune.AdaptiveAggregator` from
                         :func:`repro.autotune.build_autotuner` (no
                         store — points must stay pure)
======================  ==================================================

All aggregators take the Niagara LogGP calibration
(:data:`repro.model.tables.NIAGARA_LOGGP`), as every benchmark does.
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache
from typing import Any, Optional, Sequence

from repro.exp.spec import canonical
from repro.units import ms


def _params(desc: Sequence[Any]) -> dict:
    return dict(desc[1]) if len(desc) > 1 and desc[1] else {}


@lru_cache(maxsize=None)
def _memoized_tuning_table(key: str):
    """Build (once per process) the brute-force table for a descriptor."""
    import json

    from repro.core.tuning_table import build_tuning_table

    params = json.loads(key)
    return build_tuning_table(
        n_user_counts=list(params["n_user_counts"]),
        message_sizes=list(params["message_sizes"]),
        iterations=params.get("iterations", 5),
        warmup=params.get("warmup", 1),
    )


def build_module(desc: Optional[Sequence[Any]]):
    """Rebuild the module/aggregator a descriptor names.

    Returns ``None`` for the ``part_persist`` baseline, matching the
    convention of :func:`repro.bench.overhead.run_overhead`.
    """
    if desc is None:
        return None
    from repro.core import (
        AdaptiveDelta,
        AdaptiveTimerAggregator,
        FixedAggregation,
        NoAggregation,
        PLogGPAggregator,
        TimerPLogGPAggregator,
        TuningTableAggregator,
    )
    from repro.model.tables import NIAGARA_LOGGP

    name, params = desc[0], _params(desc)
    if name == "persist":
        return None
    if name == "ploggp":
        return PLogGPAggregator(NIAGARA_LOGGP,
                                delay=params.get("delay", ms(4)))
    if name == "timer":
        return TimerPLogGPAggregator(
            NIAGARA_LOGGP,
            delay=params.get("delay", ms(4)),
            delta=params["delta"],
            scatter_gather=params.get("scatter_gather", False))
    if name == "adaptive":
        return AdaptiveTimerAggregator(
            NIAGARA_LOGGP,
            delay=params.get("delay", ms(4)),
            initial_delta=params["initial_delta"],
            adaptive=AdaptiveDelta(
                alpha=params["alpha"], margin=params["margin"],
                min_delta=params["min_delta"],
                max_delta=params["max_delta"]))
    if name == "fixed":
        return FixedAggregation(params["n_transport"], params["n_qps"])
    if name == "noagg":
        return NoAggregation(n_qps=params.get("n_qps"))
    if name == "tuning_table":
        return TuningTableAggregator(_memoized_tuning_table(
            canonical(params)))
    if name == "autotune":
        from repro.autotune import build_autotuner

        return build_autotuner(params)
    raise ValueError(f"unknown module descriptor {desc!r}")


_TOPOLOGIES = {
    "uniform": "UniformTopology",
    "dragonfly+": "DragonflyPlus",
    "dragonfly+routed": "RoutedDragonflyPlus",
}


def build_topology(desc: Optional[Sequence[Any]]):
    """Rebuild a fabric topology from its descriptor (None passthrough)."""
    if desc is None:
        return None
    import repro.ib.topology as topo_mod

    name, params = desc[0], _params(desc)
    try:
        cls = getattr(topo_mod, _TOPOLOGIES[name])
    except KeyError:
        raise ValueError(f"unknown topology descriptor {desc!r}") from None
    return cls(**params)


#: ClusterConfig section name -> config class name, for (de)serializing
#: whole-config overrides through a scenario's JSON params.
_CONFIG_SECTIONS = {
    "nic": "NICConfig",
    "link": "LinkConfig",
    "host": "HostConfig",
    "ucx": "UCXConfig",
    "part": "PartitionedConfig",
    "engine": "EngineConfig",
}


def config_desc(config) -> Optional[dict]:
    """The JSON-safe descriptor of a live ClusterConfig (None passthrough).

    Every section is a frozen dataclass of primitives, so a plain
    ``asdict`` captures the whole configuration losslessly.
    """
    if config is None:
        return None
    return dataclasses.asdict(config)


def build_config(desc: Optional[dict]):
    """Rebuild a ClusterConfig from its descriptor (inverse of above)."""
    if desc is None:
        return None
    import repro.config as config_mod

    kwargs = dict(desc)
    for section, clsname in _CONFIG_SECTIONS.items():
        if section in kwargs:
            kwargs[section] = getattr(config_mod, clsname)(**kwargs[section])
    config = config_mod.ClusterConfig(**kwargs)
    config.validate()
    return config


def topology_desc(topology) -> Optional[list]:
    """The descriptor for a live topology instance (inverse of build)."""
    if topology is None:
        return None
    for name, clsname in _TOPOLOGIES.items():
        if type(topology).__name__ == clsname:
            return [name, dataclasses.asdict(topology)]
    raise ValueError(f"cannot describe topology {topology!r}")
