"""Versioned, machine-readable result artifacts and regression diffing.

:class:`ResultStore` writes each completed experiment twice:

* ``results/<name>.json`` — the full payload (series plus any extra
  tables the experiment collected), and
* ``BENCH_<name>.json`` at the repository top level — the compact
  perf-trajectory artifact CI uploads and diffs.

Both carry ``schema: repro-bench/v1``, the experiment name, profile,
code fingerprint, metric direction, and run bookkeeping, so any two
artifacts are comparable without out-of-band context.

:func:`compare_results` diffs two artifacts and flags every series
value that moved beyond a threshold in the metric's bad direction —
the unit behind ``repro-bench bench compare`` and the CI regression
gate.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Optional

RESULT_SCHEMA = "repro-bench/v1"


class ResultStore:
    """Writes experiment payloads as versioned JSON artifacts."""

    def __init__(self, results_dir: os.PathLike | str = "results",
                 bench_dir: Optional[os.PathLike | str] = "."):
        self.results_dir = pathlib.Path(results_dir)
        self.bench_dir = pathlib.Path(bench_dir) if bench_dir else None

    def write(self, name: str, payload: dict, *, profile: str,
              fingerprint: str, metric: dict,
              stats: Optional[dict] = None,
              elapsed: Optional[float] = None) -> list[pathlib.Path]:
        doc = {
            "schema": RESULT_SCHEMA,
            "experiment": name,
            "profile": profile,
            "created": datetime.datetime.now(
                datetime.timezone.utc).isoformat(timespec="seconds"),
            "code_fingerprint": fingerprint,
            "metric": metric,
            "series": payload.get("series", {}),
        }
        if elapsed is not None:
            doc["elapsed_s"] = round(elapsed, 3)
        if stats:
            doc["run"] = stats
        extra = {k: v for k, v in payload.items() if k != "series"}
        paths = []
        if self.bench_dir is not None:
            paths.append(self._dump(self.bench_dir / f"BENCH_{name}.json",
                                    doc))
        if extra:
            doc = dict(doc, extra=extra)
        paths.insert(0, self._dump(self.results_dir / f"{name}.json", doc))
        return paths

    @staticmethod
    def _dump(path: pathlib.Path, doc: dict) -> pathlib.Path:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return path


def load_result(path: os.PathLike | str) -> dict:
    """Load and sanity-check one result artifact."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != RESULT_SCHEMA:
        raise ValueError(
            f"{path}: not a {RESULT_SCHEMA} artifact "
            f"(schema={doc.get('schema')!r})")
    return doc


@dataclass
class Delta:
    """One compared series value."""

    label: str
    key: str
    old: float
    new: float

    @property
    def change(self) -> float:
        """Relative change of the new value versus the old."""
        if self.old == 0:
            return 0.0
        return (self.new - self.old) / abs(self.old)


@dataclass
class CompareReport:
    """Outcome of diffing two result artifacts."""

    experiment: str
    threshold: float
    regressions: list[Delta] = field(default_factory=list)
    improvements: list[Delta] = field(default_factory=list)
    unchanged: int = 0
    missing: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def format(self) -> str:
        lines = [f"compare {self.experiment}: threshold "
                 f"{self.threshold:.0%}"]
        for delta in self.regressions:
            lines.append(
                f"  REGRESSION {delta.label} @ {delta.key}: "
                f"{delta.old:.6g} -> {delta.new:.6g} "
                f"({delta.change:+.1%})")
        for delta in self.improvements:
            lines.append(
                f"  improved   {delta.label} @ {delta.key}: "
                f"{delta.old:.6g} -> {delta.new:.6g} "
                f"({delta.change:+.1%})")
        for key in self.missing:
            lines.append(f"  MISSING    {key} (present in baseline only)")
        lines.append(
            f"  {self.unchanged} value(s) within threshold; "
            + ("OK" if self.ok else "FAIL"))
        return "\n".join(lines)


def compare_results(new: dict, old: dict,
                    threshold: float = 0.10) -> CompareReport:
    """Flag series values that regressed beyond ``threshold``.

    Direction comes from the *baseline's* metric record: for a
    higher-is-better metric (speedup, bandwidth) a drop is a
    regression; for lower-is-better (times) a rise is.  Keys present
    only in the new artifact are ignored (new coverage is not a
    regression); keys that disappeared are reported as missing.
    """
    metric = old.get("metric", {})
    higher_better = bool(metric.get("higher_is_better", True))
    report = CompareReport(
        experiment=old.get("experiment", "?"), threshold=threshold)
    old_series = old.get("series", {})
    new_series = new.get("series", {})
    for label, old_values in old_series.items():
        new_values = new_series.get(label)
        if new_values is None:
            report.missing.append(label)
            continue
        if not isinstance(old_values, dict):
            old_values, new_values = {"": old_values}, {"": new_values}
        for key, old_value in old_values.items():
            if key not in new_values:
                report.missing.append(f"{label} @ {key}")
                continue
            new_value = new_values[key]
            if not isinstance(old_value, (int, float)) or \
                    not isinstance(new_value, (int, float)):
                continue
            delta = Delta(label=label, key=str(key),
                          old=float(old_value), new=float(new_value))
            worse = delta.new < delta.old if higher_better \
                else delta.new > delta.old
            if abs(delta.change) <= threshold:
                report.unchanged += 1
            elif worse:
                report.regressions.append(delta)
            else:
                report.improvements.append(delta)
    return report
