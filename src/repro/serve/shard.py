"""The sharded backend: many ``TuningStore`` directories, one address.

Entries are routed to a shard by a prefix of their content digest
(:func:`repro.autotune.store.entry_digest`), so the shard of a key is a
pure function of the key — any process, thread, or service replica
computes the same route with no coordination.  Each shard directory is
a plain :class:`~repro.autotune.TuningStore` layout (same schema, same
file naming), which keeps two properties the rest of the repo depends
on:

* a service-served plan is **bit-identical** to what a direct
  ``TuningStore(shard_dir).get(key)`` returns (goldens unchanged);
* store tooling (``repro-bench autotune show``) works on a shard.

On top of that layout this module adds what a *shared* backend needs:

* **monotonic versions** — every entry carries ``"version": n``; each
  successful commit bumps it by one under a per-entry advisory lock.
* **compare-and-swap** — a commit carrying ``expect_version`` is
  rejected (no write, conflict counted) when the entry has moved on;
  a commit without one is a *confident overwrite*: the
  last-confident-writer wins, but still with a monotonic version so
  lost updates are detectable.
* **atomic replace** — readers never see a torn entry: writes land in
  a temp file and ``os.replace`` into place (the multi-process stress
  test in :mod:`repro.serve.stress` holds this to zero torn reads).
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.autotune.policy import PlanChoice
from repro.autotune.store import SCHEMA, entry_digest
from repro.errors import ConfigError, ReproError

try:  # POSIX advisory locks; the CI and dev containers are Linux.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

#: Manifest file pinning the shard geometry of a store root.
MANIFEST = "serve.json"
MANIFEST_SCHEMA = "repro-serve-store/v1"


@dataclass(frozen=True)
class ServedEntry:
    """One versioned entry as the backend returned it."""

    key: dict
    choice: PlanChoice
    version: int
    meta: dict

    def as_dict(self) -> dict:
        return {"key": self.key, "plan": self.choice.as_dict(),
                "version": self.version, "meta": dict(self.meta)}


@dataclass(frozen=True)
class CommitResult:
    """Outcome of one commit attempt.

    ``committed`` is False exactly when a compare-and-swap lost the
    race; ``entry`` is then the *current* (winning) entry so the caller
    can refresh and retry.
    """

    entry: ServedEntry
    committed: bool

    @property
    def conflict(self) -> bool:
        return not self.committed


class ShardedStore:
    """Digest-prefix shards of versioned, TuningStore-compatible entries."""

    #: Shard count used for a fresh root when none is requested.
    DEFAULT_SHARDS = 8

    def __init__(self, root: Union[str, Path],
                 n_shards: Optional[int] = None):
        """Open (or create) a sharded root.

        ``n_shards=None`` adopts the count pinned in the root's
        manifest (or :data:`DEFAULT_SHARDS` for a fresh root); an
        explicit count must match an existing manifest.
        """
        if n_shards is not None and n_shards < 1:
            raise ConfigError(f"need at least one shard, got {n_shards}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.n_shards = self._pin_manifest(n_shards)
        #: Corrupt or alien-schema files seen by this handle's reads.
        self.corrupt_entries = 0
        #: Compare-and-swap rejections served by this handle.
        self.conflicts = 0
        #: Successful commits through this handle.
        self.commits = 0

    # -- layout ---------------------------------------------------------

    def _pin_manifest(self, n_shards: Optional[int]) -> int:
        """Persist (or verify) the root's shard count.

        The shard of a key depends on ``n_shards``; reopening a root
        with a different count would route keys to the wrong shard, so
        the first opener wins and later mismatches are hard errors.
        """
        path = self.root / MANIFEST
        try:
            manifest = json.loads(path.read_text())
        except FileNotFoundError:
            manifest = None
        except (OSError, ValueError) as exc:
            raise ConfigError(f"unreadable shard manifest {path}: {exc}")
        if manifest is None:
            pinned = (n_shards if n_shards is not None
                      else self.DEFAULT_SHARDS)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            with os.fdopen(fd, "w") as fh:
                json.dump({"schema": MANIFEST_SCHEMA,
                           "n_shards": pinned}, fh)
                fh.write("\n")
            os.replace(tmp, path)
            return pinned
        if manifest.get("schema") != MANIFEST_SCHEMA:
            raise ConfigError(
                f"{path} is not a serve-store manifest "
                f"(schema {manifest.get('schema')!r})")
        pinned = int(manifest["n_shards"])
        if n_shards is not None and pinned != n_shards:
            raise ConfigError(
                f"store {self.root} was created with {pinned} shards; "
                f"reopen with n_shards={pinned} (got {n_shards})")
        return pinned

    def shard_of(self, key: dict) -> int:
        """The shard index ``key`` routes to (pure function of the key)."""
        return self.shard_of_digest(entry_digest(key))

    def shard_of_digest(self, digest: str) -> int:
        return int(digest[:8], 16) % self.n_shards

    def shard_root(self, index: int) -> Path:
        """The shard directory (a plain TuningStore layout), created."""
        path = self.root / f"shard-{index:02d}"
        path.mkdir(parents=True, exist_ok=True)
        return path

    def path_for(self, key: dict) -> Path:
        digest = entry_digest(key)
        return self.shard_root(self.shard_of_digest(digest)) \
            / f"{digest}.json"

    @contextmanager
    def _entry_lock(self, path: Path):
        """Per-entry advisory write lock (readers stay lock-free)."""
        lock_path = path.with_suffix(".lock")
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    # -- reads ----------------------------------------------------------

    def _load(self, path: Path) -> Optional[dict]:
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            self.corrupt_entries += 1
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            self.corrupt_entries += 1
            return None
        if payload.get("schema") != SCHEMA:
            self.corrupt_entries += 1
            return None
        return payload

    def _entry(self, payload: dict) -> Optional[ServedEntry]:
        try:
            return ServedEntry(
                key=payload["key"],
                choice=PlanChoice.from_dict(payload["plan"]),
                version=int(payload.get("version", 1)),
                meta=payload.get("meta") or {})
        except (KeyError, TypeError, ValueError, ReproError):
            self.corrupt_entries += 1
            return None

    def read(self, key: dict) -> Optional[ServedEntry]:
        """The current versioned entry for ``key`` (None = miss)."""
        payload = self._load(self.path_for(key))
        if payload is None:
            return None
        return self._entry(payload)

    def get(self, key: dict) -> Optional[PlanChoice]:
        """TuningStore-compatible read (plan only)."""
        entry = self.read(key)
        return entry.choice if entry is not None else None

    # -- writes ---------------------------------------------------------

    def _write(self, path: Path, key: dict, choice: PlanChoice,
               meta: dict, version: int) -> None:
        payload = {
            "schema": SCHEMA,
            "key": key,
            "plan": choice.as_dict(),
            "meta": meta,
            "version": version,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def commit(self, key: dict, choice: PlanChoice,
               meta: Optional[dict] = None,
               expect_version: Optional[int] = None) -> CommitResult:
        """Write ``choice`` under ``key`` with version discipline.

        Without ``expect_version`` this is a confident overwrite (the
        version still advances monotonically).  With one, the write is
        a compare-and-swap: it only lands when the current version
        matches (an absent entry is version 0); otherwise nothing is
        written and the current entry is returned with
        ``committed=False``.
        """
        path = self.path_for(key)
        with self._entry_lock(path):
            payload = self._load(path)
            current = self._entry(payload) if payload is not None else None
            current_version = current.version if current is not None else 0
            if (expect_version is not None
                    and current_version != expect_version):
                self.conflicts += 1
                if current is None:
                    # The entry vanished (evicted/invalidated) under a
                    # CAS writer: surface version 0 so the caller can
                    # re-commit from scratch.
                    current = ServedEntry(key=key, choice=choice,
                                          version=0, meta={})
                return CommitResult(entry=current, committed=False)
            entry = ServedEntry(key=key, choice=choice,
                                version=current_version + 1,
                                meta=dict(meta or {}))
            self._write(path, key, choice, entry.meta, entry.version)
            self.commits += 1
            return CommitResult(entry=entry, committed=True)

    def put(self, key: dict, choice: PlanChoice,
            meta: Optional[dict] = None) -> Path:
        """TuningStore-compatible confident write."""
        self.commit(key, choice, meta=meta)
        return self.path_for(key)

    def delete(self, key: dict) -> bool:
        """Remove ``key``'s entry (and its lock file); True if it existed."""
        return self._delete_path(self.path_for(key))

    def _delete_path(self, path: Path) -> bool:
        with self._entry_lock(path):
            try:
                os.unlink(path)
                existed = True
            except FileNotFoundError:
                existed = False
        try:
            os.unlink(path.with_suffix(".lock"))
        except FileNotFoundError:
            pass
        return existed

    # -- enumeration ----------------------------------------------------

    def shard_digests(self, index: int) -> list[str]:
        """Digests stored in one shard (cheap: file names, no parse)."""
        return sorted(p.stem for p in self.shard_root(index).glob("*.json"))

    def count_shard(self, index: int) -> int:
        return sum(1 for _ in self.shard_root(index).glob("*.json"))

    def count(self) -> int:
        """Total entries across shards (cheap, no parse)."""
        return sum(self.count_shard(i) for i in range(self.n_shards))

    def entries(self) -> list[dict]:
        """Every readable entry payload, shard-major, digest order."""
        out = []
        for i in range(self.n_shards):
            for digest in self.shard_digests(i):
                payload = self._load(self.shard_root(i)
                                     / f"{digest}.json")
                if payload is not None:
                    out.append(payload)
        return out

    def iter_entries(self) -> Iterator[ServedEntry]:
        for payload in self.entries():
            entry = self._entry(payload)
            if entry is not None:
                yield entry

    def purge_plan_space(self, plan_space_digest: str) -> int:
        """Delete every entry keyed to one ``plan_space`` digest.

        The plan-IR digest of the searched plan space (PR7) is part of
        every autotune store key; when a policy's space changes, its
        old digest identifies exactly the entries that can never be
        looked up again.  Returns the number of entries removed.
        """
        removed = 0
        for i in range(self.n_shards):
            shard = self.shard_root(i)
            for digest in self.shard_digests(i):
                path = shard / f"{digest}.json"
                payload = self._load(path)
                if payload is None:
                    continue
                key = payload.get("key") or {}
                if key.get("plan_space") == plan_space_digest:
                    if self._delete_path(path):
                        removed += 1
        return removed

    def __len__(self) -> int:
        return self.count()
