"""The service front: cache + shards + eviction under one lock.

:class:`TuningService` is what a deployment would run as the
long-lived process.  It owns a :class:`~repro.serve.shard.ShardedStore`
and a write-through :class:`~repro.serve.cache.PlanCache`, and adds
the policies a shared backend needs:

* **bounded shards** — each shard holds at most
  ``max_entries_per_shard`` entries.  When a commit would overflow its
  shard, the service evicts the weakest entry first: lowest
  *confidence* (``rounds_observed`` from the autotuner's commit meta),
  then least-recently-accessed, then digest order — so a plan that a
  policy spent many rounds converging on outlives a one-shot guess.
* **plan-space invalidation** — when a policy's searched plan space
  changes, its PR7 plan-IR digest changes with it; purging by the old
  digest removes exactly the entries that can never be looked up again.
* **warm import** — bulk-load an existing flat ``TuningStore``
  directory (or another sharded root) so a new service starts hot.

Access recency is logical (a tick per request), not wall-clock, so
eviction order is deterministic under seeded replay.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Optional, Union

from repro.autotune.policy import PlanChoice
from repro.autotune.store import TuningStore, entry_digest
from repro.errors import ReproError
from repro.serve.cache import PlanCache
from repro.serve.shard import CommitResult, ServedEntry, ShardedStore


class TuningService:
    """Thread-safe plan server over a sharded store."""

    def __init__(self, root: Union[str, Path],
                 n_shards: Optional[int] = None,
                 cache_capacity: int = 1024, negative_ttl: int = 256,
                 max_entries_per_shard: int = 0):
        self.store = ShardedStore(root, n_shards=n_shards)
        self.cache = PlanCache(capacity=cache_capacity,
                               negative_ttl=negative_ttl)
        #: 0 = unbounded; otherwise evict to stay at or under this.
        self.max_entries_per_shard = max_entries_per_shard
        self._lock = threading.RLock()
        #: digest → logical tick of last get/commit (eviction recency).
        self._last_access: dict[str, int] = {}
        self._tick = 0
        self.gets = 0
        self.commit_requests = 0
        self.invalidations = 0
        self.evicted_entries = 0

    # -- reads ----------------------------------------------------------

    def get(self, key: dict) -> Optional[ServedEntry]:
        """The current entry for ``key`` (cache-first), or None."""
        digest = entry_digest(key)
        with self._lock:
            self.gets += 1
            self._touch(digest)
            state, entry = self.cache.lookup(digest)
            if state == "hit":
                return entry
            if state == "negative":
                return None
            entry = self.store.read(key)
            self.cache.fill(digest, entry)
            return entry

    def get_plan(self, key: dict) -> Optional[PlanChoice]:
        entry = self.get(key)
        return entry.choice if entry is not None else None

    # -- writes ---------------------------------------------------------

    def commit(self, key: dict, choice: PlanChoice,
               meta: Optional[dict] = None,
               expect_version: Optional[int] = None) -> CommitResult:
        """Write-through commit (CAS when ``expect_version`` given)."""
        digest = entry_digest(key)
        with self._lock:
            self.commit_requests += 1
            self._touch(digest)
            result = self.store.commit(key, choice, meta=meta,
                                       expect_version=expect_version)
            # Cache the authoritative entry either way: on conflict it
            # is the winner the client should refresh against.
            if result.entry.version > 0:
                self.cache.fill(digest, result.entry)
            if result.committed:
                self._bound_shard(self.store.shard_of_digest(digest),
                                  keep=digest)
            return result

    def _touch(self, digest: str) -> None:
        self._tick += 1
        self._last_access[digest] = self._tick

    def _bound_shard(self, index: int, keep: str) -> None:
        """Evict from one shard until it respects the bound.

        Victim order: lowest confidence, then least recently accessed,
        then digest — deterministic given the request sequence.  The
        just-committed entry (``keep``) is never the victim.
        """
        if self.max_entries_per_shard <= 0:
            return
        while self.store.count_shard(index) > self.max_entries_per_shard:
            candidates = []
            shard = self.store.shard_root(index)
            for digest in self.store.shard_digests(index):
                if digest == keep:
                    continue
                payload = self.store._load(shard / f"{digest}.json")
                meta = (payload or {}).get("meta") or {}
                confidence = int(meta.get("rounds_observed", 0) or 0)
                recency = self._last_access.get(digest, 0)
                candidates.append((confidence, recency, digest))
            if not candidates:
                return
            _, _, victim = min(candidates)
            if self.store._delete_path(shard / f"{victim}.json"):
                self.evicted_entries += 1
            self.cache.invalidate(victim)
            self._last_access.pop(victim, None)

    # -- maintenance ----------------------------------------------------

    def invalidate_plan_space(self, plan_space_digest: str) -> int:
        """Drop every entry tuned against one plan-space digest."""
        with self._lock:
            removed = self.store.purge_plan_space(plan_space_digest)
            # Any of the purged digests may be cached; a targeted
            # invalidation would need digest→key reverse mapping, so a
            # full drop is the simple correct move for a rare event.
            self.cache.clear()
            self.invalidations += removed
            return removed

    def warm(self, source_root: Union[str, Path]) -> int:
        """Bulk-import entries from a flat store or sharded root.

        Existing entries in the service win (a warm import never
        regresses a newer plan).  Returns the number imported.
        """
        source = Path(source_root)
        roots = [source]
        # A sharded root holds its entries one level down.
        roots.extend(sorted(p for p in source.glob("shard-*")
                            if p.is_dir()))
        imported = 0
        with self._lock:
            for root in roots:
                flat = TuningStore(root)
                for payload in flat.entries():
                    key = payload.get("key")
                    if not isinstance(key, dict):
                        continue
                    try:
                        choice = PlanChoice.from_dict(payload["plan"])
                    except (KeyError, TypeError, ValueError, ReproError):
                        continue
                    if self.store.read(key) is not None:
                        continue
                    self.store.commit(key, choice,
                                      meta=payload.get("meta") or {})
                    imported += 1
        return imported

    # -- introspection --------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            shard_counts = [self.store.count_shard(i)
                            for i in range(self.store.n_shards)]
            return {
                "root": str(self.store.root),
                "n_shards": self.store.n_shards,
                "entries": sum(shard_counts),
                "shard_counts": shard_counts,
                "max_entries_per_shard": self.max_entries_per_shard,
                "gets": self.gets,
                "commit_requests": self.commit_requests,
                "commits": self.store.commits,
                "conflicts": self.store.conflicts,
                "corrupt_entries": self.store.corrupt_entries,
                "evicted_entries": self.evicted_entries,
                "invalidations": self.invalidations,
                "cache": self.cache.stats(),
            }
