"""Tuning-as-a-service: a sharded, cached, concurrent-safe plan server.

The PR4 :class:`~repro.autotune.TuningStore` is a single-process
directory of JSON files.  This package productionizes it into the
shared tuned-plan backend the fleet needs — many concurrent experiment
clients querying and committing learned plans against one long-running
service:

* :class:`~repro.serve.shard.ShardedStore` — digest-prefix shards over
  ``TuningStore``-compatible directories, schema-versioned entries with
  monotonic versions, atomic replace + compare-and-swap commits
  (multi-process safe; the stress test proves no torn or lost entries).
* :class:`~repro.serve.cache.PlanCache` — read-mostly LRU with
  hit/miss/stale counters and negative-entry caching to absorb miss
  storms.
* :class:`~repro.serve.service.TuningService` — the thread-safe
  front: write-through cache, bounded entries per shard with
  LRU + confidence-weighted eviction, ``plan_space``-digest
  invalidation, warm-from-store bulk import.
* :class:`~repro.serve.client.ServeClient` — a ``TuningStore``
  duck-type with timeouts, retry/backoff, a circuit breaker, and
  graceful fallback to local exploration when the service is
  unreachable — the PR1/PR6 degradation discipline applied to the
  control plane.  Plug it into
  :func:`~repro.autotune.build_autotuner`/
  :class:`~repro.autotune.AdaptiveAggregator` anywhere a
  ``TuningStore`` is accepted.

Drivers: :func:`~repro.serve.bench.run_serve_bench` (seeded synthetic
client traffic — Zipf keys, mixed get/commit, bursty arrivals),
:func:`~repro.serve.stress.run_multiwriter_stress` (multi-process CAS
safety), and :func:`~repro.serve.fleet.run_served_tenants` (fleet
tenants resolving plans through the service; a warm tenant skips the
exploration a cold one paid for).  See ``docs/SERVE.md``.
"""

from repro.serve.cache import PlanCache
from repro.serve.client import (
    FlakyTransport,
    LocalTransport,
    ServeClient,
    ServeUnavailable,
)
from repro.serve.service import TuningService
from repro.serve.shard import CommitResult, ServedEntry, ShardedStore

__all__ = [
    "CommitResult",
    "FlakyTransport",
    "LocalTransport",
    "PlanCache",
    "ServeClient",
    "ServeUnavailable",
    "ServedEntry",
    "ShardedStore",
    "TuningService",
]
