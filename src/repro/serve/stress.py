"""Multi-process writer stress: prove no torn and no lost entries.

The concurrency claims of :mod:`repro.serve.shard` are OS-level
(``os.replace`` atomicity, ``flock`` exclusion), so they must be
exercised by real *processes*, not threads.  This module is both:

* a writer subprocess (``python -m repro.serve.stress --writer ...``)
  that hammers one key with commits until it has landed its quota;
* a coordinator (:func:`run_multiwriter_stress`, also the default
  ``python -m repro.serve.stress --root ... --writers N`` entry) that
  launches N such writers against one store root, reads the contested
  entry continuously while they run (counting torn reads: a file that
  exists but fails to parse or schema-check), and audits the end
  state.

Invariants audited (the acceptance criteria of ISSUE 10):

* **no torn entries** — every mid-run read of an existing entry file
  parses and schema-checks (``torn_reads == 0``);
* **no lost entries** — the final version equals the total number of
  commits the writers report as successful: every successful commit
  bumped the version exactly once, so none overwrote concurrently
  without noticing (``lost_updates == 0``).

In ``cas`` mode each writer read-modify-writes with
``expect_version``, so conflicts are real rejections and the audit
additionally checks that rejected commits never wrote.  The exact
conflict count depends on OS scheduling and is reported, not asserted.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional

from repro.autotune.policy import PlanChoice
from repro.autotune.store import SCHEMA, workload_key
from repro.serve.shard import ShardedStore

#: The single contested key every stress writer hammers.
STRESS_KEY = workload_key(64, 64 * 4096, "stress", plan_space="stress-v1")


def _stress_choice(writer: int, seq: int) -> PlanChoice:
    """A writer/sequence-identifiable plan (for post-mortem debugging)."""
    return PlanChoice(n_transport=2 ** (writer % 4 + 1),
                      n_qps=seq % 7 + 1, delta=float(writer))


def writer_main(root: str, n_shards: int, writer: int, n_puts: int,
                mode: str) -> dict:
    """Commit ``n_puts`` times to the contested key; report counts."""
    store = ShardedStore(root, n_shards=n_shards)
    committed = 0
    conflicts = 0
    attempts = 0
    while committed < n_puts:
        attempts += 1
        choice = _stress_choice(writer, committed)
        meta = {"writer": writer, "seq": committed}
        if mode == "cas":
            current = store.read(STRESS_KEY)
            expect = current.version if current is not None else 0
            result = store.commit(STRESS_KEY, choice, meta=meta,
                                  expect_version=expect)
        else:
            result = store.commit(STRESS_KEY, choice, meta=meta)
        if result.committed:
            committed += 1
        else:
            conflicts += 1
    return {"writer": writer, "commits": committed,
            "conflicts": conflicts, "attempts": attempts}


def _audit_read(path: Path) -> Optional[bool]:
    """One raw read of the contested file: None=absent, True=clean."""
    try:
        text = path.read_text()
    except FileNotFoundError:
        return None
    except OSError:
        return False
    try:
        payload = json.loads(text)
    except ValueError:
        return False
    return payload.get("schema") == SCHEMA and "version" in payload


def run_multiwriter_stress(root: str, n_writers: int = 4,
                           n_puts: int = 25, mode: str = "confident",
                           n_shards: int = 4,
                           timeout: float = 120.0) -> dict:
    """Launch writer subprocesses; audit torn/lost invariants.

    Returns a result dict whose ``torn_reads`` and ``lost_updates``
    must both be zero for a healthy store.
    """
    store = ShardedStore(root, n_shards=n_shards)
    contested = store.path_for(STRESS_KEY)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    procs = [
        subprocess.Popen(
            [sys.executable, "-m", "repro.serve.stress",
             "--writer", str(w), "--root", root,
             "--n-shards", str(n_shards), "--n-puts", str(n_puts),
             "--mode", mode],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        for w in range(n_writers)
    ]
    # Read the contested entry while the writers race.  Every read of
    # an *existing* file must be clean — os.replace means a reader
    # never observes a half-written entry.
    reads = 0
    torn = 0
    deadline = time.monotonic() + timeout
    while any(p.poll() is None for p in procs):
        if time.monotonic() > deadline:
            for p in procs:
                p.kill()
            raise TimeoutError(f"stress writers exceeded {timeout}s")
        clean = _audit_read(contested)
        if clean is not None:
            reads += 1
            if not clean:
                torn += 1
    reports = []
    for p in procs:
        out, err = p.communicate()
        if p.returncode != 0:
            raise RuntimeError(f"stress writer failed "
                               f"(rc={p.returncode}): {err.strip()}")
        reports.append(json.loads(out))
    total_commits = sum(r["commits"] for r in reports)
    total_conflicts = sum(r["conflicts"] for r in reports)
    final = store.read(STRESS_KEY)
    final_version = final.version if final is not None else 0
    return {
        "mode": mode,
        "n_writers": n_writers,
        "n_puts": n_puts,
        "total_commits": total_commits,
        "total_conflicts": total_conflicts,
        "final_version": final_version,
        # Every successful commit bumps the version by exactly one, so
        # any overwrite that didn't observe its predecessor shows up as
        # a version shortfall.
        "lost_updates": total_commits - final_version,
        "audit_reads": reads,
        "torn_reads": torn,
        "writers": reports,
    }


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="serve-store multi-writer stress "
                    "(--writer is the internal per-writer entry)")
    parser.add_argument("--writer", type=int, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--root", required=True)
    parser.add_argument("--n-shards", type=int, default=4)
    parser.add_argument("--writers", type=int, default=4,
                        help="writer processes to race (coordinator mode)")
    parser.add_argument("--n-puts", "--puts", type=int, default=25,
                        dest="n_puts")
    parser.add_argument("--mode", choices=("confident", "cas"),
                        default="confident")
    args = parser.parse_args(argv)
    if args.writer is not None:
        report = writer_main(args.root, args.n_shards, args.writer,
                             args.n_puts, args.mode)
    else:
        report = run_multiwriter_stress(
            args.root, n_writers=args.writers, n_puts=args.n_puts,
            mode=args.mode, n_shards=args.n_shards)
    json.dump(report, sys.stdout,
              indent=None if args.writer is not None else 2)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
