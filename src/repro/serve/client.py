"""The client side: a ``TuningStore`` duck-type that can lose its server.

:class:`ServeClient` speaks the two-method store protocol the
autotuner already uses (``get(key) → PlanChoice | None``,
``put(key, choice, meta)``), so it plugs into
:func:`~repro.autotune.build_autotuner` /
:class:`~repro.autotune.AdaptiveAggregator` anywhere a
:class:`~repro.autotune.TuningStore` is accepted — plus the richer
versioned calls (``entry``/``commit`` with ``expect_version``) for
callers that want CAS semantics.

Failure discipline (PR1/PR6, applied to the control plane): every call
goes through a bounded retry with multiplicative backoff; exhausted
retries feed a :class:`~repro.engine.watchdog.CircuitBreaker`.  While
the breaker is OPEN the client doesn't even try — a ``get`` returns
None immediately (the autotuner then explores locally, exactly as if
the plan had never been tuned) and a ``put`` is dropped and counted.
After ``cooldown_calls`` skipped calls the breaker enters HALF_OPEN
and the next call probes the service.  A tuning service outage
degrades throughput (plans are re-explored), never correctness.

Transports are injectable: :class:`LocalTransport` wraps an in-process
:class:`~repro.serve.service.TuningService`; :class:`FlakyTransport`
wraps any transport with seeded failure injection for tests and the
``ext_serve`` experiment.  Backoff sleeping is injectable too and
defaults to *no* sleeping, keeping every test and benchmark
deterministic and fast.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.autotune.policy import PlanChoice
from repro.engine.watchdog import HALF_OPEN, OPEN, CircuitBreaker
from repro.errors import TransportError
from repro.serve.service import TuningService
from repro.serve.shard import CommitResult, ServedEntry


class ServeUnavailable(TransportError):
    """The tuning service could not be reached (transport-level)."""


class LocalTransport:
    """In-process transport: direct calls into a :class:`TuningService`."""

    def __init__(self, service: TuningService):
        self.service = service

    def get(self, key: dict) -> Optional[ServedEntry]:
        return self.service.get(key)

    def commit(self, key: dict, choice: PlanChoice,
               meta: Optional[dict] = None,
               expect_version: Optional[int] = None) -> CommitResult:
        return self.service.commit(key, choice, meta=meta,
                                   expect_version=expect_version)


class FlakyTransport:
    """Wrap a transport with seeded, Bernoulli failure injection.

    Each call independently fails with ``p_fail`` (raising
    :class:`ServeUnavailable` *before* reaching the inner transport, so
    a failed commit never half-lands).  ``outage_after`` optionally
    hard-fails every call from the Nth onward — a total outage for
    breaker tests.
    """

    def __init__(self, inner, p_fail: float = 0.0, seed: int = 0,
                 outage_after: Optional[int] = None):
        self.inner = inner
        self.p_fail = p_fail
        self.outage_after = outage_after
        self._rng = np.random.default_rng(seed)
        self.calls = 0
        self.injected_failures = 0

    def _maybe_fail(self, op: str) -> None:
        self.calls += 1
        outage = (self.outage_after is not None
                  and self.calls > self.outage_after)
        if outage or (self.p_fail > 0
                      and self._rng.random() < self.p_fail):
            self.injected_failures += 1
            raise ServeUnavailable(f"injected {op} failure "
                                   f"(call {self.calls})")

    def get(self, key: dict) -> Optional[ServedEntry]:
        self._maybe_fail("get")
        return self.inner.get(key)

    def commit(self, key: dict, choice: PlanChoice,
               meta: Optional[dict] = None,
               expect_version: Optional[int] = None) -> CommitResult:
        self._maybe_fail("commit")
        return self.inner.commit(key, choice, meta=meta,
                                 expect_version=expect_version)


class ServeClient:
    """Retry/backoff + circuit breaker over a serve transport."""

    def __init__(self, transport, retries: int = 2,
                 backoff_base: float = 0.01, backoff_factor: float = 2.0,
                 breaker_threshold: int = 3, cooldown_calls: int = 8,
                 sleep: Optional[Callable[[float], None]] = None):
        self.transport = transport
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        #: None = don't sleep between attempts (deterministic tests).
        self.sleep = sleep
        self.breaker = CircuitBreaker(threshold=breaker_threshold)
        self.cooldown_calls = cooldown_calls
        self._skipped_since_trip = 0
        #: version the service last reported per digest-able key id —
        #: kept by rich callers; the duck-typed put path never CASes.
        self.fallbacks = 0
        self.dropped_puts = 0
        self.transport_errors = 0

    # -- failure discipline ---------------------------------------------

    def _breaker_allows(self) -> bool:
        """False while the breaker holds the line (count the skip)."""
        if self.breaker.state is not OPEN:
            return True
        self._skipped_since_trip += 1
        if self._skipped_since_trip >= self.cooldown_calls:
            self.breaker.begin_probation()
            self._skipped_since_trip = 0
            return True
        return False

    def _call(self, op: Callable):
        """One operation through retry/backoff; raises when exhausted."""
        delay = self.backoff_base
        last_exc: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            try:
                result = op()
            except ServeUnavailable as exc:
                self.transport_errors += 1
                last_exc = exc
                if attempt < self.retries and self.sleep is not None:
                    self.sleep(delay)
                delay *= self.backoff_factor
                continue
            self.breaker.record_success()
            return result
        if self.breaker.state is HALF_OPEN:
            # A failed probe re-opens immediately: the service is
            # known-sick, no grace period.
            self.breaker.state = OPEN
            self.breaker.failures = 0
            self.breaker.trips += 1
        else:
            self.breaker.record_failure()
        raise last_exc  # type: ignore[misc]

    # -- rich (versioned) API -------------------------------------------

    def entry(self, key: dict) -> Optional[ServedEntry]:
        """The versioned entry, or None on miss *or* unreachable service."""
        if not self._breaker_allows():
            self.fallbacks += 1
            return None
        try:
            return self._call(lambda: self.transport.get(key))
        except ServeUnavailable:
            self.fallbacks += 1
            return None

    def commit(self, key: dict, choice: PlanChoice,
               meta: Optional[dict] = None,
               expect_version: Optional[int] = None
               ) -> Optional[CommitResult]:
        """Versioned commit; None when the service is unreachable."""
        if not self._breaker_allows():
            self.dropped_puts += 1
            return None
        try:
            return self._call(lambda: self.transport.commit(
                key, choice, meta=meta, expect_version=expect_version))
        except ServeUnavailable:
            self.dropped_puts += 1
            return None

    # -- TuningStore duck-type ------------------------------------------

    def get(self, key: dict) -> Optional[PlanChoice]:
        """Store-protocol read: the served plan, or None.

        None covers both "never tuned" and "service unreachable" — the
        autotune controller treats either as "explore locally", which
        is exactly the graceful-degradation contract.
        """
        entry = self.entry(key)
        return entry.choice if entry is not None else None

    def put(self, key: dict, choice: PlanChoice,
            meta: Optional[dict] = None) -> Optional[CommitResult]:
        """Store-protocol confident write (dropped+counted on outage)."""
        return self.commit(key, choice, meta=meta)

    # -- introspection --------------------------------------------------

    def stats(self) -> dict:
        return {
            "breaker_state": self.breaker.state,
            "breaker_trips": self.breaker.trips,
            "transport_errors": self.transport_errors,
            "fallbacks": self.fallbacks,
            "dropped_puts": self.dropped_puts,
        }
