"""Read-mostly LRU plan cache with negative entries.

The service's traffic is read-dominated: a tenant asks for its plan
once per job start, and only the cold minority that explored commits a
write.  The cache therefore optimizes for the hit path (an
``OrderedDict`` move-to-end) and for *miss storms*: when a popular key
has no tuned plan yet, every cold client would otherwise fall through
to a disk read that still finds nothing.  Negative entries remember
"this key had no plan as of tick T" for a bounded number of logical
ticks, so a thundering herd of identical misses costs one backend read
per TTL window instead of one per client.

Time is logical (a tick per cache operation), never wall-clock — the
serve benchmarks must stay deterministic under seeded replay.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.errors import ConfigError
from repro.serve.shard import ServedEntry

#: Sentinel stored for cached misses (negative entries).
_NEGATIVE = None


class PlanCache:
    """Bounded LRU over digest → :class:`ServedEntry` (or cached miss).

    ``capacity`` bounds positive+negative entries together; the
    least-recently-used entry of either kind is evicted first.
    Negative entries additionally expire after ``negative_ttl`` logical
    ticks so a freshly committed plan is not shadowed by an old miss
    for long.
    """

    def __init__(self, capacity: int = 1024, negative_ttl: int = 256):
        if capacity < 1:
            raise ConfigError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.negative_ttl = negative_ttl
        self._entries: OrderedDict[str, Optional[ServedEntry]] = OrderedDict()
        self._negative_born: dict[str, int] = {}
        self.tick = 0
        self.hits = 0
        self.misses = 0
        self.negative_hits = 0
        self.stale_hits = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def lookup(self, digest: str):
        """One cached read.  Returns ``(state, entry)``.

        ``state`` is ``"hit"`` (entry present), ``"negative"`` (a
        live cached miss; caller should *not* fall through to the
        backend), or ``"miss"`` (unknown or expired — go to the
        backend and :meth:`fill` the answer).
        """
        self.tick += 1
        if digest not in self._entries:
            self.misses += 1
            return "miss", None
        value = self._entries[digest]
        if value is _NEGATIVE:
            born = self._negative_born.get(digest, self.tick)
            if self.tick - born > self.negative_ttl:
                # Expired negative entry: treat as a stale miss so the
                # backend is consulted again.
                self.stale_hits += 1
                self._drop(digest)
                self.misses += 1
                return "miss", None
            self._entries.move_to_end(digest)
            self.negative_hits += 1
            return "negative", None
        self._entries.move_to_end(digest)
        self.hits += 1
        return "hit", value

    def fill(self, digest: str, entry: Optional[ServedEntry]) -> None:
        """Record a backend answer (``None`` = negative entry)."""
        if digest in self._entries:
            self._drop(digest)
        while len(self._entries) >= self.capacity:
            victim, _ = self._entries.popitem(last=False)
            self._negative_born.pop(victim, None)
            self.evictions += 1
        self._entries[digest] = entry
        if entry is _NEGATIVE:
            self._negative_born[digest] = self.tick

    def invalidate(self, digest: str) -> bool:
        """Forget one digest (e.g. after an external write); True if held."""
        if digest in self._entries:
            self._drop(digest)
            return True
        return False

    def _drop(self, digest: str) -> None:
        del self._entries[digest]
        self._negative_born.pop(digest, None)

    def clear(self) -> None:
        self._entries.clear()
        self._negative_born.clear()

    def stats(self) -> dict:
        lookups = self.hits + self.misses + self.negative_hits
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "negative_entries": sum(
                1 for v in self._entries.values() if v is _NEGATIVE),
            "hits": self.hits,
            "misses": self.misses,
            "negative_hits": self.negative_hits,
            "stale_hits": self.stale_hits,
            "evictions": self.evictions,
            "hit_rate": (self.hits + self.negative_hits) / lookups
            if lookups else 0.0,
        }
