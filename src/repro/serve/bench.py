"""Seeded synthetic client traffic against one tuning service.

``ext_serve``'s workhorse: :func:`run_serve_bench` drives thousands of
simulated clients through a single in-process
:class:`~repro.serve.service.TuningService` with the traffic shape a
fleet produces — **Zipf-distributed keys** (a few hot workloads, a
long cold tail), **mixed get/commit** (reads dominate; a miss makes
the client explore and commit), and **bursty arrivals** (job-start
waves separated by idle gaps).

Everything is deterministic under the seed.  Latency is *modeled*, not
measured: each operation has a fixed service cost (cache hits are
served at the front; backend reads and commits queue FIFO per shard),
and arrivals advance on a fixed burst/idle clock — so p50/p99 are
exact functions of the request sequence and can be golden-checked,
while still showing the real phenomena (queueing under bursts, misses
costing an order of magnitude more than hits).
"""

from __future__ import annotations

import tempfile
from typing import Optional

import numpy as np

from repro.autotune.policy import PlanChoice
from repro.autotune.store import workload_key
from repro.serve.service import TuningService

#: Modeled service costs, microseconds.
CACHE_HIT_US = 2.0
BACKEND_READ_US = 25.0
COMMIT_US = 60.0

#: Arrival clock: requests inside a burst, gap between bursts.
BURST_INTERARRIVAL_US = 5.0
IDLE_GAP_US = 500.0

#: Plan space tag baked into every bench key.
PLAN_SPACE = "serve-bench/v1"


def _bench_key(k: int) -> dict:
    """The k-th synthetic workload key (distinct, canonical)."""
    n_user = 2 ** (k % 6 + 3)
    return workload_key(n_user, n_user * 4096, f"bench-{k // 6}",
                        plan_space=PLAN_SPACE)


def _bench_choice(k: int) -> PlanChoice:
    """The plan a client commits for key ``k`` after exploring."""
    return PlanChoice(n_transport=2 ** (k % 4 + 1), n_qps=k % 5 + 1,
                      delta=float(k % 3) if k % 3 else None)


def _zipf_probs(n_keys: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n_keys + 1, dtype=float)
    weights = ranks ** -s
    return weights / weights.sum()


def run_serve_bench(n_clients: int = 400, n_requests: int = 4000,
                    n_keys: int = 64, zipf_s: float = 1.1,
                    p_commit: float = 0.08, burst_len: int = 32,
                    seed: int = 0, n_shards: int = 8,
                    cache_capacity: int = 1024,
                    negative_ttl: int = 256,
                    max_entries_per_shard: int = 0,
                    root: Optional[str] = None) -> dict:
    """Drive seeded synthetic traffic; return metrics (deterministic).

    ``root=None`` serves out of a temporary directory destroyed on
    return, which keeps experiment points pure functions of their
    scenario.
    """
    if root is None:
        with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
            return run_serve_bench(
                n_clients=n_clients, n_requests=n_requests,
                n_keys=n_keys, zipf_s=zipf_s, p_commit=p_commit,
                burst_len=burst_len, seed=seed, n_shards=n_shards,
                cache_capacity=cache_capacity,
                negative_ttl=negative_ttl,
                max_entries_per_shard=max_entries_per_shard, root=tmp)

    rng = np.random.default_rng(seed)
    service = TuningService(root, n_shards=n_shards,
                            cache_capacity=cache_capacity,
                            negative_ttl=negative_ttl,
                            max_entries_per_shard=max_entries_per_shard)
    keys = [_bench_key(k) for k in range(n_keys)]
    probs = _zipf_probs(n_keys, zipf_s)
    key_draws = rng.choice(n_keys, size=n_requests, p=probs)
    client_draws = rng.integers(0, n_clients, size=n_requests)
    op_draws = rng.random(n_requests)

    #: client → key index → last version that client observed.
    seen: list[dict[int, int]] = [dict() for _ in range(n_clients)]
    shard_free = np.zeros(n_shards)
    latencies = np.empty(n_requests)
    cache_served = np.zeros(n_requests, dtype=bool)
    conflicts = 0
    commits = 0
    now = 0.0

    for i in range(n_requests):
        # Bursty arrival clock: tight inter-arrivals inside a burst,
        # an idle gap between bursts (shard queues drain in the gap).
        now += IDLE_GAP_US if (i and i % burst_len == 0) \
            else BURST_INTERARRIVAL_US
        k = int(key_draws[i])
        client = int(client_draws[i])
        key = keys[k]
        shard = service.store.shard_of(key)
        hits_before = (service.cache.hits + service.cache.negative_hits)
        if op_draws[i] < p_commit:
            # The client commits the plan its exploration converged on,
            # CAS-guarded by the version it last saw — stale views are
            # real conflicts, exactly as in a shared deployment.
            expect = seen[client].get(k, 0)
            result = service.commit(
                key, _bench_choice(k),
                meta={"rounds_observed": k % 9 + 1, "client": client},
                expect_version=expect)
            if result.committed:
                commits += 1
            else:
                conflicts += 1
            seen[client][k] = result.entry.version
            start = max(now, shard_free[shard])
            latencies[i] = (start - now) + COMMIT_US
            shard_free[shard] = start + COMMIT_US
        else:
            entry = service.get(key)
            if entry is not None:
                seen[client][k] = entry.version
            from_cache = (service.cache.hits
                          + service.cache.negative_hits) > hits_before
            cache_served[i] = from_cache
            if from_cache:
                latencies[i] = CACHE_HIT_US
            else:
                start = max(now, shard_free[shard])
                latencies[i] = (start - now) + BACKEND_READ_US
                shard_free[shard] = start + BACKEND_READ_US

    is_get = op_draws >= p_commit
    n_gets = int(is_get.sum())
    warm = is_get.copy()
    warm[: n_requests // 2] = False
    n_warm = int(warm.sum())
    stats = service.stats()
    return {
        "n_clients": n_clients,
        "n_requests": n_requests,
        "n_keys": n_keys,
        "zipf_s": zipf_s,
        "gets": n_gets,
        "commits": commits,
        "conflicts": conflicts,
        "hit_rate": float(cache_served[is_get].mean()) if n_gets else 0.0,
        "warm_hit_rate": float(cache_served[warm].mean())
        if n_warm else 0.0,
        "negative_hits": stats["cache"]["negative_hits"],
        "cache_evictions": stats["cache"]["evictions"],
        "store_evictions": stats["evicted_entries"],
        "entries": stats["entries"],
        "p50_latency_us": float(np.percentile(latencies, 50)),
        "p99_latency_us": float(np.percentile(latencies, 99)),
        "mean_latency_us": float(latencies.mean()),
        "max_latency_us": float(latencies.max()),
    }
