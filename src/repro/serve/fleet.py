"""Fleet tenants resolving their plans through the tuning service.

The demand side of :mod:`repro.serve`: :func:`run_served_tenants` runs
a sequence of fleet tenants (each a partitioned pair on the routed
fabric, exactly a PR9 ``JobSpec``) whose autotuners share one
:class:`~repro.serve.service.TuningService` through per-tenant
:class:`~repro.serve.client.ServeClient` handles.

Tenant #1 arrives cold: its controller explores, converges, and
commits the learned plan to the service.  Tenant #2 (same workload,
same cluster, possibly a different policy seed) finds the entry and
pins it — zero exploration rounds, first-round-optimal — which is the
entire point of tuning-as-a-service: exploration cost is paid once per
``(workload, cluster)`` key fleet-wide, not once per tenant.

The run also audits the bit-identity acceptance criterion: the plan a
tenant gets through the service stack (client → cache → shard) must
equal, field for field, what a plain
:class:`~repro.autotune.TuningStore` opened directly on the shard
directory returns for the same key.
"""

from __future__ import annotations

from typing import Optional

from repro.autotune import TuningStore, build_autotuner
from repro.config import ClusterConfig
from repro.fleet.run import default_topology
from repro.fleet.spec import JobSpec
from repro.fleet.tenancy import TenantScheduler
from repro.serve.client import LocalTransport, ServeClient
from repro.serve.service import TuningService
from repro.units import KiB

#: A small arm set that converges and commits within a short run.
SERVED_BANDIT = {"policy": "bandit", "counts": [4, 16], "deltas": [None],
                 "epsilon": 0.3, "decay": 0.9, "bandit_seed": 3,
                 "config_tag": "fleet"}


def run_served_tenants(root: str,
                       autotune_params: Optional[dict] = None,
                       n_tenants: int = 2,
                       n_partitions: int = 16,
                       partition_size: int = 64 * KiB,
                       iterations: int = 24,
                       seed: int = 0,
                       n_shards: int = 4,
                       config: Optional[ClusterConfig] = None) -> dict:
    """Run ``n_tenants`` identical tenants against one service.

    Tenants run sequentially (each is a separate job arrival) against
    a service rooted at ``root``.  Returns per-tenant trajectories and
    the service/bit-identity audit.
    """
    params = dict(autotune_params or SERVED_BANDIT)
    service = TuningService(root, n_shards=n_shards)
    tenants = []
    store_key = None
    for t in range(n_tenants):
        client = ServeClient(LocalTransport(service))
        agg = build_autotuner(dict(params), store=client)
        job = JobSpec(name="mpi", kind="pair", n_ranks=2,
                      n_partitions=n_partitions,
                      partition_size=partition_size,
                      iterations=iterations, warmup=0)
        scheduler = TenantScheduler([job], default_topology(),
                                    config=config, placement="spread",
                                    seed=seed,
                                    module_overrides={"mpi": agg})
        profile = scheduler.run()
        controller = agg.controller
        store_key = controller.store_key
        tenants.append({
            "tenant": t,
            "explored": controller.explored,
            "pinned": controller.pinned is not None,
            "best_plan": controller.best_choice.as_dict(),
            "mean_iteration": profile.tenants["mpi"].mean_iteration,
            "client": client.stats(),
        })

    # Bit-identity audit: the served plan vs a direct TuningStore read
    # of the shard directory holding the entry.
    audit_client = ServeClient(LocalTransport(service))
    served = audit_client.get(store_key)
    shard_dir = service.store.shard_root(service.store.shard_of(store_key))
    direct = TuningStore(shard_dir).get(store_key)
    bit_identical = (served is not None and direct is not None
                     and served.as_dict() == direct.as_dict())
    return {
        "tenants": tenants,
        "store_key": store_key,
        "served_plan": served.as_dict() if served is not None else None,
        "direct_plan": direct.as_dict() if direct is not None else None,
        "bit_identical": bit_identical,
        "warm_skipped_exploration": (
            len(tenants) >= 2
            and tenants[0]["explored"]
            and tenants[-1]["pinned"]
            and not tenants[-1]["explored"]),
        "service": service.stats(),
    }
