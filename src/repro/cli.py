"""Command-line interface: run reproduction experiments from the shell.

Installed as ``repro-bench`` (or ``python -m repro.cli``)::

    repro-bench table1
    repro-bench model --delay-ms 4
    repro-bench overhead --n-user 32 --sizes 64KiB,512KiB,4MiB
    repro-bench perceived --n-user 32 --sizes 8MiB,32MiB
    repro-bench sweep --grid 4x4 --sizes 256KiB,1MiB --noise 0.01
    repro-bench stencil --grid 4x4 --faces 64KiB,4KiB --aggregator per-edge
    repro-bench netgauge --sizes 4KiB,64KiB,1MiB
    repro-bench tuning-table --n-user 16 --sizes 64KiB,1MiB
    repro-bench autotune tune --sizes 256KiB,2MiB --store results/store
    repro-bench autotune show --store results/store
    repro-bench serve stats --root results/serve-store
    repro-bench serve warm --root results/serve-store --source results/store
    repro-bench serve bench --clients 400 --requests 4000 --zipf 1.1
    repro-bench chaos --runs 50 --seed 7 --ladder --bundle-dir results/chaos
    repro-bench fleet rank --levels 0,1,2 --transports 4,8,16
    repro-bench fleet profile --jobs pair:2,halo:3 --background 1
    repro-bench fleet retune --policy bandit --trajectory

The registered paper experiments run through the ``bench`` group
(see ``docs/BENCHMARKS.md``)::

    repro-bench bench list
    repro-bench bench run fig06 fig08 --profile fast --jobs 4
    repro-bench bench compare BENCH_fig06.json baseline/BENCH_fig06.json

and the ``plan`` group renders the communication-plan IR each
experiment's points lower to (see ``docs/PLAN_IR.md``)::

    repro-bench plan show fig08 --profile fast
    repro-bench plan diff fig08 --baseline-profile paper
    repro-bench plan diff ext_stencil ext_autotune

Sizes accept ``B``/``KiB``/``MiB``/``GiB`` suffixes.  Results print as
the same plain-text tables the ``benchmarks/`` scripts emit; ``bench
run`` additionally writes versioned JSON artifacts.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.units import KiB, MiB, GiB, fmt_bytes, fmt_time, ms, us


def parse_size(text: str) -> int:
    """'64KiB' -> 65536."""
    text = text.strip()
    for suffix, mult in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB), ("B", 1)):
        if text.endswith(suffix):
            return int(float(text[: -len(suffix)]) * mult)
    return int(text)


def parse_sizes(text: str) -> list[int]:
    return [parse_size(part) for part in text.split(",") if part.strip()]


def parse_grid(text: str) -> tuple[int, int]:
    px, _, py = text.partition("x")
    return int(px), int(py)


def parse_dims(text: str) -> tuple[int, ...]:
    """'2x2x2' -> (2, 2, 2)."""
    return tuple(int(part) for part in text.split("x") if part)


def _aggregator(name: str, delay: float, delta: float):
    from repro.core import (
        NoAggregation,
        PLogGPAggregator,
        TimerPLogGPAggregator,
    )
    from repro.model.tables import NIAGARA_LOGGP

    if name == "ploggp":
        return PLogGPAggregator(NIAGARA_LOGGP, delay=delay)
    if name == "timer":
        return TimerPLogGPAggregator(NIAGARA_LOGGP, delay=delay, delta=delta)
    if name == "none":
        return NoAggregation()
    raise SystemExit(f"unknown aggregator {name!r}")


def cmd_table1(args) -> int:
    from repro.bench.reporting import format_table
    from repro.model.tables import TABLE1_PAPER, generate_table1

    got = generate_table1()
    rows = [[fmt_bytes(size), want, got[size],
             "ok" if got[size] == want else "MISMATCH"]
            for size, want in TABLE1_PAPER.items()]
    print(format_table(["aggregate size", "paper", "model", ""], rows))
    return 0 if all(got[s] == w for s, w in TABLE1_PAPER.items()) else 1


def cmd_model(args) -> int:
    from repro.bench.reporting import format_table
    from repro.model import model_curve
    from repro.model.tables import NIAGARA_LOGGP

    counts = [1, 2, 4, 8, 16, 32]
    sizes = parse_sizes(args.sizes)
    curves = {
        n: model_curve(NIAGARA_LOGGP, sizes, n_transport=n, n_user=n,
                       delay=ms(args.delay_ms))
        for n in counts
    }
    rows = []
    for i, size in enumerate(sizes):
        rows.append([fmt_bytes(size)]
                    + [fmt_time(curves[n][i]) for n in counts])
    print(format_table(["size"] + [f"{n}p" for n in counts], rows))
    return 0


def cmd_overhead(args) -> int:
    from repro.bench.overhead import overhead_speedup_series
    from repro.bench.reporting import format_speedup_series

    agg = _aggregator(args.aggregator, ms(args.delay_ms), us(args.delta_us))
    speedups = overhead_speedup_series(
        agg, n_user=args.n_user, sizes=parse_sizes(args.sizes),
        iterations=args.iterations, warmup=args.warmup)
    print(f"overhead speedup over part_persist, {args.n_user} partitions")
    if args.chart:
        from repro.viz import bar_chart

        print(bar_chart({fmt_bytes(s): round(v, 2)
                         for s, v in speedups.items()},
                        unit="x", reference=1.0))
    else:
        print(format_speedup_series({args.aggregator: speedups}))
    return 0


def cmd_perceived(args) -> int:
    from repro.bench.perceived import (
        run_perceived_bandwidth,
        single_thread_line,
    )
    from repro.bench.reporting import format_bandwidth_series

    designs = {
        "persist": None,
        "ploggp": _aggregator("ploggp", ms(args.delay_ms), 0),
        "timer": _aggregator("timer", ms(args.delay_ms), us(args.delta_us)),
    }
    series = {name: {} for name in designs}
    for size in parse_sizes(args.sizes):
        for name, module in designs.items():
            series[name][size] = run_perceived_bandwidth(
                module, n_user=args.n_user, total_bytes=size,
                compute=ms(args.compute_ms), noise_fraction=args.noise,
                iterations=args.iterations,
                warmup=args.warmup).perceived_bandwidth
    print(f"perceived bandwidth, {args.n_user} partitions, "
          f"{args.compute_ms}ms compute, {args.noise:.0%} noise")
    if args.chart:
        from repro.viz import bar_chart

        for size in parse_sizes(args.sizes):
            print(f"\n{fmt_bytes(size)}:")
            print(bar_chart(
                {name: round(series[name][size] / 2**30, 1)
                 for name in series},
                unit="GiB/s",
                reference=single_thread_line() / 2**30))
    else:
        print(format_bandwidth_series(series, reference=single_thread_line()))
    return 0


def cmd_sweep(args) -> int:
    from repro.bench.reporting import format_speedup_series
    from repro.bench.sweep import run_sweep

    grid = parse_grid(args.grid)
    designs = {
        "ploggp": _aggregator("ploggp", ms(args.delay_ms), 0),
        "timer": _aggregator("timer", ms(args.delay_ms), us(args.delta_us)),
    }
    series = {name: {} for name in designs}
    for size in parse_sizes(args.sizes):
        base = run_sweep(None, grid=grid, n_threads=args.threads,
                         total_bytes=size, compute=ms(args.compute_ms),
                         noise_fraction=args.noise,
                         iterations=args.iterations, warmup=args.warmup)
        for name, module in designs.items():
            ours = run_sweep(module, grid=grid, n_threads=args.threads,
                             total_bytes=size, compute=ms(args.compute_ms),
                             noise_fraction=args.noise,
                             iterations=args.iterations, warmup=args.warmup)
            series[name][size] = base.mean_comm_time / ours.mean_comm_time
    cores = grid[0] * grid[1] * args.threads
    print(f"sweep3d comm speedup over part_persist, {grid[0]}x{grid[1]} "
          f"ranks x {args.threads} threads = {cores} cores")
    if args.chart:
        from repro.viz import grouped_bars

        print(grouped_bars({
            fmt_bytes(size): {name: series[name][size] for name in series}
            for size in parse_sizes(args.sizes)
        }))
    else:
        print(format_speedup_series(series))
    return 0


def cmd_stencil(args) -> int:
    from repro.bench.reporting import format_table
    from repro.coll import per_edge_autotuners, run_stencil

    grid = parse_dims(args.grid)
    faces = parse_sizes(args.faces)
    kwargs = dict(
        grid=grid, n_threads=args.threads, n_partitions=args.partitions,
        face_bytes=(faces[0] if len(faces) == 1 else tuple(faces)),
        compute=ms(args.compute_ms), noise_fraction=args.noise,
        iterations=args.iterations, warmup=args.warmup)
    base = run_stencil(**kwargs)
    if args.aggregator == "per-edge":
        counts = ([c for c in (2, 8, 32) if c <= args.partitions]
                  or [args.partitions])
        params = {"policy": "bandit", "counts": counts,
                  "deltas": [None], "bandit_seed": 3}

        def planner(proc, axes):
            return per_edge_autotuners(params)

        ours = run_stencil(planner=planner, **kwargs)
    else:
        ours = run_stencil(
            module=_aggregator(args.aggregator, ms(args.delay_ms),
                               us(args.delta_us)),
            **kwargs)
    print(f"stencil halo exchange, {'x'.join(map(str, grid))} ranks x "
          f"{args.threads} threads, {args.partitions} partitions/face")
    rows = [
        ["part_persist", fmt_time(base.mean_time),
         fmt_time(base.mean_comm_time), ""],
        [args.aggregator, fmt_time(ours.mean_time),
         fmt_time(ours.mean_comm_time),
         f"{base.mean_comm_time / ours.mean_comm_time:.2f}x"],
    ]
    print(format_table(["design", "iter time", "comm time", "speedup"],
                       rows))
    if args.plans:
        for nbr, desc in sorted(ours.plans.get(0, {}).items()):
            print(f"rank 0 -> rank {nbr}: {desc}")
    return 0


def cmd_netgauge(args) -> int:
    from repro.bench.reporting import format_table
    from repro.model.netgauge import measure_loggp

    table = measure_loggp(sizes=parse_sizes(args.sizes),
                          rounds=args.iterations)
    rows = []
    for size in table.sizes:
        p = table.lookup(size)
        rows.append([fmt_bytes(size), fmt_time(p.L), fmt_time(p.o_s),
                     fmt_time(p.o_r), fmt_time(p.g),
                     f"{p.bandwidth / GiB:.2f}GiB/s"])
    print(format_table(["size", "L", "o_s", "o_r", "g", "1/G"], rows))
    return 0


def cmd_tuning_table(args) -> int:
    from repro.bench.reporting import format_table
    from repro.core.tuning_table import build_tuning_table

    table = build_tuning_table(
        n_user_counts=[args.n_user],
        message_sizes=parse_sizes(args.sizes),
        iterations=args.iterations,
        warmup=args.warmup)
    rows = []
    for (n_user, size), (n_transport, n_qps) in sorted(table.entries.items()):
        rows.append([n_user, fmt_bytes(size), n_transport, n_qps])
    print(format_table(
        ["user partitions", "message size", "transport partitions", "QPs"],
        rows))
    return 0


def cmd_chaos(args) -> int:
    import json
    import os

    from repro.chaos import (
        KINDS,
        CampaignSpec,
        failure_bundle,
        format_campaign,
        run_campaign,
        workload_names,
    )

    workloads = tuple(w.strip() for w in args.workloads.split(",")
                      if w.strip())
    unknown = sorted(set(workloads) - set(workload_names()))
    if unknown:
        raise SystemExit(f"unknown workload(s): {', '.join(unknown)} "
                         f"(have: {', '.join(workload_names())})")
    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    bad = sorted(set(kinds) - set(KINDS))
    if bad:
        raise SystemExit(f"unknown fault kind(s): {', '.join(bad)} "
                         f"(have: {', '.join(KINDS)})")
    spec = CampaignSpec(
        workloads=workloads, runs=args.runs, seed=args.seed, kinds=kinds,
        horizon=ms(args.horizon_ms), module=args.module,
        ladder=args.ladder)
    progress = None if args.quiet else (
        lambda msg: print(f"  {msg}", file=sys.stderr))
    report = run_campaign(spec, progress=progress)
    print(format_campaign(report))
    if args.bundle_dir:
        os.makedirs(args.bundle_dir, exist_ok=True)
        for outcome in report.failures():
            path = os.path.join(
                args.bundle_dir,
                f"chaos-{outcome.workload}-run{outcome.index}.json")
            with open(path, "w") as fh:
                json.dump(failure_bundle(outcome), fh, indent=2,
                          sort_keys=True)
            print(f"wrote {path}")
    return 0 if report.ok else 1


def _fleet_designs(transports: str, n_qps: int) -> list[tuple]:
    designs = [("persist", ("persist",))]
    for part in transports.split(","):
        part = part.strip()
        if not part:
            continue
        t = int(part)
        designs.append((f"T={t}", ("fixed", (("n_qps", n_qps),
                                             ("n_transport", t)))))
    return designs


def cmd_fleet_rank(args) -> int:
    from repro.bench.reporting import format_table
    from repro.fleet import run_contended_pair

    levels = [int(part) for part in args.levels.split(",") if part.strip()]
    designs = _fleet_designs(args.transports, args.qps)
    rows = []
    for level in levels:
        cells = {}
        spine = 0.0
        for name, module in designs:
            res = run_contended_pair(
                module=module, level=level,
                n_partitions=args.partitions,
                partition_size=parse_size(args.partition_size),
                iterations=args.iterations, warmup=args.warmup,
                seed=args.seed)
            cells[name] = res["mean_time"]
            spine = max(spine, res["spine_utilization"])
        best = min(cells, key=cells.get)
        rows.append([level, *(fmt_time(cells[n]) for n, _ in designs),
                     best, f"{spine:.0%}"])
    print(f"partitioned-pair ranking vs spine contention "
          f"({args.partitions}x{args.partition_size} per iteration)")
    print(format_table(
        ["bg tenants", *(n for n, _ in designs), "best", "spine util"],
        rows))
    return 0


def cmd_fleet_profile(args) -> int:
    from repro.bench.reporting import format_table
    from repro.fleet import (
        JobSpec,
        background_jobs,
        run_fleet_with_slowdowns,
    )

    jobs = []
    for i, part in enumerate(spec.strip()
                             for spec in args.jobs.split(",")
                             if spec.strip()):
        kind, _, ranks = part.partition(":")
        jobs.append(JobSpec(
            name=f"{kind}{i}", kind=kind, n_ranks=int(ranks or 2),
            n_partitions=args.partitions,
            partition_size=parse_size(args.partition_size),
            iterations=args.iterations, warmup=args.warmup))
    jobs += background_jobs(args.background, seed=args.seed + 1)
    profile = run_fleet_with_slowdowns(jobs, placement=args.placement,
                                       seed=args.seed)
    rows = []
    for name, view in profile.tenants.items():
        mean = view.mean_iteration
        slow = profile.slowdowns.get(name)
        rows.append([
            name, view.kind, ",".join(str(n) for n in view.nodes),
            fmt_time(mean) if mean is not None else "-",
            f"{slow:.2f}x" if slow is not None else "-",
        ])
    print(f"fleet profile: {len(jobs)} tenants, {args.placement} "
          f"placement, makespan {fmt_time(profile.makespan)}")
    print(format_table(
        ["tenant", "kind", "nodes", "iter time", "slowdown"], rows))
    busiest = ", ".join(f"{name} {util:.0%}"
                        for name, util in profile.busiest_links())
    print(f"busiest links: {busiest}")
    return 0


def cmd_fleet_retune(args) -> int:
    from repro.bench.reporting import format_table
    from repro.fleet import run_reconvergence

    if args.policy == "bandit":
        params = {"policy": "bandit", "counts": [4, 16], "deltas": [None],
                  "epsilon": 0.3, "decay": 0.9, "bandit_seed": 3,
                  "window": args.window}
    else:
        params = {"policy": "plan_mutation", "deltas": [None],
                  "epsilon": 0.3, "decay": 0.85, "bandit_seed": 7,
                  "expand_after": 3, "max_frontier": 10,
                  "window": args.window}
    congested = args.congested_rounds
    if congested is None:
        congested = 24 if args.policy == "bandit" else 30
    res = run_reconvergence(
        params, quiet_rounds=args.quiet_rounds,
        congested_rounds=congested,
        tail_rounds=args.tail_rounds, compute=us(args.compute_us),
        seed=args.seed)

    def plan_str(plan):
        if plan is None:
            return "-"
        t, q, delta = plan
        suffix = f" d={fmt_time(delta)}" if delta is not None else ""
        return f"T={t} QP={q}{suffix}"

    rows = [
        ["quiet-best plan", plan_str(res["quiet_best"])],
        ["congested-best plan", plan_str(res["congested_best"])],
        ["plan changed", "yes" if res["plan_changed"] else "no"],
        ["re-converged at round", str(res["reconverged_round"])],
        ["rounds to re-converge", str(res["rounds_to_reconverge"])],
        ["regret vs congested-best", fmt_time(res["regret"])],
        ["adapted", "yes" if res["adapted"] else "NO"],
    ]
    print(f"live re-tuning [{args.policy}]: neighbor arrives at round "
          f"{res['arrive_round']}, departs at {res['depart_round']}")
    print(format_table(["re-convergence", "value"], rows))
    if args.trajectory:
        rows = [[r["round"],
                 plan_str((r["n_transport"], r["n_qps"], r["delta"])),
                 fmt_time(r["completion_time"])
                 if r["completion_time"] is not None else "-"]
                for r in res["rounds"]]
        print(format_table(["round", "plan", "completion"], rows))
    return 0 if res["adapted"] else 1


def cmd_bench_list(args) -> int:
    from repro.bench.reporting import format_table
    from repro.exp import all_experiments, get_profile
    from repro.exp.profiles import PROFILES

    profiles = sorted(PROFILES)
    rows = []
    for experiment in all_experiments():
        row = [experiment.name, experiment.title, ", ".join(profiles)]
        if args.points:
            for profile in profiles:
                spec = experiment.build(get_profile(profile))
                row.append(len(spec.points))
        rows.append(row)
    headers = ["name", "title", "profiles"]
    if args.points:
        headers += [f"{name} pts" for name in profiles]
    print(format_table(headers, rows))
    return 0


def cmd_autotune_tune(args) -> int:
    from repro.autotune import TuningStore
    from repro.bench.autotune import run_autotuned_pair
    from repro.bench.reporting import format_table

    store = TuningStore(args.store)
    params = {"policy": args.policy, "config_tag": args.config_tag}
    if args.policy == "bandit":
        params["deltas"] = [None, us(args.delta_us)]
        params["bandit_seed"] = args.seed
    else:
        params["delta"] = us(args.delta_us)
    rows = []
    for size in parse_sizes(args.sizes):
        res = run_autotuned_pair(
            params, n_user=args.n_user, total_bytes=size,
            compute=ms(args.compute_ms), noise_fraction=args.noise,
            iterations=args.iterations, warmup=args.warmup, store=store)
        plan = res.best_plan or {}
        delta = plan.get("delta")
        rows.append([
            fmt_bytes(size),
            plan.get("n_transport", "-"),
            plan.get("n_qps", "-"),
            fmt_time(delta) if delta is not None else "-",
            fmt_time(res.best_plan_time) if res.best_plan_time else "-",
            "explored" if res.explored else "replayed",
        ])
    print(f"autotune [{args.policy}], {args.n_user} partitions, "
          f"store {store.root} ({len(store)} entries)")
    print(format_table(
        ["message size", "transport", "QPs", "delta", "round time", ""],
        rows))
    _warn_corrupt(store)
    return 0


def _warn_corrupt(store) -> None:
    """Surface store rot: corrupt entries read as 'never tuned'."""
    if store.corrupt_entries:
        print(f"warning: {store.corrupt_entries} corrupt or "
              f"alien-schema entr"
              f"{'y' if store.corrupt_entries == 1 else 'ies'} in "
              f"{store.root} (skipped; delete or re-tune)",
              file=sys.stderr)


def cmd_autotune_show(args) -> int:
    from repro.autotune import TuningStore
    from repro.bench.reporting import format_table

    store = TuningStore(args.store)
    entries = store.entries()
    if not entries:
        print(f"store {store.root} is empty")
        _warn_corrupt(store)
        return 0
    rows = []
    for payload in entries:
        key, plan = payload["key"], payload["plan"]
        delta = plan.get("delta")
        rows.append([
            key.get("config", "") or "-",
            key.get("n_user", "-"),
            fmt_bytes(key["message_size"]) if "message_size" in key else "-",
            plan.get("n_transport", "-"),
            plan.get("n_qps", "-"),
            fmt_time(delta) if delta is not None else "-",
        ])
    print(format_table(
        ["config", "user partitions", "message size",
         "transport", "QPs", "delta"], rows))
    _warn_corrupt(store)
    return 0


def cmd_serve_stats(args) -> int:
    from repro.bench.reporting import format_table
    from repro.serve import TuningService

    service = TuningService(args.root)
    stats = service.stats()
    rows = [
        ["root", stats["root"]],
        ["shards", str(stats["n_shards"])],
        ["entries", str(stats["entries"])],
        ["shard counts", " ".join(str(c) for c in stats["shard_counts"])],
        ["per-shard bound",
         str(stats["max_entries_per_shard"]) if
         stats["max_entries_per_shard"] else "unbounded"],
        ["commits", str(stats["commits"])],
        ["conflicts", str(stats["conflicts"])],
        ["corrupt entries", str(stats["corrupt_entries"])],
    ]
    print(format_table(["serve store", "value"], rows))
    _warn_corrupt(service.store)
    return 0


def cmd_serve_warm(args) -> int:
    from repro.serve import TuningService

    service = TuningService(args.root)
    imported = service.warm(args.source)
    total = service.store.count()
    print(f"warmed {service.store.root} from {args.source}: "
          f"{imported} imported, {total} total entries")
    return 0


def cmd_serve_bench(args) -> int:
    from repro.bench.reporting import format_table
    from repro.serve.bench import run_serve_bench

    res = run_serve_bench(
        n_clients=args.clients, n_requests=args.requests,
        n_keys=args.keys, zipf_s=args.zipf, seed=args.seed,
        n_shards=args.shards,
        max_entries_per_shard=args.max_per_shard)
    rows = [
        ["clients / requests", f"{res['n_clients']} / "
                               f"{res['n_requests']}"],
        ["keys (zipf s)", f"{res['n_keys']} ({res['zipf_s']})"],
        ["overall hit rate", f"{res['hit_rate']:.1%}"],
        ["warm-cache hit rate", f"{res['warm_hit_rate']:.1%}"],
        ["negative-cache hits", str(res["negative_hits"])],
        ["commits / conflicts",
         f"{res['commits']} / {res['conflicts']}"],
        ["store evictions", str(res["store_evictions"])],
        ["p50 / p99 lookup",
         f"{res['p50_latency_us']:.0f} / "
         f"{res['p99_latency_us']:.0f} us"],
    ]
    print(format_table(["serve bench", "value"], rows))
    return 0


def cmd_bench_run(args) -> int:
    from repro.exp import experiment_names, run_from_options

    names = args.experiments or experiment_names()
    unknown = sorted(set(names) - set(experiment_names()))
    if unknown:
        known = ", ".join(experiment_names())
        raise SystemExit(
            f"unknown experiment(s): {', '.join(unknown)} (have: {known})")
    progress = None if args.quiet else (
        lambda msg: print(f"  {msg}", file=sys.stderr))
    for name in names:
        run = run_from_options(name, args, progress=progress)
        stats = run.stats
        print(f"== {name}: {run.experiment.title} "
              f"[{run.profile.name}] ==")
        print(run.report)
        print(f"({stats.unique} points, {stats.cache_hits} cached, "
              f"{stats.executed} executed, {run.elapsed:.1f}s)")
        for path in run.paths:
            print(f"wrote {path}")
        if run.cpu_profile:
            print(f"wrote {run.cpu_profile} (cProfile; inspect with "
                  f"python -m pstats)")
        print()
    return 0


def _check_experiments(*names) -> None:
    from repro.exp import experiment_names

    unknown = sorted(set(names) - set(experiment_names()))
    if unknown:
        known = ", ".join(experiment_names())
        raise SystemExit(
            f"unknown experiment(s): {', '.join(unknown)} (have: {known})")


def cmd_plan_show(args) -> int:
    from repro.exp import render_plans

    _check_experiments(args.experiment)
    print(render_plans(args.experiment, args.profile), end="")
    return 0


def cmd_plan_diff(args) -> int:
    from repro.exp import diff_plans

    baseline = args.baseline or args.experiment
    _check_experiments(args.experiment, baseline)
    report = diff_plans(args.experiment, baseline, args.profile,
                        args.baseline_profile)
    if not report:
        print("plans identical")
        return 0
    print(report)
    return 1


def cmd_bench_compare(args) -> int:
    from repro.exp import compare_results, load_result

    new = load_result(args.new)
    baseline = load_result(args.baseline)
    if new.get("experiment") != baseline.get("experiment"):
        print(f"warning: comparing {new.get('experiment')!r} against "
              f"baseline {baseline.get('experiment')!r}", file=sys.stderr)
    report = compare_results(new, baseline, threshold=args.threshold)
    print(report.format())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="MPI Partitioned aggregation reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, compute_default=0.0):
        p.add_argument("--iterations", type=int, default=20)
        p.add_argument("--warmup", type=int, default=3)
        p.add_argument("--delay-ms", type=float, default=4.0,
                       help="PLogGP model delay input (ms)")
        p.add_argument("--delta-us", type=float, default=35.0,
                       help="timer aggregator delta (us)")
        p.add_argument("--chart", action="store_true",
                       help="render unicode bars instead of a table")

    p = sub.add_parser("table1", help="reproduce Table I")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("model", help="PLogGP model curves (Fig. 3)")
    p.add_argument("--sizes", default="16KiB,256KiB,4MiB,64MiB,256MiB")
    p.add_argument("--delay-ms", type=float, default=4.0)
    p.set_defaults(func=cmd_model)

    p = sub.add_parser("overhead", help="overhead benchmark (Figs. 6-8)")
    p.add_argument("--n-user", type=int, default=32)
    p.add_argument("--sizes", default="4KiB,64KiB,512KiB,4MiB")
    p.add_argument("--aggregator", default="ploggp",
                   choices=["ploggp", "timer", "none"])
    common(p)
    p.set_defaults(func=cmd_overhead)

    p = sub.add_parser("perceived",
                       help="perceived bandwidth (Figs. 9, 13)")
    p.add_argument("--n-user", type=int, default=32)
    p.add_argument("--sizes", default="8MiB,32MiB")
    p.add_argument("--compute-ms", type=float, default=100.0)
    p.add_argument("--noise", type=float, default=0.04)
    common(p)
    p.set_defaults(func=cmd_perceived)

    p = sub.add_parser("sweep", help="Sweep3D pattern (Fig. 14)")
    p.add_argument("--grid", default="4x4")
    p.add_argument("--threads", type=int, default=16)
    p.add_argument("--sizes", default="256KiB,1MiB")
    p.add_argument("--compute-ms", type=float, default=1.0)
    p.add_argument("--noise", type=float, default=0.01)
    common(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "stencil",
        help="partitioned neighbor-alltoall halo exchange (repro.coll)")
    p.add_argument("--grid", default="2x2",
                   help="rank grid, e.g. 4x4 or 2x2x2")
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--partitions", type=int, default=32,
                   help="partitions per face")
    p.add_argument("--faces", default="64KiB",
                   help="face size, or one size per axis (comma list)")
    p.add_argument("--compute-ms", type=float, default=1.0)
    p.add_argument("--noise", type=float, default=0.01)
    p.add_argument("--aggregator", default="ploggp",
                   choices=["ploggp", "timer", "per-edge"],
                   help="'per-edge' runs a bandit per edge; give it "
                        "enough --warmup rounds to explore")
    p.add_argument("--plans", action="store_true",
                   help="print rank 0's converged per-edge plans")
    common(p)
    p.set_defaults(func=cmd_stencil)

    p = sub.add_parser("netgauge",
                       help="measure LogGP parameters on the fabric")
    p.add_argument("--sizes", default="256B,4KiB,64KiB,1MiB")
    p.add_argument("--iterations", type=int, default=10)
    p.set_defaults(func=cmd_netgauge)

    p = sub.add_parser("tuning-table",
                       help="brute-force search (Section IV-B)")
    p.add_argument("--n-user", type=int, default=16)
    p.add_argument("--sizes", default="64KiB,1MiB")
    common(p)
    p.set_defaults(func=cmd_tuning_table)

    p = sub.add_parser(
        "chaos", help="seeded chaos campaign with invariant checks")
    p.add_argument("--workloads", default="ext_stencil,pallreduce",
                   help="comma list of registered workloads")
    p.add_argument("--runs", type=int, default=20)
    p.add_argument("--seed", type=int, default=0,
                   help="campaign root seed (each run derives its own)")
    p.add_argument("--kinds", default=",".join(
        ("flap_storm", "rail_failure", "rnr_burst", "latency_train")))
    p.add_argument("--horizon-ms", type=float, default=2.5,
                   help="virtual-time window faults land inside (ms)")
    p.add_argument("--module", default="native",
                   choices=["native", "persist"])
    p.add_argument("--ladder", action="store_true",
                   help="wrap every edge in the degradation ladder")
    p.add_argument("--bundle-dir", default=None,
                   help="write a failure-repro bundle per violating run")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-run progress on stderr")
    p.set_defaults(func=cmd_chaos)

    fleet = sub.add_parser(
        "fleet", help="shared-fabric simulation (repro.fleet)")
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    p = fleet_sub.add_parser(
        "rank", help="transport-design ranking vs spine contention")
    p.add_argument("--levels", default="0,1,2",
                   help="comma list of background-tenant counts")
    p.add_argument("--transports", default="4,8,16",
                   help="fixed-aggregation transport counts to rank")
    p.add_argument("--qps", type=int, default=2)
    p.add_argument("--partitions", type=int, default=16)
    p.add_argument("--partition-size", default="64KiB")
    p.add_argument("--iterations", type=int, default=6)
    p.add_argument("--warmup", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_fleet_rank)

    p = fleet_sub.add_parser(
        "profile", help="multi-tenant mix with per-job slowdowns")
    p.add_argument("--jobs", default="pair:2,halo:3",
                   help="comma list of kind:ranks tenants "
                        "(kinds: pair, halo, tree)")
    p.add_argument("--background", type=int, default=1,
                   help="permutation-traffic tenants to add")
    p.add_argument("--placement", default="spread",
                   choices=["packed", "spread", "random"])
    p.add_argument("--partitions", type=int, default=16)
    p.add_argument("--partition-size", default="64KiB")
    p.add_argument("--iterations", type=int, default=6)
    p.add_argument("--warmup", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_fleet_profile)

    p = fleet_sub.add_parser(
        "retune", help="live autotuner re-convergence under a noisy "
                       "neighbor (exits 1 unless it adapts)")
    p.add_argument("--policy", default="bandit",
                   choices=["bandit", "plan_mutation"])
    p.add_argument("--quiet-rounds", type=int, default=12)
    p.add_argument("--congested-rounds", type=int, default=None,
                   help="default: 24 (bandit) / 30 (plan_mutation — the "
                        "frontier walk needs the longer episode)")
    p.add_argument("--tail-rounds", type=int, default=8)
    p.add_argument("--window", type=int, default=4,
                   help="sliding-window size for cost estimates")
    p.add_argument("--compute-us", type=float, default=20.0)
    p.add_argument("--seed", type=int, default=3)
    p.add_argument("--trajectory", action="store_true",
                   help="print the full per-round plan trajectory")
    p.set_defaults(func=cmd_fleet_retune)

    autotune = sub.add_parser(
        "autotune", help="closed-loop tuning store (repro.autotune)")
    autotune_sub = autotune.add_subparsers(dest="autotune_command",
                                           required=True)

    p = autotune_sub.add_parser(
        "tune", help="learn plans for workloads, persist them to a store")
    p.add_argument("--store", default="results/autotune-store",
                   help="tuning store directory (default: %(default)s)")
    p.add_argument("--n-user", type=int, default=32)
    p.add_argument("--sizes", default="256KiB,2MiB,8MiB")
    p.add_argument("--policy", default="bandit",
                   choices=["bandit", "delta_tracker"])
    p.add_argument("--config-tag", default="niagara",
                   help="cluster identity baked into store keys")
    p.add_argument("--compute-ms", type=float, default=0.0)
    p.add_argument("--noise", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=0,
                   help="bandit exploration seed")
    p.add_argument("--iterations", type=int, default=64)
    p.add_argument("--warmup", type=int, default=2)
    p.add_argument("--delta-us", type=float, default=35.0)
    p.set_defaults(func=cmd_autotune_tune)

    p = autotune_sub.add_parser(
        "show", help="list the plans a tuning store has learned")
    p.add_argument("--store", default="results/autotune-store",
                   help="tuning store directory (default: %(default)s)")
    p.set_defaults(func=cmd_autotune_show)

    serve = sub.add_parser(
        "serve", help="tuning-as-a-service plan server (repro.serve)")
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)

    p = serve_sub.add_parser(
        "stats", help="summarize a serve store root (shards, entries)")
    p.add_argument("--root", default="results/serve-store",
                   help="serve store root (default: %(default)s)")
    p.set_defaults(func=cmd_serve_stats)

    p = serve_sub.add_parser(
        "warm", help="bulk-import a tuning store into a serve root")
    p.add_argument("--root", default="results/serve-store",
                   help="serve store root (default: %(default)s)")
    p.add_argument("--source", required=True,
                   help="flat TuningStore directory (or sharded root) "
                        "to import")
    p.set_defaults(func=cmd_serve_warm)

    p = serve_sub.add_parser(
        "bench", help="seeded synthetic client traffic (Zipf keys, "
                      "mixed get/commit, bursty arrivals)")
    p.add_argument("--clients", type=int, default=400)
    p.add_argument("--requests", type=int, default=4000)
    p.add_argument("--keys", type=int, default=64)
    p.add_argument("--zipf", type=float, default=1.1,
                   help="Zipf exponent of the key popularity "
                        "(default: %(default)s)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--shards", type=int, default=8)
    p.add_argument("--max-per-shard", type=int, default=0,
                   help="entries bound per shard, 0 = unbounded "
                        "(default: %(default)s)")
    p.set_defaults(func=cmd_serve_bench)

    plan = sub.add_parser(
        "plan", help="communication-plan IR per experiment (repro.plan)")
    plan_sub = plan.add_subparsers(dest="plan_command", required=True)

    p = plan_sub.add_parser(
        "show", help="print the plan each sweep point lowers to")
    p.add_argument("experiment", metavar="EXPERIMENT",
                   help="registered experiment name")
    p.add_argument("--profile", default="fast",
                   help="sweep profile (default: %(default)s)")
    p.set_defaults(func=cmd_plan_show)

    p = plan_sub.add_parser(
        "diff", help="diff two experiments' (or profiles') plans")
    p.add_argument("experiment", metavar="EXPERIMENT")
    p.add_argument("baseline", metavar="BASELINE", nargs="?", default=None,
                   help="baseline experiment (default: EXPERIMENT itself, "
                        "for cross-profile diffs)")
    p.add_argument("--profile", default="fast",
                   help="profile for EXPERIMENT (default: %(default)s)")
    p.add_argument("--baseline-profile", default=None,
                   help="profile for BASELINE (default: --profile)")
    p.set_defaults(func=cmd_plan_diff)

    bench = sub.add_parser(
        "bench", help="registered paper experiments (figures/tables)")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    p = bench_sub.add_parser("list", help="list registered experiments")
    p.add_argument("--points", action="store_true",
                   help="also count sweep points per profile")
    p.set_defaults(func=cmd_bench_list)

    p = bench_sub.add_parser(
        "run", help="run experiments, write JSON artifacts")
    p.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                   help="experiment names (default: all registered)")
    from repro.exp import add_run_options

    add_run_options(p)
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-point progress on stderr")
    p.set_defaults(func=cmd_bench_run)

    p = bench_sub.add_parser(
        "compare", help="diff two result artifacts, flag regressions")
    p.add_argument("new", help="candidate artifact (BENCH_*.json)")
    p.add_argument("baseline", help="baseline artifact to compare against")
    p.add_argument("--threshold", type=float, default=0.10,
                   help="relative change tolerated before a value counts "
                        "as regressed (default: %(default)s)")
    p.set_defaults(func=cmd_bench_compare)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: standard
        # CLI etiquette is to exit quietly.
        import os

        try:
            sys.stdout.close()
        except Exception:
            pass
        os.close(2)
        return 0


if __name__ == "__main__":
    sys.exit(main())
