"""Fault schedules: scripted events plus seeded probabilistic faults.

A :class:`FaultSchedule` is pure data — a declarative description of
what goes wrong, where, and when, in virtual time.  A
:class:`FaultInjector` binds a schedule to a fabric run: it owns the
named RNG substreams (one per directed link, derived from the
simulation's root seed through :class:`repro.sim.rng.RngStreams`) and
the fault counters, and answers the NIC engine's per-chunk and
per-message queries.

Determinism: scripted windows are pure functions of virtual time, and
probabilistic draws come from per-link substreams consumed in
transmission order — which the DES kernel makes deterministic — so the
same root seed and schedule produce a bit-identical fault pattern on
every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigError
from repro.sim.monitor import Counters
from repro.sim.rng import RngStreams


def _check_window(start: float, duration: float) -> None:
    if start < 0:
        raise ConfigError(f"fault window starts in the past: {start}")
    if duration <= 0:
        raise ConfigError(f"fault window needs positive duration: {duration}")


@dataclass(frozen=True)
class LinkFlap:
    """The wire between two nodes is down for ``[start, start+duration)``.

    Chunks transmitted into a downed wire are lost (the sender NIC's
    ACK timeout and retransmission machinery recovers them, or gives up
    with ``RETRY_EXC_ERR``).  Both directions are affected.
    """

    a: int
    b: int
    start: float
    duration: float

    def __post_init__(self):
        _check_window(self.start, self.duration)

    def covers(self, src: int, dst: int, t: float) -> bool:
        return ({src, dst} == {self.a, self.b}
                and self.start <= t < self.start + self.duration)


@dataclass(frozen=True)
class LatencySpike:
    """Extra one-way propagation latency on a directed link for a window."""

    src: int
    dst: int
    start: float
    duration: float
    extra: float

    def __post_init__(self):
        _check_window(self.start, self.duration)
        if self.extra < 0:
            raise ConfigError(f"negative latency spike: {self.extra}")

    def covers(self, src: int, dst: int, t: float) -> bool:
        return (src == self.src and dst == self.dst
                and self.start <= t < self.start + self.duration)


@dataclass(frozen=True)
class NICStall:
    """One node's NIC engine processes nothing during the window.

    Models firmware hiccups / PCIe backpressure: WQE transmission on
    every QP of the node resumes at ``start + duration``.
    """

    node: int
    start: float
    duration: float

    def __post_init__(self):
        _check_window(self.start, self.duration)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def covers(self, node: int, t: float) -> bool:
        return node == self.node and self.start <= t < self.end


@dataclass(frozen=True)
class RNRWindow:
    """Messages needing a receive WR at ``node`` are RNR-NAKed in the window.

    ``qp_num=None`` covers every QP on the node.  The requester backs
    off per its ``rnr_retry`` budget, exactly as a slow responder that
    has not re-posted receives would make it.
    """

    node: int
    start: float
    duration: float
    qp_num: Optional[int] = None

    def __post_init__(self):
        _check_window(self.start, self.duration)

    def covers(self, node: int, qp_num: int, t: float) -> bool:
        return (node == self.node
                and (self.qp_num is None or qp_num == self.qp_num)
                and self.start <= t < self.start + self.duration)


@dataclass(frozen=True)
class ChunkFaults:
    """Probabilistic per-chunk faults on a directed link (or everywhere).

    ``loss`` is the probability a wire chunk vanishes; ``corruption``
    the probability it arrives damaged (an ICRC failure — the responder
    drops it, so the requester-side effect is identical to loss, but it
    is counted separately).  ``src``/``dst`` of ``None`` match any node.
    """

    loss: float = 0.0
    corruption: float = 0.0
    src: Optional[int] = None
    dst: Optional[int] = None

    def __post_init__(self):
        if not (0.0 <= self.loss <= 1.0):
            raise ConfigError(f"loss probability outside [0, 1]: {self.loss}")
        if not (0.0 <= self.corruption <= 1.0):
            raise ConfigError(
                f"corruption probability outside [0, 1]: {self.corruption}")

    def matches(self, src: int, dst: int) -> bool:
        return ((self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst))


@dataclass
class FaultSchedule:
    """A deterministic plan of everything that goes wrong in one run.

    Build one declaratively::

        schedule = (FaultSchedule()
                    .chunk_loss(1e-4)
                    .link_flap(0, 1, start=1.0, duration=2e-3)
                    .rnr_window(1, start=0.5, duration=1e-3))

    and install it with :meth:`repro.ib.fabric.Fabric.install_faults`
    (or pass it to the benchmark harnesses).  ``allow_reconnect``
    controls whether the MPI modules may walk failed channels back to
    RTS; with it off, a retry-exhausted QP surfaces
    :class:`~repro.errors.RetryExhaustedError` to the caller instead.
    """

    flaps: list[LinkFlap] = field(default_factory=list)
    spikes: list[LatencySpike] = field(default_factory=list)
    stalls: list[NICStall] = field(default_factory=list)
    rnr_windows: list[RNRWindow] = field(default_factory=list)
    chunk_faults: list[ChunkFaults] = field(default_factory=list)
    allow_reconnect: bool = True

    # -- builder API ------------------------------------------------------

    def link_flap(self, a: int, b: int, start: float,
                  duration: float) -> "FaultSchedule":
        self.flaps.append(LinkFlap(a, b, start, duration))
        return self

    def latency_spike(self, src: int, dst: int, start: float,
                      duration: float, extra: float) -> "FaultSchedule":
        self.spikes.append(LatencySpike(src, dst, start, duration, extra))
        return self

    def nic_stall(self, node: int, start: float,
                  duration: float) -> "FaultSchedule":
        self.stalls.append(NICStall(node, start, duration))
        return self

    def rnr_window(self, node: int, start: float, duration: float,
                   qp_num: Optional[int] = None) -> "FaultSchedule":
        self.rnr_windows.append(RNRWindow(node, start, duration, qp_num))
        return self

    def chunk_loss(self, probability: float, src: Optional[int] = None,
                   dst: Optional[int] = None) -> "FaultSchedule":
        self.chunk_faults.append(
            ChunkFaults(loss=probability, src=src, dst=dst))
        return self

    def chunk_corruption(self, probability: float, src: Optional[int] = None,
                         dst: Optional[int] = None) -> "FaultSchedule":
        self.chunk_faults.append(
            ChunkFaults(corruption=probability, src=src, dst=dst))
        return self

    @property
    def empty(self) -> bool:
        return not (self.flaps or self.spikes or self.stalls
                    or self.rnr_windows or self.chunk_faults)


#: Chunk outcomes returned by :meth:`FaultInjector.chunk_outcome`.
CHUNK_OK = "ok"
CHUNK_LOST = "lost"
CHUNK_CORRUPT = "corrupt"


class FaultInjector:
    """A schedule bound to one run: RNG streams plus fault counters.

    The NIC engine queries this object from its fault-aware transmit
    paths only — when no injector is installed those paths are never
    entered, so the off path costs nothing.
    """

    def __init__(self, schedule: FaultSchedule, rngs: RngStreams,
                 counters: Optional[Counters] = None,
                 trace=None):
        self.schedule = schedule
        self.rngs = rngs
        self.counters = counters if counters is not None else Counters()
        self.trace = trace
        self._link_streams: dict[tuple[int, int], np.random.Generator] = {}

    # -- RNG plumbing ------------------------------------------------------

    def _stream(self, src: int, dst: int) -> np.random.Generator:
        key = (src, dst)
        gen = self._link_streams.get(key)
        if gen is None:
            gen = self.rngs.stream(f"faults.link.{src}->{dst}")
            self._link_streams[key] = gen
        return gen

    # -- queries (called from the NIC engine) ------------------------------

    def link_down(self, src: int, dst: int, t: float) -> bool:
        """Whether the wire between ``src`` and ``dst`` is flapped at ``t``."""
        return any(f.covers(src, dst, t) for f in self.schedule.flaps)

    def link_up_at(self, src: int, dst: int, t: float) -> float:
        """Earliest time >= ``t`` with no flap covering the link."""
        up = t
        # Flaps may chain; iterate until no window covers the candidate.
        moved = True
        while moved:
            moved = False
            for f in self.schedule.flaps:
                if f.covers(src, dst, up):
                    up = f.start + f.duration
                    moved = True
        return up

    def latency_extra(self, src: int, dst: int, t: float) -> float:
        """Additional one-way latency on ``src -> dst`` at time ``t``."""
        return sum(s.extra for s in self.schedule.spikes
                   if s.covers(src, dst, t))

    def stall_until(self, node: int, t: float) -> float:
        """End of the NIC-stall window covering ``node`` at ``t`` (or ``t``)."""
        until = t
        moved = True
        while moved:
            moved = False
            for s in self.schedule.stalls:
                if s.covers(node, until):
                    until = s.end
                    moved = True
        return until

    def rnr_forced(self, node: int, qp_num: int, t: float) -> bool:
        """Whether an RNR window forces NAKs for ``qp_num`` at ``node``."""
        return any(w.covers(node, qp_num, t)
                   for w in self.schedule.rnr_windows)

    def chunk_outcome(self, src: int, dst: int, t: float) -> str:
        """Fate of one wire chunk leaving ``src`` for ``dst`` at time ``t``.

        A flapped link loses every chunk outright (no RNG draw, so flap
        windows do not shift the loss stream).  Otherwise one uniform
        draw per configured fault entry decides loss, then corruption.
        """
        if self.link_down(src, dst, t):
            self.counters.inc("fault.chunks_lost")
            return CHUNK_LOST
        for cf in self.schedule.chunk_faults:
            if not cf.matches(src, dst):
                continue
            if cf.loss > 0.0:
                if self._stream(src, dst).random() < cf.loss:
                    self.counters.inc("fault.chunks_lost")
                    return CHUNK_LOST
            if cf.corruption > 0.0:
                if self._stream(src, dst).random() < cf.corruption:
                    self.counters.inc("fault.chunks_corrupted")
                    return CHUNK_CORRUPT
        return CHUNK_OK

    def __repr__(self) -> str:
        return (f"<FaultInjector flaps={len(self.schedule.flaps)} "
                f"spikes={len(self.schedule.spikes)} "
                f"stalls={len(self.schedule.stalls)} "
                f"rnr={len(self.schedule.rnr_windows)} "
                f"chunk_faults={len(self.schedule.chunk_faults)}>")
