"""Deterministic fault injection and recovery for the simulated fabric.

The seed reproduction models a *perfect* EDR fabric; this subsystem
makes it a testbed for aggregation under loss.  A
:class:`~repro.faults.schedule.FaultSchedule` describes scripted events
(link flaps, latency spikes, NIC stalls, forced receiver-not-ready
windows) plus probabilistic per-chunk loss/corruption driven by named,
seeded RNG streams; installing it on a
:class:`~repro.ib.fabric.Fabric` activates the NIC-level retry and
NAK machinery of RC queue pairs (``retry_cnt`` / ``rnr_retry`` /
``timeout``) and the channel-level RESET -> INIT -> RTR -> RTS
reconnect paths in the MPI modules.

With no schedule installed, nothing changes: the fault hooks are a
single ``is None`` check and all virtual-time results are bit-identical
to the fault-free simulator.

See ``docs/FAULTS.md`` for the schedule format and recovery semantics.
"""

from repro.faults.schedule import (
    CHUNK_CORRUPT,
    CHUNK_LOST,
    CHUNK_OK,
    ChunkFaults,
    FaultInjector,
    FaultSchedule,
    LatencySpike,
    LinkFlap,
    NICStall,
    RNRWindow,
)

__all__ = [
    "CHUNK_CORRUPT",
    "CHUNK_LOST",
    "CHUNK_OK",
    "ChunkFaults",
    "FaultInjector",
    "FaultSchedule",
    "LatencySpike",
    "LinkFlap",
    "NICStall",
    "RNRWindow",
]
