"""Worker-thread teams: the actors that call ``MPI_Pready``.

A :class:`WorkerTeam` models the parallel region of a hybrid MPI+threads
application: ``n_threads`` workers each compute for
``compute + noise_delay`` and then run a per-thread body (typically
``MPI_Pready`` on their partition).  One user partition per thread, as
the paper's benchmarks assign (Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.runtime.noise import NoiseModel, NoNoise
from repro.sim.core import Environment
from repro.sim.process import Process


@dataclass(frozen=True)
class ComputePhase:
    """One round's compute parameters.

    ``jitter_fraction`` models natural thread skew: no two threads
    finish a long compute phase at the same instant on a real machine
    (scheduler ticks, cache effects).  Each thread's compute is extended
    by ``|N(0, jitter_fraction * compute)|``; when the team
    oversubscribes its cores, the skew scales with the oversubscription
    ratio (time slicing).  This is the non-laggard arrival spread behind
    the paper's minimum-δ estimates (Fig. 12: ~35 us at 32 threads and
    100 ms compute — 0.01 % of the phase, the default here).
    """

    compute: float
    noise: NoiseModel
    jitter_fraction: float = 1e-4

    def __post_init__(self):
        if self.compute < 0:
            raise ValueError(f"negative compute time: {self.compute}")
        if self.jitter_fraction < 0:
            raise ValueError(
                f"negative jitter fraction: {self.jitter_fraction}")


class WorkerTeam:
    """Spawns and joins a team of simulated worker threads."""

    def __init__(self, env: Environment, n_threads: int,
                 rng: np.random.Generator, cores: Optional[int] = None):
        if n_threads < 1:
            raise ValueError(f"need at least one thread, got {n_threads}")
        self.env = env
        self.n_threads = n_threads
        self.rng = rng
        self.cores = cores
        self._round = 0

    @property
    def oversubscribed(self) -> bool:
        """True when the team exceeds the node's cores."""
        return self.cores is not None and self.n_threads > self.cores

    def run_round(
        self,
        phase: ComputePhase,
        body: Callable[[int], object],
    ) -> Process:
        """One parallel region: compute then per-thread body.

        ``body(thread_id)`` must return a generator (the thread's
        communication actions, e.g. ``pready``).  Returns a process that
        finishes when every thread has; its value is the list of
        per-thread finish times.
        """
        delays = phase.noise.delays(
            self.n_threads, phase.compute, self._round, self.rng)
        if phase.jitter_fraction > 0 and phase.compute > 0:
            scale = phase.jitter_fraction * phase.compute
            if self.oversubscribed:
                scale *= self.n_threads / self.cores
            delays = delays + np.abs(
                self.rng.normal(0.0, scale, size=self.n_threads))
        self._round += 1
        env = self.env

        def worker(tid: int, extra: float):
            total = phase.compute + extra
            if total > 0:
                yield total
            result = body(tid)
            if result is not None:
                yield from result
            return env.now

        def team(env):
            workers = [
                env.process(worker(tid, float(delays[tid])))
                for tid in range(self.n_threads)
            ]
            results = yield env.all_of(workers)
            return [results[w] for w in workers]

        return env.process(team(env))
