"""Noise models for compute phases.

The paper's benchmarks (after [8], [14]) inject noise as a fraction of
the compute time.  The **single thread delay model** — one thread per
round receives the full noise amount, the rest none — is what all the
headline figures use (Figs. 9-13 captions); it produces the
many-before-one arrival pattern the PLogGP aggregator assumes.
"""

from __future__ import annotations

import abc

import numpy as np


class NoiseModel(abc.ABC):
    """Per-round, per-thread extra compute delay."""

    @abc.abstractmethod
    def delays(self, n_threads: int, compute: float, round_index: int,
               rng: np.random.Generator) -> np.ndarray:
        """Extra delay (seconds) for each of ``n_threads`` this round."""

    def describe(self) -> str:
        return type(self).__name__


class NoNoise(NoiseModel):
    """No noise: all threads finish compute simultaneously."""

    def delays(self, n_threads, compute, round_index, rng):
        return np.zeros(n_threads)

    def describe(self) -> str:
        return "none"


class SingleThreadDelay(NoiseModel):
    """One thread per round is delayed by ``fraction * compute``.

    The victim rotates pseudo-randomly per round (an OS moving a thread,
    per Section IV-C); set ``fixed_victim`` to pin it for profiling
    runs.
    """

    def __init__(self, fraction: float, fixed_victim: int | None = None):
        if fraction < 0:
            raise ValueError(f"negative noise fraction: {fraction}")
        self.fraction = fraction
        self.fixed_victim = fixed_victim

    def delays(self, n_threads, compute, round_index, rng):
        out = np.zeros(n_threads)
        if self.fraction == 0 or n_threads == 0:
            return out
        if self.fixed_victim is not None:
            victim = self.fixed_victim % n_threads
        else:
            victim = int(rng.integers(0, n_threads))
        out[victim] = self.fraction * compute
        return out

    def describe(self) -> str:
        return f"single-thread-delay({self.fraction:.0%})"


class GaussianNoise(NoiseModel):
    """Every thread delayed by ``|N(0, fraction * compute)|``."""

    def __init__(self, fraction: float):
        if fraction < 0:
            raise ValueError(f"negative noise fraction: {fraction}")
        self.fraction = fraction

    def delays(self, n_threads, compute, round_index, rng):
        if self.fraction == 0:
            return np.zeros(n_threads)
        return np.abs(rng.normal(0.0, self.fraction * compute, size=n_threads))

    def describe(self) -> str:
        return f"gaussian({self.fraction:.0%})"


class UniformNoise(NoiseModel):
    """Every thread delayed by ``U(0, fraction * compute)``."""

    def __init__(self, fraction: float):
        if fraction < 0:
            raise ValueError(f"negative noise fraction: {fraction}")
        self.fraction = fraction

    def delays(self, n_threads, compute, round_index, rng):
        if self.fraction == 0:
            return np.zeros(n_threads)
        return rng.uniform(0.0, self.fraction * compute, size=n_threads)

    def describe(self) -> str:
        return f"uniform({self.fraction:.0%})"
