"""Simulated application runtime: worker threads and noise models."""

from repro.runtime.noise import (
    NoiseModel,
    NoNoise,
    SingleThreadDelay,
    GaussianNoise,
    UniformNoise,
)
from repro.runtime.threadmodel import WorkerTeam, ComputePhase

__all__ = [
    "NoiseModel",
    "NoNoise",
    "SingleThreadDelay",
    "GaussianNoise",
    "UniformNoise",
    "WorkerTeam",
    "ComputePhase",
]
