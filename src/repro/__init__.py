"""repro: MPI Partitioned aggregation over (simulated) InfiniBand verbs.

A reproduction of "A Dynamic Network-Native MPI Partitioned Aggregation
Over InfiniBand Verbs" (CLUSTER 2023).  The hardware substrate — EDR
InfiniBand, ConnectX-5-class NICs, multi-threaded hosts — is a
discrete-event simulation; everything above it (verbs objects, the MPI
runtime, the partitioned transport modules, the aggregators, the
benchmarks) is a faithful software reconstruction of the paper's
design.

Quick start::

    from repro import Cluster, PartitionedBuffer, NativeSpec, PLogGPAggregator
    from repro.model.tables import NIAGARA_LOGGP

    cluster = Cluster(n_nodes=2)
    sender, receiver = cluster.ranks(2)
    spec = lambda: NativeSpec(PLogGPAggregator(NIAGARA_LOGGP, delay=4e-3))
    ...  # see examples/quickstart.py

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.config import (
    ClusterConfig,
    HostConfig,
    LinkConfig,
    NICConfig,
    NIAGARA,
    PartitionedConfig,
    UCXConfig,
)
from repro.mem import Buffer, PartitionedBuffer
from repro.mpi import Cluster, MPIProcess
from repro.mpi.persist_module import PersistSpec
from repro.core import (
    FixedAggregation,
    NativeSpec,
    NoAggregation,
    PLogGPAggregator,
    TimerPLogGPAggregator,
    TuningTable,
    TuningTableAggregator,
)
from repro.model import LogGPParams, LogGPTable
from repro.runtime import (
    ComputePhase,
    GaussianNoise,
    NoNoise,
    SingleThreadDelay,
    UniformNoise,
    WorkerTeam,
)
from repro.profiler import PMPIProfiler

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "MPIProcess",
    "Buffer",
    "PartitionedBuffer",
    "PersistSpec",
    "NativeSpec",
    "FixedAggregation",
    "NoAggregation",
    "PLogGPAggregator",
    "TimerPLogGPAggregator",
    "TuningTable",
    "TuningTableAggregator",
    "LogGPParams",
    "LogGPTable",
    "ClusterConfig",
    "NICConfig",
    "LinkConfig",
    "HostConfig",
    "UCXConfig",
    "PartitionedConfig",
    "NIAGARA",
    "WorkerTeam",
    "ComputePhase",
    "NoNoise",
    "SingleThreadDelay",
    "GaussianNoise",
    "UniformNoise",
    "PMPIProfiler",
    "__version__",
]
