"""Per-edge deadline watchdogs and circuit breakers (chaos layer).

Two pure state machines, deliberately free of simulation events so the
off path costs nothing:

* :class:`CircuitBreaker` — the classic three-state breaker.  Failure
  events (retry exhaustions, deadline misses) accumulate; ``threshold``
  *consecutive* failures trip the breaker OPEN, which the degradation
  ladder maps to "demote this edge one rung".  On a fallback rung the
  breaker runs HALF_OPEN: ``probation`` consecutive clean rounds close
  it again, which the ladder maps to "probe a promotion".
* :class:`EdgeWatchdog` — per-round deadline bookkeeping.  ``arm`` at
  the round boundary, ``expired`` at the next one; a late round counts
  as a breaker failure event even when no QP ever died (hung-but-alive
  edges degrade too, not only loudly failing ones).

Both are owned by :class:`repro.mpi.ladder.LadderModule`; the epoch
deadline (the third watchdog of the chaos design) lives on
:meth:`repro.engine.progress.ProgressEngine.wait_until` directly.
"""

from __future__ import annotations

from typing import Optional

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker for one edge.

    ``record_failure()`` returns True exactly when the failure trips
    the breaker (CLOSED/HALF_OPEN -> OPEN); ``record_success()``
    returns True exactly when a probation completes (HALF_OPEN ->
    CLOSED).  Failures are counted per *event*, successes per clean
    round — the caller decides what constitutes each.
    """

    def __init__(self, threshold: int, probation: int = 1):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if probation < 1:
            raise ValueError(f"probation must be >= 1, got {probation}")
        self.threshold = threshold
        self.probation = probation
        self.state = CLOSED
        #: Consecutive failure events since the last success/reset.
        self.failures = 0
        #: Consecutive clean rounds while HALF_OPEN.
        self.successes = 0
        #: Times the breaker tripped over its lifetime.
        self.trips = 0

    def record_failure(self) -> bool:
        """Count one failure event; True iff this one trips the breaker."""
        if self.state is OPEN:
            return False
        self.failures += 1
        self.successes = 0
        if self.failures >= self.threshold:
            self.state = OPEN
            self.trips += 1
            return True
        return False

    def record_success(self) -> bool:
        """Count one clean round; True iff a probation just completed."""
        self.failures = 0
        if self.state is not HALF_OPEN:
            return False
        self.successes += 1
        if self.successes >= self.probation:
            self.state = CLOSED
            self.successes = 0
            return True
        return False

    def begin_probation(self) -> None:
        """Enter HALF_OPEN: clean rounds now count toward re-closing."""
        self.state = HALF_OPEN
        self.failures = 0
        self.successes = 0

    def reset(self) -> None:
        """Fully re-close (a demotion installed a fresh transport)."""
        self.state = CLOSED
        self.failures = 0
        self.successes = 0

    def __repr__(self) -> str:
        return (f"<CircuitBreaker {self.state} failures={self.failures}"
                f"/{self.threshold} trips={self.trips}>")


class EdgeWatchdog:
    """Per-round progress deadline for one edge (pure bookkeeping).

    ``deadline=None`` disables the watchdog: ``expired`` is always
    False and nothing is ever recorded — the zero-overhead off path.
    """

    def __init__(self, deadline: Optional[float]):
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        self.deadline = deadline
        self._armed_at: Optional[float] = None
        #: Rounds that overran the deadline over this watchdog's life.
        self.misses = 0

    def arm(self, now: float) -> None:
        """Start timing a round at virtual time ``now``."""
        if self.deadline is not None:
            self._armed_at = now

    def expired(self, now: float) -> bool:
        """Whether the armed round overran; counts and disarms if so."""
        if self.deadline is None or self._armed_at is None:
            return False
        late = (now - self._armed_at) > self.deadline
        self._armed_at = None
        if late:
            self.misses += 1
        return late

    def __repr__(self) -> str:
        return f"<EdgeWatchdog deadline={self.deadline} misses={self.misses}>"
