"""The single-threaded progress engine (paper Section IV-A).

"Our progress engine design is single-threaded, we only allow a single
thread to progress at a time.  ``MPI_Parrived`` tries to acquire a
lock.  If it is successful, it will progress all MPI messages and
release the lock upon completion.  Otherwise it just returns."

The progress engine is the *driver* of the transport engine: pollers
(one per bound completion queue, registered through
:class:`~repro.engine.router.CompletionRouter`) are generator functions
that poll their CQs, charge CPU costs, and return the number of events
handled.  Waiting is event-driven across idle stretches: the engine
parks on a :class:`~repro.sim.sync.Notify` latch that completion-queue
pushes trigger, instead of burning a simulation event per spin — same
virtual-time semantics, thousands of times fewer events.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.sim.core import Environment
from repro.sim.sync import Notify, SimLock
from repro.units import us

#: Default fallback park time while waiting with no kick (guards against
#: a missing notification path ever deadlocking a wait).  Completion
#: queues kick the engine on every push, so this only bounds the rare
#: conditions with no notification hook; keeping it long keeps idle
#: waits cheap (one wakeup per 100 us instead of per 10 us).
#: Overridable per cluster via ``EngineConfig.idle_fallback``.
_IDLE_FALLBACK = us(100)

Poller = Callable[[], Iterable]  # generator function returning int


class ProgressEngine:
    """Polls all registered transports under a single lock."""

    def __init__(self, env: Environment, t_poll_miss: float,
                 idle_fallback: float = _IDLE_FALLBACK):
        if idle_fallback <= 0:
            raise ValueError(
                f"idle_fallback must be positive, got {idle_fallback}")
        self.env = env
        self.t_poll_miss = t_poll_miss
        self.idle_fallback = idle_fallback
        self.lock = SimLock(env)
        self._pollers: list[tuple[Poller, "Callable | None"]] = []
        self._notify = Notify(env)
        # statistics
        self.passes = 0
        self.events_handled = 0

    def register(self, poller: Poller, quick: "Callable | None" = None) -> None:
        """Add a transport poller (a generator function returning a count).

        ``quick``, if given, is a plain callable tried first on every
        pass: it returns an int to settle the pass without instantiating
        the generator (the no-pending-work fast path, including any idle
        side effects), or ``None`` to fall through to ``poller()``.  It
        must be event-free — a pass settled by ``quick`` yields nothing.
        """
        self._pollers.append((poller, quick))

    def kick(self) -> None:
        """Wake any process parked in :meth:`wait_until` (CQ push hook)."""
        self._notify.set()

    def watch_cq(self, cq) -> None:
        """Arrange for pushes on ``cq`` to kick this engine."""
        cq.on_push.append(lambda wc: self.kick())

    def progress_once(self):
        """One progress pass; yields, returns events handled (0 if lock busy).

        The non-blocking try-lock variant used from ``MPI_Parrived`` and
        ``MPI_Pready`` contexts.  A failed probe still costs the caller
        a poll's worth of CPU — and guarantees time advances, so a
        thread spin-polling ``Parrived`` against a busy engine cannot
        livelock the simulation.
        """
        if not self.lock.try_acquire():
            yield self.t_poll_miss
            return 0
        try:
            handled = 0
            for poller, quick in self._pollers:
                if quick is not None:
                    settled = quick()
                    if settled is not None:
                        handled += settled
                        continue
                handled += yield from poller()
            if handled == 0:
                yield self.t_poll_miss
            self.passes += 1
            self.events_handled += handled
            return handled
        finally:
            self.lock.release()

    def wait_until(self, predicate: Callable[[], bool],
                   deadline: "float | None" = None, describe: str = ""):
        """Progress until ``predicate()`` holds; yields (``MPI_Wait`` core).

        Idle stretches park on the kick latch rather than spinning.
        With a ``deadline`` (absolute virtual time), an epoch that is
        still incomplete at that time raises
        :class:`~repro.errors.EpochDeadlineError` instead of waiting
        forever — the chaos layer's bound on a hung edge.  ``describe``
        names the waited-on work in that error.
        """
        env = self.env
        lock = self.lock
        notify = self._notify
        pollers = self._pollers
        t_poll_miss = self.t_poll_miss
        while not predicate():
            if deadline is not None and env._now >= deadline:
                from repro.errors import EpochDeadlineError

                raise EpochDeadlineError(
                    f"epoch overran its deadline waiting for {describe or 'completion'}")
            # One progress pass, inlined from :meth:`progress_once` (this
            # loop is the single hottest generator in the engine; the
            # nested-generator hop per iteration is measurable).  The
            # yielded event sequence must stay identical to the method's.
            if not lock.try_acquire():
                yield t_poll_miss
                handled = 0
            else:
                try:
                    handled = 0
                    for poller, quick in pollers:
                        if quick is not None:
                            settled = quick()
                            if settled is not None:
                                handled += settled
                                continue
                        handled += yield from poller()
                    if handled == 0:
                        yield t_poll_miss
                    self.passes += 1
                    self.events_handled += handled
                finally:
                    lock.release()
            if predicate():
                break
            if handled == 0:
                if notify.pending:
                    # A completion landed since the last park — it may
                    # not have been polled yet (e.g. it arrived during
                    # this very pass).  Consume the trigger and re-poll
                    # rather than parking past real work.
                    notify.consume()
                    continue
                park = self.idle_fallback
                if deadline is not None:
                    park = min(park, max(deadline - env._now, 0.0))
                yield notify.wait(park)

    def __repr__(self) -> str:
        return (f"<ProgressEngine pollers={len(self._pollers)} "
                f"passes={self.passes}>")
