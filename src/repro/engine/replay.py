"""Exactly-once replay after channel failure, shared by every transport.

PR 1 grew three separate recovery paths: the native module's
``_recover`` loop, the channel's ``reconnect`` walk, and the persist
module's read-rail re-issue.  All three follow the same protocol —

1. back off for the reconnect delay (the out-of-band error handshake;
   far longer than the ACK window, so every in-flight completion has
   landed before any bookkeeping is trusted),
2. walk failed QP pairs back to RTS (:func:`reconnect_walk`),
3. restock receive queues,
4. sweep work that vanished with a killed QP (dropped in flight, no
   CQE) into the replay queue,
5. drain the queue exactly once, counting each replay,

— and :class:`ReplayTracker` now owns that protocol, parameterized by
transport-specific hooks.  A WR is replayed iff it never completed:
tracked WRs leave the in-flight map on completion (success or error
CQE), and the sweep only reclaims what is still registered against a
reconnected QP.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.ib.constants import QPState


def reconnect_walk(pairs: Iterable[tuple],
                   on_fixed: Optional[Callable] = None) -> set:
    """Reconnect every QP pair with a dead end; returns the fixed tokens.

    ``pairs`` yields ``(token, local, remote)`` triples; a pair is
    reconnected (RESET -> INIT -> RTR -> RTS, both ends) when either
    end is in ERROR.  ``on_fixed(token, local, remote)`` runs after
    each reconnect — the hook where channels restock the remote RQ.
    The walk is yield-free, so callers' no-interleaving guarantees
    (sweep-then-resubmit atomicity) hold across it.
    """
    from repro.ib import verbs

    fixed = set()
    for token, local, remote in pairs:
        if (local.state is QPState.ERROR
                or (remote is not None and remote.state is QPState.ERROR)):
            verbs.reconnect_qps(local, remote)
            fixed.add(token)
            if on_fixed is not None:
                on_fixed(token, local, remote)
    return fixed


class ReplayTracker:
    """WR bookkeeping plus the generic reconnect/replay loop.

    Transports configure the loop through :meth:`bind`:

    * ``recover_walk()`` — reconnect dead QP pairs, return the set of
      fixed tokens (usually via :func:`reconnect_walk`);
    * ``restock()`` — re-arm receive queues after the walk;
    * ``on_dropped(payload)`` — undo a vanished WR's accounting and
      return the replayable units it carried;
    * ``can_replay(unit)`` — whether the unit's path is back at RTS
      (``False`` breaks the drain for another reconnect lap);
    * ``replay_unit(unit)`` — generator re-issuing one unit.
    """

    def __init__(self, env, fabric, reconnect_delay: float,
                 counter: str = "mpi.replayed_wrs"):
        self.env = env
        self.fabric = fabric
        self.reconnect_delay = reconnect_delay
        self.counter = counter
        #: wr_id -> (token, payload) for every in-flight tracked WR.
        self._inflight: dict[int, tuple] = {}
        #: Units awaiting replay, drained in FIFO order.
        self.replay: list = []
        #: True while the recovery process is running (one per burst).
        self.recovering = False
        self._recover_walk = None
        self._restock = None
        self._on_dropped = None
        self._can_replay = None
        self._replay_unit = None
        #: When set (by the degradation ladder's mid-round takeover),
        #: units queued for replay are handed to this callable instead
        #: of the replay list — they will travel a rescue path, so the
        #: recovery loop must not re-issue them on the dead one.
        self.divert: Optional[Callable] = None

    def bind(self, *, recover_walk, restock, on_dropped, can_replay,
             replay_unit) -> None:
        """Install the transport-specific recovery hooks."""
        self._recover_walk = recover_walk
        self._restock = restock
        self._on_dropped = on_dropped
        self._can_replay = can_replay
        self._replay_unit = replay_unit

    # -- policy ------------------------------------------------------------

    @property
    def recovery_enabled(self) -> bool:
        """Whether failures route to recovery instead of raising."""
        faults = self.fabric.faults
        return faults is not None and faults.schedule.allow_reconnect

    # -- in-flight bookkeeping ---------------------------------------------

    def track(self, wr_id: int, token, payload) -> None:
        """Register an in-flight WR: ``token`` names its path (swept
        when that path is reconnected), ``payload`` its replay state."""
        self._inflight[wr_id] = (token, payload)

    def complete(self, wr_id: int):
        """A WR completed successfully; returns its entry (or None)."""
        return self._inflight.pop(wr_id, None)

    def fail(self, wr_id: int):
        """A WR died with an error CQE; returns its entry (or None)."""
        return self._inflight.pop(wr_id, None)

    def queue(self, units: Iterable) -> None:
        """Append units to the replay queue (exactly-once: callers move
        each unit here at most once, on CQE error or vanish-sweep).

        With a :attr:`divert` hook installed the units go there instead
        — same at-most-once discipline, different (rescue) transport.
        """
        if self.divert is not None:
            self.divert(list(units))
        else:
            self.replay.extend(units)

    # -- the recovery loop -------------------------------------------------

    def kick(self) -> None:
        """Start the recovery process, once per fault burst."""
        if not self.recovering:
            self.recovering = True
            self.env.process(self._recover())

    def _recover(self):
        counters = self.fabric.counters
        while True:
            yield self.reconnect_delay
            fixed = self._recover_walk()
            self._restock()
            for wr_id in [w for w, (tok, _) in self._inflight.items()
                          if tok in fixed]:
                _, payload = self._inflight.pop(wr_id)
                self.queue(self._on_dropped(payload))
            while self.replay:
                unit = self.replay[0]
                if not self._can_replay(unit):
                    break  # died again; take another reconnect lap
                counters.inc(self.counter)
                yield from self._replay_unit(unit)
                self.replay.pop(0)
            if not self.replay:
                break
        self.recovering = False

    def __repr__(self) -> str:
        return (f"<ReplayTracker inflight={len(self._inflight)} "
                f"replay={len(self.replay)} recovering={self.recovering}>")
