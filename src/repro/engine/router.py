"""Completion routing: one CQ-polling loop shared by every transport.

Before the engine layer existed, each transport reimplemented the same
loop — poll a CQ in batches, charge ``t_poll_hit`` per completion,
dispatch, then run a completion check: the native module's send/recv
pollers, the baseline's p2p poller, and the channel pumps all carried
private copies.  :class:`CompletionRouter` is the single registration
point replacing them: a transport *binds* a CQ with a per-completion
handler (and an optional idle hook), and registers per-``wr_id``
success/failure callbacks for keyed dispatch.

The router registers exactly one poller per binding on the process's
:class:`~repro.engine.progress.ProgressEngine` and arranges for CQ
pushes to kick it, so binding order is progress order — the same
discipline the hand-written pollers followed.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

WCHandler = Callable[..., Iterable]  # generator function of one WC


class CompletionRouter:
    """Single registration point for CQ polling and WC dispatch.

    Keyed dispatch tables (``wr_id`` -> callback / failure-routing
    entry) are shared across every binding on the same router, matching
    verbs semantics where a ``wr_id`` namespace spans the CQs of one
    process.
    """

    def __init__(self, engine, host_config, batch: int = 16):
        if batch < 1:
            raise ValueError(f"poll batch must be >= 1, got {batch}")
        self.engine = engine
        self.env = engine.env
        self.host = host_config
        self.batch = batch
        #: wr_id -> callback fired with the WC on success (one-shot).
        self._on_success: dict[int, Any] = {}
        #: wr_id -> opaque failure-routing entry, removed on success.
        #: Entries live from post to ACK so a WR that dies — with an
        #: error CQE or with its QP — can be traced back to its message.
        self._on_failure: dict[int, Any] = {}
        # statistics
        self.bindings = 0
        self.completions_routed = 0

    # -- CQ bindings --------------------------------------------------------

    def bind(self, cq, on_wc: WCHandler,
             on_idle: Optional[Callable[[], None]] = None) -> None:
        """Poll ``cq`` on every progress pass, dispatching through ``on_wc``.

        ``on_wc(wc)`` is a generator invoked once per completion, after
        the per-completion poll cost (``t_poll_hit``) has been charged.
        ``on_idle()`` (plain callable) runs after each drained pass —
        the hook where transports check round-completion conditions.
        """
        t_poll_hit = self.host.t_poll_hit
        env = self.env
        batch = self.batch
        # Duck-typed CQs (test doubles) without an entries deque just
        # skip the fast path and always run the full poller.
        entries = getattr(cq, "_entries", None)

        if entries is None:
            quick = None
        else:
            def quick():
                # Nothing to poll: settle the pass without instantiating
                # the poller generator.  Mirrors the generator's
                # empty-CQ run (no yields, idle hook still fires).
                if entries:
                    return None
                if on_idle is not None:
                    on_idle()
                return 0

        def poller():
            handled = 0
            while True:
                wcs = cq.poll(batch)
                if not wcs:
                    break
                for wc in wcs:
                    yield t_poll_hit
                    yield from on_wc(wc)
                    handled += 1
            self.completions_routed += handled
            if on_idle is not None:
                on_idle()
            return handled

        self.engine.register(poller, quick)
        self.engine.watch_cq(cq)
        self.bindings += 1

    # -- keyed dispatch -----------------------------------------------------

    def on_success(self, wr_id: int, callback) -> None:
        """Fire ``callback(wc)`` when ``wr_id`` completes successfully."""
        self._on_success[wr_id] = callback

    def on_failure(self, wr_id: int, entry) -> None:
        """Attach failure-routing state to an in-flight ``wr_id``."""
        self._on_failure[wr_id] = entry

    def pop_success(self, wr_id: int):
        """Consume the success callback for ``wr_id`` (None if absent)."""
        return self._on_success.pop(wr_id, None)

    def pop_failure(self, wr_id: int):
        """Consume the failure entry for ``wr_id`` (None if absent)."""
        return self._on_failure.pop(wr_id, None)

    def discard(self, wr_id: int) -> None:
        """Drop both routing entries for ``wr_id`` (completion landed)."""
        self._on_success.pop(wr_id, None)
        self._on_failure.pop(wr_id, None)

    def sweep_failures(self, predicate) -> list:
        """Remove and return failure entries matching ``predicate``.

        Used by channel recovery to reclaim WRs that vanished with a
        killed QP (dropped in flight, no CQE): whatever is still
        registered against a reconnected lane died unacknowledged.
        Matching success callbacks are dropped alongside.
        """
        swept = []
        for wr_id, entry in list(self._on_failure.items()):
            if predicate(entry):
                del self._on_failure[wr_id]
                self._on_success.pop(wr_id, None)
                swept.append(entry)
        return swept

    def __repr__(self) -> str:
        return (f"<CompletionRouter bindings={self.bindings} "
                f"inflight={len(self._on_failure)}>")
