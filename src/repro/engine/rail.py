"""Rails: ordered QP sets with a scheduling policy.

A *rail* is the unit every transport issues WRs through: an ordered
set of connected QPs plus a policy for picking one per work unit.

* ``STRIPED`` — deterministic ``key % n``; the native module's
  group-to-QP mapping (WRs for a transport group always use the same
  QP, preserving per-group ordering).
* ``ROUND_ROBIN`` — advance on every selection; the persist module's
  read rails and the channel's bulk lanes (UCX multi-path striping).

Multi-rail (multi-NIC-port) configurations build one rail per port
(:func:`build_rails`); with ``NICConfig.n_ports == 1`` this collapses
to exactly the QP set the single-port code created, in the same
creation order, so single-rail timing is bit-identical.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional


class RailPolicy(enum.Enum):
    STRIPED = "striped"
    ROUND_ROBIN = "round-robin"


class Rail:
    """An ordered QP set with a selection policy."""

    def __init__(self, qps: Iterable, policy: RailPolicy = RailPolicy.STRIPED):
        self.qps = list(qps)
        if not self.qps:
            raise ValueError("a rail needs at least one QP")
        self.policy = policy
        self._rr = 0

    def __len__(self) -> int:
        return len(self.qps)

    def __iter__(self):
        return iter(self.qps)

    def __getitem__(self, idx: int):
        return self.qps[idx]

    def select(self, key: Optional[int] = None):
        """Pick the QP for one work unit (advances round-robin state)."""
        if self.policy is RailPolicy.STRIPED:
            if key is None:
                raise ValueError("a striped rail needs a stripe key")
            return self.qps[key % len(self.qps)]
        qp = self.qps[self._rr]
        self._rr = (self._rr + 1) % len(self.qps)
        return qp

    def peek(self, key: Optional[int] = None):
        """The QP :meth:`select` would pick, without advancing state.

        Replay drains use this to test whether a unit's path is back at
        RTS before committing to the selection.
        """
        if self.policy is RailPolicy.STRIPED:
            if key is None:
                raise ValueError("a striped rail needs a stripe key")
            return self.qps[key % len(self.qps)]
        return self.qps[self._rr]

    def acquire(self, key: Optional[int] = None):
        """Select a QP and park until it has an outstanding-RDMA slot;
        yields, returns the QP.

        Software flow control against the 16-outstanding hardware
        limit.  The returned QP may be in ERROR (``wait_rdma_slot``
        fires immediately on a dead QP so nothing hangs): callers check
        RTS and route to recovery, exactly as the inlined loops did.
        """
        qp = self.select(key)
        while not qp.has_rdma_slot():
            yield qp.wait_rdma_slot()
        return qp

    def __repr__(self) -> str:
        return f"<Rail {self.policy.value} qps={len(self.qps)}>"


def build_rails(send_ctx, recv_ctx, send_pd, recv_pd, send_cq, recv_cq,
                n_qps: int, n_ports: int,
                policy: RailPolicy = RailPolicy.STRIPED):
    """Create and connect ``n_ports`` rails of ``n_qps`` QP pairs each.

    Returns ``(send_rails, recv_rails)``.  Both ends of each pair bind
    the same NIC port, so a rail's traffic stays on one wire.  QP
    creation and connection order matches the historical single-port
    loop (send, recv, connect — per pair), keeping QP numbering and
    therefore event ordering identical for ``n_ports == 1``.
    """
    from repro.ib import verbs

    send_rails, recv_rails = [], []
    for port in range(n_ports):
        send_qps, recv_qps = [], []
        for _ in range(n_qps):
            qp_s = send_ctx.create_qp(send_pd, send_cq, send_cq, port=port)
            qp_r = recv_ctx.create_qp(recv_pd, recv_cq, recv_cq, port=port)
            verbs.connect_qps(qp_s, qp_r)
            send_qps.append(qp_s)
            recv_qps.append(qp_r)
        send_rails.append(Rail(send_qps, policy))
        recv_rails.append(Rail(recv_qps, policy))
    return send_rails, recv_rails
