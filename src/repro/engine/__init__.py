"""The transport engine: machinery shared by every MPI module.

Layering (see ``docs/ARCHITECTURE.md``)::

    sim  ->  ib  ->  engine  ->  mpi modules  ->  core policies

The engine owns what every transport used to reimplement privately:

* :class:`~repro.engine.progress.ProgressEngine` — the single-threaded
  progress driver (lock, kick parking, poller registry);
* :class:`~repro.engine.router.CompletionRouter` — CQ polling and
  per-``wr_id`` completion dispatch;
* :class:`~repro.engine.replay.ReplayTracker` — exactly-once replay
  after reconnect, with :func:`~repro.engine.replay.reconnect_walk`;
* :class:`~repro.engine.credit.CreditManager` — round credits,
  deferred backlogs, and receive-queue restocking;
* :class:`~repro.engine.rail.Rail` — ordered QP sets with striped or
  round-robin scheduling; one rail per NIC port;
* :class:`~repro.engine.watchdog.CircuitBreaker` /
  :class:`~repro.engine.watchdog.EdgeWatchdog` — per-edge failure
  accounting and round deadlines for the graceful-degradation ladder.

A new transport module composes these and contributes only policy:
what to post, when, and what counts as round completion.
"""

from repro.engine.credit import CreditManager, restock
from repro.engine.progress import ProgressEngine
from repro.engine.rail import Rail, RailPolicy, build_rails
from repro.engine.replay import ReplayTracker, reconnect_walk
from repro.engine.router import CompletionRouter
from repro.engine.watchdog import CircuitBreaker, EdgeWatchdog

__all__ = [
    "CircuitBreaker",
    "CompletionRouter",
    "CreditManager",
    "EdgeWatchdog",
    "ProgressEngine",
    "Rail",
    "RailPolicy",
    "ReplayTracker",
    "build_rails",
    "reconnect_walk",
    "restock",
]
