"""Round credits and receive-queue restocking.

The sender may only put data on the wire for round N once the
receiver's ``MPI_Start`` for round N has re-armed the buffers — the
remote-readiness problem behind the MPI Forum's ``MPI_Pbuf_prepare``
proposal (paper Section IV-A).  Both the native module and the persist
baseline carried a private copy of this logic (a ``credit(env)``
closure pair that had already drifted); :class:`CreditManager` is the
single implementation.

The receiver's Start grants a credit that reaches the sender one
fabric latency later; work issued before it arrives is *deferred* and
flushed by the credit's arrival.
"""

from __future__ import annotations

from typing import Callable

from repro.ib.wr import RecvWR


def restock(qp, target: int, wr_id_factory: Callable[[], int] = None) -> None:
    """Top a QP's receive queue up to ``target`` entries.

    Shared by ``MPI_Start`` pre-posting and channel recovery (a
    reconnected QP comes back with whatever survived the flush re-armed
    here).  ``wr_id_factory`` supplies receive wr_ids; the default posts
    anonymous (wr_id 0) entries as the p2p channels do.
    """
    while len(qp.rq) < target:
        wr_id = wr_id_factory() if wr_id_factory is not None else 0
        qp.post_recv(RecvWR(wr_id=wr_id))


class CreditManager:
    """One matched pair's round-credit gate plus its deferred backlog.

    ``flush`` is a transport-supplied generator draining the deferred
    list (the native module re-posts ranges; the baseline re-dispatches
    partitions).  It runs on the credit's arrival, in the credit
    process's context — exactly where the old closures ran it.
    """

    def __init__(self, env, flush: Callable):
        self.env = env
        #: Highest round the receiver has granted so far.
        self.armed_round = 0
        #: Work issued ahead of its round credit, FIFO.
        self.deferred: list = []
        self._flush = flush

    def ready(self, round_number: int) -> bool:
        """Whether round ``round_number``'s credit has arrived."""
        return self.armed_round >= round_number

    def defer(self, item) -> None:
        """Park one unit of work behind the pending credit."""
        self.deferred.append(item)

    def defer_all(self, items) -> None:
        """Park several units (grouping opportunities have passed by the
        time the credit lands, so they flush as plain units)."""
        self.deferred.extend(items)

    def grant(self, round_number: int, flight: float) -> None:
        """Receiver side: grant round ``round_number``, ``flight``
        seconds away (one fabric latency).  Arms the round on arrival
        and flushes whatever deferred behind it."""

        def credit(env):
            yield flight
            self.armed_round = max(self.armed_round, round_number)
            if self.deferred:
                yield from self._flush()

        self.env.process(credit(self.env))

    def __repr__(self) -> str:
        return (f"<CreditManager armed_round={self.armed_round} "
                f"deferred={len(self.deferred)}>")
