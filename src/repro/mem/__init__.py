"""Host memory model: buffers and partition views."""

from repro.mem.buffer import Buffer, PartitionedBuffer

__all__ = ["Buffer", "PartitionedBuffer"]
