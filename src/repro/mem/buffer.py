"""Message buffers with optional real numpy backing.

A :class:`Buffer` stands for a contiguous range of host memory that the
simulated NIC can DMA into or out of.  With ``backed=True`` it carries a
real ``numpy.uint8`` array, so tests can assert that RDMA writes place
the right bytes at the right offsets.  With ``backed=False`` (used by
large-scale benchmarks) only sizes and offsets are tracked and data
operations are no-ops — the timing model is identical either way.

:class:`PartitionedBuffer` adds the user-partition view of MPI
Partitioned: ``n`` equal partitions addressable by index, as registered
by ``MPI_Psend_init`` / ``MPI_Precv_init``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import PartitionError, ProtectionError


class Buffer:
    """A contiguous byte range in (simulated) host memory."""

    _next_addr = 0x1000_0000  # fake virtual addresses, never overlapping

    def __init__(self, nbytes: int, backed: bool = True, fill: Optional[int] = None):
        if nbytes <= 0:
            raise ValueError(f"buffer size must be positive, got {nbytes}")
        self.nbytes = int(nbytes)
        #: Fake base virtual address (unique per buffer).
        self.addr = Buffer._next_addr
        Buffer._next_addr += self.nbytes + 0x1000
        self._data: Optional[np.ndarray] = None
        if backed:
            self._data = np.zeros(self.nbytes, dtype=np.uint8)
            if fill is not None:
                self._data[:] = fill

    @property
    def backed(self) -> bool:
        """Whether this buffer carries real bytes."""
        return self._data is not None

    @property
    def data(self) -> np.ndarray:
        """The backing array (raises if unbacked)."""
        if self._data is None:
            raise ProtectionError("buffer is not backed by real memory")
        return self._data

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.nbytes:
            raise ProtectionError(
                f"access [{offset}, {offset + length}) outside buffer of {self.nbytes}B"
            )

    def read(self, offset: int, length: int) -> Optional[np.ndarray]:
        """A view of ``length`` bytes at ``offset`` (None if unbacked)."""
        self._check_range(offset, length)
        if self._data is None:
            return None
        return self._data[offset : offset + length]

    def write(self, offset: int, payload: Optional[np.ndarray]) -> None:
        """Copy ``payload`` into the buffer at ``offset``.

        A ``None`` payload (from an unbacked source) only range-checks.
        """
        if payload is None:
            return
        self._check_range(offset, len(payload))
        if self._data is not None:
            self._data[offset : offset + len(payload)] = payload

    def fill_pattern(self, seed: int = 0) -> None:
        """Fill with a deterministic byte pattern (test helper)."""
        if self._data is not None:
            idx = np.arange(self.nbytes, dtype=np.uint64)
            self._data[:] = ((idx * 131 + seed * 7 + 13) % 251).astype(np.uint8)

    def expected_pattern(self, offset: int, length: int, seed: int = 0) -> np.ndarray:
        """What :meth:`fill_pattern` would have produced for a range."""
        idx = np.arange(offset, offset + length, dtype=np.uint64)
        return ((idx * 131 + seed * 7 + 13) % 251).astype(np.uint8)

    def __repr__(self) -> str:
        kind = "backed" if self.backed else "phantom"
        return f"<Buffer {self.nbytes}B {kind} @ {self.addr:#x}>"


class PartitionedBuffer(Buffer):
    """A buffer divided into ``n_partitions`` equal user partitions.

    Mirrors the MPI Partitioned view: ``partition_size`` bytes each,
    partition ``i`` occupying ``[i * partition_size, (i+1) * partition_size)``.
    """

    def __init__(self, n_partitions: int, partition_size: int, backed: bool = True):
        if n_partitions <= 0:
            raise PartitionError(f"n_partitions must be positive, got {n_partitions}")
        if partition_size <= 0:
            raise PartitionError(f"partition_size must be positive, got {partition_size}")
        super().__init__(n_partitions * partition_size, backed=backed)
        self.n_partitions = int(n_partitions)
        self.partition_size = int(partition_size)

    def partition_offset(self, index: int) -> int:
        """Byte offset of partition ``index``."""
        self._check_partition(index)
        return index * self.partition_size

    def partition_view(self, index: int) -> Optional[np.ndarray]:
        """The bytes of partition ``index`` (None if unbacked)."""
        return self.read(self.partition_offset(index), self.partition_size)

    def range_offset(self, start: int, count: int) -> tuple[int, int]:
        """(offset, length) covering partitions [start, start+count)."""
        self._check_partition(start)
        if count < 1 or start + count > self.n_partitions:
            raise PartitionError(
                f"partition range [{start}, {start + count}) outside "
                f"[0, {self.n_partitions})"
            )
        return start * self.partition_size, count * self.partition_size

    def _check_partition(self, index: int) -> None:
        if not (0 <= index < self.n_partitions):
            raise PartitionError(
                f"partition index {index} outside [0, {self.n_partitions})"
            )

    def __repr__(self) -> str:
        return (
            f"<PartitionedBuffer {self.n_partitions}x{self.partition_size}B "
            f"{'backed' if self.backed else 'phantom'}>"
        )
