"""Persistent tuning store: learned plans that survive the process.

A :class:`TuningStore` is a directory of JSON files, one per learned
``(workload, cluster) → plan`` entry, keyed the same way the ``exp``
result cache keys scenarios: the workload descriptor is canonicalized
(:func:`repro.exp.spec.canonical`) and hashed, so any process that can
describe its workload the same way finds the same entry — a cheap,
incremental replacement for the 23-hour brute-force table that grows
one converged run at a time.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.autotune.policy import PlanChoice

SCHEMA = "repro-autotune-store/v1"


def workload_key(n_user: int, message_size: int,
                 config_tag: str = "", **extra) -> dict:
    """The canonical identity of a tuning entry.

    ``config_tag`` distinguishes clusters (use the config name or a
    hash); ``extra`` admits workload dimensions a caller cares about
    (compute phase, noise profile, ...).
    """
    key = {"n_user": int(n_user), "message_size": int(message_size),
           "config": config_tag}
    key.update(extra)
    return key


def _digest(key: dict) -> str:
    # Late import: repro.exp imports benchmarks which import core, and
    # core.aggregators is imported by this package's policy module.
    from repro.exp.spec import canonical
    return hashlib.sha256(canonical(key).encode()).hexdigest()[:24]


class TuningStore:
    """Content-addressed on-disk store of learned plans."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: dict) -> Path:
        return self.root / f"{_digest(key)}.json"

    def get(self, key: dict) -> Optional[PlanChoice]:
        """The stored plan for ``key``, or None (missing/corrupt)."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("schema") != SCHEMA:
            return None
        try:
            return PlanChoice.from_dict(payload["plan"])
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, key: dict, choice: PlanChoice,
            meta: Optional[dict] = None) -> Path:
        """Persist ``choice`` under ``key`` (atomic replace)."""
        path = self._path(key)
        payload = {
            "schema": SCHEMA,
            "key": key,
            "plan": choice.as_dict(),
            "meta": meta or {},
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def entries(self) -> list[dict]:
        """Every readable entry's full payload (sorted by digest)."""
        out = []
        for path in sorted(self.root.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if payload.get("schema") != SCHEMA:
                continue
            out.append(payload)
        return out

    def lookup(self, n_user: int, message_size: int,
               config_tag: str = "", **extra) -> Optional[PlanChoice]:
        """Convenience: :meth:`get` on a :func:`workload_key`."""
        return self.get(workload_key(n_user, message_size,
                                     config_tag, **extra))

    def __len__(self) -> int:
        return len(self.entries())
