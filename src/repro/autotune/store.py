"""Persistent tuning store: learned plans that survive the process.

A :class:`TuningStore` is a directory of JSON files, one per learned
``(workload, cluster) → plan`` entry, keyed the same way the ``exp``
result cache keys scenarios: the workload descriptor is canonicalized
(:func:`repro.exp.spec.canonical`) and hashed, so any process that can
describe its workload the same way finds the same entry — a cheap,
incremental replacement for the 23-hour brute-force table that grows
one converged run at a time.

The store is deliberately dumb: one process, one directory, no
versions.  The serving layer (:mod:`repro.serve`) shards many of these
directories behind a cache and adds versioned concurrent-writer
safety; anything written there stays readable here (the shard files
use this module's schema), which is what keeps service-served plans
bit-identical to direct store reads.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Protocol, Union, runtime_checkable

from repro.autotune.policy import PlanChoice
from repro.errors import ReproError

SCHEMA = "repro-autotune-store/v1"


@runtime_checkable
class PlanStore(Protocol):
    """What the autotuner asks of a plan store (structural).

    :class:`TuningStore` is the canonical implementation; the serving
    layer's :class:`repro.serve.ServeClient` is another — anything
    speaking these two methods plugs into
    :func:`~repro.autotune.build_autotuner` /
    :class:`~repro.autotune.AdaptiveAggregator`.
    """

    def get(self, key: dict) -> Optional[PlanChoice]: ...

    def put(self, key: dict, choice: PlanChoice,
            meta: Optional[dict] = None): ...


def workload_key(n_user: int, message_size: int,
                 config_tag: str = "", **extra) -> dict:
    """The canonical identity of a tuning entry.

    ``config_tag`` distinguishes clusters (use the config name or a
    hash); ``extra`` admits workload dimensions a caller cares about
    (compute phase, noise profile, ...).
    """
    key = {"n_user": int(n_user), "message_size": int(message_size),
           "config": config_tag}
    key.update(extra)
    return key


def entry_digest(key: dict) -> str:
    """Content address of a tuning key (the entry's file stem)."""
    # Late import: repro.exp imports benchmarks which import core, and
    # core.aggregators is imported by this package's policy module.
    from repro.exp.spec import canonical
    return hashlib.sha256(canonical(key).encode()).hexdigest()[:24]


#: Backwards-compatible private alias (pre-serve callers).
_digest = entry_digest


class TuningStore:
    """Content-addressed on-disk store of learned plans."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Corrupt or alien-schema files seen by reads of this handle
        #: (cumulative).  Surfaced by ``repro-bench autotune`` so store
        #: rot is visible instead of silently reading as "never tuned".
        self.corrupt_entries = 0

    def _path(self, key: dict) -> Path:
        return self.root / f"{entry_digest(key)}.json"

    def _load(self, path: Path) -> Optional[dict]:
        """Parse one entry file; None (and count) when corrupt.

        A *missing* file is a plain miss, not corruption — only a file
        that exists but cannot be read as a schema-valid entry counts.
        """
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            self.corrupt_entries += 1
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            self.corrupt_entries += 1
            return None
        if payload.get("schema") != SCHEMA:
            self.corrupt_entries += 1
            return None
        return payload

    def get(self, key: dict) -> Optional[PlanChoice]:
        """The stored plan for ``key``, or None (missing/corrupt)."""
        payload = self._load(self._path(key))
        if payload is None:
            return None
        try:
            return PlanChoice.from_dict(payload["plan"])
        except (KeyError, TypeError, ValueError, ReproError):
            # ReproError covers schema-valid files holding an invalid
            # plan (e.g. a non-power-of-two transport count).
            self.corrupt_entries += 1
            return None

    def put(self, key: dict, choice: PlanChoice,
            meta: Optional[dict] = None) -> Path:
        """Persist ``choice`` under ``key`` (atomic replace)."""
        path = self._path(key)
        payload = {
            "schema": SCHEMA,
            "key": key,
            "plan": choice.as_dict(),
            "meta": meta or {},
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def entries(self) -> list[dict]:
        """Every readable entry's full payload (sorted by digest).

        A full read: every file is parsed and schema-checked (corrupt
        ones are counted and skipped).  Use :meth:`count` when only the
        entry count is needed.
        """
        out = []
        for path in sorted(self.root.glob("*.json")):
            payload = self._load(path)
            if payload is not None:
                out.append(payload)
        return out

    def count(self) -> int:
        """Cheap entry count: files on disk, no JSON parse.

        Counts every ``*.json`` file, including any corrupt ones — the
        fast path for progress lines and CLI summaries.  ``entries()``
        remains the full (validating) read.
        """
        return sum(1 for _ in self.root.glob("*.json"))

    def lookup(self, n_user: int, message_size: int,
               config_tag: str = "", **extra) -> Optional[PlanChoice]:
        """Convenience: :meth:`get` on a :func:`workload_key`."""
        return self.get(workload_key(n_user, message_size,
                                     config_tag, **extra))

    def __len__(self) -> int:
        return self.count()
