"""Plan-mutation search: tune by rewriting the plan IR, not a grid.

Where :class:`~repro.autotune.policy.BanditPolicy` draws arms from a
fixed candidate grid, :class:`PlanMutationPolicy` walks the mutation
graph of :func:`repro.plan.mutate.neighbors`: it starts from a
model-seeded leaf plan, plays each frontier plan, and — once the
incumbent best has proven itself — expands the frontier with the
incumbent's single-step rewrites.  Search therefore spends its rounds
in the neighbourhood of what is already winning instead of sweeping a
fixed cross product, and the set of plans it may ever try is exactly
the reachable region of the rewrite graph.

The policy still speaks :class:`~repro.autotune.policy.PlanChoice` to
the controller/module (a leaf plan and a choice triple are
bijective), but its identity is IR-native: frontier membership,
crediting and the tuning-store key all go through plan digests.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Optional, Sequence

import numpy as np

from repro.config import ClusterConfig
from repro.errors import ConfigError
from repro.plan import Aggregate, Partition, Plan, QPPool, choice_plan
from repro.plan.mutate import neighbors

from repro.autotune.policy import PlanChoice, Policy


def plan_to_choice(plan: Plan) -> PlanChoice:
    """The 3-knob choice a leaf plan denotes (inverse of
    :func:`repro.plan.choice_plan`)."""
    part = plan.first(Partition)
    if part is None:
        raise ConfigError(
            f"not a leaf plan (no partition op): {plan.digest}")
    pool = plan.first(QPPool)
    agg = plan.first(Aggregate)
    return PlanChoice(
        n_transport=part.n,
        n_qps=pool.n if pool is not None else 1,
        delta=agg.delta if agg is not None else None)


class PlanMutationPolicy(Policy):
    """Epsilon-greedy search over the plan-rewrite graph.

    Rounds proceed in three regimes:

    1. **sweep** — every frontier plan gets one play, in insertion
       order;
    2. **expand** — when the incumbent best has ``expand_after``
       plays and has not been expanded yet, its
       :func:`~repro.plan.mutate.neighbors` join the frontier
       (bounded by ``max_frontier``), sending the policy back to the
       sweep;
    3. **exploit** — otherwise play the incumbent, except with
       probability ``epsilon x decay^t`` a uniform frontier draw
       (deterministic given ``seed``).

    The policy is ``confident`` once the frontier is fully played,
    the incumbent has been expanded (its whole neighbourhood was
    evaluated — a local optimum of the rewrite graph), and the
    incumbent has ``min_confident_plays`` plays.

    ``window`` mirrors :class:`~repro.autotune.policy.BanditPolicy`:
    when set, each plan's cost estimate is the mean of its last
    ``window`` observations rather than the all-time running mean, so
    the walk can re-converge after the fabric's background load shifts
    (the :mod:`repro.fleet` noisy-neighbor scenario).  ``None`` keeps
    the historical behaviour bit for bit.
    """

    def __init__(self, seed_plan: Plan, n_user: int,
                 config: ClusterConfig,
                 deltas: Sequence[Optional[float]] = (),
                 qp_cap: Optional[int] = None,
                 epsilon: float = 0.3, decay: float = 0.9,
                 seed: int = 0, expand_after: int = 2,
                 max_frontier: int = 32,
                 min_confident_plays: int = 2,
                 window: Optional[int] = None):
        from repro.core.aggregators import _qps_for

        if not (0 <= epsilon <= 1):
            raise ConfigError(f"epsilon must be in [0, 1], got {epsilon}")
        if not (0 < decay <= 1):
            raise ConfigError(f"decay must be in (0, 1], got {decay}")
        if expand_after < 1:
            raise ConfigError(
                f"expand_after must be >= 1, got {expand_after}")
        if max_frontier < 2:
            raise ConfigError(
                f"max_frontier must be >= 2, got {max_frontier}")
        if window is not None and window < 1:
            raise ConfigError(f"window must be >= 1, got {window}")
        self.n_user = n_user
        self.config = config
        self.deltas = tuple(deltas)
        #: Ceiling on qp_pool mutations; the adaptive aggregator
        #: provisions this many QPs, so no rewrite can outgrow them.
        self.qp_cap = qp_cap if qp_cap is not None \
            else _qps_for(n_user, n_user, config)
        self.epsilon = epsilon
        self.decay = decay
        self.expand_after = expand_after
        self.max_frontier = max_frontier
        self.min_confident_plays = min_confident_plays
        self.window = window
        self._rng = np.random.default_rng(seed)
        self._steps = 0
        #: digest -> Plan, in insertion order (the search frontier).
        self._frontier: dict[str, Plan] = {}
        self._plays: dict[str, int] = {}
        self._mean_cost: dict[str, float] = {}
        self._recent: dict[str, deque] = {}
        self._expanded: set[str] = set()
        # Canonicalize: frontier identity is the digest of the bare
        # 3-knob leaf form, the same form observe() derives from the
        # round's PlanChoice — so crediting always finds its plan.
        seed_plan = choice_plan(plan_to_choice(seed_plan))
        self._seed_digest = seed_plan.digest
        self._add(seed_plan)
        # Provisioning envelope: make the reachable maximum (widest
        # partition fan-out, QP ceiling) a real frontier member, so
        # candidates() — which sizes the aggregator's QP pool — covers
        # every plan the mutation walk can reach.
        self._add(self._envelope(seed_plan))

    # -- frontier plumbing ---------------------------------------------

    def _add(self, plan: Plan) -> None:
        if plan.digest in self._frontier:
            return
        if len(self._frontier) >= self.max_frontier:
            return
        plan_to_choice(plan).validate_for(self.n_user)
        self._frontier[plan.digest] = plan
        self._plays[plan.digest] = 0
        self._mean_cost[plan.digest] = 0.0
        if self.window is not None:
            self._recent[plan.digest] = deque(maxlen=self.window)

    def _envelope(self, seed_plan: Plan) -> Plan:
        choice = plan_to_choice(seed_plan)
        n_max = 1 << (self.n_user.bit_length() - 1)
        return choice_plan(PlanChoice(
            n_transport=n_max,
            n_qps=max(1, min(self.qp_cap, n_max)),
            delta=choice.delta))

    def _best_digest(self) -> str:
        played = [(self._mean_cost[d], d) for d in self._frontier
                  if self._plays[d]]
        if not played:
            return self._seed_digest
        return min(played)[1]

    def _expand(self, digest: str) -> None:
        self._expanded.add(digest)
        for cand in neighbors(self._frontier[digest], self.n_user,
                              self.config, deltas=self.deltas,
                              qp_cap=self.qp_cap):
            self._add(cand)

    # -- Policy interface ----------------------------------------------

    def candidates(self) -> list[PlanChoice]:
        return [plan_to_choice(p) for p in self._frontier.values()]

    def frontier(self) -> list[Plan]:
        """The current frontier plans, in insertion order."""
        return list(self._frontier.values())

    def choose(self, round_no: int) -> PlanChoice:
        best = self._best_digest()
        if (self._plays[best] >= self.expand_after
                and best not in self._expanded
                and len(self._frontier) < self.max_frontier):
            self._expand(best)
        for digest, plays in self._plays.items():
            if plays == 0:
                return plan_to_choice(self._frontier[digest])
        self._steps += 1
        eps = self.epsilon * self.decay ** self._steps
        if self._rng.random() < eps:
            digests = list(self._frontier)
            pick = digests[int(self._rng.integers(len(digests)))]
            return plan_to_choice(self._frontier[pick])
        return plan_to_choice(self._frontier[best])

    def observe(self, choice, obs, tracker):
        digest = choice_plan(choice).digest
        if digest not in self._frontier:
            return  # a pinned/foreign choice; nothing to credit
        self._plays[digest] += 1
        if self.window is not None:
            recent = self._recent[digest]
            recent.append(obs.completion_time)
            self._mean_cost[digest] = sum(recent) / len(recent)
        else:
            n = self._plays[digest]
            self._mean_cost[digest] += \
                (obs.completion_time - self._mean_cost[digest]) / n

    def best(self) -> PlanChoice:
        return plan_to_choice(self._frontier[self._best_digest()])

    def best_plan_ir(self) -> Plan:
        return self._frontier[self._best_digest()]

    @property
    def confident(self) -> bool:
        if any(p == 0 for p in self._plays.values()):
            return False
        best = self._best_digest()
        if best not in self._expanded \
                and len(self._frontier) < self.max_frontier:
            return False
        return self._plays[best] >= self.min_confident_plays

    def plan_space_digest(self) -> str:
        """Identity of the reachable rewrite space (seed + move set).

        The frontier grows over time, so unlike the grid policies the
        space is identified by its generator: the seed plan's digest,
        the δ move set, and the QP ceiling.
        """
        spec = "|".join([
            "mutation", self._seed_digest, str(self.qp_cap),
            ",".join("none" if d is None else repr(float(d))
                     for d in self.deltas),
        ])
        return hashlib.sha256(spec.encode()).hexdigest()[:16]

    def mean_cost(self, choice: PlanChoice) -> Optional[float]:
        """Observed mean completion time of ``choice`` (None if unplayed)."""
        digest = choice_plan(choice).digest
        if self._plays.get(digest):
            return self._mean_cost[digest]
        return None

    def describe(self) -> str:
        played = sum(1 for p in self._plays.values() if p)
        return (f"plan-mutation({played}/{len(self._frontier)} plans "
                f"played, {len(self._expanded)} expanded)")
