"""Closed-loop aggregation tuning (the online answer to Section IV-D).

The paper's aggregators are open-loop: an offline table, a one-shot
model prediction, or a fixed δ.  This package closes the loop — a
controller observes every iteration of a persistent partitioned
exchange and adapts the next iteration's ``(n_transport, n_qps, δ)``
plan, persisting what it learns across runs.

Layering: ``observe`` (sensors) → ``policy`` / ``plan_policy``
(decisions; the latter searches by rewriting the ``repro.plan`` IR) →
``controller`` (the loop) → ``aggregator`` (the ``core.module``
plug-in) → ``store`` (cross-run persistence, keyed by workload and
plan-space digest).
"""

from repro.autotune.aggregator import (
    AdaptiveAggregator,
    PolicyBuilder,
    build_autotuner,
)
from repro.autotune.controller import AutotuneController, RoundRecord
from repro.autotune.observe import ArrivalTracker, IterationObservation
from repro.autotune.plan_policy import PlanMutationPolicy, plan_to_choice
from repro.autotune.policy import (
    BanditPolicy,
    DeltaTrackerPolicy,
    PlanChoice,
    Policy,
    StaticPolicy,
    candidate_plans,
)
from repro.autotune.store import PlanStore, TuningStore, workload_key

__all__ = [
    "AdaptiveAggregator",
    "ArrivalTracker",
    "AutotuneController",
    "BanditPolicy",
    "DeltaTrackerPolicy",
    "IterationObservation",
    "PlanChoice",
    "PlanMutationPolicy",
    "PlanStore",
    "Policy",
    "PolicyBuilder",
    "plan_to_choice",
    "RoundRecord",
    "StaticPolicy",
    "TuningStore",
    "build_autotuner",
    "candidate_plans",
    "workload_key",
]
