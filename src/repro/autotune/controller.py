"""The closed loop: plan a round, watch it run, plan the next one.

An :class:`AutotuneController` sits between the native module and a
:class:`~repro.autotune.policy.Policy`.  The module asks it for a
:class:`~repro.autotune.policy.PlanChoice` at the top of every round
(``plan_for_round``) and hands back an
:class:`~repro.autotune.observe.IterationObservation` when the previous
round's timings are known (``observe``).  The controller keeps the
per-round history, feeds the arrival tracker and the policy, and — when
the policy declares itself confident — commits the current best plan to
a :class:`~repro.autotune.store.TuningStore` so the next *process* can
start converged (round trips across runs).

When the store already holds an entry for the workload, the controller
pins it: every round replays the stored plan, no exploration happens,
and the run behaves like a statically tuned one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.autotune.observe import ArrivalTracker, IterationObservation
from repro.autotune.policy import PlanChoice, Policy
from repro.autotune.store import PlanStore


@dataclass
class RoundRecord:
    """One round as the controller saw it."""

    round: int
    choice: PlanChoice
    #: Whether the choice was held over (recovery) or store-pinned.
    held: bool = False
    completion_time: Optional[float] = None
    #: Whether the round's observation was quarantined (overlapped a
    #: fault-recovery window) and kept out of the policy statistics.
    quarantined: bool = False


class AutotuneController:
    """Per-request closed-loop tuner (one instance per persistent request)."""

    def __init__(self, policy: Policy,
                 tracker: Optional[ArrivalTracker] = None,
                 store: Optional[PlanStore] = None,
                 store_key: Optional[dict] = None,
                 store_meta: Optional[dict] = None):
        if store is not None and store_key is None:
            raise ValueError("a store requires a store_key")
        self.policy = policy
        self.tracker = tracker if tracker is not None else ArrivalTracker()
        self.store = store
        self.store_key = store_key
        self.store_meta = store_meta or {}
        self.history: list[RoundRecord] = []
        self._by_round: dict[int, RoundRecord] = {}
        self._committed: Optional[PlanChoice] = None
        #: Plan pinned from a previous run's store entry (no exploration).
        self.pinned: Optional[PlanChoice] = None
        if store is not None:
            self.pinned = store.get(store_key)

    # -- planning side -------------------------------------------------

    def plan_for_round(self, round_no: int, hold: bool = False) -> PlanChoice:
        """The plan to apply for ``round_no`` (idempotent per round).

        ``hold=True`` repeats the previous round's choice — the module
        raises it while fault recovery or replay is pending, so the
        tuner never flips the layout under a half-replayed round.
        """
        record = self._by_round.get(round_no)
        if record is not None:
            return record.choice
        if self.pinned is not None:
            choice, held = self.pinned, True
        elif hold and self.history:
            choice, held = self.history[-1].choice, True
        else:
            choice, held = self.policy.choose(round_no), False
        record = RoundRecord(round=round_no, choice=choice, held=held)
        self.history.append(record)
        self._by_round[round_no] = record
        return choice

    # -- observation side ----------------------------------------------

    def observe(self, obs: IterationObservation) -> None:
        """Credit a completed round's observation to its choice.

        Tainted observations (round overlapped a fault-recovery
        window) are quarantined: the completion time is recorded on
        the round for diagnostics, but neither the arrival tracker nor
        the policy sees it — a fault must not poison an arm's score.
        """
        record = self._by_round.get(obs.round)
        if record is None:
            return
        record.completion_time = obs.completion_time
        if obs.tainted:
            record.quarantined = True
            return
        self.tracker.observe(obs.pready_times)
        self.policy.observe(record.choice, obs, self.tracker)
        self._maybe_commit()

    def _maybe_commit(self) -> None:
        if self.store is None or self.pinned is not None:
            return
        if not self.policy.confident:
            return
        best = self.policy.best()
        if best == self._committed:
            return
        meta = dict(self.store_meta)
        meta["rounds_observed"] = sum(
            1 for r in self.history if r.completion_time is not None)
        meta["policy"] = self.policy.describe()
        plan_ir = self.policy.best_plan_ir()
        meta["plan_ir"] = plan_ir.text
        meta["plan_digest"] = plan_ir.digest
        self.store.put(self.store_key, best, meta=meta)
        self._committed = best

    # -- diagnostics ---------------------------------------------------

    @property
    def best_choice(self) -> PlanChoice:
        return self.pinned if self.pinned is not None else self.policy.best()

    @property
    def explored(self) -> bool:
        """True when more than one distinct plan was applied."""
        return len({r.choice for r in self.history}) > 1

    @property
    def converged_round(self) -> Optional[int]:
        """First round of the trailing run of identical choices.

        None until at least one round has been planned.
        """
        if not self.history:
            return None
        final = self.history[-1].choice
        start = self.history[-1].round
        for record in reversed(self.history):
            if record.choice != final:
                break
            start = record.round
        return start

    def mean_time_of(self, choice: PlanChoice) -> Optional[float]:
        """Observed mean completion time of ``choice`` across rounds."""
        times = [r.completion_time for r in self.history
                 if r.choice == choice and r.completion_time is not None
                 and not r.quarantined]
        if not times:
            return None
        return sum(times) / len(times)

    def round_plans(self) -> list[dict]:
        """JSON-friendly per-round history (for experiment results)."""
        return [
            {"round": r.round, "held": r.held,
             "completion_time": r.completion_time,
             "quarantined": r.quarantined, **r.choice.as_dict()}
            for r in self.history
        ]
