"""Per-iteration observations and arrival statistics.

The controller's sensor layer: each round of a persistent partitioned
exchange yields one :class:`IterationObservation` (per-partition
``Pready`` times, achieved completion time, WR/flush/retransmit deltas
from :class:`repro.sim.monitor.Counters`), and an
:class:`ArrivalTracker` folds the arrival timestamps into EWMA and
windowed-quantile statistics of the inter-partition gaps — the signal
the δ-retargeting policy steers on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ConfigError


@dataclass(frozen=True)
class IterationObservation:
    """What one completed round of the exchange looked like.

    Attributes
    ----------
    round:
        The request round the observation belongs to (``req.round``).
    completion_time:
        Iteration wall time: ``max(send done, recv done) - round start``.
    pready_times:
        Per-partition ``MPI_Pready`` timestamps (absolute virtual time;
        may be non-monotone — threads race).
    wrs_posted:
        WRs the module posted this round.
    timer_flushes:
        δ-timer flushes this round.
    retransmits:
        Fabric retransmit counter delta this round (fault pressure).
    tainted:
        True when the round overlapped a fault-recovery window (retry
        exhaustion, reconnect, or replay in flight): the timing
        measures the fault, not the plan, and the controller
        quarantines it from the policy statistics.
    """

    round: int
    completion_time: float
    pready_times: tuple[float, ...] = ()
    wrs_posted: int = 0
    timer_flushes: int = 0
    retransmits: int = 0
    tainted: bool = False

    @property
    def spread(self) -> float:
        """Full first-to-last arrival spread (laggard included)."""
        if len(self.pready_times) < 2:
            return 0.0
        return max(self.pready_times) - min(self.pready_times)


def _sorted_gaps(times: Sequence[float]) -> list[float]:
    """Consecutive inter-arrival gaps after sorting.

    Sorting first makes the statistics insensitive to thread racing:
    ``Pready`` timestamps arrive in whatever order the workers finish,
    which is not partition order.
    """
    srt = sorted(times)
    return [b - a for a, b in zip(srt, srt[1:])]


def _quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile without numpy (tiny windows, hot path)."""
    if not values:
        return 0.0
    if not (0.0 <= q <= 1.0):
        raise ConfigError(f"quantile must be in [0, 1], got {q}")
    srt = sorted(values)
    idx = min(len(srt) - 1, max(0, round(q * (len(srt) - 1))))
    return srt[idx]


@dataclass
class ArrivalTracker:
    """EWMA + windowed-quantile statistics of arrival gaps.

    Two families of signal, both per-round:

    * the **non-laggard spread** — first-to-last gap after dropping the
      ``laggards`` latest arrivals (the paper's min-δ recipe,
      Section V-C3) — what a δ-timer should cover;
    * the **laggard gap** — how far the excluded laggard(s) trail the
      non-laggard pack — what a δ-timer should *not* wait for.

    ``alpha`` smooths the EWMAs; the last ``window`` rounds feed the
    quantile estimators (:meth:`spread_quantile`, :meth:`gap_quantile`).
    """

    alpha: float = 0.3
    window: int = 32
    laggards: int = 1
    ewma_spread: Optional[float] = None
    ewma_laggard_gap: Optional[float] = None
    rounds_seen: int = 0
    _spreads: deque = field(default_factory=deque, repr=False)
    _gaps: deque = field(default_factory=deque, repr=False)

    def __post_init__(self):
        if not (0 < self.alpha <= 1):
            raise ConfigError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.window < 1:
            raise ConfigError(f"window must be >= 1, got {self.window}")
        if self.laggards < 0:
            raise ConfigError(f"negative laggards: {self.laggards}")

    def observe(self, pready_times: Sequence[float]) -> None:
        """Fold one round of arrival timestamps into the statistics."""
        srt = sorted(pready_times)
        if not srt:
            return
        self.rounds_seen += 1
        drop = min(self.laggards, len(srt) - 1)
        pack = srt[:len(srt) - drop] if drop else srt
        spread = pack[-1] - pack[0] if len(pack) > 1 else 0.0
        laggard_gap = srt[-1] - pack[-1] if drop else 0.0
        self._push(self._spreads, spread)
        self._push(self._gaps, laggard_gap)
        self.ewma_spread = self._blend(self.ewma_spread, spread)
        self.ewma_laggard_gap = self._blend(self.ewma_laggard_gap, laggard_gap)

    def _push(self, dq: deque, value: float) -> None:
        dq.append(value)
        while len(dq) > self.window:
            dq.popleft()

    def _blend(self, current: Optional[float], value: float) -> float:
        if current is None:
            return value
        return (1 - self.alpha) * current + self.alpha * value

    def spread_quantile(self, q: float = 0.95) -> float:
        """Windowed quantile of the non-laggard spread."""
        return _quantile(self._spreads, q)

    def gap_quantile(self, q: float = 0.95) -> float:
        """Windowed quantile of the laggard gap."""
        return _quantile(self._gaps, q)

    @property
    def ready(self) -> bool:
        """True once at least one round has been observed."""
        return self.rounds_seen > 0
