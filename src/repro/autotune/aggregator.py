"""The aggregator that carries a closed-loop controller into the module.

:class:`AdaptiveAggregator` satisfies the same
:class:`~repro.core.aggregators.Aggregator` interface as the paper's
open-loop strategies, so it plugs into ``Psend_init`` unchanged.  Its
plan *provisions* — QPs are built for the largest candidate arm — and
attaches an :class:`~repro.autotune.controller.AutotuneController`
that the native module consults at the top of every round.

:func:`build_autotuner` is the JSON-safe factory shared by the ``exp``
descriptor vocabulary, the benchmarks, and the CLI: a plain parameter
dict in, a ready aggregator out.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config import ClusterConfig
from repro.core.aggregators import AggregationPlan, Aggregator, _qps_for
from repro.errors import ConfigError
from repro.units import ms

from repro.autotune.controller import AutotuneController
from repro.autotune.observe import ArrivalTracker
from repro.autotune.policy import (
    BanditPolicy,
    DeltaTrackerPolicy,
    PlanChoice,
    Policy,
    StaticPolicy,
    candidate_plans,
)
from repro.autotune.store import PlanStore, workload_key

#: (n_user, partition_size, config) -> Policy, called once per request.
PolicyBuilder = Callable[[int, int, ClusterConfig], Policy]


class AdaptiveAggregator(Aggregator):
    """Closed-loop aggregation: plan per round, not per request."""

    def __init__(self, policy_builder: PolicyBuilder,
                 store: Optional[PlanStore] = None,
                 config_tag: str = "", key_extra: Optional[dict] = None,
                 tracker_alpha: float = 0.3, tracker_window: int = 32):
        self.policy_builder = policy_builder
        self.store = store
        self.config_tag = config_tag
        self.key_extra = dict(key_extra or {})
        self.tracker_alpha = tracker_alpha
        self.tracker_window = tracker_window
        #: The most recent request's controller (inspection/benchmarks).
        self.controller: Optional[AutotuneController] = None

    def plan(self, n_user, partition_size, config):
        policy = self.policy_builder(n_user, partition_size, config)
        arms = policy.candidates()
        if not arms:
            raise ConfigError("autotune policy produced no candidates")
        for choice in arms:
            choice.validate_for(n_user)
        store_key = None
        if self.store is not None:
            # The plan-space digest keys the entry to the *structure*
            # being searched, not just the workload: two policies whose
            # knob tuples coincide but whose plan IR differs get
            # distinct entries.
            store_key = workload_key(
                n_user, n_user * partition_size, self.config_tag,
                plan_space=policy.plan_space_digest(),
                **self.key_extra)
        controller = AutotuneController(
            policy,
            tracker=ArrivalTracker(alpha=self.tracker_alpha,
                                   window=self.tracker_window),
            store=self.store, store_key=store_key,
            store_meta={"config": self.config_tag})
        pinned = controller.pinned
        if pinned is not None and pinned.n_transport > n_user:
            # A stale entry from a different workload shape: ignore it
            # and let this run re-learn (and overwrite) the plan.
            controller.pinned = pinned = None
        self.controller = controller
        n_qps = max(choice.n_qps for choice in arms)
        if pinned is not None:
            n_qps = max(n_qps, pinned.n_qps)
        first = pinned if pinned is not None else arms[0]
        return AggregationPlan(
            n_transport=first.n_transport,
            n_qps=n_qps,
            timer_delta=first.delta,
            controller=controller,
        )

    def describe(self):
        if self.controller is not None:
            return f"autotune({self.controller.policy.describe()})"
        return "autotune(unplanned)"


def _seed_params(p: dict):
    """LogGP parameters seeding the candidate set (None disables)."""
    if p.get("seed_model", True):
        from repro.model.tables import NIAGARA_LOGGP

        return NIAGARA_LOGGP
    return None


def build_autotuner(params: Optional[dict] = None,
                    store: Optional[PlanStore] = None) -> AdaptiveAggregator:
    """Build an :class:`AdaptiveAggregator` from a JSON-safe dict.

    ``store`` is anything speaking the
    :class:`~repro.autotune.store.PlanStore` protocol — a local
    :class:`~repro.autotune.TuningStore` or a
    :class:`repro.serve.ServeClient` resolving plans through the
    tuning service.

    ``params["policy"]`` selects the policy:

    * ``"bandit"`` (default) — epsilon-greedy/UCB over
      :func:`~repro.autotune.policy.candidate_plans`; knobs: ``counts``,
      ``deltas``, ``span``, ``epsilon``, ``decay``, ``mode``,
      ``bandit_seed``, ``delay``, ``seed_model``, ``window``
      (sliding-window cost estimates for shifting fabrics).
    * ``"delta_tracker"`` — δ retargeting on a PLogGP-derived (or
      explicit ``base``) layout; knobs: ``delta`` (seed), ``quantile``,
      ``margin``, ``alpha``, ``min_delta``, ``max_delta``.
    * ``"static"`` — pin ``params["choice"]`` (controller machinery
      validation; behaves like the equivalent fixed aggregator).
    * ``"plan_mutation"`` — epsilon-greedy walk of the plan-IR rewrite
      graph (:class:`~repro.autotune.plan_policy.PlanMutationPolicy`)
      from a PLogGP-seeded (or explicit ``seed_plan`` text) leaf plan;
      knobs: ``deltas``, ``epsilon``, ``decay``, ``bandit_seed``,
      ``expand_after``, ``max_frontier``, ``delay``, ``seed_model``,
      ``window``.
    """
    p = dict(params or {})
    name = p.get("policy", "bandit")

    if name == "bandit":
        def builder(n_user, partition_size, config):
            arms = candidate_plans(
                n_user, partition_size, config,
                params=_seed_params(p), delay=p.get("delay", ms(4)),
                counts=p.get("counts"),
                deltas=tuple(p.get("deltas", [None])),
                span=p.get("span", 2))
            return BanditPolicy(
                arms, epsilon=p.get("epsilon", 0.2),
                decay=p.get("decay", 0.95), mode=p.get("mode", "epsilon"),
                exploration=p.get("exploration", 1.0),
                seed=p.get("bandit_seed", 0),
                min_confident_plays=p.get("min_confident_plays", 2),
                window=p.get("window"))
    elif name == "delta_tracker":
        def builder(n_user, partition_size, config):
            base = p.get("base")
            if base is not None:
                base_choice = PlanChoice.from_dict(base)
            else:
                from repro.model.ploggp import optimal_transport_partitions

                seed = _seed_params(p)
                if seed is None:
                    raise ConfigError(
                        "delta_tracker needs a base plan or seed_model")
                t = optimal_transport_partitions(
                    seed, n_user * partition_size, n_user=n_user,
                    delay=p.get("delay", ms(4)),
                    max_transport=p.get("max_transport", 32))
                t = min(t, n_user)
                base_choice = PlanChoice(
                    n_transport=t, n_qps=_qps_for(t, n_user, config),
                    delta=p["delta"])
            return DeltaTrackerPolicy(
                base_choice, quantile=p.get("quantile", 0.95),
                margin=p.get("margin", 1.25), alpha=p.get("alpha", 0.5),
                min_delta=p.get("min_delta", 1e-6),
                max_delta=p.get("max_delta", 1e-3),
                warm_rounds=p.get("warm_rounds", 4))
    elif name == "static":
        def builder(n_user, partition_size, config):
            return StaticPolicy(PlanChoice.from_dict(p["choice"]))
    elif name == "plan_mutation":
        def builder(n_user, partition_size, config):
            from repro.plan import leaf_plan, parse

            from repro.autotune.plan_policy import PlanMutationPolicy

            seed_text = p.get("seed_plan")
            if seed_text is not None:
                seed_plan = parse(seed_text)
            else:
                from repro.model.ploggp import optimal_transport_partitions

                model = _seed_params(p)
                if model is None:
                    raise ConfigError(
                        "plan_mutation needs a seed_plan or seed_model")
                t = optimal_transport_partitions(
                    model, n_user * partition_size, n_user=n_user,
                    delay=p.get("delay", ms(4)),
                    max_transport=p.get("max_transport", 32))
                t = min(t, n_user)
                seed_plan = leaf_plan(t, _qps_for(t, n_user, config))
            return PlanMutationPolicy(
                seed_plan, n_user=n_user, config=config,
                deltas=tuple(p.get("deltas", [])),
                epsilon=p.get("epsilon", 0.3),
                decay=p.get("decay", 0.9),
                seed=p.get("bandit_seed", 0),
                expand_after=p.get("expand_after", 2),
                max_frontier=p.get("max_frontier", 32),
                min_confident_plays=p.get("min_confident_plays", 2),
                window=p.get("window"))
    else:
        raise ConfigError(f"unknown autotune policy {name!r}")

    return AdaptiveAggregator(
        builder, store=store, config_tag=p.get("config_tag", ""),
        key_extra=p.get("key_extra"),
        tracker_alpha=p.get("tracker_alpha", 0.3),
        tracker_window=p.get("tracker_window", 32))
