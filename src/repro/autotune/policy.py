"""Tuning policies: how the controller picks the next round's plan.

A :class:`Policy` maps the observation stream to a
:class:`PlanChoice` — the ``(n_transport, n_qps, δ)`` triple applied to
the next round.  Three implementations span the design space the paper
left open (Section IV-D, "an online auto-tuning approach could be
used"):

* :class:`StaticPolicy` — one fixed choice; wraps the paper's
  open-loop aggregators so the controller machinery can be validated
  against them bit for bit.
* :class:`DeltaTrackerPolicy` — keeps the transport layout fixed and
  retargets δ to the observed non-laggard arrival-spread quantile, the
  measurement-guided replacement for Fig. 12's offline min-δ table.
* :class:`BanditPolicy` — epsilon-greedy or UCB1 search over a
  candidate plan set seeded by the PLogGP prediction
  (:func:`candidate_plans`), the cheap incremental replacement for the
  23-hour brute-force table.
"""

from __future__ import annotations

import abc
import math
from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.config import ClusterConfig
from repro.core.aggregators import _qps_for
from repro.errors import ConfigError, TuningError
from repro.model.ploggp import ParamsLike, optimal_transport_partitions
from repro.units import is_power_of_two, powers_of_two

from repro.autotune.observe import ArrivalTracker, IterationObservation


@dataclass(frozen=True)
class PlanChoice:
    """One point in the tuning space (a round-applicable plan)."""

    n_transport: int
    n_qps: int
    #: δ-timer value; None = plain (non-timer) path.
    delta: Optional[float] = None

    def __post_init__(self):
        if not is_power_of_two(self.n_transport):
            raise ConfigError(
                f"n_transport must be a power of two, got {self.n_transport}")
        if self.n_qps < 1:
            raise ConfigError(f"need at least one QP, got {self.n_qps}")
        if self.delta is not None and self.delta < 0:
            raise ConfigError(f"negative delta: {self.delta}")

    def validate_for(self, n_user: int) -> None:
        if self.n_transport > n_user:
            raise TuningError(
                f"choice n_transport {self.n_transport} exceeds "
                f"n_user {n_user}")

    def as_dict(self) -> dict:
        return {"n_transport": self.n_transport, "n_qps": self.n_qps,
                "delta": self.delta}

    @classmethod
    def from_dict(cls, d: dict) -> "PlanChoice":
        return cls(n_transport=int(d["n_transport"]),
                   n_qps=int(d["n_qps"]),
                   delta=None if d.get("delta") is None else float(d["delta"]))


class Policy(abc.ABC):
    """Strategy interface for closed-loop plan selection."""

    @abc.abstractmethod
    def candidates(self) -> list[PlanChoice]:
        """Every choice this policy may ever return."""

    @abc.abstractmethod
    def choose(self, round_no: int) -> PlanChoice:
        """The plan to apply for ``round_no``."""

    def observe(self, choice: PlanChoice, obs: IterationObservation,
                tracker: ArrivalTracker) -> None:
        """Feedback: ``choice`` ran and produced ``obs``."""

    @abc.abstractmethod
    def best(self) -> PlanChoice:
        """Current best estimate (what the store should persist)."""

    @property
    def confident(self) -> bool:
        """True once :meth:`best` is worth persisting."""
        return False

    def best_plan_ir(self):
        """:meth:`best` as a :class:`repro.plan.Plan` (IR leaf form)."""
        from repro.plan import choice_plan

        return choice_plan(self.best())

    def plan_space_digest(self) -> str:
        """Content digest of the plan space this policy searches.

        Mixed into the :class:`~repro.autotune.store.TuningStore` key,
        so two policies whose knob tuples coincide but whose plan
        structures differ can never collide on a stored entry.  The
        default hashes the sorted IR digests of every candidate;
        policies with an unbounded space override this with their
        generator's identity.
        """
        import hashlib

        from repro.plan import choice_plan

        digests = sorted(choice_plan(c).digest for c in self.candidates())
        return hashlib.sha256(
            "\n".join(digests).encode()).hexdigest()[:16]

    def describe(self) -> str:
        return type(self).__name__


class StaticPolicy(Policy):
    """A single fixed choice (open-loop plan inside the closed loop)."""

    def __init__(self, choice: PlanChoice):
        self.choice = choice

    def candidates(self):
        return [self.choice]

    def choose(self, round_no):
        return self.choice

    def best(self):
        return self.choice

    @property
    def confident(self):
        return True

    def describe(self):
        return f"static({self.choice.n_transport}T/{self.choice.n_qps}QP)"


class DeltaTrackerPolicy(Policy):
    """Retarget δ to the observed arrival-spread quantile.

    Transport layout stays at ``base``; after each round δ moves toward
    ``margin x spread_quantile(quantile)`` with EWMA smoothing
    ``alpha``, clamped to ``[min_delta, max_delta]``.  Where the
    existing :class:`~repro.core.aggregators.AdaptiveDelta` smooths the
    per-round spread itself, this policy steers on a windowed quantile,
    so one quiet round cannot collapse δ below the recurring skew.
    """

    def __init__(self, base: PlanChoice, quantile: float = 0.95,
                 margin: float = 1.25, alpha: float = 0.5,
                 min_delta: float = 1e-6, max_delta: float = 1e-3,
                 warm_rounds: int = 4):
        if base.delta is None:
            raise ConfigError("DeltaTrackerPolicy needs a δ-armed base plan")
        if not (0 < quantile <= 1):
            raise ConfigError(f"quantile must be in (0, 1], got {quantile}")
        if margin <= 0:
            raise ConfigError(f"margin must be positive, got {margin}")
        if not (0 < alpha <= 1):
            raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
        if not (0 < min_delta <= max_delta):
            raise ConfigError("need 0 < min_delta <= max_delta")
        if warm_rounds < 1:
            raise ConfigError(f"warm_rounds must be >= 1, got {warm_rounds}")
        self.base = base
        self.quantile = quantile
        self.margin = margin
        self.alpha = alpha
        self.min_delta = min_delta
        self.max_delta = max_delta
        self.warm_rounds = warm_rounds
        self._delta = base.delta
        self._rounds = 0

    def candidates(self):
        return [self.base]

    def choose(self, round_no):
        return PlanChoice(n_transport=self.base.n_transport,
                          n_qps=self.base.n_qps, delta=self._delta)

    def observe(self, choice, obs, tracker):
        self._rounds += 1
        if not tracker.ready:
            return
        target = self.margin * tracker.spread_quantile(self.quantile)
        blended = (1 - self.alpha) * self._delta + self.alpha * target
        self._delta = min(max(blended, self.min_delta), self.max_delta)

    def best(self):
        return PlanChoice(n_transport=self.base.n_transport,
                          n_qps=self.base.n_qps, delta=self._delta)

    @property
    def confident(self):
        return self._rounds >= self.warm_rounds

    def describe(self):
        return (f"delta-tracker(q={self.quantile}, "
                f"delta={self._delta:.3e})")


class BanditPolicy(Policy):
    """Multi-armed bandit over a candidate plan set.

    ``mode="epsilon"`` plays every arm once, then exploits the lowest
    mean completion time except with probability
    ``epsilon x decay^t`` (decaying exploration).  ``mode="ucb"``
    plays UCB1 on cost, with the confidence radius scaled by the
    overall mean cost so the bound is unit-free.

    ``window`` switches the per-arm estimate from the all-time running
    mean to the mean of the arm's last ``window`` observations.  On a
    stationary fabric the two converge; on a shared fabric where the
    background load shifts (see :mod:`repro.fleet`), the windowed
    estimate forgets the old regime after ``window`` plays instead of
    dragging a stale prior forever, which is what lets the bandit
    re-converge after a noisy neighbor arrives.  ``None`` (the
    default) keeps the historical running-mean behaviour bit for bit.

    Deterministic given ``seed`` — exploration draws come from
    ``numpy.random.default_rng(seed)``.
    """

    def __init__(self, arms: Sequence[PlanChoice], epsilon: float = 0.2,
                 decay: float = 0.95, mode: str = "epsilon",
                 exploration: float = 1.0, seed: int = 0,
                 min_confident_plays: int = 2,
                 window: Optional[int] = None):
        arms = list(arms)
        if not arms:
            raise ConfigError("BanditPolicy needs at least one arm")
        if len(set(arms)) != len(arms):
            raise ConfigError("duplicate bandit arms")
        if not (0 <= epsilon <= 1):
            raise ConfigError(f"epsilon must be in [0, 1], got {epsilon}")
        if not (0 < decay <= 1):
            raise ConfigError(f"decay must be in (0, 1], got {decay}")
        if mode not in ("epsilon", "ucb"):
            raise ConfigError(f"unknown bandit mode: {mode!r}")
        if window is not None and window < 1:
            raise ConfigError(f"window must be >= 1, got {window}")
        self.arms = arms
        self.epsilon = epsilon
        self.decay = decay
        self.mode = mode
        self.exploration = exploration
        self.min_confident_plays = min_confident_plays
        self.window = window
        self._rng = np.random.default_rng(seed)
        self._plays = [0] * len(arms)
        self._mean_cost = [0.0] * len(arms)
        self._recent = ([deque(maxlen=window) for _ in arms]
                        if window is not None else None)
        self._steps = 0

    def candidates(self):
        return list(self.arms)

    def _best_index(self) -> int:
        played = [(self._mean_cost[i], i)
                  for i in range(len(self.arms)) if self._plays[i]]
        if not played:
            return 0
        return min(played)[1]

    def choose(self, round_no):
        # Initial sweep: every arm gets one pull before any exploitation.
        for i, plays in enumerate(self._plays):
            if plays == 0:
                return self.arms[i]
        self._steps += 1
        if self.mode == "ucb":
            total = sum(self._plays)
            scale = sum(
                c * p for c, p in zip(self._mean_cost, self._plays)) / total
            best = min(
                range(len(self.arms)),
                key=lambda i: (
                    self._mean_cost[i]
                    - self.exploration * scale
                    * math.sqrt(2 * math.log(total) / self._plays[i]),
                    i,
                ))
            return self.arms[best]
        eps = self.epsilon * self.decay ** self._steps
        if self._rng.random() < eps:
            return self.arms[int(self._rng.integers(len(self.arms)))]
        return self.arms[self._best_index()]

    def observe(self, choice, obs, tracker):
        try:
            i = self.arms.index(choice)
        except ValueError:
            return  # a pinned/foreign choice; nothing to credit
        self._plays[i] += 1
        if self._recent is not None:
            self._recent[i].append(obs.completion_time)
            self._mean_cost[i] = sum(self._recent[i]) / len(self._recent[i])
        else:
            n = self._plays[i]
            self._mean_cost[i] += \
                (obs.completion_time - self._mean_cost[i]) / n

    def best(self):
        return self.arms[self._best_index()]

    @property
    def confident(self):
        if any(p == 0 for p in self._plays):
            return False
        return self._plays[self._best_index()] >= self.min_confident_plays

    def mean_cost(self, choice: PlanChoice) -> Optional[float]:
        """Observed mean completion time of ``choice`` (None if unplayed)."""
        try:
            i = self.arms.index(choice)
        except ValueError:
            return None
        return self._mean_cost[i] if self._plays[i] else None

    def describe(self):
        played = sum(1 for p in self._plays if p)
        return (f"bandit({self.mode}, {played}/{len(self.arms)} arms "
                f"played)")


def candidate_plans(
    n_user: int,
    partition_size: int,
    config: ClusterConfig,
    params: Optional[ParamsLike] = None,
    delay: float = 0.0,
    counts: Optional[Sequence[int]] = None,
    deltas: Sequence[Optional[float]] = (None,),
    span: int = 2,
) -> list[PlanChoice]:
    """Candidate ``(n_transport, n_qps, δ)`` arms for a bandit.

    With ``params`` given, the arm set is *seeded by the PLogGP
    prediction*: transport counts are the powers of two within
    ``2^span`` of the model's optimum (clipped to ``[1, n_user]``), so
    the bandit explores a neighbourhood of the model instead of the
    whole space.  ``counts`` overrides the seeding with an explicit
    list.  Per count, QP candidates are 1 and the WR-limit-derived
    count; each combination is crossed with every δ in ``deltas``
    (None = plain path).
    """
    if not is_power_of_two(n_user):
        raise TuningError(f"n_user must be a power of two, got {n_user}")
    if not deltas:
        raise TuningError("need at least one delta candidate")
    if counts is not None:
        chosen = sorted(set(int(c) for c in counts))
        for c in chosen:
            if not is_power_of_two(c) or c > n_user:
                raise TuningError(
                    f"candidate transport count {c} invalid for "
                    f"n_user {n_user}")
    elif params is not None:
        seed_t = optimal_transport_partitions(
            params, n_user * partition_size, n_user=n_user, delay=delay,
            max_transport=n_user)
        lo = max(1, seed_t >> span)
        hi = min(n_user, seed_t << span)
        chosen = list(powers_of_two(lo, hi))
    else:
        chosen = list(powers_of_two(1, n_user))
    arms = []
    for t in chosen:
        qp_candidates = sorted({1, _qps_for(t, t, config),
                                _qps_for(t, n_user, config)})
        for n_qps in qp_candidates:
            for delta in deltas:
                arms.append(PlanChoice(n_transport=t, n_qps=n_qps,
                                       delta=delta))
    return arms
