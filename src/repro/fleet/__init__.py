"""repro.fleet — shared-fabric simulation: congestion, tenancy, autotuning.

The fleet layer turns the single-experiment simulator into a
multi-tenant one: a routed Dragonfly+ topology with per-link contention
queues (:mod:`repro.ib.topology` / :mod:`repro.ib.link`), a job/tenant
scheduler placing many concurrent jobs and seeded background-traffic
generators on disjoint node sets (:mod:`repro.fleet.spec`,
:mod:`repro.fleet.tenancy`, :mod:`repro.fleet.traffic`), per-tenant and
per-link observability (:mod:`repro.fleet.profile`), and the
experiment drivers that re-run the fig08 rankings under contention and
probe live autotuner re-convergence (:mod:`repro.fleet.run`).

See docs/FLEET.md for the model and how to read a FleetProfile.
"""

from repro.fleet.profile import FleetProfile, TenantView, attach_slowdowns
from repro.fleet.run import (
    background_jobs,
    default_topology,
    isolated_baselines,
    run_contended_pair,
    run_fleet,
    run_fleet_with_slowdowns,
    run_reconvergence,
)
from repro.fleet.spec import JOB_KINDS, PLACEMENTS, JobSpec, place_jobs
from repro.fleet.tenancy import TenantScheduler
from repro.fleet.traffic import TRAFFIC_KINDS, TrafficSpec, offered_load

__all__ = [
    "FleetProfile",
    "TenantView",
    "attach_slowdowns",
    "background_jobs",
    "default_topology",
    "isolated_baselines",
    "run_contended_pair",
    "run_fleet",
    "run_fleet_with_slowdowns",
    "run_reconvergence",
    "JOB_KINDS",
    "PLACEMENTS",
    "JobSpec",
    "place_jobs",
    "TenantScheduler",
    "TRAFFIC_KINDS",
    "TrafficSpec",
    "offered_load",
]
